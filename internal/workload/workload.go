package workload

import (
	"fmt"
	"math"
	"math/rand"

	"sinrconn/internal/geom"
)

// Uniform scatters n points uniformly on a span×span square by rejection
// sampling with minimum pairwise distance 1. If span is too small to fit n
// such points it is grown automatically, so the call always succeeds.
func Uniform(rng *rand.Rand, n int, span float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if minSpan := 2 * math.Sqrt(float64(n)); span < minSpan {
		span = minSpan
	}
	for {
		pts := make([]geom.Point, 0, n)
		grid := make(map[[2]int][]geom.Point)
		cell := 1.0
		key := func(p geom.Point) [2]int {
			return [2]int{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
		}
		fits := func(p geom.Point) bool {
			k := key(p)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for _, q := range grid[[2]int{k[0] + dx, k[1] + dy}] {
						if q.Dist(p) < 1 {
							return false
						}
					}
				}
			}
			return true
		}
		fails := 0
		for len(pts) < n && fails < 200*n {
			p := geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
			if fits(p) {
				pts = append(pts, p)
				k := key(p)
				grid[k] = append(grid[k], p)
			} else {
				fails++
			}
		}
		if len(pts) == n {
			return pts
		}
		span *= 1.5 // too dense; retry on a bigger square
	}
}

// UniformDensity scatters n points at roughly the given points-per-unit-area
// density (clamped to keep rejection sampling fast).
func UniformDensity(rng *rand.Rand, n int, density float64) []geom.Point {
	if density <= 0 {
		density = 0.1
	}
	if density > 0.5 {
		density = 0.5
	}
	span := math.Sqrt(float64(n) / density)
	return Uniform(rng, n, span)
}

// Clusters places n points into k Gaussian-ish clusters whose centers are
// uniform on a span×span square, modelling sensor fields with dense pockets.
// Minimum pairwise distance 1 is enforced by rejection.
func Clusters(rng *rand.Rand, n, k int, clusterRadius, span float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if clusterRadius < 2 {
		clusterRadius = 2
	}
	// Each cluster can hold ~(r/1)² points at min spacing 1; grow the radius
	// if the requested density is impossible.
	for float64(k)*clusterRadius*clusterRadius < 2*float64(n) {
		clusterRadius *= 1.4
	}
	if minSpan := 4 * clusterRadius; span < minSpan {
		span = minSpan
	}
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
	}
	pts := make([]geom.Point, 0, n)
	fails := 0
	for len(pts) < n {
		c := centers[rng.Intn(k)]
		ang := rng.Float64() * 2 * math.Pi
		rad := math.Sqrt(rng.Float64()) * clusterRadius
		p := geom.Point{X: c.X + rad*math.Cos(ang), Y: c.Y + rad*math.Sin(ang)}
		ok := true
		for _, q := range pts {
			if q.Dist(p) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
			fails = 0
		} else if fails++; fails > 200*n {
			clusterRadius *= 1.4
			for i := range centers {
				centers[i] = geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
			}
			pts = pts[:0]
			fails = 0
		}
	}
	return pts
}

// GridPoints lays out a rows×cols lattice with the given spacing ≥ 1 — the
// most regular instance, with Δ = spacing·hypot(rows-1, cols-1).
func GridPoints(rows, cols int, spacing float64) []geom.Point {
	if spacing < 1 {
		spacing = 1
	}
	pts := make([]geom.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, geom.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return pts
}

// ExponentialChain places n collinear points with geometrically growing
// gaps: gap_i = base^i. It is the canonical high-Δ instance (Δ grows
// exponentially in n), the regime where uniform-power scheduling pays its
// Ω(log Δ) penalty. base must be > 1; values ≤ 1 are replaced by 2.
func ExponentialChain(n int, base float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if base <= 1 {
		base = 2
	}
	pts := make([]geom.Point, n)
	x := 0.0
	gap := 1.0
	for i := 0; i < n; i++ {
		pts[i] = geom.Point{X: x}
		x += gap
		gap *= base
	}
	return pts
}

// ChainForDelta returns an n-point exponential chain whose Δ is close to
// the requested target. A chain of n points at minimum gap 1 cannot have
// Δ below n-1, so smaller targets are clamped up. The base is found by
// binary search on the gap sum (1 + b + b² + … + b^(n-2) = Δ).
func ChainForDelta(n int, targetDelta float64) []geom.Point {
	if n < 2 {
		return ExponentialChain(n, 2)
	}
	if min := float64(n - 1); targetDelta < min {
		targetDelta = min
	}
	span := func(b float64) float64 {
		s, g := 0.0, 1.0
		for i := 0; i < n-1; i++ {
			s += g
			g *= b
		}
		return s
	}
	lo, hi := 1.0, 2.0
	for span(hi) < targetDelta {
		hi *= 2
		if hi > 1e6 {
			break
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if span(mid) < targetDelta {
			lo = mid
		} else {
			hi = mid
		}
	}
	base := hi
	if base <= 1 {
		base = 1.0001
	}
	return ExponentialChain(n, base)
}

// Ring places n points evenly on a circle, radius chosen so neighboring
// points are exactly minGap apart.
func Ring(n int, minGap float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if minGap < 1 {
		minGap = 1
	}
	if n == 1 {
		return []geom.Point{{}}
	}
	theta := 2 * math.Pi / float64(n)
	radius := minGap / (2 * math.Sin(theta/2))
	pts := make([]geom.Point, n)
	for i := range pts {
		a := theta * float64(i)
		pts[i] = geom.Point{X: radius * math.Cos(a), Y: radius * math.Sin(a)}
	}
	return pts
}

// TwoScale builds two dense uniform clouds of n/2 points separated by a
// gap of sep — a two-length-scale instance that stresses length-class
// algorithms.
func TwoScale(rng *rand.Rand, n int, sep float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	half := n / 2
	a := Uniform(rng, half, 2*math.Sqrt(float64(half)))
	b := Uniform(rng, n-half, 2*math.Sqrt(float64(n-half)))
	if sep < 4 {
		sep = 4
	}
	_, maxA := geom.BoundingBox(a)
	shift := maxA.X + sep
	out := make([]geom.Point, 0, n)
	out = append(out, a...)
	for _, p := range b {
		out = append(out, geom.Point{X: p.X + shift, Y: p.Y})
	}
	return out
}

// JitteredGrid lays n points row-major on a ⌈√n⌉×⌈√n⌉ lattice with the
// given spacing, each perturbed uniformly by up to ±jitter per axis. Unlike
// the rejection-sampling generators it is O(n) with no retry loop, which
// makes it the instance generator for far-field benchmarks at n ≥ 10⁴.
// The normalization guarantee holds by construction: jitter is clamped to
// (spacing−1)/2, so any two points remain ≥ spacing − 2·jitter ≥ 1 apart.
func JitteredGrid(rng *rand.Rand, n int, spacing, jitter float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if spacing < 1 {
		spacing = 1
	}
	if maxJ := (spacing - 1) / 2; jitter > maxJ {
		jitter = maxJ
	}
	if jitter < 0 {
		jitter = 0
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]geom.Point, 0, n)
	for r := 0; r < side && len(pts) < n; r++ {
		for c := 0; c < side && len(pts) < n; c++ {
			pts = append(pts, geom.Point{
				X: float64(c)*spacing + (rng.Float64()*2-1)*jitter,
				Y: float64(r)*spacing + (rng.Float64()*2-1)*jitter,
			})
		}
	}
	return pts
}

// Spec names a workload for experiment tables.
type Spec struct {
	// Name labels the workload in tables.
	Name string
	// Gen produces n points using rng.
	Gen func(rng *rand.Rand, n int) []geom.Point
}

// Standard returns the workload suite used across the experiments.
func Standard() []Spec {
	return []Spec{
		{Name: "uniform", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return UniformDensity(rng, n, 0.15)
		}},
		{Name: "clusters", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return Clusters(rng, n, 1+n/32, 6, 100)
		}},
		{Name: "grid", Gen: func(_ *rand.Rand, n int) []geom.Point {
			side := int(math.Ceil(math.Sqrt(float64(n))))
			return GridPoints(side, side, 2)[:n]
		}},
		{Name: "chain", Gen: func(_ *rand.Rand, n int) []geom.Point {
			return ChainForDelta(n, 1<<16)
		}},
	}
}

// Describe returns a one-line summary of an instance (n, Δ) for logs.
func Describe(pts []geom.Point) string {
	return fmt.Sprintf("n=%d Δ=%.1f", len(pts), geom.Delta(pts))
}
