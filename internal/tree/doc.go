// Package tree defines the connectivity structures of the paper (Section 3):
// time-stamped link sets, aggregation and dissemination trees, the bi-tree
// of Definition 1, and validators for the properties the theorems assert —
// strong connectivity, aggregation scheduling order, per-slot SINR
// feasibility — plus replay-based latency measurement for converge-cast,
// broadcast, and pairwise communication.
package tree
