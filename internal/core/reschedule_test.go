package core

import (
	"context"
	"math"
	"testing"

	"sinrconn/internal/schedule"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

func TestRescheduleMeanPower(t *testing.T) {
	in := uniformInstance(t, 50, 64)
	ires, err := Init(context.Background(), in, InitConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	rres, err := Reschedule(context.Background(), in, ires.Tree, pa, schedule.DistConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rres.NumSlots < 1 {
		t.Fatal("empty schedule")
	}
	// Same links, new stamps; per-slot feasibility must hold under mean
	// power.
	if len(rres.Tree.Up) != len(ires.Tree.Up) {
		t.Fatalf("link count changed: %d vs %d", len(rres.Tree.Up), len(ires.Tree.Up))
	}
	if err := rres.Tree.ValidatePerSlotFeasible(in); err != nil {
		t.Fatalf("rescheduled slots infeasible: %v", err)
	}
	// The tree structure is untouched.
	if err := rres.Tree.Validate(); err != nil {
		t.Fatalf("rescheduled tree invalid: %v", err)
	}
	if !rres.Tree.StronglyConnected() {
		t.Fatal("rescheduled tree disconnected")
	}
}

func TestRescheduleRemovesLogDeltaDependence(t *testing.T) {
	// Theorem 3's point: on a high-Δ chain, the mean-power schedule is far
	// shorter than the uniform-power baseline.
	in := sinr.MustInstance(workload.ChainForDelta(48, 1<<20), sinr.DefaultParams())
	ires, err := Init(context.Background(), in, InitConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	uniformLen := UniformScheduleLength(in, ires.Tree)
	meanLen := MeanScheduleLength(in, ires.Tree)
	if meanLen > uniformLen {
		t.Errorf("mean power (%d slots) not better than uniform (%d slots) on a Δ=2^20 chain",
			meanLen, uniformLen)
	}
}

func TestRescheduleErrorPropagates(t *testing.T) {
	in := uniformInstance(t, 51, 16)
	ires, err := Init(context.Background(), in, InitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hopeless power with a tiny budget must surface the scheduler error.
	_, err = Reschedule(context.Background(), in, ires.Tree, sinr.Uniform{P: 1e-12},
		schedule.DistConfig{MaxSlotPairs: 10, Seed: 1})
	if err == nil {
		t.Error("expected reschedule error")
	}
}

func TestScheduleLengthHelpers(t *testing.T) {
	in := uniformInstance(t, 52, 32)
	ires, err := Init(context.Background(), in, InitConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := UniformScheduleLength(in, ires.Tree)
	m := MeanScheduleLength(in, ires.Tree)
	if u < 1 || m < 1 {
		t.Errorf("degenerate schedule lengths: uniform=%d mean=%d", u, m)
	}
	if u > len(ires.Tree.Up) || m > len(ires.Tree.Up) {
		t.Errorf("schedule longer than one-link-per-slot: uniform=%d mean=%d links=%d",
			u, m, len(ires.Tree.Up))
	}
	_ = math.Max // keep math imported if assertions above change
}
