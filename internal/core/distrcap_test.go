package core

import (
	"context"
	"testing"

	"sinrconn/internal/power"
	"sinrconn/internal/sinr"
)

// initCoreLinks builds an Init tree on a uniform instance and returns its
// low-degree core links — the candidate set Distr-Cap is designed for.
func initCoreLinks(t *testing.T, in *sinr.Instance, seed int64) []sinr.Link {
	t.Helper()
	res, err := Init(context.Background(), in, InitConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var cand []sinr.Link
	for _, tl := range LowDegreeSubset(res.Tree, 0) {
		cand = append(cand, tl.L)
	}
	if len(cand) == 0 {
		t.Fatal("empty candidate set")
	}
	return cand
}

func TestDistrCapSelectsAndInvariantHolds(t *testing.T) {
	in := uniformInstance(t, 30, 96)
	cand := initCoreLinks(t, in, 3)
	res := DistrCap(in, cand, DistrCapConfig{Seed: 7})
	if len(res.Selected) == 0 {
		t.Fatal("Distr-Cap selected nothing")
	}
	if res.Phases == 0 || res.SlotPairs < res.Phases {
		t.Errorf("phases=%d slotPairs=%d", res.Phases, res.SlotPairs)
	}
	// Lemmas 17–18: the Eqn-3 invariant holds on the selection.
	if !Eqn3Holds(in, res.Selected, DefaultDistrTau) {
		t.Error("Eqn3 invariant violated by Distr-Cap output")
	}
	// Section 8.2.3: a feasible power assignment exists.
	if _, _, err := power.Solve(in, res.Selected, power.Options{}); err != nil {
		t.Errorf("Distr-Cap selection not power-feasible: %v", err)
	}
	// One link per node.
	busy := map[int]bool{}
	for _, l := range res.Selected {
		if busy[l.From] || busy[l.To] {
			t.Fatalf("node reused in %v", l)
		}
		busy[l.From] = true
		busy[l.To] = true
	}
}

func TestDistrCapDeterministic(t *testing.T) {
	in := uniformInstance(t, 31, 64)
	cand := initCoreLinks(t, in, 5)
	a := DistrCap(in, cand, DistrCapConfig{Seed: 11})
	b := DistrCap(in, cand, DistrCapConfig{Seed: 11})
	if len(a.Selected) != len(b.Selected) {
		t.Fatal("nondeterministic selection size")
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("nondeterministic selection")
		}
	}
}

func TestDistrCapRepeatsSelectMore(t *testing.T) {
	in := uniformInstance(t, 32, 96)
	cand := initCoreLinks(t, in, 9)
	one := 0
	many := 0
	for seed := int64(0); seed < 5; seed++ {
		one += len(DistrCap(in, cand, DistrCapConfig{Seed: seed, Repeats: 1}).Selected)
		many += len(DistrCap(in, cand, DistrCapConfig{Seed: seed, Repeats: 4}).Selected)
	}
	if many < one {
		t.Errorf("repeats=4 selected %d < repeats=1 selected %d (across seeds)", many, one)
	}
}

func TestDistrCapEmptyCandidates(t *testing.T) {
	in := uniformInstance(t, 33, 8)
	res := DistrCap(in, nil, DistrCapConfig{})
	if len(res.Selected) != 0 || res.Phases != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

func TestDistrCapSelectionFractionReasonable(t *testing.T) {
	// Theorem 20 shape: across seeds, Distr-Cap should select a
	// non-vanishing fraction of a sparse candidate set.
	in := uniformInstance(t, 34, 128)
	cand := initCoreLinks(t, in, 13)
	total := 0
	const seeds = 6
	for seed := int64(0); seed < seeds; seed++ {
		total += len(DistrCap(in, cand, DistrCapConfig{Seed: seed}).Selected)
	}
	avg := float64(total) / seeds
	if avg < float64(len(cand))*0.02 {
		t.Errorf("average selection %.1f of %d candidates is vanishing", avg, len(cand))
	}
}
