package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"sinrconn/internal/sinr"
)

// MsgKind distinguishes protocol message types. The paper uses two:
// exploratory broadcasts (ID + location) and addressed acknowledgments.
type MsgKind uint8

// Message kinds.
const (
	KindBroadcast MsgKind = iota + 1
	KindAck
	KindData
)

// NoAddressee marks a message sent to no node in particular (a broadcast).
const NoAddressee = -1

// Message is the content of one transmission. A single message is large
// enough to contain the ID and the location of a node (Section 3); the
// location is implied by From, since every node knows the point set index
// it occupies and receivers learn distances from the physics (Delivery.Dist).
type Message struct {
	Kind MsgKind
	// From is the sender's node index (its globally unique ID).
	From int
	// To is the addressee for acknowledgments, or NoAddressee.
	To int
	// Tag carries protocol-defined context (e.g. the Init round number or a
	// Distr-Cap phase index).
	Tag int
	// Payload carries small protocol data (e.g. an aggregate value).
	Payload int64
}

// ActionKind enumerates what a node does in a slot.
type ActionKind uint8

// Actions a protocol can take in a slot.
const (
	// ActionIdle: the node neither transmits nor listens (it has left the
	// protocol). Idle nodes cost nothing in the physics computation.
	ActionIdle ActionKind = iota + 1
	// ActionListen: the node listens and may receive one message.
	ActionListen
	// ActionTransmit: the node transmits Msg with power Power. Transmitting
	// nodes cannot receive in the same slot (half-duplex).
	ActionTransmit
)

// Action is a protocol's decision for one slot.
type Action struct {
	Kind  ActionKind
	Power float64
	Msg   Message
}

// Idle returns the idle action.
func Idle() Action { return Action{Kind: ActionIdle} }

// Listen returns the listen action.
func Listen() Action { return Action{Kind: ActionListen} }

// Transmit returns a transmit action.
func Transmit(power float64, msg Message) Action {
	return Action{Kind: ActionTransmit, Power: power, Msg: msg}
}

// Delivery is a successfully decoded message as seen by a receiver.
type Delivery struct {
	Msg Message
	// Dist is the distance to the sender. The receiver can always compute
	// it because messages carry the sender's location (Section 3).
	Dist float64
	// SINR is the measured signal-to-interference-and-noise ratio of the
	// reception. Section 8.2 explicitly assumes receivers can measure it.
	SINR float64
	// Slot is the slot in which the message was transmitted.
	Slot int
}

// Protocol is a per-node state machine. Step is called once per slot with
// the deliveries received in the previous slot (at most one under β ≥ 1,
// but the API permits more for β < 1 configurations) and returns the node's
// action for this slot. Implementations must confine themselves to their
// own state: Step is invoked concurrently across nodes.
type Protocol interface {
	Step(slot int, inbox []Delivery) Action
}

// Config tunes the engine.
type Config struct {
	// Workers is the number of goroutines stepping nodes and decoding
	// listeners. Zero means runtime.NumCPU().
	Workers int
	// DropProb injects reception failures: each otherwise-successful
	// delivery is independently dropped with this probability (modeling
	// fading the SINR mean-path-loss model misses). Drops are derived
	// deterministically from Seed, slot, and receiver.
	DropProb float64
	// Seed drives the drop-injection randomness.
	Seed int64
	// Observer, if non-nil, is invoked after every slot with a summary of
	// channel activity (for tracing and live experiment dashboards).
	Observer Observer
	// Pool, if non-nil, is a shared worker pool the engine dispatches its
	// parallel stages on instead of spawning its own. The engine does not
	// own a shared pool: Close leaves it running, so a session handle
	// (sinrconn.Network) can reuse one pool across many engine lifetimes
	// and across concurrent engines. When Pool is nil the engine spawns a
	// private pool sized by Workers (the pre-session behavior).
	Pool *Pool
	// FarField, if non-nil, switches channel resolution to the tile-based
	// far-field approximation: per slot, senders are aggregated per spatial
	// tile and a listener resolves distant tiles by centroid mass instead
	// of sender by sender, within the plan's certified relative error. The
	// decoded winner and its received power stay exact (the plan refines
	// any tile that could hide the strongest sender); only Delivery.SINR
	// carries the ε bound. The plan must be built from the engine's own
	// Instance. Nil means exact resolution — bit-identical to the
	// pre-far-field engine.
	FarField *sinr.FarField
}

// Stats counts engine activity for experiment reporting.
type Stats struct {
	Slots         int     // slots executed
	Transmissions int     // transmit actions observed
	Deliveries    int     // messages successfully delivered
	Collisions    int     // listener slots with audible signal but no decode
	Dropped       int     // deliveries removed by failure injection
	Energy        float64 // total transmission energy (sum of powers × slots)
}

// SlotEvent is handed to an Observer after each slot.
type SlotEvent struct {
	// Slot is the slot index that just executed.
	Slot int
	// Senders is the number of concurrent transmitters.
	Senders int
	// Deliveries is the number of successful decodes.
	Deliveries int
}

// Observer receives a SlotEvent after every slot. Observers run on the
// engine goroutine; they must not call back into the engine.
type Observer func(SlotEvent)

// shard holds one worker's slot counters, padded to a cache line so
// concurrent workers never contend on the same line. The shards are summed
// (in worker order, all integers) after the parallel section, so totals are
// identical to the old mutex-guarded counters.
type shard struct {
	delivered int
	collided  int
	dropped   int
	_         [40]byte
}

// Engine drives a set of per-node protocols over a shared SINR channel.
type Engine struct {
	inst    *sinr.Instance
	procs   []Protocol
	cfg     Config
	stats   Stats
	slot    int
	inboxes [][]Delivery
	next    [][]Delivery
	actions []Action
	txs     []sinr.Tx

	// Physics-kernel state hoisted out of the slot loop.
	beta  float64
	noise float64
	gains []float64 // row-major n×n gain table; nil if over memory budget

	// Far-field approximation state (nil in exact mode). The scratch is
	// engine-private: Accumulate fills it serially each slot, the parallel
	// decode stage only reads it.
	far    *sinr.FarField
	farScr *sinr.FarScratch

	shards  []shard
	pool    *Pool // nil when the engine runs serially
	ownPool bool  // the engine spawned pool itself and must close it
	stageWG sync.WaitGroup
}

// NewEngine creates an engine over instance inst with one protocol per node.
// len(procs) must equal inst.Len(). Engines whose instance is large enough
// to parallelize dispatch on Config.Pool when one is provided, otherwise
// they spawn a private worker pool; call Close when done with an engine to
// release a private pool's goroutines (Close is always safe to call and
// never touches a shared pool).
func NewEngine(inst *sinr.Instance, procs []Protocol, cfg Config) (*Engine, error) {
	if len(procs) != inst.Len() {
		return nil, fmt.Errorf("sim: %d protocols for %d nodes", len(procs), inst.Len())
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		if cfg.DropProb != 0 {
			return nil, fmt.Errorf("sim: drop probability %v outside [0,1)", cfg.DropProb)
		}
	}
	n := inst.Len()
	p := inst.Params()
	e := &Engine{
		inst:    inst,
		procs:   procs,
		cfg:     cfg,
		inboxes: make([][]Delivery, n),
		next:    make([][]Delivery, n),
		actions: make([]Action, n),
		beta:    p.Beta,
		noise:   p.Noise,
	}
	if cfg.FarField != nil {
		if cfg.FarField.Instance() != inst {
			return nil, fmt.Errorf("sim: far-field plan built from a different instance")
		}
		e.far = cfg.FarField
		e.farScr = cfg.FarField.NewScratch()
	} else {
		// The gain table only pays off on the exact path; far-field mode
		// targets instances past its memory bound.
		e.gains = inst.GainTable()
	}
	switch {
	case cfg.Pool != nil && cfg.Pool.Workers() > 1 && n >= 2*cfg.Pool.Workers():
		// Shared session pool; the engine borrows it and never closes it.
		e.pool = cfg.Pool
		e.shards = make([]shard, cfg.Pool.Workers())
	case cfg.Pool == nil && cfg.Workers > 1 && n >= 2*cfg.Workers:
		e.pool = NewPool(cfg.Workers)
		e.ownPool = true
		e.shards = make([]shard, cfg.Workers)
	default:
		e.shards = make([]shard, 1)
	}
	return e, nil
}

// Close releases the engine's private worker pool, if it spawned one. A
// shared pool passed in via Config.Pool is left running — its owner (the
// session handle) closes it. The engine must not be stepped after Close.
// Close is idempotent.
func (e *Engine) Close() {
	if e.pool != nil && e.ownPool {
		e.pool.Close()
	}
	e.pool = nil
	e.ownPool = false
}

// Slot returns the index of the next slot to execute.
func (e *Engine) Slot() int { return e.slot }

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Instance returns the underlying SINR instance.
func (e *Engine) Instance() *sinr.Instance { return e.inst }

// Step executes one slot: gather actions, resolve the channel, deliver.
func (e *Engine) Step() {
	n := len(e.procs)

	// Stage 1: step every protocol with its inbox (parallel).
	if e.pool != nil {
		e.pool.dispatch(e, stageStep)
	} else {
		e.stepRange(0, n)
	}

	// Stage 2: collect the sender set.
	e.txs = e.txs[:0]
	for i := range e.actions {
		if e.actions[i].Kind == ActionTransmit {
			e.txs = append(e.txs, sinr.Tx{Sender: i, Power: e.actions[i].Power})
			e.stats.Energy += e.actions[i].Power
		}
	}
	e.stats.Transmissions += len(e.txs)

	// Stage 2.5 (far-field mode): one serial O(#senders) pass folds the
	// sender set into per-tile mass/centroid/max-power aggregates the
	// parallel decode stage reads.
	if e.far != nil && len(e.txs) > 0 {
		e.far.Accumulate(e.txs, e.farScr)
	}

	// Stage 3: decode at every listener (parallel). Each listener decodes
	// the strongest sender if its SINR clears β. Counters land in per-worker
	// shards; no lock is taken.
	if len(e.txs) > 0 {
		if e.pool != nil {
			e.pool.dispatch(e, stageDecode)
		} else {
			e.decodeRange(0, n, &e.shards[0])
		}
	}
	var delivered int
	for k := range e.shards {
		sh := &e.shards[k]
		delivered += sh.delivered
		e.stats.Collisions += sh.collided
		e.stats.Dropped += sh.dropped
		sh.delivered, sh.collided, sh.dropped = 0, 0, 0
	}
	e.stats.Deliveries += delivered

	// Stage 4: swap inboxes and notify.
	e.inboxes, e.next = e.next, e.inboxes
	slot := e.slot
	e.slot++
	e.stats.Slots++
	if e.cfg.Observer != nil {
		e.cfg.Observer(SlotEvent{
			Slot:       slot,
			Senders:    len(e.txs),
			Deliveries: delivered,
		})
	}
}

// stepRange runs stage 1 for nodes [lo, hi).
func (e *Engine) stepRange(lo, hi int) {
	slot := e.slot
	for i := lo; i < hi; i++ {
		e.actions[i] = e.procs[i].Step(slot, e.inboxes[i])
		e.next[i] = e.next[i][:0]
	}
}

// decodeRange runs stage 3 for listeners [lo, hi), accumulating counters
// into sh.
func (e *Engine) decodeRange(lo, hi int, sh *shard) {
	for i := lo; i < hi; i++ {
		if e.actions[i].Kind == ActionListen {
			e.decodeListener(i, sh)
		}
	}
}

// decodeListener resolves reception at listener i: a single pass over the
// sender set accumulates total received power and tracks the strongest
// sender via the cached gain table; the strongest sender is decoded iff its
// SINR ≥ β. The sender's distance (for Delivery.Dist) is computed once,
// only for an actual delivery.
func (e *Engine) decodeListener(i int, sh *shard) {
	if e.far != nil {
		e.decodeListenerFar(i, sh)
		return
	}
	n := len(e.procs)
	var row []float64
	if e.gains != nil {
		row = e.gains[i*n : (i+1)*n]
	}
	var total, bestRP float64
	best := -1
	for k := range e.txs {
		t := &e.txs[k]
		var g float64
		if row != nil {
			g = row[t.Sender]
		} else {
			g = e.inst.Gain(t.Sender, i)
		}
		if math.IsInf(g, 1) {
			// A co-located sender (only possible with duplicate points)
			// saturates the channel; nothing is decodable.
			sh.collided++
			return
		}
		rp := t.Power * g
		total += rp
		if rp > bestRP {
			bestRP = rp
			best = k
		}
	}
	if best < 0 {
		// No audible signal (all senders at zero power).
		return
	}
	e.finishDecode(i, best, bestRP, total, sh)
}

// decodeListenerFar resolves reception at listener i through the far-field
// plan: the winner and its received power are exact (the plan refines any
// tile that could hide the strongest sender), the interference total is
// approximate within the plan's certified ε, and everything downstream —
// the β cut, drop injection, delivery bookkeeping — is the shared exact
// tail.
func (e *Engine) decodeListenerFar(i int, sh *shard) {
	best, bestRP, total, saturated := e.far.Resolve(i, e.txs, e.farScr)
	if saturated {
		// A co-located sender drowns the channel, exactly as in exact mode.
		sh.collided++
		return
	}
	if best < 0 {
		return
	}
	e.finishDecode(i, best, bestRP, total, sh)
}

// finishDecode is the decode tail shared by the exact and far-field paths:
// the β cut on the winner's SINR, drop injection, and delivery bookkeeping.
// best indexes e.txs; total is the full received power including the
// winner's.
func (e *Engine) finishDecode(i, best int, bestRP, total float64, sh *shard) {
	sinrVal := bestRP / (e.noise + (total - bestRP))
	if sinrVal < e.beta {
		sh.collided++
		return
	}
	if e.cfg.DropProb > 0 && dropCoin(e.cfg.Seed, e.slot, i) < e.cfg.DropProb {
		sh.dropped++
		return
	}
	tx := e.txs[best]
	e.next[i] = append(e.next[i], Delivery{
		Msg:  e.actions[tx.Sender].Msg,
		Dist: e.inst.Dist(tx.Sender, i),
		SINR: sinrVal,
		Slot: e.slot,
	})
	sh.delivered++
}

// Run executes exactly n slots.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunCtx executes up to n slots, checking ctx before every slot. It
// returns the number of slots executed and ctx's error if the context was
// canceled or its deadline passed. Cancellation lands between slots, so
// the engine is left in a consistent state and remains usable (stats,
// inboxes, and the worker pool are intact).
func (e *Engine) RunCtx(ctx context.Context, n int) (int, error) {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		e.Step()
	}
	return n, nil
}

// RunUntil executes slots until stop() returns true (checked after every
// slot) or maxSlots have run, returning the number of slots executed.
func (e *Engine) RunUntil(maxSlots int, stop func() bool) int {
	ran := 0
	for ran < maxSlots {
		e.Step()
		ran++
		if stop() {
			break
		}
	}
	return ran
}

// dropCoin returns a deterministic pseudo-uniform value in [0,1) derived
// from (seed, slot, node) with a splitmix64 finalizer, so drop injection is
// reproducible and independent of worker scheduling.
func dropCoin(seed int64, slot, node int) float64 {
	x := uint64(seed) ^ (uint64(slot)+1)*0x9E3779B97F4A7C15 ^ (uint64(node)+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
