package faults

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestPlanReplayIdentity: two plans built from the same spec fire on
// exactly the same visit ordinals at every site — the whole point of
// the framework.
func TestPlanReplayIdentity(t *testing.T) {
	spec := Spec{
		Seed:  42,
		Delay: 2 * time.Millisecond,
		Rates: map[Site]float64{
			ServeHandlerDelay: 0.1,
			ServeConnReset:    0.03,
			CacheLeaderPanic:  0.5,
			ChurnRepairFail:   1.0,
		},
	}
	trace := func() map[Site][]uint64 {
		p := MustPlan(spec)
		out := map[Site][]uint64{}
		for _, site := range Sites() {
			for i := 0; i < 2000; i++ {
				if act, ok := p.Fire(site); ok {
					out[site] = append(out[site], uint64(i))
					if act.Site != site {
						t.Fatalf("action site %q from Fire(%q)", act.Site, site)
					}
					if act.Delay != spec.Delay {
						t.Fatalf("action delay %v, want %v", act.Delay, spec.Delay)
					}
				}
			}
		}
		return out
	}
	a, b := trace(), trace()
	for _, site := range Sites() {
		av, bv := a[site], b[site]
		if len(av) != len(bv) {
			t.Fatalf("site %s: %d vs %d firings across replays", site, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("site %s: firing %d at visit %d vs %d", site, i, av[i], bv[i])
			}
		}
	}
	if len(a[ChurnRepairFail]) != 2000 {
		t.Fatalf("rate-1.0 site fired %d/2000", len(a[ChurnRepairFail]))
	}
	if len(a[PoolWorkerStall]) != 0 {
		t.Fatalf("unconfigured site fired %d times", len(a[PoolWorkerStall]))
	}
}

// TestPlanSeedsDiverge: different seeds give different schedules (with
// overwhelming probability at these sample sizes).
func TestPlanSeedsDiverge(t *testing.T) {
	fire := func(seed int64) []bool {
		p := MustPlan(Spec{Seed: seed, Rates: map[Site]float64{ServeConnReset: 0.2}})
		out := make([]bool, 512)
		for i := range out {
			_, out[i] = p.Fire(ServeConnReset)
		}
		return out
	}
	a, b := fire(1), fire(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 512-visit schedules")
	}
}

// TestPlanRateAccuracy: empirical fire rate tracks the configured rate
// within a loose statistical bound.
func TestPlanRateAccuracy(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5, 0.9} {
		p := MustPlan(Spec{Seed: 7, Rates: map[Site]float64{SimSlotSlow: rate}})
		const n = 200000
		fired := 0
		for i := 0; i < n; i++ {
			if _, ok := p.Fire(SimSlotSlow); ok {
				fired++
			}
		}
		got := float64(fired) / n
		// ~6 sigma for a Bernoulli(rate) sample of size n.
		tol := 6 * math.Sqrt(rate*(1-rate)/n)
		if math.Abs(got-rate) > tol {
			t.Errorf("rate %v: observed %v (tolerance %v)", rate, got, tol)
		}
	}
}

// TestPlanCounts: visit and fired counters are exact, including for
// sites that never fire.
func TestPlanCounts(t *testing.T) {
	p := MustPlan(Spec{Seed: 3, Rates: map[Site]float64{CacheLeaderPanic: 1}})
	for i := 0; i < 10; i++ {
		p.Fire(CacheLeaderPanic)
	}
	for i := 0; i < 5; i++ {
		p.Fire(PoolWorkerStall)
	}
	counts := map[Site]SiteCount{}
	for _, c := range p.Counts() {
		counts[c.Site] = c
	}
	if c := counts[CacheLeaderPanic]; c.Visits != 10 || c.Fired != 10 {
		t.Fatalf("leader panic counts = %+v", c)
	}
	if c := counts[PoolWorkerStall]; c.Visits != 5 || c.Fired != 0 {
		t.Fatalf("worker stall counts = %+v", c)
	}
	if len(p.Counts()) != len(Sites()) {
		t.Fatalf("Counts rows = %d, want %d", len(p.Counts()), len(Sites()))
	}
}

// TestPlanConcurrentFire: concurrent visits keep exact counters and
// race-free state (meaningful under -race).
func TestPlanConcurrentFire(t *testing.T) {
	p := MustPlan(Spec{Seed: 11, Rates: map[Site]float64{ServeHandlerDelay: 0.25}})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Fire(ServeHandlerDelay)
			}
		}()
	}
	wg.Wait()
	for _, c := range p.Counts() {
		if c.Site == ServeHandlerDelay {
			if c.Visits != workers*per {
				t.Fatalf("visits = %d, want %d", c.Visits, workers*per)
			}
			if c.Fired == 0 || c.Fired >= c.Visits {
				t.Fatalf("fired = %d of %d visits at rate 0.25", c.Fired, c.Visits)
			}
		}
	}
}

// TestDisabledInjector: the production singleton never fires and a
// Plan with no rates behaves identically.
func TestDisabledInjector(t *testing.T) {
	for i := 0; i < 100; i++ {
		if _, ok := Disabled.Fire(ServeConnReset); ok {
			t.Fatal("Disabled fired")
		}
	}
	p := MustPlan(Spec{Seed: 99})
	for _, site := range Sites() {
		for i := 0; i < 100; i++ {
			if _, ok := p.Fire(site); ok {
				t.Fatalf("empty-rate plan fired at %s", site)
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    Spec
		wantErr bool
	}{
		{
			in: "seed=42,delay=2ms,serve.handler.delay=0.05,cache.leader.panic=0.01",
			want: Spec{Seed: 42, Delay: 2 * time.Millisecond, Rates: map[Site]float64{
				ServeHandlerDelay: 0.05, CacheLeaderPanic: 0.01,
			}},
		},
		{
			in:   "seed=-7, churn.repair.fail=1",
			want: Spec{Seed: -7, Rates: map[Site]float64{ChurnRepairFail: 1}},
		},
		{in: "", wantErr: true},
		{in: "seed=abc", wantErr: true},
		{in: "delay=xyz", wantErr: true},
		{in: "serve.handler.delay", wantErr: true},
		{in: "no.such.site=0.1", wantErr: true},
		{in: "serve.conn.reset=1.5", wantErr: true},
		{in: "serve.conn.reset=-0.1", wantErr: true},
		{in: "delay=-1ms", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			got, err := ParseSpec(tc.in)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ParseSpec(%q) = %+v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", tc.in, err)
			}
			if got.Seed != tc.want.Seed || got.Delay != tc.want.Delay {
				t.Fatalf("got %+v, want %+v", got, tc.want)
			}
			if len(got.Rates) != len(tc.want.Rates) {
				t.Fatalf("rates %+v, want %+v", got.Rates, tc.want.Rates)
			}
			for k, v := range tc.want.Rates {
				if got.Rates[k] != v {
					t.Fatalf("rate[%s] = %v, want %v", k, got.Rates[k], v)
				}
			}
		})
	}
}

// TestSpecStringRoundTrip: String output reparses to an equivalent
// spec (so the effective chaos schedule can be logged and replayed).
func TestSpecStringRoundTrip(t *testing.T) {
	orig := Spec{Seed: 17, Delay: 500 * time.Microsecond, Rates: map[Site]float64{
		ServeConnReset: 0.02, SimSlotSlow: 0.125,
	}}
	back, err := ParseSpec(orig.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", orig.String(), err)
	}
	if fmt.Sprint(back) != fmt.Sprint(orig.String()) && back.String() != orig.String() {
		t.Fatalf("round trip: %q -> %q", orig.String(), back.String())
	}
}
