package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sinrconn/internal/lint"
)

// hotpathGate names the runtime AllocsPerRun test that pins one annotated
// function's steady-state allocation count to zero.
type hotpathGate struct {
	test string // test function name
	file string // module-relative file holding it
}

// hotpathGates is the hand-maintained coverage table: every //sinr:hotpath
// annotation in the repo must map to a live zero-alloc gate, and every row
// here must correspond to an annotation that still exists. Adding an
// annotation without a gate — or deleting a hot function without pruning
// its row — fails TestHotpathAnnotationsHaveAllocGates.
var hotpathGates = map[string]hotpathGate{
	"internal/sim.Engine.Step":              {"TestSlotLoopZeroAlloc", "internal/sim/alloc_test.go"},
	"internal/sim.Engine.stepRange":         {"TestSlotLoopZeroAlloc", "internal/sim/alloc_test.go"},
	"internal/sim.Engine.decodeRange":       {"TestSlotLoopZeroAlloc", "internal/sim/alloc_test.go"},
	"internal/sim.Engine.decodeListener":    {"TestSlotLoopZeroAlloc", "internal/sim/alloc_test.go"},
	"internal/sim.Engine.decodeListenerFar": {"TestFarFieldSlotLoopZeroAlloc", "internal/sim/farfield_test.go"},
	"internal/sim.Engine.finishDecode":      {"TestSlotLoopZeroAlloc", "internal/sim/alloc_test.go"},

	"internal/sinr.Instance.SINRFeasibleBuf":    {"TestSINRFeasibleBufZeroAlloc", "internal/sinr/alloc_test.go"},
	"internal/sinr.Instance.SINRFeasibleFarBuf": {"TestSINRFeasibleFarBufZeroAlloc", "internal/sinr/alloc_test.go"},
	"internal/sinr.FarField.Accumulate":         {"TestFarFieldSlotLoopZeroAlloc", "internal/sim/farfield_test.go"},
	"internal/sinr.FarField.Resolve":            {"TestFarFieldSlotLoopZeroAlloc", "internal/sim/farfield_test.go"},
	"internal/sinr.FarField.LinkSINR":           {"TestSINRFeasibleFarBufZeroAlloc", "internal/sinr/alloc_test.go"},
	"internal/sinr.QuadScratch.Accumulate":      {"TestQuadtreeSlotLoopZeroAlloc", "internal/sim/adaptive_test.go"},
	"internal/sinr.QuadScratch.Resolve":         {"TestQuadtreeSlotLoopZeroAlloc", "internal/sim/adaptive_test.go"},
	"internal/sinr.QuadScratch.LinkSINR":        {"TestSINRFeasibleFarBufZeroAlloc", "internal/sinr/alloc_test.go"},

	// PR 9: sharded accumulate, listener batching, and the f32 walk.
	"internal/sinr.QuadScratch.AccumBegin":    {"TestShardedAccumulateZeroAlloc", "internal/sinr/quadtree_shard_test.go"},
	"internal/sinr.QuadScratch.AccumShard":    {"TestShardedAccumulateZeroAlloc", "internal/sinr/quadtree_shard_test.go"},
	"internal/sinr.QuadScratch.AccumFinish":   {"TestShardedAccumulateZeroAlloc", "internal/sinr/quadtree_shard_test.go"},
	"internal/sinr.QuadScratch.round32Shard":  {"TestShardedAccumulateZeroAlloc", "internal/sinr/quadtree_shard_test.go"},
	"internal/sinr.QuadScratch.round32Finish": {"TestShardedAccumulateZeroAlloc", "internal/sinr/quadtree_shard_test.go"},
	"internal/sinr.QuadScratch.ResolveBatch":  {"TestResolveBatchZeroAlloc", "internal/sinr/quadtree_batch_test.go"},
	"internal/sinr.QuadScratch.resolveChunk":  {"TestResolveBatchZeroAlloc", "internal/sinr/quadtree_batch_test.go"},
	"internal/sinr.QuadScratch.soloTail":      {"TestResolveBatchZeroAlloc", "internal/sinr/quadtree_batch_test.go"},
	"internal/sinr.QuadScratch.round32Active": {"TestFloat32ResolverZeroAlloc", "internal/sinr/quadtree_f32_test.go"},
	"internal/sinr.QuadScratch.resolve32":     {"TestFloat32ResolverZeroAlloc", "internal/sinr/quadtree_f32_test.go"},
	"internal/sinr.QuadScratch.linkSINR32":    {"TestFloat32ResolverZeroAlloc", "internal/sinr/quadtree_f32_test.go"},

	"internal/sim.farSink.DeliverFar":         {"TestQuadtreeSlotLoopZeroAlloc", "internal/sim/adaptive_test.go"},
	"internal/sim.Engine.buildFarRuns":        {"TestQuadtreeSlotLoopZeroAlloc", "internal/sim/adaptive_test.go"},
	"internal/sim.Engine.decodeFarBatchRange": {"TestQuadtreeSlotLoopZeroAlloc", "internal/sim/adaptive_test.go"},
}

// scanAnnotations walks the module (skipping testdata and test files) and
// returns the key of every function annotated //sinr:hotpath.
func scanAnnotations(t *testing.T, root string) map[string]bool {
	t.Helper()
	found := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fn.Doc.List {
				if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == lint.HotPathAnnotation {
					annotated = true
				}
			}
			if !annotated {
				continue
			}
			key := filepath.ToSlash(rel) + "." + recvName(fn) + fn.Name.Name
			found[key] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}

func recvName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "."
	}
	return ""
}

// TestHotpathAnnotationsHaveAllocGates keeps the static annotation set and
// the runtime zero-alloc gates in lockstep, in both directions, and checks
// each named gate is a real AllocsPerRun test in the file the table claims.
func TestHotpathAnnotationsHaveAllocGates(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	annotations := scanAnnotations(t, root)
	for key := range annotations {
		if _, ok := hotpathGates[key]; !ok {
			t.Errorf("//sinr:hotpath on %s has no zero-alloc gate; add a row to hotpathGates and an AllocsPerRun test", key)
		}
	}
	for key := range hotpathGates {
		if !annotations[key] {
			t.Errorf("hotpathGates row %s matches no //sinr:hotpath annotation; prune it or restore the annotation", key)
		}
	}
	checked := map[string]bool{}
	for key, gate := range hotpathGates {
		id := gate.file + ":" + gate.test
		if checked[id] {
			continue
		}
		checked[id] = true
		src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(gate.file)))
		if err != nil {
			t.Errorf("gate file for %s: %v", key, err)
			continue
		}
		text := string(src)
		if !strings.Contains(text, "func "+gate.test+"(") {
			t.Errorf("gate %s not found in %s", gate.test, gate.file)
		}
		if !strings.Contains(text, "AllocsPerRun") {
			t.Errorf("gate file %s has no AllocsPerRun check", gate.file)
		}
	}
}
