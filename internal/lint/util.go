// Package lint holds the repo's custom static analyzers — one per invariant
// stated in DESIGN.md §11 — plus the driver that runs them and applies
// //lint:ignore suppressions. See the sibling analysis, loader, and
// analysistest packages for the x/tools-free plumbing.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"sinrconn/internal/lint/analysis"
)

// importsOf returns the import path → local name mapping of one file
// (the zero name means "default package name").
func importsOf(f *ast.File) map[string]string {
	m := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[path] = name
	}
	return m
}

// isPkgIdent reports whether the identifier resolves to the package named by
// pkgPath, using type info when present and the file's import table as the
// syntactic fallback.
func isPkgIdent(pass *analysis.Pass, file *ast.File, id *ast.Ident, pkgPath string) bool {
	if obj, ok := pass.TypesInfo.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path() == pkgPath
		}
		return false
	}
	// No type info: accept when the file imports pkgPath under this name.
	local, ok := importsOf(file)[pkgPath]
	if !ok {
		return false
	}
	if local == "" {
		local = pkgPath[strings.LastIndex(pkgPath, "/")+1:]
	}
	return id.Name == local
}

// pkgCall matches a call of the form <pkg>.<name>(...) against pkgPath and
// returns the selected name ("" when the call does not target that package).
func pkgCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, pkgPath string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isPkgIdent(pass, file, id, pkgPath) {
		return ""
	}
	return sel.Sel.Name
}

// funcHasAnnotation reports whether the function's doc comment carries the
// given magic comment (e.g. "sinr:hotpath"), with optional trailing text.
func funcHasAnnotation(fn *ast.FuncDecl, annotation string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == annotation || strings.HasPrefix(text, annotation+" ") {
			return true
		}
	}
	return false
}

// isContextType reports whether the expression denotes context.Context,
// syntactically (selector "context.Context") or via type info.
func isContextType(pass *analysis.Pass, file *ast.File, expr ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Type != nil {
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
		}
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && isPkgIdent(pass, file, id, "context")
}

// isSentinelErr reports whether the expression references a package-level
// error sentinel: an identifier or selector matching Err[A-Z]… that (when
// type info is available) resolves to a package-scope variable.
func isSentinelErr(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	var id *ast.Ident
	name := ""
	switch e := expr.(type) {
	case *ast.Ident:
		id, name = e, e.Name
	case *ast.SelectorExpr:
		id, name = e.Sel, e.Sel.Name
		if x, ok := e.X.(*ast.Ident); ok {
			name = x.Name + "." + e.Sel.Name
		}
	default:
		return "", false
	}
	base := id.Name
	if len(base) < 4 || !strings.HasPrefix(base, "Err") || base[3] < 'A' || base[3] > 'Z' {
		return "", false
	}
	if obj, ok := pass.TypesInfo.Uses[id]; ok {
		v, isVar := obj.(*types.Var)
		if !isVar {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() != nil && v.Parent() != v.Pkg().Scope() {
			return "", false // shadowing local, not a sentinel
		}
	}
	return name, true
}
