package sim

// Far-field engine suite: the approximate decode path keeps the exact
// path's structural guarantees — exact winner identity, zero-allocation
// steady state, worker-count independence — while Delivery.SINR carries the
// plan's certified ε bound.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// farTestEngine builds an engine over a jittered-grid instance with fixed
// transmit roles so exact and far-field runs see identical sender sets
// regardless of what gets delivered.
func farTestEngine(t *testing.T, n, workers int, maxRelErr float64) *Engine {
	t.Helper()
	pts := workload.JitteredGrid(rand.New(rand.NewSource(11)), n, 3, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	power := in.Params().SafePower(4)
	procs := make([]Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &fixedProto{id: i, transmit: i%4 == 0, power: power}
	}
	cfg := Config{Workers: workers, Seed: 3}
	if maxRelErr > 0 {
		f, err := in.FarField(maxRelErr)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FarField = f
	}
	e, err := NewEngine(in, procs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFarFieldEngineMatchesExactDeliveries compares far-field and exact
// engines slot by slot on a fixed-role instance: every delivery's sender
// and receiver must match (winner exactness), and the approximate SINR must
// stay within the certified band of the exact one. Decode *verdicts* can in
// principle flip inside the band at the β cut; the comfortable SafePower
// margins here keep every decision far from it, so delivery sets are equal.
func TestFarFieldEngineMatchesExactDeliveries(t *testing.T) {
	const n, slots = 256, 12
	type capture struct {
		from, to int
		sinr     float64
	}
	run := func(maxRelErr float64) ([]capture, Stats, float64) {
		pts := workload.JitteredGrid(rand.New(rand.NewSource(11)), n, 3, 0.8)
		in := sinr.MustInstance(pts, sinr.DefaultParams())
		power := in.Params().SafePower(4)
		procs := make([]Protocol, n)
		recs := make([]*recordingProto, n)
		for i := 0; i < n; i++ {
			recs[i] = &recordingProto{fixedProto: fixedProto{id: i, transmit: i%4 == 0, power: power}}
			procs[i] = recs[i]
		}
		cfg := Config{Workers: 1, Seed: 3}
		ce := 0.0
		if maxRelErr > 0 {
			f, err := in.FarField(maxRelErr)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FarField = f
			ce = f.CertifiedMaxRelError()
		}
		e, err := NewEngine(in, procs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run(slots)
		var caps []capture
		for i, r := range recs {
			for _, d := range r.got {
				caps = append(caps, capture{from: d.Msg.From, to: i, sinr: d.SINR})
			}
		}
		return caps, e.Stats(), ce
	}
	exact, exactStats, _ := run(0)
	far, farStats, ce := run(0.5)
	if len(exact) != len(far) {
		t.Fatalf("delivery count: exact %d far %d", len(exact), len(far))
	}
	if exactStats.Deliveries != farStats.Deliveries || exactStats.Transmissions != farStats.Transmissions {
		t.Fatalf("stats diverged: exact %+v far %+v", exactStats, farStats)
	}
	for i := range exact {
		if exact[i].from != far[i].from || exact[i].to != far[i].to {
			t.Fatalf("delivery %d: exact %d→%d, far %d→%d",
				i, exact[i].from, exact[i].to, far[i].from, far[i].to)
		}
		// The certificate bounds exact relative to the approximate value:
		// exact ∈ [far·(1−ε), far·(1+ε)] — equivalently far ∈
		// [exact/(1+ε), exact/(1−ε)], whose upper side degenerates for
		// ε ≥ 1, so gate in the far-normalized form.
		lo := far[i].sinr * (1 - ce) * (1 - 1e-9)
		hi := far[i].sinr * (1 + ce) * (1 + 1e-9)
		if exact[i].sinr < lo || exact[i].sinr > hi {
			t.Fatalf("delivery %d (%d→%d): far SINR %v outside certified band of exact %v (ε=%v)",
				i, exact[i].from, exact[i].to, far[i].sinr, exact[i].sinr, ce)
		}
	}
}

// recordingProto is fixedProto plus an inbox log.
type recordingProto struct {
	fixedProto
	got []Delivery
}

func (p *recordingProto) Step(slot int, inbox []Delivery) Action {
	p.got = append(p.got, inbox...)
	return p.fixedProto.Step(slot, inbox)
}

// TestFarFieldSlotLoopZeroAlloc asserts the far-field slot loop keeps the
// exact path's zero-allocation steady state, serial and pooled.
func TestFarFieldSlotLoopZeroAlloc(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := farTestEngine(t, 256, workers, 0.5)
		e.Run(8)
		allocs := testing.AllocsPerRun(50, func() { e.Step() })
		e.Close()
		if allocs != 0 {
			t.Fatalf("workers=%d: far-field steady-state Step allocates %.1f times/op, want 0", workers, allocs)
		}
	}
}

// TestFarFieldPoolMatchesSerial asserts far-field results are identical for
// any worker count, like the exact engine's determinism contract.
func TestFarFieldPoolMatchesSerial(t *testing.T) {
	run := func(workers int) Stats {
		e := farTestEngine(t, 256, workers, 0.5)
		defer e.Close()
		e.Run(30)
		return e.Stats()
	}
	serial, pooled := run(1), run(4)
	if serial != pooled {
		t.Fatalf("worker count changed far-field results: serial %+v pooled %+v", serial, pooled)
	}
}

// TestFarFieldEngineRejectsForeignPlan pins the config validation: a plan
// built over a different instance must be refused.
func TestFarFieldEngineRejectsForeignPlan(t *testing.T) {
	pts := workload.JitteredGrid(rand.New(rand.NewSource(1)), 64, 3, 0.5)
	other := make([]geom.Point, len(pts))
	copy(other, pts)
	inA := sinr.MustInstance(pts, sinr.DefaultParams())
	inB := sinr.MustInstance(other, sinr.DefaultParams())
	f, err := inB.FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]Protocol, inA.Len())
	for i := range procs {
		procs[i] = &fixedProto{id: i}
	}
	if _, err := NewEngine(inA, procs, Config{FarField: f}); err == nil {
		t.Fatal("engine accepted a far-field plan from a different instance")
	}
}

// TestFarFieldSaturation mirrors the exact engine's co-located-sender
// semantics: a duplicate-point transmitter drowns every listener.
func TestFarFieldSaturation(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 5, Y: 0}, {X: 9, Y: 3}}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	f, err := in.FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	power := in.Params().SafePower(4)
	procs := []Protocol{
		&fixedProto{id: 0, transmit: true, power: power},
		&fixedProto{id: 1, transmit: true, power: power},
		&fixedProto{id: 2},
		&fixedProto{id: 3},
	}
	e, err := NewEngine(in, procs, Config{Workers: 1, FarField: f})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run(3)
	st := e.Stats()
	if st.Deliveries != 0 {
		t.Fatalf("co-located senders delivered %d messages, want 0", st.Deliveries)
	}
	if st.Collisions == 0 {
		t.Fatal("saturation not recorded as collisions")
	}
	if math.IsNaN(float64(st.Collisions)) {
		t.Fatal("impossible")
	}
}
