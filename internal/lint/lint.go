package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"sinrconn/internal/lint/analysis"
	"sinrconn/internal/lint/loader"
)

// Analyzers returns the repo's invariant suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		OraclePurity,
		HotPathAlloc,
		Determinism,
		CtxDiscipline,
		ErrDiscipline,
	}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers     []string
	justification string
	pos           token.Pos
	used          bool
}

func (d *ignoreDirective) covers(name string) bool {
	for _, a := range d.analyzers {
		if a == name || a == "all" {
			return true
		}
	}
	return false
}

// parseIgnores maps file → line → directive. A directive suppresses
// matching diagnostics on its own line, or — when it stands on a line of
// its own — on the line below, mirroring staticcheck's convention.
func parseIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int]*ignoreDirective {
	out := make(map[string]map[int]*ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := &ignoreDirective{pos: c.Pos()}
				if len(fields) > 0 {
					d.analyzers = strings.Split(fields[0], ",")
				}
				if len(fields) > 1 {
					d.justification = strings.Join(fields[1:], " ")
				}
				p := fset.Position(c.Pos())
				m := out[p.Filename]
				if m == nil {
					m = make(map[int]*ignoreDirective)
					out[p.Filename] = m
				}
				m[p.Line] = d
			}
		}
	}
	return out
}

// RunResult is the outcome of one lint run.
type RunResult struct {
	Diagnostics []analysis.Diagnostic // unsuppressed findings, position-sorted
	Fset        *token.FileSet
}

// Run loads the packages matched by patterns relative to moduleDir and runs
// every analyzer, applying //lint:ignore suppressions. Diagnostics about the
// directives themselves (missing justification, unused directive) are
// reported under the pseudo-analyzer name "lintdirective" and cannot be
// suppressed.
func Run(moduleDir string, patterns []string, analyzers []*analysis.Analyzer) (*RunResult, error) {
	ld := loader.New(moduleDir)
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		return nil, err
	}
	res := &RunResult{Fset: ld.Fset}
	for _, pkg := range pkgs {
		if !strings.HasPrefix(pkg.Path, "sinrconn") {
			continue
		}
		for _, e := range pkg.TypeErrors {
			return nil, fmt.Errorf("lint: type checking %s: %v", pkg.Path, e)
		}
		diags, err := RunPackage(ld.Fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		pi, pj := ld.Fset.Position(res.Diagnostics[i].Pos), ld.Fset.Position(res.Diagnostics[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return res, nil
}

// RunPackage runs the analyzers over one loaded package and applies the
// package's //lint:ignore directives.
func RunPackage(fset *token.FileSet, pkg *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var raw []analysis.Diagnostic
	for _, a := range analyzers {
		name := a.Name
		pass := analysis.NewPass(fset, pkg.Files, pkg.Types, pkg.Path, pkg.Info, func(d analysis.Diagnostic) {
			d.Analyzer = name
			raw = append(raw, d)
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	ignores := parseIgnores(fset, pkg.Files)
	var out []analysis.Diagnostic
	for _, d := range raw {
		p := fset.Position(d.Pos)
		if dir := lookupIgnore(ignores, p); dir != nil && dir.covers(d.Analyzer) {
			if dir.justification != "" {
				dir.used = true
				continue
			}
			// fall through: an unjustified directive suppresses nothing
		}
		out = append(out, d)
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, byLine := range ignores {
		for _, dir := range byLine {
			// Directives addressed (even partly) to other tools — e.g.
			// staticcheck's SA… checks — are not ours to police.
			foreign := false
			for _, name := range dir.analyzers {
				if !known[name] && name != "all" {
					foreign = true
				}
			}
			if foreign {
				continue
			}
			if dir.justification == "" {
				out = append(out, analysis.Diagnostic{
					Pos:      dir.pos,
					Analyzer: "lintdirective",
					Message:  "//lint:ignore requires a justification: //lint:ignore <analyzer> <why this site is exempt>",
				})
			} else if !dir.used {
				out = append(out, analysis.Diagnostic{
					Pos:      dir.pos,
					Analyzer: "lintdirective",
					Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing; delete it", strings.Join(dir.analyzers, ",")),
				})
			}
		}
	}
	return out, nil
}

func lookupIgnore(ignores map[string]map[int]*ignoreDirective, p token.Position) *ignoreDirective {
	byLine := ignores[p.Filename]
	if byLine == nil {
		return nil
	}
	if d := byLine[p.Line]; d != nil {
		return d
	}
	return byLine[p.Line-1]
}

// Print writes the findings in the conventional file:line:col form and
// returns the number written.
func (r *RunResult) Print(w io.Writer) int {
	for _, d := range r.Diagnostics {
		fmt.Fprintf(w, "%s: %s (%s)\n", r.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return len(r.Diagnostics)
}
