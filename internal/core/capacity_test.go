package core

import (
	"context"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/power"
	"sinrconn/internal/sinr"
)

func pairLinks(n int) []sinr.Link {
	var links []sinr.Link
	for i := 0; i+1 < n; i += 2 {
		links = append(links, sinr.Link{From: i, To: i + 1})
	}
	return links
}

func TestCentralCapacityEmpty(t *testing.T) {
	in := uniformInstance(t, 1, 4)
	if got := CentralCapacity(in, nil, 0); len(got) != 0 {
		t.Errorf("CentralCapacity(empty) = %v", got)
	}
}

func TestCentralCapacitySelectsDisjointFeasible(t *testing.T) {
	in := uniformInstance(t, 2, 60)
	links := pairLinks(60)
	sel := CentralCapacity(in, links, 0)
	if len(sel) == 0 {
		t.Fatal("nothing selected")
	}
	// One link per node.
	busy := map[int]bool{}
	for _, l := range sel {
		if busy[l.From] || busy[l.To] {
			t.Fatalf("node reused in %v", l)
		}
		busy[l.From] = true
		busy[l.To] = true
	}
	// Invariant holds by construction.
	if !Eqn3Holds(in, sel, 0) {
		t.Error("Eqn3 invariant violated")
	}
	// Kesselheim's guarantee: a feasible power assignment exists.
	if _, _, err := power.Solve(in, sel, power.Options{}); err != nil {
		t.Errorf("selected set not power-control feasible: %v", err)
	}
}

func TestCentralCapacityRespectsNodeConflicts(t *testing.T) {
	in := uniformInstance(t, 3, 12)
	// Two links sharing node 0: at most one can be selected.
	links := []sinr.Link{{From: 0, To: 1}, {From: 0, To: 2}, {From: 2, To: 0}}
	sel := CentralCapacity(in, links, 0)
	seen := map[int]int{}
	for _, l := range sel {
		seen[l.From]++
		seen[l.To]++
	}
	for node, cnt := range seen {
		if cnt > 1 {
			t.Errorf("node %d in %d selected links", node, cnt)
		}
	}
}

func TestEqn3HoldsDetectsViolation(t *testing.T) {
	// Two crossed links violate the invariant for small τ.
	in := lineInstanceCore(t, 0, 1, 2, 3)
	bad := []sinr.Link{{From: 0, To: 2}, {From: 3, To: 1}}
	if Eqn3Holds(in, bad, 0.1) {
		t.Error("Eqn3Holds accepted crossed links at tiny tau")
	}
	if !Eqn3Holds(in, nil, 0) {
		t.Error("Eqn3Holds rejected empty set")
	}
}

func TestCentralCapacityLargerTauSelectsMore(t *testing.T) {
	in := uniformInstance(t, 5, 80)
	links := pairLinks(80)
	small := CentralCapacity(in, links, 0.2)
	large := CentralCapacity(in, links, 1.5)
	if len(large) < len(small) {
		t.Errorf("tau=1.5 selected %d < tau=0.2 selected %d", len(large), len(small))
	}
}

func TestLowDegreeSubset(t *testing.T) {
	in := uniformInstance(t, 6, 96)
	res, err := Init(context.Background(), in, InitConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	core := LowDegreeSubset(res.Tree, 0) // default rho
	if len(core) == 0 {
		t.Fatal("empty low-degree core")
	}
	deg := res.Tree.Degrees()
	for _, tl := range core {
		if deg[tl.L.From] > DefaultRho || deg[tl.L.To] > DefaultRho {
			t.Fatalf("high-degree endpoint in core link %v", tl.L)
		}
	}
	// Theorem 13 shape: the core retains a constant fraction.
	frac := RetentionFraction(res.Tree, 0)
	if frac < 0.5 {
		t.Errorf("retention fraction %v < 0.5", frac)
	}
	// Tiny rho may strip everything but must never panic.
	_ = LowDegreeSubset(res.Tree, 1)
}

func TestRetentionFractionEmptyTree(t *testing.T) {
	in := uniformInstance(t, 7, 4)
	res, err := Init(context.Background(), in, InitConfig{Seed: 1, Participants: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := RetentionFraction(res.Tree, 0); got != 1 {
		t.Errorf("RetentionFraction(empty) = %v", got)
	}
}

func lineInstanceCore(t testing.TB, xs ...float64) *sinr.Instance {
	t.Helper()
	return lineInst(xs...)
}

func lineInst(xs ...float64) *sinr.Instance {
	pts := make([]geom.Point, len(xs))
	for i, x := range xs {
		pts[i] = geom.Point{X: x}
	}
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

func TestSampleProb(t *testing.T) {
	if got := SampleProb(10, 0.25); got <= 0 || got > 1 {
		t.Errorf("SampleProb = %v", got)
	}
	if got := SampleProb(0.5, 0); got != 1 {
		t.Errorf("tiny upsilon should clamp to 1, got %v", got)
	}
	// Larger upsilon → smaller probability.
	if SampleProb(100, 0.25) >= SampleProb(10, 0.25) {
		t.Error("SampleProb not decreasing in upsilon")
	}
}

func TestVerifyPairBasics(t *testing.T) {
	in := uniformInstance(t, 8, 40)
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	if got := VerifyPair(in, nil, pa); got != nil {
		t.Errorf("VerifyPair(empty) = %v", got)
	}
	// A single isolated link always survives.
	links := []sinr.Link{{From: 0, To: 1}}
	got := VerifyPair(in, links, pa)
	if len(got) != 1 || got[0] != links[0] {
		t.Errorf("VerifyPair(single) = %v", got)
	}
}

func TestVerifyPairHalfDuplex(t *testing.T) {
	// Chain links 0→1 and 1→2: node 1 transmits (as sender of 1→2) and so
	// cannot receive 0→1.
	in := lineInst(0, 1, 2)
	pa := sinr.NoiseSafeLinear(in.Params())
	got := VerifyPair(in, []sinr.Link{{From: 0, To: 1}, {From: 1, To: 2}}, pa)
	for _, l := range got {
		if l == (sinr.Link{From: 0, To: 1}) {
			t.Error("half-duplex violated: 0→1 succeeded while 1 transmits")
		}
	}
}

func TestVerifyPairDuplicateSender(t *testing.T) {
	in := lineInst(0, 1, 2)
	pa := sinr.NoiseSafeLinear(in.Params())
	got := VerifyPair(in, []sinr.Link{{From: 0, To: 1}, {From: 0, To: 2}}, pa)
	if len(got) > 1 {
		t.Errorf("duplicate sender served %d links", len(got))
	}
}

func TestVerifyPairResultFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		in := uniformInstance(t, int64(trial+20), 40)
		pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
		got := VerifyPair(in, pairLinks(40), pa)
		if len(got) == 0 {
			continue
		}
		if !in.Feasible(got, pa) {
			t.Fatalf("trial %d: VerifyPair output infeasible", trial)
		}
		_ = rng
	}
}

func TestMeanSample(t *testing.T) {
	// Realistic candidates: the low-degree core of an Init tree (what
	// TreeViaCapacity actually feeds in), sampled at the paper's 1/(4γ₁Υ).
	in := uniformInstance(t, 10, 60)
	res, err := Init(context.Background(), in, InitConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var cand []sinr.Link
	for _, tl := range LowDegreeSubset(res.Tree, 0) {
		cand = append(cand, tl.L)
	}
	pa := sinr.NoiseSafeMean(in.Params(), in.Delta())
	q := SampleProb(in.Upsilon(), 0.25)
	total := 0
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sel := MeanSample(in, cand, pa, q, rng)
		total += len(sel)
		if len(sel) > 0 && !in.Feasible(sel, pa) {
			t.Fatalf("seed %d: MeanSample output infeasible", seed)
		}
	}
	if total == 0 {
		t.Error("MeanSample never selected anything over 8 seeds")
	}
	rng := rand.New(rand.NewSource(1))
	if got := MeanSample(in, cand, pa, 0, rng); got != nil {
		t.Errorf("q=0 selected %v", got)
	}
	// q > 1 clamps to 1 (every candidate tries at once).
	sel := MeanSample(in, cand, pa, 5, rng)
	if len(sel) > 0 && !in.Feasible(sel, pa) {
		t.Error("clamped q output infeasible")
	}
}
