package workload

// The widened scenario matrix: generators for the clustered and
// high-density regimes the original suite (uniform / clusters / grid /
// chain) never produces — Gaussian pockets with unbounded tails, annulus
// bands, power-law radii (a 2D high-Δ instance denser than the exponential
// chain), and a two-scale "city + suburbs" layout. Every generator honors
// the package contract: minimum pairwise distance ≥ 1 (the paper's
// normalization), enforced by rejection with automatic parameter growth so
// calls always terminate.

import (
	"math"
	"math/rand"

	"sinrconn/internal/geom"
)

// minDistOK reports whether cand keeps the min-distance-1 contract against
// the points placed so far. Quadratic on purpose: generators run at test
// scale and transparency beats speed here.
func minDistOK(pts []geom.Point, cand geom.Point) bool {
	for _, p := range pts {
		if p.Dist(cand) < 1 {
			return false
		}
	}
	return true
}

// fillRejecting draws candidates from sample until n points satisfy the
// min-distance contract. After stall consecutive rejections it calls relax
// (which must make room — grow a radius, widen a span) and restarts.
func fillRejecting(n int, sample func() geom.Point, relax func()) []geom.Point {
	if n <= 0 {
		return nil
	}
	pts := make([]geom.Point, 0, n)
	stall := 200*n + 200
	fails := 0
	for len(pts) < n {
		cand := sample()
		if minDistOK(pts, cand) {
			pts = append(pts, cand)
			fails = 0
		} else if fails++; fails > stall {
			relax()
			pts = pts[:0]
			fails = 0
		}
	}
	return pts
}

// GaussianClusters places n points into k clusters whose centers are
// uniform on a span×span square and whose members are Gaussian-distributed
// around the center with standard deviation sigma. Unlike Clusters (uniform
// discs), the Gaussian tails overlap pockets and produce the in-between
// stragglers that stress length-class algorithms. Minimum pairwise
// distance 1 is enforced by rejection; sigma grows if the density is
// impossible.
func GaussianClusters(rng *rand.Rand, n, k int, sigma, span float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if sigma < 1 {
		sigma = 1
	}
	// A Gaussian pocket holds ~π·(2σ)² points at min spacing 1.
	for float64(k)*4*math.Pi*sigma*sigma < 2*float64(n) {
		sigma *= 1.4
	}
	if minSpan := 6 * sigma; span < minSpan {
		span = minSpan
	}
	centers := make([]geom.Point, k)
	reseed := func() {
		for i := range centers {
			centers[i] = geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		}
	}
	reseed()
	return fillRejecting(n,
		func() geom.Point {
			c := centers[rng.Intn(k)]
			return geom.Point{X: c.X + rng.NormFloat64()*sigma, Y: c.Y + rng.NormFloat64()*sigma}
		},
		func() { sigma *= 1.4; reseed() })
}

// Annulus scatters n points uniformly (by area) on the ring between radii
// inner and outer — the topology of a sensor belt around an obstacle, where
// every converge-cast path is forced around the hole. Minimum pairwise
// distance 1 is enforced by rejection; the outer radius grows if the band
// cannot hold n points.
func Annulus(rng *rand.Rand, n int, inner, outer float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if inner < 0 {
		inner = 0
	}
	if outer < inner+1 {
		outer = inner + 1
	}
	// Band area must comfortably exceed n unit discs.
	for math.Pi*(outer*outer-inner*inner) < 2*float64(n) {
		outer *= 1.3
	}
	return fillRejecting(n,
		func() geom.Point {
			// Uniform by area: r² uniform on [inner², outer²].
			r := math.Sqrt(inner*inner + rng.Float64()*(outer*outer-inner*inner))
			a := rng.Float64() * 2 * math.Pi
			return geom.Point{X: r * math.Cos(a), Y: r * math.Sin(a)}
		},
		func() { outer *= 1.3 })
}

// PowerLawRadii scatters n points at Pareto-distributed distances from the
// origin (radius = scale·u^{-1/(exponent-1)}, uniform angle): a dense core
// with a sparse far halo, the 2D analog of the exponential chain. It drives
// Δ high while keeping most pairwise distances short — the regime where
// log Δ and log n algorithms separate on two-dimensional instances.
// Minimum pairwise distance 1 is enforced by rejection; scale grows if the
// core is impossibly dense.
func PowerLawRadii(rng *rand.Rand, n int, exponent, scale float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	if exponent <= 1.1 {
		exponent = 1.1
	}
	if scale < 1 {
		scale = 1
	}
	return fillRejecting(n,
		func() geom.Point {
			u := rng.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			r := scale * math.Pow(u, -1/(exponent-1))
			a := rng.Float64() * 2 * math.Pi
			return geom.Point{X: r * math.Cos(a), Y: r * math.Sin(a)}
		},
		func() { scale *= 1.3 })
}

// CitySuburbs builds a two-scale population layout: coreFrac of the points
// packed densely in a central "city" square, the rest scattered across a
// surrounding square ten times wider (the "suburbs", which include the
// city's airspace — suburban points may fall between city blocks if
// spacing allows). Minimum pairwise distance 1 holds across both scales, so
// city links are short and suburb links long, stressing schedulers that
// group by length class. coreFrac is clamped to [0, 1].
func CitySuburbs(rng *rand.Rand, n int, coreFrac float64) []geom.Point {
	if n <= 0 {
		return nil
	}
	coreFrac = math.Max(0, math.Min(1, coreFrac))
	city := int(math.Round(float64(n) * coreFrac))
	citySpan := 1.6 * math.Sqrt(float64(city)+1)
	stall := 200*n + 200
	for {
		subSpan := 10 * citySpan
		off := (subSpan - citySpan) / 2
		pts := make([]geom.Point, 0, n)
		place := func(count int, sample func() geom.Point) bool {
			fails := 0
			for placed := 0; placed < count; {
				cand := sample()
				if minDistOK(pts, cand) {
					pts = append(pts, cand)
					placed++
					fails = 0
				} else if fails++; fails > stall {
					return false
				}
			}
			return true
		}
		cityOK := place(city, func() geom.Point {
			return geom.Point{X: off + rng.Float64()*citySpan, Y: off + rng.Float64()*citySpan}
		})
		if cityOK && place(n-city, func() geom.Point {
			return geom.Point{X: rng.Float64() * subSpan, Y: rng.Float64() * subSpan}
		}) {
			return pts
		}
		citySpan *= 1.3 // too dense at this scale; widen both tiers and retry
	}
}

// UniformSeeded is the shared deterministic test generator: n points
// uniform on a 2.6√n square at min distance 1, all randomness from the
// seed. It reproduces (bit for bit) the uniformPoints helper the root test
// suites historically re-declared, so existing golden expectations keep
// their point sets.
func UniformSeeded(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	span := 2.6 * math.Sqrt(float64(n))
	var pts []geom.Point
	for len(pts) < n {
		cand := geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		if minDistOK(pts, cand) {
			pts = append(pts, cand)
		}
	}
	return pts
}

// Matrix returns the full scenario matrix: the Standard suite plus the
// clustered/high-density generators above. This is the generator axis of
// the correctness cross-product suite (generator × α × power scheme ×
// pipeline).
func Matrix() []Spec {
	return append(Standard(), []Spec{
		{Name: "gaussians", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return GaussianClusters(rng, n, 1+n/24, 3, 80)
		}},
		{Name: "annulus", Gen: func(rng *rand.Rand, n int) []geom.Point {
			r := math.Sqrt(float64(n))
			return Annulus(rng, n, 3*r, 4*r)
		}},
		{Name: "powerlaw", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return PowerLawRadii(rng, n, 2.5, 2)
		}},
		{Name: "city", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return CitySuburbs(rng, n, 0.7)
		}},
	}...)
}
