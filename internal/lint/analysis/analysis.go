// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface the repo's analyzers need:
// an Analyzer is a named Run function over a Pass, a Pass bundles one
// type-checked package with a Report sink, and a Diagnostic is a positioned
// message. The container bakes in no module proxy access, so the real
// x/tools packages cannot be fetched; the analyzers in internal/lint are
// written against this shim and would port to the real API by changing an
// import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name (used in diagnostics and
// in //lint:ignore directives), a one-line Doc, and the Run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass holds everything an Analyzer may look at for one package: the file
// set, the parsed files, and the (possibly incomplete) type information.
// Analyzers must tolerate TypesInfo entries being absent — fixture packages
// and exotic build configurations type-check loosely — and fall back to
// syntactic checks when they are.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg is the type-checked package, or nil when type checking failed
	// outright. PkgPath is always set.
	Pkg     *types.Package
	PkgPath string
	// TypesInfo carries Uses/Defs/Types/Selections for the files. Never nil,
	// but possibly sparsely populated.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// NewPass assembles a Pass delivering diagnostics to report.
func NewPass(fset *token.FileSet, files []*ast.File, pkg *types.Package, pkgPath string, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{Fset: fset, Files: files, Pkg: pkg, PkgPath: pkgPath, TypesInfo: info, report: report}
}

// Diagnostic is one finding: a position and a message. Analyzer is filled in
// by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report delivers a diagnostic to the driver.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
