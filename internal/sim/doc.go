// Package sim provides the synchronous slotted-time execution substrate of
// the paper's model (Section 3): nodes have synchronized clocks, run their
// protocols in lockstep, and the only communication primitive is
// transmission on the single shared wireless channel, resolved exactly by
// the SINR condition (Eqn 1) each slot.
//
// A slot proceeds in three stages: every node's protocol emits an action
// (transmit with a power and message, listen, or idle); the channel computes
// the SINR at every listener from the full set of concurrent senders; and
// decodable messages are delivered into inboxes the protocols see at the
// next slot. Node stepping and listener decoding are parallelized with a
// persistent worker pool — safe because protocols only touch their own
// state — and all randomness is derived deterministically from the engine
// seed, so results are reproducible regardless of worker count.
//
// The slot loop is zero-allocation in steady state: workers are spawned once
// (not per slot), per-worker shard counters replace mutex-guarded stats, and
// channel resolution reads the sinr physics kernel's cached gain table
// instead of recomputing path loss per (sender, listener) pair. Past the
// table's memory bound, Config.FarField switches decoding to a far-field
// approximation plan (flat grid or quadtree, sinr.Far), and Config.Adaptive
// lets each slot pick exact or far-field resolution from its live sender
// count — sparse slots skip the plan entirely — while staying bit-identical
// to forcing the chosen mode per slot.
package sim
