package sinr_test

// The float32 far-field battery. The f32 view (QuadTree.Prec32, behind
// sinrconn.WithFarPrecision(Far32)) accumulates in float64, rounds the
// pyramid aggregates once to float32, and walks against the inflated
// certificate certErr32 = (1+certErr)(1+u)/(1−r)^α − 1. The gates here
// pin three claims: the walk is in lockstep with the oracle's independent
// f32 transcription, the certified band really brackets exact physics,
// and the certificate inflation over the f64 plan is the tiny rounding
// allowance the derivation promises (DESIGN.md §12) — not a silent
// accuracy cliff.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/oracle"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// TestDifferentialQuadtree32VsOracle pins the f32 walk against
// oracle.QuadLinkSINR32 — the naive recursion reading float32-rounded
// aggregates — across the generator matrix × α × ε.
func TestDifferentialQuadtree32VsOracle(t *testing.T) {
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					n := 40 + int(seed)*8
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 947))
					for _, eps := range quadEpsSweep {
						q, err := in.QuadTree(eps)
						if err != nil {
							t.Fatal(err)
						}
						sc := q.Prec32().NewResolver()
						txs := farTxSet(rng, in, n/2)
						sc.Accumulate(txs)
						for trial := 0; trial < 12; trial++ {
							tx := txs[rng.Intn(len(txs))]
							l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
							if l.From == l.To {
								continue
							}
							got := sc.LinkSINR(txs, l, tx.Power)
							want := oracle.QuadLinkSINR32(pts, p, eps, txs, l, tx.Power)
							if !diffClose(got, want) {
								t.Fatalf("seed %d eps %v LinkSINR32(%v): kernel %v oracle %v",
									seed, eps, l, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestFloat32ErrorBracket is the accuracy gate of the satellite spec:
// for every link, the f32 SINR must bracket exact physics within the
// plan's certified certErr32 band; the winner returned by the f32
// Resolve must be the exact argmax (identical to the f64 plan's, with
// bit-identical exact received power); and the certificate inflation
// over the f64 plan must stay within the derivation's rounding allowance
// — orders of magnitude below ε itself.
func TestFloat32ErrorBracket(t *testing.T) {
	const slack = 1e-9
	for _, spec := range workload.Matrix() {
		for _, alpha := range diffAlphas {
			spec, alpha := spec, alpha
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				for seed := int64(1); seed <= 2; seed++ {
					n := 64
					pts, in := diffInstance(t, spec, alpha, seed, n)
					p := in.Params()
					rng := rand.New(rand.NewSource(seed * 389))
					for _, eps := range quadEpsSweep {
						q, err := in.QuadTree(eps)
						if err != nil {
							t.Fatal(err)
						}
						f32 := q.Prec32()
						ce64 := q.CertifiedMaxRelError()
						ce32 := f32.CertifiedMaxRelError()
						// Certificate sanity: the f32 certificate covers
						// the f64 one plus the one-rounding allowance, and
						// the allowance is negligible next to ε. (The
						// degenerate 1−r ≤ 0 escape hatch would return
						// +Inf; these instances are far from it.)
						if ce32 < ce64 {
							t.Fatalf("eps %v: certErr32 %v < certErr %v", eps, ce32, ce64)
						}
						if math.IsInf(ce32, 1) {
							t.Fatalf("eps %v: certErr32 degenerated to +Inf on a benign instance", eps)
						}
						if gap := ce32 - ce64; gap > 1e-4*(1+ce64) {
							t.Fatalf("eps %v: f32 certificate inflation %v exceeds the rounding allowance", eps, gap)
						}
						sc32 := f32.NewResolver()
						sc64 := q.NewResolver()
						txs := farTxSet(rng, in, n/2)
						sc32.Accumulate(txs)
						sc64.Accumulate(txs)
						// Winner exactness: decode decisions come from
						// exact refinement, so the f32 plan must agree
						// with the f64 plan bit for bit on (best, bestRP,
						// saturated) — only total may drift, and only
						// within the certificates.
						for v := 0; v < n; v += 3 {
							b32, rp32, tot32, sat32 := sc32.Resolve(v, txs)
							b64, rp64, tot64, sat64 := sc64.Resolve(v, txs)
							if b32 != b64 || rp32 != rp64 || sat32 != sat64 {
								t.Fatalf("eps %v listener %d: f32 Resolve (%d,%v,%v) f64 (%d,%v,%v)",
									eps, v, b32, rp32, sat32, b64, rp64, sat64)
							}
							if sat32 || b32 < 0 {
								continue
							}
							lo := tot64 * (1 - ce64) / (1 + ce32) * (1 - slack)
							hi := tot64 * (1 + ce64) / (1 - ce32) * (1 + slack)
							if ce32 < 1 && (tot32 < lo || tot32 > hi) {
								t.Fatalf("eps %v listener %d: f32 total %v outside joint band [%v, %v] of f64 total %v",
									eps, v, tot32, lo, hi, tot64)
							}
						}
						// SINR bracket against exact physics, the f32
						// analog of TestQuadtreeErrorBound.
						for _, tx := range txs {
							for trial := 0; trial < 3; trial++ {
								l := sinr.Link{From: tx.Sender, To: rng.Intn(n)}
								if l.From == l.To {
									continue
								}
								far := sc32.LinkSINR(txs, l, tx.Power)
								signal := tx.Power / oracle.PathLoss(oracle.Dist(pts, l.From, l.To), p.Alpha)
								interf := 0.0
								for _, w := range txs {
									if w.Sender == l.From {
										continue
									}
									interf += w.Power / oracle.PathLoss(oracle.Dist(pts, w.Sender, l.To), p.Alpha)
								}
								if math.IsInf(signal, 1) || math.IsInf(interf, 1) {
									continue
								}
								loI := (1 - ce32) * interf
								if loI < 0 {
									loI = 0
								}
								lo := signal / (p.Noise + (1+ce32)*interf) * (1 - slack)
								hi := signal / (p.Noise + loI) * (1 + slack)
								if far < lo || far > hi {
									t.Fatalf("seed %d eps %v (cert32 %v) SINR(%v): f32 quadtree %v outside [%v, %v]",
										seed, eps, ce32, l, far, lo, hi)
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestFloat32ResolverZeroAlloc is the alloc gate for the //sinr:hotpath
// annotations on the f32 walk: round32Active (Accumulate's rounding
// tail), resolve32, and linkSINR32 must keep the f64 paths'
// zero-allocation steady state.
func TestFloat32ResolverZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 512
	pts := workload.JitteredGrid(rng, n, 3, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	q, err := in.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sc := q.Prec32().NewResolver()
	txs := farTxSet(rng, in, n/2)
	l := sinr.Link{From: txs[0].Sender, To: (txs[0].Sender + 7) % n}
	sc.Accumulate(txs)
	if allocs := testing.AllocsPerRun(20, func() {
		sc.Accumulate(txs)
		for v := 0; v < n; v += 16 {
			sc.Resolve(v, txs)
		}
		sc.LinkSINR(txs, l, txs[0].Power)
	}); allocs != 0 {
		t.Fatalf("f32 resolver loop allocates %.1f times/op, want 0", allocs)
	}
}

// TestFloat32MaxRelError pins the advertised MaxRelError of the f32 view:
// it must report the inflated certificate (never less than the f64
// plan's), which is what WithFarPrecision surfaces through
// Network.MaxRelError and what feasibility guard-banding consumes.
func TestFloat32MaxRelError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := workload.JitteredGrid(rng, 256, 3, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	for _, eps := range quadEpsSweep {
		q, err := in.QuadTree(eps)
		if err != nil {
			t.Fatal(err)
		}
		f32 := q.Prec32()
		if got, min := f32.MaxRelError(), q.MaxRelError(); got < min {
			t.Fatalf("eps %v: f32 MaxRelError %v below f64 plan's %v", eps, got, min)
		}
		if f32.CertifiedMaxRelError() < q.CertifiedMaxRelError() {
			t.Fatalf("eps %v: f32 certificate below f64 certificate", eps)
		}
		if f32.NearDominated() != q.NearDominated() {
			t.Fatalf("eps %v: NearDominated disagrees between precisions", eps)
		}
	}
}
