package sim

// Engine-level drift gates for the PR-9 far-field machinery: listener
// batching (run-sliced ResolveBatch across workers) and the sharded
// parallel Accumulate must both be invisible in the outputs — every
// Delivery and every Stats field bit-identical to the per-listener /
// serial paths they replace. These complement the kernel-level gates in
// internal/sinr by exercising the real dispatch: run shearing at chunk
// boundaries, worker-strided shard assignment, and the f32 mirror slot.

import (
	"math/rand"
	"testing"

	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// runBurst runs the bursty quadtree workload for slots slots and returns
// the per-node delivery logs plus final stats.
func runBurst(t *testing.T, n, slots int, cfg Config) ([][]Delivery, Stats) {
	t.Helper()
	e, recs := adaptiveEngine(t, n, true, cfg)
	defer e.Close()
	e.Run(slots)
	got := make([][]Delivery, len(recs))
	for i, r := range recs {
		got[i] = r.got
	}
	return got, e.Stats()
}

// assertRunsEqual compares two engine runs delivery-by-delivery.
func assertRunsEqual(t *testing.T, label string, aGot, bGot [][]Delivery, aStats, bStats Stats) {
	t.Helper()
	if aStats != bStats {
		t.Fatalf("%s: stats diverged: %+v vs %+v", label, aStats, bStats)
	}
	for i := range aGot {
		if len(aGot[i]) != len(bGot[i]) {
			t.Fatalf("%s: node %d: %d vs %d deliveries", label, i, len(aGot[i]), len(bGot[i]))
		}
		for k := range aGot[i] {
			if aGot[i][k] != bGot[i][k] {
				t.Fatalf("%s: node %d delivery %d: %+v vs %+v", label, i, k, aGot[i][k], bGot[i][k])
			}
		}
	}
}

// TestEngineFarBatchDriftGate: a run with listener batching (the default
// far decode path) must be bit-identical to NoFarBatch per-listener
// resolution, serial and pooled. The pooled case additionally shears
// predicate-class runs at worker chunk boundaries, covering the
// run-splitting invariant end to end.
func TestEngineFarBatchDriftGate(t *testing.T) {
	const n, slots = 256, 14
	for _, workers := range []int{1, 4} {
		bGot, bStats := runBurst(t, n, slots, Config{Workers: workers})
		sGot, sStats := runBurst(t, n, slots, Config{Workers: workers, NoFarBatch: true})
		assertRunsEqual(t, "batched vs per-listener", bGot, sGot, bStats, sStats)
	}
}

// TestEngineShardedAccumDriftGate: forcing the sharded parallel
// Accumulate at test scale (threshold override) must leave every output
// bit-identical to the serial accumulation — across worker counts, with
// and without adaptive selection in the loop.
func TestEngineShardedAccumDriftGate(t *testing.T) {
	const n, slots = 256, 14
	defer func(old int) { shardedAccumMinTxs = old }(shardedAccumMinTxs)

	for _, adaptive := range []bool{false, true} {
		cfg := func(workers int) Config {
			c := Config{Workers: workers}
			if adaptive {
				c.Adaptive = true
				c.AdaptiveCrossover = 64
			}
			return c
		}
		// Serial reference: threshold high, sharding never fires.
		shardedAccumMinTxs = 1 << 30
		sGot, sStats := runBurst(t, n, slots, cfg(4))
		// Sharded: every far slot accumulates through the shard path.
		shardedAccumMinTxs = 1
		for _, workers := range []int{2, 4, 8} {
			pGot, pStats := runBurst(t, n, slots, cfg(workers))
			assertRunsEqual(t, "sharded vs serial accumulate", sGot, pGot, sStats, pStats)
		}
	}
}

// TestEngineFar32DriftGate: the float32 far slot must ride the same
// batching and sharding machinery without drifting from its own serial,
// per-listener reference (f32 vs f64 accuracy is certified separately in
// internal/sinr — here the claim is determinism of the f32 path itself).
func TestEngineFar32DriftGate(t *testing.T) {
	const n, slots = 256, 14
	defer func(old int) { shardedAccumMinTxs = old }(shardedAccumMinTxs)

	run := func(workers int, noBatch bool) ([][]Delivery, Stats) {
		pts := workload.JitteredGrid(rand.New(rand.NewSource(17)), n, 3, 0.8)
		in := sinr.MustInstance(pts, sinr.DefaultParams())
		power := in.Params().SafePower(4)
		procs := make([]Protocol, n)
		recs := make([]*recordProto, n)
		for i := 0; i < n; i++ {
			recs[i] = &recordProto{inner: &burstProto{id: i, power: power}}
			procs[i] = recs[i]
		}
		q, err := in.QuadTree(0.5)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(in, procs, Config{Workers: workers, NoFarBatch: noBatch, FarField: q.Prec32()})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run(slots)
		got := make([][]Delivery, n)
		for i, r := range recs {
			got[i] = r.got
		}
		return got, e.Stats()
	}

	shardedAccumMinTxs = 1 << 30
	refGot, refStats := run(1, true)
	shardedAccumMinTxs = 1
	for _, workers := range []int{1, 4} {
		got, stats := run(workers, false)
		assertRunsEqual(t, "f32 sharded vs f32 serial", refGot, got, refStats, stats)
	}
}
