package core

import (
	"context"
	"fmt"
	"sort"

	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// PairOutcome reports a physical node-to-node message delivery.
type PairOutcome struct {
	// Delivered reports whether dst holds the message at the end.
	Delivered bool
	// SlotsUsed is the total channel time: one converge-cast epoch plus
	// one dissemination epoch (the paper's 2×schedule bound).
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// RunPairMessage physically delivers a message from src to dst over the
// bi-tree: the message rides one full converge-cast epoch up to the root
// (piggybacked on the regular aggregation traffic — every link fires in
// its slot, and whichever node currently holds the message hands it to its
// parent when its out-link fires), then one dissemination epoch down. This
// realizes the paper's claim that "any node-node communication can be
// achieved within time equal to the length of the schedule" (Definition 1)
// — twice the schedule, once up and once down.
func RunPairMessage(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, src, dst int, payload int64, ecfg sim.Config) (*PairOutcome, error) {
	inTree := make(map[int]bool, len(bt.Nodes))
	for _, v := range bt.Nodes {
		inTree[v] = true
	}
	if !inTree[src] || !inTree[dst] {
		return nil, fmt.Errorf("core: src %d / dst %d not in tree", src, dst)
	}

	// Phase 1: converge-cast epoch; the holder flag rides up.
	upRank, upStamps := rankSlots(bt.Up)
	nodes := make([]*pairNode, in.Len())
	procs := make([]sim.Protocol, in.Len())
	for i := 0; i < in.Len(); i++ {
		nodes[i] = &pairNode{id: i, member: inTree[i], txSlot: -1}
		procs[i] = nodes[i]
	}
	for _, tl := range bt.Up {
		nd := nodes[tl.L.From]
		nd.txSlot = upRank[tl.Slot]
		nd.to = tl.L.To
		nd.power = tl.Power
	}
	nodes[src].holds = true
	nodes[src].payload = payload

	eng, err := sim.NewEngine(in, procs, ecfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if _, err := eng.RunCtx(ctx, len(upStamps)+1); err != nil {
		return nil, fmt.Errorf("core: pair message canceled: %w", err)
	}
	upStats := eng.Stats()
	out := &PairOutcome{SlotsUsed: upStats.Slots, Energy: upStats.Energy}
	if !nodes[bt.Root].holds {
		return out, fmt.Errorf("core: message from %d failed to reach root", src)
	}

	// Phase 2: a dissemination epoch carries the message from the root to
	// everyone — in particular dst (the paper's reversal: "same links in
	// the opposite direction and same schedule in opposite order").
	// RunBroadcast also handles the dual-power subtlety.
	bout, err := RunBroadcast(ctx, in, bt, payload, ecfg)
	if err != nil {
		return out, fmt.Errorf("core: down phase: %w", err)
	}
	out.SlotsUsed += bout.SlotsUsed
	out.Energy += bout.Energy
	out.Delivered = true
	return out, nil
}

// rankSlots maps distinct slot stamps to dense ranks.
func rankSlots(links []tree.TimedLink) (map[int]int, []int) {
	distinct := map[int]struct{}{}
	for _, tl := range links {
		distinct[tl.Slot] = struct{}{}
	}
	stamps := make([]int, 0, len(distinct))
	for s := range distinct {
		stamps = append(stamps, s)
	}
	sort.Ints(stamps)
	rank := make(map[int]int, len(stamps))
	for i, s := range stamps {
		rank[s] = i
	}
	return rank, stamps
}

// pairNode carries a message up the aggregation schedule.
type pairNode struct {
	id      int
	member  bool
	txSlot  int
	to      int
	power   float64
	holds   bool
	payload int64
}

var _ sim.Protocol = (*pairNode)(nil)

// Step implements sim.Protocol: adopt the message if addressed to us, and
// fire our scheduled transmission (tagged with whether we hold the
// message).
func (nd *pairNode) Step(slot int, inbox []sim.Delivery) sim.Action {
	if !nd.member {
		return sim.Idle()
	}
	for _, d := range inbox {
		if d.Msg.Kind == sim.KindData && d.Msg.To == nd.id && d.Msg.Tag == 1 {
			nd.holds = true
			nd.payload = d.Msg.Payload
		}
	}
	if slot == nd.txSlot {
		tag := 0
		if nd.holds {
			tag = 1
		}
		return sim.Transmit(nd.power, sim.Message{
			Kind:    sim.KindData,
			From:    nd.id,
			To:      nd.to,
			Tag:     tag,
			Payload: nd.payload,
		})
	}
	return sim.Listen()
}
