package sinr

// The listener-batching drift gate: ResolveBatch over a predicate-class
// run must deliver the exact Resolve tuple for every listener — the
// shared frontier is a walk-order-preserving fusion, not an
// approximation. Also pins that chunking is content-independent: any
// split of a run into contiguous pieces yields the same per-listener
// results, which is what lets the engine shear runs across workers at
// arbitrary chunk boundaries.

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/workload"
)

// batchCollector records DeliverFar calls in order.
type batchCollector struct {
	v    []int
	best []int
	rp   []float64
	tot  []float64
	sat  []bool
}

func (c *batchCollector) DeliverFar(v, best int, bestRP, total float64, saturated bool) {
	c.v = append(c.v, v)
	c.best = append(c.best, best)
	c.rp = append(c.rp, bestRP)
	c.tot = append(c.tot, total)
	c.sat = append(c.sat, saturated)
}

func (c *batchCollector) reset() {
	c.v, c.best, c.rp, c.tot, c.sat = c.v[:0], c.best[:0], c.rp[:0], c.tot[:0], c.sat[:0]
}

// classRuns slices the plan's BatchSpec order into maximal runs of equal
// predicate class.
func classRuns(order, class []int32) [][]int32 {
	var runs [][]int32
	for i := 0; i < len(order); {
		j := i
		for j < len(order) && class[j] == class[i] {
			j++
		}
		runs = append(runs, order[i:j])
		i = j
	}
	return runs
}

// TestListenerBatchDriftGate pins ResolveBatch against solo Resolve,
// bit-identical tuple for tuple, across generators × ε × both
// precisions, and re-resolves each run under random sub-splits to prove
// chunk boundaries cannot shift any listener's result.
func TestListenerBatchDriftGate(t *testing.T) {
	specs := []workload.Spec{
		{Name: "jittered", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return workload.JitteredGrid(rng, n, 3, 0.8)
		}},
		{Name: "gaussians", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return workload.GaussianClusters(rng, n, 16, 3, 60)
		}},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			const n = 600
			rng := rand.New(rand.NewSource(733))
			pts := spec.Gen(rng, n)
			in, err := NewInstance(pts, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			for _, eps := range []float64{0.1, 0.5, 2.5} {
				q, err := in.QuadTree(eps)
				if err != nil {
					t.Fatal(err)
				}
				order, class := q.BatchSpec()
				if len(order) != n || len(class) != n {
					t.Fatalf("eps %v: BatchSpec lengths (%d,%d), want (%d,%d)", eps, len(order), len(class), n, n)
				}
				seen := make([]bool, n)
				for _, v := range order {
					seen[v] = true
				}
				for v, ok := range seen {
					if !ok {
						t.Fatalf("eps %v: BatchSpec order misses node %d", eps, v)
					}
				}
				runs := classRuns(order, class)
				sc := q.NewScratch()
				bs := q.NewBatchState()
				var col batchCollector
				for round := 0; round < 3; round++ {
					txs := driftTxSet(rng, n, n/3)
					sc.Accumulate(txs)
					// Solo reference for every listener.
					wantBest := make([]int, n)
					wantRP := make([]float64, n)
					wantTot := make([]float64, n)
					wantSat := make([]bool, n)
					for v := 0; v < n; v++ {
						wantBest[v], wantRP[v], wantTot[v], wantSat[v] = sc.Resolve(v, txs)
					}
					check := func(ctx string) {
						t.Helper()
						for i, v := range col.v {
							if col.best[i] != wantBest[v] || col.rp[i] != wantRP[v] || col.tot[i] != wantTot[v] || col.sat[i] != wantSat[v] {
								t.Fatalf("eps %v round %d %s listener %d: batch (%d,%v,%v,%v) solo (%d,%v,%v,%v)",
									eps, round, ctx, v,
									col.best[i], col.rp[i], col.tot[i], col.sat[i],
									wantBest[v], wantRP[v], wantTot[v], wantSat[v])
							}
						}
					}
					// Whole runs: every listener exactly once, in order.
					col.reset()
					for _, run := range runs {
						sc.ResolveBatch(bs, run, &col)
					}
					if len(col.v) != n {
						t.Fatalf("eps %v round %d: batch delivered %d results, want %d", eps, round, len(col.v), n)
					}
					check("whole-run")
					// Random sub-splits: chunk boundaries inside a run must
					// not change any result (the engine splits runs across
					// workers at arbitrary offsets).
					col.reset()
					for _, run := range runs {
						for lo := 0; lo < len(run); {
							hi := lo + 1 + rng.Intn(len(run)-lo)
							sc.ResolveBatch(bs, run[lo:hi], &col)
							lo = hi
						}
					}
					if len(col.v) != n {
						t.Fatalf("eps %v round %d: split batch delivered %d results, want %d", eps, round, len(col.v), n)
					}
					check("sub-split")
				}
			}
		})
	}
}

// nullSink discards DeliverFar calls; used by the alloc gate so the sink
// itself cannot allocate.
type nullSink struct{}

func (nullSink) DeliverFar(v, best int, bestRP, total float64, saturated bool) {}

// TestResolveBatchZeroAlloc is the alloc gate for the //sinr:hotpath
// annotations on ResolveBatch and resolveChunk: a full pass over every
// predicate-class run allocates nothing.
func TestResolveBatchZeroAlloc(t *testing.T) {
	const n = 600
	rng := rand.New(rand.NewSource(57))
	pts := workload.JitteredGrid(rng, n, 3, 0.8)
	in, err := NewInstance(pts, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	q, err := in.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	order, class := q.BatchSpec()
	runs := classRuns(order, class)
	sc := q.NewScratch()
	bs := q.NewBatchState()
	txs := driftTxSet(rng, n, n/3)
	sc.Accumulate(txs)
	if allocs := testing.AllocsPerRun(20, func() {
		for _, run := range runs {
			sc.ResolveBatch(bs, run, nullSink{})
		}
	}); allocs != 0 {
		t.Fatalf("ResolveBatch allocates %.1f times/op, want 0", allocs)
	}
}
