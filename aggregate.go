package sinrconn

import (
	"sinrconn/internal/core"
)

// AggFunc combines two partial aggregates during a converge-cast. It must
// be commutative and associative.
type AggFunc func(a, b int64) int64

// MaxAgg folds with max.
func MaxAgg(a, b int64) int64 { return core.MaxAgg(a, b) }

// SumAgg folds with addition.
func SumAgg(a, b int64) int64 { return core.SumAgg(a, b) }

// AggregateOutcome reports a physical converge-cast execution.
type AggregateOutcome struct {
	// Value is the aggregate collected at the root.
	Value int64
	// SlotsUsed is the channel time consumed (schedule length + 1 drain
	// slot).
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// BroadcastOutcome reports a physical dissemination epoch.
type BroadcastOutcome struct {
	// Reached is the number of nodes that received the value.
	Reached int
	// SlotsUsed is the channel time consumed.
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// Broadcast physically executes one dissemination epoch over the SINR
// channel: the bi-tree's dual links fire in reversed schedule order,
// carrying value from the root to every node (Definition 1). An error
// means some node was left unreached — a schedule or physics violation.
func (r *Result) Broadcast(value int64, opt Options) (*BroadcastOutcome, error) {
	out, err := core.RunBroadcast(r.Tree.inst, r.Tree.inner, value, opt.Workers)
	if err != nil {
		return nil, err
	}
	return &BroadcastOutcome{
		Reached:   out.Reached,
		SlotsUsed: out.SlotsUsed,
		Energy:    out.Energy,
	}, nil
}

// Aggregate physically executes one converge-cast epoch over the SINR
// channel: each tree link transmits its sender's running aggregate in its
// scheduled slot at its stamped power, concurrently with the rest of its
// slot group. values[i] is node i's contribution. On success the returned
// Value equals f folded over every tree node's value — if the schedule
// were infeasible or mis-ordered, the physics would lose a transfer and
// Aggregate returns an error instead.
func (r *Result) Aggregate(values []int64, f AggFunc, opt Options) (*AggregateOutcome, error) {
	out, err := core.RunAggregation(r.Tree.inst, r.Tree.inner, values, core.AggFunc(f), opt.Workers)
	if err != nil {
		return nil, err
	}
	return &AggregateOutcome{
		Value:     out.Value,
		SlotsUsed: out.SlotsUsed,
		Energy:    out.Energy,
	}, nil
}

// PairOutcome reports a physical node-to-node message delivery.
type PairOutcome struct {
	// Delivered reports whether dst received the message.
	Delivered bool
	// SlotsUsed is the total channel time: one converge-cast epoch up plus
	// one dissemination epoch down — the Definition 1 "2× schedule" bound.
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// SendMessage physically delivers a message from src to dst over the SINR
// channel: the payload piggybacks on one converge-cast epoch to the root,
// then rides one dissemination epoch down (Definition 1's node-to-node
// communication guarantee).
func (r *Result) SendMessage(src, dst int, payload int64, opt Options) (*PairOutcome, error) {
	out, err := core.RunPairMessage(r.Tree.inst, r.Tree.inner, src, dst, payload, opt.Workers)
	if err != nil {
		return nil, err
	}
	return &PairOutcome{
		Delivered: out.Delivered,
		SlotsUsed: out.SlotsUsed,
		Energy:    out.Energy,
	}, nil
}
