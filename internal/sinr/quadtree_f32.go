package sinr

import "math"

// Opt-in float32 far-field accumulation (Network option WithFarPrecision):
// the pyramid aggregates are accumulated in float64 exactly as the default
// path, then each occupied node's (mass, centroid) is rounded ONCE to a
// float32 mirror; the walks read the mirror. This halves the bytes the
// aggregate walk streams through the cache on million-node pyramids, at a
// certified accuracy cost that is negligible against every supported ε.
//
// Soundness (DESIGN.md §12 carries the full derivation). Rounding once
// bounds each node's mass at relative error u = 2⁻²⁴ and shifts its
// centroid by at most Δ ≤ u·√2·maxAbs (maxAbs the largest coordinate
// magnitude of the root square). A node is only aggregated when its
// (rounded) centroid distance D′ clears the leaf opening radius
// cell·√2/θ, so the shift perturbs the distance by a relative
// r ≤ u·maxAbs·θ/cell, and the aggregated term mis-states the exact sum
// by at most a further (1+u)/(1−r)^α factor on top of the float64
// certificate:
//
//	certErr32 = (1+certErr)·(1+u)/(1−r)^α − 1
//
// For the bench geometries r ~ u·θ·2^L ≲ 10⁻⁴·θ, so certErr32 − certErr
// is ~10⁻⁷ — seven orders below the smallest supported ε = 0.1: the
// guard band ε dwarfs the f32 ulp, which is what makes the path safe to
// certify at all. Winner exactness survives the same way: the refinement
// bound inflates to refineFac·(1/(1−r))^α (+1 ulp pad), leaf scans stay
// exact float64, so the decoded winner and its received power are exact.
// Degenerate geometries where r would reach 1 (coordinates ~2²⁴ cells
// from the origin) get an infinite refine bound — the walk degrades to an
// exact scan, still sound, never wrong.
//
// Determinism. The decision expressions read float64(float32(agg)) —
// transcribed verbatim by the oracle mirror (oracle.QuadLinkSINR32), so
// kernel and oracle take identical open/accept decisions and the
// differential suite pins the 1e-12 physics bracket exactly as the f64
// path does.

// QuadTreeF32 is the float32-aggregate view of a QuadTree plan: the same
// geometry, binning, and opening radii, with resolvers that accumulate in
// float64, round once per node, and walk float32 aggregates. Obtain it
// with QuadTree.Prec32; it implements Far.
type QuadTreeF32 struct {
	q *QuadTree
	// certErr32 ≥ q.certErr: the float64 certificate widened by the f32
	// rounding factor (package comment).
	certErr32 float64
	// refineFac32 ≥ q.refineFac: the winner-refinement bound widened so an
	// accepted node still cannot hide the true strongest sender when its
	// centroid moved by the f32 rounding.
	refineFac32 float64
}

func newQuadTreeF32(q *QuadTree) *QuadTreeF32 {
	alpha := q.in.params.Alpha
	const u32 = 1.0 / (1 << 24)
	maxAbs := math.Max(
		math.Max(math.Abs(q.ox), math.Abs(q.ox+q.side[0])),
		math.Max(math.Abs(q.oy), math.Abs(q.oy+q.side[0])),
	)
	r := u32 * maxAbs * q.theta / q.cell
	f := &QuadTreeF32{q: q}
	if den := 1 - r; den > 0 {
		f.certErr32 = (1+q.certErr)*(1+u32)/math.Pow(den, alpha) - 1
		f.refineFac32 = q.refineFac * math.Pow(1/den, alpha) * (1 + 1e-12)
	} else {
		// Coordinates ≳ 2²⁴ leaf cells from the origin: the f32 centroid
		// shift can dwarf the opening radius, so nothing can be certified
		// or refuted — every node opens and the walk degrades to an exact
		// scan (sound, never wrong).
		f.certErr32 = math.Inf(1)
		f.refineFac32 = math.Inf(1)
	}
	return f
}

// Prec32 returns the plan's float32-aggregate view (built eagerly with the
// plan; the two share geometry and the instance's plan cache entry).
func (q *QuadTree) Prec32() *QuadTreeF32 { return q.f32 }

// Base returns the float64 plan the mirror wraps — the carrier of the
// originally requested error bound (MaxRelError on the mirror may be a
// rounding sliver wider), which is what an operation inheriting this plan
// onto another instance should rebuild from.
func (f *QuadTreeF32) Base() *QuadTree { return f.q }

// Instance returns the instance the plan was built over.
func (f *QuadTreeF32) Instance() *Instance { return f.q.in }

// MaxRelError returns the effective requested bound: the f64 plan's
// request widened, if necessary, to the f32 certificate (the rounding
// factor can push the certificate an O(2⁻²⁴) sliver past the request, and
// Far promises CertifiedMaxRelError ≤ MaxRelError).
func (f *QuadTreeF32) MaxRelError() float64 {
	if f.certErr32 > f.q.maxRelErr {
		return f.certErr32
	}
	return f.q.maxRelErr
}

// CertifiedMaxRelError returns the certified worst-case relative
// interference error of the float32 walk (package comment).
func (f *QuadTreeF32) CertifiedMaxRelError() float64 { return f.certErr32 }

// NearDominated reports the underlying plan's near-dominated regime (the
// aggregate precision does not move the horizon geometry).
func (f *QuadTreeF32) NearDominated() bool { return f.q.NearDominated() }

// Levels returns the pyramid depth of the underlying plan.
func (f *QuadTreeF32) Levels() int { return f.q.levels }

// NewResolver implements Far: fresh per-slot float32-walk state.
func (f *QuadTreeF32) NewResolver() FarResolver { return f.q.newScratch(true) }

// AcquireResolver implements Far. The f32 view keeps no pool of its own:
// transient validator use is rare enough that a fresh scratch is fine, and
// sharing the f64 pool would hand out scratches without the f32 mirror.
func (f *QuadTreeF32) AcquireResolver() FarResolver { return f.q.newScratch(true) }

// ReleaseResolver implements Far (no pool — the scratch is dropped).
func (f *QuadTreeF32) ReleaseResolver(FarResolver) {}

// round32Active rounds every active node's aggregates into the f32 mirror
// (serial Accumulate tail).
//sinr:hotpath
func (sc *QuadScratch) round32Active() {
	q := sc.q
	for lvl := 0; lvl <= q.levels; lvl++ {
		off := q.levelOff[lvl]
		for _, t := range sc.active[lvl] {
			g := off + t
			sc.mass32[g] = float32(sc.mass[g])
			sc.cenX32[g] = float32(sc.cenX[g])
			sc.cenY32[g] = float32(sc.cenY[g])
		}
	}
}

// round32Shard rounds a shard's normalized levels (s+1..L) into the f32
// mirror (AccumShard tail; level s and above are rounded by AccumFinish).
//sinr:hotpath
func (sc *QuadScratch) round32Shard(sh int) {
	q := sc.q
	s := sc.shardS
	for lvl := s + 1; lvl <= q.levels; lvl++ {
		off := q.levelOff[lvl]
		abase := sc.shardABase[lvl] + int32(sh)<<(2*uint(lvl-s))
		for k := int32(0); k < sc.shardCnt[lvl][sh]; k++ {
			g := off + sc.shardArena[abase+k]
			sc.mass32[g] = float32(sc.mass[g])
			sc.cenX32[g] = float32(sc.cenX[g])
			sc.cenY32[g] = float32(sc.cenY[g])
		}
	}
}

// round32Finish rounds levels 0..s into the f32 mirror (AccumFinish tail).
//sinr:hotpath
func (sc *QuadScratch) round32Finish() {
	q := sc.q
	for lvl := 0; lvl <= sc.shardS; lvl++ {
		off := q.levelOff[lvl]
		for _, t := range sc.active[lvl] {
			g := off + t
			sc.mass32[g] = float32(sc.mass[g])
			sc.cenX32[g] = float32(sc.cenX[g])
			sc.cenY32[g] = float32(sc.cenY[g])
		}
	}
}

// resolve32 is Resolve over the float32 aggregate mirror: identical walk
// structure, with node decisions reading float64(float32(agg)) and the
// widened refinement bound. Leaf scans and therefore the winner stay exact
// float64.
//sinr:hotpath
func (sc *QuadScratch) resolve32(v int) (best int, bestRP, total float64, saturated bool) {
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	spec := q.powSpec
	refine := q.f32.refineFac32
	pv := in.pts[v]
	best = -1
	ep := sc.epoch
	l := q.levels
	var stack [quadStackCap]int64
	if sc.stamp[0] != ep {
		return best, 0, 0, false
	}
	stack[0] = 0
	top := 1
	for top > 0 {
		top--
		e := stack[top]
		lvl := int(e >> 32)
		t := int32(e)
		g := q.levelOff[lvl] + t
		dx := pv.X - float64(sc.cenX32[g])
		dy := pv.Y - float64(sc.cenY32[g])
		d2 := dx*dx + dy*dy
		if d2 >= q.openRad2[lvl] {
			gc := 1 / powAlphaSqSpec(d2, alpha, spec)
			if sc.pmax[g]*gc*refine <= bestRP {
				total += float64(sc.mass32[g]) * gc
				continue
			}
		}
		if lvl == l {
			for si := sc.start[t]; si < sc.start[t]+sc.fill[t]; si++ {
				ddx := pv.X - sc.sx[si]
				ddy := pv.Y - sc.sy[si]
				sd2 := ddx*ddx + ddy*ddy
				if sd2 == 0 {
					return -1, 0, 0, true
				}
				rp := sc.sp[si] / powAlphaSqSpec(sd2, alpha, spec)
				total += rp
				if rp > bestRP {
					bestRP = rp
					best = int(sc.order[si])
				}
			}
			continue
		}
		x, y := MortonDecode(t)
		base := t << 2
		clvl := int64(lvl+1) << 32
		coff := q.levelOff[lvl+1]
		cside := q.side[lvl+1]
		var nx, ny int32
		if pv.X >= q.ox+float64(2*x+1)*cside {
			nx = 1
		}
		if pv.Y >= q.oy+float64(2*y+1)*cside {
			ny = 1
		}
		for _, c := range [4]int32{base | (ny^1)<<1 | (nx ^ 1), base | (ny^1)<<1 | nx, base | ny<<1 | (nx ^ 1), base | ny<<1 | nx} {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				stack[top] = clvl | int64(c)
				top++
			}
		}
	}
	return best, bestRP, total, false
}

// linkSINR32 is LinkSINR over the float32 aggregate mirror; the oracle
// transcription is QuadLinkSINR32.
//sinr:hotpath
func (sc *QuadScratch) linkSINR32(txs []Tx, l Link, pu float64) float64 {
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	spec := q.powSpec
	u, v := l.From, l.To
	pv := in.pts[v]
	signal := pu / PowAlphaSq(pv.DistSq(in.pts[u]), alpha)
	if signal == 0 {
		return 0
	}
	ep := sc.epoch
	lv := q.levels
	ul := q.leafOf[u]
	interference := 0.0
	if sc.stamp[0] != ep {
		return signal / in.params.Noise
	}
	var stack [quadStackCap]int64
	stack[0] = 0
	top := 1
	for top > 0 {
		top--
		e := stack[top]
		lvl := int(e >> 32)
		t := int32(e)
		g := q.levelOff[lvl] + t
		dx := pv.X - float64(sc.cenX32[g])
		dy := pv.Y - float64(sc.cenY32[g])
		d2 := dx*dx + dy*dy
		if d2 >= q.openRad2[lvl] {
			m := float64(sc.mass32[g])
			if t == ul>>(2*uint(lv-lvl)) {
				m -= pu
			}
			if m <= 0 {
				continue
			}
			interference += m / powAlphaSqSpec(d2, alpha, spec)
			continue
		}
		if lvl == lv {
			for si := sc.start[t]; si < sc.start[t]+sc.fill[t]; si++ {
				if txs[sc.order[si]].Sender == u {
					continue
				}
				ddx := pv.X - sc.sx[si]
				ddy := pv.Y - sc.sy[si]
				sd2 := ddx*ddx + ddy*ddy
				interference += sc.sp[si] / powAlphaSqSpec(sd2, alpha, spec)
			}
			continue
		}
		base := t << 2
		clvl := int64(lvl+1) << 32
		coff := q.levelOff[lvl+1]
		for c := base + 3; c >= base; c-- {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				stack[top] = clvl | int64(c)
				top++
			}
		}
	}
	return signal / (in.params.Noise + interference)
}
