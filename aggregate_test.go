package sinrconn

import "testing"

func TestAggregateSum(t *testing.T) {
	pts := uniformPoints(30, 36)
	res, err := BuildBiTreeArbitraryPower(pts, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, len(pts))
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	out, err := res.Aggregate(values, SumAgg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != want {
		t.Fatalf("sum = %d, want %d", out.Value, want)
	}
	if out.SlotsUsed != res.Metrics.ScheduleLength+1 {
		t.Errorf("slots = %d, schedule = %d", out.SlotsUsed, res.Metrics.ScheduleLength)
	}
	if out.Energy <= 0 {
		t.Error("no energy recorded")
	}
}

func TestAggregateMax(t *testing.T) {
	pts := uniformPoints(31, 24)
	res, err := BuildInitialBiTree(pts, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, len(pts))
	values[5] = 999
	out, err := res.Aggregate(values, MaxAgg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != 999 {
		t.Fatalf("max = %d, want 999", out.Value)
	}
}

func TestAggregateValidation(t *testing.T) {
	pts := uniformPoints(32, 12)
	res, err := BuildInitialBiTree(pts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Aggregate(nil, SumAgg, Options{}); err == nil {
		t.Error("short values accepted")
	}
	if _, err := res.Aggregate(make([]int64, len(pts)), nil, Options{}); err == nil {
		t.Error("nil fold accepted")
	}
}

func TestBroadcastEpoch(t *testing.T) {
	pts := uniformPoints(33, 30)
	res, err := BuildBiTreeArbitraryPower(pts, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Broadcast(123, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Reached != 30 {
		t.Fatalf("reached %d of 30", out.Reached)
	}
	if out.SlotsUsed != res.Metrics.ScheduleLength+1 || out.Energy <= 0 {
		t.Errorf("outcome: %+v", out)
	}
}

func TestSendMessage(t *testing.T) {
	pts := uniformPoints(34, 28)
	res, err := BuildBiTreeArbitraryPower(pts, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.SendMessage(3, 17, 555, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered {
		t.Fatal("message not delivered")
	}
	if max := 2 * (res.Metrics.ScheduleLength + 1); out.SlotsUsed > max {
		t.Errorf("latency %d exceeds 2×schedule %d", out.SlotsUsed, max)
	}
	if _, err := res.SendMessage(0, 9999, 1, Options{}); err == nil {
		t.Error("bad destination accepted")
	}
}
