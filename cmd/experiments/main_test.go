package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "E3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E3") || !strings.Contains(out, "PASS") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Error("-only leaked other experiments")
	}
}

func TestRunSingleAblation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-only", "A4"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "A4") {
		t.Errorf("missing A4 output:\n%s", b.String())
	}
}

func TestRunSeedsOverride(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-quick", "-seeds", "1", "-only", "E4"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-nope"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}
