package tree

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

// chainTree builds the path 0 ← 1 ← 2 ← ... ← n-1 rooted at 0, with the
// link out of node i scheduled at slot n-i (leaf first), satisfying the
// aggregation ordering.
func chainTree(n int) *BiTree {
	t := &BiTree{Root: 0}
	for i := 0; i < n; i++ {
		t.Nodes = append(t.Nodes, i)
	}
	for i := n - 1; i >= 1; i-- {
		t.Up = append(t.Up, TimedLink{
			L:     sinr.Link{From: i, To: i - 1},
			Slot:  n - i,
			Power: 100,
		})
	}
	return t
}

// starTree builds a star with all leaves linking to root 0 in distinct slots.
func starTree(n int) *BiTree {
	t := &BiTree{Root: 0}
	for i := 0; i < n; i++ {
		t.Nodes = append(t.Nodes, i)
	}
	for i := 1; i < n; i++ {
		t.Up = append(t.Up, TimedLink{L: sinr.Link{From: i, To: 0}, Slot: i, Power: 10})
	}
	return t
}

func TestValidateAcceptsGoodTrees(t *testing.T) {
	for _, tr := range []*BiTree{chainTree(6), starTree(5)} {
		if err := tr.Validate(); err != nil {
			t.Errorf("Validate: %v", err)
		}
		if err := tr.ValidateOrdering(); err != nil {
			t.Errorf("ValidateOrdering: %v", err)
		}
		if !tr.StronglyConnected() {
			t.Error("StronglyConnected = false")
		}
	}
}

func TestValidateRejectsBrokenTrees(t *testing.T) {
	tests := []struct {
		name string
		mod  func(*BiTree)
	}{
		{"duplicate node", func(tr *BiTree) { tr.Nodes = append(tr.Nodes, tr.Nodes[0]) }},
		{"root missing", func(tr *BiTree) { tr.Root = 99 }},
		{"link leaves node set", func(tr *BiTree) {
			tr.Up = append(tr.Up, TimedLink{L: sinr.Link{From: 99, To: 0}})
		}},
		{"self loop", func(tr *BiTree) {
			tr.Up[0].L = sinr.Link{From: 2, To: 2}
		}},
		{"two up-links", func(tr *BiTree) {
			tr.Up = append(tr.Up, TimedLink{L: sinr.Link{From: tr.Up[0].L.From, To: 0}})
			tr.Nodes = append(tr.Nodes, 77) // keep link-count check from firing first
		}},
		{"root has up-link", func(tr *BiTree) {
			tr.Up[0].L = sinr.Link{From: 0, To: 1}
		}},
		{"orphan node", func(tr *BiTree) {
			tr.Nodes = append(tr.Nodes, 50)
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr := chainTree(5)
			tc.mod(tr)
			if err := tr.Validate(); err == nil {
				t.Error("Validate accepted a broken tree")
			}
		})
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	tr := &BiTree{Root: 0, Nodes: []int{0, 1, 2, 3}}
	tr.Up = []TimedLink{
		{L: sinr.Link{From: 1, To: 2}},
		{L: sinr.Link{From: 2, To: 3}},
		{L: sinr.Link{From: 3, To: 1}},
	}
	if err := tr.Validate(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestOrderingViolationDetected(t *testing.T) {
	tr := chainTree(4)
	// Schedule a parent's out-link before its child's.
	for i := range tr.Up {
		tr.Up[i].Slot = i + 1 // node 3 gets slot 1 ... node 1 gets slot 3
	}
	// chainTree stores links from leaf inward, so this is now ordered
	// correctly; flip to break it.
	tr.Up[0].Slot, tr.Up[len(tr.Up)-1].Slot = tr.Up[len(tr.Up)-1].Slot, tr.Up[0].Slot
	if err := tr.ValidateOrdering(); err == nil {
		t.Error("ordering violation not detected")
	}
}

func TestOrderingMissingOutLink(t *testing.T) {
	tr := &BiTree{Root: 0, Nodes: []int{0, 1, 2}}
	tr.Up = []TimedLink{{L: sinr.Link{From: 2, To: 1}, Slot: 1}}
	if err := tr.ValidateOrdering(); err == nil {
		t.Error("missing out-link not detected")
	}
}

func TestCompact(t *testing.T) {
	tr := starTree(4)
	tr.Up[0].Slot = 100
	tr.Up[1].Slot = 5
	tr.Up[2].Slot = 100
	k := tr.Compact()
	if k != 2 {
		t.Fatalf("Compact = %d, want 2", k)
	}
	if tr.Up[1].Slot != 1 || tr.Up[0].Slot != 2 || tr.Up[2].Slot != 2 {
		t.Errorf("compacted slots: %+v", tr.Up)
	}
	if tr.NumSlots() != 2 {
		t.Errorf("NumSlots after Compact = %d", tr.NumSlots())
	}
}

func TestCompactEmpty(t *testing.T) {
	tr := &BiTree{Root: 0, Nodes: []int{0}}
	if k := tr.Compact(); k != 0 {
		t.Errorf("Compact(empty) = %d", k)
	}
	if tr.NumSlots() != 0 {
		t.Errorf("NumSlots(empty) = %d", tr.NumSlots())
	}
}

func TestSlotSpan(t *testing.T) {
	tr := starTree(4) // slots 1,2,3
	min, max := tr.SlotSpan()
	if min != 1 || max != 3 {
		t.Errorf("SlotSpan = %d,%d", min, max)
	}
	empty := &BiTree{Root: 0, Nodes: []int{0}}
	if min, max = empty.SlotSpan(); max >= min {
		t.Errorf("empty SlotSpan = %d,%d", min, max)
	}
}

func TestParentChildren(t *testing.T) {
	tr := chainTree(4)
	par := tr.Parent()
	if len(par) != 3 || par[3] != 2 || par[1] != 0 {
		t.Errorf("Parent = %v", par)
	}
	ch := tr.Children()
	if len(ch[0]) != 1 || ch[0][0] != 1 {
		t.Errorf("Children = %v", ch)
	}
}

func TestDegrees(t *testing.T) {
	tr := starTree(5)
	deg := tr.Degrees()
	if deg[0] != 4 {
		t.Errorf("root degree = %d, want 4", deg[0])
	}
	for i := 1; i < 5; i++ {
		if deg[i] != 1 {
			t.Errorf("leaf %d degree = %d", i, deg[i])
		}
	}
	if tr.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d", tr.MaxDegree())
	}
	empty := &BiTree{}
	if empty.MaxDegree() != 0 {
		t.Error("MaxDegree(empty) != 0")
	}
}

func TestDownReversesSchedule(t *testing.T) {
	tr := chainTree(4)
	down := tr.Down()
	if len(down) != 3 {
		t.Fatalf("Down len = %d", len(down))
	}
	// The up-link with the largest slot must become the down-link with the
	// smallest, and directions must flip.
	upMax := tr.Up[0]
	for _, tl := range tr.Up {
		if tl.Slot > upMax.Slot {
			upMax = tl
		}
	}
	for _, tl := range down {
		if tl.L == upMax.L.Dual() {
			min, _ := tr.SlotSpan()
			if tl.Slot != min {
				t.Errorf("dual of latest up-link has down slot %d, want %d", tl.Slot, min)
			}
		}
		if tl.Power != 100 {
			t.Errorf("down power = %v", tl.Power)
		}
	}
}

func TestStronglyConnectedFailsOnSplit(t *testing.T) {
	tr := chainTree(5)
	tr.Up = tr.Up[:2] // drop links, leaving unreachable nodes
	if tr.StronglyConnected() {
		t.Error("disconnected tree reported connected")
	}
	empty := &BiTree{}
	if empty.StronglyConnected() {
		t.Error("empty tree reported connected")
	}
}

func TestPowerTable(t *testing.T) {
	tr := starTree(3)
	pt := tr.PowerTable()
	l := tr.Up[0].L
	if pt.Table[l] != 10 || pt.Table[l.Dual()] != 10 {
		t.Errorf("PowerTable = %v", pt.Table)
	}
}

func TestPerSlotFeasible(t *testing.T) {
	// Two distant link pairs in the same slot are feasible; two adjacent
	// pairs in the same slot with huge mutual interference are not.
	pts := []geom.Point{{X: 0}, {X: 1}, {X: 1000}, {X: 1001}}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	pw := in.Params().SafePower(1)
	good := &BiTree{Root: 0, Nodes: []int{0, 1, 2, 3}}
	good.Up = []TimedLink{
		{L: sinr.Link{From: 1, To: 0}, Slot: 1, Power: pw},
		{L: sinr.Link{From: 2, To: 3}, Slot: 1, Power: pw},
		{L: sinr.Link{From: 3, To: 0}, Slot: 2, Power: in.Params().SafePower(1001)},
	}
	if err := good.ValidatePerSlotFeasible(in); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}

	// Two long links whose receivers sit next to each other: each sender is
	// nearly as close to the other link's receiver as to its own, so SINR
	// drops below β when both fire in one slot.
	ptsBad := []geom.Point{{X: 0}, {X: 10}, {X: 11}, {X: 21}}
	inBad := sinr.MustInstance(ptsBad, sinr.DefaultParams())
	pwBad := inBad.Params().SafePower(10)
	bad := &BiTree{Root: 0, Nodes: []int{0, 1, 2, 3}}
	bad.Up = []TimedLink{
		{L: sinr.Link{From: 0, To: 1}, Slot: 1, Power: pwBad},
		{L: sinr.Link{From: 3, To: 2}, Slot: 1, Power: pwBad},
	}
	if err := bad.ValidatePerSlotFeasible(inBad); err == nil {
		t.Error("infeasible slot accepted")
	}
}

func TestAggregationLatency(t *testing.T) {
	tr := chainTree(5)
	slots, err := tr.AggregationLatency()
	if err != nil {
		t.Fatal(err)
	}
	if slots != 4 {
		t.Errorf("chain latency = %d, want 4", slots)
	}
	star := starTree(6)
	slots, err = star.AggregationLatency()
	if err != nil {
		t.Fatal(err)
	}
	if slots != 5 {
		t.Errorf("star latency = %d, want 5", slots)
	}
}

func TestAggregationIncompleteDetected(t *testing.T) {
	tr := chainTree(4)
	// Break ordering so the replay cannot complete: fire the root-adjacent
	// link first. Chain: 3→2→1→0; give 1→0 the earliest slot and 3→2 the
	// latest, then token of 3 never reaches 0.
	for i := range tr.Up {
		if tr.Up[i].L.From == 1 {
			tr.Up[i].Slot = 0
		}
		if tr.Up[i].L.From == 3 {
			tr.Up[i].Slot = 10
		}
	}
	if _, err := tr.AggregationLatency(); err == nil {
		t.Error("incomplete aggregation not detected")
	}
}

func TestBroadcastLatency(t *testing.T) {
	tr := chainTree(5)
	slots, err := tr.BroadcastLatency()
	if err != nil {
		t.Fatal(err)
	}
	if slots != 4 {
		t.Errorf("broadcast latency = %d, want 4", slots)
	}
}

func TestBroadcastIncompleteDetected(t *testing.T) {
	tr := chainTree(4)
	tr.Up = tr.Up[:2]
	tr.Nodes = []int{0, 1, 2, 3}
	if _, err := tr.BroadcastLatency(); err == nil {
		t.Error("incomplete broadcast not detected")
	}
}

func TestPairLatency(t *testing.T) {
	tr := chainTree(5)
	lat, err := tr.PairLatency(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("PairLatency = %d", lat)
	}
	// Bi-tree guarantee: at most up-slots + down-slots = 2× schedule length.
	if max := 2 * tr.NumSlots(); lat > max {
		t.Errorf("PairLatency %d exceeds 2×schedule %d", lat, max)
	}
	// Degenerate pair: src == dst == root costs nothing on the up phase
	// (already at root) and nothing down.
	lat, err = tr.PairLatency(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 0 {
		t.Errorf("root-to-root latency = %d", lat)
	}
}

func TestDepth(t *testing.T) {
	if d := chainTree(5).Depth(); d != 4 {
		t.Errorf("chain depth = %d", d)
	}
	if d := starTree(5).Depth(); d != 1 {
		t.Errorf("star depth = %d", d)
	}
}

func TestRandomTreesValidate(t *testing.T) {
	// Random recursive trees with leaf-first slots must pass all validators.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		tr := &BiTree{Root: 0}
		for i := 0; i < n; i++ {
			tr.Nodes = append(tr.Nodes, i)
		}
		// Node i attaches to a random earlier node; slot decreasing in i
		// would violate ordering, so schedule out(i) at slot n-i+depth...
		// simplest correct stamp: slot = n - i (children have smaller i ⇒
		// larger slot? No: parent has SMALLER index, needs LARGER slot).
		// out(i) links i→p with p < i, so slot(out(p)) must be > slot(out(i)):
		// use slot = n - i, increasing as index decreases. ✓
		for i := 1; i < n; i++ {
			p := rng.Intn(i)
			tr.Up = append(tr.Up, TimedLink{L: sinr.Link{From: i, To: p}, Slot: n - i, Power: 1})
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tr.ValidateOrdering(); err != nil {
			t.Fatalf("trial %d ordering: %v", trial, err)
		}
		if !tr.StronglyConnected() {
			t.Fatalf("trial %d not connected", trial)
		}
		if _, err := tr.AggregationLatency(); err != nil {
			t.Fatalf("trial %d aggregation: %v", trial, err)
		}
		if _, err := tr.BroadcastLatency(); err != nil {
			t.Fatalf("trial %d broadcast: %v", trial, err)
		}
		a, b := rng.Intn(n), rng.Intn(n)
		if _, err := tr.PairLatency(a, b); err != nil {
			t.Fatalf("trial %d pair(%d,%d): %v", trial, a, b, err)
		}
	}
}

func TestLinks(t *testing.T) {
	tr := starTree(3)
	ls := tr.Links()
	if len(ls) != 2 {
		t.Fatalf("Links len = %d", len(ls))
	}
	for i, l := range ls {
		if l != tr.Up[i].L {
			t.Errorf("Links[%d] = %v", i, l)
		}
	}
}
