package core

import (
	"context"
	"math"
	"testing"

	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

func checkTVC(t *testing.T, in *sinr.Instance, res *TVCResult) {
	t.Helper()
	bt := res.Tree
	if err := bt.Validate(); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	if err := bt.ValidateOrdering(); err != nil {
		t.Fatalf("ordering invalid: %v", err)
	}
	if !bt.StronglyConnected() {
		t.Fatal("not strongly connected")
	}
	if err := bt.ValidatePerSlotFeasible(in); err != nil {
		t.Fatalf("schedule infeasible: %v", err)
	}
	if _, err := bt.AggregationLatency(); err != nil {
		t.Fatalf("aggregation replay: %v", err)
	}
	if _, err := bt.BroadcastLatency(); err != nil {
		t.Fatalf("broadcast replay: %v", err)
	}
}

func TestTVCArbitrary(t *testing.T) {
	in := uniformInstance(t, 40, 64)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkTVC(t, in, res)
	if len(res.Tree.Up) != 63 {
		t.Fatalf("links = %d, want 63", len(res.Tree.Up))
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
	// Theorem 4a shape: schedule length should be modest relative to
	// iterations (each iteration is one slot) and far below n.
	if got := res.Tree.NumSlots(); got > res.Iterations || got >= 63 {
		t.Errorf("schedule slots = %d (iterations %d)", got, res.Iterations)
	}
}

func TestTVCMean(t *testing.T) {
	in := uniformInstance(t, 41, 64)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantMean, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkTVC(t, in, res)
	if len(res.Tree.Up) != 63 {
		t.Fatalf("links = %d, want 63", len(res.Tree.Up))
	}
}

func TestTVCDefaultVariantIsArbitrary(t *testing.T) {
	in := uniformInstance(t, 42, 24)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkTVC(t, in, res)
}

func TestTVCSingleNode(t *testing.T) {
	in := sinr.MustInstance(workload.GridPoints(1, 1, 1), sinr.DefaultParams())
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Root != 0 || len(res.Tree.Up) != 0 || res.Iterations != 0 {
		t.Errorf("single node result: %+v", res)
	}
}

func TestTVCChainInstance(t *testing.T) {
	in := sinr.MustInstance(workload.ChainForDelta(24, 1<<12), sinr.DefaultParams())
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkTVC(t, in, res)
}

func TestTVCIterationsLogarithmic(t *testing.T) {
	// Theorem 12 shape: iterations should grow like log n, not n. Compare
	// against a very generous c·log₂n bound.
	in := uniformInstance(t, 43, 128)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bound := int(12 * math.Log2(128))
	if res.Iterations > bound {
		t.Errorf("iterations %d exceed %d", res.Iterations, bound)
	}
}

func TestTVCSelectionFractionsRecorded(t *testing.T) {
	in := uniformInstance(t, 44, 48)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantMean, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectionFractions) != res.Iterations {
		t.Errorf("%d fractions for %d iterations",
			len(res.SelectionFractions), res.Iterations)
	}
	for _, f := range res.SelectionFractions {
		if f < 0 || f > 1.01 {
			t.Errorf("fraction %v out of range", f)
		}
	}
}

func TestTVCEmptyInstance(t *testing.T) {
	in := sinr.MustInstance(nil, sinr.DefaultParams())
	if _, err := TreeViaCapacity(context.Background(), in, TVCConfig{}); err == nil {
		t.Error("empty instance accepted")
	}
}

func TestTVCDeterministic(t *testing.T) {
	in := uniformInstance(t, 45, 32)
	a, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || len(a.Tree.Up) != len(b.Tree.Up) ||
		a.Tree.Root != b.Tree.Root {
		t.Fatal("TreeViaCapacity not deterministic")
	}
}

func TestTVCPowerIterationsAccounted(t *testing.T) {
	in := uniformInstance(t, 46, 48)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerSolveIterations <= 0 {
		t.Error("power solve iterations not accounted")
	}
}
