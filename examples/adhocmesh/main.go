// Adhocmesh: an ad-hoc multi-hop network scenario. After the bi-tree is
// built, any node can message any other node by going up the aggregation
// schedule to the root and down the dissemination schedule — within twice
// the schedule length, whatever pair you pick. We measure the worst pair
// empirically and compare the Section-6 tree against the Section-8 tree.
//
//	go run ./examples/adhocmesh
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"

	"sinrconn"
)

func main() {
	if err := run(os.Stdout, 72, 22, 200, 9); err != nil {
		log.Fatal(err)
	}
}

// run builds both tree variants over n nodes on a span×span square,
// samples trials random pairs for worst-case latency, and physically
// delivers one message. seed drives the protocol randomness only; the
// topology seed is fixed so the example's mesh (and narrative output)
// stays stable across seeds.
func run(out io.Writer, n int, span float64, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(5))
	pts := scatter(rng, n, span)
	opt := sinrconn.Options{Seed: seed}

	initial, err := sinrconn.BuildInitialBiTree(pts, opt)
	if err != nil {
		return err
	}
	refined, err := sinrconn.BuildBiTreeArbitraryPower(pts, opt)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "mesh: n=%d  Δ=%.1f\n\n", len(pts), initial.Metrics.Delta)
	fmt.Fprintf(out, "%-22s %-14s %-14s %-10s\n", "structure", "schedule", "worst pair", "bound 2×len")
	for _, row := range []struct {
		name string
		res  *sinrconn.Result
	}{
		{"Init (Sec. 6)", initial},
		{"TreeViaCapacity (Sec. 8)", refined},
	} {
		worst := 0
		for trial := 0; trial < trials; trial++ {
			src, dst := rng.Intn(len(pts)), rng.Intn(len(pts))
			lat, err := row.res.Tree.PairLatency(src, dst)
			if err != nil {
				return err
			}
			if lat > worst {
				worst = lat
			}
		}
		k := row.res.Metrics.ScheduleLength
		if worst > 2*k {
			return fmt.Errorf("%s: pair latency %d exceeds 2×schedule %d", row.name, worst, 2*k)
		}
		fmt.Fprintf(out, "%-22s %-14d %-14d %-10d\n", row.name, k, worst, 2*k)
	}
	// Physically deliver one message over the refined structure: up one
	// converge-cast epoch, down one dissemination epoch, on the actual
	// channel.
	src, dst := 0, len(pts)-1
	msg, err := refined.SendMessage(src, dst, 31337, sinrconn.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nphysical delivery %d→%d: %v in %d channel slots (energy %.3g)\n",
		src, dst, msg.Delivered, msg.SlotsUsed, msg.Energy)

	fmt.Fprintf(out, "\nPer-message latency is bounded by twice the schedule length on either\n")
	fmt.Fprintf(out, "structure. The Section-6 stamps scale with log Δ·log n while the\n")
	fmt.Fprintf(out, "Section-8 schedule scales with log n alone — on this instance\n")
	fmt.Fprintf(out, "(Δ=%.0f, so log Δ is small) they land at %d and %d slots; crank Δ up\n",
		initial.Metrics.Delta, initial.Metrics.ScheduleLength, refined.Metrics.ScheduleLength)
	fmt.Fprintf(out, "(see examples/powercompare) and the ordering flips decisively.\n")
	return nil
}

func scatter(rng *rand.Rand, n int, span float64) []sinrconn.Point {
	var pts []sinrconn.Point
	for len(pts) < n {
		cand := sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}
