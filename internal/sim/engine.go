package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"sinrconn/internal/faults"
	"sinrconn/internal/sinr"
)

// MsgKind distinguishes protocol message types. The paper uses two:
// exploratory broadcasts (ID + location) and addressed acknowledgments.
type MsgKind uint8

// Message kinds.
const (
	KindBroadcast MsgKind = iota + 1
	KindAck
	KindData
)

// NoAddressee marks a message sent to no node in particular (a broadcast).
const NoAddressee = -1

// Message is the content of one transmission. A single message is large
// enough to contain the ID and the location of a node (Section 3); the
// location is implied by From, since every node knows the point set index
// it occupies and receivers learn distances from the physics (Delivery.Dist).
type Message struct {
	Kind MsgKind
	// From is the sender's node index (its globally unique ID).
	From int
	// To is the addressee for acknowledgments, or NoAddressee.
	To int
	// Tag carries protocol-defined context (e.g. the Init round number or a
	// Distr-Cap phase index).
	Tag int
	// Payload carries small protocol data (e.g. an aggregate value).
	Payload int64
}

// ActionKind enumerates what a node does in a slot.
type ActionKind uint8

// Actions a protocol can take in a slot.
const (
	// ActionIdle: the node neither transmits nor listens (it has left the
	// protocol). Idle nodes cost nothing in the physics computation.
	ActionIdle ActionKind = iota + 1
	// ActionListen: the node listens and may receive one message.
	ActionListen
	// ActionTransmit: the node transmits Msg with power Power. Transmitting
	// nodes cannot receive in the same slot (half-duplex).
	ActionTransmit
)

// Action is a protocol's decision for one slot.
type Action struct {
	Kind  ActionKind
	Power float64
	Msg   Message
}

// Idle returns the idle action.
func Idle() Action { return Action{Kind: ActionIdle} }

// Listen returns the listen action.
func Listen() Action { return Action{Kind: ActionListen} }

// Transmit returns a transmit action.
func Transmit(power float64, msg Message) Action {
	return Action{Kind: ActionTransmit, Power: power, Msg: msg}
}

// Delivery is a successfully decoded message as seen by a receiver.
type Delivery struct {
	Msg Message
	// Dist is the distance to the sender. The receiver can always compute
	// it because messages carry the sender's location (Section 3).
	Dist float64
	// SINR is the measured signal-to-interference-and-noise ratio of the
	// reception. Section 8.2 explicitly assumes receivers can measure it.
	SINR float64
	// Slot is the slot in which the message was transmitted.
	Slot int
}

// Protocol is a per-node state machine. Step is called once per slot with
// the deliveries received in the previous slot (at most one under β ≥ 1,
// but the API permits more for β < 1 configurations) and returns the node's
// action for this slot. Implementations must confine themselves to their
// own state: Step is invoked concurrently across nodes.
type Protocol interface {
	Step(slot int, inbox []Delivery) Action
}

// Config tunes the engine.
type Config struct {
	// Workers is the number of goroutines stepping nodes and decoding
	// listeners. Zero means runtime.NumCPU().
	Workers int
	// DropProb injects reception failures: each otherwise-successful
	// delivery is independently dropped with this probability (modeling
	// fading the SINR mean-path-loss model misses). Drops are derived
	// deterministically from Seed, slot, and receiver.
	DropProb float64
	// Seed drives the drop-injection randomness.
	Seed int64
	// Observer, if non-nil, is invoked after every slot with a summary of
	// channel activity (for tracing and live experiment dashboards).
	Observer Observer
	// Injector, if non-nil, is consulted at the engine's fault-injection
	// sites (sim.slot.slow before each slot, pool.worker.stall before
	// each pool job — see internal/faults). Firing only stalls: injected
	// delays never change schedules or stats, so a fault-free replay of
	// the same seed is bit-identical to an engine without an injector.
	Injector faults.Injector
	// Pool, if non-nil, is a shared worker pool the engine dispatches its
	// parallel stages on instead of spawning its own. The engine does not
	// own a shared pool: Close leaves it running, so a session handle
	// (sinrconn.Network) can reuse one pool across many engine lifetimes
	// and across concurrent engines. When Pool is nil the engine spawns a
	// private pool sized by Workers (the pre-session behavior).
	Pool *Pool
	// FarField, if non-nil, switches channel resolution to a far-field
	// approximation plan — the flat tile grid (*sinr.FarField) or the
	// hierarchical quadtree (*sinr.QuadTree): per slot, senders are
	// aggregated spatially and a listener resolves distant senders by
	// centroid mass instead of sender by sender, within the plan's
	// certified relative error. The decoded winner and its received power
	// stay exact (both plans refine any aggregate that could hide the
	// strongest sender); only Delivery.SINR carries the ε bound. The plan
	// must be built from the engine's own Instance. Nil means exact
	// resolution — bit-identical to the pre-far-field engine.
	FarField sinr.Far
	// Adaptive, with FarField set, selects exact or far-field resolution
	// per slot from the live sender count: a slot with fewer than the
	// crossover's senders decodes exactly (sparse slots cost O(n·|txs|),
	// below the plan's accumulation + walk overhead), a denser slot decodes
	// through the plan. The choice depends only on |txs|, so runs stay
	// deterministic and worker-count independent; each slot is bit-identical
	// to an engine forced to that slot's mode.
	Adaptive bool
	// AdaptiveCrossover overrides the calibrated sender-count crossover
	// (DefaultAdaptiveCrossover) above which an adaptive slot resolves
	// far-field. Zero selects the default.
	AdaptiveCrossover int
	// NoFarBatch disables the shared-frontier batched decode on far-field
	// plans that support it (the quadtree), forcing the per-listener Resolve
	// walk instead. The two paths are bit-identical
	// (TestListenerBatchDriftGate); the knob exists for that gate's replay
	// and for the E20 ablation, not for production tuning.
	NoFarBatch bool

	// forceFar, when set (tests only), overrides per-slot mode selection:
	// the slot resolves far-field iff it returns true (and FarField is set
	// with a non-empty sender set). It is the replay hook the adaptive
	// drift gate uses to pin "adaptive run ≡ forcing the chosen mode per
	// slot" bit for bit.
	forceFar func(slot, senders int) bool
}

// DefaultAdaptiveCrossover is the calibrated sender count above which a
// slot is cheaper through the far-field plan than exact. Below it, exact
// decode costs |listeners|·|txs| direct gains, which undercuts the plan's
// per-listener walk floor: with S spread-out senders the walk must still
// reach each occupied region (≈ O(S · levels) visits at a several-fold
// higher per-visit cost than a gain multiply), so aggregation only pays
// once nodes hold many senders each. Measured on the jittered-grid bench
// geometry with uniformly spread senders (BenchmarkAdaptiveCrossover,
// BENCH_quadtree.json), and re-measured after the Morton relayout and
// batched decode: at n = 65536 the exact and quadtree per-slot curves
// still cross between 512 and 1024 senders at ε = 0.5 and ε = 2.5 alike
// (ε = 0.5: 268 ms exact vs 282 ms quad at S = 512, 456 vs 345 at
// S = 1024), and the crossing count is only weakly n-dependent (both
// sides scale with the listener count; the walk adds one pyramid level
// per 4× n). 768 sits between the two measured crossings, deliberately
// toward the exact side — exact slots are also error-free.
const DefaultAdaptiveCrossover = 768

// Stats counts engine activity for experiment reporting.
type Stats struct {
	Slots         int     // slots executed
	Transmissions int     // transmit actions observed
	Deliveries    int     // messages successfully delivered
	Collisions    int     // listener slots with audible signal but no decode
	Dropped       int     // deliveries removed by failure injection
	Energy        float64 // total transmission energy (sum of powers × slots)
}

// SlotEvent is handed to an Observer after each slot.
type SlotEvent struct {
	// Slot is the slot index that just executed.
	Slot int
	// Senders is the number of concurrent transmitters.
	Senders int
	// Deliveries is the number of successful decodes.
	Deliveries int
	// Far reports that the slot resolved through the far-field plan
	// (always false on exact engines; on adaptive engines it records the
	// per-slot mode choice, which the drift gate replays).
	Far bool
}

// Observer receives a SlotEvent after every slot. Observers run on the
// engine goroutine; they must not call back into the engine.
type Observer func(SlotEvent)

// shardedAccumMinTxs is the sender count above which a slot's pyramid
// accumulation is dispatched across the pool as shards instead of running
// serially. Below it the per-dispatch synchronization (two channel rounds
// plus a WaitGroup) costs more than the fold it parallelizes. The sharded
// result is bit-identical to the serial one
// (TestShardedAccumulateDeterminism), so the threshold only moves time,
// never output. A var only so the engine drift test can force the sharded
// path at test scale.
var shardedAccumMinTxs = 2048

// farSharder is the optional sharded-accumulation face of a far-field
// resolver (implemented by the quadtree scratch): AccumBegin/AccumShard×k/
// AccumFinish replaces Accumulate with a pool-parallel fold whose result is
// bit-identical.
type farSharder interface {
	AccumShards() int
	AccumBegin([]sinr.Tx)
	AccumShard(int, []sinr.Tx)
	AccumFinish()
}

// farBatchPlanner is the optional listener-batching face of a far-field
// plan (implemented by *sinr.QuadTree): BatchSpec orders the nodes by
// shared-frontier predicate class, NewBatchState allocates walk state for
// one concurrent ResolveBatch user.
type farBatchPlanner interface {
	BatchSpec() (order, class []int32)
	NewBatchState() *sinr.BatchState
}

// farBatchResolver is the resolver half of listener batching: ResolveBatch
// resolves a same-class run of listeners through one shared frontier,
// bit-identical to per-listener Resolve.
type farBatchResolver interface {
	ResolveBatch(*sinr.BatchState, []int32, sinr.BatchSink)
}

// shard holds one worker's slot counters, padded to a cache line so
// concurrent workers never contend on the same line. The shards are summed
// (in worker order, all integers) after the parallel section, so totals are
// identical to the old mutex-guarded counters.
type shard struct {
	delivered int
	collided  int
	dropped   int
	_         [40]byte
}

// Engine drives a set of per-node protocols over a shared SINR channel.
type Engine struct {
	inst    *sinr.Instance
	procs   []Protocol
	cfg     Config
	stats   Stats
	slot    int
	inboxes [][]Delivery
	next    [][]Delivery
	actions []Action
	txs     []sinr.Tx

	// Physics-kernel state hoisted out of the slot loop.
	beta  float64
	noise float64
	alpha float64
	gains []float64 // row-major n×n gain table; nil if over memory budget

	// Far-field approximation state (nil in exact mode). The resolver is
	// engine-private: Accumulate fills it serially each slot, the parallel
	// decode stage only reads it (both plans keep per-listener walk state
	// on the goroutine stack).
	far       sinr.Far
	farScr    sinr.FarResolver
	adaptive  bool
	crossover int
	farSlot   bool // current slot resolves far-field (set serially in Step)

	// Sharded accumulation (nil unless farScr supports it and a pool
	// exists): dense slots fold the pyramid across the pool.
	farShard farSharder
	// Listener batching (nil unless the plan supports it and Config.
	// NoFarBatch is unset): far slots decode through shared frontiers.
	// farOrder/farClass are the plan's static batch spec; farVs/farB are
	// the slot's listening nodes in batch order and the class-run starts
	// into farVs (with a trailing sentinel), rebuilt serially each far
	// slot; farBS/farSinks hold one walk state and counter sink per
	// worker.
	farBatch farBatchResolver
	farOrder []int32
	farClass []int32
	farVs    []int32
	farB     []int32
	farBS    []*sinr.BatchState
	farSinks []farSink

	shards  []shard
	pool    *Pool // nil when the engine runs serially
	ownPool bool  // the engine spawned pool itself and must close it
	stageWG sync.WaitGroup
}

// NewEngine creates an engine over instance inst with one protocol per node.
// len(procs) must equal inst.Len(). Engines whose instance is large enough
// to parallelize dispatch on Config.Pool when one is provided, otherwise
// they spawn a private worker pool; call Close when done with an engine to
// release a private pool's goroutines (Close is always safe to call and
// never touches a shared pool).
func NewEngine(inst *sinr.Instance, procs []Protocol, cfg Config) (*Engine, error) {
	if len(procs) != inst.Len() {
		return nil, fmt.Errorf("sim: %d protocols for %d nodes", len(procs), inst.Len())
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		if cfg.DropProb != 0 {
			return nil, fmt.Errorf("sim: drop probability %v outside [0,1)", cfg.DropProb)
		}
	}
	n := inst.Len()
	p := inst.Params()
	e := &Engine{
		inst:    inst,
		procs:   procs,
		cfg:     cfg,
		inboxes: make([][]Delivery, n),
		next:    make([][]Delivery, n),
		actions: make([]Action, n),
		beta:    p.Beta,
		noise:   p.Noise,
		alpha:   p.Alpha,
	}
	var batchPlan farBatchPlanner
	if cfg.FarField != nil {
		if cfg.FarField.Instance() != inst {
			return nil, fmt.Errorf("sim: far-field plan built from a different instance")
		}
		e.far = cfg.FarField
		e.farScr = cfg.FarField.NewResolver()
		if fs, ok := e.farScr.(farSharder); ok && fs.AccumShards() > 1 {
			e.farShard = fs
		}
		if bp, ok := cfg.FarField.(farBatchPlanner); ok && !cfg.NoFarBatch {
			if br, ok := e.farScr.(farBatchResolver); ok {
				batchPlan = bp
				e.farBatch = br
			}
		}
		if cfg.Adaptive {
			e.adaptive = true
			e.crossover = cfg.AdaptiveCrossover
			if e.crossover <= 0 {
				e.crossover = DefaultAdaptiveCrossover
			}
		}
		// Exact slots on an adaptive engine decode with on-the-fly path
		// loss (bit-identical to table entries): a far-field session exists
		// to avoid the O(n²) table, and sparse slots don't need it.
	} else {
		// The gain table only pays off on the exact path; far-field mode
		// targets instances past its memory bound.
		e.gains = inst.GainTable()
	}
	switch {
	case cfg.Pool != nil && cfg.Pool.Workers() > 1 && n >= 2*cfg.Pool.Workers():
		// Shared session pool; the engine borrows it and never closes it.
		e.pool = cfg.Pool
		e.shards = make([]shard, cfg.Pool.Workers())
	case cfg.Pool == nil && cfg.Workers > 1 && n >= 2*cfg.Workers:
		e.pool = NewPool(cfg.Workers)
		e.ownPool = true
		e.shards = make([]shard, cfg.Workers)
	default:
		e.shards = make([]shard, 1)
	}
	if e.farBatch != nil {
		e.farOrder, e.farClass = batchPlan.BatchSpec()
		e.farVs = make([]int32, 0, n)
		e.farB = make([]int32, 0, n+1)
		e.farBS = make([]*sinr.BatchState, len(e.shards))
		e.farSinks = make([]farSink, len(e.shards))
		for k := range e.farBS {
			e.farBS[k] = batchPlan.NewBatchState()
			e.farSinks[k] = farSink{e: e, sh: &e.shards[k]}
		}
	}
	return e, nil
}

// Close releases the engine's private worker pool, if it spawned one. A
// shared pool passed in via Config.Pool is left running — its owner (the
// session handle) closes it. The engine must not be stepped after Close.
// Close is idempotent.
func (e *Engine) Close() {
	if e.pool != nil && e.ownPool {
		e.pool.Close()
	}
	e.pool = nil
	e.ownPool = false
}

// Slot returns the index of the next slot to execute.
func (e *Engine) Slot() int { return e.slot }

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Instance returns the underlying SINR instance.
func (e *Engine) Instance() *sinr.Instance { return e.inst }

// Step executes one slot: gather actions, resolve the channel, deliver.
//sinr:hotpath
func (e *Engine) Step() {
	n := len(e.procs)

	// Fault site sim.slot.slow: stall the whole slot. Timing only — the
	// slot's schedule and stats are untouched, so replays stay
	// bit-identical.
	if e.cfg.Injector != nil {
		if act, ok := e.cfg.Injector.Fire(faults.SimSlotSlow); ok {
			time.Sleep(act.Delay)
		}
	}

	// Stage 1: step every protocol with its inbox (parallel).
	if e.pool != nil {
		e.pool.dispatch(e, stageStep)
	} else {
		e.stepRange(0, n)
	}

	// Stage 2: collect the sender set.
	e.txs = e.txs[:0]
	for i := range e.actions {
		if e.actions[i].Kind == ActionTransmit {
			e.txs = append(e.txs, sinr.Tx{Sender: i, Power: e.actions[i].Power})
			e.stats.Energy += e.actions[i].Power
		}
	}
	e.stats.Transmissions += len(e.txs)

	// Stage 2.5 (far-field mode): pick the slot's resolution mode, then one
	// serial O(#senders) pass folds the sender set into the plan's
	// aggregates for the parallel decode stage. Adaptive engines keep
	// sparse slots exact — below the crossover the plan's accumulation and
	// per-listener walk floor cost more than |listeners|·|txs| direct
	// gains — and the choice reads only |txs|, so it is deterministic and
	// worker-count independent.
	e.farSlot = e.far != nil && len(e.txs) > 0
	if e.farSlot && e.adaptive && len(e.txs) < e.crossover {
		e.farSlot = false
	}
	if e.far != nil && e.cfg.forceFar != nil {
		e.farSlot = e.cfg.forceFar(e.slot, len(e.txs)) && len(e.txs) > 0
	}
	if e.farSlot {
		if e.farShard != nil && e.pool != nil && len(e.txs) >= shardedAccumMinTxs {
			// Sharded fold across the pool, bit-identical to the serial
			// Accumulate: a serial counting sort by shard, a parallel fold
			// of each shard's subtree, a serial cross-shard merge.
			e.farShard.AccumBegin(e.txs)
			e.pool.dispatch(e, stageFarAccum)
			e.farShard.AccumFinish()
		} else {
			e.farScr.Accumulate(e.txs)
		}
	}

	// Stage 3: decode at every listener (parallel). Each listener decodes
	// the strongest sender if its SINR clears β. Counters land in per-worker
	// shards; no lock is taken. Far slots on a batching plan group the
	// listeners by predicate class (serially, from the plan's static spec)
	// and walk each class run through one shared frontier — bit-identical
	// to the per-listener walks.
	if len(e.txs) > 0 {
		switch {
		case e.farSlot && e.farBatch != nil:
			e.buildFarRuns()
			if e.pool != nil {
				e.pool.dispatch(e, stageDecodeFarBatch)
			} else {
				e.decodeFarBatchRange(0, len(e.farVs), 0)
			}
		case e.pool != nil:
			e.pool.dispatch(e, stageDecode)
		default:
			e.decodeRange(0, n, &e.shards[0])
		}
	}
	var delivered int
	for k := range e.shards {
		sh := &e.shards[k]
		delivered += sh.delivered
		e.stats.Collisions += sh.collided
		e.stats.Dropped += sh.dropped
		sh.delivered, sh.collided, sh.dropped = 0, 0, 0
	}
	e.stats.Deliveries += delivered

	// Stage 4: swap inboxes and notify.
	e.inboxes, e.next = e.next, e.inboxes
	slot := e.slot
	e.slot++
	e.stats.Slots++
	if e.cfg.Observer != nil {
		e.cfg.Observer(SlotEvent{
			Slot:       slot,
			Senders:    len(e.txs),
			Deliveries: delivered,
			Far:        e.farSlot,
		})
	}
}

// stepRange runs stage 1 for nodes [lo, hi).
//sinr:hotpath
func (e *Engine) stepRange(lo, hi int) {
	slot := e.slot
	for i := lo; i < hi; i++ {
		e.actions[i] = e.procs[i].Step(slot, e.inboxes[i])
		e.next[i] = e.next[i][:0]
	}
}

// decodeRange runs stage 3 for listeners [lo, hi), accumulating counters
// into sh.
//sinr:hotpath
func (e *Engine) decodeRange(lo, hi int, sh *shard) {
	for i := lo; i < hi; i++ {
		if e.actions[i].Kind == ActionListen {
			e.decodeListener(i, sh)
		}
	}
}

// decodeListener resolves reception at listener i: a single pass over the
// sender set accumulates total received power and tracks the strongest
// sender via the cached gain table; the strongest sender is decoded iff its
// SINR ≥ β. The sender's distance (for Delivery.Dist) is computed once,
// only for an actual delivery.
//sinr:hotpath
func (e *Engine) decodeListener(i int, sh *shard) {
	if e.farSlot {
		e.decodeListenerFar(i, sh)
		return
	}
	n := len(e.procs)
	var row []float64
	if e.gains != nil {
		row = e.gains[i*n : (i+1)*n]
	}
	var total, bestRP float64
	best := -1
	for k := range e.txs {
		t := &e.txs[k]
		var g float64
		if row != nil {
			g = row[t.Sender]
		} else {
			// On-the-fly path loss: bit-identical to a table entry (same
			// expression), and — unlike Instance.Gain — never forces the
			// O(n²) table build an adaptive far-field engine avoids.
			g = 1 / sinr.PowAlphaSq(e.inst.DistSq(t.Sender, i), e.alpha)
		}
		if math.IsInf(g, 1) {
			// A co-located sender (only possible with duplicate points)
			// saturates the channel; nothing is decodable.
			sh.collided++
			return
		}
		rp := t.Power * g
		total += rp
		if rp > bestRP {
			bestRP = rp
			best = k
		}
	}
	if best < 0 {
		// No audible signal (all senders at zero power).
		return
	}
	e.finishDecode(i, best, bestRP, total, sh)
}

// decodeListenerFar resolves reception at listener i through the far-field
// plan: the winner and its received power are exact (both plans refine any
// aggregate that could hide the strongest sender), the interference total
// is approximate within the plan's certified ε, and everything downstream —
// the β cut, drop injection, delivery bookkeeping — is the shared exact
// tail.
//sinr:hotpath
func (e *Engine) decodeListenerFar(i int, sh *shard) {
	best, bestRP, total, saturated := e.farScr.Resolve(i, e.txs)
	if saturated {
		// A co-located sender drowns the channel, exactly as in exact mode.
		sh.collided++
		return
	}
	if best < 0 {
		return
	}
	e.finishDecode(i, best, bestRP, total, sh)
}

// farSink adapts one worker's decode tail to sinr.BatchSink: ResolveBatch
// hands it per-listener results in batch order and it applies the same
// saturation/no-signal/β-cut handling as decodeListenerFar. The sinks live
// in Engine.farSinks so passing one through the interface never allocates.
type farSink struct {
	e  *Engine
	sh *shard
}

// DeliverFar implements sinr.BatchSink.
//sinr:hotpath
func (s *farSink) DeliverFar(v, best int, bestRP, total float64, saturated bool) {
	if saturated {
		s.sh.collided++
		return
	}
	if best < 0 {
		return
	}
	s.e.finishDecode(v, best, bestRP, total, s.sh)
}

// buildFarRuns collects the slot's listening nodes in the plan's batch
// order into farVs and records each predicate-class run's start in farB
// (trailing sentinel = len(farVs)). Serial, O(n), allocation-free (both
// slices were sized for the whole node set at construction).
//sinr:hotpath
func (e *Engine) buildFarRuns() {
	e.farVs = e.farVs[:0]
	e.farB = e.farB[:0]
	prev := int32(-1)
	for pos, node := range e.farOrder {
		if e.actions[node].Kind != ActionListen {
			continue
		}
		if c := e.farClass[pos]; c != prev {
			e.farB = append(e.farB, int32(len(e.farVs)))
			prev = c
		}
		e.farVs = append(e.farVs, node)
	}
	e.farB = append(e.farB, int32(len(e.farVs)))
}

// decodeFarBatchRange decodes the listeners farVs[lo:hi) as worker k,
// splitting the range at class-run boundaries so every ResolveBatch call
// honors the one-class contract. Each listener's result is independent of
// how runs are split across workers (batched ≡ solo per listener), so any
// partition of farVs decodes identically.
//sinr:hotpath
func (e *Engine) decodeFarBatchRange(lo, hi, k int) {
	if lo >= hi {
		return
	}
	sink := &e.farSinks[k]
	bs := e.farBS[k]
	// The last run containing lo: greatest r with farB[r] ≤ lo.
	l, h := 0, len(e.farB)-2
	for l < h {
		m := (l + h + 1) >> 1
		if int(e.farB[m]) <= lo {
			l = m
		} else {
			h = m - 1
		}
	}
	for r := l; lo < hi; r++ {
		end := int(e.farB[r+1])
		if end > hi {
			end = hi
		}
		e.farBatch.ResolveBatch(bs, e.farVs[lo:end], sink)
		lo = end
	}
}

// finishDecode is the decode tail shared by the exact and far-field paths:
// the β cut on the winner's SINR, drop injection, and delivery bookkeeping.
// best indexes e.txs; total is the full received power including the
// winner's.
//sinr:hotpath
func (e *Engine) finishDecode(i, best int, bestRP, total float64, sh *shard) {
	sinrVal := bestRP / (e.noise + (total - bestRP))
	if sinrVal < e.beta {
		sh.collided++
		return
	}
	if e.cfg.DropProb > 0 && dropCoin(e.cfg.Seed, e.slot, i) < e.cfg.DropProb {
		sh.dropped++
		return
	}
	tx := e.txs[best]
	e.next[i] = append(e.next[i], Delivery{
		Msg:  e.actions[tx.Sender].Msg,
		Dist: e.inst.Dist(tx.Sender, i),
		SINR: sinrVal,
		Slot: e.slot,
	})
	sh.delivered++
}

// Run executes exactly n slots.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunCtx executes up to n slots, checking ctx before every slot. It
// returns the number of slots executed and ctx's error if the context was
// canceled or its deadline passed. Cancellation lands between slots, so
// the engine is left in a consistent state and remains usable (stats,
// inboxes, and the worker pool are intact).
func (e *Engine) RunCtx(ctx context.Context, n int) (int, error) {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		e.Step()
	}
	return n, nil
}

// RunUntil executes slots until stop() returns true (checked after every
// slot) or maxSlots have run, returning the number of slots executed.
func (e *Engine) RunUntil(maxSlots int, stop func() bool) int {
	ran := 0
	for ran < maxSlots {
		e.Step()
		ran++
		if stop() {
			break
		}
	}
	return ran
}

// dropCoin returns a deterministic pseudo-uniform value in [0,1) derived
// from (seed, slot, node) with a splitmix64 finalizer, so drop injection is
// reproducible and independent of worker scheduling.
func dropCoin(seed int64, slot, node int) float64 {
	x := uint64(seed) ^ (uint64(slot)+1)*0x9E3779B97F4A7C15 ^ (uint64(node)+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
