package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

// Kind labels a churn event.
type Kind uint8

const (
	// KindJoin introduces one new node at Event.Point.
	KindJoin Kind = iota + 1
	// KindFail kills the single node Event.Nodes[0].
	KindFail
	// KindBurst kills every alive node within the burst radius of a random
	// epicenter (Event.Nodes, at least one).
	KindBurst
	// KindShower permanently fails the tree links in Event.Links.
	KindShower
	// KindMove is a mobility tick: the driver advances its mobility stepper
	// by Event.Dt and repairs around the nodes that moved.
	KindMove
)

func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindFail:
		return "fail"
	case KindBurst:
		return "burst"
	case KindShower:
		return "shower"
	case KindMove:
		return "move"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one unit of churn traffic.
type Event struct {
	Kind Kind
	// Time is the absolute event time (exponential inter-arrivals).
	Time float64
	// Dt is the time elapsed since the previous event (mobility steps
	// advance the stepper by exactly this much).
	Dt float64
	// Nodes holds the victims (fail: one; burst: the whole disc).
	Nodes []int
	// Point is the new node's position (join only).
	Point geom.Point
	// Links holds the failed links (shower only).
	Links []sinr.Link
}

// Rates are the Poisson arrival rates (events per time unit) of each kind.
// A zero rate disables the kind. The total must be positive.
type Rates struct {
	Join   float64
	Fail   float64
	Burst  float64
	Shower float64
	Move   float64
}

func (r Rates) total() float64 { return r.Join + r.Fail + r.Burst + r.Shower + r.Move }

// Validate rejects unusable rate mixes.
func (r Rates) Validate() error {
	for _, v := range []float64{r.Join, r.Fail, r.Burst, r.Shower, r.Move} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("churn: negative or non-finite rate")
		}
	}
	if r.total() <= 0 {
		return fmt.Errorf("churn: all rates are zero")
	}
	return nil
}

// State is the live membership snapshot a Next call samples against. All
// slices are read-only for the generator.
type State struct {
	// Points holds the positions of EVERY instance node, alive or dead —
	// join placement must respect the min-distance normalization against
	// all of them (dead nodes still occupy their coordinates).
	Points []geom.Point
	// Alive lists the indices currently in the tree.
	Alive []int
	// Links lists the current tree links (shower targets).
	Links []sinr.Link
}

// Generator is a deterministic online churn source. Not safe for concurrent
// use; the driver owns it.
type Generator struct {
	rng         *rand.Rand
	rates       Rates
	burstRadius float64
	showerMax   int
	now         float64
}

// NewGenerator builds a generator. burstRadius is the kill-disc radius of
// correlated failures; showerMax bounds the links per shower (≥ 1).
func NewGenerator(seed int64, rates Rates, burstRadius float64, showerMax int) (*Generator, error) {
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	if burstRadius <= 0 {
		burstRadius = 4
	}
	if showerMax < 1 {
		showerMax = 3
	}
	return &Generator{
		rng:         rand.New(rand.NewSource(seed)),
		rates:       rates,
		burstRadius: burstRadius,
		showerMax:   showerMax,
	}, nil
}

// Now returns the generator's current clock (the time of the last event).
func (g *Generator) Now() float64 { return g.now }

// Next draws the next event against the live state. Kinds that cannot fire
// in the current state (failures with ≤ 1 alive node, showers with no
// links) are resampled as time passes — the clock still advances by the
// drawn inter-arrival, preserving the Poisson superposition. Returns an
// error only when nothing can ever fire (all rates point at impossible
// kinds) or a join cannot be placed.
func (g *Generator) Next(st State) (Event, error) {
	for attempt := 0; attempt < 64; attempt++ {
		dt := g.rng.ExpFloat64() / g.rates.total()
		g.now += dt
		ev := Event{Time: g.now, Dt: dt}
		switch g.pickKind() {
		case KindJoin:
			p, ok := g.placeJoin(st)
			if !ok {
				return ev, fmt.Errorf("churn: no room for a join near the deployment")
			}
			ev.Kind = KindJoin
			ev.Point = p
			return ev, nil
		case KindFail:
			if len(st.Alive) <= 1 {
				continue // cannot kill the last node; redraw
			}
			ev.Kind = KindFail
			ev.Nodes = []int{st.Alive[g.rng.Intn(len(st.Alive))]}
			return ev, nil
		case KindBurst:
			if len(st.Alive) <= 1 {
				continue
			}
			victims := g.burst(st)
			if len(victims) == 0 || len(victims) >= len(st.Alive) {
				continue // must leave at least one survivor
			}
			ev.Kind = KindBurst
			ev.Nodes = victims
			return ev, nil
		case KindShower:
			if len(st.Links) == 0 {
				continue
			}
			ev.Kind = KindShower
			ev.Links = g.shower(st)
			return ev, nil
		case KindMove:
			ev.Kind = KindMove
			return ev, nil
		}
	}
	return Event{}, fmt.Errorf("churn: no feasible event in 64 draws (state too small for the rate mix)")
}

func (g *Generator) pickKind() Kind {
	x := g.rng.Float64() * g.rates.total()
	for _, kr := range []struct {
		k Kind
		r float64
	}{
		{KindJoin, g.rates.Join},
		{KindFail, g.rates.Fail},
		{KindBurst, g.rates.Burst},
		{KindShower, g.rates.Shower},
		{KindMove, g.rates.Move},
	} {
		if x < kr.r {
			return kr.k
		}
		x -= kr.r
	}
	return KindMove
}

// placeJoin rejection-samples a position ≥ 1 away from every instance point
// inside the deployment bounding box padded by one burst radius (so the
// network can grow at its edges).
func (g *Generator) placeJoin(st State) (geom.Point, bool) {
	if len(st.Points) == 0 {
		return geom.Point{X: g.rng.Float64() * 10, Y: g.rng.Float64() * 10}, true
	}
	lo, hi := geom.BoundingBox(st.Points)
	pad := g.burstRadius
	lo.X -= pad
	lo.Y -= pad
	hi.X += pad
	hi.Y += pad
	for tries := 0; tries < 256; tries++ {
		p := geom.Point{
			X: lo.X + g.rng.Float64()*(hi.X-lo.X),
			Y: lo.Y + g.rng.Float64()*(hi.Y-lo.Y),
		}
		ok := true
		for _, q := range st.Points {
			if q.Dist(p) < 1 {
				ok = false
				break
			}
		}
		if ok {
			return p, true
		}
	}
	return geom.Point{}, false
}

// burst kills the alive disc around a random alive epicenter, capped so at
// least one node survives.
func (g *Generator) burst(st State) []int {
	center := st.Points[st.Alive[g.rng.Intn(len(st.Alive))]]
	var victims []int
	for _, v := range st.Alive {
		if st.Points[v].Dist(center) <= g.burstRadius {
			victims = append(victims, v)
		}
	}
	if len(victims) >= len(st.Alive) {
		victims = victims[:len(st.Alive)-1]
	}
	sort.Ints(victims)
	return victims
}

// shower picks 1..showerMax distinct live links.
func (g *Generator) shower(st State) []sinr.Link {
	k := 1 + g.rng.Intn(g.showerMax)
	if k > len(st.Links) {
		k = len(st.Links)
	}
	perm := g.rng.Perm(len(st.Links))[:k]
	sort.Ints(perm)
	links := make([]sinr.Link, 0, k)
	for _, i := range perm {
		links = append(links, st.Links[i])
	}
	return links
}
