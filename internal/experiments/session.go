package experiments

// E15 exercises the public session API end to end: one sinrconn.Network per
// instance size, every pipeline × seed fanned out through RunMatrix. It is
// the experiment-level consumer of the batch substrate (the same path
// cmd/connect -sweep and the root scenario-matrix suite use) and checks the
// session contract: every spec returns a spanning tree, repeated specs are
// served from the memo (identical pointers), and the amortized per-run cost
// of the shared handle stays below the one-shot wrapper path that re-pays
// geometry validation and the gain table per call.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"sinrconn"

	"sinrconn/internal/stats"
	"sinrconn/internal/workload"
)

// E15SessionMatrix measures the session API's batch path.
func E15SessionMatrix(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E15",
		Title: "Session API batch sweep",
		Claim: "engineering: one Network serves pipelines × seeds off a shared instance; amortized reuse beats per-call rebuild",
		Table: stats.NewTable("n", "specs", "spanned", "batch ms", "rebuild ms", "reuse/call ms"),
	}
	r.Pass = true
	seeds := make([]int64, cfg.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	for _, n := range cfg.Sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		gpts := workload.UniformDensity(rng, n, 0.15)
		pts := make([]sinrconn.Point, len(gpts))
		for i, p := range gpts {
			pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
		}

		nw, err := sinrconn.Open(pts, sinrconn.WithWorkers(cfg.Workers))
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: open failed: %v", n, err))
			r.Pass = false
			continue
		}
		specs := sinrconn.Specs([]sinrconn.Pipeline{sinrconn.PipelineInit, sinrconn.PipelineTVCArbitrary}, seeds)
		start := time.Now()
		results, err := nw.RunMatrix(ctx, specs)
		batch := time.Since(start)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: matrix: %v", n, err))
			r.Pass = false
		}
		spanned := 0
		for _, res := range results {
			if res != nil && res.Tree.NumNodes == n {
				spanned++
			}
		}
		if spanned != len(specs) {
			r.Pass = false
		}

		// Memoization: re-running the first spec must return the identical
		// result pointer without re-constructing.
		if len(results) > 0 && results[0] != nil {
			again, err := nw.Run(ctx, specs[0].Pipeline, specs[0].Opts...)
			if err != nil || again != results[0] {
				r.Notes = append(r.Notes, fmt.Sprintf("n=%d: memo miss on repeated spec", n))
				r.Pass = false
			}
		}

		// Amortization: a fresh-seed run on the warm handle versus the
		// deprecated wrapper that rebuilds instance state per call.
		start = time.Now()
		if _, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: 99, Workers: cfg.Workers}); err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: wrapper: %v", n, err))
			r.Pass = false
		}
		rebuild := time.Since(start)
		start = time.Now()
		if _, err := nw.Run(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(99)); err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("n=%d: reuse run: %v", n, err))
			r.Pass = false
		}
		reuse := time.Since(start)
		nw.Close()

		r.Table.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(specs)),
			fmt.Sprintf("%d/%d", spanned, len(specs)),
			fmt.Sprintf("%.1f", float64(batch.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(rebuild.Microseconds())/1000),
			fmt.Sprintf("%.1f", float64(reuse.Microseconds())/1000),
		)
	}
	return r
}
