package core

import (
	"context"
	"fmt"
	"math"

	"sinrconn/internal/faults"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
)

// engineConfig is the sim.Config a core construction derives from an
// InitConfig: worker budget, failure injection, and the shared pool.
func (c *InitConfig) engineConfig(seed int64) sim.Config {
	return sim.Config{
		Workers:  c.Workers,
		DropProb: c.DropProb,
		Seed:     seed,
		Pool:     c.Pool,
		FarField: c.FarField,
		Adaptive: c.Adaptive,
		Observer: c.Observer,
		Injector: c.Injector,
	}
}

// checkCtx returns ctx's error wrapped with the construction stage that
// observed it, or nil. Constructions call it between engine slots (never
// inside one), so cancellation always leaves engines and trees consistent.
func checkCtx(ctx context.Context, stage string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s canceled: %w", stage, err)
	}
	return nil
}

// InitConfig tunes the Section 6 construction.
type InitConfig struct {
	// BroadcastProb is the paper's p: the probability an active node elects
	// to broadcast in a slot-pair. Default 0.25.
	BroadcastProb float64
	// AckProb is the probability a listener that decoded an in-class
	// broadcast answers (the paper uses p here too; acking near-certainly
	// is faster in practice and only helps). Default 0.9.
	AckProb float64
	// Lambda scales slot-pairs per round: pairs = max(MinPairs,
	// ⌈Lambda·log₂ n⌉), the practical stand-in for the paper's λ₁·log n.
	// Default 4.
	Lambda float64
	// MinPairs floors the slot-pairs per round. Default 8.
	MinPairs int
	// ExtraRounds caps the safety rounds run at the top length class after
	// the ⌈log Δ⌉ ladder if more than one node is still active. Default 64.
	ExtraRounds int
	// StrictGate keeps the paper's distance gate [2^(r-1), 2^r) during the
	// ladder. When false, the gate is [0, 2^r) — more permissive, slightly
	// off-model. Safety rounds always use [0, 2^R). Default true.
	StrictGate bool
	// Seed derives all node randomness. Runs are reproducible.
	Seed int64
	// Workers is the sim engine worker count (0 = NumCPU). Ignored when
	// Pool is set.
	Workers int
	// Pool, if non-nil, is a persistent sim worker pool shared across
	// engine lifetimes (owned by the session handle, sinrconn.Network).
	// Engines borrow it instead of spawning goroutines per construction.
	Pool *sim.Pool
	// FarField, if non-nil, runs every engine of the construction under a
	// far-field channel approximation — flat grid or quadtree (see
	// sim.Config.FarField). The plan must be built from the construction's
	// instance.
	FarField sinr.Far
	// Adaptive, with FarField set, lets every engine pick exact or
	// far-field resolution per slot from the live sender count (see
	// sim.Config.Adaptive).
	Adaptive bool
	// DropProb injects reception failures in the engine.
	DropProb float64
	// Participants restricts the protocol to a subset of node indices
	// (TreeViaCapacity shrinks this set each iteration). nil means all.
	Participants []int
	// Forbidden lists directed links that must not form (Join/RepairLinks
	// only): it models permanently failed links — an obstacle the SINR
	// mean-path-loss channel cannot express. Joiners ignore acknowledgments
	// that would re-create a forbidden link, and members do not answer
	// broadcasts across one.
	Forbidden []sinr.Link
	// Mute lists member nodes excluded as attachment targets (Join and the
	// repair re-attachment paths): they participate in the tree but never
	// acknowledge a joiner's broadcast, so no new link can form INTO them.
	// The churn driver mutes flap-damped regions — mirroring the
	// "ignore recently dropped paths" invariant of mesh routing — so a
	// repeatedly failing neighborhood stops attracting re-attachments.
	Mute []int
	// Observer, if non-nil, receives a sim.SlotEvent after every engine
	// slot of the construction (the serving layer's streaming hook).
	// Observers are diagnostic only: they never influence the result.
	Observer sim.Observer
	// Injector, if non-nil, is handed to every engine of the construction
	// as its fault-injection hook (see internal/faults). Injected faults
	// only stall — results stay bit-identical to an injector-free run.
	Injector faults.Injector
}

func (c *InitConfig) defaults() {
	if c.BroadcastProb <= 0 || c.BroadcastProb > 0.5 {
		c.BroadcastProb = 0.25
	}
	if c.AckProb <= 0 || c.AckProb > 1 {
		c.AckProb = 0.9
	}
	if c.Lambda <= 0 {
		c.Lambda = 4
	}
	if c.MinPairs <= 0 {
		c.MinPairs = 8
	}
	if c.ExtraRounds <= 0 {
		c.ExtraRounds = 64
	}
}

// pairsPerRound returns the slot-pairs per round for n participants.
func (c *InitConfig) pairsPerRound(n int) int {
	pairs := int(math.Ceil(c.Lambda * math.Log2(math.Max(2, float64(n)))))
	if pairs < c.MinPairs {
		pairs = c.MinPairs
	}
	return pairs
}

// validate rejects nonsensical configs beyond what defaults() repairs.
func (c *InitConfig) validate() error {
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("core: drop probability %v outside [0,1)", c.DropProb)
	}
	return nil
}
