package core

import (
	"math/rand"
	"sort"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

// DistrCapConfig tunes the Section 8.2 distributed capacity protocol.
type DistrCapConfig struct {
	// Tau is the admission threshold τ of Eqn 3. Default DefaultTau.
	Tau float64
	// P is the per-phase sampling probability ("iid probability p (small
	// constant)"). Default 0.3.
	P float64
	// Gamma2 is the duality constant γ₂ < 1 of Claim 8.3. Default 0.7.
	Gamma2 float64
	// Repeats runs each length-class phase this many slot-pairs instead of
	// the paper's one, boosting the selected fraction at a constant-factor
	// slot cost (an engineering extension; 1 reproduces the paper).
	// Default 1.
	Repeats int
	// Seed drives the sampling coins.
	Seed int64
}

// DefaultDistrTau is the default τ for the *distributed* protocol. It is
// looser than DefaultTau because the measured thresholds are conservative:
// the measurement includes interference from concurrently-sampled
// candidates that mostly do not end up selected, so the invariant actually
// enforced on T′ is much tighter than the nominal τ (empirically the
// selected sets always satisfy Eqn 3 at τ/2 and are power-solvable).
const DefaultDistrTau = 1.5

func (c *DistrCapConfig) defaults() {
	if c.Tau <= 0 {
		c.Tau = DefaultDistrTau
	}
	if c.P <= 0 || c.P > 1 {
		c.P = 0.15
	}
	if c.Gamma2 <= 0 || c.Gamma2 >= 1 {
		c.Gamma2 = 0.85
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
}

// DistrCapResult reports the selection and its cost.
type DistrCapResult struct {
	// Selected is T′: the links admitted across all phases. It satisfies
	// the Eqn-3 invariant (Lemmas 17–18), so a feasible power assignment
	// exists (Section 8.2.3).
	Selected []sinr.Link
	// Phases is the number of length-class phases executed.
	Phases int
	// SlotPairs is the channel time consumed (Repeats slot-pairs per
	// phase).
	SlotPairs int
	// Energy is the transmission energy the protocol spent on the channel
	// (sum of every transmitted power across both slots of every phase).
	Energy float64
}

// DistrCap is the Section 8.2 protocol selecting a large
// power-control-feasible subset T′ of the candidate links. Phases iterate
// ascending length classes (links formed in round i of Init are exactly a
// length class). In each phase:
//
//	slot 1: T′ and the sampled candidates transmit with LINEAR power; each
//	        candidate receiver records success iff its measured affectance
//	        is at most τ/4;
//	slot 2: the duals of T′ and of slot-1 survivors (sampled again with
//	        probability γ₂²·p) transmit with linear power; dual receivers
//	        record success iff measured affectance ≤ γ₂τ/4.
//
// Candidates succeeding in both directions join T′. Half-duplex and
// busy-sender conflicts are resolved by the physics, which is exactly what
// keeps T′ one-link-per-node. The feasibility argument is Lemmas 17–18;
// the largeness argument is Theorem 20.
func DistrCap(in *sinr.Instance, cand []sinr.Link, cfg DistrCapConfig) *DistrCapResult {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	lin := sinr.NoiseSafeLinear(in.Params())

	// Group candidates by doubling length class, ascending.
	byClass := make(map[int][]sinr.Link)
	for _, l := range cand {
		r := geom.LengthClass(in.Length(l))
		byClass[r] = append(byClass[r], l)
	}
	classes := make([]int, 0, len(byClass))
	for r := range byClass {
		classes = append(classes, r)
	}
	sort.Ints(classes)

	res := &DistrCapResult{}
	var selected []sinr.Link
	selectedNodes := make(map[int]bool)

	for _, r := range classes {
		res.Phases++
		for rep := 0; rep < cfg.Repeats; rep++ {
			res.SlotPairs++
			q := byClass[r]
			// Remaining candidates: not yet selected, nodes free.
			var live []sinr.Link
			for _, l := range q {
				if !selectedNodes[l.From] && !selectedNodes[l.To] {
					live = append(live, l)
				}
			}
			if len(live) == 0 {
				continue
			}
			admitted, energy := distrCapPhase(in, selected, live, lin, cfg, rng)
			res.Energy += energy
			for _, l := range admitted {
				selected = append(selected, l)
				selectedNodes[l.From] = true
				selectedNodes[l.To] = true
			}
		}
	}
	res.Selected = selected
	return res
}

// distrCapPhase plays one slot-pair of the protocol and returns the links
// admitted plus the transmission energy the pair spent.
func distrCapPhase(in *sinr.Instance, selected, live []sinr.Link, lin sinr.Linear, cfg DistrCapConfig, rng *rand.Rand) ([]sinr.Link, float64) {
	// Slot 1: T′ senders always transmit; live candidates with coin p.
	var txs []sinr.Tx
	transmitting := make(map[int]bool)
	add := func(node int, power float64) bool {
		if transmitting[node] {
			return false
		}
		transmitting[node] = true
		txs = append(txs, sinr.Tx{Sender: node, Power: power})
		return true
	}
	for _, l := range selected {
		add(l.From, lin.Power(in, l))
	}
	var trying []sinr.Link
	for _, l := range live {
		if rng.Float64() < cfg.P && !transmitting[l.To] {
			if add(l.From, lin.Power(in, l)) {
				trying = append(trying, l)
			}
		}
	}
	// Candidate receivers measure affectance; survivors form Q̃.
	var qTilde []sinr.Link
	for _, l := range trying {
		if transmitting[l.To] {
			continue
		}
		if in.MeasuredAffectance(txs, l, lin.Power(in, l)) <= cfg.Tau/4 {
			qTilde = append(qTilde, l)
		}
	}

	// Slot 2: duals of T′ always; duals of Q̃ with coin γ₂²·p... the
	// forward coin already fired, so the conditional probability applied
	// here is γ₂² (the paper's γ₂²·p accounts for both coins).
	var ackTxs []sinr.Tx
	ackSending := make(map[int]bool)
	addAck := func(node int, power float64) bool {
		if ackSending[node] {
			return false
		}
		ackSending[node] = true
		ackTxs = append(ackTxs, sinr.Tx{Sender: node, Power: power})
		return true
	}
	for _, l := range selected {
		addAck(l.To, lin.Power(in, l.Dual()))
	}
	var acking []sinr.Link
	for _, l := range qTilde {
		if rng.Float64() < cfg.Gamma2*cfg.Gamma2 && !ackSending[l.From] {
			if addAck(l.To, lin.Power(in, l.Dual())) {
				acking = append(acking, l)
			}
		}
	}
	var admitted []sinr.Link
	for _, l := range acking {
		if ackSending[l.From] {
			continue // original sender busy acking something else
		}
		dual := l.Dual()
		if in.MeasuredAffectance(ackTxs, dual, lin.Power(in, dual)) <= cfg.Gamma2*cfg.Tau/4 {
			admitted = append(admitted, l)
		}
	}
	return admitted, sumTxPower(txs, ackTxs)
}
