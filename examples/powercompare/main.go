// Powercompare: one instance, all four pipelines. The table shows the
// paper's central trade-off — construction effort versus final schedule
// quality — across uniform-power construction (Section 6), mean-power
// rescheduling (Section 7), and the two TreeViaCapacity variants
// (Section 8). Run on a high-Δ exponential chain, the regime where power
// choice matters most.
//
//	go run ./examples/powercompare
package main

import (
	"fmt"
	"log"
	"math"

	"sinrconn"
)

func main() {
	pts := expChain(40, 1.35)

	opt := sinrconn.Options{Seed: 13}
	type row struct {
		name    string
		builder func([]sinrconn.Point, sinrconn.Options) (*sinrconn.Result, error)
	}
	rows := []row{
		{"Init, uniform power (Sec 6)", sinrconn.BuildInitialBiTree},
		{"reschedule, mean power (Sec 7)", sinrconn.RescheduleMeanPower},
		{"TreeViaCapacity, mean (Sec 8.1)", sinrconn.BuildBiTreeMeanPower},
		{"TreeViaCapacity, arbitrary (Sec 8.2)", sinrconn.BuildBiTreeArbitraryPower},
	}

	var delta, upsilon float64
	fmt.Printf("%-38s %10s %14s\n", "pipeline", "schedule", "build slots")
	for _, r := range rows {
		res, err := r.builder(pts, opt)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		delta, upsilon = res.Metrics.Delta, res.Metrics.Upsilon
		fmt.Printf("%-38s %10d %14d\n", r.name, res.Metrics.ScheduleLength, res.Metrics.SlotsUsed)
	}
	fmt.Printf("\ninstance: n=%d exponential chain, Δ=%.0f (log₂Δ=%.1f), Υ=%.1f, log₂n=%.1f\n",
		len(pts), delta, math.Log2(delta), upsilon, math.Log2(float64(len(pts))))
	fmt.Println("\nreading the table:")
	fmt.Println(" - Section 6 stamps carry the log Δ·log n construction cost into the schedule;")
	fmt.Println(" - Section 7 keeps the same tree but re-schedules it with mean power;")
	fmt.Println(" - Section 8 rebuilds the tree so the final schedule matches centralized bounds.")
}

// expChain builds an n-point exponential chain with growth factor base.
func expChain(n int, base float64) []sinrconn.Point {
	pts := make([]sinrconn.Point, n)
	x, gap := 0.0, 1.0
	for i := range pts {
		pts[i] = sinrconn.Point{X: x}
		x += gap
		gap *= base
	}
	return pts
}
