// Package hotpath is the hotpathalloc fixture: functions carrying the
// //sinr:hotpath annotation must contain no allocation sources; everything
// else may allocate freely.
package hotpath

import "fmt"

type scratch struct {
	buf  []int
	name string
}

func helper() {}

// Hot trips every allocation source the analyzer knows.
//
//sinr:hotpath
func Hot(s *scratch, in []int) int {
	lit := []int{1, 2}        // want `slice/map literal allocates`
	tmp := make([]int, 4)     // want `make allocates`
	p := new(scratch)         // want `new allocates`
	q := &scratch{}           // want `&composite literal escapes to the heap`
	f := func() int { return 1 } // want `closure allocates its captures`
	go helper()               // want `go statement allocates a goroutine`
	defer helper()            // want `defer has per-call overhead`
	label := s.name + "!"     // want `string concatenation allocates`
	msg := fmt.Sprintf("%d", len(in)) // want `fmt.Sprintf allocates`
	lit = append(lit, 3) // want `append to a local slice may grow`
	var boxed any
	boxed = any(len(in)) // want `conversion to interface boxes the value`
	_ = boxed
	_, _, _, _ = tmp, p, q, label
	_ = msg
	return f()
}

// Cold is the annotated negative: appends into caller scratch, a field, and
// a parameter, struct value literals, and plain arithmetic are all legal.
//
//sinr:hotpath
func Cold(s *scratch, out []int, x int) []int {
	s.buf = append(s.buf, x)
	out = append(out, x)
	v := scratch{buf: s.buf}
	sum := 0
	for _, b := range v.buf {
		sum += b * x
	}
	return append(out[:0], sum)
}

// Unmarked has no annotation, so its allocations are nobody's business.
func Unmarked(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%d", i))
	}
	return out
}
