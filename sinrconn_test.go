package sinrconn

import (
	"errors"
	"testing"

	"sinrconn/internal/workload"
)

// uniformPoints generates n facade points with min distance ≥ 1. The
// actual generation is the shared workload.UniformSeeded helper (used by
// the soak, dynamic, aggregate, and scenario-matrix suites alike); this
// wrapper only converts to the facade Point type.
func uniformPoints(seed int64, n int) []Point {
	g := workload.UniformSeeded(seed, n)
	pts := make([]Point, len(g))
	for i, p := range g {
		pts[i] = Point{X: p.X, Y: p.Y}
	}
	return pts
}

func TestBuildInitialBiTree(t *testing.T) {
	pts := uniformPoints(1, 48)
	res, err := BuildInitialBiTree(pts, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.NumNodes != 48 || len(res.Tree.Up) != 47 {
		t.Fatalf("tree shape: %d nodes, %d links", res.Tree.NumNodes, len(res.Tree.Up))
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.SlotsUsed <= 0 || m.ScheduleLength <= 0 || m.Rounds <= 0 {
		t.Errorf("metrics: %+v", m)
	}
	if m.AggregationLatency <= 0 || m.BroadcastLatency <= 0 {
		t.Errorf("latencies not filled: %+v", m)
	}
	if m.Delta <= 1 || m.Upsilon < 1 {
		t.Errorf("instance metrics: %+v", m)
	}
}

func TestRescheduleMeanPower(t *testing.T) {
	pts := uniformPoints(2, 40)
	res, err := RescheduleMeanPower(pts, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ScheduleLength <= 0 {
		t.Error("no schedule length")
	}
	if len(res.Tree.Up) != 39 {
		t.Errorf("links = %d", len(res.Tree.Up))
	}
	// Rescheduled trees keep structure but may violate ordering; Verify is
	// intentionally NOT called here. Parent map must still be total.
	if got := len(res.Tree.Parent()); got != 39 {
		t.Errorf("parents = %d", got)
	}
}

func TestBuildBiTreeMeanPower(t *testing.T) {
	pts := uniformPoints(3, 40)
	res, err := BuildBiTreeMeanPower(pts, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Iterations <= 0 {
		t.Error("iterations not recorded")
	}
}

func TestBuildBiTreeArbitraryPower(t *testing.T) {
	pts := uniformPoints(4, 40)
	res, err := BuildBiTreeArbitraryPower(pts, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// Theorem 4 shape: schedule length stays far below n.
	if res.Metrics.ScheduleLength >= len(pts) {
		t.Errorf("schedule length %d not sublinear", res.Metrics.ScheduleLength)
	}
}

func TestTreeAccessors(t *testing.T) {
	pts := uniformPoints(5, 24)
	res, err := BuildInitialBiTree(pts, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tree
	if tr.MaxDegree() < 1 {
		t.Error("MaxDegree < 1")
	}
	if tr.Depth() < 1 {
		t.Error("Depth < 1")
	}
	par := tr.Parent()
	if len(par) != 23 {
		t.Errorf("Parent size = %d", len(par))
	}
	if _, hasRoot := par[tr.Root]; hasRoot {
		t.Error("root has a parent")
	}
	lat, err := tr.PairLatency(0, tr.Root)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 0 {
		t.Errorf("PairLatency = %d", lat)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := BuildInitialBiTree(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	// Min distance below 1 without AutoNormalize.
	tooClose := []Point{{0, 0}, {0.5, 0}, {10, 0}}
	if _, err := BuildInitialBiTree(tooClose, Options{}); !errors.Is(err, ErrNotNormalized) {
		t.Errorf("err = %v, want ErrNotNormalized", err)
	}
	// With AutoNormalize it succeeds.
	res, err := BuildInitialBiTree(tooClose, Options{AutoNormalize: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// Duplicate points can never be normalized.
	if _, err := BuildInitialBiTree([]Point{{1, 1}, {1, 1}}, Options{AutoNormalize: true}); err == nil {
		t.Error("duplicate points accepted")
	}
}

func TestSingleNode(t *testing.T) {
	res, err := BuildInitialBiTree([]Point{{3, 4}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Root != 0 || len(res.Tree.Up) != 0 {
		t.Errorf("single-node tree: %+v", res.Tree)
	}
}

func TestDeterminism(t *testing.T) {
	pts := uniformPoints(6, 32)
	a, err := BuildBiTreeArbitraryPower(pts, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBiTreeArbitraryPower(pts, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tree.Root != b.Tree.Root || a.Metrics != b.Metrics {
		t.Fatal("pipeline not deterministic")
	}
}

func TestCustomParams(t *testing.T) {
	pts := uniformPoints(7, 24)
	res, err := BuildInitialBiTree(pts, Options{
		Seed:   1,
		Params: PhysParams{Alpha: 4, Beta: 2, Noise: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPhysParams(t *testing.T) {
	p := DefaultPhysParams()
	if p.Alpha <= 2 || p.Beta <= 0 || p.Noise <= 0 {
		t.Errorf("defaults: %+v", p)
	}
}

func TestDropInjectionPipeline(t *testing.T) {
	pts := uniformPoints(8, 24)
	res, err := BuildInitialBiTree(pts, Options{Seed: 2, DropProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
}
