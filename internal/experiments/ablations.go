package experiments

import (
	"context"
	"fmt"
	"math"

	"sinrconn/internal/core"
	"sinrconn/internal/power"
	"sinrconn/internal/sinr"
	"sinrconn/internal/sparsity"
	"sinrconn/internal/stats"
)

// Ablations runs the design-choice sweeps A1–A5 (DESIGN.md §5: the paper's
// constants optimize provability; these sweeps show how the practical
// defaults were chosen and how sensitive the system is to them).
func Ablations(ctx context.Context, cfg Config) []Report {
	return []Report{
		A1BroadcastProb(ctx, cfg),
		A2SlotPairsPerRound(ctx, cfg),
		A3DistrCapTau(ctx, cfg),
		A4DegreeCap(ctx, cfg),
		A5DropRobustness(ctx, cfg),
	}
}

// A1BroadcastProb sweeps the Section 6 broadcast probability p. Too small
// wastes slots (nobody talks); too large wastes slots (everybody collides).
// The default 0.25 sits in the flat valley between the two failure modes.
func A1BroadcastProb(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "A1",
		Title: "Ablation: broadcast probability p",
		Claim: "Init slot count is U-shaped in p; the default 0.25 sits in the valley",
		Table: stats.NewTable("p", "slots", "safety rounds used", "converged"),
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]
	type cell struct {
		p     float64
		slots float64
	}
	var cells []cell
	for _, p := range []float64{0.03, 0.1, 0.25, 0.45} {
		var slots []float64
		extra := 0
		converged := 0
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(3100*n+s), n)
			res, err := core.Init(ctx, in, core.InitConfig{
				BroadcastProb: p, Seed: int64(s), Workers: cfg.Workers,
			})
			if err != nil {
				continue
			}
			converged++
			slots = append(slots, float64(res.SlotsUsed))
			if res.Rounds > res.LadderRounds {
				extra += res.Rounds - res.LadderRounds
			}
		}
		m := stats.Summarize(slots).Mean
		r.Table.AddRow(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.0f", m),
			extra, fmt.Sprintf("%d/%d", converged, cfg.Seeds))
		cells = append(cells, cell{p: p, slots: m})
	}
	// The default (index 2) must not be the worst setting.
	worst := 0.0
	for _, c := range cells {
		if c.slots > worst {
			worst = c.slots
		}
	}
	r.Pass = len(cells) == 4 && cells[2].slots < worst
	r.Notes = append(r.Notes,
		fmt.Sprintf("default p=0.25 uses %.0f slots; worst setting uses %.0f", cells[2].slots, worst))
	return r
}

// A2SlotPairsPerRound sweeps λ (slot-pairs per round = λ·log₂n). Small λ
// under-provisions rounds and falls back on safety rounds; large λ wastes
// slots linearly.
func A2SlotPairsPerRound(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "A2",
		Title: "Ablation: slot-pairs per round (λ)",
		Claim: "small λ trades ladder slots for safety rounds; large λ wastes slots linearly",
		Table: stats.NewTable("λ", "slots", "rounds", "ladder rounds"),
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]
	var slotCol []float64
	for _, lambda := range []float64{1, 2, 4, 8} {
		var slots, rounds []float64
		ladder := 0
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(3300*n+s), n)
			res, err := core.Init(ctx, in, core.InitConfig{
				Lambda: lambda, Seed: int64(s), Workers: cfg.Workers,
			})
			if err != nil {
				continue
			}
			slots = append(slots, float64(res.SlotsUsed))
			rounds = append(rounds, float64(res.Rounds))
			ladder = res.LadderRounds
		}
		m := stats.Summarize(slots).Mean
		r.Table.AddRow(fmt.Sprintf("%.0f", lambda), fmt.Sprintf("%.0f", m),
			fmt.Sprintf("%.1f", stats.Summarize(rounds).Mean), ladder)
		slotCol = append(slotCol, m)
	}
	// λ=8 must cost more raw slots than λ=2 (linear waste regime visible).
	r.Pass = len(slotCol) == 4 && slotCol[3] > slotCol[1]
	return r
}

// A3DistrCapTau sweeps the Distr-Cap admission threshold τ: yield rises
// with τ, but past the feasibility regime the Foschini–Miljanic solver
// starts failing, which is exactly why DefaultDistrTau = 1.5.
func A3DistrCapTau(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "A3",
		Title: "Ablation: Distr-Cap admission threshold τ",
		Claim: "selection yield grows with τ until power-control feasibility starts breaking",
		Table: stats.NewTable("τ", "mean |T′|", "power-solvable"),
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]
	var yields []float64
	for _, tau := range []float64{0.4, 0.8, 1.5, 3.0} {
		total := 0
		solvable := 0
		runs := 0
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(3500*n+s), n)
			ires, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			sub := core.LowDegreeSubset(ires.Tree, 0)
			links := make([]sinr.Link, len(sub))
			for i, tl := range sub {
				links[i] = tl.L
			}
			d := core.DistrCap(in, links, core.DistrCapConfig{Tau: tau, Seed: int64(s), Repeats: 3})
			runs++
			total += len(d.Selected)
			if _, _, err := power.Solve(in, d.Selected, power.Options{Slack: 1.01}); err == nil {
				solvable++
			}
		}
		y := float64(total) / math.Max(1, float64(runs))
		yields = append(yields, y)
		r.Table.AddRow(fmt.Sprintf("%.1f", tau), fmt.Sprintf("%.1f", y),
			fmt.Sprintf("%d/%d", solvable, runs))
	}
	// Yield must be monotone-ish increasing from τ=0.4 to τ=1.5.
	r.Pass = len(yields) == 4 && yields[2] > yields[0]
	return r
}

// A4DegreeCap sweeps the low-degree cap ρ of Theorem 13: tiny ρ strips
// links (low retention), large ρ lets sparsity grow back toward ψ(T).
func A4DegreeCap(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "A4",
		Title: "Ablation: degree cap ρ for T(M)",
		Claim: "retention grows with ρ while ψ(T(M)) approaches ψ(T); ρ=8 keeps both healthy",
		Table: stats.NewTable("ρ", "retention", "ψ(T(M))"),
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]
	var rets []float64
	for _, rho := range []int{2, 4, 8, 16} {
		var ret, psi []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(3700*n+s), n)
			ires, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				continue
			}
			ret = append(ret, core.RetentionFraction(ires.Tree, rho))
			sub := core.LowDegreeSubset(ires.Tree, rho)
			links := make([]sinr.Link, len(sub))
			for i, tl := range sub {
				links[i] = tl.L
			}
			psi = append(psi, float64(sparsity.MeasureAtScales(in, links)))
		}
		mr := stats.Summarize(ret).Mean
		rets = append(rets, mr)
		r.Table.AddRow(rho, fmt.Sprintf("%.2f", mr),
			fmt.Sprintf("%.1f", stats.Summarize(psi).Mean))
	}
	// Retention must be monotone in ρ and high at the default.
	mono := true
	for i := 1; i < len(rets); i++ {
		if rets[i] < rets[i-1]-1e-9 {
			mono = false
		}
	}
	r.Pass = mono && rets[2] > 0.8
	return r
}

// A5DropRobustness injects reception failures: the safety loop must keep
// Init converging to a valid tree even at high drop rates, at a slot cost
// that grows with the drop probability.
func A5DropRobustness(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "A5",
		Title: "Ablation: fading robustness (drop injection)",
		Claim: "the safety loop keeps Init correct under injected reception failures",
		Table: stats.NewTable("drop prob", "converged", "valid", "slots"),
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]
	pass := true
	var slots0 float64
	for _, drop := range []float64{0, 0.15, 0.3, 0.5} {
		converged, valid := 0, 0
		var slots []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(3900*n+s), n)
			res, err := core.Init(ctx, in, core.InitConfig{
				Seed: int64(s), Workers: cfg.Workers, DropProb: drop,
			})
			if err != nil {
				continue
			}
			converged++
			slots = append(slots, float64(res.SlotsUsed))
			bt := res.Tree
			if bt.Validate() == nil && bt.StronglyConnected() &&
				bt.ValidateOrdering() == nil && bt.ValidatePerSlotFeasible(in) == nil {
				valid++
			}
		}
		m := stats.Summarize(slots).Mean
		if drop == 0 {
			slots0 = m
		}
		r.Table.AddRow(fmt.Sprintf("%.2f", drop),
			fmt.Sprintf("%d/%d", converged, cfg.Seeds),
			fmt.Sprintf("%d/%d", valid, cfg.Seeds),
			fmt.Sprintf("%.0f", m))
		if converged != cfg.Seeds || valid != converged {
			pass = false
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("baseline (drop=0) slot cost: %.0f", slots0))
	r.Pass = pass
	return r
}
