package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sinrconn/internal/schedule"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// RescheduleResult is the outcome of the Section 7 mean-power rescheduling
// (Theorem 3).
type RescheduleResult struct {
	// Tree is a copy of the input tree with slots and powers replaced by
	// the mean-power schedule. Note (per the paper): the rescheduled tree
	// does not necessarily satisfy the bi-tree ordering property.
	Tree *tree.BiTree
	// NumSlots is the new schedule length.
	NumSlots int
	// SlotPairs is the channel time the distributed scheduler consumed.
	SlotPairs int
	// Stats carries the scheduler's engine counters (Energy is the
	// transmission energy the contention-resolution run itself spent).
	Stats sim.Stats
}

// Reschedule re-schedules the links of an Init tree under assignment pa
// (mean power for Theorem 3) using the distributed contention-resolution
// scheduler of Kesselheim & Vöcking. The input tree's O(log n)-sparsity
// (Theorem 11) is what makes the resulting schedule short:
// O(Υ·log³ n) versus the O(log Δ·log n) stamps the construction itself
// produced.
func Reschedule(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, pa sinr.Assignment, cfg schedule.DistConfig) (*RescheduleResult, error) {
	links := bt.Links()
	res, err := schedule.Distributed(ctx, in, links, pa, cfg)
	if err != nil {
		if errors.Is(err, schedule.ErrIncomplete) {
			// Budget exhaustion in the randomized scheduler is the same
			// Las Vegas failure class as a non-converged construction:
			// re-running with a fresh seed succeeds w.h.p. Root it at
			// ErrNotConverged so retry routing sees one class.
			return nil, fmt.Errorf("core: reschedule: %w: %v", ErrNotConverged, err)
		}
		return nil, fmt.Errorf("core: reschedule: %w", err)
	}
	out := &tree.BiTree{
		Root:  bt.Root,
		Nodes: append([]int(nil), bt.Nodes...),
		Up:    make([]tree.TimedLink, len(bt.Up)),
	}
	for i, tl := range bt.Up {
		out.Up[i] = tree.TimedLink{
			L:     tl.L,
			Slot:  res.Slot[tl.L],
			Power: pa.Power(in, tl.L),
		}
	}
	return &RescheduleResult{
		Tree:      out,
		NumSlots:  res.NumSlots,
		SlotPairs: res.SlotPairs,
		Stats:     res.Stats,
	}, nil
}

// UniformScheduleLength schedules the tree's links under uniform power with
// the centralized first-fit — the baseline showing the log Δ cost that
// Theorem 3 removes. Links that cannot be scheduled under the uniform
// power at all (never happens for powers covering the longest link) are
// counted as one extra slot each.
func UniformScheduleLength(in *sinr.Instance, bt *tree.BiTree) int {
	links := bt.Links()
	maxLen := 0.0
	for _, l := range links {
		if ln := in.Length(l); ln > maxLen {
			maxLen = ln
		}
	}
	pa := sinr.UniformFor(in.Params(), math.Max(1, maxLen))
	slots, bad := schedule.FirstFit(in, links, pa, schedule.ByLengthDesc)
	return len(slots) + len(bad)
}

// MeanScheduleLength is the centralized first-fit schedule length under
// noise-safe mean power — the centralized comparator for Theorem 3.
func MeanScheduleLength(in *sinr.Instance, bt *tree.BiTree) int {
	pa := sinr.NoiseSafeMean(in.Params(), math.Max(1, in.Delta()))
	slots, bad := schedule.FirstFit(in, bt.Links(), pa, schedule.ByLengthDesc)
	return len(slots) + len(bad)
}
