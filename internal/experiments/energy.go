package experiments

import (
	"context"
	"fmt"
	"math"

	"sinrconn/internal/core"
	"sinrconn/internal/sim"
	"sinrconn/internal/stats"
)

// E13Energy compares the construction energy and the per-epoch aggregation
// energy of the pipelines. The paper does not analyze energy, but the
// oblivious-vs-arbitrary power trade-off has an energy face: mean power
// spends less per slot on short links than round-power broadcasts, and the
// Section-8 trees amortize their (energy-hungry) construction over every
// subsequent epoch.
func E13Energy(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E13",
		Title: "Energy accounting (construction vs per-epoch)",
		Claim: "library extension: per-epoch aggregation energy is orders of magnitude below construction energy, so refined trees amortize",
		Table: stats.NewTable("n", "init build energy", "TVC build energy", "epoch energy (TVC tree)", "build/epoch ratio"),
	}
	pass := true
	for _, n := range cfg.Sizes {
		var initE, tvcE, epochE []float64
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(4100*n+s), n)
			ires, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers})
			if err != nil {
				pass = false
				continue
			}
			initE = append(initE, ires.Stats.Energy)
			tres, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantArbitrary, Seed: int64(s),
				Init: core.InitConfig{Workers: cfg.Workers},
			})
			if err != nil {
				pass = false
				continue
			}
			// TreeViaCapacity energy ≈ its inner Init runs; approximate via
			// construction slots ratio is crude, so measure the epoch
			// directly and report builds from the stats we have.
			values := make([]int64, in.Len())
			for i := range values {
				values[i] = 1
			}
			out, err := core.RunAggregation(ctx, in, tres.Tree, values, core.SumAgg, sim.Config{Workers: cfg.Workers})
			if err != nil {
				pass = false
				continue
			}
			epochE = append(epochE, out.Energy)
			// Build energy proxy for TVC: epoch energy × construction
			// slots / schedule slots is not measurable distributedly;
			// instead reuse Init's measured energy scaled by the slot
			// ratio (documented approximation).
			scale := float64(tres.ConstructionSlots) / math.Max(1, float64(ires.SlotsUsed))
			tvcE = append(tvcE, ires.Stats.Energy*scale)
		}
		ie := stats.Summarize(initE).Mean
		te := stats.Summarize(tvcE).Mean
		ee := stats.Summarize(epochE).Mean
		ratio := 0.0
		if ee > 0 {
			ratio = te / ee
		}
		r.Table.AddRow(n, fmt.Sprintf("%.3g", ie), fmt.Sprintf("%.3g", te),
			fmt.Sprintf("%.3g", ee), fmt.Sprintf("%.1f", ratio))
		if ee >= ie {
			pass = false // one epoch must be far cheaper than construction
		}
	}
	r.Pass = pass
	return r
}

// E14PhysicalEpoch executes a physical converge-cast epoch on every
// pipeline's tree across the n sweep — the end-to-end check that the
// schedules the theorems promise actually carry data over the channel.
func E14PhysicalEpoch(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E14",
		Title: "Physical converge-cast epochs",
		Claim: "Definition 1 made physical: every pipeline's schedule carries a full aggregation over the simulated channel",
		Table: stats.NewTable("n", "init tree ok", "mean TVC ok", "arbitrary TVC ok"),
	}
	pass := true
	for _, n := range cfg.Sizes {
		okInit, okMean, okArb := 0, 0, 0
		for s := 0; s < cfg.Seeds; s++ {
			in := uniformInst(int64(4300*n+s), n)
			values := make([]int64, in.Len())
			for i := range values {
				values[i] = int64(i)
			}
			if ires, err := core.Init(ctx, in, core.InitConfig{Seed: int64(s), Workers: cfg.Workers}); err == nil {
				if _, err := core.RunAggregation(ctx, in, ires.Tree, values, core.SumAgg, sim.Config{Workers: cfg.Workers}); err == nil {
					okInit++
				}
			}
			if tres, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantMean, Seed: int64(s),
				Init: core.InitConfig{Workers: cfg.Workers},
			}); err == nil {
				if _, err := core.RunAggregation(ctx, in, tres.Tree, values, core.SumAgg, sim.Config{Workers: cfg.Workers}); err == nil {
					okMean++
				}
			}
			if tres, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
				Variant: core.VariantArbitrary, Seed: int64(s),
				Init: core.InitConfig{Workers: cfg.Workers},
			}); err == nil {
				if _, err := core.RunAggregation(ctx, in, tres.Tree, values, core.SumAgg, sim.Config{Workers: cfg.Workers}); err == nil {
					okArb++
				}
			}
		}
		r.Table.AddRow(n, fmt.Sprintf("%d/%d", okInit, cfg.Seeds),
			fmt.Sprintf("%d/%d", okMean, cfg.Seeds),
			fmt.Sprintf("%d/%d", okArb, cfg.Seeds))
		if okInit != cfg.Seeds || okMean != cfg.Seeds || okArb != cfg.Seeds {
			pass = false
		}
	}
	r.Pass = pass
	return r
}
