// Package loadgen is the closed-loop load generator behind the serving
// benchmarks and the CI daemon smoke: N concurrent clients drive the
// daemon's HTTP surface from deterministic seeded arrival traces (Poisson
// and bursty mixes via internal/churn's trace machinery), recording
// throughput, exact p50/p99 latency, and the cache hit rate into
// BENCH_serve.json. Closed-loop means each client waits for its response
// before drawing the next arrival gap, so offered load adapts to server
// capacity instead of queueing unboundedly.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sinrconn/internal/churn"
	"sinrconn/internal/serve"
)

// Config tunes one load run.
type Config struct {
	// BaseURL addresses a live daemon ("http://127.0.0.1:8080"). Ignored
	// when Handler is set.
	BaseURL string
	// Handler, if non-nil, is driven in-process (no sockets) — the
	// benchmark transport, immune to ephemeral-port limits at thousands of
	// concurrent sessions.
	Handler http.Handler

	// Clients is the number of concurrent closed-loop clients (default 8).
	Clients int
	// Sessions is how many sessions to open up-front, shared round-robin
	// by the clients (default = Clients). All sessions use the same
	// deployment, so the server deduplicates them onto one Network.
	Sessions int
	// Requests is the total run-request budget across clients (default 100).
	Requests int
	// N is the deployment size in nodes (default 64).
	N int
	// Seed derives the geometry and every client's private trace.
	Seed int64
	// Arrival shapes each client's think-time trace. Rate is required;
	// Seed is overridden per client.
	Arrival churn.ArrivalSpec
	// Keyspace is the number of distinct run keys (pipeline × seed) the
	// clients draw from (default 8). Small keyspaces are repeat-heavy:
	// after one cold pass everything hits the result cache.
	Keyspace int
	// Pipelines cycles run requests over these pipeline names (default
	// init-uniform only).
	Pipelines []string
	// IncludeTree asks for full trees instead of metrics-only responses.
	IncludeTree bool
	// StreamFraction of requests use the chunked ndjson streaming form.
	StreamFraction float64
	// CancelFraction of requests carry a ~1ms deadline to exercise
	// mid-flight cancellation; they count as Canceled, not Errors.
	CancelFraction float64
	// CacheSize / CacheTTLMs are passed through to the session opens
	// (0 = server default).
	CacheSize  int
	CacheTTLMs int64
	// Warmup primes every key once before the measurement window, so the
	// report captures the repeat-heavy steady state instead of the cold
	// startup transient. Warmup requests are excluded from every counter.
	Warmup bool
	// Retries is how many times a client re-issues a request that was
	// shed (503), crashed server-side (500), or lost its connection
	// mid-flight, with exponential backoff and seeded jitter, honoring
	// the server's Retry-After when it is longer. 0 disables retries
	// (the pre-chaos behavior: every failure counts as an error).
	Retries int
	// RetryBase is the first backoff step (default 5ms); step k waits
	// max(RetryBase<<k, server Retry-After) plus jitter in [0, RetryBase).
	RetryBase time.Duration
}

func (c *Config) defaults() error {
	if c.BaseURL == "" && c.Handler == nil {
		return errors.New("loadgen: need BaseURL or Handler")
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Sessions <= 0 {
		c.Sessions = c.Clients
	}
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if c.N <= 0 {
		c.N = 64
	}
	if c.Keyspace <= 0 {
		c.Keyspace = 8
	}
	if len(c.Pipelines) == 0 {
		c.Pipelines = []string{"init-uniform"}
	}
	if c.Arrival.Rate <= 0 {
		c.Arrival.Rate = 200
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	return nil
}

// Report is the outcome of one load run, shaped for BENCH_serve.json.
type Report struct {
	Mix        string  `json:"mix"`
	Clients    int     `json:"clients"`
	Sessions   int     `json:"sessions"`
	N          int     `json:"n"`
	Keyspace   int     `json:"keyspace"`
	CacheSize  int     `json:"cache_size,omitempty"`
	CacheTTLMs int64   `json:"cache_ttl_ms,omitempty"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Canceled   int     `json:"canceled"`
	Streamed   int     `json:"streamed"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"throughput_rps"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// HitRate is the server-side result-cache hit rate over this run
	// (delta of /healthz counters).
	HitRate   float64 `json:"hit_rate"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	// SharedSessions counts opens the server content-addressed onto an
	// existing deployment.
	SharedSessions int `json:"shared_sessions"`
	// Retries counts re-issued requests; Shed counts 503 admission
	// rejections observed (queue_full/deadline/wait_canceled);
	// BreakerOpen counts 503s from an open session circuit breaker;
	// Aborted counts connections the server reset mid-flight. A request
	// that ultimately succeeds after retries is NOT an error.
	Retries     int `json:"retries,omitempty"`
	Shed        int `json:"shed,omitempty"`
	BreakerOpen int `json:"breaker_open,omitempty"`
	Aborted     int `json:"aborted,omitempty"`
}

// errConnReset is what the in-process transport reports when the
// handler aborts the connection (http.ErrAbortHandler — the
// serve.conn.reset fault); a socket client would see ECONNRESET/EOF.
var errConnReset = errors.New("loadgen: connection reset by server")

// handlerTransport drives an http.Handler without sockets. It absorbs
// http.ErrAbortHandler the way net/http's server goroutine would, so a
// fault-injected connection reset surfaces as a transport error, not a
// client crash.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (resp *http.Response, err error) {
	rec := httptest.NewRecorder()
	func() {
		defer func() {
			if v := recover(); v != nil {
				//lint:ignore errdiscipline ErrAbortHandler is a panic value compared by identity, never wrapped (net/http's own idiom)
				if v == http.ErrAbortHandler {
					err = errConnReset
					return
				}
				panic(v)
			}
		}()
		t.h.ServeHTTP(rec, req)
	}()
	if err != nil {
		return nil, err
	}
	return rec.Result(), nil
}

// client wraps the transport with JSON helpers.
type client struct {
	hc   *http.Client
	base string
}

func newClient(cfg *Config) *client {
	if cfg.Handler != nil {
		return &client{hc: &http.Client{Transport: handlerTransport{cfg.Handler}}, base: "http://serve.invalid"}
	}
	tr := &http.Transport{MaxIdleConns: 2 * cfg.Clients, MaxIdleConnsPerHost: 2 * cfg.Clients}
	return &client{hc: &http.Client{Transport: tr}, base: cfg.BaseURL}
}

// post sends a JSON body and decodes a JSON response into out.
func (c *client) post(ctx context.Context, path string, in, out any) (int, error) {
	code, _, err := c.do(ctx, path, in, out)
	return code, err
}

// do is post plus the response headers — the retry loop reads the
// server's Retry-After hints off them. A transport-level failure (the
// server reset the connection mid-flight) reports code 0.
func (c *client) do(ctx context.Context, path string, in, out any) (int, http.Header, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e serve.ErrorJSON
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, resp.Header, fmt.Errorf("%s: %s (%s)", path, resp.Status, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, resp.Header, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header, nil
}

// postStream sends a streaming run request and consumes the ndjson body,
// returning the number of slot lines and the terminal line's error if any.
func (c *client) postStream(ctx context.Context, path string, in any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	slots := 0
	var terminalErr error
	for {
		var line struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return slots, err
		}
		switch line.Type {
		case "slot":
			slots++
		case "error":
			terminalErr = errors.New(line.Error)
		}
	}
	return slots, terminalErr
}

func (c *client) health(ctx context.Context) (serve.Health, error) {
	var h serve.Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&h)
	return h, err
}

// points builds the shared deterministic deployment geometry: n points
// uniform on a 2.6√n square at unit min distance (the UniformSeeded
// discipline, inlined to keep loadgen's only intra-module dependencies on
// serve and churn).
func points(seed int64, n int) [][2]float64 {
	rng := rand.New(rand.NewSource(seed))
	span := 2.6 * sqrtf(float64(n))
	pts := make([][2]float64, 0, n)
	for len(pts) < n {
		cand := [2]float64{rng.Float64() * span, rng.Float64() * span}
		ok := true
		for _, p := range pts {
			dx, dy := p[0]-cand[0], p[1]-cand[1]
			if dx*dx+dy*dy < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}

func sqrtf(x float64) float64 {
	// Newton iterations suffice here and avoid importing math for one call.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Run executes one closed-loop load run and reports.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	cl := newClient(&cfg)
	pts := points(cfg.Seed, cfg.N)

	var (
		retriesN atomic.Int64
		shedN    atomic.Int64
		breakerN atomic.Int64
		abortedN atomic.Int64
	)
	// doRetry issues one request under the seeded retry policy: sheds
	// (503), server-side crashes (500), and mid-flight connection resets
	// are re-issued up to cfg.Retries times, waiting the larger of the
	// exponential backoff step and the server's Retry-After hint, plus
	// jitter drawn from the caller's seeded rng — so a replayed trace
	// retries at identical offsets.
	doRetry := func(ctx context.Context, rng *rand.Rand, path string, in, out any) (int, error) {
		for attempt := 0; ; attempt++ {
			code, hdr, err := cl.do(ctx, path, in, out)
			if err == nil || ctx.Err() != nil {
				return code, err
			}
			switch code {
			case http.StatusServiceUnavailable:
				switch hdr.Get(serve.ShedHeader) {
				case "breaker":
					breakerN.Add(1)
				case "":
					// Retryable without being an admission shed: a
					// draining server or Las Vegas non-convergence.
				default:
					shedN.Add(1)
				}
			case http.StatusInternalServerError:
				// A recovered server-side panic: the process survived,
				// the request is safe to re-issue.
			case 0:
				abortedN.Add(1)
			default:
				return code, err
			}
			if attempt >= cfg.Retries {
				return code, err
			}
			retriesN.Add(1)
			wait := cfg.RetryBase << uint(attempt)
			if ms, perr := strconv.ParseInt(hdr.Get(serve.RetryAfterMsHeader), 10, 64); perr == nil {
				if ra := time.Duration(ms) * time.Millisecond; ra > wait {
					wait = ra
				}
			} else if secs, perr := strconv.ParseInt(hdr.Get("Retry-After"), 10, 64); perr == nil {
				if ra := time.Duration(secs) * time.Second; ra > wait {
					wait = ra
				}
			}
			wait += time.Duration(rng.Int63n(int64(cfg.RetryBase)))
			select {
			case <-ctx.Done():
				return code, err
			case <-time.After(wait):
			}
		}
	}
	// The open/warmup phase runs sequentially on this goroutine with its
	// own seeded jitter stream.
	setupRng := rand.New(rand.NewSource(cfg.Seed + 13))

	// Open the sessions up-front. They all share one deployment.
	sessions := make([]string, cfg.Sessions)
	shared := 0
	for i := range sessions {
		var resp serve.OpenResponse
		if _, err := doRetry(ctx, setupRng, "/v1/sessions", serve.OpenRequest{
			Points:     pts,
			CacheSize:  cfg.CacheSize,
			CacheTTLMs: cfg.CacheTTLMs,
		}, &resp); err != nil {
			return nil, fmt.Errorf("loadgen: open session %d: %w", i, err)
		}
		sessions[i] = resp.SessionID
		if resp.SharedDeployment {
			shared++
		}
	}
	defer func() {
		for _, sid := range sessions {
			req, err := http.NewRequest(http.MethodDelete, cl.base+"/v1/sessions/"+sid, nil)
			if err != nil {
				continue
			}
			if resp, err := cl.hc.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	if cfg.Warmup {
		for key := 0; key < cfg.Keyspace; key++ {
			req := serve.RunRequest{
				Pipeline: cfg.Pipelines[key%len(cfg.Pipelines)],
				Options:  serve.OptionsJSON{Seed: int64(1 + key/len(cfg.Pipelines))},
			}
			if _, err := doRetry(ctx, setupRng, "/v1/sessions/"+sessions[key%len(sessions)]+"/run", req, nil); err != nil {
				return nil, fmt.Errorf("loadgen: warmup key %d: %w", key, err)
			}
		}
	}

	before, err := cl.health(ctx)
	if err != nil {
		return nil, fmt.Errorf("loadgen: healthz: %w", err)
	}

	var (
		issued   atomic.Int64
		errorsN  atomic.Int64
		canceled atomic.Int64
		streamed atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
	)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 7919*int64(idx+1)))
			spec := cfg.Arrival
			spec.Seed = cfg.Seed + 104729*int64(idx+1)
			arr, err := churn.NewArrivals(spec)
			if err != nil {
				errorsN.Add(1)
				return
			}
			var local []time.Duration
			for {
				seq := issued.Add(1)
				if seq > int64(cfg.Requests) {
					break
				}
				// Closed loop: think-time gap first, then the request.
				gap := arr.Next()
				select {
				case <-ctx.Done():
					issued.Add(-1)
					mu.Lock()
					lats = append(lats, local...)
					mu.Unlock()
					return
				case <-time.After(gap):
				}
				key := rng.Intn(cfg.Keyspace)
				runReq := serve.RunRequest{
					Pipeline:    cfg.Pipelines[key%len(cfg.Pipelines)],
					Options:     serve.OptionsJSON{Seed: int64(1 + key/len(cfg.Pipelines))},
					IncludeTree: cfg.IncludeTree,
				}
				sid := sessions[(idx+int(seq))%len(sessions)]
				path := "/v1/sessions/" + sid + "/run"

				if cfg.CancelFraction > 0 && rng.Float64() < cfg.CancelFraction {
					// Deliberate mid-flight cancellation: tiny deadline.
					cctx, cancel := context.WithTimeout(ctx, time.Millisecond)
					_, err := cl.post(cctx, path, runReq, nil)
					cancel()
					if err != nil {
						canceled.Add(1)
					}
					continue
				}
				t0 := time.Now()
				if cfg.StreamFraction > 0 && rng.Float64() < cfg.StreamFraction {
					runReq.Stream = true
					streamed.Add(1)
					if _, err := cl.postStream(ctx, path, runReq); err != nil {
						// The run's own deadline expiring is the load test
						// ending, not a server failure.
						if ctx.Err() == nil {
							errorsN.Add(1)
						}
						continue
					}
				} else {
					var resp serve.RunResponse
					if _, err := doRetry(ctx, rng, path, runReq, &resp); err != nil {
						if ctx.Err() == nil {
							errorsN.Add(1)
						}
						continue
					}
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := cl.health(context.WithoutCancel(ctx))
	if err != nil {
		return nil, fmt.Errorf("loadgen: healthz: %w", err)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return float64(lats[i]) / 1e6
	}
	dh := after.Cache.Hits - before.Cache.Hits
	dm := after.Cache.Misses - before.Cache.Misses
	hitRate := 0.0
	if dh+dm > 0 {
		hitRate = float64(dh) / float64(dh+dm)
	}
	return &Report{
		Mix:            cfg.Arrival.Mix.String(),
		Clients:        cfg.Clients,
		Sessions:       cfg.Sessions,
		N:              cfg.N,
		Keyspace:       cfg.Keyspace,
		CacheSize:      cfg.CacheSize,
		CacheTTLMs:     cfg.CacheTTLMs,
		Requests:       len(lats),
		Errors:         int(errorsN.Load()),
		Canceled:       int(canceled.Load()),
		Streamed:       int(streamed.Load()),
		Seconds:        elapsed.Seconds(),
		Throughput:     float64(len(lats)) / elapsed.Seconds(),
		P50Ms:          pct(0.50),
		P90Ms:          pct(0.90),
		P99Ms:          pct(0.99),
		HitRate:        hitRate,
		Hits:           dh,
		Misses:         dm,
		Coalesced:      after.Cache.Coalesced - before.Cache.Coalesced,
		Evictions:      after.Cache.Evictions - before.Cache.Evictions,
		SharedSessions: shared,
		Retries:        int(retriesN.Load()),
		Shed:           int(shedN.Load()),
		BreakerOpen:    int(breakerN.Load()),
		Aborted:        int(abortedN.Load()),
	}, nil
}
