package sinrconn

// Soak tests: larger instances exercising the full pipelines end to end.
// Skipped under -short; the regular suite covers the same paths at small n.

import (
	"math"
	"testing"
)

func TestSoakFullLifecycleLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n = 384
	pts := uniformPoints(90, n)

	res, err := BuildInitialBiTree(pts, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// Theorem 2 shape at scale: construction polylogarithmic per node.
	if res.Metrics.SlotsUsed > n*20 {
		t.Errorf("construction used %d slots for n=%d", res.Metrics.SlotsUsed, n)
	}

	refined, err := BuildBiTreeArbitraryPower(pts, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := refined.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// Theorem 4 shape at scale: schedule ≈ O(log n), certainly ≪ n.
	bound := int(16 * math.Log2(n))
	if got := refined.Metrics.ScheduleLength; got > bound {
		t.Errorf("schedule %d slots exceeds %d (16·log₂n)", got, bound)
	}

	// A physical epoch at scale.
	values := make([]int64, n)
	var want int64
	for i := range values {
		values[i] = int64(i % 101)
		want += values[i]
	}
	out, err := refined.Aggregate(values, SumAgg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != want {
		t.Fatalf("aggregate = %d, want %d", out.Value, want)
	}

	// Dynamic surgery at scale: fail 5% of nodes, repair, re-aggregate.
	var failed []int
	for i := 0; i < n/20; i++ {
		v := (i*37 + 11) % n
		if v == refined.Tree.Root {
			v = (v + 1) % n
		}
		dup := false
		for _, f := range failed {
			if f == v {
				dup = true
				break
			}
		}
		if !dup {
			failed = append(failed, v)
		}
	}
	repaired, err := refined.RepairFailures(failed, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := repaired.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	want = 0
	vals2 := make([]int64, n)
	for _, v := range repaired.Tree.Parent() {
		_ = v
	}
	alive := map[int]bool{}
	for i := 0; i < n; i++ {
		alive[i] = true
	}
	for _, f := range failed {
		alive[f] = false
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			vals2[i] = int64(i % 101)
			want += vals2[i]
		}
	}
	out, err = repaired.Aggregate(vals2, SumAgg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != want {
		t.Fatalf("post-repair aggregate = %d, want %d", out.Value, want)
	}
}

func TestSoakHighDeltaChain(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// An extreme-Δ chain: Δ = 2^30.
	pts := make([]Point, 0, 64)
	x, gap := 0.0, 1.0
	for i := 0; i < 64; i++ {
		pts = append(pts, Point{X: x})
		x += gap
		gap *= 1.38
	}
	res, err := BuildInitialBiTree(pts, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Delta < 1e6 {
		t.Fatalf("chain Δ = %v, expected extreme", res.Metrics.Delta)
	}
	refined, err := BuildBiTreeMeanPower(pts, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := refined.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	// The refined schedule must not inherit the log Δ factor: it should be
	// well below the Init stamps on this instance.
	if refined.Metrics.ScheduleLength > res.Metrics.ScheduleLength {
		t.Logf("note: refined %d vs init %d slots (n small, Δ huge)",
			refined.Metrics.ScheduleLength, res.Metrics.ScheduleLength)
	}
}
