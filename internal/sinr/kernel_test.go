package sinr

// Golden-equivalence tests: the physics kernel (gain table + fast integer-α
// path loss) must reproduce the naive math.Hypot + math.Pow physics the
// package shipped with. The two formulations differ only in rounding: the
// fast path computes d^α from the squared distance with hardware multiplies
// and sqrt, and gains are cached as reciprocals, so each quantity may differ
// from the naive value by a few ulps (the reciprocal and each eliminated Pow
// contribute ≤ 1 ulp each). The tests therefore assert relative agreement
// within relTol = 1e-12 — orders of magnitude tighter than any decision
// tolerance in the model (the β comparisons use 1e-9 slack) and loose enough
// only for genuine last-digit rounding. Powers are drawn at or above
// SafePower so c(u,v)'s denominator is well conditioned and the ulp bound is
// not amplified by cancellation. Table and tableless paths must agree
// *bit-for-bit* with each other, which TestGainTableMatchesFallback pins.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
)

const relTol = 1e-12

// naive* reimplement the pre-kernel physics verbatim.

func naiveC(p Params, length, pu float64) float64 {
	denom := 1 - p.Beta*p.Noise*math.Pow(length, p.Alpha)/pu
	if denom <= 0 {
		return math.Inf(1)
	}
	return p.Beta / denom
}

func naiveAffectance(in *Instance, w int, pw float64, l Link, pu float64) float64 {
	if w == l.From {
		return 0
	}
	p := in.Params()
	cap_ := 1 + p.Epsilon
	dwv := in.Dist(w, l.To)
	if dwv <= 0 {
		return cap_
	}
	duv := in.Length(l)
	c := naiveC(p, duv, pu)
	if math.IsInf(c, 1) {
		return cap_
	}
	a := c * (pw / pu) * math.Pow(duv/dwv, p.Alpha)
	if a > cap_ {
		return cap_
	}
	return a
}

func naiveSINR(in *Instance, txs []Tx, l Link) float64 {
	p := in.Params()
	signal, interference := 0.0, 0.0
	for _, t := range txs {
		rp := t.Power / math.Pow(in.Dist(t.Sender, l.To), p.Alpha)
		if t.Sender == l.From {
			signal += rp
		} else {
			interference += rp
		}
	}
	if signal == 0 {
		return 0
	}
	return signal / (p.Noise + interference)
}

func naiveMeasuredAffectance(in *Instance, txs []Tx, l Link, pu float64) float64 {
	p := in.Params()
	c := naiveC(p, in.Length(l), pu)
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	signal := pu / math.Pow(in.Length(l), p.Alpha)
	interference := 0.0
	for _, t := range txs {
		if t.Sender == l.From {
			continue
		}
		d := in.Dist(t.Sender, l.To)
		if d <= 0 {
			return math.Inf(1)
		}
		interference += t.Power / math.Pow(d, p.Alpha)
	}
	return c * interference / signal
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= relTol*scale
}

func randomKernelInstance(rng *rand.Rand, n int, alpha float64) *Instance {
	pts := make([]geom.Point, n)
	for i := range pts {
		// Spread ≥ 1 apart on a jittered grid (the paper's normalization).
		pts[i] = geom.Point{
			X: float64(i%8)*3 + rng.Float64(),
			Y: float64(i/8)*3 + rng.Float64(),
		}
	}
	p := DefaultParams()
	p.Alpha = alpha
	return MustInstance(pts, p)
}

// TestKernelGoldenEquivalence cross-checks every kernel-backed quantity
// against the naive physics across random instances, senders, and
// α ∈ {2, 2.5, 3, 4} (free-space boundary, fractional fallback, odd and
// even integer fast paths).
func TestKernelGoldenEquivalence(t *testing.T) {
	for _, alpha := range []float64{2, 2.5, 3, 4} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(alpha*10)))
			n := 24 + rng.Intn(16)
			in := randomKernelInstance(rng, n, alpha)
			p := in.Params()

			txs := make([]Tx, 0, n/3)
			for w := 0; w < n/3; w++ {
				pw := p.SafePower(1+rng.Float64()*8) * (1 + rng.Float64())
				txs = append(txs, Tx{Sender: rng.Intn(n), Power: pw})
			}

			for trial := 0; trial < 50; trial++ {
				l := Link{From: rng.Intn(n), To: rng.Intn(n)}
				if l.From == l.To {
					continue
				}
				pu := p.SafePower(in.Length(l)) * (1 + rng.Float64())

				if got, want := in.C(in.Length(l), pu), naiveC(p, in.Length(l), pu); !relClose(got, want) {
					t.Fatalf("α=%v C: got %v want %v", alpha, got, want)
				}
				w := rng.Intn(n)
				pw := p.SafePower(4) * (1 + rng.Float64())
				if got, want := in.Affectance(w, pw, l, pu), naiveAffectance(in, w, pw, l, pu); !relClose(got, want) {
					t.Fatalf("α=%v Affectance(%d on %v): got %v want %v", alpha, w, l, got, want)
				}
				sumNaive := 0.0
				for _, tx := range txs {
					sumNaive += naiveAffectance(in, tx.Sender, tx.Power, l, pu)
				}
				if got := in.SetAffectance(txs, l, pu); !relClose(got, sumNaive) {
					t.Fatalf("α=%v SetAffectance: got %v want %v", alpha, got, sumNaive)
				}
				if got, want := in.SINR(txs, l), naiveSINR(in, txs, l); !relClose(got, want) {
					t.Fatalf("α=%v SINR: got %v want %v", alpha, got, want)
				}
				if got, want := in.MeasuredAffectance(txs, l, pu), naiveMeasuredAffectance(in, txs, l, pu); !relClose(got, want) {
					t.Fatalf("α=%v MeasuredAffectance: got %v want %v", alpha, got, want)
				}
				if got, want := in.DistAlpha(l.From, l.To), math.Pow(in.Length(l), p.Alpha); !relClose(got, want) {
					t.Fatalf("α=%v DistAlpha: got %v want %v", alpha, got, want)
				}
				if got, want := in.Gain(w, l.To), 1/math.Pow(in.Dist(w, l.To), p.Alpha); w != l.To && !relClose(got, want) {
					t.Fatalf("α=%v Gain: got %v want %v", alpha, got, want)
				}
			}
		}
	}
}

// TestGainTableMatchesFallback asserts the cached table and the on-the-fly
// fallback produce bit-identical gains, so the memory bound can never change
// results.
func TestGainTableMatchesFallback(t *testing.T) {
	for _, alpha := range []float64{2, 2.5, 3, 4} {
		rng := rand.New(rand.NewSource(int64(alpha * 7)))
		cached := randomKernelInstance(rng, 40, alpha)
		rng = rand.New(rand.NewSource(int64(alpha * 7)))
		bare := randomKernelInstance(rng, 40, alpha)
		bare.disableGainTableForTest()
		if cached.GainTable() == nil {
			t.Fatal("table unexpectedly over budget")
		}
		if bare.GainTable() != nil {
			t.Fatal("fallback instance still has a table")
		}
		for u := 0; u < 40; u++ {
			for v := 0; v < 40; v++ {
				a, b := cached.Gain(u, v), bare.Gain(u, v)
				if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
					t.Fatalf("α=%v gain(%d,%d): table %v fallback %v", alpha, u, v, a, b)
				}
			}
		}
	}
}

// TestKernelDeterminism asserts a fixed seed gives bit-identical affectance
// sums across two independently built instances — the determinism contract
// protocols rely on.
func TestKernelDeterminism(t *testing.T) {
	build := func() float64 {
		rng := rand.New(rand.NewSource(42))
		in := randomKernelInstance(rng, 32, 3)
		p := in.Params()
		txs := make([]Tx, 0, 10)
		for w := 0; w < 10; w++ {
			txs = append(txs, Tx{Sender: w, Power: p.SafePower(3)})
		}
		sum := 0.0
		for v := 10; v < 32; v++ {
			l := Link{From: v - 1, To: v}
			sum += in.SetAffectance(txs, l, p.SafePower(in.Length(l)))
			sum += in.SINR(txs, l)
		}
		return sum
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("determinism violated: %v != %v", a, b)
	}
}

// TestPowAlpha pins the fast-path exponent arithmetic itself.
func TestPowAlpha(t *testing.T) {
	cases := []struct{ d, alpha float64 }{
		{2, 3}, {2, 4}, {2, 2}, {3.7, 3}, {3.7, 2.5}, {9, 1.5}, {5, 6.3}, {1, 3}, {0, 3},
	}
	for _, c := range cases {
		want := math.Pow(c.d, c.alpha)
		if got := PowAlpha(c.d, c.alpha); !relClose(got, want) {
			t.Errorf("PowAlpha(%v,%v) = %v, want %v", c.d, c.alpha, got, want)
		}
		if got := PowAlphaSq(c.d*c.d, c.alpha); !relClose(got, want) {
			t.Errorf("PowAlphaSq(%v,%v) = %v, want %v", c.d*c.d, c.alpha, got, want)
		}
	}
}
