package schedule

import (
	"sort"

	"sinrconn/internal/sinr"
)

// Order selects the processing order of FirstFit.
type Order uint8

// FirstFit processing orders.
const (
	// ByLengthDesc processes longest links first (default; long links are
	// the hardest to place).
	ByLengthDesc Order = iota + 1
	// ByLengthAsc processes shortest links first (the order of Kesselheim's
	// capacity algorithm).
	ByLengthAsc
)

// FirstFit partitions links into SINR-feasible groups under assignment pa:
// each link lands in the first existing group that remains feasible with it
// added, or opens a new group. It returns the groups in slot order.
// Infeasible-alone links (which cannot be scheduled under pa at all) are
// returned separately rather than looping forever.
func FirstFit(in *sinr.Instance, links []sinr.Link, pa sinr.Assignment, order Order) (slots [][]sinr.Link, unschedulable []sinr.Link) {
	idx := make([]int, len(links))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		la, lb := in.Length(links[idx[a]]), in.Length(links[idx[b]])
		if order == ByLengthAsc {
			return la < lb
		}
		return la > lb
	})

	for _, i := range idx {
		l := links[i]
		// A link that cannot stand alone under pa can never be placed.
		if !in.Feasible([]sinr.Link{l}, pa) {
			unschedulable = append(unschedulable, l)
			continue
		}
		placed := false
		for s := range slots {
			cand := append(append([]sinr.Link(nil), slots[s]...), l)
			if feasibleWith(in, cand, pa) {
				slots[s] = cand
				placed = true
				break
			}
		}
		if !placed {
			slots = append(slots, []sinr.Link{l})
		}
	}
	return slots, unschedulable
}

// feasibleWith checks feasibility, additionally rejecting node conflicts: a
// node cannot send and receive (or participate twice) in one slot.
func feasibleWith(in *sinr.Instance, links []sinr.Link, pa sinr.Assignment) bool {
	busy := make(map[int]bool, 2*len(links))
	for _, l := range links {
		if busy[l.From] || busy[l.To] {
			return false
		}
		busy[l.From] = true
		busy[l.To] = true
	}
	return in.Feasible(links, pa)
}

// Length returns the number of slots in a FirstFit result.
func Length(slots [][]sinr.Link) int { return len(slots) }
