package oracle

import (
	"fmt"

	"sinrconn/internal/geom"
	"sinrconn/internal/phys"
	"sinrconn/internal/tree"
)

// This file holds the brute-force bi-tree validators: every property the
// paper's theorems assert about a constructed bi-tree (Definition 1),
// checked in the most literal way available — quadratic descendant scans,
// per-slot feasibility through the naive O(n²) physics — independent of the
// optimized validators in internal/tree.

// ValidateTree checks the structural spanning-tree properties of an
// aggregation link set by brute force: node uniqueness, the root in the
// node set with no up-link, exactly one up-link per non-root node with both
// endpoints in the node set, and every node reaching the root by parent
// walking.
func ValidateTree(root int, nodes []int, up []tree.TimedLink) error {
	inNodes := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		if inNodes[v] {
			return fmt.Errorf("oracle: duplicate node %d", v)
		}
		inNodes[v] = true
	}
	if !inNodes[root] {
		return fmt.Errorf("oracle: root %d not in node set", root)
	}
	parent := make(map[int]int, len(up))
	for _, tl := range up {
		if !inNodes[tl.L.From] || !inNodes[tl.L.To] {
			return fmt.Errorf("oracle: link %v leaves node set", tl.L)
		}
		if tl.L.From == tl.L.To {
			return fmt.Errorf("oracle: self-loop at %d", tl.L.From)
		}
		if _, dup := parent[tl.L.From]; dup {
			return fmt.Errorf("oracle: node %d has two up-links", tl.L.From)
		}
		parent[tl.L.From] = tl.L.To
	}
	if _, bad := parent[root]; bad {
		return fmt.Errorf("oracle: root %d has an up-link", root)
	}
	if len(parent) != len(nodes)-1 {
		return fmt.Errorf("oracle: %d up-links for %d nodes", len(parent), len(nodes))
	}
	for _, v := range nodes {
		steps := 0
		for v != root {
			p, ok := parent[v]
			if !ok {
				return fmt.Errorf("oracle: node %d has no path to root", v)
			}
			v = p
			if steps++; steps > len(nodes) {
				return fmt.Errorf("oracle: cycle detected")
			}
		}
	}
	return nil
}

// ValidateOrdering checks the aggregation scheduling property globally: for
// every pair of links, if one link's sender is a (strict) descendant of the
// other's sender, the descendant's link must be scheduled strictly earlier.
// This is the O(n²) transitive form of the property — deliberately not the
// local parent/child shortcut internal/tree uses.
func ValidateOrdering(root int, up []tree.TimedLink) error {
	parent := make(map[int]int, len(up))
	slot := make(map[int]int, len(up))
	for _, tl := range up {
		parent[tl.L.From] = tl.L.To
		slot[tl.L.From] = tl.Slot
	}
	isDescendant := func(a, b int) bool { // a strictly below b
		steps := 0
		for a != b {
			p, ok := parent[a]
			if !ok {
				return false
			}
			a = p
			if steps++; steps > len(up)+1 {
				return false
			}
		}
		return true
	}
	for _, lo := range up {
		for _, hi := range up {
			if lo.L.From == hi.L.From {
				continue
			}
			if isDescendant(lo.L.From, hi.L.From) && !(lo.Slot < hi.Slot) {
				return fmt.Errorf("oracle: ordering violated: descendant link %v slot %d not before %v slot %d",
					lo.L, lo.Slot, hi.L, hi.Slot)
			}
		}
	}
	return nil
}

// ValidateSchedule checks per-slot SINR feasibility of the stamped schedule
// by brute force: links grouped by slot through a map, each group resolved
// with the naive O(n²) physics.
func ValidateSchedule(pts []geom.Point, p phys.Params, up []tree.TimedLink) error {
	bySlot := make(map[int][]tree.TimedLink)
	for _, tl := range up {
		bySlot[tl.Slot] = append(bySlot[tl.Slot], tl)
	}
	for s, group := range bySlot {
		links := make([]phys.Link, len(group))
		powers := make([]float64, len(group))
		for i, tl := range group {
			links[i] = tl.L
			powers[i] = tl.Power
		}
		ok, err := SINRFeasible(pts, p, links, powers)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("oracle: slot %d is not SINR-feasible (%d links)", s, len(group))
		}
	}
	return nil
}

// StronglyConnected reports whether the up-links together with their duals
// strongly connect the node set, by running one full BFS from every node —
// the most literal reading of Theorem 2's claim, with no symmetry shortcut.
func StronglyConnected(nodes []int, up []tree.TimedLink) bool {
	if len(nodes) == 0 {
		return false
	}
	adj := make(map[int][]int, len(nodes))
	for _, tl := range up {
		adj[tl.L.From] = append(adj[tl.L.From], tl.L.To)
		adj[tl.L.To] = append(adj[tl.L.To], tl.L.From)
	}
	for _, src := range nodes {
		seen := map[int]bool{src: true}
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		for _, v := range nodes {
			if !seen[v] {
				return false
			}
		}
	}
	return true
}

// ValidateBiTree runs the full brute-force battery: structure, global
// ordering, strong connectivity, and per-slot feasibility.
func ValidateBiTree(pts []geom.Point, p phys.Params, root int, nodes []int, up []tree.TimedLink) error {
	if err := ValidateTree(root, nodes, up); err != nil {
		return err
	}
	if err := ValidateOrdering(root, up); err != nil {
		return err
	}
	if !StronglyConnected(nodes, up) {
		return fmt.Errorf("oracle: tree not strongly connected")
	}
	return ValidateSchedule(pts, p, up)
}
