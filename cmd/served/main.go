// Command served is the serving daemon: a long-running HTTP/JSON server
// over the session API (Open/Run/RunMatrix/Join/Repair/Churn) with
// per-session handles, slot-event streaming, a size/TTL-bounded result
// cache with singleflight coalescing, /metrics and /healthz, and graceful
// drain on SIGTERM.
//
// Usage:
//
//	served -addr :8080                       # serve until SIGTERM/SIGINT
//	served -addr 127.0.0.1:0 -loadgen 10s    # self-drive a smoke load, then exit
//	served -journal s.journal                # journal session opens/closes
//	served -journal s.journal -recover       # rebuild the session table after a crash
//	served -chaos "seed=1,serve.conn.reset=0.01"  # seeded fault injection (testing)
//
// On SIGTERM the daemon stops accepting new sessions (503), lets in-flight
// requests finish within -drain-timeout, then closes every deployment.
// Hardening (DESIGN.md §13): handler panics become JSON 500s, -max-concurrent
// bounds executing requests with deadline-aware shedding, sessions carry
// per-session circuit breakers, and -journal/-recover replay the session
// table bit-identically after a crash.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sinrconn/internal/churn"
	"sinrconn/internal/faults"
	"sinrconn/internal/serve"
	"sinrconn/internal/serve/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache-size", 0, "result-cache entries per deployment (0 = library default, 128)")
	cacheTTL := fs.Duration("cache-ttl", 0, "result-cache entry TTL (0 = never expire)")
	defTimeout := fs.Duration("default-timeout", 0, "per-request timeout when the request sets none (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "hard per-request timeout cap (0 = uncapped)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	workers := fs.Int("workers", 0, "simulator workers per deployment (0 = NumCPU)")
	maxConcurrent := fs.Int("max-concurrent", 0, "bound concurrently executing operation requests; excess queues or sheds 503 (0 = unlimited)")
	breaker := fs.Int("breaker", 0, "consecutive failures that open a session's circuit breaker (0 = default 8, negative = disabled)")
	chaos := fs.String("chaos", "", `fault-injection spec, e.g. "seed=42,delay=2ms,serve.handler.delay=0.05,serve.conn.reset=0.01" (testing only)`)
	journalPath := fs.String("journal", "", "append-only session journal path (fsync'd per open/close; enables -recover)")
	recoverFlag := fs.Bool("recover", false, "replay the -journal session table before serving (crash recovery)")
	lg := fs.Duration("loadgen", 0, "self-drive a smoke load for this long, print a JSON report, and exit")
	lgClients := fs.Int("loadgen-clients", 8, "loadgen concurrent clients")
	lgN := fs.Int("loadgen-n", 64, "loadgen deployment size")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		CacheSize:      *cacheSize,
		CacheTTL:       *cacheTTL,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Workers:        *workers,
		MaxConcurrent:  *maxConcurrent,
	}
	if *breaker != 0 {
		cfg.BreakerThreshold = *breaker
	}
	if *chaos != "" {
		spec, err := faults.ParseSpec(*chaos)
		if err != nil {
			return err
		}
		plan, err := faults.NewPlan(spec)
		if err != nil {
			return err
		}
		cfg.Injector = plan
		fmt.Fprintf(out, "served: chaos injection armed (%s)\n", spec.String())
	}
	var replay []serve.JournalRecord
	if *recoverFlag && *journalPath == "" {
		return errors.New("-recover requires -journal")
	}
	if *journalPath != "" {
		if *recoverFlag {
			// Read the surviving session table BEFORE reopening the
			// journal for append.
			var err error
			if replay, err = serve.ReadJournal(*journalPath); err != nil {
				return err
			}
		}
		j, err := serve.OpenJournal(*journalPath)
		if err != nil {
			return err
		}
		defer j.Close()
		cfg.Journal = j
	}

	srv := serve.New(cfg)
	if *recoverFlag {
		n, err := srv.Restore(replay)
		if err != nil {
			srv.Close()
			return fmt.Errorf("recover: %w", err)
		}
		fmt.Fprintf(out, "served: recovered %d sessions\n", n)
	}
	hs := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "served: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if *lg > 0 {
		// Self-drive mode: run the load generator against our own listener,
		// print the report, then drain exactly as SIGTERM would.
		lgCtx, cancel := context.WithTimeout(ctx, *lg)
		report, lgErr := loadgen.Run(lgCtx, loadgen.Config{
			BaseURL:  "http://" + ln.Addr().String(),
			Clients:  *lgClients,
			N:        *lgN,
			Requests: 1 << 20, // effectively until the deadline
			Seed:     1,
			Arrival:  churn.ArrivalSpec{Rate: 500, Mix: churn.MixPoisson},
		})
		cancel()
		if lgErr != nil {
			hs.Close()
			srv.Close()
			return lgErr
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		enc.Encode(report)
		return shutdown(srv, hs, *drainTimeout, out)
	}

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: second SIGTERM kills
		fmt.Fprintln(out, "served: draining")
		return shutdown(srv, hs, *drainTimeout, out)
	}
}

// shutdown drains gracefully: refuse new sessions, wait for in-flight
// requests up to the timeout, then close every deployment.
func shutdown(srv *serve.Server, hs *http.Server, timeout time.Duration, out io.Writer) error {
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := hs.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(out, "served: drain timeout exceeded, closing")
		hs.Close()
		err = nil
	}
	srv.Close()
	fmt.Fprintln(out, "served: stopped")
	return err
}
