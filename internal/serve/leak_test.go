package serve

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// settleGoroutines is the shared goroutine-leak gate: call it FIRST in a
// test (before the daemon exists) and it records the baseline goroutine
// count, then — via t.Cleanup, so it runs after the test's own cleanups
// have torn the daemon down — requires the count to settle back to that
// baseline within 10s. Everything the daemon spawns (worker pools,
// singleflight leaders, canceled runs, injected stalls) must be gone by
// then; on timeout it fails with a full stack dump of the stragglers.
//
// Every test in this package calls it (diff_test.go excepted: that file
// is the frozen differential gate and must not change).
func settleGoroutines(t *testing.T) {
	t.Helper()
	runtime.GC()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Keep-alive client connections hold readLoop goroutines that
		// would read as daemon leaks.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(10 * time.Second)
		for {
			runtime.GC()
			if g := runtime.NumGoroutine(); g <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}
