package sinrconn_test

// One benchmark per experiment table (E1–E12, see DESIGN.md §4 and
// EXPERIMENTS.md). Each bench runs the measurement behind its table at a
// representative size and reports the headline quantity via b.ReportMetric,
// so `go test -bench=. -benchmem` regenerates the numbers the tables
// summarize. cmd/experiments prints the full sweeps.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/core"
	"sinrconn/internal/experiments"
	"sinrconn/internal/geom"
	"sinrconn/internal/power"
	"sinrconn/internal/schedule"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/sparsity"
	"sinrconn/internal/workload"
)

const benchN = 96

// benchSizes is the scale sweep the physics kernel makes affordable (the
// pre-kernel suite was capped at n=96). Tables that sweep sizes use it;
// single-size tables stay at benchN so their metrics remain comparable with
// the original E1–E12 numbers.
var benchSizes = []int{benchN, 256, 1024}

func benchInstance(seed int64) *sinr.Instance {
	return benchInstanceN(seed, benchN)
}

func benchInstanceN(seed int64, n int) *sinr.Instance {
	rng := rand.New(rand.NewSource(seed))
	return sinr.MustInstance(workload.UniformDensity(rng, n, 0.15), sinr.DefaultParams())
}

// BenchmarkE1InitSlots regenerates Table E1: Init construction time
// (Theorem 2, O(log Δ·log n) slots), swept over benchSizes.
func BenchmarkE1InitSlots(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := benchInstanceN(1, n)
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Init(context.Background(), in, core.InitConfig{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				total += res.SlotsUsed
			}
			b.ReportMetric(float64(total)/float64(b.N), "slots/op")
		})
	}
}

// BenchmarkE2BiTreeValidity regenerates Table E2: validator battery on the
// Init output (correctness half of Theorem 2).
func BenchmarkE2BiTreeValidity(b *testing.B) {
	in := benchInstance(2)
	for i := 0; i < b.N; i++ {
		res, err := core.Init(context.Background(), in, core.InitConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		bt := res.Tree
		if bt.Validate() != nil || !bt.StronglyConnected() ||
			bt.ValidateOrdering() != nil || bt.ValidatePerSlotFeasible(in) != nil {
			b.Fatal("invalid bi-tree")
		}
	}
}

// BenchmarkE3DegreeTail regenerates Table E3: max degree vs log n
// (Theorem 7).
func BenchmarkE3DegreeTail(b *testing.B) {
	in := benchInstance(3)
	worst := 0
	for i := 0; i < b.N; i++ {
		res, err := core.Init(context.Background(), in, core.InitConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if d := res.Tree.MaxDegree(); d > worst {
			worst = d
		}
	}
	b.ReportMetric(float64(worst)/math.Log2(benchN), "maxdeg/log2n")
}

// BenchmarkE4Sparsity regenerates Table E4: ψ(T) vs log n (Theorem 11).
func BenchmarkE4Sparsity(b *testing.B) {
	in := benchInstance(4)
	res, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	links := res.Tree.Links()
	psi := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psi = sparsity.MeasureAtScales(in, links)
	}
	b.ReportMetric(float64(psi), "psi")
}

// BenchmarkE5LowDegreeFilter regenerates Table E5: T(M) sparsity and
// retention (Theorem 13).
func BenchmarkE5LowDegreeFilter(b *testing.B) {
	in := benchInstance(5)
	res, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	frac := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := core.LowDegreeSubset(res.Tree, 0)
		frac = float64(len(sub)) / float64(len(res.Tree.Up))
	}
	b.ReportMetric(frac, "retention")
}

// BenchmarkE6MeanReschedule regenerates Table E6: distributed mean-power
// rescheduling of T (Theorem 3).
func BenchmarkE6MeanReschedule(b *testing.B) {
	in := benchInstance(6)
	res, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pa := sinr.NoiseSafeMean(in.Params(), math.Max(1, in.Delta()))
	slots := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rres, err := core.Reschedule(context.Background(), in, res.Tree, pa, schedule.DistConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		slots = rres.NumSlots
	}
	b.ReportMetric(float64(slots), "slots")
}

// BenchmarkE7Iterations regenerates Table E7: TreeViaCapacity iteration
// count (Theorem 12).
func BenchmarkE7Iterations(b *testing.B) {
	in := benchInstance(7)
	iters := 0
	for i := 0; i < b.N; i++ {
		res, err := core.TreeViaCapacity(context.Background(), in, core.TVCConfig{
			Variant: core.VariantArbitrary, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters)/math.Log2(benchN), "iters/log2n")
}

// BenchmarkE8ArbitraryPower regenerates Table E8: final schedule length of
// the arbitrary-power bi-tree (Theorem 4a).
func BenchmarkE8ArbitraryPower(b *testing.B) {
	in := benchInstance(8)
	slots := 0
	for i := 0; i < b.N; i++ {
		res, err := core.TreeViaCapacity(context.Background(), in, core.TVCConfig{
			Variant: core.VariantArbitrary, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		slots = res.Tree.NumSlots()
	}
	b.ReportMetric(float64(slots)/math.Log2(benchN), "slots/log2n")
}

// BenchmarkE9MeanPower regenerates Table E9: final schedule length of the
// mean-power bi-tree (Theorem 4b).
func BenchmarkE9MeanPower(b *testing.B) {
	in := benchInstance(9)
	slots := 0
	for i := 0; i < b.N; i++ {
		res, err := core.TreeViaCapacity(context.Background(), in, core.TVCConfig{
			Variant: core.VariantMean, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		slots = res.Tree.NumSlots()
	}
	b.ReportMetric(float64(slots)/(in.Upsilon()*math.Log2(benchN)), "slots/(ups*log2n)")
}

// BenchmarkE10Crossover regenerates Table E10: uniform vs mean first-fit on
// the same high-Δ tree.
func BenchmarkE10Crossover(b *testing.B) {
	in := sinr.MustInstance(workload.ChainForDelta(benchN/2, 1<<18), sinr.DefaultParams())
	res, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ratio := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := core.UniformScheduleLength(in, res.Tree)
		m := core.MeanScheduleLength(in, res.Tree)
		ratio = float64(u) / math.Max(1, float64(m))
	}
	b.ReportMetric(ratio, "uniform/mean")
}

// BenchmarkE11Latency regenerates Table E11: converge-cast latency on the
// Section-8 bi-tree (Definition 1 / Theorem 4).
func BenchmarkE11Latency(b *testing.B) {
	in := benchInstance(11)
	res, err := core.TreeViaCapacity(context.Background(), in, core.TVCConfig{
		Variant: core.VariantArbitrary, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	lat := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := res.Tree.AggregationLatency()
		if err != nil {
			b.Fatal(err)
		}
		lat = l
	}
	b.ReportMetric(float64(lat), "agg_slots")
}

// BenchmarkE12CapacityRatio regenerates Table E12: Distr-Cap yield against
// the centralized Kesselheim selection (Theorem 20).
func BenchmarkE12CapacityRatio(b *testing.B) {
	in := benchInstance(12)
	ires, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sub := core.LowDegreeSubset(ires.Tree, 0)
	links := make([]sinr.Link, len(sub))
	for i, tl := range sub {
		links[i] = tl.L
	}
	central := len(core.CentralCapacity(in, links, 0))
	ratio := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.DistrCap(in, links, core.DistrCapConfig{Seed: int64(i), Repeats: 4})
		ratio = float64(len(d.Selected)) / math.Max(1, float64(central))
	}
	b.ReportMetric(ratio, "distr/central")
}

// BenchmarkE13Energy regenerates Table E13: per-epoch aggregation energy on
// the Section-8 tree.
func BenchmarkE13Energy(b *testing.B) {
	in := benchInstance(13)
	res, err := core.TreeViaCapacity(context.Background(), in, core.TVCConfig{Variant: core.VariantArbitrary, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	values := make([]int64, in.Len())
	for i := range values {
		values[i] = 1
	}
	energy := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := core.RunAggregation(context.Background(), in, res.Tree, values, core.SumAgg, sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		energy = out.Energy
	}
	b.ReportMetric(energy, "epoch_energy")
}

// BenchmarkE14PhysicalEpoch regenerates Table E14: a full physical
// converge-cast epoch on the Init tree.
func BenchmarkE14PhysicalEpoch(b *testing.B) {
	in := benchInstance(14)
	res, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	values := make([]int64, in.Len())
	for i := range values {
		values[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunAggregation(context.Background(), in, res.Tree, values, core.SumAgg, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuickSuite runs the full quick experiment suite end to end — the
// one-stop regression check that every table still passes its shape check.
func BenchmarkQuickSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, rep := range experiments.All(context.Background(), experiments.Quick()) {
			if !rep.Pass {
				b.Fatalf("%s failed shape check", rep.ID)
			}
		}
	}
}

// --- ablation benches (tables A1–A5, design-choice sweeps) ---

// BenchmarkA1BroadcastProb regenerates Table A1 at the default p,
// reporting slots so alternative p values can be compared with -benchtime.
func BenchmarkA1BroadcastProb(b *testing.B) {
	for _, p := range []float64{0.1, 0.25, 0.45} {
		b.Run(fmt.Sprintf("p=%.2f", p), func(b *testing.B) {
			in := benchInstance(31)
			slots := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Init(context.Background(), in, core.InitConfig{BroadcastProb: p, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				slots = res.SlotsUsed
			}
			b.ReportMetric(float64(slots), "slots")
		})
	}
}

// BenchmarkA3DistrCapTau regenerates Table A3's yield column.
func BenchmarkA3DistrCapTau(b *testing.B) {
	in := benchInstance(33)
	ires, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sub := core.LowDegreeSubset(ires.Tree, 0)
	links := make([]sinr.Link, len(sub))
	for i, tl := range sub {
		links[i] = tl.L
	}
	for _, tau := range []float64{0.4, 1.5, 3.0} {
		b.Run(fmt.Sprintf("tau=%.1f", tau), func(b *testing.B) {
			yield := 0
			for i := 0; i < b.N; i++ {
				d := core.DistrCap(in, links, core.DistrCapConfig{Tau: tau, Seed: int64(i)})
				yield = len(d.Selected)
			}
			b.ReportMetric(float64(yield), "selected")
		})
	}
}

// BenchmarkA5DropRobustness regenerates Table A5: Init under fading.
func BenchmarkA5DropRobustness(b *testing.B) {
	for _, drop := range []float64{0, 0.3} {
		b.Run(fmt.Sprintf("drop=%.1f", drop), func(b *testing.B) {
			in := benchInstance(35)
			slots := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Init(context.Background(), in, core.InitConfig{Seed: int64(i), DropProb: drop})
				if err != nil {
					b.Fatal(err)
				}
				slots = res.SlotsUsed
			}
			b.ReportMetric(float64(slots), "slots")
		})
	}
}

// BenchmarkJoin measures attaching 4 late nodes to an existing tree.
func BenchmarkJoin(b *testing.B) {
	in := benchInstance(36)
	base := make([]int, benchN-4)
	joiners := make([]int, 4)
	for i := range base {
		base[i] = i
	}
	for i := range joiners {
		joiners[i] = benchN - 4 + i
	}
	ires, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1, Participants: base})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Join(context.Background(), in, ires.Tree, joiners, core.InitConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepair measures recovering from one interior-node failure.
func BenchmarkRepair(b *testing.B) {
	in := benchInstance(37)
	ires, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	victim := -1
	for v, ch := range ires.Tree.Children() {
		if v != ires.Tree.Root && len(ch) > 0 {
			victim = v
			break
		}
	}
	if victim < 0 {
		b.Skip("no interior node")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Repair(context.Background(), in, ires.Tree, []int{victim}, core.InitConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the substrates ---

// BenchmarkChannelSlot measures the raw physics cost of one affectance sum
// with a quarter of the nodes transmitting, swept over benchSizes.
func BenchmarkChannelSlot(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := benchInstanceN(20, n)
			txs := make([]sinr.Tx, 0, n/4)
			for i := 0; i < n/4; i++ {
				txs = append(txs, sinr.Tx{Sender: i, Power: in.Params().SafePower(4)})
			}
			l := sinr.Link{From: n - 2, To: n - 1}
			pu := in.Params().SafePower(in.Length(l))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.SetAffectance(txs, l, pu)
			}
		})
	}
}

// BenchmarkPowerSolve measures the Foschini–Miljanic solver on a selected
// feasible set.
func BenchmarkPowerSolve(b *testing.B) {
	in := benchInstance(21)
	ires, err := core.Init(context.Background(), in, core.InitConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	sub := core.LowDegreeSubset(ires.Tree, 0)
	links := make([]sinr.Link, len(sub))
	for i, tl := range sub {
		links[i] = tl.L
	}
	sel := core.CentralCapacity(in, links, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := power.Solve(in, sel, power.Options{Slack: 1.01}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSTBaseline measures the centralized MST baseline construction.
func BenchmarkMSTBaseline(b *testing.B) {
	in := benchInstance(22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.MST(in.Points())
	}
}
