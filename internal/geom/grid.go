package geom

import "math"

// Grid is a uniform spatial hash over a fixed point set. It answers "indices
// of points within distance r of a query point" without scanning all points,
// and is used by the channel simulator to prune negligible interferers and
// by the sparsity measurement to enumerate ball memberships.
//
// The zero value is not usable; construct with NewGrid.
type Grid struct {
	pts   []Point
	cell  float64
	cells map[cellKey][]int32
	min   Point
}

type cellKey struct {
	cx, cy int32
}

// NewGrid indexes pts with the given cell size. Cell size must be positive;
// a non-positive value is replaced by 1.
func NewGrid(pts []Point, cell float64) *Grid {
	if cell <= 0 {
		cell = 1
	}
	min, _ := BoundingBox(pts)
	g := &Grid{
		pts:   pts,
		cell:  cell,
		cells: make(map[cellKey][]int32, len(pts)),
		min:   min,
	}
	for i, p := range pts {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *Grid) key(p Point) cellKey {
	return cellKey{
		cx: int32(math.Floor((p.X - g.min.X) / g.cell)),
		cy: int32(math.Floor((p.Y - g.min.Y) / g.cell)),
	}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// ForEachWithin calls fn with the index of every point within distance r of
// q (inclusive). Iteration order is deterministic: cells are visited in row-
// major order and points within a cell in insertion order.
func (g *Grid) ForEachWithin(q Point, r float64, fn func(i int)) {
	if r < 0 {
		return
	}
	r2 := r * r
	lo := g.key(Point{X: q.X - r, Y: q.Y - r})
	hi := g.key(Point{X: q.X + r, Y: q.Y + r})
	for cy := lo.cy; cy <= hi.cy; cy++ {
		for cx := lo.cx; cx <= hi.cx; cx++ {
			for _, i := range g.cells[cellKey{cx: cx, cy: cy}] {
				if g.pts[i].DistSq(q) <= r2+1e-12 {
					fn(int(i))
				}
			}
		}
	}
}

// Within returns the indices of all points within distance r of q, in the
// deterministic order of ForEachWithin.
func (g *Grid) Within(q Point, r float64) []int {
	var out []int
	g.ForEachWithin(q, r, func(i int) { out = append(out, i) })
	return out
}

// CountWithin returns the number of indexed points within distance r of q.
func (g *Grid) CountWithin(q Point, r float64) int {
	n := 0
	g.ForEachWithin(q, r, func(int) { n++ })
	return n
}

// NearestOther returns the index of the nearest indexed point to q that is
// not the point with index self, and its distance. It returns (-1, +Inf) if
// no such point exists. The search expands ring by ring from q's cell.
func (g *Grid) NearestOther(q Point, self int) (int, float64) {
	best := -1
	bestD2 := math.Inf(1)
	n := len(g.pts)
	if n == 0 || (n == 1 && self == 0) {
		return -1, math.Inf(1)
	}
	// Expand the search radius geometrically until a hit is found, then do
	// one final pass at the confirmed radius to guarantee exactness.
	r := g.cell
	for {
		found := false
		g.ForEachWithin(q, r, func(i int) {
			if i == self {
				return
			}
			found = true
			if d2 := g.pts[i].DistSq(q); d2 < bestD2 {
				bestD2 = d2
				best = i
			}
		})
		if found {
			break
		}
		r *= 2
		if r > 4*maxSpan(g)+4*g.cell {
			return -1, math.Inf(1)
		}
	}
	// A closer point could sit just outside the square of cells scanned;
	// rescan at the exact best distance.
	exact := math.Sqrt(bestD2)
	g.ForEachWithin(q, exact, func(i int) {
		if i == self {
			return
		}
		if d2 := g.pts[i].DistSq(q); d2 < bestD2 {
			bestD2 = d2
			best = i
		}
	})
	return best, math.Sqrt(bestD2)
}

func maxSpan(g *Grid) float64 {
	min, max := BoundingBox(g.pts)
	return math.Max(max.X-min.X, max.Y-min.Y)
}
