// Package stats provides the measurement arithmetic of the experiment
// harness: summary statistics over repeated trials, least-squares fits on
// transformed scales (to check "grows like log n" / "grows like
// log Δ·log n" claims), and fixed-width ASCII table rendering for
// EXPERIMENTS.md.
package stats
