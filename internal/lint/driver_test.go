package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sinrconn/internal/lint"
	"sinrconn/internal/lint/analysis"
	"sinrconn/internal/lint/loader"
)

// TestSuppression pins the //lint:ignore contract end to end: a justified
// directive suppresses its finding, an unjustified one suppresses nothing
// and is flagged itself, an unused justified one is flagged as dead, and
// directives addressed to foreign tools (staticcheck) are left alone.
func TestSuppression(t *testing.T) {
	td := testdata(t)
	ld := loader.New(td)
	root := filepath.Join(td, "src")
	pkg, err := ld.LoadDir(filepath.Join(root, "suppress"), "suppress", root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(ld.Fset, pkg, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string][]string{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d.Message)
	}
	// One errdiscipline finding survives: the one under the unjustified
	// directive. The justified one is suppressed.
	if got := byAnalyzer["errdiscipline"]; len(got) != 1 || !strings.Contains(got[0], "ErrBoom") {
		t.Errorf("errdiscipline findings = %q, want exactly the unjustified-site comparison", got)
	}
	// Two directive findings: the missing justification and the dead
	// directive. The foreign SA4006 directive draws none.
	want := map[string]bool{"requires a justification": false, "suppresses nothing": false}
	for _, msg := range byAnalyzer["lintdirective"] {
		for frag := range want {
			if strings.Contains(msg, frag) {
				want[frag] = true
			}
		}
	}
	if len(byAnalyzer["lintdirective"]) != 2 {
		t.Errorf("lintdirective findings = %q, want exactly 2", byAnalyzer["lintdirective"])
	}
	for frag, seen := range want {
		if !seen {
			t.Errorf("no lintdirective finding containing %q", frag)
		}
	}
}

// TestAnalyzerScope asserts the path-scoped analyzers stay silent outside
// their packages: the suppress fixture trips errdiscipline but lives
// outside the oracle, replay-deterministic, and library-context scopes.
func TestAnalyzerScope(t *testing.T) {
	td := testdata(t)
	ld := loader.New(td)
	root := filepath.Join(td, "src")
	pkg, err := ld.LoadDir(filepath.Join(root, "suppress"), "suppress", root)
	if err != nil {
		t.Fatal(err)
	}
	scoped := []*analysis.Analyzer{lint.OraclePurity, lint.Determinism, lint.CtxDiscipline}
	diags, err := lint.RunPackage(ld.Fset, pkg, scoped)
	if err != nil {
		t.Fatal(err)
	}
	// With errdiscipline absent from the run, even the fixture's
	// //lint:ignore errdiscipline directives count as foreign — silence.
	for _, d := range diags {
		t.Errorf("unexpected finding from %s: %s", d.Analyzer, d.Message)
	}
}
