// Package phys holds the plain physical-layer data types of the SINR model
// — Params, Link, Tx, their pure value methods, the shared sentinel errors,
// and the scalar path-loss helpers PowAlpha/PowAlphaSq.
//
// It is a leaf package: it imports nothing but the standard library, holds
// no state, no caches, no pools, and no goroutines. That makes it the one
// physics package both the fast kernel (internal/sinr) and the naive
// reference oracle (internal/oracle) may import: the oracle needs the data
// types to describe transmissions and links, but must never touch the
// kernel's gain tables or scratch structures. The oraclepurity analyzer
// (internal/lint) enforces exactly that split — internal/oracle may import
// internal/phys but not internal/sinr, and may not call PowAlpha/PowAlphaSq
// or the derived power helpers even from here (naive math.Pow only).
//
// internal/sinr aliases every name in this package, so kernel-side code and
// all callers continue to say sinr.Params, sinr.Link, sinr.Tx.
package phys
