package sinr

// The tile-based far-field interference approximation: the sub-quadratic
// channel-resolution mode of the kernel. The exact physics resolves every
// (sender, listener) pair — O(n²) per slot — which caps the instance sizes
// the gain table (and, beyond its memory bound, the tableless fallback) can
// serve. Far interference under the physical model decays as d^{-α}, so
// distant senders are aggregated per spatial tile:
//
//   - A uniform tile grid covers the instance's bounding box. The tile side
//     is never below 1 — the paper's min-distance normalization, which every
//     internal/workload generator guarantees — so a tile holds O(cell²)
//     nodes; the side is auto-sized above that floor to balance near-ring
//     and far-tile work (see FarCell).
//   - Per slot, one O(#senders) pass accumulates each occupied tile's total
//     transmit mass Σ P_w, its power-weighted centroid, and its strongest
//     single power.
//   - Interference at a receiver is computed exactly for senders in the
//     near ring (tiles within Chebyshev radius k of the receiver's tile)
//     and approximated as mass · d(centroid, receiver)^{-α} for far tiles.
//
// Worst-case relative error. A far tile lies at tile-index distance ≥ k+1,
// so every point of it — its centroid included — is at Euclidean distance
// ≥ k·cell from the receiver, while any sender in the tile is within the
// tile diagonal cell·√2 of the centroid. Writing D for the centroid
// distance, each sender's true distance lies in [D − cell√2, D + cell√2] ⊆
// [D(1 − √2/k), D(1 + √2/k)], hence each approximated gain is within a
// factor (1 ± √2/k)^α of the truth and the aggregate far interference
// carries relative error at most
//
//	ε(k, α) = (1 + √2/k)^α − 1
//
// independent of the tile side (both the diagonal and the near radius scale
// with it). WithMaxRelError(ε) on sinrconn.Network inverts this bound:
// k(ε, α) = ⌈√2 / ((1+ε)^{1/α} − 1)⌉. The signal term is always exact and
// noise is exact, so an approximate SINR s brackets the exact value in
// [s·(1−ε), s·(1+ε)]; SINRFeasibleFarBuf turns that bracket into the
// (1±ε) guard band at the β cut. DESIGN.md §7 carries the full derivation;
// internal/oracle/farfield.go is the naive reference implementation the
// differential suite pins this file against.
//
// Winner exactness. Channel decode must identify the strongest sender at a
// listener; an ε-perturbed gain must never crown the wrong winner. Resolve
// therefore refines: a far tile whose best possible single received power
// (its max power times an upper gain bound, see refineFac) could beat the
// best exact candidate found so far is scanned sender by sender instead of
// aggregated. The decoded winner and its received power are thus always
// exact; only the interference sum carries the ε bound.

import (
	"fmt"
	"math"
	"sync"

	"sinrconn/internal/geom"
)

// minFarRing is the smallest admissible near-ring radius: below k = 2 the
// far-distance lower bound k·cell no longer dominates the tile diagonal
// cell·√2 and the error bound degenerates.
const minFarRing = 2

// Far is the far-field channel-resolution interface shared by the flat tile
// grid (*FarField) and the hierarchical quadtree (*QuadTree, quadtree.go).
// A Far value is an immutable plan over one Instance — safe to share across
// concurrent engines and validators — that hands out per-slot FarResolver
// state. Every consumer (sim.Config.FarField, tree validation, the session
// layer) programs against this interface so the two engines stay drop-in
// interchangeable.
type Far interface {
	// Instance returns the instance the plan was built over.
	Instance() *Instance
	// MaxRelError returns the requested worst-case relative interference
	// error bound ε.
	MaxRelError() float64
	// CertifiedMaxRelError returns the bound the plan actually certifies,
	// ≤ MaxRelError (tighter when the plan quantizes its geometry).
	CertifiedMaxRelError() float64
	// NewResolver allocates fresh per-slot state bound to the plan, for
	// long-lived users (engines).
	NewResolver() FarResolver
	// AcquireResolver borrows pooled per-slot state for transient users
	// (validators); pair with ReleaseResolver.
	AcquireResolver() FarResolver
	// ReleaseResolver returns a resolver borrowed with AcquireResolver.
	ReleaseResolver(FarResolver)
}

// FarResolver is one concurrent user's per-slot view of a Far plan: the
// mutable accumulator state plus the channel queries that read it.
// Accumulate must be called (serially) before Resolve/LinkSINR for the same
// sender set; the queries themselves are read-only on the resolver and safe
// to issue from concurrent workers. Implementations live in this package
// (the unexported method pins that down).
type FarResolver interface {
	// Accumulate ingests one slot's sender set into the plan's per-tile or
	// per-node aggregates. O(len(txs) + occupied), allocation-free.
	Accumulate(txs []Tx)
	// Resolve computes channel reception at listener v against the
	// accumulated set: the strongest sender (exact — see the refinement
	// notes on the implementations), its exact received power, and the
	// total received power with far senders approximated within the
	// certified ε. saturated reports a sender co-located with the listener;
	// best is -1 when no sender is audible.
	Resolve(v int, txs []Tx) (best int, bestRP, total float64, saturated bool)
	// LinkSINR returns the approximate SINR of link l whose sender
	// transmits with power pu among the accumulated set, the link's own
	// sender excluded from interference. The exact SINR lies within
	// [·(1−ε), ·(1+ε)] of the returned value for the plan's certified ε.
	LinkSINR(txs []Tx, l Link, pu float64) float64
	// distinctSenders rejects a link set with a repeated sender
	// (ErrDuplicateSender) — the contract the tiled aggregation needs —
	// using the resolver's stamped mark array (allocation-free).
	distinctSenders(links []Link) error
}

// maxFarTiles caps the tile-grid size so degenerate geometries (the
// exponential chain's astronomically wide bounding box) cannot demand an
// unbounded scratch allocation. When the cap binds, tiles grow — more of
// the instance lands in the near ring and resolution degrades gracefully
// toward the exact path.
const maxFarTiles = 1 << 18

// maxFarPlans bounds the per-instance plan cache (one plan per distinct ε).
const maxFarPlans = 8

// FarK returns the near-ring radius (in tiles) guaranteeing relative
// interference error at most maxRelErr at path-loss exponent alpha:
// the smallest k with (1 + √2/k)^α − 1 ≤ ε, clamped to minFarRing.
func FarK(alpha, maxRelErr float64) int {
	d := math.Pow(1+maxRelErr, 1/alpha) - 1
	if d <= 0 {
		return math.MaxInt32
	}
	k := int(math.Ceil(math.Sqrt2 / d))
	if k < minFarRing {
		k = minFarRing
	}
	return k
}

// FarCertifiedErr returns ε(k, α) = (1 + √2/k)^α − 1, the worst-case
// relative error of far-tile aggregation at ring radius k. It is the bound
// actually certified by a plan — at most the ε requested, usually tighter
// because k is integral.
func FarCertifiedErr(k int, alpha float64) float64 {
	return math.Pow(1+math.Sqrt2/float64(k), alpha) - 1
}

// FarCell returns the tile side for an n-node instance with bounding-box
// extents w×h at ring radius k. The side balances the two per-listener
// costs — the near ring scans ~(2k+1)²·cell² worth of senders, the far pass
// visits up to w·h/cell² occupied tiles — which yields cell⁴ ∝
// (w·h)²/((2k+1)²·n); it is floored at 1, the model's minimum pairwise
// distance (a tile never subdivides the normalization scale), and grown
// when the grid would exceed maxFarTiles.
func FarCell(n int, w, h float64, k int) float64 {
	area := w * h
	cell := math.Sqrt(math.Sqrt(math.Sqrt2 * area * area / (float64(2*k+1) * float64(2*k+1) * float64(n))))
	if !(cell > 1) { // also catches NaN from a degenerate (zero-area) box
		cell = 1
	}
	for i := 0; i < 64; i++ {
		cols := math.Floor(w/cell) + 1
		rows := math.Floor(h/cell) + 1
		if cols*rows <= maxFarTiles {
			break
		}
		cell *= math.Sqrt(cols * rows / maxFarTiles)
	}
	return cell
}

// FarField is an immutable far-field approximation plan over one Instance:
// the tile grid, the node→tile assignment, and the ring radius k derived
// from the requested error bound. Build one with Instance.FarField (plans
// are cached per ε on the instance); per-slot state lives in a FarScratch
// so one plan serves concurrent engines and validators.
type FarField struct {
	in        *Instance
	maxRelErr float64 // requested bound
	certErr   float64 // certified bound ε(k, α) ≤ maxRelErr
	k         int
	cell      float64
	cols      int
	rows      int
	ox, oy    float64
	tileOf    []int32
	// refineFac bounds the gain anywhere in a far tile relative to the gain
	// at its centroid: d ≥ k·cell and member distance ≥ d − cell√2 give
	// member gain ≤ centroid gain · (k/(k−√2))^α. Resolve uses it to decide
	// which far tiles could hide the strongest sender and must be scanned
	// exactly.
	refineFac float64

	// scratches pools per-slot scratch state for transient users (the
	// validators); long-lived users (engines) allocate their own via
	// NewScratch. A pointer so plan values can be copied by extendTo, which
	// installs a fresh pool (scratch sizes depend on the plan's node
	// count).
	scratches *sync.Pool
}

// newFarField derives the plan. Kept in lockstep with the independent
// naive derivation in internal/oracle/farfield.go — the differential suite
// asserts the two agree on (k, cell, grid dims, binning) exactly.
func newFarField(in *Instance, maxRelErr float64) (*FarField, error) {
	if !(maxRelErr > 0) || math.IsInf(maxRelErr, 1) {
		return nil, fmt.Errorf("sinr: far-field max relative error must be positive and finite, got %v", maxRelErr)
	}
	n := len(in.pts)
	alpha := in.params.Alpha
	k := FarK(alpha, maxRelErr)
	lo, hi := geom.BoundingBox(in.pts)
	w, h := hi.X-lo.X, hi.Y-lo.Y
	cell := FarCell(n, w, h, k)
	f := &FarField{
		in:        in,
		maxRelErr: maxRelErr,
		certErr:   FarCertifiedErr(k, alpha),
		k:         k,
		cell:      cell,
		cols:      int(math.Floor(w/cell)) + 1,
		rows:      int(math.Floor(h/cell)) + 1,
		ox:        lo.X,
		oy:        lo.Y,
		refineFac: math.Pow(float64(k)/(float64(k)-math.Sqrt2), alpha),
	}
	f.tileOf = make([]int32, n)
	for i, p := range in.pts {
		f.tileOf[i] = f.bin(p)
	}
	f.scratches = &sync.Pool{New: func() any { return f.NewScratch() }}
	return f, nil
}

// NewResolver implements Far: fresh per-slot state for an engine.
func (f *FarField) NewResolver() FarResolver { return f.NewScratch() }

// AcquireResolver borrows a per-slot scratch from the plan's pool; pair
// with ReleaseResolver. Accumulate fully resets a scratch, so pooled reuse
// is safe across unrelated callers.
func (f *FarField) AcquireResolver() FarResolver {
	return f.scratches.Get().(*FarScratch)
}

// ReleaseResolver returns a scratch borrowed with AcquireResolver.
func (f *FarField) ReleaseResolver(sc FarResolver) {
	f.scratches.Put(sc.(*FarScratch))
}

// bin maps a point to its tile index (row-major), clamping boundary points
// into the grid.
func (f *FarField) bin(p geom.Point) int32 {
	tx := int(math.Floor((p.X - f.ox) / f.cell))
	ty := int(math.Floor((p.Y - f.oy) / f.cell))
	if tx < 0 {
		tx = 0
	} else if tx >= f.cols {
		tx = f.cols - 1
	}
	if ty < 0 {
		ty = 0
	} else if ty >= f.rows {
		ty = f.rows - 1
	}
	return int32(ty*f.cols + tx)
}

// Instance returns the instance the plan was built over.
func (f *FarField) Instance() *Instance { return f.in }

// K returns the near-ring radius in tiles.
func (f *FarField) K() int { return f.k }

// Cell returns the tile side.
func (f *FarField) Cell() float64 { return f.cell }

// Tiles returns the total tile count of the grid.
func (f *FarField) Tiles() int { return f.cols * f.rows }

// MaxRelError returns the requested error bound.
func (f *FarField) MaxRelError() float64 { return f.maxRelErr }

// CertifiedMaxRelError returns the certified worst-case relative
// interference error ε(k, α) ≤ MaxRelError().
func (f *FarField) CertifiedMaxRelError() float64 { return f.certErr }

// nearDominanceNum/nearDominanceDen express the ¼ area fraction above which
// the flat grid's near ring does so much exact work that the whole plan is
// no faster than exact resolution.
const (
	nearDominanceNum = 1
	nearDominanceDen = 4
)

// NearDominated reports that the near ring spans so much of the grid that
// the plan does strictly more work than exact resolution: a listener's
// (2k+1)² ring covers ≥ ¼ of the cols×rows tiles, so most senders are
// scanned exactly anyway and the far pass is pure overhead on top. This is
// the tight-ε failure mode of a flat grid (one global k for the tightest
// listener — the n=4096, ε=0.5 regression in BENCH_farfield.json); the
// session layer falls back to exact resolution when it holds, and the
// hierarchical quadtree (quadtree.go) is the engine that keeps tight ε
// sub-quadratic. The threshold is a cost-model constant, not a certified
// bound: ¼ leaves the near scan's extra bookkeeping (tile bucketing, ring
// walk) comfortably below the far pass's savings on the workload matrix.
func (f *FarField) NearDominated() bool {
	ring := 2*f.k + 1
	return ring*ring*nearDominanceDen >= f.cols*f.rows*nearDominanceNum
}

// extendTo reuses the plan for an instance grown by Extend: when every
// appended point falls inside the existing grid, only the new points are
// binned (O(new)); otherwise the grown instance rebuilds its plan lazily.
func (f *FarField) extendTo(out *Instance) (*FarField, bool) {
	n := len(f.in.pts)
	m := len(out.pts)
	for _, p := range out.pts[n:] {
		if p.X < f.ox || p.Y < f.oy ||
			p.X > f.ox+float64(f.cols)*f.cell || p.Y > f.oy+float64(f.rows)*f.cell {
			return nil, false
		}
	}
	nf := *f
	nf.in = out
	nf.tileOf = make([]int32, m)
	copy(nf.tileOf, f.tileOf)
	for i := n; i < m; i++ {
		nf.tileOf[i] = nf.bin(out.pts[i])
	}
	nf.scratches = &sync.Pool{New: func() any { return nf.NewScratch() }}
	return &nf, true
}

// FarField returns the plan for the given error bound, building and caching
// it on first use (one plan per distinct ε, read-only after build — safe to
// share across concurrent runs like the gain table).
func (in *Instance) FarField(maxRelErr float64) (*FarField, error) {
	in.ffMu.Lock()
	defer in.ffMu.Unlock()
	if f, ok := in.ff[maxRelErr]; ok {
		return f, nil
	}
	f, err := newFarField(in, maxRelErr)
	if err != nil {
		return nil, err
	}
	if in.ff == nil {
		in.ff = make(map[float64]*FarField)
	}
	if len(in.ff) >= maxFarPlans {
		// Evict an arbitrary plan so a wide ε sweep keeps hitting the
		// cache instead of rebuilding the newest ε on every use.
		//lint:ignore determinism eviction picks which plan is rebuilt, never its values; plans are pure functions of (instance, ε)
		for eps := range in.ff {
			delete(in.ff, eps)
			break
		}
	}
	in.ff[maxRelErr] = f
	return f, nil
}

// FarScratch is the per-slot mutable state of a plan: tile accumulators and
// the sender bucketing. One scratch belongs to one concurrent user (an
// engine, a validator call); all buffers are allocated once at NewScratch
// so the per-slot Accumulate/Resolve cycle allocates nothing.
type FarScratch struct {
	f     *FarField
	epoch uint32
	// Per-tile accumulators, valid where stamp == epoch.
	stamp []uint32
	mass  []float64 // Σ P_w over the tile's senders
	cenX  []float64 // power-weighted centroid (filled by Accumulate)
	cenY  []float64
	pmax  []float64 // strongest single power in the tile
	start []int32   // tile's offset into order
	fill  []int32
	order []int32 // tx indices bucketed by tile
	// active lists the occupied tiles in first-touch (tx) order.
	active []int32
	// senderMark/markEpoch implement the zero-alloc duplicate-sender check
	// of SINRFeasibleFarBuf (stamped per call, never cleared).
	senderMark []uint32
	markEpoch  uint32
	// Compact per-active-tile mirrors, filled by Accumulate so the hot far
	// loop reads sequential memory and never divides a tile index back into
	// coordinates: entry i describes tile active[i].
	actX, actY       []int32
	actMass, actPmax []float64
	actCenX, actCenY []float64
}

// NewScratch allocates per-slot state for the plan.
func (f *FarField) NewScratch() *FarScratch {
	t := f.Tiles()
	n := len(f.in.pts)
	capActive := t
	if n < capActive {
		capActive = n
	}
	return &FarScratch{
		f:          f,
		stamp:      make([]uint32, t),
		mass:       make([]float64, t),
		cenX:       make([]float64, t),
		cenY:       make([]float64, t),
		pmax:       make([]float64, t),
		start:      make([]int32, t),
		fill:       make([]int32, t),
		order:      make([]int32, n),
		active:     make([]int32, 0, capActive),
		senderMark: make([]uint32, n),
		actX:       make([]int32, 0, capActive),
		actY:       make([]int32, 0, capActive),
		actMass:    make([]float64, 0, capActive),
		actPmax:    make([]float64, 0, capActive),
		actCenX:    make([]float64, 0, capActive),
		actCenY:    make([]float64, 0, capActive),
	}
}

// Accumulate implements FarResolver over the scratch's own plan.
func (sc *FarScratch) Accumulate(txs []Tx) { sc.f.Accumulate(txs, sc) }

// Resolve implements FarResolver over the scratch's own plan.
func (sc *FarScratch) Resolve(v int, txs []Tx) (best int, bestRP, total float64, saturated bool) {
	return sc.f.Resolve(v, txs, sc)
}

// LinkSINR implements FarResolver over the scratch's own plan.
func (sc *FarScratch) LinkSINR(txs []Tx, l Link, pu float64) float64 {
	return sc.f.LinkSINR(txs, l, pu, sc)
}

// distinctSenders implements FarResolver via the shared mark-array check.
func (sc *FarScratch) distinctSenders(links []Link) error {
	return checkDistinctSenders(sc.senderMark, &sc.markEpoch, links)
}

// checkDistinctSenders rejects a link set with a repeated sender: a tiled
// (or pyramid) evaluation aggregates each sender's power exactly once, so
// a sender appearing on two links would be mis-excluded (and could
// overflow the node-sized bucketing). The exact check sums duplicates
// fine, so reject them here rather than diverge silently — via a stamped
// mark array, keeping the validation path allocation-free. Per-slot
// schedules satisfy the contract by construction (one up-link per node per
// slot). Shared by both resolvers' distinctSenders methods.
func checkDistinctSenders(mark []uint32, epoch *uint32, links []Link) error {
	*epoch++
	if *epoch == 0 {
		for i := range mark {
			mark[i] = 0
		}
		*epoch = 1
	}
	for _, l := range links {
		if mark[l.From] == *epoch {
			return ErrDuplicateSender
		}
		mark[l.From] = *epoch
	}
	return nil
}

// nearWindow returns the clamped tile window of node v's near ring —
// Chebyshev radius k around v's tile, intersected with the grid. Shared by
// Resolve and LinkSINR so engine decode and the feasibility check can
// never diverge on ring semantics.
func (f *FarField) nearWindow(v int) (tx0, tx1, ty0, ty1 int) {
	vt := int(f.tileOf[v])
	vx, vy := vt%f.cols, vt/f.cols
	tx0, tx1 = vx-f.k, vx+f.k
	ty0, ty1 = vy-f.k, vy+f.k
	if tx0 < 0 {
		tx0 = 0
	}
	if ty0 < 0 {
		ty0 = 0
	}
	if tx1 >= f.cols {
		tx1 = f.cols - 1
	}
	if ty1 >= f.rows {
		ty1 = f.rows - 1
	}
	return tx0, tx1, ty0, ty1
}

// Accumulate ingests one slot's sender set: per-tile mass, power-weighted
// centroid, strongest power, and the tile-bucketed tx order. Must be called
// before Resolve/LinkSINR for the same txs; runs in O(len(txs) + occupied
// tiles) and allocates nothing.
//sinr:hotpath
func (f *FarField) Accumulate(txs []Tx, sc *FarScratch) {
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: invalidate all stamps once
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	ep := sc.epoch
	sc.active = sc.active[:0]
	for i := range txs {
		t := f.tileOf[txs[i].Sender]
		if sc.stamp[t] != ep {
			sc.stamp[t] = ep
			sc.mass[t], sc.cenX[t], sc.cenY[t], sc.pmax[t] = 0, 0, 0, 0
			sc.fill[t] = 0
			sc.active = append(sc.active, t)
		}
		p := txs[i].Power
		pt := f.in.pts[txs[i].Sender]
		sc.mass[t] += p
		sc.cenX[t] += p * pt.X
		sc.cenY[t] += p * pt.Y
		if p > sc.pmax[t] {
			sc.pmax[t] = p
		}
		sc.fill[t]++
	}
	ofs := int32(0)
	cols := int32(f.cols)
	sc.actX, sc.actY = sc.actX[:0], sc.actY[:0]
	sc.actMass, sc.actPmax = sc.actMass[:0], sc.actPmax[:0]
	sc.actCenX, sc.actCenY = sc.actCenX[:0], sc.actCenY[:0]
	for _, t := range sc.active {
		sc.start[t] = ofs
		ofs += sc.fill[t]
		sc.fill[t] = 0
		if m := sc.mass[t]; m > 0 {
			// The power-weighted centroid lies in the convex hull of the
			// tile's senders, hence inside the tile — the error bound needs
			// only that. Zero-mass tiles keep a (0,0) centroid; they
			// contribute nothing and are skipped.
			sc.cenX[t] /= m
			sc.cenY[t] /= m
		}
		sc.actX = append(sc.actX, t%cols)
		sc.actY = append(sc.actY, t/cols)
		sc.actMass = append(sc.actMass, sc.mass[t])
		sc.actPmax = append(sc.actPmax, sc.pmax[t])
		sc.actCenX = append(sc.actCenX, sc.cenX[t])
		sc.actCenY = append(sc.actCenY, sc.cenY[t])
	}
	for i := range txs {
		t := f.tileOf[txs[i].Sender]
		sc.order[sc.start[t]+sc.fill[t]] = int32(i)
		sc.fill[t]++
	}
}

// Resolve computes channel reception at listener v against the accumulated
// sender set: the strongest sender (exact — see the refinement note in the
// package comment), its exact received power, and the total received power
// with far tiles approximated within the certified ε. saturated reports a
// sender co-located with the listener (zero distance), which drowns the
// channel. best is -1 when no sender is audible.
//sinr:hotpath
func (f *FarField) Resolve(v int, txs []Tx, sc *FarScratch) (best int, bestRP, total float64, saturated bool) {
	in := f.in
	alpha := in.params.Alpha
	pv := in.pts[v]
	best = -1
	tx0, tx1, ty0, ty1 := f.nearWindow(v)
	ep := sc.epoch

	// Near ring: exact, sender by sender.
	for ty := ty0; ty <= ty1; ty++ {
		base := ty * f.cols
		for tx := tx0; tx <= tx1; tx++ {
			t := base + tx
			if sc.stamp[t] != ep {
				continue
			}
			for _, oi := range sc.order[sc.start[t] : sc.start[t]+sc.fill[t]] {
				tr := &txs[oi]
				d2 := pv.DistSq(in.pts[tr.Sender])
				if d2 == 0 {
					return -1, 0, 0, true
				}
				rp := tr.Power / PowAlphaSq(d2, alpha)
				total += rp
				if rp > bestRP {
					bestRP = rp
					best = int(oi)
				}
			}
		}
	}

	// Far tiles: centroid-mass approximation, refined exactly whenever the
	// tile could hide a sender outreceiving the best candidate so far (the
	// bound only shrinks as best grows, so skipped tiles stay safe). The
	// loop walks the compact active-tile arrays: sequential reads, no
	// index-to-coordinate division.
	cx0, cx1 := int32(tx0), int32(tx1)
	cy0, cy1 := int32(ty0), int32(ty1)
	for i, ax := range sc.actX {
		if ay := sc.actY[i]; ax >= cx0 && ax <= cx1 && ay >= cy0 && ay <= cy1 {
			continue // near ring, already counted
		}
		m := sc.actMass[i]
		if m == 0 {
			continue
		}
		dx := pv.X - sc.actCenX[i]
		dy := pv.Y - sc.actCenY[i]
		g := 1 / PowAlphaSq(dx*dx+dy*dy, alpha)
		if sc.actPmax[i]*g*f.refineFac > bestRP {
			t := sc.active[i]
			for _, oi := range sc.order[sc.start[t] : sc.start[t]+sc.fill[t]] {
				tr := &txs[oi]
				rp := tr.Power / PowAlphaSq(pv.DistSq(in.pts[tr.Sender]), alpha)
				total += rp
				if rp > bestRP {
					bestRP = rp
					best = int(oi)
				}
			}
		} else {
			total += m * g
		}
	}
	return best, bestRP, total, false
}

// LinkSINR returns the far-field SINR of link l whose sender transmits with
// power pu among the accumulated sender set: exact signal, near-ring-exact
// interference, far tiles approximated (never refined — no winner is
// sought). The link's own sender is excluded from interference exactly in
// the near ring and by mass subtraction in its far tile; txs must contain
// at most one entry per sender (the per-slot schedule invariant). The
// exact SINR lies within [·(1−ε), ·(1+ε)] of the returned value for
// ε = CertifiedMaxRelError.
//sinr:hotpath
func (f *FarField) LinkSINR(txs []Tx, l Link, pu float64, sc *FarScratch) float64 {
	in := f.in
	alpha := in.params.Alpha
	u, v := l.From, l.To
	pv := in.pts[v]
	// Signal computed directly from the fast path loss: in.Gain would
	// lazily build the O(n²) gain table, the quadratic setup this mode
	// exists to avoid (identical values — pu/ℓ^α either way).
	signal := pu / PowAlphaSq(pv.DistSq(in.pts[u]), alpha)
	if signal == 0 {
		return 0
	}
	ut := int(f.tileOf[u])
	tx0, tx1, ty0, ty1 := f.nearWindow(v)
	ep := sc.epoch
	interference := 0.0
	for ty := ty0; ty <= ty1; ty++ {
		base := ty * f.cols
		for tx := tx0; tx <= tx1; tx++ {
			t := base + tx
			if sc.stamp[t] != ep {
				continue
			}
			for _, oi := range sc.order[sc.start[t] : sc.start[t]+sc.fill[t]] {
				tr := &txs[oi]
				if tr.Sender == u {
					continue
				}
				d2 := pv.DistSq(in.pts[tr.Sender])
				interference += tr.Power / PowAlphaSq(d2, alpha)
			}
		}
	}
	cx0, cx1 := int32(tx0), int32(tx1)
	cy0, cy1 := int32(ty0), int32(ty1)
	for i, ax := range sc.actX {
		if ay := sc.actY[i]; ax >= cx0 && ax <= cx1 && ay >= cy0 && ay <= cy1 {
			continue
		}
		m := sc.actMass[i]
		if int(sc.active[i]) == ut {
			// The link's own sender sits in this far tile: remove its share
			// of the mass (the centroid stays inside the tile, so the error
			// bound is unaffected).
			m -= pu
			if m <= 0 {
				continue
			}
		}
		if m == 0 {
			continue
		}
		dx := pv.X - sc.actCenX[i]
		dy := pv.Y - sc.actCenY[i]
		interference += m / PowAlphaSq(dx*dx+dy*dy, alpha)
	}
	return signal / (in.params.Noise + interference)
}

// SINRFeasibleFarBuf is the far-field counterpart of SINRFeasibleBuf: it
// reports whether every link in links, transmitting concurrently with the
// given powers, clears the SINR threshold β under the (1±ε) guard band the
// approximation admits at the cut. The check is complete — a schedule the
// exact physics accepts is never rejected, because an exactly-feasible
// link's approximate SINR is at least β/(1+ε) — and ε-sound: a rejection
// certifies exact infeasibility, while an acceptance certifies exact SINR
// ≥ β·(1−ε)/(1+ε) on every link. Nothing flips silently: the band is fixed
// by f.CertifiedMaxRelError and ε = 0 (f == nil) is the exact check. The
// check works identically for both far-field engines — f and sc may be a
// flat-grid or a quadtree plan/resolver pair (sc must come from f).
//sinr:hotpath
func (in *Instance) SINRFeasibleFarBuf(links []Link, powers []float64, f Far, scratch []Tx, sc FarResolver) (bool, error) {
	if f == nil {
		return in.SINRFeasibleBuf(links, powers, scratch)
	}
	if len(links) != len(powers) {
		return false, ErrMismatchedLengths
	}
	if err := sc.distinctSenders(links); err != nil {
		return false, err
	}
	txs := scratch[:0]
	if cap(txs) < len(links) {
		//lint:ignore hotpathalloc cold capacity-miss fallback only; a right-sized caller scratch never reaches this make
		txs = make([]Tx, 0, len(links))
	}
	for i, l := range links {
		//lint:ignore hotpathalloc cannot grow: capacity reserved by the check above; steady state pinned by TestSINRFeasibleFarBufZeroAlloc
		txs = append(txs, Tx{Sender: l.From, Power: powers[i]})
	}
	sc.Accumulate(txs)
	cut := in.params.Beta - 1e-9
	band := 1 + f.CertifiedMaxRelError()
	for i, l := range links {
		if sc.LinkSINR(txs, l, powers[i])*band < cut {
			return false, nil
		}
	}
	return true, nil
}
