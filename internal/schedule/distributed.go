package schedule

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"sinrconn/internal/faults"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
)

// DistConfig tunes the distributed scheduler.
type DistConfig struct {
	// Q0 is the initial per-link transmission probability (default 0.35).
	Q0 float64
	// Decay multiplies a link's probability after an unsuccessful slot-pair
	// (default 0.92). Values in (0,1].
	Decay float64
	// QMin floors the probability so progress never stalls (default 0.02).
	QMin float64
	// MaxSlotPairs caps the run; exceeded means ErrIncomplete
	// (default 400·(len(links)+1)).
	MaxSlotPairs int
	// Seed derives all per-node randomness.
	Seed int64
	// Workers is passed to the sim engine. Ignored when Pool is set.
	Workers int
	// Pool, if non-nil, is a shared persistent sim worker pool the
	// scheduler's engine borrows instead of spawning its own.
	Pool *sim.Pool
	// FarField, if non-nil, runs the scheduler's engine under a far-field
	// channel approximation — flat grid or quadtree (see
	// sim.Config.FarField).
	FarField sinr.Far
	// Adaptive, with FarField set, lets the engine pick exact or far-field
	// resolution per slot from the live sender count (see
	// sim.Config.Adaptive).
	Adaptive bool
	// Observer, if non-nil, receives a sim.SlotEvent after every scheduler
	// engine slot (the serving layer's streaming hook). Diagnostic only.
	Observer sim.Observer
	// Injector, if non-nil, is the scheduler engine's fault-injection
	// hook (see internal/faults). Injected faults only stall; schedules
	// stay bit-identical to an injector-free run.
	Injector faults.Injector
}

func (c *DistConfig) defaults(nLinks int) {
	if c.Q0 <= 0 || c.Q0 > 1 {
		c.Q0 = 0.35
	}
	if c.Decay <= 0 || c.Decay > 1 {
		c.Decay = 0.92
	}
	if c.QMin <= 0 {
		c.QMin = 0.02
	}
	if c.MaxSlotPairs <= 0 {
		c.MaxSlotPairs = 400 * (nLinks + 1)
	}
}

// ErrIncomplete reports that the distributed scheduler hit its slot budget
// with links still unscheduled.
var ErrIncomplete = errors.New("schedule: distributed scheduler did not finish within budget")

// Result is the outcome of the distributed scheduler.
type Result struct {
	// Slot maps each link to the 1-based compacted slot it was scheduled
	// in. Links that share a slot succeeded in the same slot-pair and are
	// therefore SINR-feasible together under the assignment used.
	Slot map[sinr.Link]int
	// NumSlots is the compacted schedule length (number of distinct slots).
	NumSlots int
	// SlotPairs is the makespan: slot-pairs of channel time consumed.
	SlotPairs int
	// Stats carries the engine counters.
	Stats sim.Stats
}

// Distributed schedules links under assignment pa using contention
// resolution with acknowledgment (the link transmits, its receiver answers
// on the dual; only doubly-confirmed links count, per Appendix C). Each
// pending link transmits with an adaptive probability that decays on
// failure. Multiple pending links sharing a sender are multiplexed
// randomly; half-duplex conflicts are resolved by the physics itself.
// ctx is checked between slot-pairs; cancellation aborts the run with an
// error wrapping ctx.Err().
func Distributed(ctx context.Context, in *sinr.Instance, links []sinr.Link, pa sinr.Assignment, cfg DistConfig) (*Result, error) {
	cfg.defaults(len(links))
	if len(links) == 0 {
		return &Result{Slot: map[sinr.Link]int{}}, nil
	}
	for _, l := range links {
		if l.From == l.To {
			return nil, fmt.Errorf("schedule: self-loop link %v", l)
		}
	}

	n := in.Len()
	nodes := make([]*schedNode, n)
	master := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = master.Int63()
	}
	for i := 0; i < n; i++ {
		nodes[i] = &schedNode{
			id:  i,
			in:  in,
			pa:  pa,
			cfg: cfg,
			rng: rand.New(rand.NewSource(seeds[i])),
		}
	}
	for _, l := range links {
		nodes[l.From].pending = append(nodes[l.From].pending, pendingLink{l: l, q: cfg.Q0})
	}

	procs := make([]sim.Protocol, n)
	for i := range nodes {
		procs[i] = nodes[i]
	}
	eng, err := sim.NewEngine(in, procs, sim.Config{Workers: cfg.Workers, Seed: cfg.Seed, Pool: cfg.Pool, FarField: cfg.FarField, Adaptive: cfg.Adaptive, Observer: cfg.Observer, Injector: cfg.Injector})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	done := func() bool {
		for _, nd := range nodes {
			if len(nd.pending) > 0 {
				return false
			}
		}
		return true
	}
	// Two engine slots per slot-pair; stop as soon as every pending queue
	// drains (checked at pair boundaries).
	pairs := 0
	for pairs < cfg.MaxSlotPairs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("schedule: distributed scheduler canceled: %w", err)
		}
		eng.Step()
		eng.Step()
		pairs++
		if done() {
			break
		}
	}
	// One more pair lets senders consume the final ack inbox.
	eng.Step()
	eng.Step()

	res := &Result{Slot: make(map[sinr.Link]int, len(links)), SlotPairs: pairs, Stats: eng.Stats()}
	if !done() {
		return nil, fmt.Errorf("%w: %d pairs", ErrIncomplete, pairs)
	}
	raw := make(map[sinr.Link]int, len(links))
	for _, nd := range nodes {
		for l, pair := range nd.scheduled {
			raw[l] = pair
		}
	}
	if len(raw) != len(links) {
		return nil, fmt.Errorf("schedule: %d of %d links recorded", len(raw), len(links))
	}
	// Compact distinct slot-pair stamps to 1..k.
	distinct := map[int]struct{}{}
	for _, s := range raw {
		distinct[s] = struct{}{}
	}
	stamps := make([]int, 0, len(distinct))
	for s := range distinct {
		stamps = append(stamps, s)
	}
	sortInts(stamps)
	remap := make(map[int]int, len(stamps))
	for i, s := range stamps {
		remap[s] = i + 1
	}
	for l, s := range raw {
		res.Slot[l] = remap[s]
	}
	res.NumSlots = len(stamps)
	return res, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

type pendingLink struct {
	l sinr.Link
	q float64
}

// schedNode multiplexes a node's pending out-links and its ack duties.
type schedNode struct {
	id        int
	in        *sinr.Instance
	pa        sinr.Assignment
	cfg       DistConfig
	rng       *rand.Rand
	pending   []pendingLink
	scheduled map[sinr.Link]int // link → slot-pair index
	// lastTx is the index into pending of the link transmitted in the
	// current data slot, or -1.
	lastTx int
	// ackTo, when ≥ 0, is the node to acknowledge in the current ack slot.
	ackTo int
}

var _ sim.Protocol = (*schedNode)(nil)

// Step implements sim.Protocol. Even engine slots are data slots, odd are
// ack slots.
func (nd *schedNode) Step(slot int, inbox []sim.Delivery) sim.Action {
	if slot%2 == 0 {
		return nd.dataSlot(slot, inbox)
	}
	return nd.ackSlot(inbox)
}

func (nd *schedNode) dataSlot(slot int, inbox []sim.Delivery) sim.Action {
	// Resolve the previous pair: did our transmission get acknowledged?
	if nd.lastTx >= 0 && nd.lastTx < len(nd.pending) {
		p := nd.pending[nd.lastTx]
		acked := false
		for _, d := range inbox {
			if d.Msg.Kind == sim.KindAck && d.Msg.To == nd.id && d.Msg.From == p.l.To {
				acked = true
				break
			}
		}
		if acked {
			if nd.scheduled == nil {
				nd.scheduled = make(map[sinr.Link]int)
			}
			nd.scheduled[p.l] = slot/2 - 1
			nd.pending = append(nd.pending[:nd.lastTx], nd.pending[nd.lastTx+1:]...)
		} else {
			nd.pending[nd.lastTx].q = maxf(p.q*nd.cfg.Decay, nd.cfg.QMin)
		}
	}
	nd.lastTx = -1
	nd.ackTo = -1
	if len(nd.pending) == 0 {
		// Stay listening: we may still need to ack other links' data.
		return sim.Listen()
	}
	pick := nd.rng.Intn(len(nd.pending))
	p := nd.pending[pick]
	if nd.rng.Float64() < p.q {
		nd.lastTx = pick
		return sim.Transmit(nd.pa.Power(nd.in, p.l), sim.Message{
			Kind: sim.KindData,
			From: nd.id,
			To:   p.l.To,
			Tag:  slot / 2,
		})
	}
	return sim.Listen()
}

func (nd *schedNode) ackSlot(inbox []sim.Delivery) sim.Action {
	// If we decoded a data message addressed to us, acknowledge it on the
	// dual link with the same assignment's power.
	for _, d := range inbox {
		if d.Msg.Kind == sim.KindData && d.Msg.To == nd.id {
			dual := sinr.Link{From: nd.id, To: d.Msg.From}
			nd.ackTo = d.Msg.From
			return sim.Transmit(nd.pa.Power(nd.in, dual), sim.Message{
				Kind: sim.KindAck,
				From: nd.id,
				To:   d.Msg.From,
			})
		}
	}
	if nd.lastTx >= 0 {
		return sim.Listen() // waiting for our ack
	}
	return sim.Listen()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
