package workload

// Mobility steppers for the churn engine: deterministic models that advance
// node positions in discrete time steps while preserving the instance
// normalization (min pairwise distance ≥ 1). A proposed move that would
// land within distance 1 of any other node is rejected for that step — the
// node simply holds its position (and, for the waypoint model, re-rolls its
// destination), so every intermediate position set is a valid instance.

import (
	"math"
	"math/rand"

	"sinrconn/internal/geom"
)

// Stepper is a mobility model over a fixed node population: Step advances
// the model by dt time units and reports which nodes actually moved;
// Positions exposes the current (always normalization-valid) point set.
// Park freezes a node permanently (the churn driver parks dead nodes — the
// position remains an obstacle but never changes again); AddObstacle
// registers a static out-of-population point the spacing constraint must
// respect (the churn driver adds one per joined node).
type Stepper interface {
	Step(dt float64) []int
	Positions() []geom.Point
	Park(v int)
	AddObstacle(p geom.Point)
}

// spacingGrid is a cell hash over unit-radius neighborhoods used to check
// the min-distance constraint in O(1) per probe.
type spacingGrid struct {
	cells map[[2]int][]int
	pts   []geom.Point
}

func newSpacingGrid(pts []geom.Point) *spacingGrid {
	g := &spacingGrid{cells: make(map[[2]int][]int, len(pts)), pts: pts}
	for v := range pts {
		g.cells[g.key(pts[v])] = append(g.cells[g.key(pts[v])], v)
	}
	return g
}

func (g *spacingGrid) key(p geom.Point) [2]int {
	return [2]int{int(math.Floor(p.X)), int(math.Floor(p.Y))}
}

// ok reports whether placing node v at p keeps it ≥ 1 from every other node.
func (g *spacingGrid) ok(v int, p geom.Point) bool {
	k := g.key(p)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, u := range g.cells[[2]int{k[0] + dx, k[1] + dy}] {
				if u != v && g.pts[u].Dist(p) < 1 {
					return false
				}
			}
		}
	}
	return true
}

// add appends a static point (an obstacle) to the hash. Obstacle indices
// sit beyond the mobile population and are never moved, but ok() sees them.
func (g *spacingGrid) add(p geom.Point) {
	g.pts = append(g.pts, p)
	v := len(g.pts) - 1
	g.cells[g.key(p)] = append(g.cells[g.key(p)], v)
}

// move relocates node v to p, updating the hash.
func (g *spacingGrid) move(v int, p geom.Point) {
	old := g.key(g.pts[v])
	cell := g.cells[old]
	for i, u := range cell {
		if u == v {
			cell[i] = cell[len(cell)-1]
			g.cells[old] = cell[:len(cell)-1]
			break
		}
	}
	g.pts[v] = p
	g.cells[g.key(p)] = append(g.cells[g.key(p)], v)
}

// RandomWaypoint is the classic mobility model: each node draws a uniform
// destination inside the deployment bounding box, travels toward it at a
// per-node speed drawn from [speedMin, speedMax], pauses for pause time
// units on arrival, then re-draws. All randomness comes from the seeded rng,
// so a (seed, dt sequence) pair replays exactly.
type RandomWaypoint struct {
	rng       *rand.Rand
	grid      *spacingGrid
	n         int // mobile population; grid.pts beyond it are obstacles
	lo, hi    geom.Point
	speedMin  float64
	speedMax  float64
	pause     float64
	dest      []geom.Point
	speed     []float64
	pauseLeft []float64
	parked    []bool
	minStep   float64 // displacement below this is not reported as a move
}

// NewRandomWaypoint builds the model over pts (copied). Speeds are in
// distance units per time unit; pause is the dwell time at each waypoint.
func NewRandomWaypoint(rng *rand.Rand, pts []geom.Point, speedMin, speedMax, pause float64) *RandomWaypoint {
	if speedMin <= 0 {
		speedMin = 0.5
	}
	if speedMax < speedMin {
		speedMax = speedMin
	}
	own := append([]geom.Point(nil), pts...)
	lo, hi := geom.BoundingBox(own)
	// Degenerate boxes (chains) still need area to roam in.
	if hi.X-lo.X < 10 {
		hi.X = lo.X + 10
	}
	if hi.Y-lo.Y < 10 {
		hi.Y = lo.Y + 10
	}
	m := &RandomWaypoint{
		rng:       rng,
		grid:      newSpacingGrid(own),
		n:         len(own),
		lo:        lo,
		hi:        hi,
		speedMin:  speedMin,
		speedMax:  speedMax,
		pause:     pause,
		dest:      make([]geom.Point, len(own)),
		speed:     make([]float64, len(own)),
		pauseLeft: make([]float64, len(own)),
		parked:    make([]bool, len(own)),
		minStep:   1e-9,
	}
	for v := range own {
		m.redraw(v)
	}
	return m
}

// Park permanently freezes node v (its position stays a spacing obstacle).
func (m *RandomWaypoint) Park(v int) {
	if v >= 0 && v < m.n {
		m.parked[v] = true
	}
}

// AddObstacle registers a static out-of-population point.
func (m *RandomWaypoint) AddObstacle(p geom.Point) { m.grid.add(p) }

func (m *RandomWaypoint) redraw(v int) {
	m.dest[v] = geom.Point{
		X: m.lo.X + m.rng.Float64()*(m.hi.X-m.lo.X),
		Y: m.lo.Y + m.rng.Float64()*(m.hi.Y-m.lo.Y),
	}
	m.speed[v] = m.speedMin + m.rng.Float64()*(m.speedMax-m.speedMin)
}

// Positions returns the live point set (population only, without
// obstacles). Callers must not mutate it.
func (m *RandomWaypoint) Positions() []geom.Point { return m.grid.pts[:m.n] }

// Step advances every non-parked node by dt and returns the indices that
// moved.
func (m *RandomWaypoint) Step(dt float64) []int {
	var moved []int
	for v := 0; v < m.n; v++ {
		if m.parked[v] {
			continue
		}
		if m.pauseLeft[v] > 0 {
			m.pauseLeft[v] -= dt
			continue
		}
		p := m.grid.pts[v]
		d := m.dest[v]
		dist := p.Dist(d)
		step := m.speed[v] * dt
		var next geom.Point
		if step >= dist {
			next = d
			m.pauseLeft[v] = m.pause
			m.redraw(v)
		} else {
			next = geom.Point{X: p.X + (d.X-p.X)/dist*step, Y: p.Y + (d.Y-p.Y)/dist*step}
		}
		if next.Dist(p) < m.minStep {
			continue
		}
		if !m.grid.ok(v, next) {
			// Blocked: hold position and head somewhere else next step.
			m.redraw(v)
			continue
		}
		m.grid.move(v, next)
		moved = append(moved, v)
	}
	return moved
}

// CityGrid is a Manhattan mobility model: nodes travel along the lines of a
// street grid with the given block size, turning with probability turnProb
// at each intersection they cross and reflecting at the deployment boundary.
// Nodes whose initial street-snapped position would violate the min-distance
// constraint stay parked at their original position for the whole run.
type CityGrid struct {
	rng      *rand.Rand
	grid     *spacingGrid
	n        int // mobile population; grid.pts beyond it are obstacles
	lo, hi   geom.Point
	origin   geom.Point // street lattice anchor: streets at origin + k·block
	block    float64
	speed    float64
	turnProb float64
	dir      [][2]float64 // unit axis direction per node; {0,0} = parked
}

// NewCityGrid builds the model over pts (copied), snapping each node to its
// nearest street line of the lattice anchored at origin (streets are the
// lines x = origin.X + k·block and y = origin.Y + k·block). Passing an
// explicit origin keeps the lattice stable when the model is rebuilt over a
// subset of the points: positions already on the lattice snap to themselves.
func NewCityGrid(rng *rand.Rand, pts []geom.Point, origin geom.Point, block, speed, turnProb float64) *CityGrid {
	if block < 2 {
		block = 2
	}
	if speed <= 0 {
		speed = 1
	}
	if turnProb < 0 || turnProb > 1 {
		turnProb = 0.5
	}
	own := append([]geom.Point(nil), pts...)
	lo, hi := geom.BoundingBox(own)
	if hi.X-lo.X < 2*block {
		hi.X = lo.X + 2*block
	}
	if hi.Y-lo.Y < 2*block {
		hi.Y = lo.Y + 2*block
	}
	m := &CityGrid{
		rng:      rng,
		grid:     newSpacingGrid(own),
		n:        len(own),
		lo:       lo,
		hi:       hi,
		origin:   origin,
		block:    block,
		speed:    speed,
		turnProb: turnProb,
		dir:      make([][2]float64, len(own)),
	}
	snap := func(x, o float64) float64 {
		return o + math.Round((x-o)/block)*block
	}
	for v := range own {
		p := own[v]
		onV := geom.Point{X: snap(p.X, origin.X), Y: p.Y} // vertical street
		onH := geom.Point{X: p.X, Y: snap(p.Y, origin.Y)} // horizontal street
		cand := onH
		vert := false
		if p.Dist(onV) < p.Dist(onH) {
			cand = onV
			vert = true
		}
		if !m.grid.ok(v, cand) {
			m.dir[v] = [2]float64{0, 0} // parked
			continue
		}
		m.grid.move(v, cand)
		if vert {
			m.dir[v] = [2]float64{0, 1}
		} else {
			m.dir[v] = [2]float64{1, 0}
		}
		if rng.Intn(2) == 0 {
			m.dir[v][0], m.dir[v][1] = -m.dir[v][0], -m.dir[v][1]
		}
	}
	return m
}

// Positions returns the live point set (population only, without
// obstacles). Callers must not mutate it.
func (m *CityGrid) Positions() []geom.Point { return m.grid.pts[:m.n] }

// Park permanently freezes node v (its position stays a spacing obstacle).
func (m *CityGrid) Park(v int) {
	if v >= 0 && v < m.n {
		m.dir[v] = [2]float64{0, 0}
	}
}

// AddObstacle registers a static out-of-population point.
func (m *CityGrid) AddObstacle(p geom.Point) { m.grid.add(p) }

// Step advances every non-parked node by speed·dt along its street,
// handling at most one intersection decision per step (dt is expected to be
// small relative to block/speed).
func (m *CityGrid) Step(dt float64) []int {
	var moved []int
	step := m.speed * dt
	snap := func(x, o float64) float64 {
		return o + math.Round((x-o)/m.block)*m.block
	}
	for v := 0; v < m.n; v++ {
		d := m.dir[v]
		if d[0] == 0 && d[1] == 0 {
			continue
		}
		p := m.grid.pts[v]
		next := geom.Point{X: p.X + d[0]*step, Y: p.Y + d[1]*step}
		// Intersection crossing: the along-street coordinate passed a
		// multiple of block since last step.
		along, nextAlong, origin := p.Y, next.Y, m.origin.Y
		if d[0] != 0 {
			along, nextAlong, origin = p.X, next.X, m.origin.X
		}
		crossed := math.Floor((along-origin)/m.block) != math.Floor((nextAlong-origin)/m.block) ||
			math.Mod(nextAlong-origin, m.block) == 0
		if crossed && m.rng.Float64() < m.turnProb {
			// Turn at the intersection: land exactly on it, rotate 90°
			// (sign chosen by coin flip).
			ix := snap(next.X, m.origin.X)
			iy := snap(next.Y, m.origin.Y)
			if d[0] != 0 {
				next = geom.Point{X: ix, Y: p.Y}
			} else {
				next = geom.Point{X: p.X, Y: iy}
			}
			s := 1.0
			if m.rng.Intn(2) == 0 {
				s = -1
			}
			m.dir[v] = [2]float64{d[1] * s, d[0] * s}
		}
		// Reflect at the deployment boundary.
		if next.X < m.lo.X || next.X > m.hi.X || next.Y < m.lo.Y || next.Y > m.hi.Y {
			m.dir[v] = [2]float64{-d[0], -d[1]}
			continue
		}
		if next.Dist(p) < 1e-9 {
			continue
		}
		if !m.grid.ok(v, next) {
			m.dir[v] = [2]float64{-d[0], -d[1]} // blocked: U-turn
			continue
		}
		m.grid.move(v, next)
		moved = append(moved, v)
	}
	return moved
}
