package oracle

// The brute-force reference for the tile-based far-field interference
// approximation (internal/sinr/farfield.go): the same tiling *specification*
// — ring radius k(ε, α), tile side, grid dims, binning, power-weighted
// centroids, near-ring-exact / far-tile-aggregated interference — computed
// with the package's naive physics (math.Hypot distances, math.Pow path
// loss) and naive bookkeeping (maps, no scratch reuse, no refinement).
//
// The plan derivation below is an independent transcription of the one in
// internal/sinr and must stay in lockstep with it expression by expression:
// TestFarFieldPlanLockstep asserts the two derive identical plans, and
// TestDifferentialFarFieldVsOracle that they agree on the approximate SINR
// to 1e-12 relative; TestFarFieldErrorBound pins both within the certified
// ε of the exact physics. When an optimization breaks the
// far-field kernel, the disagreement with this file is the proof.

import (
	"math"

	"sinrconn/internal/geom"
	"sinrconn/internal/phys"
)

// farMinRing and farMaxTiles mirror the kernel's clamps.
const (
	farMinRing  = 2
	farMaxTiles = 1 << 18
)

// FarPlan is the naive transcription of the far-field plan geometry.
type FarPlan struct {
	K          int
	Cell       float64
	Cols, Rows int
	OX, OY     float64
}

// FarK is the naive transcription of sinr.FarK: the smallest ring radius
// with (1 + √2/k)^α − 1 ≤ ε, clamped below at 2.
func FarK(alpha, maxRelErr float64) int {
	d := math.Pow(1+maxRelErr, 1/alpha) - 1
	if d <= 0 {
		return math.MaxInt32
	}
	k := int(math.Ceil(math.Sqrt2 / d))
	if k < farMinRing {
		k = farMinRing
	}
	return k
}

// FarCertifiedErr is the naive transcription of sinr.FarCertifiedErr.
func FarCertifiedErr(k int, alpha float64) float64 {
	return math.Pow(1+math.Sqrt2/float64(k), alpha) - 1
}

// FarPlanFor derives the tile grid for pts at the given exponent and error
// bound, expression for expression as the kernel does.
func FarPlanFor(pts []geom.Point, alpha, maxRelErr float64) FarPlan {
	n := len(pts)
	k := FarK(alpha, maxRelErr)
	lo, hi := pts[0], pts[0]
	for _, p := range pts[1:] {
		if p.X < lo.X {
			lo.X = p.X
		}
		if p.Y < lo.Y {
			lo.Y = p.Y
		}
		if p.X > hi.X {
			hi.X = p.X
		}
		if p.Y > hi.Y {
			hi.Y = p.Y
		}
	}
	w, h := hi.X-lo.X, hi.Y-lo.Y
	area := w * h
	cell := math.Sqrt(math.Sqrt(math.Sqrt2 * area * area / (float64(2*k+1) * float64(2*k+1) * float64(n))))
	if !(cell > 1) {
		cell = 1
	}
	for i := 0; i < 64; i++ {
		cols := math.Floor(w/cell) + 1
		rows := math.Floor(h/cell) + 1
		if cols*rows <= farMaxTiles {
			break
		}
		cell *= math.Sqrt(cols * rows / farMaxTiles)
	}
	return FarPlan{
		K:    k,
		Cell: cell,
		Cols: int(math.Floor(w/cell)) + 1,
		Rows: int(math.Floor(h/cell)) + 1,
		OX:   lo.X,
		OY:   lo.Y,
	}
}

// Tile returns p's tile coordinates, clamped into the grid.
func (fp FarPlan) Tile(p geom.Point) (tx, ty int) {
	tx = int(math.Floor((p.X - fp.OX) / fp.Cell))
	ty = int(math.Floor((p.Y - fp.OY) / fp.Cell))
	if tx < 0 {
		tx = 0
	} else if tx >= fp.Cols {
		tx = fp.Cols - 1
	}
	if ty < 0 {
		ty = 0
	} else if ty >= fp.Rows {
		ty = fp.Rows - 1
	}
	return tx, ty
}

// near reports whether tile (tx, ty) lies in the near ring of tile (vx, vy).
func (fp FarPlan) near(tx, ty, vx, vy int) bool {
	dx, dy := tx-vx, ty-vy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx <= fp.K && dy <= fp.K
}

// farAgg is one tile's sender aggregate.
type farAgg struct {
	mass, cx, cy float64
}

// farAccumulate folds txs into per-tile aggregates in tx order (the same
// fold order the kernel uses, so mass and centroid sums are bit-identical).
func farAccumulate(fp FarPlan, pts []geom.Point, txs []phys.Tx) (map[int]*farAgg, []int) {
	tiles := make(map[int]*farAgg)
	var order []int
	for _, t := range txs {
		tx, ty := fp.Tile(pts[t.Sender])
		ti := ty*fp.Cols + tx
		a := tiles[ti]
		if a == nil {
			a = &farAgg{}
			tiles[ti] = a
			order = append(order, ti)
		}
		a.mass += t.Power
		a.cx += t.Power * pts[t.Sender].X
		a.cy += t.Power * pts[t.Sender].Y
	}
	return tiles, order
}

// FarLinkSINR returns the far-field approximate SINR of link l with sender
// power pu among txs, the naive way: exact signal, exact near-ring
// interference (per sender, math.Pow physics), far tiles approximated as
// mass at the power-weighted centroid. The link's own sender is excluded
// exactly in the near ring and by mass subtraction in its far tile. txs
// must contain at most one entry per sender — the same contract as the
// kernel's LinkSINR.
func FarLinkSINR(pts []geom.Point, p phys.Params, maxRelErr float64, txs []phys.Tx, l phys.Link, pu float64) float64 {
	fp := FarPlanFor(pts, p.Alpha, maxRelErr)
	tiles, order := farAccumulate(fp, pts, txs)

	signal := pu * Gain(pts, p.Alpha, l.From, l.To)
	if signal == 0 {
		return 0
	}
	vx, vy := fp.Tile(pts[l.To])
	ux, uy := fp.Tile(pts[l.From])
	uTile := uy*fp.Cols + ux

	interference := 0.0
	for _, t := range txs {
		if t.Sender == l.From {
			continue
		}
		tx, ty := fp.Tile(pts[t.Sender])
		if fp.near(tx, ty, vx, vy) {
			interference += t.Power / PathLoss(Dist(pts, t.Sender, l.To), p.Alpha)
		}
	}
	for _, ti := range order {
		tx, ty := ti%fp.Cols, ti/fp.Cols
		if fp.near(tx, ty, vx, vy) {
			continue
		}
		a := tiles[ti]
		m := a.mass
		if ti == uTile {
			m -= pu
			if m <= 0 {
				continue
			}
		}
		if m == 0 {
			continue
		}
		// The centroid is normalized by the full tile mass (own sender
		// included), exactly as the kernel computes it.
		cx, cy := a.cx/a.mass, a.cy/a.mass
		d := math.Hypot(pts[l.To].X-cx, pts[l.To].Y-cy)
		interference += m / PathLoss(d, p.Alpha)
	}
	return signal / (p.Noise + interference)
}

// FarSINRFeasible is the naive transcription of the far-field feasibility
// check with its (1±ε) guard band at the β cut: a link passes when its
// approximate SINR times (1 + ε_certified) clears β − FeasibilitySlack.
func FarSINRFeasible(pts []geom.Point, p phys.Params, maxRelErr float64, links []phys.Link, powers []float64) (bool, error) {
	if len(links) != len(powers) {
		return false, phys.ErrMismatchedLengths
	}
	txs := make([]phys.Tx, len(links))
	for i, l := range links {
		txs[i] = phys.Tx{Sender: l.From, Power: powers[i]}
	}
	k := FarK(p.Alpha, maxRelErr)
	band := 1 + FarCertifiedErr(k, p.Alpha)
	cut := p.Beta - FeasibilitySlack
	for i, l := range links {
		if FarLinkSINR(pts, p, maxRelErr, txs, l, powers[i])*band < cut {
			return false, nil
		}
	}
	return true, nil
}
