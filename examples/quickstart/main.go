// Quickstart: build a strongly connected, efficiently scheduled structure
// for 64 wireless nodes from scratch and print what you got.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sinrconn"
)

func main() {
	// Scatter 64 nodes on a square with minimum pairwise distance 1 (the
	// SINR model's normalization).
	rng := rand.New(rand.NewSource(42))
	pts := scatter(rng, 64, 21)

	// Build the Section-8 bi-tree: O(log n) schedule slots with computed
	// per-link powers. All protocol work happens over a simulated SINR
	// channel — the nodes have no other way to talk.
	res, err := sinrconn.BuildBiTreeArbitraryPower(pts, sinrconn.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("instance: n=%d  Δ=%.1f  Υ=%.1f\n", len(pts), m.Delta, m.Upsilon)
	fmt.Printf("bi-tree:  root=%d  depth=%d  max degree=%d\n",
		res.Tree.Root, res.Tree.Depth(), res.Tree.MaxDegree())
	fmt.Printf("schedule: %d slots (log₂ n = %.1f)\n",
		m.ScheduleLength, math.Log2(float64(len(pts))))
	fmt.Printf("latency:  converge-cast %d slots, broadcast %d slots\n",
		m.AggregationLatency, m.BroadcastLatency)
	fmt.Printf("cost:     %d channel slots to build, distributedly\n", m.SlotsUsed)

	// Re-verify everything the theorems promise: spanning bi-tree, strong
	// connectivity, aggregation ordering, per-slot SINR feasibility.
	if err := res.Tree.Verify(); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("verify:   tree, ordering, and schedule feasibility all OK")
}

func scatter(rng *rand.Rand, n int, span float64) []sinrconn.Point {
	var pts []sinrconn.Point
	for len(pts) < n {
		cand := sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}
