package experiments

// E17 sweeps the tight-ε accuracy-versus-speed frontier of the two
// far-field engines: for each error bound ε — down to ε = 0.1, the regime
// where the flat grid's single global near ring degenerates
// (NearDominated) — the quadtree's certified bound, the *measured* maximum
// relative SINR error at sampled listeners (against the naive exact
// physics of internal/oracle), and the per-slot channel-resolution time of
// exact / flat grid / quadtree. Two shape checks are Type 1: measured
// error must never exceed the certified bound (a theorem, not a tendency),
// and an adaptive engine must never resolve a slot slower than the forced
// always-far engine beyond measurement noise — sparse slots simply skip
// the plan. Timing columns are informational; the quadtree's win grows
// with n (BENCH_quadtree.json carries the headline sweep to n = 262144).

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"sinrconn/internal/oracle"
	"sinrconn/internal/sinr"
	"sinrconn/internal/stats"
	"sinrconn/internal/workload"
)

// quadtreeEps is the E17 sweep: tight bounds first — the flat grid's
// collapse region is the point of the experiment.
var quadtreeEps = []float64{0.1, 0.25, 0.5, 1.0}

// E17Quadtree measures the hierarchical far-field accuracy/speed sweep
// against the flat grid and the exact kernel.
func E17Quadtree(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E17",
		Title: "Hierarchical far field: tight-ε accuracy vs speed, flat vs quadtree",
		Claim: "engineering: per-listener Barnes–Hut opening keeps measured SINR error ≤ the certified (1+θ)^α−1 bound at bounds the flat grid cannot serve sub-quadratically",
		Table: stats.NewTable("n", "ε req", "ε cert", "max meas err", "flat near-dom", "exact ms/slot", "flat ms/slot", "quad ms/slot"),
	}
	r.Pass = true
	n := cfg.Sizes[len(cfg.Sizes)-1] * 4
	rng := rand.New(rand.NewSource(17))
	pts := workload.JitteredGrid(rng, n, 2.6, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	p := in.Params()
	power := p.SafePower(4)
	txs := make([]sinr.Tx, 0, n/2)
	for i := 0; i < n; i += 2 {
		txs = append(txs, sinr.Tx{Sender: i, Power: power})
	}

	exactMS := stepTime(in, nil, false, cfg.Workers)
	for _, eps := range quadtreeEps {
		q, err := in.QuadTree(eps)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("eps=%v: %v", eps, err))
			r.Pass = false
			continue
		}
		f, err := in.FarField(eps)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("eps=%v: %v", eps, err))
			r.Pass = false
			continue
		}
		sc := q.NewResolver()
		sc.Accumulate(txs)
		maxErr := 0.0
		for probe := 0; probe < 40; probe++ {
			v := rng.Intn(n/2)*2 + 1
			best, bestRP, total, sat := sc.Resolve(v, txs)
			if sat || best < 0 {
				continue
			}
			exactTotal, exactBest := 0.0, 0.0
			for _, tx := range txs {
				rp := tx.Power / oracle.PathLoss(oracle.Dist(pts, tx.Sender, v), p.Alpha)
				exactTotal += rp
				if rp > exactBest {
					exactBest = rp
				}
			}
			far := bestRP / (p.Noise + (total - bestRP))
			exact := exactBest / (p.Noise + (exactTotal - exactBest))
			// Normalized by the approximate value — the side the
			// certificate bounds (DESIGN.md §8).
			if e := math.Abs(exact-far) / far; e > maxErr {
				maxErr = e
			}
		}
		if maxErr > q.CertifiedMaxRelError() {
			r.Notes = append(r.Notes, fmt.Sprintf("eps=%v: measured error %v exceeds certified %v",
				eps, maxErr, q.CertifiedMaxRelError()))
			r.Pass = false
		}
		flatMS := math.NaN()
		if !f.NearDominated() {
			flatMS = stepTime(in, f, false, cfg.Workers)
		}
		quadMS := stepTime(in, q, false, cfg.Workers)
		r.Table.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", eps),
			fmt.Sprintf("%.3f", q.CertifiedMaxRelError()),
			fmt.Sprintf("%.2e", maxErr),
			fmt.Sprintf("%v", f.NearDominated()),
			fmt.Sprintf("%.2f", exactMS),
			fmt.Sprintf("%.2f", flatMS),
			fmt.Sprintf("%.2f", quadMS),
		)
	}

	// Adaptive-versus-forced shape check on a sparse slot profile: with
	// every slot under the crossover, the adaptive engine must match the
	// exact engine's cost structure rather than paying tree accumulation.
	q, err := in.QuadTree(0.5)
	if err == nil {
		forcedMS := stepTime(in, q, false, cfg.Workers)
		adaptiveMS := stepTime(in, q, true, cfg.Workers)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"dense-slot adaptive %.2f ms vs forced-far %.2f ms (adaptive resolves each slot on the cheap side of the calibrated crossover, so it never does worse than always-far)",
			adaptiveMS, forcedMS))
		if adaptiveMS > forcedMS*1.5 {
			r.Notes = append(r.Notes, "adaptive resolved a dense slot markedly slower than always-far")
			r.Pass = false
		}
	}
	r.Notes = append(r.Notes,
		"flat near-dom=true marks bounds whose flat plan is near-dominated (one global near ring covers the grid — DESIGN.md §8); the session's FarFlat mode falls back to exact there, so no flat timing exists",
		"the quadtree certificate (1+θ)^α−1 equals the requested ε exactly (no integral ring radius to round), and the measured error sits orders of magnitude below it (power-weighted centroids cancel the first-order term)",
		"speed columns cross over with n: see BENCH_quadtree.json for the n ≤ 262144 headline sweep and the flat-vs-quadtree crossover")
	return r
}
