package core

import (
	"context"
	"testing"

	"sinrconn/internal/sim"
	"sinrconn/internal/tree"
)

func TestRunBroadcastOnInitTree(t *testing.T) {
	in := uniformInstance(t, 86, 48)
	res, err := Init(context.Background(), in, InitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBroadcast(context.Background(), in, res.Tree, 4242, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Reached != 48 {
		t.Fatalf("reached %d of 48", out.Reached)
	}
	if out.SlotsUsed != res.Tree.NumSlots()+1 {
		t.Errorf("slots = %d, schedule = %d", out.SlotsUsed, res.Tree.NumSlots())
	}
	if out.Energy <= 0 {
		t.Error("no energy recorded")
	}
}

func TestRunBroadcastOnTVCTree(t *testing.T) {
	in := uniformInstance(t, 87, 36)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBroadcast(context.Background(), in, res.Tree, -7, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Reached != 36 {
		t.Fatalf("reached %d of 36", out.Reached)
	}
}

func TestRunBroadcastDetectsBadSchedule(t *testing.T) {
	in := uniformInstance(t, 88, 24)
	res, err := Init(context.Background(), in, InitConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the ordering: identical slots force parents to forward
	// before they have the value (and collide).
	bad := &tree.BiTree{Root: res.Tree.Root, Nodes: res.Tree.Nodes,
		Up: append([]tree.TimedLink(nil), res.Tree.Up...)}
	for i := range bad.Up {
		bad.Up[i].Slot = 1
	}
	if _, err := RunBroadcast(context.Background(), in, bad, 1, sim.Config{}); err == nil {
		t.Fatal("sabotaged broadcast schedule not detected")
	}
}

func TestRunBroadcastSingleNode(t *testing.T) {
	in := uniformInstance(t, 89, 4)
	res, err := Init(context.Background(), in, InitConfig{Seed: 1, Participants: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunBroadcast(context.Background(), in, res.Tree, 9, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Reached != 1 {
		t.Errorf("reached = %d", out.Reached)
	}
}
