package experiments

// E16 sweeps the far-field approximation's accuracy-versus-speed tradeoff:
// for each error bound ε, the derived ring radius k, the certified
// worst-case bound ε(k, α), the *measured* maximum relative SINR error at
// sampled listeners (against the naive exact physics of internal/oracle),
// and the per-slot channel-resolution time relative to the exact kernel.
// The shape check is Type 1: measured error must never exceed the
// certified bound (the bound is a theorem, not a tendency); timing columns
// are informational — the speedup materializes past the gain-table bound
// (n ≈ 5792), far above the suite's default sweep sizes.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"sinrconn/internal/oracle"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/stats"
	"sinrconn/internal/workload"
)

// farfieldEps is the default ε sweep of E16.
var farfieldEps = []float64{0.25, 0.5, 1.0, 2.5}

// farStepProto mirrors the benchmark's fixed-role channel load: even nodes
// transmit, odd nodes listen.
type farStepProto struct {
	id       int
	transmit bool
	power    float64
}

func (p *farStepProto) Step(slot int, inbox []sim.Delivery) sim.Action {
	if p.transmit {
		return sim.Transmit(p.power, sim.Message{Kind: sim.KindBroadcast, From: p.id, To: sim.NoAddressee})
	}
	return sim.Listen()
}

// E16FarField measures the far-field accuracy/speed sweep.
func E16FarField(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E16",
		Title: "Far-field approximation: accuracy vs speed",
		Claim: "engineering: tile aggregation keeps measured SINR error ≤ the certified ε(k, α) bound while cutting per-slot channel resolution past the gain-table wall",
		Table: stats.NewTable("n", "ε req", "k", "ε cert", "max meas err", "exact ms/slot", "far ms/slot"),
	}
	r.Pass = true
	n := cfg.Sizes[len(cfg.Sizes)-1] * 4
	rng := rand.New(rand.NewSource(16))
	pts := workload.JitteredGrid(rng, n, 2.6, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	p := in.Params()
	power := p.SafePower(4)
	txs := make([]sinr.Tx, 0, n/2)
	for i := 0; i < n; i += 2 {
		txs = append(txs, sinr.Tx{Sender: i, Power: power})
	}

	exactMS := stepTime(in, nil, false, cfg.Workers)
	for _, eps := range farfieldEps {
		f, err := in.FarField(eps)
		if err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("eps=%v: %v", eps, err))
			r.Pass = false
			continue
		}
		sc := f.NewScratch()
		f.Accumulate(txs, sc)
		maxErr := 0.0
		probes := 40
		for probe := 0; probe < probes; probe++ {
			v := rng.Intn(n/2)*2 + 1
			best, bestRP, total, sat := f.Resolve(v, txs, sc)
			if sat || best < 0 {
				continue
			}
			exactTotal, exactBest := 0.0, 0.0
			for _, tx := range txs {
				rp := tx.Power / oracle.PathLoss(oracle.Dist(pts, tx.Sender, v), p.Alpha)
				exactTotal += rp
				if rp > exactBest {
					exactBest = rp
				}
			}
			far := bestRP / (p.Noise + (total - bestRP))
			exact := exactBest / (p.Noise + (exactTotal - exactBest))
			// Normalized by the approximate value — the side the certificate
			// bounds (exact ∈ [far·(1−ε), far·(1+ε)], DESIGN.md §7).
			if e := math.Abs(exact-far) / far; e > maxErr {
				maxErr = e
			}
		}
		if maxErr > f.CertifiedMaxRelError() {
			r.Notes = append(r.Notes, fmt.Sprintf("eps=%v: measured error %v exceeds certified %v",
				eps, maxErr, f.CertifiedMaxRelError()))
			r.Pass = false
		}
		farMS := stepTime(in, f, false, cfg.Workers)
		r.Table.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", eps),
			fmt.Sprintf("%d", f.K()),
			fmt.Sprintf("%.3f", f.CertifiedMaxRelError()),
			fmt.Sprintf("%.2e", maxErr),
			fmt.Sprintf("%.2f", exactMS),
			fmt.Sprintf("%.2f", farMS),
		)
	}
	r.Notes = append(r.Notes,
		"certified bound ε(k, α) = (1+√2/k)^α − 1 is worst-case (every far sender at its tile's nearest corner); power-weighted centroids cancel the first-order term, hence the measured gap",
		"speed columns cross over past the gain-table memory bound (n ≈ 5792, see BENCH_farfield.json for n up to 65536)")
	return r
}

// stepTime runs a few fixed-role engine slots and returns ms per slot. f
// may be either far-field plan or nil (exact); adaptive enables per-slot
// mode selection.
func stepTime(in *sinr.Instance, f sinr.Far, adaptive bool, workers int) float64 {
	n := in.Len()
	power := in.Params().SafePower(4)
	procs := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &farStepProto{id: i, transmit: i%2 == 0, power: power}
	}
	eng, err := sim.NewEngine(in, procs, sim.Config{Workers: workers, FarField: f, Adaptive: adaptive})
	if err != nil {
		return math.NaN()
	}
	defer eng.Close()
	eng.Run(2)
	const slots = 6
	start := time.Now()
	eng.Run(slots)
	return float64(time.Since(start).Microseconds()) / 1000 / slots
}
