package core

import (
	"context"
	"fmt"
	"sort"

	"sinrconn/internal/power"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// BroadcastOutcome reports a physical execution of the dissemination tree.
type BroadcastOutcome struct {
	// Reached is the number of nodes that received the root's value
	// (on success, all of them).
	Reached int
	// SlotsUsed is the channel time consumed.
	SlotsUsed int
	// Energy is the total transmission energy spent.
	Energy float64
}

// RunBroadcast physically executes the dissemination side of the bi-tree
// (Definition 1): the dual links fire in the reversed schedule, each parent
// forwarding the root's value to a child at the stamped power. On success
// every tree node holds the value; a node left without it means the
// schedule or physics was violated, reported as an error.
func RunBroadcast(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, value int64, ecfg sim.Config) (*BroadcastOutcome, error) {
	down := bt.Down()
	distinct := map[int]struct{}{}
	for _, tl := range down {
		distinct[tl.Slot] = struct{}{}
	}
	stamps := make([]int, 0, len(distinct))
	for s := range distinct {
		stamps = append(stamps, s)
	}
	sort.Ints(stamps)
	rank := make(map[int]int, len(stamps))
	for i, s := range stamps {
		rank[s] = i
	}

	// Power check per down-slot group. Definition 1 reuses the up-schedule
	// for the duals, but feasibility does not transfer exactly: for
	// oblivious assignments the dual link has the same length and power and
	// the Init ack slot already proved the dual group feasible, while for
	// *computed* (arbitrary) powers the dual group may need its own power
	// vector — Claim 8.3 guarantees one exists up to constants. We model
	// the root-initiated reversal pass the paper alludes to ("a reversal
	// process initiated by the root... we omit these details") by
	// re-solving each dual group that is not feasible at the stamped
	// powers.
	groups := make([][]int, len(stamps))
	for i, tl := range down {
		groups[rank[tl.Slot]] = append(groups[rank[tl.Slot]], i)
	}
	downPower := make([]float64, len(down))
	for i, tl := range down {
		downPower[i] = tl.Power
	}
	for _, idxs := range groups {
		links := make([]sinr.Link, len(idxs))
		powers := make([]float64, len(idxs))
		for k, i := range idxs {
			links[k] = down[i].L
			powers[k] = down[i].Power
		}
		if ok, err := in.SINRFeasible(links, powers); err == nil && ok {
			continue
		}
		solved, _, err := power.Solve(in, links, power.Options{Slack: 1.01})
		if err != nil {
			return nil, fmt.Errorf("core: dual slot group has no feasible powers: %w", err)
		}
		for k, i := range idxs {
			downPower[i] = solved[k]
		}
	}

	inTree := make(map[int]bool, len(bt.Nodes))
	for _, v := range bt.Nodes {
		inTree[v] = true
	}
	nodes := make([]*bcastNode, in.Len())
	procs := make([]sim.Protocol, in.Len())
	for i := 0; i < in.Len(); i++ {
		nodes[i] = &bcastNode{id: i, member: inTree[i]}
		procs[i] = nodes[i]
	}
	nodes[bt.Root].have = true
	nodes[bt.Root].value = value
	// Each down-link (parent → child) is a transmit duty of the parent at
	// the ranked slot. A parent with several children transmits once per
	// child link, at each link's own slot.
	for i, tl := range down {
		nd := nodes[tl.L.From]
		nd.duties = append(nd.duties, bcastDuty{
			slot:  rank[tl.Slot],
			to:    tl.L.To,
			power: downPower[i],
		})
	}

	eng, err := sim.NewEngine(in, procs, ecfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if _, err := eng.RunCtx(ctx, len(stamps)+1); err != nil {
		return nil, fmt.Errorf("core: broadcast canceled: %w", err)
	}

	out := &BroadcastOutcome{
		SlotsUsed: eng.Stats().Slots,
		Energy:    eng.Stats().Energy,
	}
	for _, v := range bt.Nodes {
		if nodes[v].have && nodes[v].value == value {
			out.Reached++
		}
	}
	if out.Reached != len(bt.Nodes) {
		return out, fmt.Errorf("core: broadcast reached %d of %d nodes", out.Reached, len(bt.Nodes))
	}
	return out, nil
}

type bcastDuty struct {
	slot  int
	to    int
	power float64
}

// bcastNode executes one node's part of the dissemination schedule.
type bcastNode struct {
	id     int
	member bool
	have   bool
	value  int64
	duties []bcastDuty
}

var _ sim.Protocol = (*bcastNode)(nil)

// Step implements sim.Protocol: adopt any value addressed to us, then
// transmit to the child whose down-link fires this slot (if we already
// hold the value — the reversed ordering guarantees we do).
func (nd *bcastNode) Step(slot int, inbox []sim.Delivery) sim.Action {
	if !nd.member {
		return sim.Idle()
	}
	for _, d := range inbox {
		if d.Msg.Kind == sim.KindData && d.Msg.To == nd.id {
			nd.have = true
			nd.value = d.Msg.Payload
		}
	}
	for _, duty := range nd.duties {
		if duty.slot == slot && nd.have {
			return sim.Transmit(duty.power, sim.Message{
				Kind:    sim.KindData,
				From:    nd.id,
				To:      duty.to,
				Payload: nd.value,
			})
		}
	}
	return sim.Listen()
}
