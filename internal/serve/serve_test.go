package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sinrconn/internal/workload"
)

// testPoints is the shared deterministic geometry for daemon tests.
func testPoints(seed int64, n int) [][2]float64 {
	g := workload.UniformSeeded(seed, n)
	pts := make([][2]float64, len(g))
	for i, p := range g {
		pts[i] = [2]float64{p.X, p.Y}
	}
	return pts
}

// testDaemon stands up a Server over a real listener.
func testDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON round-trips one JSON request.
func postJSON(t *testing.T, url string, in, out any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if out != nil && resp.StatusCode < 400 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, buf.String())
		}
	}
	return resp.StatusCode, buf.Bytes()
}

func openSession(t *testing.T, base string, req OpenRequest) OpenResponse {
	t.Helper()
	var resp OpenResponse
	code, body := postJSON(t, base+"/v1/sessions", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("open: status %d: %s", code, body)
	}
	return resp
}

func TestServeOpenRunClose(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(1, 24)})
	if sess.Nodes != 24 {
		t.Fatalf("nodes = %d, want 24", sess.Nodes)
	}

	runURL := ts.URL + "/v1/sessions/" + sess.SessionID + "/run"
	var run RunResponse
	code, body := postJSON(t, runURL, RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}, IncludeTree: true}, &run)
	if code != http.StatusOK {
		t.Fatalf("run: status %d: %s", code, body)
	}
	if run.Cached {
		t.Fatal("first run reported cached")
	}
	if run.Result.Tree == nil || run.Result.Tree.NumNodes != 24 {
		t.Fatalf("run tree = %+v", run.Result.Tree)
	}
	if run.Result.Metrics.SlotsUsed <= 0 {
		t.Fatalf("metrics = %+v", run.Result.Metrics)
	}

	// Identical query: memo hit, same payload.
	var again RunResponse
	postJSON(t, runURL, RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}, IncludeTree: true}, &again)
	if !again.Cached {
		t.Fatal("second identical run not cached")
	}
	w1, _ := json.Marshal(run.Result)
	w2, _ := json.Marshal(again.Result)
	if !bytes.Equal(w1, w2) {
		t.Fatalf("cached result differs:\n%s\n%s", w1, w2)
	}

	// Metrics-only response carries no tree.
	var slim RunResponse
	postJSON(t, runURL, RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}}, &slim)
	if slim.Result.Tree != nil {
		t.Fatal("metrics-only response carried a tree")
	}

	// Unknown pipeline and unknown session.
	code, _ = postJSON(t, runURL, RunRequest{Pipeline: "nope"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad pipeline: status %d, want 400", code)
	}
	code, _ = postJSON(t, ts.URL+"/v1/sessions/s999/run", RunRequest{Pipeline: "init-uniform"}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", code)
	}

	// Close, then the session is gone.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sess.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	code, _ = postJSON(t, runURL, RunRequest{Pipeline: "init-uniform"}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("run after close: status %d, want 404", code)
	}
}

func TestServeDeploymentDedup(t *testing.T) {
	settleGoroutines(t)
	srv, ts := testDaemon(t, Config{})
	pts := testPoints(2, 20)
	a := openSession(t, ts.URL, OpenRequest{Points: pts})
	b := openSession(t, ts.URL, OpenRequest{Points: pts})
	if a.SharedDeployment {
		t.Fatal("first open reported shared")
	}
	if !b.SharedDeployment {
		t.Fatal("identical second open did not dedup")
	}
	// Different options → different deployment.
	c := openSession(t, ts.URL, OpenRequest{Points: pts, Options: OptionsJSON{Seed: 9}})
	if c.SharedDeployment {
		t.Fatal("open with different options deduped")
	}

	var h Health
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Sessions != 3 || h.Deployments != 2 {
		t.Fatalf("health = %+v, want 3 sessions over 2 deployments", h)
	}

	// A run through either deduped session hits the same cache.
	runReq := RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}}
	var r1, r2 RunResponse
	postJSON(t, ts.URL+"/v1/sessions/"+a.SessionID+"/run", runReq, &r1)
	postJSON(t, ts.URL+"/v1/sessions/"+b.SessionID+"/run", runReq, &r2)
	if r1.Cached || !r2.Cached {
		t.Fatalf("cross-session dedup: cached = %v, %v; want false, true", r1.Cached, r2.Cached)
	}

	// Dropping one deduped session keeps the deployment alive for the other.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+a.SessionID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	var r3 RunResponse
	code, _ := postJSON(t, ts.URL+"/v1/sessions/"+b.SessionID+"/run", runReq, &r3)
	if code != http.StatusOK || !r3.Cached {
		t.Fatalf("survivor session after sibling close: status %d cached %v", code, r3.Cached)
	}
	_ = srv
}

func TestServeStreaming(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(3, 24)})
	runURL := ts.URL + "/v1/sessions/" + sess.SessionID + "/run"

	stream := func() (slots int, terminal resultLine) {
		t.Helper()
		body, _ := json.Marshal(RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 4}, Stream: true})
		resp, err := http.Post(runURL, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("stream content type %q", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var last string
		for sc.Scan() {
			line := sc.Text()
			var probe struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal([]byte(line), &probe); err != nil {
				t.Fatalf("bad stream line %q: %v", line, err)
			}
			switch probe.Type {
			case "slot":
				slots++
			case "result":
				last = line
			case "error":
				t.Fatalf("stream error line: %s", line)
			}
		}
		if last == "" {
			t.Fatal("stream ended without a terminal result line")
		}
		if err := json.Unmarshal([]byte(last), &terminal); err != nil {
			t.Fatal(err)
		}
		return slots, terminal
	}

	slots, terminal := stream()
	if slots == 0 {
		t.Fatal("cold streamed run emitted no slot events")
	}
	if terminal.Cached {
		t.Fatal("cold streamed run reported cached")
	}
	if terminal.Result.Metrics.SlotsUsed <= 0 {
		t.Fatalf("terminal metrics = %+v", terminal.Result.Metrics)
	}

	// A memo hit streams zero slot events: nothing executed.
	slots, terminal = stream()
	if slots != 0 {
		t.Fatalf("cached streamed run emitted %d slot events, want 0", slots)
	}
	if !terminal.Cached {
		t.Fatal("repeat streamed run not cached")
	}
}

func TestServeJoinRepairChurn(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(5, 24)})
	base := ts.URL + "/v1/sessions/" + sess.SessionID

	var run RunResponse
	code, body := postJSON(t, base+"/run", RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 2}, IncludeTree: true}, &run)
	if code != http.StatusOK {
		t.Fatalf("run: %d: %s", code, body)
	}

	// Join two fresh nodes well clear of the existing square.
	var joined RunResponse
	code, body = postJSON(t, base+"/join", JoinRequest{
		ResultID:    run.ResultID,
		Points:      [][2]float64{{40, 40}, {41.5, 40}},
		IncludeTree: true,
	}, &joined)
	if code != http.StatusOK {
		t.Fatalf("join: %d: %s", code, body)
	}
	if joined.Result.Tree.NumNodes != 26 {
		t.Fatalf("joined tree has %d nodes, want 26", joined.Result.Tree.NumNodes)
	}

	// Repair a failed node out of the joined result.
	var repaired RunResponse
	code, body = postJSON(t, base+"/repair", RepairRequest{
		ResultID:    joined.ResultID,
		Failed:      []int{3},
		IncludeTree: true,
	}, &repaired)
	if code != http.StatusOK {
		t.Fatalf("repair: %d: %s", code, body)
	}
	if repaired.Result.Tree.NumNodes != 25 {
		t.Fatalf("repaired tree has %d nodes, want 25 (survivors of 26)", repaired.Result.Tree.NumNodes)
	}

	// Repair validation: failed and links are mutually exclusive.
	code, _ = postJSON(t, base+"/repair", RepairRequest{ResultID: run.ResultID}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("empty repair: %d, want 400", code)
	}

	// A short churn trace.
	var churned ChurnResponse
	code, body = postJSON(t, base+"/churn", ChurnRequest{
		Seed: 11, Events: 4, JoinRate: 1, FailRate: 1,
	}, &churned)
	if code != http.StatusOK {
		t.Fatalf("churn: %d: %s", code, body)
	}
	if churned.Stats.Events != 4 {
		t.Fatalf("churn stats = %+v, want 4 events", churned.Stats)
	}
	if churned.ResultID == "" {
		t.Fatal("churn returned no result handle")
	}
}

func TestServeRunMatrix(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(6, 24)})

	var req MatrixRequest
	for _, p := range []string{"init-uniform", "reschedule-mean"} {
		req.Specs = append(req.Specs, struct {
			Pipeline string      `json:"pipeline"`
			Options  OptionsJSON `json:"options,omitzero"`
		}{Pipeline: p, Options: OptionsJSON{Seed: 3}})
	}
	var resp MatrixResponse
	code, body := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/runmatrix", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("runmatrix: %d: %s", code, body)
	}
	if len(resp.Results) != 2 || resp.Results[0] == nil || resp.Results[1] == nil {
		t.Fatalf("runmatrix results = %+v", resp.Results)
	}
	if resp.ResultIDs[0] == resp.ResultIDs[1] {
		t.Fatal("runmatrix reused a result id")
	}
}

func TestServeDrain(t *testing.T) {
	settleGoroutines(t)
	srv, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(7, 20)})

	srv.Drain()
	code, _ := postJSON(t, ts.URL+"/v1/sessions", OpenRequest{Points: testPoints(7, 20)}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open while draining: %d, want 503", code)
	}

	// Existing sessions keep working through the drain window.
	var run RunResponse
	code, body := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/run", RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}}, &run)
	if code != http.StatusOK {
		t.Fatalf("run while draining: %d: %s", code, body)
	}

	var h Health
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "draining" {
		t.Fatalf("health status %q, want draining", h.Status)
	}
}

func TestServeDeadline(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(8, 256)})
	code, body := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/run",
		RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}, TimeoutMs: 1}, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("1ms run at n=256: status %d (%s), want 504", code, body)
	}
	// The canceled run committed nothing: the same query now computes
	// cleanly and reports cached=false.
	var run RunResponse
	code, body = postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/run",
		RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}}, &run)
	if code != http.StatusOK {
		t.Fatalf("rerun after deadline: %d: %s", code, body)
	}
	if run.Cached {
		t.Fatal("rerun after canceled run was served from cache: the canceled run committed a result")
	}
}

func TestServeMetrics(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(9, 20)})
	runReq := RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}}
	postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/run", runReq, nil)
	postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/run", runReq, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"serve_cache_hits_total 1",
		"serve_cache_misses_total 1",
		"serve_cache_entries 1",
		"serve_sessions 1",
		"serve_deployments 1",
		`serve_requests_total{endpoint="run"} 2`,
		`serve_requests_total{endpoint="open"} 1`,
		"serve_request_seconds_total",
		"serve_cache_compute_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServeSessionResultCap pins the per-session result namespace bound:
// old handles fall off, new ones stay addressable.
func TestServeSessionResultCap(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{MaxResultsPerSession: 2})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(10, 20)})
	base := ts.URL + "/v1/sessions/" + sess.SessionID
	ids := make([]string, 3)
	for i := range ids {
		var run RunResponse
		code, body := postJSON(t, base+"/run", RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: int64(i + 1)}}, &run)
		if code != http.StatusOK {
			t.Fatalf("run %d: %d: %s", i, code, body)
		}
		ids[i] = run.ResultID
	}
	code, _ := postJSON(t, base+"/join", JoinRequest{ResultID: ids[0], Points: [][2]float64{{60, 60}}}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("evicted result id: status %d, want 404", code)
	}
	code, body := postJSON(t, base+"/join", JoinRequest{ResultID: ids[2], Points: [][2]float64{{60, 60}}}, nil)
	if code != http.StatusOK {
		t.Fatalf("live result id: status %d: %s", code, body)
	}
}

// TestServeConcurrentIdenticalRuns pins coalescing end to end: many
// concurrent identical cold queries produce exactly one construction.
func TestServeConcurrentIdenticalRuns(t *testing.T) {
	settleGoroutines(t)
	srv, ts := testDaemon(t, Config{})
	sess := openSession(t, ts.URL, OpenRequest{Points: testPoints(11, 48)})
	runURL := ts.URL + "/v1/sessions/" + sess.SessionID + "/run"

	const clients = 16
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			body, _ := json.Marshal(RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 77}})
			resp, err := http.Post(runURL, "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var run RunResponse
			errs <- json.NewDecoder(resp.Body).Decode(&run)
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := srv.cacheStats()
	if st.Computes != 1 {
		t.Fatalf("computes = %d, want 1 (coalescing)", st.Computes)
	}
	if st.Hits+st.Coalesced != clients-1 {
		t.Fatalf("hits+coalesced = %d+%d, want %d", st.Hits, st.Coalesced, clients-1)
	}
}
