// Package core implements the paper's distributed connectivity algorithms:
//
//   - Init (Section 6): the from-scratch bi-tree construction over ⌈log Δ⌉
//     doubling rounds of randomized broadcast/acknowledge slot-pairs
//     (Theorem 2).
//   - Reschedule (Section 7): re-scheduling the Init tree under mean power
//     with the distributed contention-resolution scheduler (Theorem 3).
//   - LowDegreeSubset (Theorem 13): the O(1)-sparse low-degree core T(M).
//   - MeanSample (Section 8.1): the 1/(4γ₁Υ) sampling selection of a large
//     feasible subset under mean power.
//   - DistrCap (Section 8.2): the two-slot linear-power measurement
//     protocol selecting a Kesselheim-feasible subset for arbitrary power.
//   - TreeViaCapacity (Algorithm 1): the iterated construction matching the
//     centralized bounds (Theorem 4), in mean-power and arbitrary-power
//     variants.
//
// The theory constants of the proofs (p ≤ 1/64(1+6β2^α/(α−2)), λ₁ = 80/p²)
// are tuned for union bounds, not practice; every constant here is a Config
// knob with an empirically sensible default, and the construction includes
// a deterministic safety loop (extra rounds at the top length class) that
// guarantees termination with a connected tree regardless of how the coins
// fall. DESIGN.md discusses the substitution.
package core
