package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"

	"sinrconn/internal/churn"
	"sinrconn/internal/faults"
	"sinrconn/internal/serve"
)

// settleGoroutines mirrors the serve package's shared leak gate (it
// cannot be imported across the package boundary): baseline at call,
// settle-back check after cleanup.
func settleGoroutines(t *testing.T) {
	t.Helper()
	runtime.GC()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(10 * time.Second)
		for {
			runtime.GC()
			if g := runtime.NumGoroutine(); g <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}

// TestServeChaosSoak is the chaos gate: the load generator drives a
// fault-injected daemon — singleflight-leader panics, connection
// resets, worker stalls, handler delays, slow slots — through a
// mid-soak drain, and the daemon must stay standing: ≥99% of terminal
// requests well-formed, every HTTP-layer fault class actually
// exercised, every injected panic recovered (the process is still
// here), and zero goroutine leaks. Run with -race (the CI chaos lane
// does). The spec matches internal/serve's chaosSpec so the two suites
// exercise one fault schedule.
func TestServeChaosSoak(t *testing.T) {
	settleGoroutines(t)
	plan := faults.MustPlan(faults.Spec{
		Seed:  1973,
		Delay: time.Millisecond,
		Rates: map[faults.Site]float64{
			faults.ServeHandlerDelay: 0.05,
			faults.ServeConnReset:    0.04,
			faults.CacheLeaderPanic:  0.40,
			faults.PoolWorkerStall:   0.05,
			faults.SimSlotSlow:       0.02,
		},
	})
	srv := serve.New(serve.Config{Injector: plan, MaxConcurrent: 8, BreakerSeed: 1973})
	t.Cleanup(func() { srv.Close() })

	requests := 320
	if testing.Short() {
		requests = 80
	}

	// Flip the drain mid-soak: a SIGTERM arriving during chaos. The
	// loadgen opened its sessions up front, so the drain must not cost
	// it a single request.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		time.Sleep(300 * time.Millisecond)
		srv.Drain()
	}()

	report, err := Run(context.Background(), Config{
		Handler:  srv.Handler(),
		Clients:  8,
		Requests: requests,
		N:        32,
		Seed:     7,
		Keyspace: 6,
		Arrival:  churn.ArrivalSpec{Rate: 400, Mix: churn.MixPoisson},
		Retries:  6,
	})
	if err != nil {
		t.Fatalf("loadgen under chaos: %v", err)
	}
	<-drained
	t.Logf("chaos soak: %+v", report)

	// ≥99% of terminal requests well-formed: with retries absorbing the
	// injected faults, residual errors must stay under 1%.
	total := report.Requests + report.Errors
	if total < requests {
		t.Fatalf("soak completed %d terminal requests, want ≥ %d", total, requests)
	}
	if wellFormed := float64(report.Requests) / float64(total); wellFormed < 0.99 {
		t.Fatalf("well-formed fraction %.4f < 0.99 (%d errors of %d)", wellFormed, report.Errors, total)
	}
	// The soak must have actually hurt: faults fired at every HTTP-layer
	// site and the retry machinery did real work.
	fired := map[faults.Site]uint64{}
	for _, c := range plan.Counts() {
		fired[c.Site] = c.Fired
	}
	for _, site := range []faults.Site{faults.ServeHandlerDelay, faults.ServeConnReset, faults.CacheLeaderPanic} {
		if fired[site] == 0 {
			t.Errorf("site %s never fired — the soak exercised nothing there", site)
		}
	}
	if report.Aborted == 0 {
		t.Error("no connection resets observed by the client")
	}
	if report.Retries == 0 {
		t.Error("retry machinery never engaged")
	}

	// Every injected leader panic was recovered and counted — the
	// /healthz panics counter is the exported witness.
	hc := &http.Client{Transport: handlerTransport{srv.Handler()}}
	resp, err := hc.Get("http://chaos.invalid/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Panics == 0 {
		t.Error("panic-recovery middleware counted nothing despite injected leader panics")
	}
	if !srv.Draining() {
		t.Error("drain flag lost during chaos")
	}
}
