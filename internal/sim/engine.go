// Package sim provides the synchronous slotted-time execution substrate of
// the paper's model (Section 3): nodes have synchronized clocks, run their
// protocols in lockstep, and the only communication primitive is
// transmission on the single shared wireless channel, resolved exactly by
// the SINR condition (Eqn 1) each slot.
//
// A slot proceeds in three stages: every node's protocol emits an action
// (transmit with a power and message, listen, or idle); the channel computes
// the SINR at every listener from the full set of concurrent senders; and
// decodable messages are delivered into inboxes the protocols see at the
// next slot. Node stepping and listener decoding are parallelized with a
// worker pool — safe because protocols only touch their own state — and all
// randomness is derived deterministically from the engine seed, so results
// are reproducible regardless of worker count.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"sinrconn/internal/sinr"
)

// MsgKind distinguishes protocol message types. The paper uses two:
// exploratory broadcasts (ID + location) and addressed acknowledgments.
type MsgKind uint8

// Message kinds.
const (
	KindBroadcast MsgKind = iota + 1
	KindAck
	KindData
)

// NoAddressee marks a message sent to no node in particular (a broadcast).
const NoAddressee = -1

// Message is the content of one transmission. A single message is large
// enough to contain the ID and the location of a node (Section 3); the
// location is implied by From, since every node knows the point set index
// it occupies and receivers learn distances from the physics (Delivery.Dist).
type Message struct {
	Kind MsgKind
	// From is the sender's node index (its globally unique ID).
	From int
	// To is the addressee for acknowledgments, or NoAddressee.
	To int
	// Tag carries protocol-defined context (e.g. the Init round number or a
	// Distr-Cap phase index).
	Tag int
	// Payload carries small protocol data (e.g. an aggregate value).
	Payload int64
}

// ActionKind enumerates what a node does in a slot.
type ActionKind uint8

// Actions a protocol can take in a slot.
const (
	// ActionIdle: the node neither transmits nor listens (it has left the
	// protocol). Idle nodes cost nothing in the physics computation.
	ActionIdle ActionKind = iota + 1
	// ActionListen: the node listens and may receive one message.
	ActionListen
	// ActionTransmit: the node transmits Msg with power Power. Transmitting
	// nodes cannot receive in the same slot (half-duplex).
	ActionTransmit
)

// Action is a protocol's decision for one slot.
type Action struct {
	Kind  ActionKind
	Power float64
	Msg   Message
}

// Idle returns the idle action.
func Idle() Action { return Action{Kind: ActionIdle} }

// Listen returns the listen action.
func Listen() Action { return Action{Kind: ActionListen} }

// Transmit returns a transmit action.
func Transmit(power float64, msg Message) Action {
	return Action{Kind: ActionTransmit, Power: power, Msg: msg}
}

// Delivery is a successfully decoded message as seen by a receiver.
type Delivery struct {
	Msg Message
	// Dist is the distance to the sender. The receiver can always compute
	// it because messages carry the sender's location (Section 3).
	Dist float64
	// SINR is the measured signal-to-interference-and-noise ratio of the
	// reception. Section 8.2 explicitly assumes receivers can measure it.
	SINR float64
	// Slot is the slot in which the message was transmitted.
	Slot int
}

// Protocol is a per-node state machine. Step is called once per slot with
// the deliveries received in the previous slot (at most one under β ≥ 1,
// but the API permits more for β < 1 configurations) and returns the node's
// action for this slot. Implementations must confine themselves to their
// own state: Step is invoked concurrently across nodes.
type Protocol interface {
	Step(slot int, inbox []Delivery) Action
}

// Config tunes the engine.
type Config struct {
	// Workers is the number of goroutines stepping nodes and decoding
	// listeners. Zero means runtime.NumCPU().
	Workers int
	// DropProb injects reception failures: each otherwise-successful
	// delivery is independently dropped with this probability (modeling
	// fading the SINR mean-path-loss model misses). Drops are derived
	// deterministically from Seed, slot, and receiver.
	DropProb float64
	// Seed drives the drop-injection randomness.
	Seed int64
	// Observer, if non-nil, is invoked after every slot with a summary of
	// channel activity (for tracing and live experiment dashboards).
	Observer Observer
}

// Stats counts engine activity for experiment reporting.
type Stats struct {
	Slots         int     // slots executed
	Transmissions int     // transmit actions observed
	Deliveries    int     // messages successfully delivered
	Collisions    int     // listener slots with audible signal but no decode
	Dropped       int     // deliveries removed by failure injection
	Energy        float64 // total transmission energy (sum of powers × slots)
}

// SlotEvent is handed to an Observer after each slot.
type SlotEvent struct {
	// Slot is the slot index that just executed.
	Slot int
	// Senders is the number of concurrent transmitters.
	Senders int
	// Deliveries is the number of successful decodes.
	Deliveries int
}

// Observer receives a SlotEvent after every slot. Observers run on the
// engine goroutine; they must not call back into the engine.
type Observer func(SlotEvent)

// Engine drives a set of per-node protocols over a shared SINR channel.
type Engine struct {
	inst    *sinr.Instance
	procs   []Protocol
	cfg     Config
	stats   Stats
	slot    int
	inboxes [][]Delivery
	next    [][]Delivery
	actions []Action
	txs     []sinr.Tx
}

// NewEngine creates an engine over instance inst with one protocol per node.
// len(procs) must equal inst.Len().
func NewEngine(inst *sinr.Instance, procs []Protocol, cfg Config) (*Engine, error) {
	if len(procs) != inst.Len() {
		return nil, fmt.Errorf("sim: %d protocols for %d nodes", len(procs), inst.Len())
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		if cfg.DropProb != 0 {
			return nil, fmt.Errorf("sim: drop probability %v outside [0,1)", cfg.DropProb)
		}
	}
	n := inst.Len()
	return &Engine{
		inst:    inst,
		procs:   procs,
		cfg:     cfg,
		inboxes: make([][]Delivery, n),
		next:    make([][]Delivery, n),
		actions: make([]Action, n),
	}, nil
}

// Slot returns the index of the next slot to execute.
func (e *Engine) Slot() int { return e.slot }

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Instance returns the underlying SINR instance.
func (e *Engine) Instance() *sinr.Instance { return e.inst }

// Step executes one slot: gather actions, resolve the channel, deliver.
func (e *Engine) Step() {
	n := len(e.procs)
	slot := e.slot

	// Stage 1: step every protocol with its inbox (parallel).
	e.parallel(n, func(i int) {
		e.actions[i] = e.procs[i].Step(slot, e.inboxes[i])
		e.next[i] = e.next[i][:0]
	})

	// Stage 2: collect the sender set.
	e.txs = e.txs[:0]
	for i, a := range e.actions {
		if a.Kind == ActionTransmit {
			e.txs = append(e.txs, sinr.Tx{Sender: i, Power: a.Power})
			e.stats.Energy += a.Power
		}
	}
	e.stats.Transmissions += len(e.txs)

	// Stage 3: decode at every listener (parallel). Each listener decodes
	// the strongest sender if its SINR clears β.
	var delivered, collided, dropped int64
	var mu sync.Mutex
	e.parallel(n, func(i int) {
		if e.actions[i].Kind != ActionListen || len(e.txs) == 0 {
			return
		}
		d, ok, audible := e.decodeAt(i, slot)
		if !ok {
			if audible {
				mu.Lock()
				collided++
				mu.Unlock()
			}
			return
		}
		if e.cfg.DropProb > 0 && dropCoin(e.cfg.Seed, slot, i) < e.cfg.DropProb {
			mu.Lock()
			dropped++
			mu.Unlock()
			return
		}
		e.next[i] = append(e.next[i], d)
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	e.stats.Deliveries += int(delivered)
	e.stats.Collisions += int(collided)
	e.stats.Dropped += int(dropped)

	// Stage 4: swap inboxes and notify.
	e.inboxes, e.next = e.next, e.inboxes
	e.slot++
	e.stats.Slots++
	if e.cfg.Observer != nil {
		e.cfg.Observer(SlotEvent{
			Slot:       slot,
			Senders:    len(e.txs),
			Deliveries: int(delivered),
		})
	}
}

// decodeAt resolves reception at listener i in slot: the strongest sender is
// decoded iff its SINR ≥ β. audible reports whether any signal was received
// at all (for collision accounting).
func (e *Engine) decodeAt(i, slot int) (d Delivery, ok, audible bool) {
	p := e.inst.Params()
	pt := e.inst.Point(i)
	var total float64
	best := -1
	bestRP := 0.0
	for k, t := range e.txs {
		dist := e.inst.Point(t.Sender).Dist(pt)
		if dist == 0 {
			// A co-located sender (only possible with duplicate points)
			// saturates the channel; nothing is decodable.
			return Delivery{}, false, true
		}
		rp := t.Power / math.Pow(dist, p.Alpha)
		total += rp
		if rp > bestRP {
			bestRP = rp
			best = k
		}
	}
	if best < 0 {
		return Delivery{}, false, false
	}
	sinrVal := bestRP / (p.Noise + (total - bestRP))
	if sinrVal < p.Beta {
		return Delivery{}, false, true
	}
	tx := e.txs[best]
	return Delivery{
		Msg:  e.actions[tx.Sender].Msg,
		Dist: e.inst.Point(tx.Sender).Dist(pt),
		SINR: sinrVal,
		Slot: slot,
	}, true, true
}

// Run executes exactly n slots.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunUntil executes slots until stop() returns true (checked after every
// slot) or maxSlots have run, returning the number of slots executed.
func (e *Engine) RunUntil(maxSlots int, stop func() bool) int {
	ran := 0
	for ran < maxSlots {
		e.Step()
		ran++
		if stop() {
			break
		}
	}
	return ran
}

// parallel runs fn(i) for i in [0,n) across the configured worker count,
// waiting for completion. For a single worker it degrades to a plain loop.
func (e *Engine) parallel(n int, fn func(i int)) {
	w := e.cfg.Workers
	if w <= 1 || n < 2*w {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(start, end)
	}
	wg.Wait()
}

// dropCoin returns a deterministic pseudo-uniform value in [0,1) derived
// from (seed, slot, node) with a splitmix64 finalizer, so drop injection is
// reproducible and independent of worker scheduling.
func dropCoin(seed int64, slot, node int) float64 {
	x := uint64(seed) ^ (uint64(slot)+1)*0x9E3779B97F4A7C15 ^ (uint64(node)+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
