package oracle

import (
	"math"

	"sinrconn/internal/geom"
	"sinrconn/internal/phys"
)

// Dist returns the Euclidean distance between nodes u and v of pts, via
// math.Hypot — the textbook formulation.
func Dist(pts []geom.Point, u, v int) float64 {
	return math.Hypot(pts[u].X-pts[v].X, pts[u].Y-pts[v].Y)
}

// PathLoss returns d^α via math.Pow, the naive formulation the fast
// PowAlpha/PowAlphaSq kernel paths are pinned against.
func PathLoss(d, alpha float64) float64 {
	return math.Pow(d, alpha)
}

// Gain returns the channel gain d(u,v)^{-α}, +Inf at zero distance (the
// saturation sentinel shared with the kernel).
func Gain(pts []geom.Point, alpha float64, u, v int) float64 {
	d := Dist(pts, u, v)
	if d == 0 {
		return math.Inf(1)
	}
	return 1 / PathLoss(d, alpha)
}

// C returns the paper's noise-derating constant c(u,v) = β/(1 − βN·ℓ^α/P_u)
// for a link of the given length whose sender uses power pu, +Inf when the
// link cannot meet SINR β against noise alone.
func C(p phys.Params, length, pu float64) float64 {
	denom := 1 - p.Beta*p.Noise*PathLoss(length, p.Alpha)/pu
	if denom <= 0 {
		return math.Inf(1)
	}
	return p.Beta / denom
}

// Affectance returns the thresholded affectance a_w(ℓ) of sender w with
// power pw on link l whose sender uses power pu (Section 5):
//
//	a_w(ℓ) = min{ 1+ε, c(u,v)·(P_w/P_u)·(d(u,v)/d(w,v))^α }
//
// with the kernel's conventions: the link's own sender contributes 0, a
// sender co-located with the receiver contributes the cap, and a link that
// cannot overcome noise (c = +Inf) receives the cap from every interferer.
func Affectance(pts []geom.Point, p phys.Params, w int, pw float64, l phys.Link, pu float64) float64 {
	if w == l.From {
		return 0
	}
	cap_ := 1 + p.Epsilon
	dwv := Dist(pts, w, l.To)
	if dwv == 0 {
		return cap_
	}
	duv := Dist(pts, l.From, l.To)
	c := C(p, duv, pu)
	if math.IsInf(c, 1) {
		return cap_
	}
	a := c * (pw / pu) * PathLoss(duv/dwv, p.Alpha)
	if a > cap_ {
		return cap_
	}
	return a
}

// SetAffectance returns a_S(ℓ) = Σ_{w∈S} a_w(ℓ), term by term.
func SetAffectance(pts []geom.Point, p phys.Params, txs []phys.Tx, l phys.Link, pu float64) float64 {
	sum := 0.0
	for _, t := range txs {
		sum += Affectance(pts, p, t.Sender, t.Power, l, pu)
	}
	return sum
}

// SINR returns the signal-to-interference-and-noise ratio at the receiver
// of link l when txs transmit concurrently (Eqn 1's left-hand side divided
// by its interference-plus-noise term). The link's own sender must appear
// in txs; it returns 0 if absent.
func SINR(pts []geom.Point, p phys.Params, txs []phys.Tx, l phys.Link) float64 {
	signal, interference := 0.0, 0.0
	for _, t := range txs {
		rp := t.Power / PathLoss(Dist(pts, t.Sender, l.To), p.Alpha)
		if t.Sender == l.From {
			signal += rp
		} else {
			interference += rp
		}
	}
	if signal == 0 {
		return 0
	}
	return signal / (p.Noise + interference)
}

// MeasuredAffectance returns the uncapped aggregate affectance a receiver
// can measure during a reception: c(u,v)·I/S.
func MeasuredAffectance(pts []geom.Point, p phys.Params, txs []phys.Tx, l phys.Link, pu float64) float64 {
	c := C(p, Dist(pts, l.From, l.To), pu)
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	signal := pu / PathLoss(Dist(pts, l.From, l.To), p.Alpha)
	interference := 0.0
	for _, t := range txs {
		if t.Sender == l.From {
			continue
		}
		d := Dist(pts, t.Sender, l.To)
		if d == 0 {
			return math.Inf(1)
		}
		interference += t.Power / PathLoss(d, p.Alpha)
	}
	return c * interference / signal
}

// FeasibilitySlack is the tolerance the feasibility decisions carry on the
// β comparison, mirroring the kernel's 1e-9 slack exactly so decisions are
// comparable.
const FeasibilitySlack = 1e-9

// SINRFeasible reports whether every link in links, transmitting
// concurrently with the given powers, meets SINR β — the O(n²) brute-force
// resolution of Eqn 1 (every link's SINR computed from scratch).
func SINRFeasible(pts []geom.Point, p phys.Params, links []phys.Link, powers []float64) (bool, error) {
	if len(links) != len(powers) {
		return false, phys.ErrMismatchedLengths
	}
	txs := make([]phys.Tx, len(links))
	for i, l := range links {
		txs[i] = phys.Tx{Sender: l.From, Power: powers[i]}
	}
	for _, l := range links {
		if SINR(pts, p, txs, l) < p.Beta-FeasibilitySlack {
			return false, nil
		}
	}
	return true, nil
}

// Feasible reports feasibility in the affectance formulation of Section 5:
// a_L(ℓ) ≤ 1 for every ℓ ∈ L, each link additionally overcoming noise on
// its own (finite c). Mirrors sinr.Instance.Feasible with explicit powers.
func Feasible(pts []geom.Point, p phys.Params, links []phys.Link, powers []float64) (bool, error) {
	if len(links) != len(powers) {
		return false, phys.ErrMismatchedLengths
	}
	txs := make([]phys.Tx, len(links))
	for i, l := range links {
		txs[i] = phys.Tx{Sender: l.From, Power: powers[i]}
	}
	for i, l := range links {
		if math.IsInf(C(p, Dist(pts, l.From, l.To), powers[i]), 1) {
			return false, nil
		}
		if SetAffectance(pts, p, txs, l, powers[i]) > 1+FeasibilitySlack {
			return false, nil
		}
	}
	return true, nil
}

// ResolveSlot resolves reception at one listener exactly as the channel
// model prescribes: among the concurrent transmitters txs, the one with the
// strongest received power at the listener is decoded iff its SINR against
// all the others plus noise clears β. It returns the index into txs of the
// decoded transmission and its SINR, or (-1, 0) when nothing is decodable.
// A transmitter co-located with the listener saturates the channel.
//
// This is the oracle for sim.Engine's decode stage, recomputing every
// received power with naive physics.
func ResolveSlot(pts []geom.Point, p phys.Params, txs []phys.Tx, listener int) (int, float64) {
	best, bestRP, total := -1, 0.0, 0.0
	for k, t := range txs {
		d := Dist(pts, t.Sender, listener)
		if d == 0 {
			return -1, 0
		}
		rp := t.Power / PathLoss(d, p.Alpha)
		total += rp
		if rp > bestRP {
			bestRP = rp
			best = k
		}
	}
	if best < 0 {
		return -1, 0
	}
	s := bestRP / (p.Noise + (total - bestRP))
	if s < p.Beta {
		return -1, 0
	}
	return best, s
}
