// Package errdemo is the errdiscipline fixture: package-scope Err…
// sentinels must be compared with errors.Is and wrapped with %w.
package errdemo

import (
	"errors"
	"fmt"
)

// ErrNotConverged and ErrDamped mirror the repo's solver sentinels.
var (
	ErrNotConverged = errors.New("not converged")
	ErrDamped       = errors.New("damped")
)

// Bad compares and wraps the wrong way.
func Bad(err error) error {
	if err == ErrNotConverged { // want `== on sentinel ErrNotConverged misses wrapped errors`
		return nil
	}
	if ErrDamped != err { // want `!= on sentinel ErrDamped misses wrapped errors`
		return nil
	}
	return fmt.Errorf("solve failed: %v", ErrDamped) // want `fmt.Errorf hides sentinel ErrDamped`
}

// Good uses the sanctioned forms; nil comparisons stay legal.
func Good(err error) error {
	if errors.Is(err, ErrNotConverged) {
		return nil
	}
	if err == nil {
		return nil
	}
	return fmt.Errorf("solve failed: %w", ErrDamped)
}
