package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sinrconn"
	"sinrconn/internal/faults"
	"sinrconn/internal/serve/cache"
)

// Config tunes the daemon.
type Config struct {
	// CacheSize / CacheTTL bound each deployment's result cache (the
	// session memo). Zero size selects the sinrconn default (128); zero
	// TTL never expires.
	CacheSize int
	CacheTTL  time.Duration
	// DefaultTimeout bounds requests that carry no timeout_ms (0 = only
	// MaxTimeout applies). MaxTimeout caps every request (0 = uncapped).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// MaxResultsPerSession caps the result handles a session retains
	// (oldest dropped first; default 256).
	MaxResultsPerSession int
	// Workers bounds each deployment's simulator worker pool (0 = NumCPU).
	Workers int
	// Injector, if non-nil, is the fault-injection hook (normally a
	// *faults.Plan, installed by tests and `served -chaos`): the HTTP
	// middleware consults it for handler delays and connection resets,
	// and every deployment Network inherits it for the engine/cache/churn
	// sites. Nil (production) means no injection anywhere.
	Injector faults.Injector
	// MaxConcurrent bounds operation requests (open/run/runmatrix/join/
	// repair/churn) executing at once. Excess requests queue; a request
	// whose projected queue wait exceeds its deadline — or that finds the
	// queue full — is shed with 503 + Retry-After. 0 disables admission
	// control (every request executes immediately, the pre-PR-10
	// behavior).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 4×MaxConcurrent; meaningful only with MaxConcurrent > 0).
	MaxQueue int
	// BreakerThreshold is the number k of CONSECUTIVE retryable failures
	// (ErrRetryExhausted, deadline timeouts) after which a session's
	// circuit breaker opens and requests on that session are rejected
	// with 503 until a seeded half-open probe succeeds. 0 selects the
	// default (8); negative disables the breaker.
	BreakerThreshold int
	// BreakerSeed keys the breakers' deterministic half-open probe
	// schedule (rejection counts, not wall time — replay-identical).
	BreakerSeed int64
	// Journal, if non-nil, records session opens and closes (fsync'd per
	// record) so a crashed daemon can rebuild its session table with
	// `served -recover` (Server.Restore). Results are NOT journaled:
	// deployments are content-addressed and runs deterministic, so a
	// recovered daemon recomputes (or re-caches) bit-identical answers.
	Journal *Journal
}

// DefaultBreakerThreshold is the consecutive-failure count that opens a
// session's circuit breaker when Config.BreakerThreshold is zero.
const DefaultBreakerThreshold = 8

func (c *Config) defaults() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxResultsPerSession <= 0 {
		c.MaxResultsPerSession = 256
	}
	if c.MaxConcurrent > 0 && c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
}

// deployment is one content-addressed *sinrconn.Network shared by every
// session that opened identical (points, options).
type deployment struct {
	key    uint64
	pts    []sinrconn.Point
	optSig string
	nw     *sinrconn.Network
	refs   int
}

// session is a refcount on a deployment plus a namespace of result
// handles for follow-up operations and a per-session circuit breaker.
type session struct {
	id  string
	dep *deployment
	brk *breaker // nil when the breaker is disabled

	mu      sync.Mutex
	results map[string]*sinrconn.Result
	order   []string
	nextID  int
	seen    map[*sinrconn.Result]struct{}
}

// Server is the daemon state: sessions, deduplicated deployments, and
// request/cache metrics. Create with New, expose via Handler, stop with
// Drain (refuse new sessions) then Close (release every Network).
type Server struct {
	cfg      Config
	draining atomic.Bool
	limiter  *limiter // nil when admission control is off

	mu          sync.Mutex
	deployments map[uint64][]*deployment
	sessions    map[string]*session
	nextSession uint64
	recovered   int         // sessions rebuilt by Restore
	retired     cache.Stats // accumulated counters of closed deployments

	metrics metrics
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:         cfg,
		deployments: make(map[uint64][]*deployment),
		sessions:    make(map[string]*session),
	}
	if cfg.MaxConcurrent > 0 {
		s.limiter = newLimiter(cfg.MaxConcurrent, cfg.MaxQueue)
	}
	return s
}

// Drain marks the server draining: new sessions are refused with 503 and
// /healthz reports "draining" (the load balancer's signal to stop routing
// here). In-flight and follow-up requests on existing sessions continue;
// pair with http.Server.Shutdown to wait for them.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports drain state.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases every deployment's Network (waiting for their in-flight
// operations) and forgets all sessions. Call after the HTTP listener has
// stopped accepting requests.
func (s *Server) Close() error {
	s.mu.Lock()
	var all []*deployment
	for _, list := range s.deployments {
		all = append(all, list...)
	}
	s.deployments = make(map[uint64][]*deployment)
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	for _, d := range all {
		st := d.nw.CacheStats()
		d.nw.Close()
		s.mu.Lock()
		s.accumulateRetired(st)
		s.mu.Unlock()
	}
	return nil
}

// Handler returns the daemon's route table wrapped in the hardening
// middleware: operation endpoints pass admission control (s.admit);
// the whole mux sits behind fault injection (delay/conn-reset sites)
// and, outermost, panic recovery — so no handler crash, injected or
// real, ever kills the process. Close is deliberately NOT admitted:
// it only releases resources, and shedding it would leak sessions on
// the very overloads admission exists to survive. /healthz and
// /metrics bypass both admission and injection so operators can still
// see a chaotic server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.instrument("open", s.admit(s.handleOpen)))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("close", s.handleClose))
	mux.HandleFunc("POST /v1/sessions/{id}/run", s.instrument("run", s.admit(s.handleRun)))
	mux.HandleFunc("POST /v1/sessions/{id}/runmatrix", s.instrument("runmatrix", s.admit(s.handleRunMatrix)))
	mux.HandleFunc("POST /v1/sessions/{id}/join", s.instrument("join", s.admit(s.handleJoin)))
	mux.HandleFunc("POST /v1/sessions/{id}/repair", s.instrument("repair", s.admit(s.handleRepair)))
	mux.HandleFunc("POST /v1/sessions/{id}/churn", s.instrument("churn", s.admit(s.handleChurn)))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	var h http.Handler = mux
	h = s.injectFaults(h)
	h = s.recoverPanics(h)
	return h
}

// ---- session & deployment bookkeeping ----

// deployKey content-addresses (points, option signature).
func deployKey(pts []sinrconn.Point, optSig string) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, p := range pts {
		x := math.Float64bits(p.X)
		y := math.Float64bits(p.Y)
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
			buf[8+i] = byte(y >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(optSig))
	return h.Sum64()
}

func samePoints(a, b []sinrconn.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// acquireDeployment returns a refcounted Network for (pts, optSig),
// opening one on first use. The open itself runs outside s.mu — geometry
// validation is O(n²) — with a reservation so concurrent identical opens
// share the winner.
func (s *Server) acquireDeployment(pts []sinrconn.Point, optSig string, open func() (*sinrconn.Network, error)) (*deployment, bool, error) {
	key := deployKey(pts, optSig)
	s.mu.Lock()
	for _, d := range s.deployments[key] {
		if d.optSig == optSig && samePoints(d.pts, pts) {
			d.refs++
			s.mu.Unlock()
			return d, true, nil
		}
	}
	s.mu.Unlock()

	nw, err := open()
	if err != nil {
		return nil, false, err
	}
	d := &deployment{key: key, pts: pts, optSig: optSig, nw: nw, refs: 1}
	s.mu.Lock()
	// A concurrent identical open may have won the race; prefer the
	// resident one and discard ours.
	for _, other := range s.deployments[key] {
		if other.optSig == optSig && samePoints(other.pts, pts) {
			other.refs++
			s.mu.Unlock()
			nw.Close()
			return other, true, nil
		}
	}
	s.deployments[key] = append(s.deployments[key], d)
	s.mu.Unlock()
	return d, false, nil
}

// releaseDeployment drops one reference, closing the Network on the last.
func (s *Server) releaseDeployment(d *deployment) {
	s.mu.Lock()
	d.refs--
	if d.refs > 0 {
		s.mu.Unlock()
		return
	}
	list := s.deployments[d.key]
	for i, o := range list {
		if o == d {
			s.deployments[d.key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.deployments[d.key]) == 0 {
		delete(s.deployments, d.key)
	}
	s.mu.Unlock()
	st := d.nw.CacheStats()
	d.nw.Close()
	s.mu.Lock()
	s.accumulateRetired(st)
	s.mu.Unlock()
}

// accumulateRetired folds a closed deployment's cache counters into the
// retired baseline (caller holds s.mu).
func (s *Server) accumulateRetired(st cache.Stats) {
	s.retired.Hits += st.Hits
	s.retired.Misses += st.Misses
	s.retired.Coalesced += st.Coalesced
	s.retired.Evictions += st.Evictions
	s.retired.Expirations += st.Expirations
	s.retired.Computes += st.Computes
	s.retired.ComputeNanos += st.ComputeNanos
	s.retired.Errors += st.Errors
}

// cacheStats aggregates result-cache counters across every live
// deployment plus the retired baseline.
func (s *Server) cacheStats() cache.Stats {
	s.mu.Lock()
	out := s.retired
	var live []*deployment
	for _, list := range s.deployments {
		live = append(live, list...)
	}
	s.mu.Unlock()
	for _, d := range live {
		st := d.nw.CacheStats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Coalesced += st.Coalesced
		out.Evictions += st.Evictions
		out.Expirations += st.Expirations
		out.Computes += st.Computes
		out.ComputeNanos += st.ComputeNanos
		out.Errors += st.Errors
		out.Size += st.Size
		out.Capacity += st.Capacity
	}
	return out
}

func (s *Server) session(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// addResult files a result under the session, evicting the oldest handle
// past the cap, and reports whether the pointer was already known (the
// "cached" response flag for operations that cannot ask the memo).
func (sess *session) addResult(r *sinrconn.Result, cap int) (id string, known bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	_, known = sess.seen[r]
	sess.nextID++
	id = fmt.Sprintf("r%d", sess.nextID)
	sess.results[id] = r
	sess.seen[r] = struct{}{}
	sess.order = append(sess.order, id)
	for len(sess.order) > cap {
		old := sess.order[0]
		sess.order = sess.order[1:]
		if or, ok := sess.results[old]; ok {
			delete(sess.results, old)
			delete(sess.seen, or)
		}
	}
	return id, known
}

func (sess *session) result(id string) (*sinrconn.Result, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	r, ok := sess.results[id]
	return r, ok
}

// ---- handlers ----

// httpError is an error with a status code.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// status maps an operation error to an HTTP status.
func status(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, sinrconn.ErrNetworkClosed):
		return http.StatusConflict
	case errors.Is(err, sinrconn.ErrNotNormalized):
		return http.StatusBadRequest
	case errors.Is(err, sinrconn.ErrNotConverged):
		// Las Vegas non-convergence: retryable with a different seed.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := status(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorJSON{Error: err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decode reads a bounded JSON body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// reqCtx derives the operation context from the request: the HTTP request
// context (client disconnect cancels between slots) bounded by timeout_ms
// and the server's caps.
func (s *Server) reqCtx(r *http.Request, ms int64) (context.Context, context.CancelFunc) {
	d := timeout(ms, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, &httpError{status: http.StatusServiceUnavailable, err: errors.New("server is draining")})
		return
	}
	var req OpenRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	sess, shared, err := s.openSession(req, "", true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, OpenResponse{SessionID: sess.id, Nodes: sess.dep.nw.Len(), SharedDeployment: shared})
}

// openSession validates an open request, acquires (or shares) the
// content-addressed deployment, and registers the session. forceID pins
// the session id (journal recovery — Restore); "" allocates the next
// one. journal controls whether the open is recorded in the configured
// journal (recovery replays must not re-journal records already there).
func (s *Server) openSession(req OpenRequest, forceID string, journal bool) (*session, bool, error) {
	if len(req.Points) == 0 {
		return nil, false, badRequest("no points")
	}
	opts, err := req.Options.runOptions(true)
	if err != nil {
		return nil, false, badRequest("%v", err)
	}
	size := req.CacheSize
	if size == 0 {
		size = s.cfg.CacheSize
	}
	ttl := s.cfg.CacheTTL
	if req.CacheTTLMs > 0 {
		ttl = time.Duration(req.CacheTTLMs) * time.Millisecond
	}
	opts = append(opts, sinrconn.WithResultCache(size, ttl))
	if s.cfg.Workers > 0 {
		opts = append(opts, sinrconn.WithWorkers(s.cfg.Workers))
	}
	if s.cfg.Injector != nil {
		opts = append(opts, sinrconn.WithFaultInjector(s.cfg.Injector))
	}

	// The deployment signature covers everything that shapes the Network:
	// the canonical JSON of the options plus the cache bounds. The
	// injector is deliberately excluded — it never changes results.
	sig, _ := json.Marshal(req.Options)
	optSig := fmt.Sprintf("%s|cache=%d,%s", sig, size, ttl)
	pts := toPoints(req.Points)
	dep, shared, err := s.acquireDeployment(pts, optSig, func() (*sinrconn.Network, error) {
		return sinrconn.Open(pts, opts...)
	})
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	id := forceID
	if id == "" {
		s.nextSession++
		id = fmt.Sprintf("s%d", s.nextSession)
	} else {
		// Recovery: preserve the journaled id and keep the allocator
		// ahead of it so post-recovery opens never collide.
		if n, perr := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 64); perr == nil && n > s.nextSession {
			s.nextSession = n
		}
		if _, exists := s.sessions[id]; exists {
			s.mu.Unlock()
			s.releaseDeployment(dep)
			return nil, false, fmt.Errorf("serve: session %q already live (duplicate journal open)", id)
		}
	}
	sess := &session{
		id:      id,
		dep:     dep,
		results: make(map[string]*sinrconn.Result),
		seen:    make(map[*sinrconn.Result]struct{}),
	}
	if s.cfg.BreakerThreshold > 0 {
		sess.brk = newBreaker(s.cfg.BreakerThreshold, breakerSeed(s.cfg.BreakerSeed, id))
	}
	s.sessions[id] = sess
	s.mu.Unlock()

	if journal && s.cfg.Journal != nil {
		rec := JournalRecord{Op: journalOpOpen, ID: id, Key: fmt.Sprintf("%016x", dep.key), Open: &req}
		if jerr := s.cfg.Journal.appendRecord(rec); jerr != nil {
			// A session whose open did not reach stable storage would
			// silently vanish on crash: fail the open instead of lying
			// about durability.
			s.dropSession(id)
			return nil, false, fmt.Errorf("serve: journal append: %w", jerr)
		}
	}
	return sess, shared, nil
}

// dropSession unregisters a session and releases its deployment
// reference, reporting whether it existed.
func (s *Server) dropSession(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	s.releaseDeployment(sess.dep)
	return true
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.dropSession(id) {
		s.writeError(w, &httpError{status: http.StatusNotFound, err: fmt.Errorf("unknown session %q", id)})
		return
	}
	if s.cfg.Journal != nil {
		// Best effort: a lost close record only resurrects a closed
		// session after a crash — a refcount, not a correctness problem.
		// The failure still lands in the journal's error counter.
		s.cfg.Journal.appendRecord(JournalRecord{Op: journalOpClose, ID: id}) //nolint:errcheck
	}
	s.writeJSON(w, map[string]string{"status": "closed"})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, err: fmt.Errorf("unknown session %q", r.PathValue("id"))})
		return
	}
	if !s.breakerAdmit(w, sess) {
		return
	}
	var req RunRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, err := pipelineByName(req.Pipeline)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	opts, err := req.Options.runOptions(false)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMs)
	defer cancel()

	if req.Stream {
		s.streamRun(ctx, w, sess, p, req, opts)
		return
	}
	res, cached, err := sess.dep.nw.RunCached(ctx, p, opts...)
	s.breakerRecord(sess, err)
	if err != nil {
		s.writeError(w, err)
		return
	}
	rid, _ := sess.addResult(res, s.cfg.MaxResultsPerSession)
	s.writeJSON(w, RunResponse{ResultID: rid, Cached: cached, Result: EncodeResult(res, req.IncludeTree)})
}

// resultLine is the terminal line of a streamed run.
type resultLine struct {
	Type string `json:"type"` // "result"
	RunResponse
}

// streamRun answers a run request with chunked newline-delimited JSON:
// one "slot" line per simulator slot, then a terminal "result" or "error"
// line. A memo hit streams no slot lines (nothing executed).
func (s *Server) streamRun(ctx context.Context, w http.ResponseWriter, sess *session, p sinrconn.Pipeline, req RunRequest, opts []sinrconn.RunOption) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var streamed int
	obs := func(e sinrconn.SlotEvent) {
		enc.Encode(SlotEventJSON{Type: "slot", Slot: e.Slot, Senders: e.Senders, Deliveries: e.Deliveries, Far: e.Far})
		streamed++
		// Flush in small batches: per-slot flushes would syscall thousands
		// of times per construction.
		if flusher != nil && streamed%64 == 0 {
			flusher.Flush()
		}
	}
	res, cached, err := sess.dep.nw.RunCached(ctx, p, append(opts, sinrconn.WithObserver(obs))...)
	s.breakerRecord(sess, err)
	if err != nil {
		enc.Encode(ErrorJSON{Type: "error", Error: err.Error()})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	rid, _ := sess.addResult(res, s.cfg.MaxResultsPerSession)
	enc.Encode(resultLine{Type: "result", RunResponse: RunResponse{ResultID: rid, Cached: cached, Result: EncodeResult(res, req.IncludeTree)}})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleRunMatrix(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, err: fmt.Errorf("unknown session %q", r.PathValue("id"))})
		return
	}
	if !s.breakerAdmit(w, sess) {
		return
	}
	var req MatrixRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Specs) == 0 {
		s.writeError(w, badRequest("no specs"))
		return
	}
	specs := make([]sinrconn.RunSpec, len(req.Specs))
	for i, sp := range req.Specs {
		p, err := pipelineByName(sp.Pipeline)
		if err != nil {
			s.writeError(w, badRequest("spec %d: %v", i, err))
			return
		}
		opts, err := sp.Options.runOptions(false)
		if err != nil {
			s.writeError(w, badRequest("spec %d: %v", i, err))
			return
		}
		specs[i] = sinrconn.RunSpec{Pipeline: p, Opts: opts}
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMs)
	defer cancel()
	results, err := sess.dep.nw.RunMatrix(ctx, specs)
	s.breakerRecord(sess, err)
	resp := MatrixResponse{
		Results:   make([]*ResultJSON, len(specs)),
		ResultIDs: make([]string, len(specs)),
	}
	if err != nil {
		// Per-spec failures leave nil result entries; surface the joined
		// error once and per-slot below.
		resp.Errors = make([]string, len(specs))
	}
	for i, res := range results {
		if res == nil {
			if resp.Errors != nil {
				resp.Errors[i] = fmt.Sprintf("spec %d failed", i)
			}
			continue
		}
		rj := EncodeResult(res, req.IncludeTree)
		resp.Results[i] = &rj
		resp.ResultIDs[i], _ = sess.addResult(res, s.cfg.MaxResultsPerSession)
	}
	if err != nil {
		// Overwrite placeholders with the real split errors when
		// available.
		for i := range results {
			if results[i] == nil {
				resp.Errors[i] = err.Error()
			}
		}
	}
	s.writeJSON(w, resp)
}

// boundResult resolves a result handle for follow-up operations.
func (s *Server) boundResult(sess *session, id string) (*sinrconn.Result, error) {
	if id == "" {
		return nil, badRequest("missing result_id")
	}
	r, ok := sess.result(id)
	if !ok {
		return nil, &httpError{status: http.StatusNotFound, err: fmt.Errorf("unknown result %q", id)}
	}
	return r, nil
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, err: fmt.Errorf("unknown session %q", r.PathValue("id"))})
		return
	}
	if !s.breakerAdmit(w, sess) {
		return
	}
	var req JoinRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	res, err := s.boundResult(sess, req.ResultID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Points) == 0 {
		s.writeError(w, badRequest("no points to join"))
		return
	}
	opts, err := req.Options.runOptions(false)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMs)
	defer cancel()
	grown, err := res.Network().Join(ctx, res, toPoints(req.Points), opts...)
	s.breakerRecord(sess, err)
	if err != nil {
		s.writeError(w, err)
		return
	}
	rid, known := sess.addResult(grown, s.cfg.MaxResultsPerSession)
	s.writeJSON(w, RunResponse{ResultID: rid, Cached: known, Result: EncodeResult(grown, req.IncludeTree)})
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, err: fmt.Errorf("unknown session %q", r.PathValue("id"))})
		return
	}
	if !s.breakerAdmit(w, sess) {
		return
	}
	var req RepairRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	res, err := s.boundResult(sess, req.ResultID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if (len(req.Failed) == 0) == (len(req.Links) == 0) {
		s.writeError(w, badRequest("exactly one of failed (nodes) or links must be non-empty"))
		return
	}
	opts, err := req.Options.runOptions(false)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMs)
	defer cancel()
	var repaired *sinrconn.Result
	if len(req.Failed) > 0 {
		repaired, err = res.Network().Repair(ctx, res, req.Failed, opts...)
	} else {
		links := make([]sinrconn.Link, len(req.Links))
		for i, l := range req.Links {
			links[i] = sinrconn.Link{From: l.From, To: l.To}
		}
		repaired, err = res.Network().RepairLinks(ctx, res, links, opts...)
	}
	s.breakerRecord(sess, err)
	if err != nil {
		s.writeError(w, err)
		return
	}
	rid, known := sess.addResult(repaired, s.cfg.MaxResultsPerSession)
	s.writeJSON(w, RunResponse{ResultID: rid, Cached: known, Result: EncodeResult(repaired, req.IncludeTree)})
}

func (s *Server) handleChurn(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, err: fmt.Errorf("unknown session %q", r.PathValue("id"))})
		return
	}
	if !s.breakerAdmit(w, sess) {
		return
	}
	var req ChurnRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := req.traceSpec()
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.reqCtx(r, req.TimeoutMs)
	defer cancel()
	report, err := sess.dep.nw.Churn(ctx, spec)
	s.breakerRecord(sess, err)
	if err != nil {
		s.writeError(w, err)
		return
	}
	rid, _ := sess.addResult(report.Final, s.cfg.MaxResultsPerSession)
	soft := make([]string, len(report.Soft))
	for i, e := range report.Soft {
		soft[i] = e.Error()
	}
	s.writeJSON(w, ChurnResponse{
		ResultID: rid,
		Result:   EncodeResult(report.Final, req.IncludeTree),
		Stats:    report.Stats,
		Soft:     soft,
	})
}

// ---- metrics & health ----

// endpointStats accumulates per-endpoint request counters.
type endpointStats struct {
	requests uint64
	errors   uint64
	nanos    uint64
}

type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats

	// panics counts handler panics converted to 500s by the recovery
	// middleware (the process survived each one).
	panics atomic.Uint64
	// breakerOpened / breakerRejected / breakerProbes count circuit
	// breaker transitions and rejections across all sessions.
	breakerOpened   atomic.Uint64
	breakerRejected atomic.Uint64
	breakerProbes   atomic.Uint64
}

// instrument wraps a handler with request counting and latency
// accumulation per endpoint.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.mu.Lock()
		if s.metrics.endpoints == nil {
			s.metrics.endpoints = make(map[string]*endpointStats)
		}
		es := s.metrics.endpoints[name]
		if es == nil {
			es = &endpointStats{}
			s.metrics.endpoints[name] = es
		}
		es.requests++
		if sw.status >= 400 {
			es.errors++
		}
		es.nanos += uint64(time.Since(start))
		s.metrics.mu.Unlock()
	}
}

// statusWriter records the response status for error counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// healthCache is the cache block of a /healthz response.
type healthCache struct {
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Coalesced    uint64  `json:"coalesced"`
	Evictions    uint64  `json:"evictions"`
	Expirations  uint64  `json:"expirations"`
	HitRate      float64 `json:"hit_rate"`
	Size         int     `json:"size"`
	Capacity     int     `json:"capacity"`
	Computes     uint64  `json:"computes"`
	ComputeNanos uint64  `json:"compute_nanos"`
}

// healthAdmission is the admission-control block of a /healthz response
// (present only when Config.MaxConcurrent > 0).
type healthAdmission struct {
	Running       int64  `json:"running"`
	Queued        int64  `json:"queued"`
	Admitted      uint64 `json:"admitted"`
	ShedQueueFull uint64 `json:"shed_queue_full"`
	ShedDeadline  uint64 `json:"shed_deadline"`
	WaitCanceled  uint64 `json:"wait_canceled"`
}

// healthBreaker is the circuit-breaker block of a /healthz response
// (present only when breakers are enabled).
type healthBreaker struct {
	Opened   uint64 `json:"opened"`
	Rejected uint64 `json:"rejected"`
	Probes   uint64 `json:"probes"`
}

// Health is the /healthz body.
type Health struct {
	Status      string      `json:"status"` // "ok" | "draining"
	Sessions    int         `json:"sessions"`
	Deployments int         `json:"deployments"`
	Recovered   int         `json:"recovered,omitempty"` // sessions rebuilt by -recover
	Panics      uint64      `json:"panics"`
	Cache       healthCache `json:"cache"`

	Admission *healthAdmission `json:"admission,omitempty"`
	Breaker   *healthBreaker   `json:"breaker,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := len(s.sessions)
	recovered := s.recovered
	deployments := 0
	for _, list := range s.deployments {
		deployments += len(list)
	}
	s.mu.Unlock()
	st := s.cacheStats()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	h := Health{
		Status:      status,
		Sessions:    sessions,
		Deployments: deployments,
		Recovered:   recovered,
		Panics:      s.metrics.panics.Load(),
		Cache: healthCache{
			Hits:         st.Hits,
			Misses:       st.Misses,
			Coalesced:    st.Coalesced,
			Evictions:    st.Evictions,
			Expirations:  st.Expirations,
			HitRate:      st.HitRate(),
			Size:         st.Size,
			Capacity:     st.Capacity,
			Computes:     st.Computes,
			ComputeNanos: st.ComputeNanos,
		},
	}
	if l := s.limiter; l != nil {
		h.Admission = &healthAdmission{
			Running:       l.running.Load(),
			Queued:        l.queued.Load(),
			Admitted:      l.admitted.Load(),
			ShedQueueFull: l.shedQueueFull.Load(),
			ShedDeadline:  l.shedDeadline.Load(),
			WaitCanceled:  l.waitCanceled.Load(),
		}
	}
	if s.cfg.BreakerThreshold > 0 {
		h.Breaker = &healthBreaker{
			Opened:   s.metrics.breakerOpened.Load(),
			Rejected: s.metrics.breakerRejected.Load(),
			Probes:   s.metrics.breakerProbes.Load(),
		}
	}
	s.writeJSON(w, h)
}

// handleMetrics exports Prometheus-style text counters: result-cache
// hit/miss/eviction/latency, per-endpoint request counts and latency
// sums, and gauges for sessions and drain state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cacheStats()
	s.mu.Lock()
	sessions := len(s.sessions)
	deployments := 0
	for _, list := range s.deployments {
		deployments += len(list)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE serve_cache_hits_total counter\nserve_cache_hits_total %d\n", st.Hits)
	fmt.Fprintf(w, "# TYPE serve_cache_misses_total counter\nserve_cache_misses_total %d\n", st.Misses)
	fmt.Fprintf(w, "# TYPE serve_cache_coalesced_total counter\nserve_cache_coalesced_total %d\n", st.Coalesced)
	fmt.Fprintf(w, "# TYPE serve_cache_evictions_total counter\nserve_cache_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(w, "# TYPE serve_cache_expirations_total counter\nserve_cache_expirations_total %d\n", st.Expirations)
	fmt.Fprintf(w, "# TYPE serve_cache_compute_total counter\nserve_cache_compute_total %d\n", st.Computes)
	fmt.Fprintf(w, "# TYPE serve_cache_compute_seconds_total counter\nserve_cache_compute_seconds_total %g\n", float64(st.ComputeNanos)/1e9)
	fmt.Fprintf(w, "# TYPE serve_cache_errors_total counter\nserve_cache_errors_total %d\n", st.Errors)
	fmt.Fprintf(w, "# TYPE serve_cache_hit_rate gauge\nserve_cache_hit_rate %g\n", st.HitRate())
	fmt.Fprintf(w, "# TYPE serve_cache_entries gauge\nserve_cache_entries %d\n", st.Size)
	fmt.Fprintf(w, "# TYPE serve_sessions gauge\nserve_sessions %d\n", sessions)
	fmt.Fprintf(w, "# TYPE serve_deployments gauge\nserve_deployments %d\n", deployments)
	draining := 0
	if s.draining.Load() {
		draining = 1
	}
	fmt.Fprintf(w, "# TYPE serve_draining gauge\nserve_draining %d\n", draining)
	fmt.Fprintf(w, "# TYPE serve_panics_total counter\nserve_panics_total %d\n", s.metrics.panics.Load())
	fmt.Fprintf(w, "# TYPE serve_recovered_sessions gauge\nserve_recovered_sessions %d\n", s.recoveredCount())
	if l := s.limiter; l != nil {
		fmt.Fprintf(w, "# TYPE serve_admission_running gauge\nserve_admission_running %d\n", l.running.Load())
		fmt.Fprintf(w, "# TYPE serve_admission_queued gauge\nserve_admission_queued %d\n", l.queued.Load())
		fmt.Fprintf(w, "# TYPE serve_admitted_total counter\nserve_admitted_total %d\n", l.admitted.Load())
		fmt.Fprintf(w, "# TYPE serve_shed_total counter\n")
		fmt.Fprintf(w, "serve_shed_total{reason=\"queue_full\"} %d\n", l.shedQueueFull.Load())
		fmt.Fprintf(w, "serve_shed_total{reason=\"deadline\"} %d\n", l.shedDeadline.Load())
		fmt.Fprintf(w, "serve_shed_total{reason=\"wait_canceled\"} %d\n", l.waitCanceled.Load())
	}
	if s.cfg.BreakerThreshold > 0 {
		fmt.Fprintf(w, "# TYPE serve_breaker_opened_total counter\nserve_breaker_opened_total %d\n", s.metrics.breakerOpened.Load())
		fmt.Fprintf(w, "# TYPE serve_breaker_rejected_total counter\nserve_breaker_rejected_total %d\n", s.metrics.breakerRejected.Load())
		fmt.Fprintf(w, "# TYPE serve_breaker_probes_total counter\nserve_breaker_probes_total %d\n", s.metrics.breakerProbes.Load())
	}
	if j := s.cfg.Journal; j != nil {
		fmt.Fprintf(w, "# TYPE serve_journal_records_total counter\nserve_journal_records_total %d\n", j.Records())
		fmt.Fprintf(w, "# TYPE serve_journal_errors_total counter\nserve_journal_errors_total %d\n", j.Errors())
	}
	if plan, ok := s.cfg.Injector.(*faults.Plan); ok {
		fmt.Fprintf(w, "# TYPE serve_fault_visits_total counter\n")
		for _, c := range plan.Counts() {
			fmt.Fprintf(w, "serve_fault_visits_total{site=%q} %d\n", c.Site, c.Visits)
		}
		fmt.Fprintf(w, "# TYPE serve_fault_injected_total counter\n")
		for _, c := range plan.Counts() {
			fmt.Fprintf(w, "serve_fault_injected_total{site=%q} %d\n", c.Site, c.Fired)
		}
	}

	s.metrics.mu.Lock()
	names := make([]string, 0, len(s.metrics.endpoints))
	for name := range s.metrics.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# TYPE serve_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "serve_requests_total{endpoint=%q} %d\n", name, s.metrics.endpoints[name].requests)
	}
	fmt.Fprintf(w, "# TYPE serve_request_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "serve_request_errors_total{endpoint=%q} %d\n", name, s.metrics.endpoints[name].errors)
	}
	fmt.Fprintf(w, "# TYPE serve_request_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "serve_request_seconds_total{endpoint=%q} %g\n", name, float64(s.metrics.endpoints[name].nanos)/1e9)
	}
	s.metrics.mu.Unlock()
}
