// Package loader type-checks Go packages for the lint analyzers without any
// dependency outside the standard library: it shells out to `go list -deps
// -json` for build-constraint-aware file selection and dependency order,
// parses every file with go/parser, and type-checks bottom-up with go/types.
// The standard library is checked from GOROOT source (CGO_ENABLED=0 so the
// pure-Go file sets are selected), which keeps the whole pipeline working in
// offline containers where golang.org/x/tools cannot be fetched.
//
// Fixture packages for analysistest live under testdata (invisible to the go
// tool) and are loaded by LoadDir with a tolerant importer: imports resolve
// against sibling fixture directories first, then real packages, and finally
// fall back to an empty placeholder package so that purity analyzers can
// still see the import graph even when a fixture deliberately imports a
// forbidden package without using it.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects go/types errors. Standard-library packages may
	// carry a few (exotic build shapes); module packages should have none
	// when `go build ./...` is clean.
	TypeErrors []error
}

// Loader owns the shared FileSet and the cache of type-checked packages.
type Loader struct {
	Fset *token.FileSet

	dir      string // module root to run `go list` in
	pkgs     map[string]*types.Package
	infos    map[string]*Package
	fixRoot  string // analysistest fixture root ("" outside tests)
	listMeta map[string]*listPkg
}

// New returns a Loader that resolves packages relative to moduleDir.
func New(moduleDir string) *Loader {
	return &Loader{
		Fset:     token.NewFileSet(),
		dir:      moduleDir,
		pkgs:     make(map[string]*types.Package),
		infos:    make(map[string]*Package),
		listMeta: make(map[string]*listPkg),
	}
}

type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// goList runs `go list -deps -json` on the patterns and caches the metadata
// of every package in the dependency closure, returning the import paths
// matched by the patterns themselves (dependency-ordered).
func (ld *Loader) goList(patterns ...string) ([]string, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,GoFiles,Standard,Module,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var order []string
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p struct {
			listPkg
			DepOnly bool
		}
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		meta := p.listPkg
		if _, ok := ld.listMeta[meta.ImportPath]; !ok {
			ld.listMeta[meta.ImportPath] = &meta
		}
		if !p.DepOnly {
			order = append(order, meta.ImportPath)
		}
	}
	return order, nil
}

// Load type-checks every package matched by the patterns (plus the full
// dependency closure) and returns the matched ones in dependency order.
func (ld *Loader) Load(patterns ...string) ([]*Package, error) {
	matched, err := ld.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range matched {
		pkg, err := ld.ensure(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// ensure type-checks the package at the given import path (loading metadata
// on demand) and caches the result. Returns (nil, nil) for "unsafe".
func (ld *Loader) ensure(path string) (*Package, error) {
	if path == "unsafe" {
		ld.pkgs[path] = types.Unsafe
		return nil, nil
	}
	if p, ok := ld.infos[path]; ok {
		return p, nil
	}
	meta, ok := ld.listMeta[path]
	if !ok {
		if _, err := ld.goList(path); err != nil {
			return nil, err
		}
		if meta, ok = ld.listMeta[path]; !ok {
			return nil, fmt.Errorf("loader: go list did not return %s", path)
		}
	}
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: parse %s: %v", filepath.Join(meta.Dir, name), err)
		}
		files = append(files, f)
	}
	pkg := ld.check(path, meta.Dir, files, false)
	return pkg, nil
}

// check runs go/types over the files, resolving imports through the loader.
// tolerant selects the fixture importer (placeholder packages for anything
// unresolvable).
func (ld *Loader) check(path, dir string, files []*ast.File, tolerant bool) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	out := &Package{Path: path, Dir: dir, Files: files, Info: info}
	conf := types.Config{
		Importer:                 importerFunc(func(p string) (*types.Package, error) { return ld.importPkg(p, tolerant) }),
		FakeImportC:              true,
		IgnoreFuncBodies:         false,
		DisableUnusedImportCheck: true,
		Error:                    func(err error) { out.TypeErrors = append(out.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, ld.Fset, files, info)
	out.Types = tpkg
	ld.pkgs[path] = tpkg
	ld.infos[path] = out
	return out
}

// importPkg resolves one import during type checking.
func (ld *Loader) importPkg(path string, tolerant bool) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.pkgs[path]; ok && p != nil {
		return p, nil
	}
	// Fixture siblings shadow real packages so fixtures can redeclare
	// sinrconn/... packages with tiny stubs.
	if ld.fixRoot != "" {
		if dir := filepath.Join(ld.fixRoot, filepath.FromSlash(path)); isDir(dir) {
			p, err := ld.loadDirAs(dir, path, true)
			if err == nil && p.Types != nil {
				return p.Types, nil
			}
		}
	}
	pkg, err := ld.ensure(path)
	if err == nil && pkg != nil && pkg.Types != nil {
		return pkg.Types, nil
	}
	if tolerant {
		// Deliberately-forbidden or unavailable import: hand back an empty
		// placeholder so the import edge is still visible to analyzers.
		name := path[strings.LastIndex(path, "/")+1:]
		p := types.NewPackage(path, name)
		p.MarkComplete()
		ld.pkgs[path] = p
		return p, nil
	}
	if err == nil {
		err = fmt.Errorf("loader: cannot import %s", path)
	}
	return nil, err
}

// LoadDir parses and type-checks a fixture directory as importPath, with
// imports resolved against fixtureRoot first (see package doc). Used by the
// analysistest harness.
func (ld *Loader) LoadDir(dir, importPath, fixtureRoot string) (*Package, error) {
	ld.fixRoot = fixtureRoot
	defer func() { ld.fixRoot = "" }()
	return ld.loadDirAs(dir, importPath, true)
}

func (ld *Loader) loadDirAs(dir, importPath string, tolerant bool) (*Package, error) {
	if p, ok := ld.infos[importPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return ld.check(importPath, dir, files, tolerant), nil
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
