package workload

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
)

func TestGaussianClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 40, 150} {
		pts := GaussianClusters(rng, n, 4, 3, 60)
		if len(pts) != n {
			t.Fatalf("n=%d: got %d points", n, len(pts))
		}
		checkMinDist(t, pts, "gaussians")
	}
	if GaussianClusters(rng, 0, 3, 2, 10) != nil {
		t.Error("GaussianClusters(0) != nil")
	}
	// Degenerate cluster count and sigma are clamped, not fatal.
	pts := GaussianClusters(rng, 30, 0, 0, 0)
	if len(pts) != 30 {
		t.Errorf("clamped call: got %d points", len(pts))
	}
	checkMinDist(t, pts, "gaussians clamped")
}

func TestAnnulus(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := Annulus(rng, 120, 20, 28)
	if len(pts) != 120 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "annulus")
	// Every point lies in the band (the outer radius may have been grown,
	// so only check the inner exclusion).
	for _, p := range pts {
		if r := math.Hypot(p.X, p.Y); r < 20-1e-9 {
			t.Fatalf("point %v inside inner radius (r=%v)", p, r)
		}
	}
	// A band too thin for n must be grown, not spun forever.
	pts = Annulus(rng, 80, 5, 5.5)
	if len(pts) != 80 {
		t.Fatalf("thin band: got %d points", len(pts))
	}
	checkMinDist(t, pts, "annulus thin")
	if Annulus(rng, 0, 1, 2) != nil {
		t.Error("Annulus(0) != nil")
	}
}

func TestPowerLawRadii(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := PowerLawRadii(rng, 100, 2.5, 2)
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "powerlaw")
	// The halo should stretch Δ well beyond a uniform instance of the same n.
	if d := geom.Delta(pts); d < 50 {
		t.Errorf("power-law Δ = %v, expected a heavy tail (≥ 50)", d)
	}
	// Degenerate exponents are clamped.
	pts = PowerLawRadii(rng, 20, 0.5, 0)
	if len(pts) != 20 {
		t.Errorf("clamped call: got %d points", len(pts))
	}
	checkMinDist(t, pts, "powerlaw clamped")
}

func TestCitySuburbs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := CitySuburbs(rng, 90, 0.7)
	if len(pts) != 90 {
		t.Fatalf("got %d points", len(pts))
	}
	checkMinDist(t, pts, "city")
	// Two scales: the core must be far denser than the whole instance —
	// compare median nearest-neighbor distance of the first 63 (city)
	// points against the span of the whole point set.
	min, max := geom.BoundingBox(pts)
	span := math.Max(max.X-min.X, max.Y-min.Y)
	cityMin, cityMax := geom.BoundingBox(pts[:63])
	citySpan := math.Max(cityMax.X-cityMin.X, cityMax.Y-cityMin.Y)
	if citySpan*3 > span {
		t.Errorf("city span %v not well inside suburb span %v", citySpan, span)
	}
	// Extreme fractions degrade gracefully.
	for _, frac := range []float64{-1, 0, 1, 2} {
		pts := CitySuburbs(rng, 25, frac)
		if len(pts) != 25 {
			t.Fatalf("frac=%v: got %d points", frac, len(pts))
		}
		checkMinDist(t, pts, "city extreme frac")
	}
	if CitySuburbs(rng, 0, 0.5) != nil {
		t.Error("CitySuburbs(0) != nil")
	}
}

func TestUniformSeededDeterministic(t *testing.T) {
	a := UniformSeeded(42, 40)
	b := UniformSeeded(42, 40)
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	checkMinDist(t, a, "uniform seeded")
}

func TestMatrixSpecs(t *testing.T) {
	specs := Matrix()
	if len(specs) < 8 {
		t.Fatalf("matrix has %d specs, want ≥ 8", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		rng := rand.New(rand.NewSource(3))
		pts := s.Gen(rng, 36)
		if len(pts) != 36 {
			t.Fatalf("%s: got %d points", s.Name, len(pts))
		}
		checkMinDist(t, pts, s.Name)
	}
	for _, name := range []string{"uniform", "clusters", "grid", "chain", "gaussians", "annulus", "powerlaw", "city"} {
		if !seen[name] {
			t.Errorf("matrix missing %q", name)
		}
	}
}

// FuzzWorkloadMinDist fuzzes every matrix generator against the package
// contract: exactly n points, minimum pairwise distance ≥ 1 (Type 1: one
// violation = bug).
func FuzzWorkloadMinDist(f *testing.F) {
	f.Add(int64(42), int64(24), int64(0))
	f.Add(int64(123), int64(7), int64(5))
	f.Add(int64(456), int64(40), int64(7))
	f.Fuzz(func(t *testing.T, seed, n, spec int64) {
		specs := Matrix()
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = 64
		}
		s := specs[int(((spec%int64(len(specs)))+int64(len(specs)))%int64(len(specs)))]
		rng := rand.New(rand.NewSource(seed))
		pts := s.Gen(rng, int(n))
		if len(pts) != int(n) {
			t.Fatalf("%s: %d points for n=%d", s.Name, len(pts), n)
		}
		if len(pts) > 1 {
			if d := geom.MinDist(pts); d < 1-1e-9 {
				t.Fatalf("%s: min distance %v < 1", s.Name, d)
			}
		}
	})
}
