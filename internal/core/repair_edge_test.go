package core

// Edge cases of the failure-recovery path the regular dynamic tests never
// hit: degenerate trees (single node, everything failed), total-leaf
// failure (the fringe of the tree dies at once), and repair of a tree that
// has no links left to keep.

import (
	"context"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

func TestRepairAllNodesFailedErrors(t *testing.T) {
	in, res, _ := splitInstance(t, 80, 12, 0)
	if _, err := Repair(context.Background(), in, res.Tree, append([]int(nil), res.Tree.Nodes...), InitConfig{Seed: 1}); err == nil {
		t.Fatal("repairing a fully failed tree did not error")
	}
}

func TestRepairSingleNodeTree(t *testing.T) {
	in := sinr.MustInstance([]geom.Point{{X: 0}, {X: 2}}, sinr.DefaultParams())
	bt := &tree.BiTree{Root: 0, Nodes: []int{0}}
	// The only node fails → nothing survives.
	if _, err := Repair(context.Background(), in, bt, []int{0}, InitConfig{Seed: 2}); err == nil {
		t.Fatal("single-node tree with failed root did not error")
	}
	// A node outside the tree cannot fail.
	if _, err := Repair(context.Background(), in, bt, []int{1}, InitConfig{Seed: 3}); err == nil {
		t.Fatal("failing a non-member did not error")
	}
}

func TestRepairToSingleSurvivor(t *testing.T) {
	// Fail everything except the root: the repaired tree is one node, no
	// links, empty (zero-length) schedule — and valid.
	in, res, _ := splitInstance(t, 81, 10, 0)
	bt := res.Tree
	var failed []int
	for _, v := range bt.Nodes {
		if v != bt.Root {
			failed = append(failed, v)
		}
	}
	rres, err := Repair(context.Background(), in, bt, failed, InitConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rres.NewRoot != bt.Root {
		t.Errorf("root changed to %d", rres.NewRoot)
	}
	if len(rres.Tree.Nodes) != 1 || len(rres.Tree.Up) != 0 {
		t.Fatalf("survivor tree shape: %d nodes, %d links", len(rres.Tree.Nodes), len(rres.Tree.Up))
	}
	if rres.ScheduleLength != 0 {
		t.Errorf("schedule length %d for a single node", rres.ScheduleLength)
	}
	if rres.OrphanRoots != 0 || rres.SlotsUsed != 0 {
		t.Errorf("single-survivor repair consumed channel time: %+v", rres)
	}
	if err := rres.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairTotalLeafFailure(t *testing.T) {
	// Every leaf dies at once. No subtree is orphaned (leaves have no
	// children), so the repair is pure surgery plus a restamp — but the
	// fringe of the schedule collapses, which exercises Restamp against a
	// tree whose early slots all vanished.
	in, res, _ := splitInstance(t, 82, 40, 0)
	bt := res.Tree
	children := bt.Children()
	var leaves []int
	for _, v := range bt.Nodes {
		if v != bt.Root && len(children[v]) == 0 {
			leaves = append(leaves, v)
		}
	}
	if len(leaves) == 0 {
		t.Fatal("tree has no leaves")
	}
	rres, err := Repair(context.Background(), in, bt, leaves, InitConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rres.OrphanRoots != 0 || rres.SlotsUsed != 0 {
		t.Errorf("total-leaf failure should orphan nobody: %+v", rres)
	}
	if got, want := len(rres.Tree.Nodes), len(bt.Nodes)-len(leaves); got != want {
		t.Fatalf("repaired tree spans %d nodes, want %d", got, want)
	}
	if len(rres.Tree.Nodes) > 1 {
		checkFullBiTree(t, in, rres.Tree)
	}
	// Repairing again after the *new* fringe fails must also work: repeat
	// until only the root remains, validating at every step.
	cur := rres.Tree
	for len(cur.Nodes) > 1 {
		ch := cur.Children()
		var fringe []int
		for _, v := range cur.Nodes {
			if v != cur.Root && len(ch[v]) == 0 {
				fringe = append(fringe, v)
			}
		}
		r2, err := Repair(context.Background(), in, cur, fringe, InitConfig{Seed: 6})
		if err != nil {
			t.Fatalf("iterated fringe repair at %d nodes: %v", len(cur.Nodes), err)
		}
		cur = r2.Tree
		if len(cur.Nodes) > 1 {
			checkFullBiTree(t, in, cur)
		}
	}
	if cur.Root != bt.Root {
		t.Errorf("root drifted to %d during fringe collapse", cur.Root)
	}
}

func TestRepairLinksOnLinklessTree(t *testing.T) {
	in := sinr.MustInstance([]geom.Point{{X: 0}, {X: 2}}, sinr.DefaultParams())
	bt := &tree.BiTree{Root: 0, Nodes: []int{0}}
	// No links exist, so any claimed failed link is a validation error.
	if _, err := RepairLinks(context.Background(), in, bt, []sinr.Link{{From: 1, To: 0}}, InitConfig{Seed: 7}); err == nil {
		t.Fatal("link failure on linkless tree did not error")
	}
	// And an empty failure set is a no-op repair that restamps to nothing.
	rres, err := RepairLinks(context.Background(), in, bt, nil, InitConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rres.ScheduleLength != 0 || len(rres.Tree.Up) != 0 {
		t.Fatalf("no-op link repair produced %+v", rres)
	}
}
