package experiments

import "testing"

func TestE19Serve(t *testing.T) {
	runAndCheck(t, E19Serve(t.Context(), Quick()), 5)
}
