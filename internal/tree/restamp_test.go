package tree

// Edge-case coverage for Restamp, the repair tool every dynamic-membership
// path funnels through: degenerate trees (empty, single node), stale and
// colliding stamps, the infeasible-alone error path, and preservation of
// the validator battery on non-trivial trees.

import (
	"math/rand"
	"strings"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

func TestRestampEmptyTree(t *testing.T) {
	in := sinr.MustInstance([]geom.Point{{X: 0}}, sinr.DefaultParams())
	bt := &BiTree{Root: 0, Nodes: []int{0}}
	k, err := bt.Restamp(in)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Fatalf("empty tree restamped to %d slots, want 0", k)
	}
}

func TestRestampSingleLink(t *testing.T) {
	in := sinr.MustInstance([]geom.Point{{X: 0}, {X: 1.5}}, sinr.DefaultParams())
	pw := in.Params().SafePower(1.5)
	bt := &BiTree{
		Root:  0,
		Nodes: []int{0, 1},
		Up:    []TimedLink{{L: sinr.Link{From: 1, To: 0}, Slot: 77, Power: pw}},
	}
	k, err := bt.Restamp(in)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("single link restamped to %d slots, want 1", k)
	}
	if bt.Up[0].Slot != 1 {
		t.Fatalf("slot %d, want 1 (stamps must be dense after restamp)", bt.Up[0].Slot)
	}
	if err := bt.ValidatePerSlotFeasible(in); err != nil {
		t.Fatal(err)
	}
}

func TestRestampInfeasibleAloneErrors(t *testing.T) {
	in := sinr.MustInstance([]geom.Point{{X: 0}, {X: 4}}, sinr.DefaultParams())
	// Power below MinPower(4): the link cannot clear β even alone.
	bt := &BiTree{
		Root:  0,
		Nodes: []int{0, 1},
		Up:    []TimedLink{{L: sinr.Link{From: 1, To: 0}, Slot: 1, Power: 0.5 * in.Params().MinPower(4)}},
	}
	if _, err := bt.Restamp(in); err == nil {
		t.Fatal("underpowered link restamped without error")
	} else if !strings.Contains(err.Error(), "infeasible alone") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRestampRepairsCollidedStamps corrupts a valid chain schedule by
// forcing every link into one slot, then checks Restamp restores ordering
// and feasibility without touching powers.
func TestRestampRepairsCollidedStamps(t *testing.T) {
	pts := workload.ExponentialChain(10, 1.5)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	bt := &BiTree{Root: 9}
	for i := 0; i < 10; i++ {
		bt.Nodes = append(bt.Nodes, i)
	}
	for i := 0; i < 9; i++ {
		l := sinr.Link{From: i, To: i + 1}
		bt.Up = append(bt.Up, TimedLink{L: l, Slot: 1, Power: in.Params().SafePower(in.Length(l))})
	}
	powers := map[sinr.Link]float64{}
	for _, tl := range bt.Up {
		powers[tl.L] = tl.Power
	}
	k, err := bt.Restamp(in)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 {
		t.Fatalf("restamped to %d slots", k)
	}
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := bt.ValidateOrdering(); err != nil {
		t.Fatal(err)
	}
	if err := bt.ValidatePerSlotFeasible(in); err != nil {
		t.Fatal(err)
	}
	for _, tl := range bt.Up {
		if powers[tl.L] != tl.Power {
			t.Fatalf("Restamp changed power of %v", tl.L)
		}
	}
}

// TestRestampRandomTreesKeepBattery restamps randomized star-of-chains
// trees over uniform instances and re-runs the full validator battery.
func TestRestampRandomTreesKeepBattery(t *testing.T) {
	for _, seed := range []int64{42, 123, 456} {
		rng := rand.New(rand.NewSource(seed))
		pts := workload.UniformSeeded(seed, 24)
		in := sinr.MustInstance(pts, sinr.DefaultParams())
		// Random valid tree: each node links to a random lower index (root 0),
		// stamped in reverse node order (descendants first), one slot each.
		bt := &BiTree{Root: 0}
		for i := 0; i < 24; i++ {
			bt.Nodes = append(bt.Nodes, i)
		}
		for i := 23; i >= 1; i-- {
			to := rng.Intn(i)
			l := sinr.Link{From: i, To: to}
			bt.Up = append(bt.Up, TimedLink{L: l, Slot: 24 - i, Power: in.Params().SafePower(in.Length(l))})
		}
		k, err := bt.Restamp(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if k <= 0 || k > 23 {
			t.Fatalf("seed %d: restamped to %d slots", seed, k)
		}
		if err := bt.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := bt.ValidateOrdering(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := bt.ValidatePerSlotFeasible(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
