package core

import (
	"sinrconn/internal/tree"
)

// DefaultRho is the practical stand-in for the paper's degree cap
// ρ = 160/p² in Theorem 13. A tree has average degree < 2, so capping at 8
// retains the overwhelming majority of nodes while forcing O(1)-sparsity of
// the induced link set.
const DefaultRho = 8

// LowDegreeSubset returns T(M): the links of the tree both of whose
// endpoints have degree at most rho (Theorem 13). The result is
// O(1)-sparse and, in expectation, a constant fraction of the tree.
func LowDegreeSubset(bt *tree.BiTree, rho int) []tree.TimedLink {
	if rho <= 0 {
		rho = DefaultRho
	}
	deg := bt.Degrees()
	var out []tree.TimedLink
	for _, tl := range bt.Up {
		if deg[tl.L.From] <= rho && deg[tl.L.To] <= rho {
			out = append(out, tl)
		}
	}
	return out
}

// RetentionFraction returns |T(M)| / |T| for reporting against Theorem 13's
// Ω(1) claim. It returns 1 for an empty tree.
func RetentionFraction(bt *tree.BiTree, rho int) float64 {
	if len(bt.Up) == 0 {
		return 1
	}
	return float64(len(LowDegreeSubset(bt, rho))) / float64(len(bt.Up))
}
