package sinr

// Sharded-accumulate determinism suite: AccumBegin + AccumShard×k +
// AccumFinish must reproduce the serial Accumulate BIT-identically — same
// occupied nodes, same aggregates, same leaf buckets, same walk outputs —
// for ANY order the shards run in (the parallel dispatch assigns shards to
// workers, and workers interleave arbitrarily). The permutations below
// emulate 1/2/8/32-worker assignments plus adversarial orders (reverse,
// random); the pool-level test rides in internal/sim.

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/workload"
)

// shardOrders returns shard execution orders emulating strided 1/2/8/32
// worker assignments (worker k folds shards k, k+W, …, sequentially
// emulating the parallel dispatch) plus reverse and random interleavings.
func shardOrders(rng *rand.Rand, nsh int) [][]int {
	var orders [][]int
	for _, w := range []int{1, 2, 8, 32} {
		ord := make([]int, 0, nsh)
		for k := 0; k < w; k++ {
			for s := k; s < nsh; s += w {
				ord = append(ord, s)
			}
		}
		orders = append(orders, ord)
	}
	rev := make([]int, nsh)
	for i := range rev {
		rev[i] = nsh - 1 - i
	}
	orders = append(orders, rev)
	shuf := rng.Perm(nsh)
	orders = append(orders, shuf)
	return orders
}

// assertPyramidEqual compares every pyramid node of two scratches built
// over the same plan: occupancy, aggregates (f64 and, when mirrored, f32)
// bit for bit.
func assertPyramidEqual(t *testing.T, label string, a, b *QuadScratch) {
	t.Helper()
	q := a.q
	for g := 0; g < q.nodes; g++ {
		aon := a.stamp[g] == a.epoch
		bon := b.stamp[g] == b.epoch
		if aon != bon {
			t.Fatalf("%s: node %d occupancy serial %v sharded %v", label, g, aon, bon)
		}
		if !aon {
			continue
		}
		if a.mass[g] != b.mass[g] || a.cenX[g] != b.cenX[g] || a.cenY[g] != b.cenY[g] || a.pmax[g] != b.pmax[g] {
			t.Fatalf("%s: node %d aggregates serial (%v,%v,%v,%v) sharded (%v,%v,%v,%v)",
				label, g, a.mass[g], a.cenX[g], a.cenY[g], a.pmax[g],
				b.mass[g], b.cenX[g], b.cenY[g], b.pmax[g])
		}
		if a.prec32 {
			if a.mass32[g] != b.mass32[g] || a.cenX32[g] != b.cenX32[g] || a.cenY32[g] != b.cenY32[g] {
				t.Fatalf("%s: node %d f32 mirror serial (%v,%v,%v) sharded (%v,%v,%v)",
					label, g, a.mass32[g], a.cenX32[g], a.cenY32[g],
					b.mass32[g], b.cenX32[g], b.cenY32[g])
			}
		}
	}
}

// assertBucketsEqual compares per-leaf exact-scan buckets: same txs in the
// same order with the same streamed coordinates, independently of where
// each bucket landed in the global arrays (the sharded layout segments
// them by shard, the serial one by global first touch — the scans only
// ever read one bucket contiguously).
func assertBucketsEqual(t *testing.T, label string, a, b *QuadScratch, txs []Tx) {
	t.Helper()
	q := a.q
	leafOff := q.levelOff[q.levels]
	for tl := int32(0); tl < int32(q.Leaves()); tl++ {
		if a.stamp[leafOff+tl] != a.epoch {
			continue
		}
		if a.fill[tl] != b.fill[tl] {
			t.Fatalf("%s: leaf %d fill serial %d sharded %d", label, tl, a.fill[tl], b.fill[tl])
		}
		for k := int32(0); k < a.fill[tl]; k++ {
			ai, bi := a.start[tl]+k, b.start[tl]+k
			if a.order[ai] != b.order[bi] || a.sx[ai] != b.sx[bi] || a.sy[ai] != b.sy[bi] || a.sp[ai] != b.sp[bi] {
				t.Fatalf("%s: leaf %d slot %d: serial (tx %d, %v,%v,%v) sharded (tx %d, %v,%v,%v)",
					label, tl, k, a.order[ai], a.sx[ai], a.sy[ai], a.sp[ai],
					b.order[bi], b.sx[bi], b.sy[bi], b.sp[bi])
			}
		}
	}
}

// TestShardedAccumulateDeterminism is the drift gate: for every shard
// execution order, the sharded pyramid, its leaf buckets, the active-list
// merge levels, and every downstream Resolve/LinkSINR output must equal
// the serial pass bit for bit — in both precisions, across repeated epochs
// on reused scratches.
func TestShardedAccumulateDeterminism(t *testing.T) {
	specs := []workload.Spec{
		{Name: "jittered", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return workload.JitteredGrid(rng, n, 3, 0.8)
		}},
		{Name: "gaussians", Gen: func(rng *rand.Rand, n int) []geom.Point {
			return workload.GaussianClusters(rng, n, 24, 3, 80)
		}},
	}
	for _, spec := range specs {
		for _, prec32 := range []bool{false, true} {
			spec, prec32 := spec, prec32
			name := spec.Name + "/f64"
			if prec32 {
				name = spec.Name + "/f32"
			}
			t.Run(name, func(t *testing.T) {
				const n = 900
				rng := rand.New(rand.NewSource(401))
				pts := spec.Gen(rng, n)
				in, err := NewInstance(pts, DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				for _, eps := range []float64{0.1, 0.5} {
					q, err := in.QuadTree(eps)
					if err != nil {
						t.Fatal(err)
					}
					serial := q.newScratch(prec32)
					sharded := q.newScratch(prec32)
					nsh := sharded.AccumShards()
					if nsh < 64 {
						t.Fatalf("eps %v: %d shards at n=%d (levels %d), want the full 64", eps, nsh, n, q.Levels())
					}
					orders := shardOrders(rng, nsh)
					for round, ord := range orders {
						txs := driftTxSet(rng, n, n/2)
						serial.Accumulate(txs)
						sharded.AccumBegin(txs)
						for _, sh := range ord {
							sharded.AccumShard(sh, txs)
						}
						sharded.AccumFinish()

						label := name
						assertPyramidEqual(t, label, serial, sharded)
						assertBucketsEqual(t, label, serial, sharded, txs)
						// The merge levels' active lists must equal the
						// serial first-touch lists exactly (the fold order
						// of the cross-shard merge).
						for lvl := 0; lvl <= sharded.shardS; lvl++ {
							sa, ba := serial.active[lvl], sharded.active[lvl]
							if len(sa) != len(ba) {
								t.Fatalf("%s round %d level %d: active len serial %d sharded %d",
									label, round, lvl, len(sa), len(ba))
							}
							for i := range sa {
								if sa[i] != ba[i] {
									t.Fatalf("%s round %d level %d pos %d: active serial %d sharded %d",
										label, round, lvl, i, sa[i], ba[i])
								}
							}
						}
						for v := 0; v < n; v += 7 {
							sb, srp, st, ss := serial.Resolve(v, txs)
							bb, brp, bt, bs := sharded.Resolve(v, txs)
							if sb != bb || srp != brp || st != bt || ss != bs {
								t.Fatalf("%s round %d listener %d: Resolve serial (%d,%v,%v,%v) sharded (%d,%v,%v,%v)",
									label, round, v, sb, srp, st, ss, bb, brp, bt, bs)
							}
						}
						for k := 0; k < len(txs); k += 9 {
							l := Link{From: txs[k].Sender, To: (txs[k].Sender + 5) % n}
							if l.From == l.To {
								continue
							}
							if got, want := sharded.LinkSINR(txs, l, txs[k].Power), serial.LinkSINR(txs, l, txs[k].Power); got != want {
								t.Fatalf("%s round %d LinkSINR(%v): sharded %v serial %v", label, round, l, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestShardedAccumulateZeroAlloc is the alloc gate for the
// //sinr:hotpath annotations on AccumBegin, AccumShard, AccumFinish, and
// the f32 rounding tails round32Shard/round32Finish: after the first
// epoch sizes the arena, a full sharded accumulation allocates nothing.
func TestShardedAccumulateZeroAlloc(t *testing.T) {
	const n = 900
	rng := rand.New(rand.NewSource(19))
	pts := workload.JitteredGrid(rng, n, 3, 0.8)
	in, err := NewInstance(pts, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	q, err := in.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, prec32 := range []bool{false, true} {
		sc := q.newScratch(prec32)
		txs := driftTxSet(rng, n, n/2)
		nsh := sc.AccumShards()
		accum := func() {
			sc.AccumBegin(txs)
			for sh := 0; sh < nsh; sh++ {
				sc.AccumShard(sh, txs)
			}
			sc.AccumFinish()
		}
		accum() // first epoch sizes the shard arena
		if allocs := testing.AllocsPerRun(20, accum); allocs != 0 {
			t.Fatalf("prec32=%v: sharded accumulation allocates %.1f times/op, want 0", prec32, allocs)
		}
	}
}
