package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := tc.p.DistSq(tc.q); math.Abs(got-tc.want*tc.want) > 1e-9 {
				t.Errorf("DistSq(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p := Point{clampCoord(ax), clampCoord(ay)}
		q := Point{clampCoord(bx), clampCoord(by)}
		return math.Abs(p.Dist(q)-q.Dist(p)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clampCoord(ax), clampCoord(ay)}
		b := Point{clampCoord(bx), clampCoord(by)}
		c := Point{clampCoord(cx), clampCoord(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord maps arbitrary quick-generated floats into a sane finite range.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestBallContains(t *testing.T) {
	b := Ball{Center: Point{0, 0}, Radius: 2}
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{2, 0}, true}, // boundary is inside (closed ball)
		{Point{0, -2}, true},
		{Point{2.001, 0}, false},
		{Point{1.5, 1.5}, false},
	}
	for _, tc := range tests {
		if got := b.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestMinMaxDist(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {5, 0}, {5, 12}}
	if got := MinDist(pts); math.Abs(got-1) > 1e-12 {
		t.Errorf("MinDist = %v, want 1", got)
	}
	// farthest pair is (0,0)-(5,12) = 13
	if got := MaxDist(pts); math.Abs(got-13) > 1e-12 {
		t.Errorf("MaxDist = %v, want 13", got)
	}
	if got := Delta(pts); math.Abs(got-13) > 1e-12 {
		t.Errorf("Delta = %v, want 13", got)
	}
}

func TestMinMaxDistDegenerate(t *testing.T) {
	if got := MinDist(nil); got != 0 {
		t.Errorf("MinDist(nil) = %v", got)
	}
	if got := MaxDist([]Point{{1, 1}}); got != 0 {
		t.Errorf("MaxDist(single) = %v", got)
	}
	if got := Delta([]Point{{1, 1}}); got != 1 {
		t.Errorf("Delta(single) = %v", got)
	}
}

func TestLengthClass(t *testing.T) {
	tests := []struct {
		d    float64
		want int
	}{
		{0.5, 1},
		{1, 1},
		{1.5, 1},
		{1.999, 1},
		{2, 2},
		{3.9, 2},
		{4, 3},
		{7.99, 3},
		{8, 4},
		{1024, 11},
	}
	for _, tc := range tests {
		if got := LengthClass(tc.d); got != tc.want {
			t.Errorf("LengthClass(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestLengthClassConsistentWithRange(t *testing.T) {
	f := func(raw float64) bool {
		d := 1 + math.Mod(math.Abs(clampCoord(raw)), 1e5)
		r := LengthClass(d)
		lo, hi := ClassRange(r)
		return d >= lo && d < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumLengthClasses(t *testing.T) {
	tests := []struct {
		delta float64
		want  int
	}{
		{1, 1},
		{0.5, 1},
		{2, 1},
		{2.1, 2},
		{4, 2},
		{1024, 10},
	}
	for _, tc := range tests {
		if got := NumLengthClasses(tc.delta); got != tc.want {
			t.Errorf("NumLengthClasses(%v) = %d, want %d", tc.delta, got, tc.want)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	min, max := BoundingBox(pts)
	if min != (Point{-2, -1}) || max != (Point{4, 5}) {
		t.Errorf("BoundingBox = %v,%v", min, max)
	}
	min, max = BoundingBox(nil)
	if min != (Point{}) || max != (Point{}) {
		t.Errorf("BoundingBox(nil) = %v,%v", min, max)
	}
}

func TestNormalize(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {2, 0}}
	out, s := Normalize(pts)
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("scale = %v, want 2", s)
	}
	if got := MinDist(out); math.Abs(got-1) > 1e-12 {
		t.Errorf("MinDist after Normalize = %v, want 1", got)
	}
	// Original slice must be untouched.
	if pts[1] != (Point{0.5, 0}) {
		t.Errorf("Normalize mutated input: %v", pts[1])
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	out, s := Normalize([]Point{{3, 4}})
	if s != 1 || len(out) != 1 || out[0] != (Point{3, 4}) {
		t.Errorf("Normalize(single) = %v, %v", out, s)
	}
}

func randomPoints(rng *rand.Rand, n int, span float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * span, Y: rng.Float64() * span}
	}
	return pts
}
