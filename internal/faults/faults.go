package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names an injection point. Sites are a closed registry: the
// string is both the spec key (`served -chaos 'serve.conn.reset=0.01'`)
// and the /metrics label, so adding a site means adding a constant
// here and wiring the Fire call at the new code path.
type Site string

// The injection-site registry (DESIGN.md §13.2). Each constant names
// the exact code path that consults it.
const (
	// ServeHandlerDelay stalls an HTTP handler for the plan's Delay
	// before the request is admitted (internal/serve middleware).
	ServeHandlerDelay Site = "serve.handler.delay"
	// ServeConnReset aborts the HTTP connection mid-request via
	// http.ErrAbortHandler: the client observes a connection reset.
	ServeConnReset Site = "serve.conn.reset"
	// CacheLeaderPanic panics inside the compute function executed by
	// the singleflight result-memo leader (Network.compute), so the
	// panic propagates through the coalescing cache to all waiters.
	CacheLeaderPanic Site = "cache.leader.panic"
	// PoolWorkerStall puts an engine pool worker to sleep for Delay
	// before it runs a job (internal/sim.Pool).
	PoolWorkerStall Site = "pool.worker.stall"
	// ChurnRepairFail makes one churn repair attempt fail with a
	// non-convergence error before the repair runs, exercising the
	// degradation ladder (retry → rebuild → ErrRetryExhausted).
	ChurnRepairFail Site = "churn.repair.fail"
	// SimSlotSlow stalls one slot of the slot loop for Delay
	// (internal/sim.Engine.Step).
	SimSlotSlow Site = "sim.slot.slow"
)

// Sites lists every registered site in stable order (spec validation,
// metrics rendering).
func Sites() []Site {
	return []Site{
		ServeHandlerDelay,
		ServeConnReset,
		CacheLeaderPanic,
		PoolWorkerStall,
		ChurnRepairFail,
		SimSlotSlow,
	}
}

func validSite(s Site) bool {
	for _, k := range Sites() {
		if s == k {
			return true
		}
	}
	return false
}

// Action describes one fired injection: which site, the ordinal of the
// firing visit at that site (1-based), and how long delay-style sites
// should stall. Error- and panic-style sites ignore Delay.
type Action struct {
	Site  Site
	Seq   uint64
	Delay time.Duration
}

// Injector is the hook every instrumented code path holds. Fire
// reports whether the current visit to site should inject a fault, and
// with what parameters. Implementations must be safe for concurrent
// use and must not read the clock or global rand.
type Injector interface {
	Fire(site Site) (Action, bool)
}

// Disabled is the production no-op injector: Fire never fires and
// keeps no state. Instrumented paths also accept a nil Injector and
// treat it as Disabled, so production structs need no setup.
var Disabled Injector = disabled{}

type disabled struct{}

func (disabled) Fire(Site) (Action, bool) { return Action{}, false }

// Spec configures a Plan: a seed, a per-site fire rate in [0, 1], and
// the stall duration for delay-style sites.
type Spec struct {
	// Seed keys the per-visit hash; two plans with equal Spec fire on
	// exactly the same visit ordinals.
	Seed int64
	// Delay is how long delay-style sites (serve.handler.delay,
	// pool.worker.stall, sim.slot.slow) stall when they fire.
	Delay time.Duration
	// Rates maps each site to its fire probability. Absent sites
	// never fire.
	Rates map[Site]float64
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	if s.Delay < 0 {
		return fmt.Errorf("faults: negative delay %v", s.Delay)
	}
	// Sort the configured sites so "first problem" is deterministic —
	// this package sits in the replay-deterministic lint set.
	sites := make([]Site, 0, len(s.Rates))
	for site := range s.Rates {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, site := range sites {
		if !validSite(site) {
			return fmt.Errorf("faults: unknown site %q", site)
		}
		if r := s.Rates[site]; r < 0 || r > 1 {
			return fmt.Errorf("faults: site %s rate %v outside [0,1]", site, r)
		}
	}
	return nil
}

// String renders the spec in ParseSpec's format with sites in registry
// order, so String/ParseSpec round-trip.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	if s.Delay != 0 {
		fmt.Fprintf(&b, ",delay=%s", s.Delay)
	}
	for _, site := range Sites() {
		if r, ok := s.Rates[site]; ok {
			fmt.Fprintf(&b, ",%s=%v", site, r)
		}
	}
	return b.String()
}

// ParseSpec parses the `served -chaos` flag syntax: a comma-separated
// list of key=value pairs where key is `seed`, `delay`, or a site
// name, e.g.
//
//	seed=42,delay=2ms,serve.handler.delay=0.05,cache.leader.panic=0.01
func ParseSpec(text string) (Spec, error) {
	s := Spec{Rates: map[Site]float64{}}
	if strings.TrimSpace(text) == "" {
		return Spec{}, fmt.Errorf("faults: empty spec")
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: malformed field %q (want key=value)", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			s.Seed = seed
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: bad delay %q: %v", val, err)
			}
			s.Delay = d
		default:
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faults: bad rate %q for site %q: %v", val, key, err)
			}
			s.Rates[Site(key)] = rate
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Plan is a deterministic fault schedule: a thread-safe Injector whose
// k-th visit to each site fires iff hash(seed, site, k) falls under
// the site's rate. Counters are observational only — the fire decision
// depends solely on the per-site visit ordinal, never on wall time or
// shared mutable state beyond that ordinal.
type Plan struct {
	spec  Spec
	sites map[Site]*siteState
}

type siteState struct {
	salt      uint64 // hash of the site name, mixed into every visit
	threshold uint64 // rate scaled to the uint64 range
	delay     time.Duration
	visits    atomic.Uint64
	fired     atomic.Uint64
}

// NewPlan builds a Plan from a validated spec. Sites absent from
// spec.Rates (or present with rate 0) never fire but still count
// visits, so Counts reports coverage of every instrumented path.
func NewPlan(spec Spec) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{spec: spec, sites: make(map[Site]*siteState, len(Sites()))}
	for _, site := range Sites() {
		p.sites[site] = &siteState{
			salt:      splitmix64(uint64(spec.Seed) ^ hashSite(site)),
			threshold: rateThreshold(spec.Rates[site]),
			delay:     spec.Delay,
		}
	}
	return p, nil
}

// MustPlan is NewPlan for specs known valid at compile time (tests).
func MustPlan(spec Spec) *Plan {
	p, err := NewPlan(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Spec returns a copy of the plan's configuration.
func (p *Plan) Spec() Spec {
	out := Spec{Seed: p.spec.Seed, Delay: p.spec.Delay, Rates: map[Site]float64{}}
	// Walk the registry, not the map: a Plan's spec is validated, so
	// every configured site is registered.
	for _, site := range Sites() {
		if r, ok := p.spec.Rates[site]; ok {
			out.Rates[site] = r
		}
	}
	return out
}

// Fire implements Injector. The decision for visit k at a site is
// splitmix64(salt ⊕ k) < threshold — stateless given the ordinal, so
// identical visit sequences replay identical fault sequences.
func (p *Plan) Fire(site Site) (Action, bool) {
	st, ok := p.sites[site]
	if !ok {
		return Action{}, false
	}
	visit := st.visits.Add(1)
	if st.threshold == 0 || splitmix64(st.salt^visit) >= st.threshold {
		return Action{}, false
	}
	seq := st.fired.Add(1)
	return Action{Site: site, Seq: seq, Delay: st.delay}, true
}

// SiteCount is one row of Counts: visits observed and faults fired at
// a site since the plan was built.
type SiteCount struct {
	Site   Site
	Visits uint64
	Fired  uint64
}

// Counts snapshots per-site counters in registry order (rendered on
// /metrics as serve_fault_injected_total / serve_fault_visits_total).
func (p *Plan) Counts() []SiteCount {
	out := make([]SiteCount, 0, len(p.sites))
	for _, site := range Sites() {
		st := p.sites[site]
		out = append(out, SiteCount{Site: site, Visits: st.visits.Load(), Fired: st.fired.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// rateThreshold maps a rate in [0, 1] to the uint64 hash threshold.
// 1.0 saturates so the comparison `hash < threshold` always fires.
func rateThreshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return ^uint64(0)
	default:
		return uint64(rate * float64(1<<63) * 2)
	}
}

// hashSite folds a site name into a uint64 (FNV-1a) so each site gets
// an independent hash stream from the same seed.
func hashSite(site Site) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= prime
	}
	return h
}

// splitmix64 is the standard 64-bit finalizer (Steele et al.): a
// bijective avalanche over the visit ordinal, giving uniform fire
// decisions without any sequential generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
