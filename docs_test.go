package sinrconn

// Documentation gates, run by the CI docs job:
//
//   - TestDocLinks: every relative markdown link in every *.md file must
//     resolve to a file that exists in the repository.
//   - TestPackageComments: every Go package — root, internal/*, cmd/*,
//     examples/* — must carry a package comment, so `go doc` works
//     everywhere.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); targets with schemes or pure anchors are
// filtered by the caller.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("found only %d markdown files — walk broken?", len(mdFiles))
	}
	for _, md := range mdFiles {
		if filepath.Base(md) == "SNIPPETS.md" {
			// Quotes exemplar files from external repositories verbatim,
			// including their relative links; those don't resolve here by
			// design.
			continue
		}
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; CI stays hermetic
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // same-file anchor
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}

func TestPackageComments(t *testing.T) {
	var pkgDirs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			matches, _ := filepath.Glob(filepath.Join(path, "*.go"))
			for _, f := range matches {
				if !strings.HasSuffix(f, "_test.go") {
					pkgDirs = append(pkgDirs, path)
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgDirs) < 15 {
		t.Fatalf("found only %d package dirs — walk broken?", len(pkgDirs))
	}
	for _, dir := range pkgDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package comment — add a doc.go", name, dir)
			}
		}
	}
}
