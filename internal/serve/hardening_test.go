package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sinrconn/internal/faults"
)

// TestRecoverPanicsMiddleware pins the panic-recovery contract: a
// panicking handler becomes a JSON 500 and a serve_panics_total tick —
// never a dead process — while http.ErrAbortHandler passes through
// untouched (it is the sanctioned connection-abort signal).
func TestRecoverPanicsMiddleware(t *testing.T) {
	settleGoroutines(t)
	s := New(Config{})
	defer s.Close()

	boom := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	var e ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "kaboom") {
		t.Fatalf("panic 500 body = %q (%v)", rec.Body.String(), err)
	}
	if got := s.metrics.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// A panic after the response started cannot become a 500; the
	// middleware aborts the connection instead of leaving a silently
	// truncated 200 on the wire.
	mid := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("late")
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("mid-stream panic did not abort the connection")
			}
		}()
		mid.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/x", nil))
	}()
	if got := s.metrics.panics.Load(); got != 2 {
		t.Fatalf("panics counter = %d, want 2", got)
	}

	// ErrAbortHandler itself is not treated as a crash.
	abort := s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("ErrAbortHandler was swallowed")
			}
		}()
		abort.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/x", nil))
	}()
	if got := s.metrics.panics.Load(); got != 2 {
		t.Fatalf("panics counter = %d after ErrAbortHandler, want 2 (aborts are not crashes)", got)
	}
}

// TestInjectFaultsMiddleware pins the HTTP-layer injection sites: at
// rate 1 every /v1/ request is delayed then reset, while /healthz and
// /metrics stay exempt.
func TestInjectFaultsMiddleware(t *testing.T) {
	settleGoroutines(t)
	plan := faults.MustPlan(faults.Spec{Seed: 3, Delay: time.Millisecond, Rates: map[faults.Site]float64{
		faults.ServeConnReset: 1,
	}})
	s := New(Config{Injector: plan})
	defer s.Close()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h := s.injectFaults(inner)

	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Fatal("conn-reset site at rate 1 did not abort a /v1/ request")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/sessions", nil))
	}()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz under full injection: status %d, want 200 (exempt)", rec.Code)
	}
}

func TestLimiterQueueFullAndDeadlineShed(t *testing.T) {
	settleGoroutines(t)
	l := newLimiter(1, 1)
	never := make(chan struct{})

	release, err := l.acquire(never, 0)
	if err != nil {
		t.Fatalf("fast-path acquire failed: %v", err)
	}

	// Deadline shed: the projected wait (≥ one 25ms default service
	// time) exceeds a 1ms deadline, so the request is refused upfront.
	if _, err := l.acquire(never, time.Millisecond); err == nil {
		t.Fatal("deadline-doomed request was admitted")
	} else if se := err.(*shedError); se.reason != "deadline" || se.retryAfter <= 0 {
		t.Fatalf("shed = %+v, want reason deadline with positive retryAfter", se)
	}

	// Fill the queue with a patient waiter, then the next is shed full.
	waited := make(chan struct{})
	go func() {
		r, err := l.acquire(never, 0)
		if err == nil {
			r()
		}
		close(waited)
	}()
	for i := 0; l.queued.Load() == 0; i++ {
		if i > 500 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.acquire(never, 0); err == nil {
		t.Fatal("request admitted past a full queue")
	} else if se := err.(*shedError); se.reason != "queue_full" {
		t.Fatalf("shed reason %q, want queue_full", se.reason)
	}

	// A canceled wait abandons the queue.
	done := make(chan struct{})
	close(done)
	// The queue slot is still held by the patient waiter; a second
	// waiter would be shed, so release first and let the waiter drain.
	release()
	<-waited
	rel2, err := l.acquire(never, 0)
	if err != nil {
		t.Fatalf("acquire after drain: %v", err)
	}
	if _, err := l.acquire(done, 0); err == nil {
		t.Fatal("canceled wait was admitted")
	} else if se := err.(*shedError); se.reason != "wait_canceled" {
		t.Fatalf("shed reason %q, want wait_canceled", se.reason)
	}
	rel2()

	if l.admitted.Load() != 3 || l.shedDeadline.Load() != 1 || l.shedQueueFull.Load() != 1 || l.waitCanceled.Load() != 1 {
		t.Fatalf("limiter counters = admitted %d deadline %d full %d canceled %d",
			l.admitted.Load(), l.shedDeadline.Load(), l.shedQueueFull.Load(), l.waitCanceled.Load())
	}
}

// TestServeAdmissionShedEndToEnd drives the shed path over the real
// route table: with capacity pinned and the queue full, an operation
// request gets 503 with the full Retry-After header set.
func TestServeAdmissionShedEndToEnd(t *testing.T) {
	settleGoroutines(t)
	srv, ts := testDaemon(t, Config{MaxConcurrent: 1, MaxQueue: 1})

	// Occupy the only slot and the only queue seat out-of-band.
	never := make(chan struct{})
	release, err := srv.limiter.acquire(never, 0)
	if err != nil {
		t.Fatal(err)
	}
	waiterDone := make(chan struct{})
	go func() {
		if r, err := srv.limiter.acquire(never, 0); err == nil {
			r()
		}
		close(waiterDone)
	}()
	for i := 0; srv.limiter.queued.Load() == 0; i++ {
		if i > 500 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"points":[[0,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorJSON
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open against saturated server: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(ShedHeader) != "queue_full" {
		t.Fatalf("shed header %q, want queue_full", resp.Header.Get(ShedHeader))
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get(RetryAfterMsHeader) == "" {
		t.Fatalf("shed response missing Retry-After headers: %v", resp.Header)
	}
	if e.Error == "" {
		t.Fatal("shed response carried no JSON error body")
	}

	// A declared deadline shorter than the projected wait sheds even
	// with queue room.
	release()
	<-waiterDone
	release, err = srv.limiter.acquire(never, 0) // re-pin capacity, queue now empty
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", strings.NewReader(`{"points":[[0,0]]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TimeoutHeader, "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(ShedHeader) != "deadline" {
		t.Fatalf("deadline shed: status %d header %q, want 503/deadline", resp.StatusCode, resp.Header.Get(ShedHeader))
	}

	// /healthz reports the admission block.
	var h Health
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(hr.Body).Decode(&h)
	hr.Body.Close()
	if h.Admission == nil || h.Admission.ShedQueueFull != 1 || h.Admission.ShedDeadline != 1 {
		t.Fatalf("health admission block = %+v, want one queue_full and one deadline shed", h.Admission)
	}
}
