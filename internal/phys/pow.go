package phys

import "math"

// maxIntAlpha is the largest exponent handled by the unrolled integer-power
// path; beyond it math.Pow wins anyway.
const maxIntAlpha = 8

// ipow returns x^k for small non-negative k by repeated multiplication.
func ipow(x float64, k int) float64 {
	switch k {
	case 0:
		return 1
	case 1:
		return x
	case 2:
		return x * x
	case 3:
		return x * x * x
	case 4:
		x2 := x * x
		return x2 * x2
	}
	r := x * x * x * x
	for ; k > 4; k-- {
		r *= x
	}
	return r
}

// PowAlpha returns d^alpha, avoiding math.Pow when alpha or 2·alpha is a
// small integer (covering the model's α and the mean-power exponent α/2).
func PowAlpha(d, alpha float64) float64 {
	if k := int(alpha); float64(k) == alpha && k >= 0 && k <= maxIntAlpha {
		return ipow(d, k)
	}
	if k := int(2 * alpha); float64(k) == 2*alpha && k >= 0 && k <= 2*maxIntAlpha {
		return ipow(math.Sqrt(d), k)
	}
	return math.Pow(d, alpha)
}

// PowAlphaSq returns d^alpha given the *squared* distance d² — the form the
// kernel prefers because geom.Point.DistSq needs no square root. For integer
// α the cost is at most one sqrt (odd α) or none at all (even α).
func PowAlphaSq(d2, alpha float64) float64 {
	if k := int(alpha); float64(k) == alpha && k >= 0 && k <= maxIntAlpha {
		if k%2 == 0 {
			return ipow(d2, k/2)
		}
		return ipow(d2, k/2) * math.Sqrt(d2)
	}
	if k := int(2 * alpha); float64(k) == 2*alpha && k >= 0 && k <= 2*maxIntAlpha {
		// alpha = k/2 with k odd: d^alpha = d^((k-1)/2) · √d.
		d := math.Sqrt(d2)
		return ipow(d, k/2) * math.Sqrt(d)
	}
	return math.Pow(d2, 0.5*alpha)
}
