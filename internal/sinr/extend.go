package sinr

import "sinrconn/internal/geom"

// Extend returns a new Instance over in's points followed by extra, under
// the same physical parameters, reusing in's already-built gain table: the
// old n×n block is copied (bit-identical — every entry is the same
// deterministic function of the same two points) and only the rows and
// columns involving the new points are computed. This is the join fast
// path: a session that grows by k nodes pays O((n+k)·k) new gain entries
// instead of re-deriving all O((n+k)²).
//
// The caller keeps ownership of the geometry contract: Extend performs no
// normalization check (joins must not move existing nodes, so the caller
// validates the merged set). The input slices are not copied deeply; as
// with NewInstance, points must not be mutated afterwards.
func (in *Instance) Extend(extra []geom.Point) (*Instance, error) {
	n := len(in.pts)
	m := n + len(extra)
	pts := make([]geom.Point, 0, m)
	pts = append(append(pts, in.pts...), extra...)
	out, err := NewInstance(pts, in.params)
	if err != nil {
		return nil, err
	}
	if len(extra) == 0 {
		return out, nil
	}
	// Far-field plans ride along: a plan whose grid (or root square, for
	// quadtrees) still covers the grown point set bins only the new points
	// (O(k)); plans the growth escapes are rebuilt lazily on first use.
	in.ffMu.Lock()
	//lint:ignore determinism per-ε plan carry-over writes into a map keyed by ε; iteration order cannot reach results
	for eps, f := range in.ff {
		if nf, ok := f.extendTo(out); ok {
			if out.ff == nil {
				out.ff = make(map[float64]*FarField, len(in.ff))
			}
			out.ff[eps] = nf
		}
	}
	//lint:ignore determinism per-ε plan carry-over writes into a map keyed by ε; iteration order cannot reach results
	for eps, q := range in.qt {
		if nq, ok := q.extendTo(out); ok {
			if out.qt == nil {
				out.qt = make(map[float64]*QuadTree, len(in.qt))
			}
			out.qt[eps] = nq
		}
	}
	in.ffMu.Unlock()
	old, built := in.gainTableIfBuilt()
	if !built || old == nil || uint64(m)*uint64(m)*8 > maxGainTableBytes {
		// Parent table never built (a far-field-only session has no use
		// for it — forcing the O(n²) fill here would dwarf the join fast
		// path), disabled by the memory budget, or the grown table would
		// bust the budget: fall back to the lazy path — identical values,
		// computed on demand by whoever first needs them.
		return out, nil
	}
	g := make([]float64, m*m)
	alpha := in.params.Alpha
	for v := 0; v < n; v++ {
		// Old receiver row: copy the old senders, compute the new ones.
		row := g[v*m : (v+1)*m]
		copy(row[:n], old[v*n:(v+1)*n])
		pv := pts[v]
		for u := n; u < m; u++ {
			row[u] = 1 / PowAlphaSq(pv.DistSq(pts[u]), alpha)
		}
	}
	for v := n; v < m; v++ {
		// New receiver row: everything is new.
		row := g[v*m : (v+1)*m]
		pv := pts[v]
		for u := 0; u < m; u++ {
			row[u] = 1 / PowAlphaSq(pv.DistSq(pts[u]), alpha)
		}
	}
	out.gainOnce.Do(func() {})
	out.gain = g
	out.markGainResolved()
	return out, nil
}
