package sinr

import (
	"fmt"
	"sort"

	"sinrconn/internal/geom"
)

// MoveTo returns a new Instance in which the nodes in moved have been
// relocated to the corresponding positions in to (moved[i] → to[i]), under
// the same physical parameters. Like Extend, it reuses the already-built
// gain table: entries between two unmoved nodes are copied bit-identically
// (same deterministic function of the same two points) and only the rows and
// columns touching a moved node are recomputed — O(n·k) work for k movers
// instead of O(n²). This is the mobility fast path of the churn engine.
//
// Far-field plans do NOT ride along: a move changes the mover's bin, and
// re-binning in place would have to subtract the old position from shared
// per-cell aggregates. Plans are instead rebuilt lazily on first use of the
// new instance — the churn driver amortizes that over the events between
// rebuilds.
//
// Indices are preserved: node v in the result is node v in the input. The
// input slices are not deeply copied beyond the point array itself.
func (in *Instance) MoveTo(moved []int, to []geom.Point) (*Instance, error) {
	if len(moved) != len(to) {
		return nil, fmt.Errorf("sinr: MoveTo: %d indices but %d positions", len(moved), len(to))
	}
	n := len(in.pts)
	seen := make(map[int]bool, len(moved))
	for _, v := range moved {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("sinr: MoveTo: node %d out of range", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("sinr: MoveTo: node %d moved twice in one step", v)
		}
		seen[v] = true
	}
	pts := make([]geom.Point, n)
	copy(pts, in.pts)
	for i, v := range moved {
		pts[v] = to[i]
	}
	out, err := NewInstance(pts, in.params)
	if err != nil {
		return nil, err
	}
	if len(moved) == 0 {
		return out, nil
	}
	old, built := in.gainTableIfBuilt()
	if !built || old == nil {
		return out, nil // lazy path; size unchanged, so the budget verdict is too
	}
	g := make([]float64, n*n)
	copy(g, old)
	alpha := in.params.Alpha
	for _, v := range moved {
		pv := pts[v]
		row := g[v*n : (v+1)*n]
		for u := 0; u < n; u++ {
			e := 1 / PowAlphaSq(pv.DistSq(pts[u]), alpha)
			row[u] = e
			g[u*n+v] = e // symmetric column entry
		}
	}
	out.gainOnce.Do(func() {})
	out.gain = g
	out.markGainResolved()
	return out, nil
}

// Shrink returns a new Instance over in's points with the removed indices
// deleted, preserving the relative order of the survivors. The result is a
// *reindexed* world: survivor j in the result corresponds to the j-th
// surviving input index; the returned mapping gives old→new (length n, −1
// for removed nodes). Callers that hold trees over old indices must remap —
// the churn driver does this when it compacts a long-lived session whose
// dead fraction has grown past its budget.
//
// The gain table is reused by block copy: every surviving pair's entry is
// copied bit-identically; nothing is recomputed. Duplicate entries in
// removed are tolerated (churn traces report the same death twice); removing
// every node is an error.
func (in *Instance) Shrink(removed []int) (*Instance, []int, error) {
	n := len(in.pts)
	dead := make(map[int]bool, len(removed))
	for _, v := range removed {
		if v < 0 || v >= n {
			return nil, nil, fmt.Errorf("sinr: Shrink: node %d out of range", v)
		}
		dead[v] = true
	}
	if len(dead) >= n {
		return nil, nil, fmt.Errorf("sinr: Shrink: all %d nodes removed", n)
	}
	oldToNew := make([]int, n)
	survivors := make([]int, 0, n-len(dead))
	for v := 0; v < n; v++ {
		if dead[v] {
			oldToNew[v] = -1
			continue
		}
		oldToNew[v] = len(survivors)
		survivors = append(survivors, v)
	}
	m := len(survivors)
	pts := make([]geom.Point, m)
	for j, v := range survivors {
		pts[j] = in.pts[v]
	}
	out, err := NewInstance(pts, in.params)
	if err != nil {
		return nil, nil, err
	}
	old, built := in.gainTableIfBuilt()
	if !built || old == nil {
		return out, oldToNew, nil
	}
	g := make([]float64, m*m)
	for j, v := range survivors {
		row := g[j*m : (j+1)*m]
		oldRow := old[v*n : (v+1)*n]
		for i, u := range survivors {
			row[i] = oldRow[u]
		}
	}
	out.gainOnce.Do(func() {})
	out.gain = g
	out.markGainResolved()
	return out, oldToNew, nil
}

// SurvivorIndices returns the ascending list of old indices kept by a Shrink
// with the given removed set — the inverse direction of the oldToNew map,
// handy for remapping trees.
func SurvivorIndices(n int, removed []int) []int {
	dead := make(map[int]bool, len(removed))
	for _, v := range removed {
		dead[v] = true
	}
	out := make([]int, 0, n-len(dead))
	for v := 0; v < n; v++ {
		if !dead[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
