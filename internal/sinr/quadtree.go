package sinr

// The hierarchical (quadtree) far-field engine: the Barnes–Hut counterpart
// of the flat tile grid in farfield.go, and the default engine behind
// WithMaxRelError. The flat grid forces ONE global near-ring radius k on
// every listener — sized for the tightest ε — so below ε ≈ 0.5 its near
// ring swallows most of the instance and the plan does strictly more work
// than exact resolution (the n = 4096, ε = 0.5 regression in
// BENCH_farfield.json). The quadtree instead resolves interference at a
// resolution *adapted to each listener*: senders are aggregated into a
// pyramid of square nodes (leaves are flat tiles; every parent covers its
// four children), and each listener walks the pyramid top-down, opening a
// node only when its aggregate could violate the listener's ε budget.
// Distant clutter collapses into a handful of coarse nodes; nearby senders
// are resolved leaf-exact — tight ε stays cheap because only the listener's
// own neighborhood pays for it.
//
// Geometry. The root is the square of side span = max(bbox width, height)
// anchored at the bounding box's lower corner. Level ℓ splits it into
// 2^ℓ × 2^ℓ squares; the deepest level L has ~n leaves (L ≈ log₄ n),
// clamped so the leaf side never drops below 1 — the paper's min-distance
// normalization, exactly the flat grid's floor — and the leaf count never
// exceeds maxFarTiles. Nodes are stored as one linearized pyramid (level
// offsets (4^ℓ−1)/3); within each level nodes sit in Morton (Z-curve)
// order — a node's position is the bit-interleaving of its grid
// coordinates (morton.go) — so a node's parent is t>>2, its children are
// 4t..4t+3, and every subtree occupies one contiguous index range. The
// proximity-first DFS therefore touches contiguous cache lines instead of
// striding row-major rows apart (DESIGN.md §12); parent, children, and
// square remain index arithmetic — no pointers, no per-node allocation.
//
// Per-slot accumulation. One bottom-up pass per slot (Accumulate): senders
// fold into their leaf's aggregates — total transmit mass Σ P_w, raw
// power-weighted coordinate sums Σ P_w·x, Σ P_w·y, and the strongest single
// power — then each occupied level folds into the level above, touching
// only occupied nodes (epoch-stamped, like the flat scratch), in
// O(#senders + #occupied nodes) with zero allocations. Centroids are
// normalized once at the end, so every level's centroid is the exact
// power-weighted centroid of the senders below it — which lies in their
// convex hull, hence inside the node's square: the only property the error
// bound needs. Dense slots can split the pass across spatial shards
// (quadtree_shard.go) with bit-identical results.
//
// Opening criterion. For a node of side s, every member lies within
// R = s·√2 of the node's centroid (both are inside the square). With D the
// listener→centroid distance and δ = R/D, each member's true distance lies
// in [D(1−δ), D(1+δ)], so the aggregated gain mass/D^α mis-states each
// member's gain by a factor in [(1−δ)^α, (1+δ)^α] — the same algebra as
// DESIGN.md §7 with the tile diagonal generalized to the node
// diameter/distance ratio δ (§8 carries the derivation). The binding side
// is the overestimate, (1+δ)^α ≤ 1+ε, so a node is ACCEPTED (aggregated as
// one term) iff
//
//	δ ≤ θ(ε, α) = min( (1+ε)^{1/α} − 1, √2/minFarRing )
//
// equivalently D ≥ s·√2/θ — per level a precomputed squared radius, one
// float compare per visited node. The √2/minFarRing clamp mirrors the flat
// grid's k ≥ 2 floor: δ stays ≤ √2/2 < 1 so member distances stay bounded
// away from zero and (1−δ)^α ≥ 1−ε holds on the underestimate side too.
// Unlike the flat grid there is no integral k to round, so the certified
// bound (1+θ)^α − 1 equals the requested ε whenever the clamp is slack.
//
// Winner exactness. As in the flat grid, channel decode must crown the
// true strongest sender. An accepted node's best possible single received
// power is pmax · (mass-free) centroid gain · 1/(1−θ)^α (a member is at
// distance ≥ D(1−δ) ≥ D(1−θ)); when that could beat the best exact
// candidate so far, Resolve opens the node instead of accepting it,
// descending until the threat is either refuted at a coarser level or
// resolved sender-by-sender in a leaf. The decoded winner and its received
// power are therefore always exact; only the interference total carries ε.
//
// Determinism and lockstep. LinkSINR walks a fixed-order DFS (children in
// quadrant order — the same spatial sequence the pre-Morton row-major walk
// popped), accumulation folds in first-touch order, and acceptance
// compares the same float expressions the naive reference in
// internal/oracle/quadtree.go transcribes — so kernel and oracle take
// identical open/accept decisions and differ only by the physics kernel's
// few-ulp rounding (pinned at 1e-12 by the differential suite). Resolve
// instead descends proximity-first (nearest child quadrant before its
// siblings) so the refinement pruning sees a strong bestRP early; that
// order is a pure function of the listener position and the static
// geometry, so engine runs stay deterministic and worker-count
// independent (Resolve has no oracle mirror — its tests pin the winner
// against the exact argmax and the total against the certified band, both
// traversal-order-free properties; TestMortonLayoutDriftGate additionally
// pins the whole engine bit-identical to the retired row-major layout).

import (
	"fmt"
	"math"
	"sync"

	"sinrconn/internal/geom"
)

// maxQuadLevels caps the pyramid depth: 4^9 = 262144 leaves = maxFarTiles,
// the same scratch bound the flat grid honors.
const maxQuadLevels = 9

// QuadLevels returns the pyramid depth for an n-node instance whose root
// square has the given side: ≈ log₄(n/4) (about four nodes per leaf — the
// measured optimum of the leaf-scan-versus-pyramid-walk tradeoff, both
// sides of which scale as θ⁻²; one level deeper trades ~4·2π/θ² extra node
// visits for a ~4× smaller exact-scan disk, and ~4 nodes per leaf is where
// the two marginal costs meet on the bench geometry). The depth is lowered
// until the leaf side span/2^L is at least 1 (the min-distance
// normalization — a leaf never subdivides the model's unit scale) and
// clamped to maxQuadLevels.
func QuadLevels(n int, span float64) int {
	l := int(math.Ceil(math.Log2(math.Max(2, float64(n)))/2)) - 1
	if l > maxQuadLevels {
		l = maxQuadLevels
	}
	for l > 0 && span/float64(int32(1)<<l) < 1 {
		l--
	}
	if l < 0 {
		l = 0
	}
	return l
}

// QuadTheta returns the opening threshold θ(ε, α): the largest admissible
// node-diameter/centroid-distance ratio, (1+ε)^{1/α} − 1 clamped to
// √2/minFarRing (the flat grid's k ≥ 2 floor, keeping δ < 1).
func QuadTheta(alpha, maxRelErr float64) float64 {
	t := math.Pow(1+maxRelErr, 1/alpha) - 1
	if max := math.Sqrt2 / minFarRing; t > max {
		t = max
	}
	return t
}

// QuadCertifiedErr returns (1+θ)^α − 1, the worst-case relative
// interference error certified by opening threshold θ. It equals the
// requested ε whenever the θ clamp is slack.
func QuadCertifiedErr(theta, alpha float64) float64 {
	return math.Pow(1+theta, alpha) - 1
}

// QuadTree is an immutable hierarchical far-field plan over one Instance:
// the pyramid geometry, the node→leaf assignment, and the per-level opening
// radii derived from the requested error bound. Build one with
// Instance.QuadTree (plans are cached per ε on the instance); per-slot
// state lives in a QuadScratch so one plan serves concurrent engines and
// validators. QuadTree implements Far.
type QuadTree struct {
	in        *Instance
	maxRelErr float64 // requested bound
	certErr   float64 // certified bound (1+θ)^α − 1 ≤ maxRelErr
	theta     float64
	levels    int     // L: leaves form a 2^L × 2^L grid
	cell      float64 // leaf side
	ox, oy    float64
	leafDim   int32 // 2^L
	nodes     int   // total pyramid size (4^{L+1}−1)/3
	levelOff  []int32
	openRad2  []float64 // per level: squared opening radius (s·√2/θ)²
	side      []float64 // per level: node side s = cell·2^{L−ℓ}
	// refineFac bounds any member's gain relative to the gain at its node's
	// centroid: member distance ≥ D(1−θ) at an accepted node, so member
	// gain ≤ centroid gain · 1/(1−θ)^α. Resolve uses it to decide which
	// accepted nodes could hide the strongest sender and must be opened.
	refineFac float64
	// powSpec selects an unrolled phys.PowAlphaSq arm for the model's
	// common integer α (2, 3, 4); zero keeps the generic call. Each arm is
	// bit-identical to the generic expression (powAlphaSqSpec).
	powSpec uint8
	leafOf  []int32 // node(point) → leaf-local id (Morton code at level L)
	// Listener predicate classes for frontier-sharing batch resolution
	// (quadtree_batch.go): batchOrder lists every instance node sorted by
	// class key (stable by node id), batchClass the key at the same
	// position. Two nodes with equal keys take identical nearest-child
	// decisions at every pyramid node, so their proximity-first walks are
	// the same tree and can share one opened frontier.
	batchOrder []int32
	batchClass []int32

	f32       *QuadTreeF32
	scratches *sync.Pool
}

// newQuadTree derives the plan. Kept in lockstep with the independent naive
// derivation in internal/oracle/quadtree.go — the differential suite
// asserts the two agree on (levels, cell, binning, opening radii) exactly.
func newQuadTree(in *Instance, maxRelErr float64) (*QuadTree, error) {
	if !(maxRelErr > 0) || math.IsInf(maxRelErr, 1) {
		return nil, fmt.Errorf("sinr: quadtree max relative error must be positive and finite, got %v", maxRelErr)
	}
	n := len(in.pts)
	alpha := in.params.Alpha
	lo, hi := geom.BoundingBox(in.pts)
	span := hi.X - lo.X
	if h := hi.Y - lo.Y; h > span {
		span = h
	}
	if !(span > 0) { // degenerate (single point / duplicate) boxes
		span = 1
	}
	l := QuadLevels(n, span)
	theta := QuadTheta(alpha, maxRelErr)
	// θ analytically inverts (1+ε)^{1/α}−1, so the certificate is exactly ε
	// when the clamp is slack; the float round-trip can land an ulp above,
	// which the min repairs (the analytic bound is ε, not ε+ulp).
	certErr := QuadCertifiedErr(theta, alpha)
	if certErr > maxRelErr {
		certErr = maxRelErr
	}
	q := &QuadTree{
		in:        in,
		maxRelErr: maxRelErr,
		certErr:   certErr,
		theta:     theta,
		levels:    l,
		cell:      span / float64(int32(1)<<l),
		ox:        lo.X,
		oy:        lo.Y,
		leafDim:   int32(1) << l,
		levelOff:  make([]int32, l+1),
		openRad2:  make([]float64, l+1),
		side:      make([]float64, l+1),
		refineFac: math.Pow(1/(1-theta), alpha),
	}
	if a := alpha; a == 2 || a == 3 || a == 4 {
		q.powSpec = uint8(a)
	}
	off := int32(0)
	for lvl := 0; lvl <= l; lvl++ {
		q.levelOff[lvl] = off
		off += (int32(1) << lvl) * (int32(1) << lvl)
		side := q.cell * float64(int32(1)<<(l-lvl))
		q.side[lvl] = side
		or := side * math.Sqrt2 / theta
		q.openRad2[lvl] = or * or
	}
	q.nodes = int(off)
	q.leafOf = make([]int32, n)
	for i, p := range in.pts {
		q.leafOf[i] = q.bin(p)
	}
	q.buildBatchSpec()
	q.f32 = newQuadTreeF32(q)
	q.scratches = &sync.Pool{New: func() any { return q.NewScratch() }}
	return q, nil
}

// powAlphaSqSpec returns PowAlphaSq(d2, alpha) with the model's common
// integer α unrolled so the hot walks skip the generic dispatch. Each arm
// reproduces phys.PowAlphaSq's exact expression for that α — ipow(d2, 1),
// ipow(d2, 1)·√d2, ipow(d2, 2) — so results are bit-identical to the
// generic call (the drift gates and the differential suite pin this).
func powAlphaSqSpec(d2, alpha float64, spec uint8) float64 {
	switch spec {
	case 2:
		return d2
	case 3:
		return d2 * math.Sqrt(d2)
	case 4:
		return d2 * d2
	}
	return PowAlphaSq(d2, alpha)
}

// bin maps a point to its leaf-local Morton code at level L, clamping
// boundary points into the grid.
func (q *QuadTree) bin(p geom.Point) int32 {
	tx := int32(math.Floor((p.X - q.ox) / q.cell))
	ty := int32(math.Floor((p.Y - q.oy) / q.cell))
	if tx < 0 {
		tx = 0
	} else if tx >= q.leafDim {
		tx = q.leafDim - 1
	}
	if ty < 0 {
		ty = 0
	} else if ty >= q.leafDim {
		ty = q.leafDim - 1
	}
	return MortonEncode(tx, ty)
}

// edgeClass returns the largest grid line index j ∈ [0, leafDim] whose
// coordinate o + j·cell does not exceed v — computed with the exact float
// expression the walks compare against. Every nearest-child midline at
// every level equals o + j·cell for some j (the node side is cell scaled
// by a power of two, so float64(2x+1)·side rounds identically to
// float64(j)·cell for j = (2x+1)·2^m — same real product, same rounding),
// so two points with equal edgeClass on both axes take identical
// nearest-child decisions at every pyramid node. The floor seed can land
// an ulp off the float comparison; the fixup loops repair it against the
// comparison expression itself.
func (q *QuadTree) edgeClass(v, o float64) int32 {
	dim := q.leafDim
	j := int32(math.Floor((v - o) / q.cell))
	if j < 0 {
		j = 0
	} else if j > dim {
		j = dim
	}
	for j < dim && o+float64(j+1)*q.cell <= v {
		j++
	}
	for j > 0 && o+float64(j)*q.cell > v {
		j--
	}
	return j
}

// buildBatchSpec sorts the instance's nodes by predicate class (counting
// sort, stable by node id) — the static schedule ResolveBatch groups
// listeners by.
func (q *QuadTree) buildBatchSpec() {
	n := len(q.in.pts)
	kdim := int32(q.leafDim) + 1
	nk := int(kdim) * int(kdim)
	keys := make([]int32, n)
	cnt := make([]int32, nk+1)
	for i, p := range q.in.pts {
		k := q.edgeClass(p.Y, q.oy)*kdim + q.edgeClass(p.X, q.ox)
		keys[i] = k
		cnt[k+1]++
	}
	for k := 1; k <= nk; k++ {
		cnt[k] += cnt[k-1]
	}
	ord := make([]int32, n)
	cls := make([]int32, n)
	for i := 0; i < n; i++ {
		k := keys[i]
		pos := cnt[k]
		cnt[k] = pos + 1
		ord[pos] = int32(i)
		cls[pos] = k
	}
	q.batchOrder, q.batchClass = ord, cls
}

// BatchSpec returns the plan's static listener batching schedule: every
// instance node sorted by predicate class, plus the class key per
// position. A maximal run of equal keys may be resolved through one shared
// frontier (ResolveBatch); the engine slices runs out of this order each
// slot instead of re-deriving them.
func (q *QuadTree) BatchSpec() (order, class []int32) {
	return q.batchOrder, q.batchClass
}

// Instance returns the instance the plan was built over.
func (q *QuadTree) Instance() *Instance { return q.in }

// MaxRelError returns the requested error bound.
func (q *QuadTree) MaxRelError() float64 { return q.maxRelErr }

// CertifiedMaxRelError returns the certified worst-case relative
// interference error (1+θ)^α − 1 ≤ MaxRelError().
func (q *QuadTree) CertifiedMaxRelError() float64 { return q.certErr }

// Levels returns the pyramid depth L (leaves are level L).
func (q *QuadTree) Levels() int { return q.levels }

// LeafCell returns the leaf side.
func (q *QuadTree) LeafCell() float64 { return q.cell }

// Leaves returns the leaf count of the deepest level.
func (q *QuadTree) Leaves() int { return int(q.leafDim) * int(q.leafDim) }

// Nodes returns the total pyramid node count across all levels.
func (q *QuadTree) Nodes() int { return q.nodes }

// Theta returns the opening threshold θ(ε, α).
func (q *QuadTree) Theta() float64 { return q.theta }

// OpenRadius2 returns the squared opening radius of level lvl — a node at
// that level is aggregated iff the listener's squared centroid distance is
// at least this value (exported for the oracle lockstep suite).
func (q *QuadTree) OpenRadius2(lvl int) float64 { return q.openRad2[lvl] }

// NearDominated reports that the leaf-level opening horizon reaches a
// quarter of the root square's side: the opened-leaf disk then covers
// ≥ π/16 ≈ 20% of the instance, and the walk's exact scans plus pyramid
// overhead measurably undercut plain exact resolution — the quadtree
// analog of the flat grid's NearDominated regime (measured boundary,
// re-validated against the Morton layout and batched decode: at ε = 0.1
// the n = 65536 walk, horizon/side ≈ 0.34, still runs 1.12× slower than
// exact — down from 1.33× pre-Morton, same sign — while n = 262144,
// horizon/side ≈ 0.17, wins 1.28× more than before; BENCH_quadtree.json).
// It holds for tight ε at small instances (the
// opening radius is ≥ cell·√2/θ ≥ √2/θ units, so a span below ~4√2/θ
// cannot be resolved hierarchically); the session's FarAuto mode falls
// back to exact resolution when it does, a forced FarQuadtree run keeps
// the plan. Equivalently, since horizon/side = (√2/θ)/2^L: the pyramid
// needs depth 2^L > 4√2/θ before hierarchy pays.
func (q *QuadTree) NearDominated() bool {
	quarter := q.side[0] / 4
	return q.openRad2[q.levels] >= quarter*quarter
}

// LeafCoords returns node i's leaf coordinates at the deepest level
// (exported for the oracle lockstep suite).
func (q *QuadTree) LeafCoords(i int) (x, y int) {
	mx, my := MortonDecode(q.leafOf[i])
	return int(mx), int(my)
}

// NewResolver implements Far: fresh per-slot state for an engine.
func (q *QuadTree) NewResolver() FarResolver { return q.NewScratch() }

// AcquireResolver borrows pooled per-slot state; pair with ReleaseResolver.
func (q *QuadTree) AcquireResolver() FarResolver {
	return q.scratches.Get().(*QuadScratch)
}

// ReleaseResolver returns a scratch borrowed with AcquireResolver.
func (q *QuadTree) ReleaseResolver(sc FarResolver) {
	q.scratches.Put(sc.(*QuadScratch))
}

// extendTo reuses the plan for an instance grown by Extend: when every
// appended point falls inside the root square, only the new points are
// binned and the batch schedule rebuilt (O(new + n)); otherwise the grown
// instance rebuilds its plan lazily.
func (q *QuadTree) extendTo(out *Instance) (*QuadTree, bool) {
	n := len(q.in.pts)
	m := len(out.pts)
	side := q.cell * float64(q.leafDim)
	for _, p := range out.pts[n:] {
		if p.X < q.ox || p.Y < q.oy || p.X > q.ox+side || p.Y > q.oy+side {
			return nil, false
		}
	}
	nq := *q
	nq.in = out
	nq.leafOf = make([]int32, m)
	copy(nq.leafOf, q.leafOf)
	for i := n; i < m; i++ {
		nq.leafOf[i] = nq.bin(out.pts[i])
	}
	nq.buildBatchSpec()
	nq.f32 = newQuadTreeF32(&nq)
	nq.scratches = &sync.Pool{New: func() any { return nq.NewScratch() }}
	return &nq, true
}

// QuadTree returns the hierarchical plan for the given error bound,
// building and caching it on first use (one plan per distinct ε, read-only
// after build — safe to share across concurrent runs, exactly like the
// flat-grid cache).
func (in *Instance) QuadTree(maxRelErr float64) (*QuadTree, error) {
	in.ffMu.Lock()
	defer in.ffMu.Unlock()
	if q, ok := in.qt[maxRelErr]; ok {
		return q, nil
	}
	q, err := newQuadTree(in, maxRelErr)
	if err != nil {
		return nil, err
	}
	if in.qt == nil {
		in.qt = make(map[float64]*QuadTree)
	}
	if len(in.qt) >= maxFarPlans {
		//lint:ignore determinism eviction picks which plan is rebuilt, never its values; plans are pure functions of (instance, ε)
		for eps := range in.qt {
			delete(in.qt, eps)
			break
		}
	}
	in.qt[maxRelErr] = q
	return q, nil
}

// QuadScratch is the per-slot mutable state of a quadtree plan: the
// epoch-stamped pyramid accumulators, per-level active lists, and the leaf
// bucketing for exact scans. One scratch belongs to one concurrent user;
// all buffers are allocated once at NewScratch so the per-slot
// Accumulate/Resolve cycle allocates nothing (the sharded-accumulate arena
// is lazily allocated on first use and reused after). Resolve and LinkSINR
// keep their DFS stacks on the goroutine stack, so concurrent listeners
// may share one scratch read-only.
type QuadScratch struct {
	q     *QuadTree
	epoch uint32
	// Per-node accumulators (global pyramid ids), valid where stamp ==
	// epoch. cenX/cenY hold raw Σ P·coord sums during the bottom-up pass
	// and normalized centroids after it.
	stamp []uint32
	mass  []float64
	cenX  []float64
	cenY  []float64
	pmax  []float64
	// active lists each level's occupied nodes (local Morton ids) in
	// first-touch order.
	active [][]int32
	// Leaf bucketing for exact scans (leaf-local Morton ids), as in
	// FarScratch, plus streaming copies of the bucketed senders'
	// coordinates and powers (sx/sy/sp, bucket order): the leaf scans read
	// these sequentially instead of gathering through order → txs → pts.
	start []int32
	fill  []int32
	order []int32
	sx    []float64
	sy    []float64
	sp    []float64
	// senderMark/markEpoch implement the zero-alloc duplicate-sender check
	// shared with the flat grid's scratch.
	senderMark []uint32
	markEpoch  uint32
	// prec32 selects the float32 aggregate walks (quadtree_f32.go):
	// Accumulate additionally rounds each occupied node's aggregates once
	// into the f32 mirror, and Resolve/LinkSINR read the mirror.
	prec32 bool
	mass32 []float32
	cenX32 []float32
	cenY32 []float32
	// Sharded-accumulate state (quadtree_shard.go), lazily allocated by
	// the first AccumBegin.
	shardS      int     // shard level s: shards are the level-s subtrees
	shardTx     []int32 // tx indices counting-sorted by shard (stable)
	shardArena  []int32 // per-level, per-shard active segments (Morton ids)
	shardABase  []int32 // arena offset of each level s..L
	shardCnt    [][]int32
	shardSeg    [maxAccumShards + 1]int32
	shardList   [maxAccumShards]int32
	shardN      int
	shardsReady bool
}

// maxAccumShards caps the sharded-accumulate fan-out: shards are the
// subtrees rooted at level s = min(3, L), at most 4³ = 64 of them.
const maxAccumShards = 64

// NewScratch allocates per-slot state for the plan.
func (q *QuadTree) NewScratch() *QuadScratch {
	return q.newScratch(false)
}

func (q *QuadTree) newScratch(prec32 bool) *QuadScratch {
	n := len(q.in.pts)
	leaves := q.Leaves()
	active := make([][]int32, q.levels+1)
	for lvl := range active {
		capL := 1 << (2 * lvl)
		if n < capL {
			capL = n
		}
		active[lvl] = make([]int32, 0, capL)
	}
	sc := &QuadScratch{
		q:          q,
		stamp:      make([]uint32, q.nodes),
		mass:       make([]float64, q.nodes),
		cenX:       make([]float64, q.nodes),
		cenY:       make([]float64, q.nodes),
		pmax:       make([]float64, q.nodes),
		active:     active,
		start:      make([]int32, leaves),
		fill:       make([]int32, leaves),
		order:      make([]int32, n),
		sx:         make([]float64, n),
		sy:         make([]float64, n),
		sp:         make([]float64, n),
		senderMark: make([]uint32, n),
		prec32:     prec32,
	}
	if prec32 {
		sc.mass32 = make([]float32, q.nodes)
		sc.cenX32 = make([]float32, q.nodes)
		sc.cenY32 = make([]float32, q.nodes)
	}
	return sc
}

// beginEpoch advances the scratch epoch, invalidating all stamps on wrap.
func (sc *QuadScratch) beginEpoch() uint32 {
	sc.epoch++
	if sc.epoch == 0 { // uint32 wrap: invalidate all stamps once
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	return sc.epoch
}

// Accumulate implements FarResolver: one bottom-up pass folds the slot's
// sender set into the pyramid — leaf aggregates and bucketing in tx order,
// then each level into its parents in first-touch order, then one centroid
// normalization sweep over the active nodes. O(len(txs) + occupied nodes),
// allocation-free.
//sinr:hotpath
func (sc *QuadScratch) Accumulate(txs []Tx) {
	q := sc.q
	ep := sc.beginEpoch()
	l := q.levels
	for lvl := range sc.active {
		sc.active[lvl] = sc.active[lvl][:0]
	}
	leafOff := q.levelOff[l]
	leaves := sc.active[l]
	for i := range txs {
		t := q.leafOf[txs[i].Sender]
		g := leafOff + t
		if sc.stamp[g] != ep {
			sc.stamp[g] = ep
			sc.mass[g], sc.cenX[g], sc.cenY[g], sc.pmax[g] = 0, 0, 0, 0
			sc.fill[t] = 0
			//lint:ignore hotpathalloc leaves aliases preallocated sc.active[l]; occupied leaves never exceed its capacity
			leaves = append(leaves, t)
		}
		p := txs[i].Power
		pt := q.in.pts[txs[i].Sender]
		sc.mass[g] += p
		sc.cenX[g] += p * pt.X
		sc.cenY[g] += p * pt.Y
		if p > sc.pmax[g] {
			sc.pmax[g] = p
		}
		sc.fill[t]++
	}
	sc.active[l] = leaves
	ofs := int32(0)
	for _, t := range leaves {
		sc.start[t] = ofs
		ofs += sc.fill[t]
		sc.fill[t] = 0
	}
	for i := range txs {
		t := q.leafOf[txs[i].Sender]
		idx := sc.start[t] + sc.fill[t]
		sc.order[idx] = int32(i)
		pt := q.in.pts[txs[i].Sender]
		sc.sx[idx] = pt.X
		sc.sy[idx] = pt.Y
		sc.sp[idx] = txs[i].Power
		sc.fill[t]++
	}
	// Bottom-up fold: raw sums propagate so a parent's centroid is the
	// exact power-weighted centroid of every sender below it. Morton
	// layout makes the parent one shift: local id t>>2.
	for lvl := l; lvl > 0; lvl-- {
		childOff := q.levelOff[lvl]
		parentOff := q.levelOff[lvl-1]
		plist := sc.active[lvl-1]
		for _, t := range sc.active[lvl] {
			pl := t >> 2
			pg := parentOff + pl
			g := childOff + t
			if sc.stamp[pg] != ep {
				sc.stamp[pg] = ep
				sc.mass[pg], sc.cenX[pg], sc.cenY[pg], sc.pmax[pg] = 0, 0, 0, 0
				//lint:ignore hotpathalloc plist aliases preallocated sc.active[lvl-1]; occupied parents never exceed its capacity
				plist = append(plist, pl)
			}
			sc.mass[pg] += sc.mass[g]
			sc.cenX[pg] += sc.cenX[g]
			sc.cenY[pg] += sc.cenY[g]
			if sc.pmax[g] > sc.pmax[pg] {
				sc.pmax[pg] = sc.pmax[g]
			}
		}
		sc.active[lvl-1] = plist
	}
	for lvl := 0; lvl <= l; lvl++ {
		off := q.levelOff[lvl]
		for _, t := range sc.active[lvl] {
			g := off + t
			if m := sc.mass[g]; m > 0 {
				sc.cenX[g] /= m
				sc.cenY[g] /= m
			}
		}
	}
	if sc.prec32 {
		sc.round32Active()
	}
}

// quadStackCap bounds the DFS stack: a walk holds at most 3 pending
// siblings per level plus the 4 children just pushed.
const quadStackCap = 4*maxQuadLevels + 4

// Resolve implements FarResolver: channel reception at listener v with the
// strongest sender exact (see the refinement note in the package comment)
// and far nodes aggregated within the certified ε. The DFS stack lives on
// the goroutine stack, so concurrent listeners share the scratch safely.
//
// Unlike LinkSINR's fixed child order, Resolve descends proximity-first:
// at each opened node, the child quadrant containing the listener is
// visited first, then its lateral neighbors, then the diagonal. The walk
// therefore beelines to the listener's own leaf and seeds bestRP with the
// likely winner before touching the rest of the pyramid — without it, the
// "could this node hide the winner" refinement compares against a
// near-zero bestRP across the early quadrants and opens nearly everything,
// degenerating the walk toward an exact scan. The order depends only on
// the listener's coordinates and the static node geometry, so runs stay
// deterministic and worker-count independent.
//sinr:hotpath
func (sc *QuadScratch) Resolve(v int, txs []Tx) (best int, bestRP, total float64, saturated bool) {
	if sc.prec32 {
		return sc.resolve32(v)
	}
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	spec := q.powSpec
	pv := in.pts[v]
	best = -1
	ep := sc.epoch
	l := q.levels
	var stack [quadStackCap]int64
	if sc.stamp[0] != ep {
		return best, 0, 0, false // no senders accumulated
	}
	stack[0] = 0 // root: level 0, Morton id 0
	top := 1
	for top > 0 {
		top--
		e := stack[top]
		lvl := int(e >> 32)
		t := int32(e)
		g := q.levelOff[lvl] + t
		dx := pv.X - sc.cenX[g]
		dy := pv.Y - sc.cenY[g]
		d2 := dx*dx + dy*dy
		if d2 >= q.openRad2[lvl] {
			gc := 1 / powAlphaSqSpec(d2, alpha, spec)
			if sc.pmax[g]*gc*q.refineFac <= bestRP {
				total += sc.mass[g] * gc
				continue
			}
			// The node could hide a sender outreceiving the best exact
			// candidate so far: open it (the bound only shrinks as best
			// grows, so nodes already accepted stay safe).
		}
		if lvl == l {
			for si := sc.start[t]; si < sc.start[t]+sc.fill[t]; si++ {
				ddx := pv.X - sc.sx[si]
				ddy := pv.Y - sc.sy[si]
				sd2 := ddx*ddx + ddy*ddy
				if sd2 == 0 {
					return -1, 0, 0, true
				}
				rp := sc.sp[si] / powAlphaSqSpec(sd2, alpha, spec)
				total += rp
				if rp > bestRP {
					bestRP = rp
					best = int(sc.order[si])
				}
			}
			continue
		}
		x, y := MortonDecode(t)
		base := t << 2
		clvl := int64(lvl+1) << 32
		coff := q.levelOff[lvl+1]
		// Nearest child: which side of the node's midlines the listener
		// falls on (clamped outside the node by the comparison itself).
		cside := q.side[lvl+1]
		var nx, ny int32
		if pv.X >= q.ox+float64(2*x+1)*cside {
			nx = 1
		}
		if pv.Y >= q.oy+float64(2*y+1)*cside {
			ny = 1
		}
		// Occupied children pushed in reverse: popped order is nearest,
		// x-neighbor, y-neighbor, diagonal (empty quadrants are filtered
		// here, before they cost a stack round-trip). Morton layout keeps
		// all four in one cache line: children of t are base..base+3.
		for _, c := range [4]int32{base | (ny^1)<<1 | (nx ^ 1), base | (ny^1)<<1 | nx, base | ny<<1 | (nx ^ 1), base | ny<<1 | nx} {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				stack[top] = clvl | int64(c)
				top++
			}
		}
	}
	return best, bestRP, total, false
}

// LinkSINR implements FarResolver: the approximate SINR of link l whose
// sender transmits with power pu among the accumulated set — exact signal,
// leaf-exact interference inside the opening horizon, aggregated nodes
// beyond it (never refined — no winner is sought). The link's own sender is
// excluded exactly in opened leaves and by mass subtraction in the
// aggregated ancestor that absorbs it; txs must contain at most one entry
// per sender (the per-slot schedule invariant). The exact SINR lies within
// [·(1−ε), ·(1+ε)] of the returned value for ε = CertifiedMaxRelError.
//sinr:hotpath
func (sc *QuadScratch) LinkSINR(txs []Tx, l Link, pu float64) float64 {
	if sc.prec32 {
		return sc.linkSINR32(txs, l, pu)
	}
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	spec := q.powSpec
	u, v := l.From, l.To
	pv := in.pts[v]
	signal := pu / PowAlphaSq(pv.DistSq(in.pts[u]), alpha)
	if signal == 0 {
		return 0
	}
	ep := sc.epoch
	lv := q.levels
	ul := q.leafOf[u]
	interference := 0.0
	if sc.stamp[0] != ep {
		return signal / in.params.Noise
	}
	var stack [quadStackCap]int64
	stack[0] = 0
	top := 1
	for top > 0 {
		top--
		e := stack[top]
		lvl := int(e >> 32)
		t := int32(e)
		g := q.levelOff[lvl] + t
		dx := pv.X - sc.cenX[g]
		dy := pv.Y - sc.cenY[g]
		d2 := dx*dx + dy*dy
		if d2 >= q.openRad2[lvl] {
			m := sc.mass[g]
			if t == ul>>(2*uint(lv-lvl)) {
				// The link's own sender sits under this aggregated node:
				// remove its share of the mass (the centroid stays inside
				// the square, so the error bound is unaffected).
				m -= pu
			}
			if m <= 0 {
				continue
			}
			interference += m / powAlphaSqSpec(d2, alpha, spec)
			continue
		}
		if lvl == lv {
			for si := sc.start[t]; si < sc.start[t]+sc.fill[t]; si++ {
				if txs[sc.order[si]].Sender == u {
					continue
				}
				ddx := pv.X - sc.sx[si]
				ddy := pv.Y - sc.sy[si]
				sd2 := ddx*ddx + ddy*ddy
				interference += sc.sp[si] / powAlphaSqSpec(sd2, alpha, spec)
			}
			continue
		}
		base := t << 2
		clvl := int64(lvl+1) << 32
		coff := q.levelOff[lvl+1]
		// Occupied children pushed in reverse so they pop in quadrant
		// order (0,0), (1,0), (0,1), (1,1) — the same spatial sequence the
		// row-major walk used and the oracle lockstep transcribes (its
		// recursion skips empty nodes at entry; filtering before the push
		// visits the same nodes in the same order).
		for c := base + 3; c >= base; c-- {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				stack[top] = clvl | int64(c)
				top++
			}
		}
	}
	return signal / (in.params.Noise + interference)
}

// distinctSenders implements FarResolver via the shared mark-array check
// (checkDistinctSenders, farfield.go).
func (sc *QuadScratch) distinctSenders(links []Link) error {
	return checkDistinctSenders(sc.senderMark, &sc.markEpoch, links)
}
