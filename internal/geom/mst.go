package geom

import "math"

// Edge is an undirected edge between two point indices with its Euclidean
// length.
type Edge struct {
	U, V int
	Len  float64
}

// MST computes a Euclidean minimum spanning tree of pts using Prim's
// algorithm in O(n²) time, which is optimal for dense geometric inputs of
// the sizes this library targets. It returns n-1 edges (or nil for fewer
// than two points). The MST is the structure the centralized connectivity
// algorithm of Halldórsson & Mitra (SODA 2012) schedules, and serves as the
// centralized baseline in our experiments.
func MST(pts []Point) []Edge {
	n := len(pts)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestDist[j] = pts[0].DistSq(pts[j])
		bestFrom[j] = 0
	}
	edges := make([]Edge, 0, n-1)
	for len(edges) < n-1 {
		pick := -1
		pickD := math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && bestDist[j] < pickD {
				pickD = bestDist[j]
				pick = j
			}
		}
		if pick < 0 {
			break // disconnected is impossible for finite points; defensive
		}
		inTree[pick] = true
		edges = append(edges, Edge{
			U:   bestFrom[pick],
			V:   pick,
			Len: math.Sqrt(pickD),
		})
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := pts[pick].DistSq(pts[j]); d < bestDist[j] {
					bestDist[j] = d
					bestFrom[j] = pick
				}
			}
		}
	}
	return edges
}

// TotalLength returns the sum of edge lengths.
func TotalLength(edges []Edge) float64 {
	s := 0.0
	for _, e := range edges {
		s += e.Len
	}
	return s
}
