package experiments

// E20 ablates the million-node slot engine's three switchable layers —
// listener batching (on/off), aggregate precision (f64/f32), worker
// count (serial/parallel) — over a dense far-field slot. The Morton
// pyramid layout is structural (there is no row-major engine left to
// toggle; the drift gate pins it bit-identical to the PR-8 kernel
// instead). Two shape checks are Type 1: batching and worker count must
// not change a single delivered bit within a precision (they are
// re-schedules of identical arithmetic, DESIGN.md §12), and the f32
// slot's delivery count must stay within the joint certified band of the
// f64 slot's (winners are exact in both, so disagreement is bounded to
// threshold-marginal links). Timing columns are informational — the
// batching and sharding wins grow with n (BENCH_quadtree.json carries
// the n = 1048576 headline).

import (
	"context"
	"fmt"
	"math"
	"time"

	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/stats"
	"sinrconn/internal/workload"
	mrand "math/rand"
)

// E20SlotEngine ablates batch × precision × workers on a dense slot.
func E20SlotEngine(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E20",
		Title: "Slot-engine ablation: listener batching × far precision × workers",
		Claim: "engineering: batching and sharded accumulation are bit-invisible re-schedules; f32 aggregation trades ~1e-7 certificate inflation for halved aggregate bandwidth",
		Table: stats.NewTable("precision", "batch", "workers", "ms/slot", "deliveries"),
	}
	r.Pass = true
	// 4096 nodes → 2048 senders per dense slot: exactly the sharded
	// accumulation threshold, so the parallel rows exercise the full
	// machinery (shards + batched decode) at experiment scale.
	n := cfg.Sizes[len(cfg.Sizes)-1] * 4
	rng := mrand.New(mrand.NewSource(41))
	pts := workload.JitteredGrid(rng, n, 2.6, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	q, err := in.QuadTree(0.5)
	if err != nil {
		r.Notes = append(r.Notes, err.Error())
		r.Pass = false
		return r
	}

	type cell struct {
		prec    string
		noBatch bool
		workers int
	}
	run := func(c cell) (float64, sim.Stats) {
		var ff sinr.Far = q
		if c.prec == "f32" {
			ff = q.Prec32()
		}
		power := in.Params().SafePower(4)
		procs := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			procs[i] = &farStepProto{id: i, transmit: i%2 == 0, power: power}
		}
		eng, err := sim.NewEngine(in, procs, sim.Config{
			Workers: c.workers, FarField: ff, NoFarBatch: c.noBatch,
		})
		if err != nil {
			return math.NaN(), sim.Stats{}
		}
		defer eng.Close()
		eng.Run(2)
		const slots = 6
		start := time.Now()
		eng.Run(slots)
		return float64(time.Since(start).Microseconds()) / 1000 / slots, eng.Stats()
	}

	workers := cfg.Workers
	if workers < 2 {
		workers = 2
	}
	var f64Ref, f32Ref *sim.Stats
	for _, prec := range []string{"f64", "f32"} {
		for _, noBatch := range []bool{false, true} {
			for _, w := range []int{1, workers} {
				if err := ctx.Err(); err != nil {
					r.Notes = append(r.Notes, err.Error())
					r.Pass = false
					return r
				}
				ms, st := run(cell{prec, noBatch, w})
				r.Table.AddRow(prec,
					fmt.Sprintf("%v", !noBatch),
					fmt.Sprintf("%d", w),
					fmt.Sprintf("%.2f", ms),
					fmt.Sprintf("%d", st.Deliveries))
				// Type 1 within a precision: every batch/worker cell is
				// bit-identical.
				var ref **sim.Stats
				if prec == "f64" {
					ref = &f64Ref
				} else {
					ref = &f32Ref
				}
				if *ref == nil {
					cp := st
					*ref = &cp
				} else if **ref != st {
					r.Notes = append(r.Notes, fmt.Sprintf(
						"%s batch=%v workers=%d drifted from its precision's reference: %+v vs %+v",
						prec, !noBatch, w, st, **ref))
					r.Pass = false
				}
			}
		}
	}
	// Cross-precision: winners are exact in both plans, so the delivery
	// counts may differ only on threshold-marginal links — a sliver, not
	// a drift.
	if f64Ref != nil && f32Ref != nil {
		d64, d32 := float64(f64Ref.Deliveries), float64(f32Ref.Deliveries)
		if d64 > 0 && math.Abs(d64-d32) > 0.01*d64 {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"f32 deliveries %v diverged more than 1%% from f64's %v", d32, d64))
			r.Pass = false
		}
	}
	r.Notes = append(r.Notes,
		"Morton layout has no off switch: TestMortonLayoutDriftGate pins it bit-identical to the transcribed row-major kernel instead",
		"at the default sweep (n = 4096) the parallel rows accumulate through the 64-shard path (2048 senders = the engine threshold) and decode through run-sliced ResolveBatch; serial rows share only the batched frontier",
		"f32 certificate inflation over f64 at this geometry: see DESIGN.md §12.4 (≈1e-7, seven orders under ε = 0.1)")
	return r
}
