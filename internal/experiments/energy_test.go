package experiments

import "testing"

func TestE13Energy(t *testing.T) {
	runAndCheck(t, E13Energy(t.Context(), Quick()), 2)
}

func TestE14PhysicalEpoch(t *testing.T) {
	runAndCheck(t, E14PhysicalEpoch(t.Context(), Quick()), 2)
}
