package serve

import (
	"testing"
	"time"
)

// TestTimeoutClamp pins the request-timeout resolution: negative and
// zero timeout_ms clamp to the server default (never an already-expired
// deadline), over-max clamps to the cap, and the cap applies even when
// no default is configured.
func TestTimeoutClamp(t *testing.T) {
	settleGoroutines(t)
	const (
		def = 2 * time.Second
		max = 10 * time.Second
	)
	cases := []struct {
		name string
		ms   int64
		def  time.Duration
		max  time.Duration
		want time.Duration
	}{
		{"negative clamps to default", -50, def, max, def},
		{"zero clamps to default", 0, def, max, def},
		{"negative with no default clamps to max", -1, 0, max, max},
		{"in range passes through", 3000, def, max, 3 * time.Second},
		{"over max clamps to max", 60_000, def, max, max},
		{"default over max clamps to max", 0, 20 * time.Second, max, max},
		{"no bounds at all means none", 0, 0, 0, 0},
		{"negative with no bounds means none", -7, 0, 0, 0},
		{"uncapped request honored", 60_000, def, 0, time.Minute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := timeout(tc.ms, tc.def, tc.max); got != tc.want {
				t.Fatalf("timeout(%d, %v, %v) = %v, want %v", tc.ms, tc.def, tc.max, got, tc.want)
			}
		})
	}
}
