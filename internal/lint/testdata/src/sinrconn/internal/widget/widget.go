// Package widget is the ctxdiscipline fixture: a library package, so
// exported entry points take a context first and never mint their own.
package widget

import "context"

// Run buries the context behind the config — flagged.
func Run(cfg int, ctx context.Context) error { // want `Run: context.Context must be the first parameter`
	_ = cfg
	_ = ctx
	return nil
}

// Detached conjures a root context inside the library — flagged.
func Detached() {
	ctx := context.Background() // want `context.Background\(\) in a library package`
	_ = ctx
}

// Good is the sanctioned signature: context first, everything else after.
func Good(ctx context.Context, cfg int) error {
	_ = ctx
	_ = cfg
	return nil
}

// helper is unexported, so parameter order is the author's business.
func helper(cfg int, ctx context.Context) {
	_ = cfg
	_ = ctx
}
