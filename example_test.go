package sinrconn_test

import (
	"fmt"
	"log"

	"sinrconn"
)

// Build a bi-tree for a small fixed deployment and verify every property
// the theorems promise. Results are deterministic for a fixed seed.
func ExampleBuildInitialBiTree() {
	pts := []sinrconn.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 1},
		{X: 1, Y: 3}, {X: 3, Y: 4}, {X: 6, Y: 3},
	}
	res, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", res.Tree.NumNodes)
	fmt.Println("links:", len(res.Tree.Up))
	fmt.Println("spanning:", res.Tree.NumNodes == len(res.Tree.Up)+1)
	// Output:
	// nodes: 6
	// links: 5
	// spanning: true
}

// Aggregate a sum over the whole network in one physical converge-cast
// epoch.
func ExampleResult_Aggregate() {
	pts := []sinrconn.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}, {X: 2, Y: 2},
	}
	res, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	out, err := res.Aggregate([]int64{10, 20, 30, 40}, sinrconn.SumAgg, sinrconn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("root collected:", out.Value)
	// Output:
	// root collected: 100
}

// Disseminate a value from the root to every node.
func ExampleResult_Broadcast() {
	pts := []sinrconn.Point{
		{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 3}, {X: 3, Y: 3}, {X: 6, Y: 1},
	}
	res, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	out, err := res.Broadcast(77, sinrconn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reached:", out.Reached, "of", res.Tree.NumNodes)
	// Output:
	// reached: 5 of 5
}

// Attach newly awakened nodes to a live network.
func ExampleResult_JoinPoints() {
	pts := []sinrconn.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}
	res, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	grown, err := res.JoinPoints([]sinrconn.Point{{X: 6, Y: 0}, {X: 8, Y: 1}}, sinrconn.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("now spanning:", grown.Tree.NumNodes)
	// Output:
	// now spanning: 5
}
