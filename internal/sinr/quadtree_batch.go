package sinr

// Frontier-sharing batch resolution: Resolve for a group of co-located
// listeners that provably take the same open/descend decisions, walking
// the pyramid ONCE for the whole group instead of once per listener.
//
// Which listeners can share a walk? Resolve's traversal shape depends on
// the listener only through (a) the accept/refine outcome at each node —
// per-listener, handled below — and (b) the nearest-child predicates
// pv.X ≥ ox + (2x+1)·side(lvl+1) (and the y analog), which fix the order
// children are pushed. Every such midline equals ox + j·cell for an
// integer j: side(lvl+1) = cell·2^m exactly (power-of-two scaling is
// exact), so float64(2x+1)·side(lvl+1) and float64(j)·cell with
// j = (2x+1)·2^m round the same real product to the same float. Listeners
// with equal edgeClass on both axes (the plan's batchClass key) therefore
// agree on EVERY midline comparison at every level — their pushed child
// orders are identical trees, and a shared DFS visits each listener's
// nodes in exactly its solo order. TestListenerBatchDriftGate pins the
// outputs bit-identical to per-listener Resolve.
//
// The shared walk keeps one frame stack (same geometry as Resolve's) plus
// a survivor arena: each frame carries the segment of listeners still
// descending through its node. At a popped frame, each survivor takes the
// solo accept/refine test — acceptors fold the aggregate and leave the
// segment; refiners and near listeners survive into the children, which
// all share one new survivor segment (a listener that opens a node visits
// all its occupied children, exactly like solo Resolve). The arena is
// stack-disciplined: a frame's free watermark restores the arena past its
// siblings' dead segments, bounding it at one segment per level.

// maxFarBatch caps the listeners walked per shared frontier: big enough
// to amortize the walk, small enough that the per-listener state stays in
// L1. ResolveBatch slices larger groups internally.
const maxFarBatch = 32

// BatchSink consumes per-listener results from ResolveBatch, in batch
// order. The arguments are exactly Resolve's returns for listener v.
type BatchSink interface {
	DeliverFar(v, best int, bestRP, total float64, saturated bool)
}

// batchFrame is one node of the shared DFS: the node, the survivor
// segment bs.seg[lo:hi] descending through it, and the arena watermark to
// restore when the frame pops (its siblings' subtrees are complete, so
// everything above free is dead).
type batchFrame struct {
	lvl, t int32
	lo, hi int32
	free   int32
}

// BatchState is the preallocated walk state for ResolveBatch: one frame
// stack, the survivor arena, and per-listener accumulators for the
// current chunk. One BatchState belongs to one concurrent user (engines
// keep one per worker); build with QuadTree.NewBatchState.
type BatchState struct {
	frames [quadStackCap]batchFrame
	seg    []int32
	best   [maxFarBatch]int32
	bestRP [maxFarBatch]float64
	total  [maxFarBatch]float64
	sat    [maxFarBatch]bool
	px     [maxFarBatch]float64
	py     [maxFarBatch]float64
}

// NewBatchState allocates walk state for ResolveBatch against this plan.
func (q *QuadTree) NewBatchState() *BatchState {
	return &BatchState{seg: make([]int32, (q.levels+2)*maxFarBatch)}
}

// ResolveBatch resolves reception at every listener in vs through one
// shared frontier per chunk of maxFarBatch, delivering each listener's
// Resolve-identical result to sink in vs order. All of vs must share one
// predicate class (one run of the plan's BatchSpec order) — the engine
// slices runs out of BatchSpec; arbitrary groupings would shear the
// shared child order away from the solo walks. Allocation-free.
//sinr:hotpath
func (sc *QuadScratch) ResolveBatch(bs *BatchState, vs []int32, sink BatchSink) {
	for base := 0; base < len(vs); base += maxFarBatch {
		end := base + maxFarBatch
		if end > len(vs) {
			end = len(vs)
		}
		sc.resolveChunk(bs, vs[base:end], sink)
	}
}

// resolveChunk runs one shared DFS for up to maxFarBatch listeners.
//sinr:hotpath
func (sc *QuadScratch) resolveChunk(bs *BatchState, chunk []int32, sink BatchSink) {
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	spec := q.powSpec
	ep := sc.epoch
	l := q.levels
	if sc.stamp[0] != ep {
		for _, v := range chunk {
			sink.DeliverFar(int(v), -1, 0, 0, false)
		}
		return
	}
	k := int32(len(chunk))
	for ci := int32(0); ci < k; ci++ {
		p := in.pts[chunk[ci]]
		bs.px[ci], bs.py[ci] = p.X, p.Y
		bs.best[ci] = -1
		bs.bestRP[ci], bs.total[ci] = 0, 0
		bs.sat[ci] = false
		bs.seg[ci] = ci
	}
	bs.frames[0] = batchFrame{lvl: 0, t: 0, lo: 0, hi: k, free: k}
	top := 1
	for top > 0 {
		top--
		fr := bs.frames[top]
		segTop := fr.free
		lvl := int(fr.lvl)
		t := fr.t
		g := q.levelOff[lvl] + t
		cenX := sc.cenX[g]
		cenY := sc.cenY[g]
		orad := q.openRad2[lvl]
		pm := sc.pmax[g]
		m := sc.mass[g]
		leaf := lvl == l
		ns := int32(0)
		for idx := fr.lo; idx < fr.hi; idx++ {
			ci := bs.seg[idx]
			if bs.sat[ci] {
				continue
			}
			dx := bs.px[ci] - cenX
			dy := bs.py[ci] - cenY
			d2 := dx*dx + dy*dy
			if d2 >= orad {
				gc := 1 / powAlphaSqSpec(d2, alpha, spec)
				if pm*gc*q.refineFac <= bs.bestRP[ci] {
					bs.total[ci] += m * gc
					continue
				}
			}
			if leaf {
				pxci := bs.px[ci]
				pyci := bs.py[ci]
				for si := sc.start[t]; si < sc.start[t]+sc.fill[t]; si++ {
					ddx := pxci - sc.sx[si]
					ddy := pyci - sc.sy[si]
					sd2 := ddx*ddx + ddy*ddy
					if sd2 == 0 {
						// Solo Resolve returns (-1, 0, 0, true) on the
						// spot; the batch flags the listener and discards
						// its accumulators at delivery.
						bs.sat[ci] = true
						break
					}
					rp := sc.sp[si] / powAlphaSqSpec(sd2, alpha, spec)
					bs.total[ci] += rp
					if rp > bs.bestRP[ci] {
						bs.bestRP[ci] = rp
						bs.best[ci] = sc.order[si]
					}
				}
				continue
			}
			bs.seg[segTop+ns] = ci
			ns++
		}
		if leaf || ns == 0 {
			continue
		}
		if ns <= soloTailMax {
			// Thin segment: the shared walk's per-survivor indirection now
			// costs more than the node-metadata amortization buys, and deep
			// frames are where the walk spends its time (co-batched
			// listeners diverge near their own leaves). Finish each
			// survivor's subtree with the solo loop instead — register
			// accumulators, no segment copies. Per-listener fold order is
			// the listener's solo DFS order either way (the predicate-class
			// proof above makes the child order listener-independent), so
			// the results stay bit-identical.
			for idx := segTop; idx < segTop+ns; idx++ {
				sc.soloTail(bs, bs.seg[idx], lvl, t)
			}
			continue
		}
		x, y := MortonDecode(t)
		base := t << 2
		coff := q.levelOff[lvl+1]
		cside := q.side[lvl+1]
		// Any survivor supplies the shared nearest-child predicates (one
		// predicate class per chunk — see the package comment's proof).
		p0 := bs.seg[segTop]
		var nx, ny int32
		if bs.px[p0] >= q.ox+float64(2*x+1)*cside {
			nx = 1
		}
		if bs.py[p0] >= q.oy+float64(2*y+1)*cside {
			ny = 1
		}
		clvl := int32(lvl + 1)
		for _, c := range [4]int32{base | (ny^1)<<1 | (nx ^ 1), base | (ny^1)<<1 | nx, base | ny<<1 | (nx ^ 1), base | ny<<1 | nx} {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				bs.frames[top] = batchFrame{lvl: clvl, t: c, lo: segTop, hi: segTop + ns, free: segTop + ns}
				top++
			}
		}
	}
	for ci := int32(0); ci < k; ci++ {
		if bs.sat[ci] {
			sink.DeliverFar(int(chunk[ci]), -1, 0, 0, true)
		} else {
			sink.DeliverFar(int(chunk[ci]), int(bs.best[ci]), bs.bestRP[ci], bs.total[ci], false)
		}
	}
}

// soloTailMax is the survivor count at or under which resolveChunk stops
// sharing the frontier and lets each survivor finish the subtree through
// soloTail. Measured on the n = 262144 bench geometry (single CPU): the
// shared walk only pays while essentially the whole chunk survives — the
// top levels, where one metadata load serves 32 listeners — and loses to
// the solo loop's register accumulators as soon as the segment thins
// (swept 8/16/31: ε = 0.5 slot 8.8 s / 7.9 s / 7.6 s against 7.1–7.5 s
// solo). 31 keeps the shared top and tails out at the first split.
const soloTailMax = 31

// soloTail continues one batched listener's walk over the subtree below
// node (lvl, t) with Resolve's own loop: accumulators in registers, no
// survivor segments. The child push order matches resolveChunk's (the
// nearest-child predicates are evaluated on this listener, which by the
// predicate-class proof agrees with every listener in the chunk), so the
// listener folds the same nodes in the same order as the fully shared
// walk — bit-identical results, pinned by TestListenerBatchDriftGate.
//sinr:hotpath
func (sc *QuadScratch) soloTail(bs *BatchState, ci int32, lvl int, t int32) {
	q := sc.q
	in := q.in
	alpha := in.params.Alpha
	spec := q.powSpec
	ep := sc.epoch
	l := q.levels
	px, py := bs.px[ci], bs.py[ci]
	best := bs.best[ci]
	bestRP := bs.bestRP[ci]
	total := bs.total[ci]
	var stack [quadStackCap]int64
	top := 0
	// The caller already ran (and failed) the accept test at (lvl, t) for
	// this listener, so the seed frame skips it (the first flag) and goes
	// straight to the child push — sharing the push block with the loop
	// body instead of duplicating it.
	stack[0] = int64(lvl)<<32 | int64(t)
	top = 1
	first := true
	for top > 0 {
		top--
		e := stack[top]
		elvl := int(e >> 32)
		et := int32(e)
		g := q.levelOff[elvl] + et
		if first {
			first = false
		} else {
			dx := px - sc.cenX[g]
			dy := py - sc.cenY[g]
			d2 := dx*dx + dy*dy
			if d2 >= q.openRad2[elvl] {
				gc := 1 / powAlphaSqSpec(d2, alpha, spec)
				if sc.pmax[g]*gc*q.refineFac <= bestRP {
					total += sc.mass[g] * gc
					continue
				}
			}
			if elvl == l {
				for si := sc.start[et]; si < sc.start[et]+sc.fill[et]; si++ {
					ddx := px - sc.sx[si]
					ddy := py - sc.sy[si]
					sd2 := ddx*ddx + ddy*ddy
					if sd2 == 0 {
						bs.sat[ci] = true
						return
					}
					rp := sc.sp[si] / powAlphaSqSpec(sd2, alpha, spec)
					total += rp
					if rp > bestRP {
						bestRP = rp
						best = sc.order[si]
					}
				}
				continue
			}
		}
		x, y := MortonDecode(et)
		base := et << 2
		clvl := int64(elvl+1) << 32
		coff := q.levelOff[elvl+1]
		cside := q.side[elvl+1]
		var nx, ny int32
		if px >= q.ox+float64(2*x+1)*cside {
			nx = 1
		}
		if py >= q.oy+float64(2*y+1)*cside {
			ny = 1
		}
		for _, c := range [4]int32{base | (ny^1)<<1 | (nx ^ 1), base | (ny^1)<<1 | nx, base | ny<<1 | (nx ^ 1), base | ny<<1 | nx} {
			if sc.stamp[coff+c] == ep && sc.mass[coff+c] != 0 {
				stack[top] = clvl | int64(c)
				top++
			}
		}
	}
	bs.best[ci] = best
	bs.bestRP[ci] = bestRP
	bs.total[ci] = total
}
