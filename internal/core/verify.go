package core

import (
	"math/rand"

	"sinrconn/internal/sinr"
)

// VerifyPair plays one broadcast/acknowledgment slot-pair over the exact
// channel physics for the given links under assignment pa and returns the
// subset that succeeded in *both* directions — the doubly-confirmed success
// notion the paper uses everywhere (Section 5, Section 8.1's "extra
// acknowledgment slot"). Node conflicts are resolved the way a radio would:
//
//   - a node that transmits cannot receive in the same slot (half-duplex);
//   - a node that is the sender of several participating links serves only
//     the first of them (the rest fail);
//   - reception requires SINR ≥ β with every concurrent transmitter as
//     interference.
func VerifyPair(in *sinr.Instance, links []sinr.Link, pa sinr.Assignment) []sinr.Link {
	out, _ := VerifyPairEnergy(in, links, pa)
	return out
}

// VerifyPairEnergy is VerifyPair reporting also the transmission energy the
// slot-pair spent on the channel (the sum of every transmitted power over
// both slots), so callers can account selection cost in their energy totals.
func VerifyPairEnergy(in *sinr.Instance, links []sinr.Link, pa sinr.Assignment) ([]sinr.Link, float64) {
	if len(links) == 0 {
		return nil, 0
	}
	// Slot 1: every link's sender transmits. Duplicate senders serve only
	// their first link.
	senderOf := make(map[int]int, len(links)) // node → link index it serves
	var txs []sinr.Tx
	for i, l := range links {
		if _, dup := senderOf[l.From]; dup {
			continue
		}
		senderOf[l.From] = i
		txs = append(txs, sinr.Tx{Sender: l.From, Power: pa.Power(in, l)})
	}
	transmitting := make(map[int]bool, len(txs))
	for _, t := range txs {
		transmitting[t.Sender] = true
	}
	forward := make([]bool, len(links))
	for i, l := range links {
		if senderOf[l.From] != i {
			continue // sender busy with another link
		}
		if transmitting[l.To] {
			continue // half-duplex: receiver is transmitting
		}
		if in.SINR(txs, l) >= in.Params().Beta {
			forward[i] = true
		}
	}

	// Slot 2: receivers of forward-successful links acknowledge on the
	// duals. A node acks only one link.
	ackOf := make(map[int]int, len(links))
	var ackTxs []sinr.Tx
	for i, l := range links {
		if !forward[i] {
			continue
		}
		if _, dup := ackOf[l.To]; dup {
			continue
		}
		ackOf[l.To] = i
		ackTxs = append(ackTxs, sinr.Tx{Sender: l.To, Power: pa.Power(in, l.Dual())})
	}
	ackSending := make(map[int]bool, len(ackTxs))
	for _, t := range ackTxs {
		ackSending[t.Sender] = true
	}
	var out []sinr.Link
	for i, l := range links {
		if !forward[i] || ackOf[l.To] != i {
			continue
		}
		if ackSending[l.From] {
			continue // original sender busy acking some other link
		}
		if in.SINR(ackTxs, l.Dual()) >= in.Params().Beta {
			out = append(out, l)
		}
	}
	return out, sumTxPower(txs, ackTxs)
}

// sumTxPower totals the transmitted power across slot transmission sets —
// the single definition of selection-protocol energy accounting.
func sumTxPower(slots ...[]sinr.Tx) float64 {
	energy := 0.0
	for _, txs := range slots {
		for _, t := range txs {
			energy += t.Power
		}
	}
	return energy
}

// MeanSample implements the Section 8.1 selection: sample each candidate
// link with probability q and keep those that survive a verification
// slot-pair under assignment pa (mean power in the paper). The paper's
// q = 1/(4γ₁Υ) makes the expected yield Ω(|cand|/Υ).
func MeanSample(in *sinr.Instance, cand []sinr.Link, pa sinr.Assignment, q float64, rng *rand.Rand) []sinr.Link {
	sel, _ := MeanSampleEnergy(in, cand, pa, q, rng)
	return sel
}

// MeanSampleEnergy is MeanSample reporting also the transmission energy the
// sampling slot-pair spent on the channel.
func MeanSampleEnergy(in *sinr.Instance, cand []sinr.Link, pa sinr.Assignment, q float64, rng *rand.Rand) ([]sinr.Link, float64) {
	if q <= 0 {
		return nil, 0
	}
	if q > 1 {
		q = 1
	}
	var sampled []sinr.Link
	for _, l := range cand {
		if rng.Float64() < q {
			sampled = append(sampled, l)
		}
	}
	return VerifyPairEnergy(in, sampled, pa)
}

// SampleProb returns the paper's sampling probability 1/(4γ₁Υ) clamped to
// (0, 1]; gamma1 ≤ 0 falls back to 0.25, making the probability 1/Υ.
func SampleProb(upsilon, gamma1 float64) float64 {
	if gamma1 <= 0 {
		gamma1 = 0.25
	}
	if upsilon < 1 {
		upsilon = 1
	}
	q := 1 / (4 * gamma1 * upsilon)
	if q > 1 {
		return 1
	}
	return q
}
