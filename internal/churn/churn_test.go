package churn

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

func testState(t *testing.T, n int, seed int64) State {
	t.Helper()
	pts := workload.UniformDensity(rand.New(rand.NewSource(seed)), n, 0.15)
	alive := make([]int, n)
	links := make([]sinr.Link, 0, n-1)
	for i := range alive {
		alive[i] = i
		if i > 0 {
			links = append(links, sinr.Link{From: i, To: i - 1})
		}
	}
	return State{Points: pts, Alive: alive, Links: links}
}

func TestGeneratorDeterministic(t *testing.T) {
	st := testState(t, 40, 1)
	run := func() []Event {
		g, err := NewGenerator(42, Rates{Join: 1, Fail: 2, Burst: 0.3, Shower: 0.5, Move: 1}, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		var evs []Event
		for i := 0; i < 50; i++ {
			ev, err := g.Next(st)
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, ev)
		}
		return evs
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Time != b[i].Time ||
			len(a[i].Nodes) != len(b[i].Nodes) || a[i].Point != b[i].Point {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorEventMix(t *testing.T) {
	st := testState(t, 60, 2)
	g, err := NewGenerator(7, Rates{Join: 1, Fail: 1, Burst: 0.2, Shower: 0.4, Move: 0.8}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Kind]int{}
	last := 0.0
	for i := 0; i < 600; i++ {
		ev, err := g.Next(st)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Time <= last {
			t.Fatalf("time went backwards: %v after %v", ev.Time, last)
		}
		last = ev.Time
		counts[ev.Kind]++
		switch ev.Kind {
		case KindJoin:
			for _, q := range st.Points {
				if q.Dist(ev.Point) < 1 {
					t.Fatalf("join at %v violates min spacing", ev.Point)
				}
			}
		case KindFail:
			if len(ev.Nodes) != 1 {
				t.Fatalf("fail with %d victims", len(ev.Nodes))
			}
		case KindBurst:
			if len(ev.Nodes) == 0 || len(ev.Nodes) >= len(st.Alive) {
				t.Fatalf("burst of size %d out of %d alive", len(ev.Nodes), len(st.Alive))
			}
		case KindShower:
			if len(ev.Links) == 0 || len(ev.Links) > 3 {
				t.Fatalf("shower of %d links (max 3)", len(ev.Links))
			}
		}
	}
	// Every kind with positive rate fires at least once in 600 draws.
	for _, k := range []Kind{KindJoin, KindFail, KindBurst, KindShower, KindMove} {
		if counts[k] == 0 {
			t.Fatalf("kind %v never fired: %v", k, counts)
		}
	}
	// Rough weight sanity: fail (rate 1) fires more than burst (rate 0.2).
	if counts[KindFail] < counts[KindBurst] {
		t.Fatalf("rate weights ignored: fail=%d burst=%d", counts[KindFail], counts[KindBurst])
	}
}

func TestGeneratorBurstIsDisc(t *testing.T) {
	st := testState(t, 80, 3)
	g, err := NewGenerator(11, Rates{Burst: 1}, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := g.Next(st)
	if err != nil {
		t.Fatal(err)
	}
	// All victims fit in a disc of the burst radius around SOME alive node:
	// check pairwise diameter ≤ 2r.
	for i := range ev.Nodes {
		for j := i + 1; j < len(ev.Nodes); j++ {
			if d := st.Points[ev.Nodes[i]].Dist(st.Points[ev.Nodes[j]]); d > 12 {
				t.Fatalf("burst victims %.1f apart, radius 6", d)
			}
		}
	}
}

func TestGeneratorImpossibleKinds(t *testing.T) {
	// Only failures enabled but a single alive node: nothing can ever fire.
	st := State{Points: []geom.Point{{X: 0, Y: 0}}, Alive: []int{0}}
	g, err := NewGenerator(1, Rates{Fail: 1}, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Next(st); err == nil {
		t.Fatal("impossible state produced an event")
	}
	if _, err := NewGenerator(1, Rates{}, 4, 3); err == nil {
		t.Fatal("all-zero rates accepted")
	}
}

func TestDamperTripsAndExpires(t *testing.T) {
	d := NewDamper(3, 10, 20, 4)
	p := geom.Point{X: 1, Y: 1}
	d.Record(p, 0)
	d.Record(p, 1)
	if d.Damped(p, 1.5) {
		t.Fatal("damped after only 2 failures")
	}
	d.Record(p, 2)
	if !d.Damped(p, 2.5) {
		t.Fatal("not damped after 3 failures in window")
	}
	if !d.Damped(p, 21.9) {
		t.Fatal("quarantine expired early (cooldown 20 from t=2)")
	}
	if d.Damped(p, 22.1) {
		t.Fatal("quarantine never expired")
	}
}

func TestDamperWindowSlides(t *testing.T) {
	d := NewDamper(3, 5, 20, 4)
	p := geom.Point{X: 0, Y: 0}
	d.Record(p, 0)
	d.Record(p, 10)
	d.Record(p, 20) // never 3 within any 5-unit window
	if d.Damped(p, 21) {
		t.Fatal("damped although failures were spread out")
	}
}

func TestDamperNeighborCells(t *testing.T) {
	// Failures just either side of a cell boundary still count as one
	// region (neighbor charging).
	d := NewDamper(3, 10, 20, 4)
	a := geom.Point{X: 3.9, Y: 0}
	b := geom.Point{X: 4.1, Y: 0}
	d.Record(a, 0)
	d.Record(b, 1)
	d.Record(a, 2)
	if !d.Damped(b, 3) {
		t.Fatal("boundary-straddling flapping not damped")
	}
}

func TestDamperDisabled(t *testing.T) {
	d := NewDamper(0, 10, 20, 4)
	p := geom.Point{X: 0, Y: 0}
	for i := 0; i < 10; i++ {
		d.Record(p, float64(i))
	}
	if d.Damped(p, 5) {
		t.Fatal("disabled damper damped")
	}
}
