// Package churn is the determinism fixture: its import path places it in
// the replay-deterministic set, so clock reads, the global rand source, and
// result-feeding map iteration are all violations.
package churn

import (
	"math/rand"
	"sort"
	"time"
)

// Bad commits all three sins.
func Bad(m map[int]int) (int64, int) {
	stamp := time.Now().UnixNano() // want `wall-clock read time.Now`
	jitter := rand.Intn(4)         // want `rand.Intn draws from the process-global source`
	sum := 0
	for k, v := range m { // want `map iteration order is random`
		sum += k * v
	}
	return stamp, jitter + sum
}

// Good shows the sanctioned forms: an explicitly seeded source, duration
// constants (no clock read), and the collect-then-sort idiom for maps.
func Good(seed int64, m map[int]int) ([]int, time.Duration) {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	_ = rng.Intn(4)
	return keys, 5 * time.Millisecond
}
