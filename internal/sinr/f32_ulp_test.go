package sinr

// White-box measurement behind the f32 certificate: the mirror is built
// by accumulating in float64 and rounding each aggregate ONCE, so every
// node's f32 error is at most one half-ulp — u = 2⁻²⁴ relative — while
// the certificate inflation budgeted for it (certErr32 − certErr) covers
// u plus the centroid-shift term. Measuring the actual per-node error
// here is what licenses calling the inflation "allowance, not cliff" in
// DESIGN.md §12.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/workload"
)

func TestFloat32AggregateUlp(t *testing.T) {
	const u = 1.0 / (1 << 24)
	const n = 700
	rng := rand.New(rand.NewSource(271))
	pts := workload.GaussianClusters(rng, n, 20, 3, 70)
	in, err := NewInstance(pts, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.1, 0.5} {
		q, err := in.QuadTree(eps)
		if err != nil {
			t.Fatal(err)
		}
		sc := q.newScratch(true)
		txs := driftTxSet(rng, n, n/2)
		sc.Accumulate(txs)
		check := func(g int, what string, exact float64, rounded float32) {
			t.Helper()
			if gotErr := math.Abs(float64(rounded) - exact); gotErr > u*math.Abs(exact)*(1+1e-15) {
				t.Fatalf("eps %v node %d: %s f32 error %v exceeds one rounding of %v (u=%v)",
					eps, g, what, gotErr, exact, u)
			}
		}
		occupied := 0
		for g := 0; g < q.nodes; g++ {
			if sc.stamp[g] != sc.epoch {
				continue
			}
			occupied++
			check(g, "mass", sc.mass[g], sc.mass32[g])
			check(g, "cenX", sc.cenX[g], sc.cenX32[g])
			check(g, "cenY", sc.cenY[g], sc.cenY32[g])
		}
		if occupied < 100 {
			t.Fatalf("eps %v: only %d occupied nodes for %d senders — workload too degenerate to measure", eps, occupied, n/2)
		}
	}
}
