// Package oracle is the deliberately naive, obviously-correct reference
// implementation of the SINR model — the differential oracle the fast
// physics kernel (internal/sinr) and the simulator (internal/sim) are
// tested against.
//
// Everything here is written for transparency, not speed: distances via
// math.Hypot, path loss via math.Pow, O(n²) loops, no caching, no pooling,
// no gain tables, no memoized link constants. The package must stay free of
// any kernel/pool/caching code forever, so that when an optimization PR
// breaks the physics, the disagreement with this package is the proof.
//
// The package imports internal/phys and internal/tree for their plain data
// types only (Params, Link, Tx, TimedLink) — it never imports internal/sinr
// at all, and it never calls a method on tree.BiTree or the fast path-loss
// helpers phys.PowAlpha/PowAlphaSq (naive math.Pow only). All computations
// take raw point slices. The oraclepurity analyzer (internal/lint) enforces
// both rules mechanically.
//
// For the far-field engines (farfield.go, quadtree.go) the same rule holds
// with one refinement: expressions that *partition* the computation — tile
// binning, ring membership, the quadtree's opening comparison and the
// centroid folds it reads — are transcribed from the kernel expression for
// expression (a flipped decision swaps an exact branch for an
// ε-approximate one, which no tolerance covers), while the physics inside
// each branch stays naive.
package oracle
