// Package power implements the power-assignment "black box" the paper
// invokes in Section 8.2.3: given a set of links known (or hoped) to be
// feasible under *some* power assignment, compute one. We use the classic
// Foschini–Miljanic fixed-point dynamics, the same family as the paper's
// references [17] (Lotker et al., Infocom 2011) and [2] (Dams et al., ICALP
// 2011):
//
//	P_ℓ ← β·d(ℓ)^α · (N + I_ℓ(P))           for every link ℓ in parallel,
//
// where I_ℓ(P) is the interference at ℓ's receiver under the current power
// vector. The iteration converges (geometrically) to the minimal feasible
// power vector iff the link set is feasible under power control with the
// required slack; otherwise powers diverge, which the solver detects and
// reports.
package power
