package main

import (
	"io"
	"testing"
)

// TestRunSmoke compiles and runs the full lifecycle on a tiny mesh
// ("exit 0" = run returns nil).
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 20, 12, 1); err != nil {
		t.Fatal(err)
	}
}
