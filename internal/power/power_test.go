package power

import (
	"errors"
	"math"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

func lineInstance(t testing.TB, xs ...float64) *sinr.Instance {
	t.Helper()
	pts := make([]geom.Point, len(xs))
	for i, x := range xs {
		pts[i] = geom.Point{X: x}
	}
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

func TestSolveEmpty(t *testing.T) {
	in := lineInstance(t, 0, 1)
	powers, it, err := Solve(in, nil, Options{})
	if err != nil || powers != nil || it != 0 {
		t.Errorf("Solve(empty) = %v, %d, %v", powers, it, err)
	}
}

func TestSolveSingleLink(t *testing.T) {
	in := lineInstance(t, 0, 4)
	p := in.Params()
	links := []sinr.Link{{From: 0, To: 1}}
	powers, it, err := Solve(in, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if it < 1 {
		t.Errorf("iterations = %d", it)
	}
	// Single link: fixed point is the noise-only requirement βN·d^α.
	want := p.Beta * p.Noise * math.Pow(4, p.Alpha)
	if math.Abs(powers[0]-want)/want > 1e-6 {
		t.Errorf("power = %v, want %v", powers[0], want)
	}
	ok, _ := in.SINRFeasible(links, powers)
	if !ok {
		t.Error("solved powers not feasible")
	}
}

func TestSolveTwoDistantLinks(t *testing.T) {
	in := lineInstance(t, 0, 1, 500, 501)
	links := []sinr.Link{{From: 0, To: 1}, {From: 2, To: 3}}
	powers, _, err := Solve(in, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := in.SINRFeasible(links, powers)
	if !ok {
		t.Error("solved powers not feasible")
	}
}

func TestSolveCrossedLinksInfeasible(t *testing.T) {
	// Links 0→2 and 3→1 on the line 0,1,2,3: each sender is closer to the
	// other link's receiver than that link's own sender is — no power
	// vector can satisfy both.
	in := lineInstance(t, 0, 1, 2, 3)
	links := []sinr.Link{{From: 0, To: 2}, {From: 3, To: 1}}
	_, _, err := Solve(in, links, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveColocatedInterfererInfeasible(t *testing.T) {
	// Sender of link B sits exactly on receiver of link A.
	pts := []geom.Point{{X: 0}, {X: 5}, {X: 5}, {X: 9}}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	links := []sinr.Link{{From: 0, To: 1}, {From: 2, To: 3}}
	_, _, err := Solve(in, links, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveWithSlack(t *testing.T) {
	in := lineInstance(t, 0, 2, 300, 302)
	links := []sinr.Link{{From: 0, To: 1}, {From: 2, To: 3}}
	loose, _, err := Solve(in, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := Solve(in, links, Options{Slack: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range links {
		if tight[i] <= loose[i] {
			t.Errorf("slack powers not larger: %v vs %v", tight[i], loose[i])
		}
	}
	// Slacked powers give SINR ≥ 1.5β.
	txs := []sinr.Tx{{Sender: 0, Power: tight[0]}, {Sender: 2, Power: tight[1]}}
	if got := in.SINR(txs, links[0]); got < 1.5*in.Params().Beta-1e-6 {
		t.Errorf("SINR under slack = %v", got)
	}
}

func TestSolveChainOfManyLinks(t *testing.T) {
	// Links along an exponential chain are mutually feasible with power
	// control (interferers are far relative to link lengths).
	xs := []float64{0, 1, 3, 7, 15, 31, 63, 127}
	in := lineInstance(t, xs...)
	var links []sinr.Link
	for i := 0; i+1 < len(xs); i += 2 {
		links = append(links, sinr.Link{From: i, To: i + 1})
	}
	powers, it, err := Solve(in, links, Options{})
	if err != nil {
		t.Fatalf("err = %v after %d iterations", err, it)
	}
	ok, _ := in.SINRFeasible(links, powers)
	if !ok {
		t.Error("chain powers not feasible")
	}
}

func TestSolveTable(t *testing.T) {
	in := lineInstance(t, 0, 1, 500, 501)
	links := []sinr.Link{{From: 0, To: 1}, {From: 2, To: 3}}
	pl, _, err := SolveTable(in, links, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if pl.Table[l] <= 0 {
			t.Errorf("table power for %v = %v", l, pl.Table[l])
		}
	}
	if !in.Feasible(links, pl) {
		t.Error("table assignment infeasible")
	}
	_, _, err = SolveTable(lineInstance(t, 0, 1, 2, 3),
		[]sinr.Link{{From: 0, To: 2}, {From: 3, To: 1}}, Options{})
	if err == nil {
		t.Error("SolveTable accepted infeasible set")
	}
}

func TestSolveRespectsMaxIter(t *testing.T) {
	in := lineInstance(t, 0, 1, 30, 31)
	links := []sinr.Link{{From: 0, To: 1}, {From: 2, To: 3}}
	// One iteration is not enough to converge, but the verification path
	// may still accept the vector if it happens to be feasible; the
	// contract is just: no panic, sane output.
	powers, it, err := Solve(in, links, Options{MaxIter: 1})
	if it != 1 {
		t.Errorf("iterations = %d, want 1", it)
	}
	if err == nil {
		ok, _ := in.SINRFeasible(links, powers)
		if !ok {
			t.Error("Solve returned infeasible powers without error")
		}
	}
}
