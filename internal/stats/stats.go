package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual aggregates of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary. Empty input returns the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders "mean ± std [min..max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f..%.2f]", s.Mean, s.Std, s.Min, s.Max)
}

// Fit is a least-squares line y ≈ A + B·x with its coefficient of
// determination.
type Fit struct {
	A, B float64
	R2   float64
}

// LinearFit computes the least-squares fit of y on x. Fewer than two points
// yield a zero Fit.
func LinearFit(x, y []float64) Fit {
	n := len(x)
	if n < 2 || len(y) != n {
		return Fit{}
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return Fit{A: sy / fn}
	}
	b := (fn*sxy - sx*sy) / den
	a := (sy - b*sx) / fn
	// R².
	meanY := sy / fn
	var ssTot, ssRes float64
	for i := 0; i < n; i++ {
		pred := a + b*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{A: a, B: b, R2: r2}
}

// FitAgainstLog fits y against log₂(x): the B coefficient is the "slots per
// doubling" a Θ(log n) claim predicts to be constant.
func FitAgainstLog(x, y []float64) Fit {
	lx := make([]float64, len(x))
	for i, v := range x {
		lx[i] = math.Log2(math.Max(1, v))
	}
	return LinearFit(lx, y)
}

// GrowthExponent fits log y against log x and returns the slope — the
// empirical polynomial degree. Sub-logarithmic growth shows up as an
// exponent near 0, linear growth as 1.
func GrowthExponent(x, y []float64) float64 {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log2(x[i]))
			ly = append(ly, math.Log2(y[i]))
		}
	}
	return LinearFit(lx, ly).B
}

// Table accumulates rows and renders a fixed-width ASCII table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render produces the table as a string with aligned columns.
func (t *Table) Render() string {
	cols := len(t.header)
	widths := make([]int, cols)
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < cols && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	writeRow(t.header)
	for i := 0; i < cols; i++ {
		fmt.Fprintf(&b, "|%s", strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("|\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
