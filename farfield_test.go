package sinrconn

// Session-level far-field suite: the ε = 0 exactness contract (the drift
// gate extending TestWrapperEquivalence to WithMaxRelError), approximate
// pipeline runs across the scenario matrix, option validation, and the
// far-field epoch/join paths.

import (
	"math"
	"testing"

	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// TestFarFieldExactnessZero is the ε = 0 drift gate: a Network opened with
// WithMaxRelError(0) must produce bit-identical results to one without the
// option — whatever far-field engine WithFarMode names, since ε = 0 is
// always the exact path — for every pipeline across the scenario matrix
// (two generators under -short, like the wrapper gate).
func TestFarFieldExactnessZero(t *testing.T) {
	gens := workload.Matrix()
	if testing.Short() {
		gens = gens[:2]
	}
	n := 24
	for gi, gen := range gens {
		for pi, p := range Pipelines() {
			gen, p := gen, p
			seed := int64(7001 + 100*gi + 10*pi)
			t.Run(gen.Name+"/"+p.String(), func(t *testing.T) {
				pts := facadePoints(gen, seed, n)
				plain, err := Open(pts, WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				defer plain.Close()
				a, aerr := plain.Run(bg, p)
				modes := []FarMode{FarAuto}
				if gi == 0 {
					// One generator sweeps every engine: ε = 0 must select
					// the exact path regardless of the named mode.
					modes = []FarMode{FarAuto, FarQuadtree, FarFlat}
				}
				for _, mode := range modes {
					zero, err := Open(pts, WithSeed(seed), WithMaxRelError(0), WithFarMode(mode))
					if err != nil {
						t.Fatal(err)
					}
					defer zero.Close()
					b, berr := zero.Run(bg, p)
					if (aerr == nil) != (berr == nil) {
						t.Fatalf("mode %v: error divergence: plain %v vs ε=0 %v", mode, aerr, berr)
					}
					if aerr != nil {
						continue
					}
					assertResultsIdentical(t, b, a)
				}
			})
		}
	}
}

// TestFarFieldPipelines runs every pipeline under an approximate channel
// (ε = 0.5) across a slice of the matrix: the tree must span, pass the
// structural validators, and pass per-slot feasibility under the plan's
// guard band (Result.Tree.Verify applies it automatically).
func TestFarFieldPipelines(t *testing.T) {
	gens := workload.Matrix()[:3]
	n := 32
	for gi, gen := range gens {
		for pi, p := range Pipelines() {
			gen, p := gen, p
			seed := int64(8001 + 100*gi + 10*pi)
			t.Run(gen.Name+"/"+p.String(), func(t *testing.T) {
				pts := facadePoints(gen, seed, n)
				nw, err := Open(pts, WithSeed(seed), WithMaxRelError(0.5))
				if err != nil {
					t.Fatal(err)
				}
				defer nw.Close()
				res, err := nw.Run(bg, p)
				if err != nil {
					t.Fatalf("far-field %v run: %v", p, err)
				}
				if res.Tree.NumNodes != n {
					t.Fatalf("far-field tree spans %d/%d nodes", res.Tree.NumNodes, n)
				}
				if p.Ordered() {
					if err := res.Tree.Verify(); err != nil {
						t.Fatalf("far-field tree failed verification: %v", err)
					}
				}
			})
		}
	}
}

// TestFarFieldMemoKeying asserts results are memoized per ε: repeats hit
// the memo, distinct ε (including ε = 0) are distinct entries.
func TestFarFieldMemoKeying(t *testing.T) {
	pts := uniformPoints(31, 28)
	nw, err := Open(pts, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	exact, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	far, err := nw.Run(bg, PipelineInit, WithMaxRelError(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if far == exact {
		t.Fatal("ε=0.5 run served from the exact memo entry")
	}
	again, err := nw.Run(bg, PipelineInit, WithMaxRelError(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if again != far {
		t.Fatal("repeated ε=0.5 run missed the memo")
	}
	zero, err := nw.Run(bg, PipelineInit, WithMaxRelError(0))
	if err != nil {
		t.Fatal(err)
	}
	if zero != exact {
		t.Fatal("explicit ε=0 run missed the exact memo entry")
	}
}

// TestFarFieldOpInheritance pins the channel-mode inheritance of
// operations on an existing result: a tree built with a run-scoped ε is
// joined/repaired/re-driven under that same mode unless the operation
// explicitly overrides it, and exact-built trees stay exact.
func TestFarFieldOpInheritance(t *testing.T) {
	pts := uniformPoints(53, 26)
	nw, err := Open(pts, WithSeed(53)) // exact session base
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// Forced quadtree: the 26-node box sits inside FarAuto's degeneracy
	// guard, and inheritance must thread the *forced* engine through the
	// join as well.
	far, err := nw.Run(bg, PipelineInit, WithMaxRelError(0.5), WithFarMode(FarQuadtree))
	if err != nil {
		t.Fatal(err)
	}
	if far.Tree.ff == nil {
		t.Fatal("run-scoped ε did not record a far-field plan on the tree")
	}
	grown, err := nw.Join(bg, far, []Point{{X: 300, Y: 300}, {X: 303, Y: 301}})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Tree.ff == nil || grown.Tree.ff.MaxRelError() != 0.5 {
		t.Fatalf("join did not inherit the tree's far-field mode: %+v", grown.Tree.ff)
	}
	exactGrown, err := nw.Join(bg, far, []Point{{X: 320, Y: 320}, {X: 323, Y: 321}}, WithMaxRelError(0))
	if err != nil {
		t.Fatal(err)
	}
	if exactGrown.Tree.ff != nil {
		t.Fatal("explicit ε=0 override did not switch the join to exact mode")
	}
	exact, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	grownExact, err := nw.Join(bg, exact, []Point{{X: 340, Y: 340}, {X: 343, Y: 341}})
	if err != nil {
		t.Fatal(err)
	}
	if grownExact.Tree.ff != nil {
		t.Fatal("join of an exact-built tree picked up a far-field plan")
	}
}

// TestFarModeSelection pins which engine each FarMode resolves to on the
// recorded result, including both degenerate-geometry fallbacks:
//
//   - On a box large enough for its ε, FarAuto records a quadtree plan
//     with adaptive per-slot selection, FarQuadtree the same plan forced.
//   - In an engine's near-dominated regime — the flat grid's global near
//     ring covering the grid (the n=4096/ε=0.5 regression of
//     BENCH_farfield.json in miniature), or the quadtree's leaf opening
//     horizon spanning the box — the session must run the exact path
//     rather than a plan doing strictly more work than exact; a forced
//     FarQuadtree keeps its plan.
func TestFarModeSelection(t *testing.T) {
	// 512 uniform nodes at ε=2.5: past both degeneracy guards (the
	// quadtree horizon ratio (√2/θ)/2^L needs depth 2^L > 4√2/θ ≈ 11,
	// i.e. L ≥ 4 ⇔ n ≥ 512 — span-independent).
	pts := uniformPoints(61, 512)
	nw, err := Open(pts, WithSeed(61), WithMaxRelError(2.5))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	auto, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := auto.Tree.ff.(*sinr.QuadTree); !ok || !auto.Tree.ffAdaptive {
		t.Fatalf("FarAuto recorded (%T, adaptive=%v), want (*sinr.QuadTree, true)",
			auto.Tree.ff, auto.Tree.ffAdaptive)
	}
	quad, err := nw.Run(bg, PipelineInit, WithFarMode(FarQuadtree))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := quad.Tree.ff.(*sinr.QuadTree); !ok || quad.Tree.ffAdaptive {
		t.Fatalf("FarQuadtree recorded (%T, adaptive=%v), want (*sinr.QuadTree, false)",
			quad.Tree.ff, quad.Tree.ffAdaptive)
	}
	if auto == quad {
		t.Fatal("distinct far modes shared one memo entry")
	}

	// 40 nodes at ε=0.5: both engines' degenerate regimes at once.
	small := uniformPoints(62, 40)
	snw, err := Open(small, WithSeed(62), WithMaxRelError(0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer snw.Close()
	sauto, err := snw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	if sauto.Tree.ff != nil {
		t.Fatalf("near-dominated FarAuto run recorded plan %T, want exact fallback", sauto.Tree.ff)
	}
	sflat, err := snw.Run(bg, PipelineInit, WithFarMode(FarFlat))
	if err != nil {
		t.Fatal(err)
	}
	if sflat.Tree.ff != nil {
		t.Fatalf("near-dominated FarFlat run recorded plan %T, want exact fallback", sflat.Tree.ff)
	}
	forced, err := snw.Run(bg, PipelineInit, WithFarMode(FarQuadtree))
	if err != nil {
		t.Fatal(err)
	}
	fq, ok := forced.Tree.ff.(*sinr.QuadTree)
	if !ok {
		t.Fatalf("forced FarQuadtree recorded %T, want *sinr.QuadTree", forced.Tree.ff)
	}
	if !fq.NearDominated() {
		t.Fatal("test geometry no longer quadtree-near-dominated — shrink it")
	}
	flatPlan, err := fq.Instance().FarField(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !flatPlan.NearDominated() {
		t.Fatalf("test geometry no longer flat-near-dominated (k=%d, %d tiles) — shrink it",
			flatPlan.K(), flatPlan.Tiles())
	}
}

// TestFarModeOpScoping pins two option-scoping contracts on operations
// over an existing result:
//
//  1. An Open-scoped WithFarMode must not leak into operation scope: a
//     plain Join on an ε-built tree inherits the tree's engine and ε even
//     when the Network was opened with an explicit (redundant) far mode.
//  2. A run-scoped WithFarMode alone switches the engine but keeps the
//     tree's ε — it is a mode, not an error bound, and must not silently
//     flip the operation to exact physics.
func TestFarModeOpScoping(t *testing.T) {
	pts := uniformPoints(63, 512)
	nw, err := Open(pts, WithSeed(63), WithFarMode(FarAuto)) // explicit mode, no ε
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(bg, PipelineInit, WithMaxRelError(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Tree.ff.(*sinr.QuadTree); !ok {
		t.Fatalf("run-scoped ε recorded %T, want *sinr.QuadTree", res.Tree.ff)
	}
	grown, err := nw.Join(bg, res, []Point{{X: 400, Y: 400}, {X: 403, Y: 401}})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Tree.ff == nil || grown.Tree.ff.MaxRelError() != 2.5 {
		t.Fatalf("plain join under an Open-scoped far mode lost the tree's channel mode: %v", grown.Tree.ff)
	}
	if !grown.Tree.ffAdaptive {
		t.Fatal("plain join did not inherit the tree's adaptivity")
	}
	switched, err := nw.Join(bg, res, []Point{{X: 420, Y: 420}, {X: 423, Y: 421}}, WithFarMode(FarQuadtree))
	if err != nil {
		t.Fatal(err)
	}
	if switched.Tree.ff == nil || switched.Tree.ff.MaxRelError() != 2.5 {
		t.Fatalf("mode-only override dropped the tree's ε: %v", switched.Tree.ff)
	}
	if switched.Tree.ffAdaptive {
		t.Fatal("forced FarQuadtree join kept adaptive selection, want forced always-far")
	}
}

// TestWithMaxRelErrorValidation pins option validation: negative, NaN, and
// +Inf bounds fail at the call site.
func TestWithMaxRelErrorValidation(t *testing.T) {
	pts := uniformPoints(5, 8)
	for _, eps := range []float64{-0.1, math.Inf(1), math.NaN()} {
		if _, err := Open(pts, WithMaxRelError(eps)); err == nil {
			t.Fatalf("Open accepted WithMaxRelError(%v)", eps)
		}
	}
	nw, err := Open(pts)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := nw.Run(bg, PipelineInit, WithMaxRelError(-1)); err == nil {
		t.Fatal("Run accepted WithMaxRelError(-1)")
	}
	if _, err := nw.Run(bg, PipelineInit, WithFarMode(FarMode(99))); err == nil {
		t.Fatal("Run accepted WithFarMode(99)")
	}
}

// TestFarFieldEpochAndJoin exercises the remaining far-field surfaces: a
// physical aggregation epoch under an approximate channel delivers the
// exact aggregate (the schedule's SafePower margins keep decisions away
// from the β cut), and a far-field join grows the tree with the plan
// extended rather than rebuilt.
func TestFarFieldEpochAndJoin(t *testing.T) {
	pts := uniformPoints(47, 30)
	nw, err := Open(pts, WithSeed(47), WithMaxRelError(0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(bg, PipelineTVCArbitrary)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, len(pts))
	var want int64
	for i := range values {
		values[i] = int64(i + 1)
		want += values[i]
	}
	out, err := nw.Aggregate(bg, res, values, SumAgg)
	if err != nil {
		t.Fatalf("far-field aggregation epoch: %v", err)
	}
	if out.Value != want {
		t.Fatalf("far-field aggregate %d, want %d", out.Value, want)
	}
	// The deprecated wrapper runs the epoch under the same channel mode the
	// tree was built with (it cannot express an override), so its outcome
	// matches the Network method's.
	wout, err := res.Aggregate(values, SumAgg, Options{})
	if err != nil {
		t.Fatalf("deprecated far-field aggregation epoch: %v", err)
	}
	if *wout != *out {
		t.Fatalf("deprecated epoch wrapper diverged: %+v vs %+v", wout, out)
	}
	grown, err := nw.Join(bg, res, []Point{{X: 200, Y: 200}, {X: 203, Y: 201}})
	if err != nil {
		t.Fatalf("far-field join: %v", err)
	}
	if grown.Tree.NumNodes != len(pts)+2 {
		t.Fatalf("far-field join spans %d nodes, want %d", grown.Tree.NumNodes, len(pts)+2)
	}
	if err := grown.Tree.Verify(); err != nil {
		t.Fatalf("far-field joined tree failed verification: %v", err)
	}
}

// TestFarPrecisionOption pins the public WithFarPrecision surface:
//
//   - A Far32 run under the quadtree engine records the float32 mirror on
//     the result tree and still spans the instance.
//   - Precision is part of the memo key: Far32 and Far64 runs at the same
//     ε are distinct entries, a repeated Far32 run hits the memo, and an
//     explicit Far64 names the default entry.
//   - Far32 with the flat grid is an error (no float32 mirror to walk).
//   - ε = 0 ignores precision entirely: the run is the exact path and
//     shares the exact memo entry.
//   - Operations inherit the precision the tree was built under: a plain
//     Join on a Far32-built tree grows a Far32 tree.
func TestFarPrecisionOption(t *testing.T) {
	// 512 uniform nodes at ε=2.5: past the quadtree degeneracy guard, so
	// FarAuto keeps the plan (geometry rationale in TestFarModeSelection).
	pts := uniformPoints(67, 512)
	nw, err := Open(pts, WithSeed(67), WithMaxRelError(2.5))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	f64, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f64.Tree.ff.(*sinr.QuadTree); !ok {
		t.Fatalf("default-precision run recorded %T, want *sinr.QuadTree", f64.Tree.ff)
	}
	f32, err := nw.Run(bg, PipelineInit, WithFarPrecision(Far32))
	if err != nil {
		t.Fatal(err)
	}
	mirror, ok := f32.Tree.ff.(*sinr.QuadTreeF32)
	if !ok {
		t.Fatalf("Far32 run recorded %T, want *sinr.QuadTreeF32", f32.Tree.ff)
	}
	if mirror.CertifiedMaxRelError() > mirror.MaxRelError() {
		t.Fatalf("f32 certificate %v exceeds its effective bound %v",
			mirror.CertifiedMaxRelError(), mirror.MaxRelError())
	}
	if f32.Tree.NumNodes != len(pts) {
		t.Fatalf("Far32 tree spans %d/%d nodes", f32.Tree.NumNodes, len(pts))
	}
	if f32 == f64 {
		t.Fatal("Far32 run served from the Far64 memo entry")
	}
	again, err := nw.Run(bg, PipelineInit, WithFarPrecision(Far32))
	if err != nil {
		t.Fatal(err)
	}
	if again != f32 {
		t.Fatal("repeated Far32 run missed the memo")
	}
	explicit, err := nw.Run(bg, PipelineInit, WithFarPrecision(Far64))
	if err != nil {
		t.Fatal(err)
	}
	if explicit != f64 {
		t.Fatal("explicit Far64 run missed the default-precision memo entry")
	}

	if _, err := nw.Run(bg, PipelineInit, WithFarMode(FarFlat), WithFarPrecision(Far32)); err == nil {
		t.Fatal("Run accepted Far32 under the flat grid, which keeps no float32 mirror")
	}
	if _, err := nw.Run(bg, PipelineInit, WithFarPrecision(Far32+1)); err == nil {
		t.Fatal("Run accepted an unknown FarPrecision")
	}

	// ε = 0 is the exact path whatever the precision: same memo entry as
	// a plain exact run, bit-identical results.
	exact, err := nw.Run(bg, PipelineInit, WithMaxRelError(0))
	if err != nil {
		t.Fatal(err)
	}
	zero32, err := nw.Run(bg, PipelineInit, WithMaxRelError(0), WithFarPrecision(Far32))
	if err != nil {
		t.Fatal(err)
	}
	if zero32 != exact {
		t.Fatal("ε=0 with Far32 split off from the exact memo entry")
	}
	assertResultsIdentical(t, zero32, exact)

	// Plain operations on a Far32-built tree inherit the mirror.
	grown, err := nw.Join(bg, f32, []Point{{X: 500, Y: 500}, {X: 503, Y: 501}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grown.Tree.ff.(*sinr.QuadTreeF32); !ok {
		t.Fatalf("join of a Far32-built tree recorded %T, want *sinr.QuadTreeF32", grown.Tree.ff)
	}
	if grown.Tree.ff.MaxRelError() < 2.5 {
		t.Fatalf("inherited f32 plan narrowed the tree's ε: %v", grown.Tree.ff.MaxRelError())
	}
}
