package sim

// Adaptive per-slot mode selection suite: the engine's exact-vs-far choice
// must be a pure function of the live sender count (deterministic,
// worker-count independent), every adaptive run must be bit-identical to an
// engine forced to the chosen mode per slot (the drift gate), and the
// quadtree engine must keep the structural guarantees the flat grid
// established — zero-allocation steady state and pool/serial equality.

import (
	"math/rand"
	"testing"

	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// burstProto drives a bursty channel: even slots are dense (half the nodes
// transmit — far territory), odd slots are sparse (a handful transmit —
// exact territory). Listeners are the non-transmitting nodes.
type burstProto struct {
	id    int
	power float64
}

func (p *burstProto) Step(slot int, inbox []Delivery) Action {
	dense := slot%2 == 0
	if dense && p.id%2 == 0 {
		return Transmit(p.power, Message{Kind: KindBroadcast, From: p.id, To: NoAddressee})
	}
	if !dense && p.id < 8 {
		return Transmit(p.power, Message{Kind: KindBroadcast, From: p.id, To: NoAddressee})
	}
	return Listen()
}

// recordProto wraps any protocol with an inbox log.
type recordProto struct {
	inner Protocol
	got   []Delivery
}

func (p *recordProto) Step(slot int, inbox []Delivery) Action {
	p.got = append(p.got, inbox...)
	return p.inner.Step(slot, inbox)
}

// adaptiveEngine builds a quadtree-backed engine over a bursty workload.
// cfg mutations (workers, adaptivity, hooks) are applied by the caller;
// record wraps every node with an inbox log (off for the alloc gate, whose
// steady state must not grow slices).
func adaptiveEngine(t *testing.T, n int, record bool, cfg Config) (*Engine, []*recordProto) {
	t.Helper()
	pts := workload.JitteredGrid(rand.New(rand.NewSource(17)), n, 3, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	power := in.Params().SafePower(4)
	procs := make([]Protocol, n)
	var recs []*recordProto
	for i := 0; i < n; i++ {
		bp := &burstProto{id: i, power: power}
		if record {
			r := &recordProto{inner: bp}
			recs = append(recs, r)
			procs[i] = r
		} else {
			procs[i] = bp
		}
	}
	q, err := in.QuadTree(0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FarField = q
	e, err := NewEngine(in, procs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, recs
}

// TestAdaptiveModeSelection pins the selection rule: dense slots resolve
// far-field, slots under the crossover resolve exactly, and the recorded
// per-slot modes are exactly what |txs| against the crossover predicts.
func TestAdaptiveModeSelection(t *testing.T) {
	// The explicit crossover keeps the 256-node burst workload exercising
	// both modes (its dense slots carry 128 senders, under the calibrated
	// production default).
	const n, slots, crossover = 256, 10, 64
	var events []SlotEvent
	e, _ := adaptiveEngine(t, n, false, Config{
		Workers:           1,
		Adaptive:          true,
		AdaptiveCrossover: crossover,
		Observer:          func(ev SlotEvent) { events = append(events, ev) },
	})
	defer e.Close()
	e.Run(slots)
	if len(events) != slots {
		t.Fatalf("observer saw %d slots, want %d", len(events), slots)
	}
	for _, ev := range events {
		wantFar := ev.Senders >= crossover
		if ev.Far != wantFar {
			t.Fatalf("slot %d (%d senders): far=%v, selection rule predicts %v",
				ev.Slot, ev.Senders, ev.Far, wantFar)
		}
	}
	if !events[0].Far || events[1].Far {
		t.Fatalf("burst workload did not exercise both modes: %+v, %+v", events[0], events[1])
	}
}

// TestAdaptiveDriftGate is the bit-identity gate of the satellite spec: a
// run with adaptive selection enabled must be bit-identical — stats,
// deliveries, and every Delivery field — to a run forcing the chosen mode
// per slot through the replay hook. The sharded-accumulate threshold is
// forced to 1 so the adaptive far slots run the full PR-9 machinery
// (64-shard parallel accumulate + run-sliced batched decode) against a
// replay doing the same — the calibration re-measured after the Morton
// relayout left DefaultAdaptiveCrossover at 768 (see engine.go), and this
// gate pins that the selection layer stays a pure re-schedule above it.
func TestAdaptiveDriftGate(t *testing.T) {
	defer func(old int) { shardedAccumMinTxs = old }(shardedAccumMinTxs)
	shardedAccumMinTxs = 1
	const n, slots = 256, 14
	var modes []bool
	a, arecs := adaptiveEngine(t, n, true, Config{
		Workers:           2,
		Adaptive:          true,
		AdaptiveCrossover: 64, // both modes exercised at n=256 (see above)
		Observer:          func(ev SlotEvent) { modes = append(modes, ev.Far) },
	})
	defer a.Close()
	a.Run(slots)

	b, brecs := adaptiveEngine(t, n, true, Config{
		Workers:  2,
		forceFar: func(slot, senders int) bool { return modes[slot] },
	})
	defer b.Close()
	b.Run(slots)

	if a.Stats() != b.Stats() {
		t.Fatalf("adaptive run diverged from forced-mode replay: %+v vs %+v", a.Stats(), b.Stats())
	}
	for i := range arecs {
		ga, gb := arecs[i].got, brecs[i].got
		if len(ga) != len(gb) {
			t.Fatalf("node %d: %d vs %d deliveries", i, len(ga), len(gb))
		}
		for k := range ga {
			if ga[k] != gb[k] {
				t.Fatalf("node %d delivery %d: adaptive %+v forced %+v", i, k, ga[k], gb[k])
			}
		}
	}
}

// TestQuadtreeEngineMatchesExactDeliveries mirrors the flat-grid engine
// gate for the hierarchical plan: identical delivery sets (winner
// exactness) with SINR inside the certified band, against an exact run.
func TestQuadtreeEngineMatchesExactDeliveries(t *testing.T) {
	const n, slots = 256, 12
	run := func(useQuad bool) ([]Delivery, Stats, float64) {
		pts := workload.JitteredGrid(rand.New(rand.NewSource(11)), n, 3, 0.8)
		in := sinr.MustInstance(pts, sinr.DefaultParams())
		power := in.Params().SafePower(4)
		procs := make([]Protocol, n)
		recs := make([]*recordingProto, n)
		for i := 0; i < n; i++ {
			recs[i] = &recordingProto{fixedProto: fixedProto{id: i, transmit: i%4 == 0, power: power}}
			procs[i] = recs[i]
		}
		cfg := Config{Workers: 1, Seed: 3}
		ce := 0.0
		if useQuad {
			q, err := in.QuadTree(0.5)
			if err != nil {
				t.Fatal(err)
			}
			cfg.FarField = q
			ce = q.CertifiedMaxRelError()
		}
		e, err := NewEngine(in, procs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Run(slots)
		var all []Delivery
		for _, r := range recs {
			all = append(all, r.got...)
		}
		return all, e.Stats(), ce
	}
	exact, exactStats, _ := run(false)
	far, farStats, ce := run(true)
	if len(exact) != len(far) {
		t.Fatalf("delivery count: exact %d quadtree %d", len(exact), len(far))
	}
	if exactStats.Deliveries != farStats.Deliveries || exactStats.Transmissions != farStats.Transmissions {
		t.Fatalf("stats diverged: exact %+v quadtree %+v", exactStats, farStats)
	}
	for i := range exact {
		if exact[i].Msg != far[i].Msg || exact[i].Dist != far[i].Dist {
			t.Fatalf("delivery %d: exact %+v quadtree %+v", i, exact[i], far[i])
		}
		lo := far[i].SINR * (1 - ce) * (1 - 1e-9)
		hi := far[i].SINR * (1 + ce) * (1 + 1e-9)
		if exact[i].SINR < lo || exact[i].SINR > hi {
			t.Fatalf("delivery %d: quadtree SINR %v outside certified band of exact %v (ε=%v)",
				i, far[i].SINR, exact[i].SINR, ce)
		}
	}
}

// TestQuadtreeSlotLoopZeroAlloc asserts the quadtree slot loop — adaptive
// included, both modes exercised by the bursty workload — keeps the exact
// path's zero-allocation steady state, serial and pooled.
func TestQuadtreeSlotLoopZeroAlloc(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, adaptive := range []bool{false, true} {
			e, _ := adaptiveEngine(t, 256, false, Config{Workers: workers, Adaptive: adaptive, AdaptiveCrossover: 64})
			e.Run(8)
			allocs := testing.AllocsPerRun(50, func() { e.Step() })
			e.Close()
			if allocs != 0 {
				t.Fatalf("workers=%d adaptive=%v: quadtree steady-state Step allocates %.1f times/op, want 0",
					workers, adaptive, allocs)
			}
		}
	}
}

// TestQuadtreePoolMatchesSerial asserts quadtree and adaptive results are
// identical for any worker count, like the exact engine's determinism
// contract.
func TestQuadtreePoolMatchesSerial(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		run := func(workers int) Stats {
			e, _ := adaptiveEngine(t, 256, false, Config{Workers: workers, Adaptive: adaptive, AdaptiveCrossover: 64})
			defer e.Close()
			e.Run(30)
			return e.Stats()
		}
		serial, pooled := run(1), run(4)
		if serial != pooled {
			t.Fatalf("adaptive=%v: worker count changed results: serial %+v pooled %+v", adaptive, serial, pooled)
		}
	}
}
