package serve

// The wire format. Every response body is produced by these encoders from
// the exact values the in-process session API returns — the differential
// gate marshals both sides through the same types and compares bytes.

import (
	"fmt"
	"time"

	"sinrconn"
)

// OptionsJSON is the wire form of the functional options. Zero-valued
// fields are "not set" (they inherit the session or package default);
// pointer fields distinguish an explicit zero where one is meaningful.
type OptionsJSON struct {
	Alpha         float64  `json:"alpha,omitempty"`
	Beta          float64  `json:"beta,omitempty"`
	Noise         float64  `json:"noise,omitempty"`
	Seed          int64    `json:"seed,omitempty"`
	Workers       int      `json:"workers,omitempty"`
	DropProb      float64  `json:"drop_prob,omitempty"`
	AutoNormalize bool     `json:"auto_normalize,omitempty"`
	BroadcastProb float64  `json:"broadcast_prob,omitempty"`
	Rho           int      `json:"rho,omitempty"`
	MaxRelErr     *float64 `json:"max_rel_err,omitempty"` // pointer: explicit 0 forces exact
	FarMode       string   `json:"far_mode,omitempty"`    // "auto" | "quadtree" | "flat"
}

// runOptions lowers the wire options to session RunOptions. openScope adds
// the Open-only options (auto_normalize, workers).
func (o OptionsJSON) runOptions(openScope bool) ([]sinrconn.RunOption, error) {
	var opts []sinrconn.RunOption
	if o.Alpha != 0 || o.Beta != 0 || o.Noise != 0 {
		opts = append(opts, sinrconn.WithPhys(sinrconn.PhysParams{Alpha: o.Alpha, Beta: o.Beta, Noise: o.Noise}))
	}
	if o.Seed != 0 {
		opts = append(opts, sinrconn.WithSeed(o.Seed))
	}
	if o.DropProb != 0 {
		opts = append(opts, sinrconn.WithDropProb(o.DropProb))
	}
	if o.BroadcastProb != 0 {
		opts = append(opts, sinrconn.WithBroadcastProb(o.BroadcastProb))
	}
	if o.Rho != 0 {
		opts = append(opts, sinrconn.WithRho(o.Rho))
	}
	if o.MaxRelErr != nil {
		opts = append(opts, sinrconn.WithMaxRelError(*o.MaxRelErr))
	}
	if o.FarMode != "" {
		switch o.FarMode {
		case "auto":
			opts = append(opts, sinrconn.WithFarMode(sinrconn.FarAuto))
		case "quadtree":
			opts = append(opts, sinrconn.WithFarMode(sinrconn.FarQuadtree))
		case "flat":
			opts = append(opts, sinrconn.WithFarMode(sinrconn.FarFlat))
		default:
			return nil, fmt.Errorf("unknown far_mode %q (want auto, quadtree, or flat)", o.FarMode)
		}
	}
	if openScope {
		if o.Workers != 0 {
			opts = append(opts, sinrconn.WithWorkers(o.Workers))
		}
		if o.AutoNormalize {
			opts = append(opts, sinrconn.WithAutoNormalize(true))
		}
	} else if o.Workers != 0 || o.AutoNormalize {
		return nil, fmt.Errorf("workers and auto_normalize are session (open) options")
	}
	return opts, nil
}

// pipelineByName maps wire pipeline names (the Pipeline.String() forms) to
// values.
func pipelineByName(name string) (sinrconn.Pipeline, error) {
	for _, p := range sinrconn.Pipelines() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pipeline %q", name)
}

// OpenRequest opens a session over one deployment.
type OpenRequest struct {
	// Points is the deployment geometry, [x, y] pairs.
	Points [][2]float64 `json:"points"`
	// Options are the Open-scoped session options.
	Options OptionsJSON `json:"options,omitzero"`
	// CacheSize / CacheTTLMs bound the deployment's result cache (0 = the
	// server's configured defaults).
	CacheSize  int   `json:"cache_size,omitempty"`
	CacheTTLMs int64 `json:"cache_ttl_ms,omitempty"`
}

// OpenResponse names the opened session.
type OpenResponse struct {
	SessionID string `json:"session_id"`
	// Nodes is the deployment size after validation.
	Nodes int `json:"nodes"`
	// SharedDeployment reports that the server content-addressed the
	// deployment onto an existing Network (same points and options), so
	// this session shares its instance, pool, and result cache.
	SharedDeployment bool `json:"shared_deployment,omitempty"`
}

// RunRequest executes one pipeline on a session.
type RunRequest struct {
	// Pipeline is the pipeline name: "init-uniform", "reschedule-mean",
	// "tvc-mean", or "tvc-arbitrary".
	Pipeline string `json:"pipeline"`
	// Options are per-run overrides.
	Options OptionsJSON `json:"options,omitzero"`
	// IncludeTree adds the full scheduled tree to the response (the
	// metrics-only default keeps hot-path responses small).
	IncludeTree bool `json:"include_tree,omitempty"`
	// Stream switches the response to chunked newline-delimited JSON slot
	// events followed by a terminal result line.
	Stream bool `json:"stream,omitempty"`
	// TimeoutMs bounds the run (0 = server default). The deadline maps to
	// context cancellation between simulator slots.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// RunResponse carries one constructed result.
type RunResponse struct {
	// ResultID names the result inside its session for follow-up
	// operations (join, repair, churn).
	ResultID string `json:"result_id"`
	// Cached reports the result was served from the deployment's result
	// cache (or by waiting on a concurrent identical construction) rather
	// than computed for this request.
	Cached bool `json:"cached"`
	// Result is the encoded result — the differential payload.
	Result ResultJSON `json:"result"`
}

// MatrixRequest executes a batch sweep on a session.
type MatrixRequest struct {
	Specs []struct {
		Pipeline string      `json:"pipeline"`
		Options  OptionsJSON `json:"options,omitzero"`
	} `json:"specs"`
	IncludeTree bool  `json:"include_tree,omitempty"`
	TimeoutMs   int64 `json:"timeout_ms,omitempty"`
}

// MatrixResponse carries the sweep outcome; Results[i] corresponds to
// Specs[i] (null where that spec failed, with Errors[i] explaining).
type MatrixResponse struct {
	Results   []*ResultJSON `json:"results"`
	ResultIDs []string      `json:"result_ids"`
	Errors    []string      `json:"errors,omitempty"`
}

// JoinRequest attaches new nodes to an existing result's tree.
type JoinRequest struct {
	ResultID    string       `json:"result_id"`
	Points      [][2]float64 `json:"points"`
	Options     OptionsJSON  `json:"options,omitzero"`
	IncludeTree bool         `json:"include_tree,omitempty"`
	TimeoutMs   int64        `json:"timeout_ms,omitempty"`
}

// RepairRequest removes failed nodes (Failed) or permanently failed links
// (Links) from an existing result's tree and reconnects the survivors.
// Exactly one of Failed/Links must be non-empty.
type RepairRequest struct {
	ResultID    string      `json:"result_id"`
	Failed      []int       `json:"failed,omitempty"`
	Links       []LinkJSON  `json:"links,omitempty"`
	Options     OptionsJSON `json:"options,omitzero"`
	IncludeTree bool        `json:"include_tree,omitempty"`
	TimeoutMs   int64       `json:"timeout_ms,omitempty"`
}

// ChurnRequest streams a churn trace through the session's deployment.
type ChurnRequest struct {
	Seed        int64   `json:"seed,omitempty"`
	Events      int     `json:"events"`
	JoinRate    float64 `json:"join_rate,omitempty"`
	FailRate    float64 `json:"fail_rate,omitempty"`
	BurstRate   float64 `json:"burst_rate,omitempty"`
	ShowerRate  float64 `json:"shower_rate,omitempty"`
	MoveRate    float64 `json:"move_rate,omitempty"`
	Mobility    string  `json:"mobility,omitempty"` // "", "waypoint", "citygrid"
	IncludeTree bool    `json:"include_tree,omitempty"`
	TimeoutMs   int64   `json:"timeout_ms,omitempty"`
}

// ChurnResponse reports a completed churn run.
type ChurnResponse struct {
	// ResultID names the final live result (bound to the churned
	// deployment) for follow-up operations.
	ResultID string `json:"result_id"`
	// Result is the final tree + metrics.
	Result ResultJSON `json:"result"`
	// Stats aggregates the run (event/repair/retry counts).
	Stats sinrconn.ChurnStats `json:"stats"`
	// Soft lists absorbed non-fatal errors, as strings.
	Soft []string `json:"soft,omitempty"`
}

// LinkJSON is a directed link on the wire.
type LinkJSON struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// ScheduledLinkJSON is a scheduled, powered link on the wire.
type ScheduledLinkJSON struct {
	From  int     `json:"from"`
	To    int     `json:"to"`
	Slot  int     `json:"slot"`
	Power float64 `json:"power"`
}

// TreeJSON is the public bi-tree on the wire.
type TreeJSON struct {
	Root     int                 `json:"root"`
	NumNodes int                 `json:"num_nodes"`
	Up       []ScheduledLinkJSON `json:"up"`
}

// MetricsJSON mirrors sinrconn.Metrics field for field.
type MetricsJSON struct {
	SlotsUsed          int     `json:"slots_used"`
	ScheduleLength     int     `json:"schedule_length"`
	Rounds             int     `json:"rounds,omitempty"`
	Iterations         int     `json:"iterations,omitempty"`
	Upsilon            float64 `json:"upsilon"`
	Delta              float64 `json:"delta"`
	AggregationLatency int     `json:"aggregation_latency,omitempty"`
	BroadcastLatency   int     `json:"broadcast_latency,omitempty"`
	Energy             float64 `json:"energy"`
}

// ResultJSON is the wire form of a *sinrconn.Result.
type ResultJSON struct {
	Tree    *TreeJSON   `json:"tree,omitempty"`
	Metrics MetricsJSON `json:"metrics"`
}

// SlotEventJSON is one streamed slot event line.
type SlotEventJSON struct {
	Type       string `json:"type"` // "slot"
	Slot       int    `json:"slot"`
	Senders    int    `json:"senders"`
	Deliveries int    `json:"deliveries"`
	Far        bool   `json:"far,omitempty"`
}

// ErrorJSON is the uniform error body (and terminal stream line on
// failure).
type ErrorJSON struct {
	Type  string `json:"type,omitempty"` // "error" on stream lines
	Error string `json:"error"`
}

// EncodeResult lowers a session result to the wire. It is exported inside
// the module so the differential gate encodes in-process results through
// the EXACT code path the daemon uses.
func EncodeResult(r *sinrconn.Result, includeTree bool) ResultJSON {
	out := ResultJSON{
		Metrics: MetricsJSON{
			SlotsUsed:          r.Metrics.SlotsUsed,
			ScheduleLength:     r.Metrics.ScheduleLength,
			Rounds:             r.Metrics.Rounds,
			Iterations:         r.Metrics.Iterations,
			Upsilon:            r.Metrics.Upsilon,
			Delta:              r.Metrics.Delta,
			AggregationLatency: r.Metrics.AggregationLatency,
			BroadcastLatency:   r.Metrics.BroadcastLatency,
			Energy:             r.Metrics.Energy,
		},
	}
	if includeTree {
		t := &TreeJSON{
			Root:     r.Tree.Root,
			NumNodes: r.Tree.NumNodes,
			Up:       make([]ScheduledLinkJSON, len(r.Tree.Up)),
		}
		for i, l := range r.Tree.Up {
			t.Up[i] = ScheduledLinkJSON{From: l.From, To: l.To, Slot: l.Slot, Power: l.Power}
		}
		out.Tree = t
	}
	return out
}

// toPoints lowers wire point pairs.
func toPoints(pts [][2]float64) []sinrconn.Point {
	out := make([]sinrconn.Point, len(pts))
	for i, p := range pts {
		out[i] = sinrconn.Point{X: p[0], Y: p[1]}
	}
	return out
}

// traceSpec lowers a churn request to a TraceSpec.
func (c ChurnRequest) traceSpec() (sinrconn.TraceSpec, error) {
	spec := sinrconn.TraceSpec{
		Seed:       c.Seed,
		Events:     c.Events,
		JoinRate:   c.JoinRate,
		FailRate:   c.FailRate,
		BurstRate:  c.BurstRate,
		ShowerRate: c.ShowerRate,
		MoveRate:   c.MoveRate,
	}
	switch c.Mobility {
	case "":
		spec.Mobility = sinrconn.MobilityNone
	case "waypoint":
		spec.Mobility = sinrconn.MobilityWaypoint
	case "citygrid":
		spec.Mobility = sinrconn.MobilityCityGrid
	default:
		return spec, fmt.Errorf("unknown mobility %q (want waypoint or citygrid)", c.Mobility)
	}
	return spec, nil
}

// timeout resolves a request's timeout_ms against the server bounds.
// Non-positive values — zero (unset) and negative (malformed client) —
// clamp to the server default rather than producing an
// already-expired context; values over the max clamp to the max.
func timeout(ms int64, def, max time.Duration) time.Duration {
	d := def
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d
}
