package sinr

// Property-based tests (testing/quick) on the physics invariants the
// algorithms lean on. Each property encodes a fact the paper's analysis
// uses implicitly; a regression in any of them would silently invalidate
// the higher layers.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sinrconn/internal/geom"
)

// genScenario deterministically derives a small random scenario from quick's
// integer seed.
func genScenario(seed int64, n int, span float64) ([]geom.Point, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		cand := geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if p.Dist(cand) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts, rng
}

// Property: affectance is always in [0, 1+ε].
func TestQuickAffectanceRange(t *testing.T) {
	f := func(seed int64) bool {
		pts, rng := genScenario(seed, 6, 40)
		in := MustInstance(pts, DefaultParams())
		l := Link{From: 0, To: 1}
		pu := in.Params().SafePower(in.Length(l))
		w := 2 + rng.Intn(4)
		pw := math.Exp(rng.Float64()*20 - 5)
		a := in.Affectance(w, pw, l, pu)
		return a >= 0 && a <= 1+in.Params().Epsilon+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SetAffectance is additive — the sum over singletons equals the
// set value.
func TestQuickAffectanceAdditive(t *testing.T) {
	f := func(seed int64) bool {
		pts, rng := genScenario(seed, 8, 50)
		in := MustInstance(pts, DefaultParams())
		l := Link{From: 0, To: 1}
		pu := in.Params().SafePower(in.Length(l))
		var txs []Tx
		for w := 2; w < 8; w++ {
			txs = append(txs, Tx{Sender: w, Power: 1 + rng.Float64()*1000})
		}
		sum := 0.0
		for _, tx := range txs {
			sum += in.SetAffectance([]Tx{tx}, l, pu)
		}
		return math.Abs(sum-in.SetAffectance(txs, l, pu)) < 1e-9*math.Max(1, sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: geometric similarity — scaling all coordinates by s and link
// powers by s^α leaves affectance unchanged (the scale-invariance that
// justifies the paper's "min distance = 1" normalization).
func TestQuickAffectanceScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		pts, rng := genScenario(seed, 5, 30)
		in := MustInstance(pts, DefaultParams())
		s := 1 + rng.Float64()*7
		scaled := make([]geom.Point, len(pts))
		for i, p := range pts {
			scaled[i] = p.Scale(s)
		}
		inS := MustInstance(scaled, DefaultParams())

		l := Link{From: 0, To: 1}
		alpha := in.Params().Alpha
		pu := in.Params().SafePower(in.Length(l))
		pw := pu * (0.5 + rng.Float64())
		a1 := in.Affectance(2, pw, l, pu)
		a2 := inS.Affectance(2, pw*math.Pow(s, alpha), l, pu*math.Pow(s, alpha))
		// Noise does not scale, so c(u,v) changes slightly; compare with
		// noise-free tolerance: both powers are ≥ 2× the noise floor, so
		// c ∈ [β, 2β] on both sides.
		if a1 == 0 && a2 == 0 {
			return true
		}
		if a1 >= 1+in.Params().Epsilon-1e-9 || a2 >= 1+in.Params().Epsilon-1e-9 {
			return true // capped values may differ
		}
		ratio := a1 / a2
		return ratio > 0.45 && ratio < 2.2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: feasibility is monotone in power scaling for singleton links —
// more power never hurts a lone link.
func TestQuickSingletonMorePowerNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		pts, rng := genScenario(seed, 2, 20)
		in := MustInstance(pts, DefaultParams())
		l := Link{From: 0, To: 1}
		base := in.Params().MinPower(in.Length(l)) * (0.5 + rng.Float64()*2)
		okLow, _ := in.SINRFeasible([]Link{l}, []float64{base})
		okHigh, _ := in.SINRFeasible([]Link{l}, []float64{base * 4})
		// If feasible at low power, it must be feasible at high power.
		return !okLow || okHigh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the dual of the dual is the identity, and dual links have equal
// length.
func TestQuickDualInvolution(t *testing.T) {
	f := func(a, b uint8) bool {
		if a == b {
			return true
		}
		l := Link{From: int(a), To: int(b)}
		return l.Dual().Dual() == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Upsilon is monotone in both arguments.
func TestQuickUpsilonMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(1000)
		d := 1 + rng.Float64()*1e6
		u := Upsilon(n, d)
		return Upsilon(n+100, d) >= u-1e-12 && Upsilon(n, d*16) >= u-1e-12 && u >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MeasuredAffectance never underestimates reality by more than
// the threshold cap: the capped analytical sum is ≤ the measured (uncapped)
// value plus the caps.
func TestQuickMeasuredVsAnalyticalAffectance(t *testing.T) {
	f := func(seed int64) bool {
		pts, rng := genScenario(seed, 6, 40)
		in := MustInstance(pts, DefaultParams())
		l := Link{From: 0, To: 1}
		pu := in.Params().SafePower(in.Length(l))
		var txs []Tx
		for w := 2; w < 6; w++ {
			txs = append(txs, Tx{Sender: w, Power: pu * (0.1 + rng.Float64())})
		}
		measured := in.MeasuredAffectance(txs, l, pu)
		capped := in.SetAffectance(txs, l, pu)
		// Capping only reduces: capped ≤ measured (within float noise).
		return capped <= measured+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SINR decreases (weakly) as interferers are added.
func TestQuickSINRMonotoneInInterference(t *testing.T) {
	f := func(seed int64) bool {
		pts, rng := genScenario(seed, 6, 40)
		in := MustInstance(pts, DefaultParams())
		l := Link{From: 0, To: 1}
		pu := in.Params().SafePower(in.Length(l))
		txs := []Tx{{Sender: 0, Power: pu}}
		prev := in.SINR(txs, l)
		for w := 2; w < 6; w++ {
			txs = append(txs, Tx{Sender: w, Power: pu * rng.Float64()})
			cur := in.SINR(txs, l)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
