package sinrconn

// Churn soak: a long event stream pushed through a CHAIN of derived
// Networks — each round's final result seeds the next round's Network —
// while concurrent Run readers hammer the same handles. Run with -race
// this doubles as the engine's data-race gate. The full soak streams
// ≥500 events; short mode runs a reduced chain (still real work, so the
// CI short lane exercises the concurrency paths every push).

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestChurnSoakDerivedChain(t *testing.T) {
	rounds, events, n := 5, 110, 96
	if testing.Short() {
		rounds, events, n = 2, 30, 48
	}
	base, err := Open(uniformPoints(70, n))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	ctx := context.Background()

	nw := base
	total := 0
	for round := 0; round < rounds; round++ {
		// Concurrent readers on the SAME handle the churn engine uses.
		// Distinct seeds defeat the memo, forcing real concurrent builds.
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				res, err := nw.Run(ctx, PipelineInit, WithSeed(seed))
				if err != nil {
					// Readers share the engine's Las Vegas failure mode;
					// only unexpected errors fail the soak.
					if !errors.Is(err, ErrNotConverged) {
						t.Errorf("reader round %d: %v", round, err)
					}
					return
				}
				if err := res.Tree.Verify(); err != nil {
					t.Errorf("reader round %d: %v", round, err)
				}
			}(int64(1000*round + r))
		}

		trace := mixedTrace(int64(37+round*13), events)
		rep, err := nw.Churn(ctx, trace)
		wg.Wait()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkChurnReport(t, trace, rep)
		total += rep.Stats.Events

		next := rep.Final.Network()
		if next == nw {
			t.Fatalf("round %d returned the same handle, want a derived Network", round)
		}
		nw = next
		if nw.Len() < 2 {
			t.Logf("round %d: membership collapsed to %d, stopping chain early", round, nw.Len())
			break
		}
	}
	if !testing.Short() && total < 500 {
		t.Fatalf("soak streamed only %d events, want ≥ 500", total)
	}
	t.Logf("soak: %d events across %d-round derived chain, final n=%d", total, rounds, nw.Len())
}
