// Sensorfield: a wireless sensor network scenario (the paper's motivating
// use case). Sensors are deployed in clustered pockets across a field; the
// bi-tree doubles as the data-aggregation structure. We aggregate a max
// temperature reading up the converge-cast tree, slot by slot, following
// the computed schedule — and confirm the sink learns the true maximum in
// exactly the promised number of slots.
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sinrconn"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	pts := clusteredField(rng, 80, 5, 7, 60)

	res, err := sinrconn.BuildBiTreeMeanPower(pts, sinrconn.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Tree.Verify(); err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("sensor field: %d sensors in 5 pockets, Δ=%.1f\n", len(pts), m.Delta)
	fmt.Printf("aggregation tree: root (sink) = node %d, %d slots/epoch, built in %d channel slots\n",
		res.Tree.Root, m.ScheduleLength, m.SlotsUsed)

	// Synthetic readings: a hotspot near the first pocket.
	readings := make([]float64, len(pts))
	trueMax := math.Inf(-1)
	for i, p := range pts {
		readings[i] = 15 + 10*math.Exp(-(p.X*p.X+p.Y*p.Y)/800) + rng.Float64()*2
		if readings[i] > trueMax {
			trueMax = readings[i]
		}
	}

	// Execute one epoch physically on the SINR channel: every link
	// transmits its running max in its scheduled slot at its stamped
	// power. Fixed-point centi-degrees ride in the message payload.
	values := make([]int64, len(pts))
	for i, r := range readings {
		values[i] = int64(math.Round(r * 100))
	}
	out, err := res.Aggregate(values, sinrconn.MaxAgg, sinrconn.Options{})
	if err != nil {
		log.Fatal("epoch failed on the channel: ", err)
	}
	sinkMax := float64(out.Value) / 100
	fmt.Printf("physical epoch: sink read max=%.2f°C (true max %.2f°C) in %d channel slots\n",
		sinkMax, trueMax, out.SlotsUsed)
	fmt.Printf("energy spent this epoch: %.3g; converge-cast latency metric: %d slots\n",
		out.Energy, m.AggregationLatency)
	if math.Abs(sinkMax-trueMax) > 0.01 {
		log.Fatal("aggregation lost the maximum — schedule violation")
	}
}

// clusteredField places n sensors in k pockets of the given radius on a
// span×span field, minimum pairwise distance 1.
func clusteredField(rng *rand.Rand, n, k int, radius, span float64) []sinrconn.Point {
	centers := make([]sinrconn.Point, k)
	for i := range centers {
		centers[i] = sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
	}
	var pts []sinrconn.Point
	fails := 0
	for len(pts) < n {
		c := centers[rng.Intn(k)]
		ang := rng.Float64() * 2 * math.Pi
		rad := math.Sqrt(rng.Float64()) * radius
		cand := sinrconn.Point{X: c.X + rad*math.Cos(ang), Y: c.Y + rad*math.Sin(ang)}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
			fails = 0
		} else if fails++; fails > 5000 {
			radius *= 1.3
			fails = 0
		}
	}
	return pts
}
