package sinrconn

// BenchmarkChurn quantifies the continuous-churn engine: event throughput
// of the full driver (BenchmarkChurn) and the headline robustness number —
// incremental schedule repair versus full rebuild after a correlated burst
// touching a few percent of the nodes (BenchmarkChurnRepairVsRebuild).
// Incremental repair splices every untouched slot verbatim and re-places
// only the orphaned subtrees, so its cost tracks the burst size while a
// rebuild tracks n; the gap is the engine's reason to exist.
//
// Sizes past the gain-table memory bound (n = 16384) run under the
// far-field channel (ε = 1.0), the same configuration a production session
// at that scale would use. BENCH_churn.json records the headline numbers.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sinrconn/internal/core"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
	"sinrconn/internal/workload"
)

// churnBenchInstance builds the benchmark deployment at the physics
// benchmarks' density, far-field mode past the gain-table bound.
func churnBenchInstance(b *testing.B, n int) (*sinr.Instance, sinr.Far) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n) * 3))
	pts := workload.JitteredGrid(rng, n, 2.6, 0.8)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	var ff sinr.Far
	if uint64(n)*uint64(n)*8 > 256<<20 { // past the gain-table memory bound

		f, err := in.FarField(1.0)
		if err != nil {
			b.Fatal(err)
		}
		ff = f
	}
	return in, ff
}

func churnBenchConfig(seed int64, ff sinr.Far) core.InitConfig {
	return core.InitConfig{Seed: seed, FarField: ff}
}

// churnBenchTree builds the initial tree once per size (outside timers).
func churnBenchTree(b *testing.B, in *sinr.Instance, ff sinr.Far) *tree.BiTree {
	b.Helper()
	ires, err := core.Init(context.Background(), in, churnBenchConfig(1, ff))
	if err != nil {
		b.Fatal(err)
	}
	ires.Tree.Compact()
	return ires.Tree
}

// burstVictims picks a spatially correlated failure disc of ~frac·n nodes
// (grown from a fixed epicenter outward), the shape churn bursts produce.
func burstVictims(in *sinr.Instance, bt *tree.BiTree, frac float64) []int {
	epi := in.Point(bt.Nodes[len(bt.Nodes)/2])
	byDist := append([]int(nil), bt.Nodes...)
	sort.Slice(byDist, func(i, j int) bool {
		return in.Point(byDist[i]).DistSq(epi) < in.Point(byDist[j]).DistSq(epi)
	})
	k := int(frac * float64(len(bt.Nodes)))
	if k < 1 {
		k = 1
	}
	victims := byDist[:k]
	for i, v := range victims {
		if v == bt.Root { // keep the root out: pure re-attachment cost
			victims[i] = byDist[k]
			break
		}
	}
	return victims
}

// BenchmarkChurn measures driver throughput: one op is a full mixed trace
// (joins, failures, bursts, showers, mobility) on a fresh Network; the
// events/sec metric is the headline.
func BenchmarkChurn(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n) * 3))
			g := workload.JitteredGrid(rng, n, 2.6, 0.8)
			pts := make([]Point, len(g))
			for i, p := range g {
				pts[i] = Point{X: p.X, Y: p.Y}
			}
			const events = 40
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				nw, err := Open(pts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := nw.Churn(ctx, mixedTrace(int64(i)+1, events))
				if err != nil {
					b.Fatal(err)
				}
				_ = rep
				b.StopTimer()
				nw.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkChurnRepairVsRebuild is the acceptance benchmark: after a
// correlated burst kills ~2% of the deployment (≤ 5%, the incremental
// regime), repair the schedule incrementally versus rebuilding the tree
// from scratch over the survivors. Ratio recorded in BENCH_churn.json.
func BenchmarkChurnRepairVsRebuild(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{1024, 4096, 16384} {
		in, ff := churnBenchInstance(b, n)
		bt := churnBenchTree(b, in, ff)
		victims := burstVictims(in, bt, 0.02)
		survivors := make([]int, 0, len(bt.Nodes)-len(victims))
		dead := make(map[int]bool, len(victims))
		for _, v := range victims {
			dead[v] = true
		}
		for _, v := range bt.Nodes {
			if !dead[v] {
				survivors = append(survivors, v)
			}
		}
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RepairIncremental(ctx, in, bt, victims, churnBenchConfig(int64(i)+2, ff)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := churnBenchConfig(int64(i)+2, ff)
				cfg.Participants = survivors
				if _, err := core.Init(ctx, in, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
