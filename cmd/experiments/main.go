// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per theorem of the paper, each ending in a shape-check verdict.
//
// Usage:
//
//	experiments            # full sweep (minutes)
//	experiments -quick     # reduced sweep (seconds)
//	experiments -only E6   # a single experiment
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sinrconn/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sweep for smoke testing")
	only := fs.String("only", "", "run a single experiment (E1..E20, A1..A5)")
	seeds := fs.Int("seeds", 0, "override trials per cell")
	ablations := fs.Bool("ablations", false, "also run the A1..A5 design-choice sweeps")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{}
	if *quick {
		cfg = experiments.Quick()
	}
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}

	type entry struct {
		id  string
		run func(context.Context, experiments.Config) experiments.Report
	}
	all := []entry{
		{"E1", experiments.E1InitSlots},
		{"E2", experiments.E2BiTreeValidity},
		{"E3", experiments.E3DegreeTail},
		{"E4", experiments.E4Sparsity},
		{"E5", experiments.E5LowDegreeFilter},
		{"E6", experiments.E6MeanReschedule},
		{"E7", experiments.E7Iterations},
		{"E8", experiments.E8ArbitraryPower},
		{"E9", experiments.E9MeanPower},
		{"E10", experiments.E10Crossover},
		{"E11", experiments.E11Latency},
		{"E12", experiments.E12CapacityRatio},
		{"E13", experiments.E13Energy},
		{"E14", experiments.E14PhysicalEpoch},
		{"E15", experiments.E15SessionMatrix},
		{"E16", experiments.E16FarField},
		{"E17", experiments.E17Quadtree},
		{"E18", experiments.E18Churn},
		{"E19", experiments.E19Serve},
		{"E20", experiments.E20SlotEngine},
	}
	abl := []entry{
		{"A1", experiments.A1BroadcastProb},
		{"A2", experiments.A2SlotPairsPerRound},
		{"A3", experiments.A3DistrCapTau},
		{"A4", experiments.A4DegreeCap},
		{"A5", experiments.A5DropRobustness},
	}
	if *ablations {
		all = append(all, abl...)
	} else if *only != "" && strings.HasPrefix(strings.ToUpper(*only), "A") {
		all = abl
	}

	ctx := context.Background()
	failed := 0
	for _, e := range all {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		start := time.Now()
		rep := e.run(ctx, cfg)
		fmt.Fprintln(out, rep.Render())
		fmt.Fprintf(out, "(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their shape check", failed)
	}
	return nil
}
