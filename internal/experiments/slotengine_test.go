package experiments

import "testing"

func TestE20SlotEngine(t *testing.T) {
	runAndCheck(t, E20SlotEngine(t.Context(), Quick()), 8)
}
