// Package oracle is the oraclepurity fixture: the reference implementation
// may import only leaf data packages and must use naive math, never the
// fast-path kernels it exists to cross-check.
package oracle

import (
	"math"

	"sinrconn/internal/phys"
	"sinrconn/internal/sinr" // want `oracle may not import "sinrconn/internal/sinr"`
)

// BadGain leans on the fast kernel — both the import above and the call
// here are violations.
func BadGain(d, alpha float64) float64 {
	return 1 / sinr.PowAlpha(d, alpha) // want `oracle must not call fast-path PowAlpha`
}

// GoodGain is the sanctioned shape: naive math.Pow over plain parameters.
func GoodGain(d float64, p phys.Params) float64 {
	return 1 / math.Pow(d, p.Alpha)
}
