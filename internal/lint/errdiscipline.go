package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"sinrconn/internal/lint/analysis"
)

// ErrDiscipline enforces DESIGN.md §11.5: the root typed errors
// (ErrNotConverged, ErrDamped, ErrRetryExhausted, schedule.ErrIncomplete, …)
// form wrap chains — core.Reschedule wraps schedule.ErrIncomplete under
// ErrNotConverged, ErrRetryExhausted wraps ErrNotConverged — so identity
// comparison with == silently misses wrapped values. Sentinels must be
// tested with errors.Is and wrapped with %w.
var ErrDiscipline = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc:  "sentinel errors are compared with errors.Is and wrapped with %w",
	Run:  runErrDiscipline,
}

func runErrDiscipline(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				if node.Op != token.EQL && node.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{node.X, node.Y}, {node.Y, node.X}} {
					if isNil(pair[1]) {
						continue
					}
					if name, ok := isSentinelErr(pass, pair[0]); ok {
						pass.Reportf(node.Pos(), "%s on sentinel %s misses wrapped errors; use errors.Is", node.Op, name)
						break
					}
				}
			case *ast.CallExpr:
				if pkgCall(pass, file, node, "fmt") != "Errorf" || len(node.Args) < 2 {
					return true
				}
				format, ok := stringLit(node.Args[0])
				if ok && strings.Contains(format, "%w") {
					return true
				}
				for _, arg := range node.Args[1:] {
					if name, sentinel := isSentinelErr(pass, arg); sentinel {
						pass.Reportf(node.Pos(), "fmt.Errorf hides sentinel %s from errors.Is; wrap it with %%w", name)
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	return lit.Value, true
}
