package core

import (
	"sort"

	"sinrconn/internal/sinr"
)

// DefaultTau is the default Eqn-3 admission threshold τ. Kesselheim's
// analysis needs τ below a constant for power-control feasibility of the
// selected set; 0.75 is comfortably inside the regime where the
// Foschini–Miljanic solver converges on every instance we generate.
const DefaultTau = 0.75

// CentralCapacity is the centralized constant-factor capacity algorithm of
// Kesselheim (SODA 2011) the paper builds Distr-Cap on: process links in
// ascending order of length and admit ℓ into L iff
//
//	a^L_L(ℓ) + a^U_ℓ(L) ≤ τ            (Eqn 3)
//
// where a^L is affectance under linear power and a^U under uniform power.
// The admitted set is guaranteed to be feasible under *some* power
// assignment (computable with power.Solve) and is a constant-factor
// approximation to the maximum feasible subset.
func CentralCapacity(in *sinr.Instance, links []sinr.Link, tau float64) []sinr.Link {
	if tau <= 0 {
		tau = DefaultTau
	}
	order := make([]int, len(links))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Length(links[order[a]]) < in.Length(links[order[b]])
	})

	lin := sinr.NoiseSafeLinear(in.Params())
	maxLen := 0.0
	for _, l := range links {
		if ln := in.Length(l); ln > maxLen {
			maxLen = ln
		}
	}
	uni := sinr.UniformFor(in.Params(), maxLen)

	var selected []sinr.Link
	busy := make(map[int]bool)
	for _, idx := range order {
		l := links[idx]
		// One link per node: a feasible slot cannot reuse nodes.
		if busy[l.From] || busy[l.To] {
			continue
		}
		in1 := in.SetLinkAffectance(selected, l, lin)
		out := in.OutAffectance(l, selected, uni)
		if in1+out <= tau {
			selected = append(selected, l)
			busy[l.From] = true
			busy[l.To] = true
		}
	}
	return selected
}

// Eqn3Holds verifies the Kesselheim invariant on a selected set: for every
// link ℓ with L the selected links no longer than ℓ,
// a^L_L(ℓ) + a^U_ℓ(L) ≤ τ. Distr-Cap's Lemmas 17–18 assert this for its
// output; tests and experiments call this to certify it.
func Eqn3Holds(in *sinr.Instance, selected []sinr.Link, tau float64) bool {
	if tau <= 0 {
		tau = DefaultTau
	}
	lin := sinr.NoiseSafeLinear(in.Params())
	maxLen := 0.0
	for _, l := range selected {
		if ln := in.Length(l); ln > maxLen {
			maxLen = ln
		}
	}
	uni := sinr.UniformFor(in.Params(), maxLen)
	sorted := append([]sinr.Link(nil), selected...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return in.Length(sorted[a]) < in.Length(sorted[b])
	})
	for i, l := range sorted {
		smaller := sorted[:i]
		if in.SetLinkAffectance(smaller, l, lin)+in.OutAffectance(l, smaller, uni) > tau+1e-9 {
			return false
		}
	}
	return true
}
