// Dynamicmesh: the lifecycle the paper's conclusion asks for — nodes wake
// up asynchronously after the network is formed, and nodes fail and must
// be routed around. Build a bi-tree, attach a batch of late joiners
// distributedly, then kill an interior node (and later the root) and
// repair. Every intermediate structure is re-verified.
//
//	go run ./examples/dynamicmesh
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"

	"sinrconn"
)

func main() {
	if err := run(os.Stdout, 48, 18, 1); err != nil {
		log.Fatal(err)
	}
}

// run walks the full lifecycle on n nodes scattered on a span×span square.
// seed drives the protocol randomness only; the topology seed is fixed so
// the example's mesh (and narrative output) stays stable across seeds.
func run(out io.Writer, n int, span float64, seed int64) error {
	rng := rand.New(rand.NewSource(99))
	pts := scatter(rng, n, span)

	res, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: seed})
	if err != nil {
		return err
	}
	if err := report(out, "initial network", res); err != nil {
		return err
	}

	// A remote cluster of three nodes powers on, clear of the square.
	off := span + 42
	late := []sinrconn.Point{{X: off, Y: 5}, {X: off + 2.5, Y: 3}, {X: off + 4, Y: 6}}
	res, err = res.JoinPoints(late, sinrconn.Options{Seed: seed + 1})
	if err != nil {
		return err
	}
	if err := report(out, "after 3 late joiners", res); err != nil {
		return err
	}

	// An interior node dies; its subtrees must re-attach. Scan node ids in
	// order (not map order) so the chosen victim — and the rest of the
	// narrative — is deterministic. (Fall back to the first non-root node
	// if the tree happens to have no 2-child interior node.)
	par := res.Tree.Parent()
	counts := map[int]int{}
	for _, p := range par {
		counts[p]++
	}
	victim := -1
	for v := 0; v < res.Tree.NumNodes && victim < 0; v++ {
		if v != res.Tree.Root && counts[v] >= 2 {
			victim = v
		}
	}
	for v := 0; v < res.Tree.NumNodes && victim < 0; v++ {
		if v != res.Tree.Root {
			if _, ok := par[v]; ok {
				victim = v
			}
		}
	}
	res, err = res.RepairFailures([]int{victim}, sinrconn.Options{Seed: seed + 2})
	if err != nil {
		return err
	}
	if err := report(out, fmt.Sprintf("after interior node %d failed", victim), res); err != nil {
		return err
	}

	// The root itself dies; a new root is promoted.
	old := res.Tree.Root
	res, err = res.RepairFailures([]int{old}, sinrconn.Options{Seed: seed + 3})
	if err != nil {
		return err
	}
	if err := report(out, fmt.Sprintf("after root %d failed (new root %d)", old, res.Tree.Root), res); err != nil {
		return err
	}

	// A link is blocked by an obstacle (both endpoints alive); the orphaned
	// subtree must re-attach without re-forming that link.
	blocked := res.Tree.Up[0].Link
	res, err = res.RepairLinkFailures([]sinrconn.Link{blocked}, sinrconn.Options{Seed: seed + 4})
	if err != nil {
		return err
	}
	for _, l := range res.Tree.Up {
		if l.Link == blocked {
			return fmt.Errorf("blocked link re-formed")
		}
	}
	return report(out, fmt.Sprintf("after link %d->%d was blocked", blocked.From, blocked.To), res)
}

func report(out io.Writer, stage string, res *sinrconn.Result) error {
	if err := res.Tree.Verify(); err != nil {
		return fmt.Errorf("%s: verification failed: %w", stage, err)
	}
	m := res.Metrics
	fmt.Fprintf(out, "%-36s nodes=%-3d schedule=%-3d channel slots=%-5d agg latency=%d\n",
		stage, res.Tree.NumNodes, m.ScheduleLength, m.SlotsUsed, m.AggregationLatency)
	return nil
}

func scatter(rng *rand.Rand, n int, span float64) []sinrconn.Point {
	var pts []sinrconn.Point
	for len(pts) < n {
		cand := sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}
