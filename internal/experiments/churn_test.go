package experiments

import "testing"

func TestE18Churn(t *testing.T) {
	runAndCheck(t, E18Churn(t.Context(), Quick()), 4)
}
