package sinr

// Morton (Z-order) codec for the quadtree pyramid. A node's position
// within its level is the interleaving of its grid coordinates' bits
// (x in the even positions, y in the odd ones), so that the four children
// of node t are exactly nodes 4t..4t+3 of the next level and t's parent is
// t>>2. The payoff is locality: siblings — and, recursively, whole
// subtrees — occupy contiguous index ranges, so the proximity-first DFS of
// Resolve walks contiguous cache lines instead of striding row-major rows
// 2^ℓ apart (DESIGN.md §12).
//
// Both directions are byte-table lookups: MortonEncode spreads each
// coordinate byte to its even bit positions, MortonDecode gathers the even
// bits of each code byte. The tables cover coordinates up to 16 bits and
// codes up to 31 bits — far beyond maxQuadLevels = 9 (coordinates < 2^9,
// codes < 2^18).

// mortonSpread8 maps a byte to the 16-bit word holding its bits in the
// even positions (bit i → bit 2i).
var mortonSpread8 [256]uint32

// mortonGather8 maps a byte to the nibble collecting its even-position
// bits (bit 2i → bit i).
var mortonGather8 [256]uint8

func init() {
	for b := 0; b < 256; b++ {
		var s uint32
		var g uint8
		for i := uint(0); i < 8; i++ {
			if b&(1<<i) != 0 {
				s |= 1 << (2 * i)
			}
		}
		for i := uint(0); i < 4; i++ {
			if b&(1<<(2*i)) != 0 {
				g |= 1 << i
			}
		}
		mortonSpread8[b] = s
		mortonGather8[b] = g
	}
}

// MortonEncode interleaves the low 16 bits of x and y into a Z-order code:
// bit i of x lands at bit 2i, bit i of y at bit 2i+1. Exported for the
// oracle lockstep suite, which cross-checks it against a naive per-bit
// transcription.
func MortonEncode(x, y int32) int32 {
	return int32(mortonSpread8[x&0xff] | mortonSpread8[(x>>8)&0xff]<<16 |
		(mortonSpread8[y&0xff]|mortonSpread8[(y>>8)&0xff]<<16)<<1)
}

// MortonDecode inverts MortonEncode for non-negative codes (up to 31
// bits): it deinterleaves t back into its grid coordinates.
func MortonDecode(t int32) (x, y int32) {
	u := uint32(t)
	x = int32(uint32(mortonGather8[u&0xff]) |
		uint32(mortonGather8[(u>>8)&0xff])<<4 |
		uint32(mortonGather8[(u>>16)&0xff])<<8 |
		uint32(mortonGather8[(u>>24)&0xff])<<12)
	u >>= 1
	y = int32(uint32(mortonGather8[u&0xff]) |
		uint32(mortonGather8[(u>>8)&0xff])<<4 |
		uint32(mortonGather8[(u>>16)&0xff])<<8 |
		uint32(mortonGather8[(u>>24)&0xff])<<12)
	return x, y
}
