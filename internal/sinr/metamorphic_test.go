package sinr_test

// The metamorphic invariant harness: exact model-level invariants of the
// SINR physics, each classified Type 1 per the experiment standard
// (deterministic; one failure = bug), each checked across the seeds
// {42, 123, 456}. These are properties the paper treats as self-evident
// consequences of Eqn 1, so any violation is a kernel bug, never noise:
//
//   - spatial-scale invariance: scaling coordinates by s and powers by s^α
//     leaves every SINR unchanged (bit-for-bit when s is a power of two);
//   - relabeling invariance: permuting node indices permutes but never
//     changes outcomes;
//   - β monotonicity: the feasible decision is monotone non-increasing in β;
//   - power-scale monotonicity: scaling all powers by γ ≥ 1 never breaks a
//     feasible set;
//   - idle-node inertness: adding nodes that never transmit changes no
//     physics quantity of the existing nodes.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

var metamorphicSeeds = []int64{42, 123, 456}

// metaScene is one generated scene: an instance plus a random link set with
// powers straddling the feasibility boundary.
type metaScene struct {
	pts    []geom.Point
	in     *sinr.Instance
	links  []sinr.Link
	powers []float64
	txs    []sinr.Tx
}

func newMetaScene(t *testing.T, seed int64, n int) *metaScene {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := workload.GaussianClusters(rng, n, 3, 3, 40)
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	links, powers := randomLinkSet(rng, in, 6)
	txs := make([]sinr.Tx, len(links))
	for i, l := range links {
		txs[i] = sinr.Tx{Sender: l.From, Power: powers[i]}
	}
	return &metaScene{pts: pts, in: in, links: links, powers: powers, txs: txs}
}

type invariant struct {
	name string
	run  func(t *testing.T, seed int64)
}

// invariants is the Type-1 table EXPERIMENTS.md §Invariant classes indexes.
var invariants = []invariant{
	{"SpatialScaleInvariance", checkSpatialScaleInvariance},
	{"RelabelingInvariance", checkRelabelingInvariance},
	{"BetaMonotonicity", checkBetaMonotonicity},
	{"PowerScaleMonotonicity", checkPowerScaleMonotonicity},
	{"IdleNodeInertness", checkIdleNodeInertness},
}

func TestMetamorphicInvariants(t *testing.T) {
	for _, inv := range invariants {
		inv := inv
		t.Run(inv.name, func(t *testing.T) {
			for _, seed := range metamorphicSeeds {
				inv.run(t, seed)
			}
		})
	}
}

// checkSpatialScaleInvariance: scaling every coordinate by s and every
// power by s^α leaves each link's SINR and the feasibility decision
// unchanged. Powers of two commute exactly with IEEE rounding, so for
// s ∈ {2, 4} equality is bit-for-bit; for arbitrary s it holds to 1e-9.
func checkSpatialScaleInvariance(t *testing.T, seed int64) {
	sc := newMetaScene(t, seed, 28)
	p := sc.in.Params()
	for _, s := range []float64{2, 4, 1.7} {
		exact := s == 2 || s == 4
		scaled := make([]geom.Point, len(sc.pts))
		for i, pt := range sc.pts {
			scaled[i] = pt.Scale(s)
		}
		sIn := sinr.MustInstance(scaled, p)
		f := math.Pow(s, p.Alpha)
		if exact {
			f = oracleExactPow(s, p.Alpha)
		}
		sTxs := make([]sinr.Tx, len(sc.txs))
		sPowers := make([]float64, len(sc.powers))
		for i := range sc.txs {
			sTxs[i] = sinr.Tx{Sender: sc.txs[i].Sender, Power: sc.txs[i].Power * f}
			sPowers[i] = sc.powers[i] * f
		}
		for _, l := range sc.links {
			a := sc.in.SINR(sc.txs, l)
			b := sIn.SINR(sTxs, l)
			if exact && a != b {
				t.Fatalf("seed %d s=%v link %v: SINR %v != %v (bit-exact expected)", seed, s, l, a, b)
			}
			if !exact && math.Abs(a-b) > 1e-9*math.Max(math.Abs(a), math.Abs(b)) {
				t.Fatalf("seed %d s=%v link %v: SINR %v vs %v", seed, s, l, a, b)
			}
		}
		ok1, err1 := sc.in.SINRFeasible(sc.links, sc.powers)
		ok2, err2 := sIn.SINRFeasible(sc.links, sPowers)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d s=%v: errors %v %v", seed, s, err1, err2)
		}
		if exact && ok1 != ok2 {
			t.Fatalf("seed %d s=%v: feasibility flipped %v → %v", seed, s, ok1, ok2)
		}
	}
}

// oracleExactPow computes s^α for power-of-two s via repeated exact
// multiplication, so the scale factor itself carries no rounding.
func oracleExactPow(s, alpha float64) float64 {
	f := 1.0
	for i := 0; i < int(alpha); i++ {
		f *= s
	}
	return f
}

// checkRelabelingInvariance: applying a permutation π to node indices (and
// to every link and sender) yields bit-identical SINR, affectance, and
// feasibility — outcomes are permuted, never changed.
func checkRelabelingInvariance(t *testing.T, seed int64) {
	sc := newMetaScene(t, seed, 26)
	p := sc.in.Params()
	n := len(sc.pts)
	rng := rand.New(rand.NewSource(seed + 7))
	perm := rng.Perm(n)
	relPts := make([]geom.Point, n)
	for i, pt := range sc.pts {
		relPts[perm[i]] = pt
	}
	rIn := sinr.MustInstance(relPts, p)
	rTxs := make([]sinr.Tx, len(sc.txs))
	for i, tx := range sc.txs {
		rTxs[i] = sinr.Tx{Sender: perm[tx.Sender], Power: tx.Power}
	}
	rLinks := make([]sinr.Link, len(sc.links))
	for i, l := range sc.links {
		rLinks[i] = sinr.Link{From: perm[l.From], To: perm[l.To]}
	}
	for i, l := range sc.links {
		if a, b := sc.in.SINR(sc.txs, l), rIn.SINR(rTxs, rLinks[i]); a != b {
			t.Fatalf("seed %d link %v: SINR %v != %v after relabeling", seed, l, a, b)
		}
		pu := sc.powers[i]
		if a, b := sc.in.SetAffectance(sc.txs, l, pu), rIn.SetAffectance(rTxs, rLinks[i], pu); a != b {
			t.Fatalf("seed %d link %v: SetAffectance %v != %v after relabeling", seed, l, a, b)
		}
	}
	ok1, _ := sc.in.SINRFeasible(sc.links, sc.powers)
	ok2, _ := rIn.SINRFeasible(rLinks, sc.powers)
	if ok1 != ok2 {
		t.Fatalf("seed %d: feasibility flipped %v → %v after relabeling", seed, ok1, ok2)
	}
}

// checkBetaMonotonicity: for a fixed link set and powers, the feasibility
// decision is monotone non-increasing in β — once the set turns infeasible
// while raising β, it must stay infeasible. Exact: the SINR values do not
// depend on β, only the threshold does.
func checkBetaMonotonicity(t *testing.T, seed int64) {
	sc := newMetaScene(t, seed, 24)
	base := sc.in.Params()
	prevFeasible := true
	for _, beta := range []float64{0.25, 0.5, 1, 1.5, 2.5, 4, 8} {
		p := base
		p.Beta = beta
		in := sinr.MustInstance(sc.pts, p)
		ok, err := in.SINRFeasible(sc.links, sc.powers)
		if err != nil {
			t.Fatal(err)
		}
		if ok && !prevFeasible {
			t.Fatalf("seed %d: feasibility not monotone in β (refeasible at β=%v)", seed, beta)
		}
		prevFeasible = ok
	}
}

// checkPowerScaleMonotonicity: scaling every power by a common γ ≥ 1 never
// breaks a feasible set — relative interference is unchanged and the noise
// term only shrinks relative to the signal.
func checkPowerScaleMonotonicity(t *testing.T, seed int64) {
	sc := newMetaScene(t, seed, 24)
	ok, err := sc.in.SINRFeasible(sc.links, sc.powers)
	if err != nil {
		t.Fatal(err)
	}
	for _, gamma := range []float64{2, 16, 1024} {
		scaled := make([]float64, len(sc.powers))
		for i, pw := range sc.powers {
			scaled[i] = pw * gamma
		}
		ok2, err := sc.in.SINRFeasible(sc.links, scaled)
		if err != nil {
			t.Fatal(err)
		}
		if ok && !ok2 {
			t.Fatalf("seed %d: feasible set broke at γ=%v", seed, gamma)
		}
	}
}

// checkIdleNodeInertness: appending nodes that never transmit leaves every
// physics quantity of the original nodes bit-identical — the gain table
// grows but existing entries, SINRs, and affectance sums cannot move.
func checkIdleNodeInertness(t *testing.T, seed int64) {
	sc := newMetaScene(t, seed, 24)
	p := sc.in.Params()
	rng := rand.New(rand.NewSource(seed + 99))
	padded := append(append([]geom.Point(nil), sc.pts...), workload.Annulus(rng, 8, 200, 210)...)
	pIn := sinr.MustInstance(padded, p)
	for i, l := range sc.links {
		if a, b := sc.in.SINR(sc.txs, l), pIn.SINR(sc.txs, l); a != b {
			t.Fatalf("seed %d link %v: SINR %v != %v after idle padding", seed, l, a, b)
		}
		if a, b := sc.in.SetAffectance(sc.txs, l, sc.powers[i]), pIn.SetAffectance(sc.txs, l, sc.powers[i]); a != b {
			t.Fatalf("seed %d link %v: SetAffectance changed after idle padding", seed, l)
		}
	}
	ok1, _ := sc.in.SINRFeasible(sc.links, sc.powers)
	ok2, _ := pIn.SINRFeasible(sc.links, sc.powers)
	if ok1 != ok2 {
		t.Fatalf("seed %d: feasibility flipped %v → %v after idle padding", seed, ok1, ok2)
	}
}
