// Package suppress is the driver fixture for //lint:ignore handling: a
// justified directive suppresses, an unjustified one does not (and is
// itself reported), an unused one is reported, and directives addressed to
// foreign tools are left alone.
package suppress

import "errors"

// ErrBoom is the sentinel the errdiscipline findings hang off.
var ErrBoom = errors.New("boom")

// Justified: suppressed cleanly.
func Justified(err error) bool {
	//lint:ignore errdiscipline fixture: identity comparison is the point here
	return err == ErrBoom
}

// Unjustified: the directive suppresses nothing and is flagged itself.
func Unjustified(err error) bool {
	//lint:ignore errdiscipline
	return err == ErrBoom
}

// Unused: a justified directive with no finding under it is dead weight.
func Unused(err error) bool {
	//lint:ignore errdiscipline fixture: nothing to suppress here
	return err == nil
}

// Foreign: directives naming another tool's checks are not ours to police.
func Foreign(err error) bool {
	//lint:ignore SA4006 fixture: staticcheck's business, not sinrlint's
	return err == nil
}
