package sinrconn

// The scenario-matrix suite: the cross-product (generator × α × pipeline)
// run end to end, with every constructed bi-tree verified twice — once by
// the optimized validators (Tree.Verify) and once by the brute-force
// oracle battery (internal/oracle) — so the validators themselves are
// differentially tested on every cell. Since PR 3 the suite runs on the
// session API: each (generator, α) cell group opens one Network and fans
// the four pipelines out through RunMatrix, exercising the batch executor
// and the shared-instance reuse path on every cell. Runs a reduced matrix
// under -short and the full product (at larger n) in soak mode.
//
// Also home of the structure-level metamorphic invariant: growing a
// network by join-then-repair must be equivalent to rebuilding on the
// union point set — same spanned node set, same verdict from the full
// validator battery on both structures (Type 1).

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"sinrconn/internal/oracle"
	"sinrconn/internal/workload"
)

// matrixAlphas matches the differential suite: even/odd integer fast
// paths, the half-integer path, and the free-space boundary α = 2.
var matrixAlphas = []float64{2, 2.5, 3, 4}

// facadePoints runs a workload generator and converts to facade points.
func facadePoints(spec workload.Spec, seed int64, n int) []Point {
	rng := rand.New(rand.NewSource(seed))
	g := spec.Gen(rng, n)
	pts := make([]Point, len(g))
	for i, p := range g {
		pts[i] = Point{X: p.X, Y: p.Y}
	}
	return pts
}

// verifyCell runs both validator stacks on one matrix cell's result.
func verifyCell(t *testing.T, res *Result, ordered bool) {
	t.Helper()
	inner, inst := res.Tree.inner, res.Tree.inst
	if ordered {
		if err := res.Tree.Verify(); err != nil {
			t.Fatalf("optimized validators: %v", err)
		}
		if err := oracle.ValidateBiTree(inst.Points(), inst.Params(), inner.Root, inner.Nodes, inner.Up); err != nil {
			t.Fatalf("oracle validators: %v", err)
		}
		return
	}
	// Rescheduled trees keep structure and feasibility but may violate the
	// aggregation ordering; check everything else on both stacks.
	if err := inner.Validate(); err != nil {
		t.Fatalf("optimized structure validator: %v", err)
	}
	if err := inner.ValidatePerSlotFeasible(inst); err != nil {
		t.Fatalf("optimized feasibility validator: %v", err)
	}
	if err := oracle.ValidateTree(inner.Root, inner.Nodes, inner.Up); err != nil {
		t.Fatalf("oracle structure validator: %v", err)
	}
	if !oracle.StronglyConnected(inner.Nodes, inner.Up) {
		t.Fatal("oracle: not strongly connected")
	}
	if err := oracle.ValidateSchedule(inst.Points(), inst.Params(), inner.Up); err != nil {
		t.Fatalf("oracle feasibility validator: %v", err)
	}
}

// TestScenarioMatrix sweeps the cross-product. Each (generator, α) cell
// group shares one Network: the four pipelines run as a single RunMatrix
// batch against the session's shared instance. Under -short each generator
// runs at the default α plus one rotating non-default α, at small n;
// without -short the full generator × α product runs at larger n.
func TestScenarioMatrix(t *testing.T) {
	specs := workload.Matrix()
	pipes := Pipelines()
	n := 40
	if testing.Short() {
		n = 22
	}
	ctx := context.Background()
	for si, spec := range specs {
		for ai, alpha := range matrixAlphas {
			if testing.Short() && alpha != 3 && ai != si%len(matrixAlphas) {
				continue
			}
			spec, alpha := spec, alpha
			// Point seed matches the reschedule-mean cells of the
			// pre-session suite (…+1): those point sets are proven
			// schedulable under mean power, whose budget failure mode is
			// instance-deterministic (retrying protocol seeds cannot help).
			seed := int64(1001 + 100*si + 10*ai)
			t.Run(spec.Name+"/"+floatName(alpha), func(t *testing.T) {
				pts := facadePoints(spec, seed, n)
				nw, err := Open(pts, WithPhys(PhysParams{Alpha: alpha}), WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				defer nw.Close()

				// One batch across all four pipelines. The construction
				// protocols are randomized and may (rarely, legitimately)
				// fail to converge within their round bounds on a given
				// seed; that surfaces as ErrNotConverged, and the cell
				// retries with a fresh protocol seed on the SAME point
				// set — so an instance-specific deterministic pipeline bug
				// fails every attempt. Any other error class (validator,
				// geometry, option) is deterministic and never retried;
				// the errors.Is routing is the typed-error contract.
				runSpecs := make([]RunSpec, len(pipes))
				for pi, p := range pipes {
					runSpecs[pi] = RunSpec{Pipeline: p, Opts: []RunOption{WithSeed(seed + int64(pi))}}
				}
				results, batchErr := nw.RunMatrix(ctx, runSpecs)
				for pi, pipe := range pipes {
					pi, pipe := pi, pipe
					t.Run(pipe.String(), func(t *testing.T) {
						res := results[pi]
						err := batchErr
						for attempt := int64(1); res == nil && attempt < 3; attempt++ {
							if !errors.Is(err, ErrNotConverged) {
								t.Fatalf("non-retryable pipeline error: %v", err)
							}
							res, err = nw.Run(ctx, pipe, WithSeed(seed+int64(pi)+100*attempt))
						}
						if res == nil {
							t.Fatalf("pipeline failed on 3 seeds: %v", err)
						}
						if res.Tree.NumNodes != n {
							t.Fatalf("tree spans %d of %d nodes", res.Tree.NumNodes, n)
						}
						verifyCell(t, res, pipe.Ordered())
					})
				}
			})
		}
	}
}

func floatName(f float64) string {
	switch f {
	case 2:
		return "alpha2"
	case 2.5:
		return "alpha2.5"
	case 4:
		return "alpha4"
	}
	return "alpha3"
}

// TestMetamorphicJoinThenRepairEqualsRebuild grows a network two ways —
// build on A, join B, then fail and repair a member; versus rebuild from
// scratch on the surviving union — and requires both structures to span
// exactly the same node set and pass the identical full validator battery
// (optimized and oracle). The trees themselves may differ (the protocols
// are randomized); the paper's guarantees may not. The grown path runs
// entirely on the session API: Join derives a handle over the enlarged
// point set that shares the original session's worker pool.
func TestMetamorphicJoinThenRepairEqualsRebuild(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{42, 123, 456} {
		base := uniformPoints(seed, 28)
		var annulus workload.Spec
		for _, s := range workload.Matrix() {
			if s.Name == "annulus" {
				annulus = s
			}
		}
		if annulus.Gen == nil {
			t.Fatal("annulus spec missing from matrix")
		}
		extra := facadePoints(annulus, seed+1, 8)
		// Shift the annulus batch clear of the base square so the union
		// keeps min distance ≥ 1.
		for i := range extra {
			extra[i].X += 300
		}

		nw, err := Open(base, WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		grown, err := nw.Run(ctx, PipelineInit)
		if err != nil {
			t.Fatal(err)
		}
		grown, err = nw.Join(ctx, grown, extra, WithSeed(seed+2))
		if err != nil {
			t.Fatalf("seed %d: join: %v", seed, err)
		}
		victim := 0
		if victim == grown.Tree.Root {
			victim = 1
		}
		grown, err = grown.Network().Repair(ctx, grown, []int{victim}, WithSeed(seed+3))
		if err != nil {
			t.Fatalf("seed %d: repair: %v", seed, err)
		}

		// Rebuild from scratch on the same surviving union.
		var union []Point
		for i, p := range base {
			if i != victim {
				union = append(union, p)
			}
		}
		union = append(union, extra...)
		nw2, err := Open(union, WithSeed(seed+4))
		if err != nil {
			t.Fatalf("seed %d: open union: %v", seed, err)
		}
		defer nw2.Close()
		rebuilt, err := nw2.Run(ctx, PipelineInit)
		if err != nil {
			t.Fatalf("seed %d: rebuild: %v", seed, err)
		}

		if got, want := grown.Tree.NumNodes, len(union); got != want {
			t.Fatalf("seed %d: grown tree spans %d nodes, union has %d", seed, got, want)
		}
		if got, want := grown.Tree.NumNodes, rebuilt.Tree.NumNodes; got != want {
			t.Fatalf("seed %d: grown spans %d nodes, rebuilt %d", seed, got, want)
		}
		for _, res := range []*Result{grown, rebuilt} {
			verifyCell(t, res, true)
		}
	}
}
