package sinr

import (
	"math"
	"math/rand"
	"testing"
)

func TestCAtSafePowerIsTwoBeta(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(1)), 4, 20)
	p := in.Params()
	for _, length := range []float64{1, 2, 5.5, 17} {
		c := in.C(length, p.SafePower(length))
		if math.Abs(c-2*p.Beta) > 1e-9 {
			t.Errorf("C(len=%v, safe) = %v, want %v", length, c, 2*p.Beta)
		}
	}
}

func TestCInfiniteBelowMinPower(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(2)), 4, 20)
	p := in.Params()
	if c := in.C(4, p.MinPower(4)*0.99); !math.IsInf(c, 1) {
		t.Errorf("C below min power = %v, want +Inf", c)
	}
	if c := in.C(4, p.MinPower(4)); !math.IsInf(c, 1) {
		t.Errorf("C at exactly min power = %v, want +Inf (zero slack)", c)
	}
}

func TestAffectanceOwnSenderZero(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(3)), 5, 30)
	l := Link{From: 0, To: 1}
	pu := in.Params().SafePower(in.Length(l))
	if a := in.Affectance(0, pu, l, pu); a != 0 {
		t.Errorf("affectance of own sender = %v, want 0", a)
	}
}

func TestAffectanceCapped(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(4)), 5, 30)
	p := in.Params()
	l := Link{From: 0, To: 1}
	pu := p.SafePower(in.Length(l))
	// A very powerful nearby interferer must be capped at 1+ε.
	a := in.Affectance(2, 1e18, l, pu)
	if math.Abs(a-(1+p.Epsilon)) > 1e-12 {
		t.Errorf("capped affectance = %v, want %v", a, 1+p.Epsilon)
	}
	// Co-located interferer (distance zero to receiver) is also capped.
	a = in.Affectance(1, pu, Link{From: 0, To: 1}, pu)
	if math.Abs(a-(1+p.Epsilon)) > 1e-12 {
		t.Errorf("co-located affectance = %v, want cap %v", a, 1+p.Epsilon)
	}
}

func TestAffectanceMonotoneInInterfererPower(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(5)), 6, 40)
	l := Link{From: 0, To: 1}
	pu := in.Params().SafePower(in.Length(l))
	prev := 0.0
	for _, pw := range []float64{0.1, 1, 10, 100} {
		a := in.Affectance(3, pw, l, pu)
		if a < prev-1e-12 {
			t.Fatalf("affectance not monotone in power: %v after %v", a, prev)
		}
		prev = a
	}
}

func TestAffectanceDecreasesWithInterfererDistance(t *testing.T) {
	// Place interferers on a line moving away from the receiver.
	in := MustInstance(pointsOnLine(0, 1, 3, 6, 12, 24), DefaultParams())
	l := Link{From: 0, To: 1} // length 1
	pu := in.Params().SafePower(1)
	pw := pu
	prev := math.Inf(1)
	for w := 2; w < in.Len(); w++ {
		a := in.Affectance(w, pw, l, pu)
		if a > prev+1e-12 {
			t.Fatalf("affectance increased with distance at node %d: %v > %v", w, a, prev)
		}
		prev = a
	}
}

func TestSINRSingleSenderNoInterference(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(6)), 4, 20)
	p := in.Params()
	l := Link{From: 0, To: 1}
	pw := p.SafePower(in.Length(l))
	got := in.SINR([]Tx{{Sender: 0, Power: pw}}, l)
	// SafePower for exactly this length gives SNR ≥ 2β (more if link is
	// shorter than the power class).
	if got < 2*p.Beta-1e-9 {
		t.Errorf("SINR = %v, want ≥ %v", got, 2*p.Beta)
	}
}

func TestSINRMissingSenderIsZero(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(7)), 4, 20)
	if got := in.SINR([]Tx{{Sender: 2, Power: 5}}, Link{From: 0, To: 1}); got != 0 {
		t.Errorf("SINR without sender = %v, want 0", got)
	}
}

// TestFeasibilityEquivalence verifies the paper's Section 5 claim that
// a_S(ℓ) ≤ 1 is exactly Eqn 1 (when powers keep c finite): the affectance
// formulation and the raw SINR check must agree on random node-disjoint
// link sets.
func TestFeasibilityEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(t, rng, 8, 15+rng.Float64()*60)
		// Four node-disjoint links: 0->1, 2->3, 4->5, 6->7.
		links := []Link{{From: 0, To: 1}, {From: 2, To: 3}, {From: 4, To: 5}, {From: 6, To: 7}}
		pa := NoiseSafeLinear(in.Params())
		powers := make([]float64, len(links))
		for i, l := range links {
			powers[i] = pa.Power(in, l)
		}
		bySINR, err := in.SINRFeasible(links, powers)
		if err != nil {
			t.Fatal(err)
		}
		byAff := in.Feasible(links, pa)
		if bySINR != byAff {
			t.Fatalf("trial %d: SINR says %v, affectance says %v", trial, bySINR, byAff)
		}
	}
}

func TestFeasibleSubsetClosed(t *testing.T) {
	// Feasibility is closed under taking subsets: removing links only
	// removes interference.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(t, rng, 8, 200)
		links := []Link{{From: 0, To: 1}, {From: 2, To: 3}, {From: 4, To: 5}, {From: 6, To: 7}}
		pa := NoiseSafeLinear(in.Params())
		if !in.Feasible(links, pa) {
			continue
		}
		for drop := range links {
			sub := make([]Link, 0, len(links)-1)
			for i, l := range links {
				if i != drop {
					sub = append(sub, l)
				}
			}
			if !in.Feasible(sub, pa) {
				t.Fatalf("trial %d: feasible set has infeasible subset (dropped %d)", trial, drop)
			}
		}
	}
}

func TestSINRFeasibleLengthMismatch(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(10)), 4, 20)
	if _, err := in.SINRFeasible([]Link{{From: 0, To: 1}}, nil); err == nil {
		t.Fatal("expected ErrMismatchedLengths")
	}
}

// TestDualityBounds verifies Claim 8.3: for noise-safe powers there is a
// constant γ₂ with γ₂·a^L_{ℓ'd}(ℓd) ≤ a^U_ℓ(ℓ') ≤ (1/γ₂)·a^L_{ℓ'd}(ℓd),
// provided neither side is threshold-capped. With c ∈ [β, 2β] the constant
// is γ₂ = 1/2.
func TestDualityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 400 && checked < 100; trial++ {
		in := randomInstance(t, rng, 4, 30+rng.Float64()*100)
		l := Link{From: 0, To: 1}
		other := Link{From: 2, To: 3}
		p := in.Params()
		maxLen := math.Max(in.Length(l), in.Length(other))
		uni := UniformFor(p, maxLen)
		lin := NoiseSafeLinear(p)

		aU := in.Affectance(l.From, uni.Power(in, l), other, uni.Power(in, other))
		ld, otherd := l.Dual(), other.Dual()
		aL := in.Affectance(otherd.From, lin.Power(in, otherd), ld, lin.Power(in, ld))

		cap_ := 1 + p.Epsilon
		if aU >= cap_-1e-9 || aL >= cap_-1e-9 || aU == 0 || aL == 0 {
			continue // thresholded or degenerate; claim applies to raw values
		}
		checked++
		// Under uniform power a^U_ℓ(ℓ') = c'·(len(ℓ')/d(u,v'))^α and the
		// dual-linear value differs only in the leading c constant, both of
		// which lie in [β, 2β] for noise-safe powers — except that uniform
		// power for the max length gives the shorter link extra headroom,
		// driving its c below 2β but never below β... the documented γ₂=1/2
		// bound still applies in one direction; check both with slack 2.05
		// to absorb the c(u,v) range [β, 2β].
		ratio := aU / aL
		if ratio < 1/2.05 || ratio > 2.05 {
			t.Fatalf("duality ratio out of range: aU=%v aL=%v ratio=%v", aU, aL, ratio)
		}
	}
	if checked < 20 {
		t.Fatalf("too few uncapped samples checked: %d", checked)
	}
}

func TestAvgAffectanceEmpty(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(12)), 4, 20)
	if got := in.AvgAffectance(nil, NoiseSafeLinear(in.Params())); got != 0 {
		t.Errorf("AvgAffectance(empty) = %v", got)
	}
}

func TestAmenabilityFZeroForLongerFirst(t *testing.T) {
	in := MustInstance(pointsOnLine(0, 10, 11, 12), DefaultParams())
	long := Link{From: 0, To: 1}  // length 10
	short := Link{From: 2, To: 3} // length 1
	uni := UniformFor(in.Params(), 10)
	lin := NoiseSafeLinear(in.Params())
	if f := in.AmenabilityF(long, short, uni, lin); f != 0 {
		t.Errorf("f(longer, shorter) = %v, want 0", f)
	}
	if f := in.AmenabilityF(short, long, uni, lin); f <= 0 {
		t.Errorf("f(shorter, longer) = %v, want > 0", f)
	}
}

func TestOutAffectanceMatchesManualSum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randomInstance(t, rng, 8, 40)
	l := Link{From: 0, To: 1}
	set := []Link{{From: 2, To: 3}, {From: 4, To: 5}, {From: 6, To: 7}}
	pa := NoiseSafeLinear(in.Params())
	want := 0.0
	for _, o := range set {
		want += in.Affectance(l.From, pa.Power(in, l), o, pa.Power(in, o))
	}
	if got := in.OutAffectance(l, set, pa); math.Abs(got-want) > 1e-12 {
		t.Errorf("OutAffectance = %v, want %v", got, want)
	}
}
