package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestGridWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(rng, 200, 50)
		cell := 1 + rng.Float64()*10
		g := NewGrid(pts, cell)
		q := Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		r := rng.Float64() * 30

		got := g.Within(q, r)
		sort.Ints(got)
		var want []int
		for i, p := range pts {
			if p.Dist(q) <= r+1e-12 {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Within returned %d points, brute force %d (cell=%v r=%v)",
				trial, len(got), len(want), cell, r)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: index mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
		if c := g.CountWithin(q, r); c != len(want) {
			t.Fatalf("trial %d: CountWithin = %d, want %d", trial, c, len(want))
		}
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid([]Point{{0, 0}}, 1)
	if got := g.Within(Point{0, 0}, -1); got != nil {
		t.Errorf("Within negative radius = %v, want nil", got)
	}
}

func TestGridNonPositiveCell(t *testing.T) {
	g := NewGrid([]Point{{0, 0}, {3, 0}}, 0)
	if got := g.CountWithin(Point{0, 0}, 5); got != 2 {
		t.Errorf("CountWithin = %d, want 2", got)
	}
}

func TestGridLen(t *testing.T) {
	g := NewGrid(make([]Point, 17), 2)
	if g.Len() != 17 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestNearestOtherMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(rng, 100, 40)
		g := NewGrid(pts, 2.5)
		self := rng.Intn(len(pts))
		gotIdx, gotD := g.NearestOther(pts[self], self)

		wantIdx, wantD := -1, math.Inf(1)
		for i, p := range pts {
			if i == self {
				continue
			}
			if d := p.Dist(pts[self]); d < wantD {
				wantD = d
				wantIdx = i
			}
		}
		if math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("trial %d: NearestOther dist = %v (idx %d), want %v (idx %d)",
				trial, gotD, gotIdx, wantD, wantIdx)
		}
	}
}

func TestNearestOtherSinglePoint(t *testing.T) {
	g := NewGrid([]Point{{1, 1}}, 1)
	idx, d := g.NearestOther(Point{1, 1}, 0)
	if idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("NearestOther on single point = %d, %v", idx, d)
	}
}

func TestGridDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 150, 30)
	g := NewGrid(pts, 3)
	a := g.Within(Point{15, 15}, 12)
	b := g.Within(Point{15, 15}, 12)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic result order")
		}
	}
}
