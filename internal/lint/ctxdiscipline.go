package lint

import (
	"go/ast"
	"strings"

	"sinrconn/internal/lint/analysis"
)

// CtxDiscipline enforces DESIGN.md §11.4: library packages must receive
// their context from the caller — context.Background()/TODO() belong in
// main functions, tests, and examples only — and exported entry points that
// take a context must take it first, so cancellation composes uniformly
// from the session API down to the slot loops.
var CtxDiscipline = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc:  "library packages take ctx from callers (no Background/TODO) and ctx params come first",
	Run:  runCtxDiscipline,
}

// ctxExemptPkg reports packages where minting a root context is the job:
// binaries, examples, and the experiment drivers' top-level main wiring.
func ctxExemptPkg(pkgPath, pkgName string) bool {
	return pkgName == "main" ||
		strings.HasPrefix(pkgPath, "sinrconn/cmd/") ||
		strings.Contains(pkgPath, "/examples/")
}

func runCtxDiscipline(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.PkgPath, "sinrconn") {
		return nil
	}
	for _, file := range pass.Files {
		if ctxExemptPkg(pass.PkgPath, file.Name.Name) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if name := pkgCall(pass, file, node, "context"); name == "Background" || name == "TODO" {
					pass.Reportf(node.Pos(), "context.%s() in a library package; accept a context.Context from the caller", name)
				}
			case *ast.FuncDecl:
				if !node.Name.IsExported() || node.Type.Params == nil {
					return true
				}
				pos := 0
				for _, field := range node.Type.Params.List {
					names := len(field.Names)
					if names == 0 {
						names = 1
					}
					if isContextType(pass, file, field.Type) && pos != 0 {
						pass.Reportf(field.Pos(), "%s: context.Context must be the first parameter", node.Name.Name)
					}
					pos += names
				}
			}
			return true
		})
	}
	return nil
}
