package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sinrconn/internal/lint/analysis"
)

// HotPathAnnotation is the magic doc comment marking a function as part of
// the per-slot fast path. Every annotated function must also be covered by
// a runtime AllocsPerRun gate — the meta-test in hotpath_cover_test.go
// keeps the two in lockstep.
const HotPathAnnotation = "sinr:hotpath"

// allocPkgs are packages whose call surface allocates essentially always
// (formatting buffers, boxed operands, error values).
var allocPkgs = []string{"fmt", "log", "errors"}

// HotPathAlloc enforces DESIGN.md §11.2: functions annotated //sinr:hotpath
// (the slot loops, the quadtree Accumulate/DFS, SINRFeasibleBuf, …) run
// millions of times per schedule and are pinned to 0 allocs/op by runtime
// tests; this analyzer rejects the allocation *sources* statically — heap
// composite literals, make/new, growing appends, closures, interface
// boxing, fmt — so a regression is caught at lint time, not bench time.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "//sinr:hotpath functions must not contain allocation sources",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHasAnnotation(fn, HotPathAnnotation) {
				continue
			}
			checkHotFunc(pass, file, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl) {
	params := paramObjs(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					pass.Reportf(node.Pos(), "hot path: &composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if isSliceOrMapLit(pass, node) {
				pass.Reportf(node.Pos(), "hot path: slice/map literal allocates; hoist it to a scratch structure")
			}
		case *ast.CallExpr:
			checkHotCall(pass, file, node, params)
		case *ast.FuncLit:
			pass.Reportf(node.Pos(), "hot path: closure allocates its captures; use a method or pass state explicitly")
		case *ast.GoStmt:
			pass.Reportf(node.Pos(), "hot path: go statement allocates a goroutine; dispatch outside the slot loop")
		case *ast.DeferStmt:
			pass.Reportf(node.Pos(), "hot path: defer has per-call overhead; unwind explicitly")
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringExpr(pass, node.X) {
				pass.Reportf(node.Pos(), "hot path: string concatenation allocates")
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, file *ast.File, call *ast.CallExpr, params map[types.Object]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if isBuiltin(pass, id) {
				pass.Reportf(call.Pos(), "hot path: %s allocates; reuse preallocated scratch", id.Name)
			}
			return
		case "append":
			if len(call.Args) > 0 && appendTargetGrows(pass, call.Args[0], params) {
				pass.Reportf(call.Pos(), "hot path: append to a local slice may grow; append into caller scratch (buf[:0]) or a field")
			}
			return
		}
	}
	for _, pkg := range allocPkgs {
		if name := pkgCall(pass, file, call, pkg); name != "" {
			pass.Reportf(call.Pos(), "hot path: %s.%s allocates", pkg, name)
			return
		}
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && atv.Type != nil {
				if _, argIface := atv.Type.Underlying().(*types.Interface); !argIface {
					pass.Reportf(call.Pos(), "hot path: conversion to interface boxes the value")
				}
			}
		}
	}
}

// appendTargetGrows reports whether the first append argument is a bare
// local variable (growth reallocates). Re-slicing expressions (buf[:0]),
// struct fields, indexed scratch, and caller-provided parameters are the
// sanctioned zero-alloc idioms and stay legal.
func appendTargetGrows(pass *analysis.Pass, target ast.Expr, params map[types.Object]bool) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := pass.TypesInfo.Uses[id]; ok && params[obj] {
		return false
	}
	return true
}

func paramObjs(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj, ok := pass.TypesInfo.Defs[name]; ok {
				out[obj] = true
			}
		}
	}
	return out
}

func isSliceOrMapLit(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	if tv, ok := pass.TypesInfo.Types[lit]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}
	switch t := lit.Type.(type) {
	case *ast.ArrayType:
		return t.Len == nil
	case *ast.MapType:
		return true
	}
	return false
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	if obj, ok := pass.TypesInfo.Uses[id]; ok {
		_, b := obj.(*types.Builtin)
		return b
	}
	return true // no type info: assume the spelling means the builtin
}

func isStringExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
