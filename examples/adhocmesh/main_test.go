package main

import (
	"io"
	"testing"
)

// TestRunSmoke compiles and runs the example end to end on a tiny mesh
// ("exit 0" = run returns nil).
func TestRunSmoke(t *testing.T) {
	if err := run(io.Discard, 14, 10, 20, 9); err != nil {
		t.Fatal(err)
	}
}
