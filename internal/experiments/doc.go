// Package experiments reproduces the paper's claims. The paper is pure
// theory — its "evaluation" is a set of theorems — so each experiment
// measures the quantity one theorem bounds, sweeps the driving parameter
// (n, or Δ via exponential chains), and checks the claimed *shape*: who
// wins, how quantities scale, where crossovers fall. EXPERIMENTS.md records
// paper-claim versus measured output for every table here; cmd/experiments
// regenerates them all.
package experiments
