package sinr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"sinrconn/internal/geom"
)

// pointsOnLine places points at the given x coordinates on the x axis.
func pointsOnLine(xs ...float64) []geom.Point {
	pts := make([]geom.Point, len(xs))
	for i, x := range xs {
		pts[i] = geom.Point{X: x}
	}
	return pts
}

func TestUniformPower(t *testing.T) {
	in := MustInstance(pointsOnLine(0, 1, 5), DefaultParams())
	u := Uniform{P: 42}
	if got := u.Power(in, Link{From: 0, To: 1}); got != 42 {
		t.Errorf("Power = %v", got)
	}
	if got := u.Power(in, Link{From: 0, To: 2}); got != 42 {
		t.Errorf("Power = %v (must not depend on link)", got)
	}
	if !strings.HasPrefix(u.Name(), "uniform") {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestUniformForOvercomesNoise(t *testing.T) {
	p := DefaultParams()
	in := MustInstance(pointsOnLine(0, 7), p)
	u := UniformFor(p, 7)
	l := Link{From: 0, To: 1}
	c := in.C(in.Length(l), u.Power(in, l))
	if c > 2*p.Beta+1e-9 {
		t.Errorf("c(u,v) = %v under UniformFor, want ≤ %v", c, 2*p.Beta)
	}
}

func TestLinearPowerScaling(t *testing.T) {
	p := DefaultParams()
	in := MustInstance(pointsOnLine(0, 2, 6), p)
	lin := Linear{Scale: 3}
	// P = 3·ℓ^α; ℓ = 2 → 3·8 = 24 for α = 3.
	if got := lin.Power(in, Link{From: 0, To: 1}); math.Abs(got-3*math.Pow(2, p.Alpha)) > 1e-9 {
		t.Errorf("linear power = %v", got)
	}
	// Received power at the link's own receiver is Scale, length-free.
	for _, l := range []Link{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}} {
		rp := lin.Power(in, l) / math.Pow(in.Length(l), p.Alpha)
		if math.Abs(rp-lin.Scale) > 1e-9 {
			t.Errorf("received power %v for link %v, want %v", rp, l, lin.Scale)
		}
	}
	if lin.Name() != "linear" {
		t.Errorf("Name = %q", lin.Name())
	}
}

func TestNoiseSafeLinearC(t *testing.T) {
	p := DefaultParams()
	in := MustInstance(pointsOnLine(0, 1, 4, 20), p)
	lin := NoiseSafeLinear(p)
	for _, l := range []Link{{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}} {
		c := in.C(in.Length(l), lin.Power(in, l))
		if math.Abs(c-2*p.Beta) > 1e-9 {
			t.Errorf("c = %v for link %v, want exactly 2β", c, l)
		}
	}
}

func TestMeanPowerScaling(t *testing.T) {
	p := DefaultParams()
	in := MustInstance(pointsOnLine(0, 4), p)
	m := Mean{Scale: 5}
	want := 5 * math.Pow(4, p.Alpha/2)
	if got := m.Power(in, Link{From: 0, To: 1}); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean power = %v, want %v", got, want)
	}
	if m.Name() != "mean" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestNoiseSafeMeanOvercomesNoiseAtAllLengths(t *testing.T) {
	p := DefaultParams()
	maxLen := 64.0
	in := MustInstance(pointsOnLine(0, 1, 8, 64), p)
	m := NoiseSafeMean(p, maxLen)
	for _, l := range []Link{{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}} {
		c := in.C(in.Length(l), m.Power(in, l))
		if c > 2*p.Beta+1e-9 {
			t.Errorf("c = %v for link %v under noise-safe mean, want ≤ 2β", c, l)
		}
	}
}

func TestNoiseSafeMeanClampsMaxLen(t *testing.T) {
	p := DefaultParams()
	a := NoiseSafeMean(p, 0.1)
	b := NoiseSafeMean(p, 1)
	if a.Scale != b.Scale {
		t.Errorf("maxLen below 1 not clamped: %v vs %v", a.Scale, b.Scale)
	}
}

func TestPerLinkTableAndFallback(t *testing.T) {
	p := DefaultParams()
	in := MustInstance(pointsOnLine(0, 1, 3), p)
	pl := NewPerLink(Uniform{P: 7})
	pl.Table[Link{From: 0, To: 1}] = 99
	if got := pl.Power(in, Link{From: 0, To: 1}); got != 99 {
		t.Errorf("table power = %v", got)
	}
	if got := pl.Power(in, Link{From: 0, To: 2}); got != 7 {
		t.Errorf("fallback power = %v", got)
	}
	bare := PerLink{Table: map[Link]float64{}}
	if got := bare.Power(in, Link{From: 0, To: 2}); got != 0 {
		t.Errorf("no-fallback power = %v, want 0", got)
	}
	if pl.Name() != "arbitrary" {
		t.Errorf("Name = %q", pl.Name())
	}
}

// TestMeanPowerRelativeAffectanceScaleInvariant verifies the design note in
// NoiseSafeMean: scaling all powers by a common factor does not change
// link-on-link affectance (as long as noise remains comfortably overcome),
// so the global Δ^(α/2) factor preserves the paper's mean-power analysis.
func TestMeanPowerRelativeAffectanceScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := randomInstance(t, rng, 6, 50)
	p := in.Params()
	l := Link{From: 0, To: 1}
	other := Link{From: 2, To: 3}
	big := NoiseSafeMean(p, 1024)
	bigger := Mean{Scale: big.Scale * 8}
	aBig := in.LinkAffectance(other, l, big)
	aBigger := in.LinkAffectance(other, l, bigger)
	// c(u,v) shrinks slightly with more power (less noise derating), so the
	// values agree only up to the c-range factor; both must be within
	// [β/2β, 2β/β] of each other when uncapped.
	if aBig == 0 || aBigger == 0 {
		t.Skip("degenerate sample")
	}
	if aBig >= 1+p.Epsilon-1e-9 || aBigger >= 1+p.Epsilon-1e-9 {
		t.Skip("capped sample")
	}
	ratio := aBig / aBigger
	if ratio < 0.49 || ratio > 2.05 {
		t.Errorf("scale invariance violated: ratio = %v", ratio)
	}
}

func BenchmarkSetAffectance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(b, rng, 200, 300)
	txs := make([]Tx, 100)
	for i := range txs {
		txs[i] = Tx{Sender: i, Power: 100}
	}
	l := Link{From: 150, To: 151}
	pu := in.Params().SafePower(in.Length(l))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.SetAffectance(txs, l, pu)
	}
}
