package sinr

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
)

func movePoints(t *testing.T, n int, seed int64) []geom.Point {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
	}
	return pts
}

// TestMoveToMatchesFreshInstance pins the mobility fast path: the gain table
// after a move must be bit-identical to one built from scratch over the
// post-move point set, for every entry — the copied unmoved block and the
// recomputed rows and columns alike.
func TestMoveToMatchesFreshInstance(t *testing.T) {
	for _, alpha := range []float64{2, 2.5, 3, 4} {
		pts := movePoints(t, 42, 11)
		p := DefaultParams()
		p.Alpha = alpha
		parent := MustInstance(pts, p)
		parent.GainTable() // force the build so MoveTo has a table to reuse

		moved := []int{3, 17, 40}
		to := []geom.Point{{X: 90, Y: 5}, {X: 91, Y: 50}, {X: 5, Y: 95}}
		got, err := parent.MoveTo(moved, to)
		if err != nil {
			t.Fatal(err)
		}
		fresh := append([]geom.Point(nil), pts...)
		for i, v := range moved {
			fresh[v] = to[i]
		}
		want := MustInstance(fresh, p)
		gt, wt := got.GainTable(), want.GainTable()
		if len(gt) != len(wt) {
			t.Fatalf("alpha %v: table sizes %d vs %d", alpha, len(gt), len(wt))
		}
		for i := range gt {
			if gt[i] != wt[i] {
				t.Fatalf("alpha %v: gain entry %d differs: %v vs %v", alpha, i, gt[i], wt[i])
			}
		}
		// The parent is untouched (moves derive, never mutate).
		if parent.Point(3) != pts[3] {
			t.Fatal("MoveTo mutated the parent instance")
		}
	}
}

func TestMoveToLazyParent(t *testing.T) {
	// A parent whose table was never built still moves correctly — the
	// result just computes its own table on demand.
	pts := movePoints(t, 20, 12)
	parent := MustInstance(pts, DefaultParams())
	got, err := parent.MoveTo([]int{4}, []geom.Point{{X: 200, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	fresh := append([]geom.Point(nil), pts...)
	fresh[4] = geom.Point{X: 200, Y: 0}
	want := MustInstance(fresh, DefaultParams())
	if g, w := got.Gain(4, 7), want.Gain(4, 7); g != w {
		t.Fatalf("lazy gain differs: %v vs %v", g, w)
	}
}

func TestMoveToValidation(t *testing.T) {
	parent := MustInstance(movePoints(t, 8, 13), DefaultParams())
	if _, err := parent.MoveTo([]int{1, 2}, []geom.Point{{}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := parent.MoveTo([]int{9}, []geom.Point{{}}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := parent.MoveTo([]int{2, 2}, []geom.Point{{}, {X: 1}}); err == nil {
		t.Fatal("duplicate mover accepted")
	}
}

// TestShrinkMatchesFreshInstance pins the compaction fast path: the shrunk
// table is the survivor-by-survivor minor of the old one, bit-identical to a
// fresh build over the surviving points.
func TestShrinkMatchesFreshInstance(t *testing.T) {
	pts := movePoints(t, 36, 14)
	p := DefaultParams()
	parent := MustInstance(pts, p)
	parent.GainTable()

	removed := []int{0, 7, 7, 19, 35} // duplicate on purpose
	got, oldToNew, err := parent.Shrink(removed)
	if err != nil {
		t.Fatal(err)
	}
	keep := SurvivorIndices(len(pts), removed)
	if got.Len() != len(keep) {
		t.Fatalf("shrunk to %d nodes, want %d", got.Len(), len(keep))
	}
	var fresh []geom.Point
	for _, v := range keep {
		fresh = append(fresh, pts[v])
	}
	want := MustInstance(fresh, p)
	gt, wt := got.GainTable(), want.GainTable()
	for i := range gt {
		if gt[i] != wt[i] {
			t.Fatalf("gain entry %d differs: %v vs %v", i, gt[i], wt[i])
		}
	}
	// Mapping round-trips.
	for j, v := range keep {
		if oldToNew[v] != j {
			t.Fatalf("oldToNew[%d] = %d, want %d", v, oldToNew[v], j)
		}
	}
	for _, r := range removed {
		if oldToNew[r] != -1 {
			t.Fatalf("removed node %d mapped to %d", r, oldToNew[r])
		}
	}
}

func TestShrinkValidation(t *testing.T) {
	parent := MustInstance(movePoints(t, 5, 15), DefaultParams())
	if _, _, err := parent.Shrink([]int{5}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, _, err := parent.Shrink([]int{0, 1, 2, 3, 4}); err == nil {
		t.Fatal("total removal accepted")
	}
}
