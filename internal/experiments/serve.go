package experiments

// E19 measures serving throughput against the result-cache geometry: a
// closed-loop load (internal/serve/loadgen) drives the daemon handler
// in-process over a fixed repeat-heavy keyspace while the deployment's
// cache capacity sweeps from thrashing (1 entry) to covering (keyspace),
// plus a TTL cell where every entry expires between arrivals. Hit rate is
// the capacity gauge — a memo hit is ~5×10⁴× cheaper than a rebuild
// (BENCH_api.json) — so throughput must climb with capacity and collapse
// when the TTL voids the cache.

import (
	"context"
	"fmt"

	"sinrconn/internal/churn"
	"sinrconn/internal/serve"
	"sinrconn/internal/serve/loadgen"
	"sinrconn/internal/stats"
)

// E19Serve sweeps cache capacity and TTL under closed-loop load.
func E19Serve(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E19",
		Title: "Serving throughput vs result-cache geometry",
		Claim: "serving: hit rate and throughput rise monotonically with cache capacity on a repeat-heavy trace, reach ≥90% hits once the cache covers the keyspace, and collapse when the TTL expires entries between arrivals",
		Table: stats.NewTable("cache", "ttl", "requests", "hit rate", "evict/req", "req/s", "p50 ms", "p99 ms"),
	}
	r.Pass = true
	n := cfg.Sizes[len(cfg.Sizes)-1]
	const keyspace = 8
	requests := 120 * cfg.Seeds

	type cell struct {
		name  string
		size  int
		ttlMs int64
	}
	cells := []cell{
		{"1", 1, 0},
		{"2", 2, 0},
		{"4", 4, 0},
		{"8=keys", keyspace, 0},
		{"8=keys", keyspace, 1}, // TTL voids every entry between arrivals
	}
	hitBySize := map[int]float64{}
	var ttlHit, coveredHit float64
	for _, c := range cells {
		var hits, misses, evict uint64
		var reqs int
		var rps, p50, p99 float64
		for s := 0; s < cfg.Seeds; s++ {
			srv := serve.New(serve.Config{Workers: cfg.Workers})
			report, err := loadgen.Run(ctx, loadgen.Config{
				Handler:    srv.Handler(),
				Clients:    8,
				Sessions:   8,
				Requests:   requests / cfg.Seeds,
				N:          n,
				Seed:       int64(s + 1),
				Arrival:    churn.ArrivalSpec{Rate: 500, Mix: churn.MixPoisson},
				Keyspace:   keyspace,
				CacheSize:  c.size,
				CacheTTLMs: c.ttlMs,
				Warmup:     true,
			})
			srv.Close()
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("cache=%s ttl=%dms seed %d: %v", c.name, c.ttlMs, s, err))
				r.Pass = false
				continue
			}
			hits += report.Hits
			misses += report.Misses
			evict += report.Evictions
			reqs += report.Requests
			rps += report.Throughput
			p50 += report.P50Ms
			p99 += report.P99Ms
		}
		k := float64(cfg.Seeds)
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		ttl := "∞"
		if c.ttlMs > 0 {
			ttl = fmt.Sprintf("%dms", c.ttlMs)
		}
		r.Table.AddRow(c.name, ttl, reqs,
			fmt.Sprintf("%.3f", hitRate),
			fmt.Sprintf("%.2f", float64(evict)/float64(reqs)),
			fmt.Sprintf("%.0f", rps/k),
			fmt.Sprintf("%.3f", p50/k),
			fmt.Sprintf("%.3f", p99/k))
		if c.ttlMs > 0 {
			ttlHit = hitRate
		} else {
			hitBySize[c.size] = hitRate
			if c.size == keyspace {
				coveredHit = hitRate
			}
		}
	}

	// Shape checks: monotone hit rate in capacity, ≥90% once covering,
	// TTL expiry collapses the hit rate well below the covered cell.
	prev := -1.0
	for _, size := range []int{1, 2, 4, keyspace} {
		h := hitBySize[size]
		if h < prev-0.05 {
			r.Notes = append(r.Notes, fmt.Sprintf("hit rate not monotone: capacity %d → %.3f after %.3f", size, h, prev))
			r.Pass = false
		}
		prev = h
	}
	if coveredHit < 0.90 {
		r.Notes = append(r.Notes, fmt.Sprintf("covering cache hit rate %.3f < 0.90", coveredHit))
		r.Pass = false
	}
	if ttlHit > coveredHit/2 {
		r.Notes = append(r.Notes, fmt.Sprintf("1ms TTL hit rate %.3f did not collapse (covered: %.3f)", ttlHit, coveredHit))
		r.Pass = false
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("n=%d, keyspace %d, 8 closed-loop clients at 500/s Poisson think time, %d requests per cell over %d seeds; every key warmed before measurement so cells differ only by eviction/expiry behavior", n, keyspace, requests, cfg.Seeds),
		"the TTL cell reuses the covering capacity: with 1ms TTL and ~2ms mean inter-arrival per key, effectively every lookup expires — throughput degrades to the compute path's rate")
	return r
}
