package churn

import (
	"math"

	"sinrconn/internal/geom"
)

// Damper implements spatial flap damping: when a region accumulates K
// failures within a sliding Window, it is quarantined for Cooldown time
// units. Regions are Radius-sized grid cells keyed by floor(p/Radius); a
// failure is charged to its own cell AND its eight neighbors, so a flapping
// disc straddling a cell boundary is still seen as one region. Quantization
// errs toward damping slightly more area than the literal failure disc —
// the conservative direction for stability.
//
// The damper is a pure state machine over explicit timestamps (no wall
// clock), so damped verdicts replay deterministically with the trace.
type Damper struct {
	k        int
	window   float64
	cooldown float64
	radius   float64
	cells    map[[2]int]*dampCell
}

type dampCell struct {
	times       []float64 // failure timestamps, pruned to the window
	dampedUntil float64
}

// NewDamper builds a damper; k ≤ 0 disables damping (every query reports
// undamped, records are no-ops).
func NewDamper(k int, window, cooldown, radius float64) *Damper {
	if radius <= 0 {
		radius = 4
	}
	return &Damper{
		k:        k,
		window:   window,
		cooldown: cooldown,
		radius:   radius,
		cells:    make(map[[2]int]*dampCell),
	}
}

func (d *Damper) key(p geom.Point) [2]int {
	return [2]int{int(math.Floor(p.X / d.radius)), int(math.Floor(p.Y / d.radius))}
}

// Record charges a failure at p at the given time to p's region, possibly
// tripping the quarantine.
func (d *Damper) Record(p geom.Point, now float64) {
	if d.k <= 0 {
		return
	}
	k := d.key(p)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			ck := [2]int{k[0] + dx, k[1] + dy}
			c := d.cells[ck]
			if c == nil {
				c = &dampCell{}
				d.cells[ck] = c
			}
			c.times = append(c.times, now)
			d.prune(c, now)
			if len(c.times) >= d.k {
				if until := now + d.cooldown; until > c.dampedUntil {
					c.dampedUntil = until
				}
				c.times = c.times[:0] // quarantine resets the counter
			}
		}
	}
}

func (d *Damper) prune(c *dampCell, now float64) {
	cut := 0
	for cut < len(c.times) && c.times[cut] < now-d.window {
		cut++
	}
	if cut > 0 {
		c.times = append(c.times[:0], c.times[cut:]...)
	}
}

// Damped reports whether p's region is quarantined at the given time.
func (d *Damper) Damped(p geom.Point, now float64) bool {
	if d.k <= 0 {
		return false
	}
	c := d.cells[d.key(p)]
	return c != nil && now < c.dampedUntil
}

// DampedAny reports whether any of the points is in a quarantined region.
func (d *Damper) DampedAny(pts []geom.Point, now float64) bool {
	for _, p := range pts {
		if d.Damped(p, now) {
			return true
		}
	}
	return false
}
