package sinrconn

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// RunSpec names one cell of a batch sweep: a pipeline plus its per-run
// overrides (seed, physical constants, drop probability, …).
type RunSpec struct {
	Pipeline Pipeline
	Opts     []RunOption
}

// Specs builds the cross product pipelines × seeds as a RunSpec slice —
// the common sweep shape (one point set, many parameterizations). extra
// options are appended to every spec.
func Specs(pipelines []Pipeline, seeds []int64, extra ...RunOption) []RunSpec {
	specs := make([]RunSpec, 0, len(pipelines)*len(seeds))
	for _, p := range pipelines {
		for _, seed := range seeds {
			opts := make([]RunOption, 0, len(extra)+1)
			opts = append(opts, WithSeed(seed))
			opts = append(opts, extra...)
			specs = append(specs, RunSpec{Pipeline: p, Opts: opts})
		}
	}
	return specs
}

// RunMatrix executes every spec against this handle with bounded
// concurrency (min(NumCPU, len(specs)) runs in flight). It is the batch
// substrate for sweeping one deployment across pipelines × seeds × physical
// parameters: all specs share the session's validated geometry, per-phys
// instances, memo, and worker pool — safe because instances are read-only
// after build and the pool is engine-agnostic.
//
// results[i] corresponds to specs[i]; a spec that fails leaves a nil entry
// and contributes a wrapped error to the joined error return (successful
// specs still return their results). ctx cancellation aborts in-flight
// runs between simulator slots and fails not-yet-started specs fast.
func (nw *Network) RunMatrix(ctx context.Context, specs []RunSpec) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	limit := runtime.NumCPU()
	if limit > len(specs) {
		limit = len(specs)
	}
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := nw.Run(ctx, specs[i].Pipeline, specs[i].Opts...)
			if err != nil {
				errs[i] = fmt.Errorf("sinrconn: spec %d (%s): %w", i, specs[i].Pipeline, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
