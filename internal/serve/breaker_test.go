package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"

	"sinrconn"
	"sinrconn/internal/faults"
)

// drainToProbe calls allow() until the half-open probe is offered,
// returning how many rejections it took.
func drainToProbe(t *testing.T, b *breaker) int {
	t.Helper()
	rejections := 0
	for i := 0; i < 1000; i++ {
		ok, probe, _ := b.allow()
		if probe {
			if !ok {
				t.Fatal("probe offered but not admitted")
			}
			return rejections
		}
		if ok {
			t.Fatalf("open breaker admitted a non-probe request after %d rejections", rejections)
		}
		rejections++
	}
	t.Fatal("no probe within 1000 rejections")
	return 0
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	settleGoroutines(t)
	b := newBreaker(3, 1)
	for i := 0; i < 2; i++ {
		if ok, _, _ := b.allow(); !ok {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		if b.record(breakerFailure) {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.allow()
	if !b.record(breakerFailure) {
		t.Fatal("breaker did not open at the threshold")
	}
	if ok, _, _ := b.allow(); ok {
		t.Fatal("open breaker admitted a request")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	settleGoroutines(t)
	b := newBreaker(3, 1)
	for _, o := range []breakerOutcome{breakerFailure, breakerFailure, breakerSuccess, breakerFailure, breakerFailure} {
		if b.record(o) {
			t.Fatal("breaker opened despite an interleaved success")
		}
	}
	if !b.record(breakerFailure) {
		t.Fatal("third consecutive failure after the reset did not open")
	}
}

func TestBreakerNeutralPreservesStreak(t *testing.T) {
	settleGoroutines(t)
	b := newBreaker(3, 1)
	// Neutral outcomes (cancels, validation errors) neither extend nor
	// reset the failure streak.
	b.record(breakerFailure)
	b.record(breakerFailure)
	b.record(breakerNeutral)
	if !b.record(breakerFailure) {
		t.Fatal("neutral outcome reset the consecutive-failure streak")
	}
}

func TestBreakerProbeClosesAndReopens(t *testing.T) {
	settleGoroutines(t)
	b := newBreaker(2, 42)
	open := func() {
		t.Helper()
		b.record(breakerFailure)
		if !b.record(breakerFailure) {
			t.Fatal("breaker did not open")
		}
	}
	open()
	ep1 := drainToProbe(t, b)
	if ep1 < breakerBaseBudget || ep1 >= 2*breakerBaseBudget {
		t.Fatalf("episode-1 rejections = %d, want in [%d, %d)", ep1, breakerBaseBudget, 2*breakerBaseBudget)
	}
	// While the probe is in flight, everything else stays rejected.
	if ok, probe, _ := b.allow(); ok || probe {
		t.Fatal("second request admitted while a probe is in flight")
	}
	// Probe failure reopens with a doubled (plus jitter) budget.
	if !b.record(breakerFailure) {
		t.Fatal("failed probe did not reopen the breaker")
	}
	ep2 := drainToProbe(t, b)
	if ep2 < 2*breakerBaseBudget || ep2 >= 3*breakerBaseBudget {
		t.Fatalf("episode-2 rejections = %d, want in [%d, %d)", ep2, 2*breakerBaseBudget, 3*breakerBaseBudget)
	}
	if ep2 <= ep1 {
		t.Fatalf("episode-2 budget %d not larger than episode-1 %d", ep2, ep1)
	}
	// A canceled probe releases the slot for the next request.
	b.record(breakerNeutral)
	if ok, probe, _ := b.allow(); !ok || !probe {
		t.Fatal("canceled probe did not release the half-open slot")
	}
	// Probe success closes; normal traffic resumes.
	if b.record(breakerSuccess) {
		t.Fatal("successful probe reported an opening")
	}
	if ok, probe, _ := b.allow(); !ok || probe {
		t.Fatal("closed breaker after successful probe did not admit plainly")
	}
}

// TestBreakerScriptedPlanReplay drives two identical breakers from the
// same scripted fault plan (churn.repair.fail at rate ½ deciding each
// operation's outcome) and requires bit-identical decision traces: the
// whole state machine — openings, rejection budgets, probes — is a pure
// function of (seed, outcome sequence), with no clock anywhere.
func TestBreakerScriptedPlanReplay(t *testing.T) {
	settleGoroutines(t)
	script := func() string {
		plan := faults.MustPlan(faults.Spec{Seed: 7, Rates: map[faults.Site]float64{
			faults.ChurnRepairFail: 0.5,
		}})
		b := newBreaker(2, 99)
		trace := ""
		for i := 0; i < 400; i++ {
			ok, probe, remaining := b.allow()
			trace += fmt.Sprintf("%v/%v/%d;", ok, probe, remaining)
			if !ok {
				continue
			}
			outcome := breakerSuccess
			if _, fired := plan.Fire(faults.ChurnRepairFail); fired {
				outcome = breakerFailure
			}
			trace += fmt.Sprintf("o%v;", b.record(outcome))
		}
		return trace
	}
	a, c := script(), script()
	if a != c {
		t.Fatal("identical seed + scripted plan produced diverging breaker traces")
	}
	if !containsOpen(a) {
		t.Fatal("rate-½ failure script never opened a threshold-2 breaker (script too tame to test anything)")
	}
}

func containsOpen(trace string) bool {
	for i := 0; i+4 < len(trace); i++ {
		if trace[i:i+5] == "otrue" {
			return true
		}
	}
	return false
}

func TestClassifyBreaker(t *testing.T) {
	settleGoroutines(t)
	cases := []struct {
		err  error
		want breakerOutcome
	}{
		{nil, breakerSuccess},
		{sinrconn.ErrRetryExhausted, breakerFailure},
		{fmt.Errorf("wrapped: %w", sinrconn.ErrRetryExhausted), breakerFailure},
		{context.DeadlineExceeded, breakerFailure},
		{context.Canceled, breakerNeutral},
		{errors.New("validation: no points"), breakerNeutral},
	}
	for _, tc := range cases {
		if got := classifyBreaker(tc.err); got != tc.want {
			t.Errorf("classifyBreaker(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestServeBreakerEndToEnd trips a session's breaker over HTTP: a
// deployment too large for its deadline keeps timing out, the breaker
// opens after the configured threshold, rejections carry the breaker
// shed marker, and a healthy session on the same server is untouched.
func TestServeBreakerEndToEnd(t *testing.T) {
	settleGoroutines(t)
	_, ts := testDaemon(t, Config{BreakerThreshold: 2, BreakerSeed: 5})
	sick := openSession(t, ts.URL, OpenRequest{Points: testPoints(21, 1024)})
	well := openSession(t, ts.URL, OpenRequest{Points: testPoints(22, 16)})

	sickURL := ts.URL + "/v1/sessions/" + sick.SessionID + "/run"
	for i := 0; i < 2; i++ {
		code, _ := postJSON(t, sickURL, RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: int64(i + 1)}, TimeoutMs: 1}, nil)
		if code != http.StatusGatewayTimeout {
			t.Fatalf("timed-out run %d: status %d, want 504", i, code)
		}
	}
	// The breaker is open now: the next request is rejected without
	// computing, tagged as a breaker shed.
	resp, err := http.Post(sickURL, "application/json",
		bytes.NewReader([]byte(`{"pipeline":"init-uniform"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run on tripped session: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(ShedHeader); got != "breaker" {
		t.Fatalf("shed header %q, want \"breaker\"", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker rejection missing Retry-After")
	}

	// The healthy session is unaffected: breakers are per-session.
	var run RunResponse
	code, body := postJSON(t, ts.URL+"/v1/sessions/"+well.SessionID+"/run",
		RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 1}}, &run)
	if code != http.StatusOK {
		t.Fatalf("healthy session run: status %d: %s", code, body)
	}

	var h Health
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(hr.Body).Decode(&h)
	hr.Body.Close()
	if h.Breaker == nil || h.Breaker.Opened != 1 || h.Breaker.Rejected == 0 {
		t.Fatalf("health breaker block = %+v, want opened=1 and rejections", h.Breaker)
	}
}
