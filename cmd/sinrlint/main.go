// Command sinrlint is the repo's invariant multichecker: it runs the five
// custom analyzers in internal/lint (oraclepurity, hotpathalloc,
// determinism, ctxdiscipline, errdiscipline) over the named package
// patterns and exits non-zero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/sinrlint ./...
//	go run ./cmd/sinrlint -list
//	go run ./cmd/sinrlint ./internal/oracle/ ./internal/core/
//
// Findings print as file:line:col: message (analyzer). A site may be
// exempted with an inline directive carrying a mandatory justification:
//
//	//lint:ignore <analyzer> <why this site is exempt>
//
// placed on the offending line or the line above. Unjustified or unused
// directives are themselves findings. See DESIGN.md §11 for the invariants.
package main

import (
	"flag"
	"fmt"
	"os"

	"sinrconn/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	dir := flag.String("C", ".", "module directory to lint")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(*dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sinrlint:", err)
		os.Exit(2)
	}
	if n := res.Print(os.Stdout); n > 0 {
		fmt.Fprintf(os.Stderr, "sinrlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
