package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"testing"

	"sinrconn"

	"sinrconn/internal/workload"
)

// TestServeDifferentialGate pins the daemon as a pure transport: for every
// generator in the scenario matrix, the daemon's run response must be
// BIT-IDENTICAL to encoding the result of the equivalent in-process
// Network.Run — same JSON bytes through the shared EncodeResult path. When
// the in-process run fails (e.g. legitimate ErrNotConverged on a seed),
// the daemon must fail the same way.
func TestServeDifferentialGate(t *testing.T) {
	specs := workload.Matrix()
	n := 36
	if testing.Short() {
		specs = specs[:3]
		n = 22
	}
	ctx := context.Background()
	_, ts := testDaemon(t, Config{})

	for si, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			seed := int64(501 + 100*si)
			rng := rand.New(rand.NewSource(seed))
			g := spec.Gen(rng, n)
			pts := make([]sinrconn.Point, len(g))
			wire := make([][2]float64, len(g))
			for i, p := range g {
				pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
				wire[i] = [2]float64{p.X, p.Y}
			}

			// In-process reference.
			nw, err := sinrconn.Open(pts, sinrconn.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()

			// Daemon session over the same deployment and options.
			sess := openSession(t, ts.URL, OpenRequest{Points: wire, Options: OptionsJSON{Seed: seed}})
			base := ts.URL + "/v1/sessions/" + sess.SessionID

			for _, p := range sinrconn.Pipelines() {
				runSeed := seed + int64(p)
				want, wantErr := nw.Run(ctx, p, sinrconn.WithSeed(runSeed))

				body, _ := json.Marshal(RunRequest{
					Pipeline:    p.String(),
					Options:     OptionsJSON{Seed: runSeed},
					IncludeTree: true,
				})
				resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()

				if wantErr != nil {
					// The daemon must refuse identically, not invent a result.
					if resp.StatusCode == http.StatusOK {
						t.Fatalf("%s: in-process failed (%v) but daemon returned 200", p, wantErr)
					}
					if errors.Is(wantErr, sinrconn.ErrNotConverged) && resp.StatusCode != http.StatusServiceUnavailable {
						t.Fatalf("%s: non-convergence mapped to %d, want 503", p, resp.StatusCode)
					}
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: daemon status %d (%s), in-process succeeded", p, resp.StatusCode, buf.String())
				}
				var got struct {
					Result json.RawMessage `json:"result"`
				}
				if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
					t.Fatal(err)
				}
				wantJSON, err := json.Marshal(EncodeResult(want, true))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bytes.TrimSpace(got.Result), wantJSON) {
					t.Fatalf("%s: daemon response diverges from in-process result\n daemon: %s\n inproc: %s",
						p, got.Result, wantJSON)
				}
			}
		})
	}
}

// TestServeDifferentialRunMatrix extends the gate to the batch endpoint:
// the daemon's runmatrix must encode exactly the results of the in-process
// RunMatrix over the same specs.
func TestServeDifferentialRunMatrix(t *testing.T) {
	ctx := context.Background()
	_, ts := testDaemon(t, Config{})

	seed := int64(91)
	g := workload.UniformSeeded(seed, 30)
	pts := make([]sinrconn.Point, len(g))
	wire := make([][2]float64, len(g))
	for i, p := range g {
		pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
		wire[i] = [2]float64{p.X, p.Y}
	}
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var specs []sinrconn.RunSpec
	var req MatrixRequest
	for _, p := range sinrconn.Pipelines() {
		rs := seed + 10 + int64(p)
		specs = append(specs, sinrconn.RunSpec{Pipeline: p, Opts: []sinrconn.RunOption{sinrconn.WithSeed(rs)}})
		req.Specs = append(req.Specs, struct {
			Pipeline string      `json:"pipeline"`
			Options  OptionsJSON `json:"options,omitzero"`
		}{Pipeline: p.String(), Options: OptionsJSON{Seed: rs}})
	}
	req.IncludeTree = true
	want, wantErr := nw.RunMatrix(ctx, specs)

	sess := openSession(t, ts.URL, OpenRequest{Points: wire, Options: OptionsJSON{Seed: seed}})
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sess.SessionID+"/runmatrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if len(got.Results) != len(want) {
		t.Fatalf("daemon returned %d results, in-process %d", len(got.Results), len(want))
	}
	for i, res := range want {
		if res == nil {
			// This spec failed in-process (wantErr explains); the daemon
			// must report null for the same slot.
			if string(bytes.TrimSpace(got.Results[i])) != "null" {
				t.Fatalf("spec %d: in-process failed (%v) but daemon returned %s", i, wantErr, got.Results[i])
			}
			continue
		}
		wantJSON, err := json.Marshal(EncodeResult(res, true))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(got.Results[i]), wantJSON) {
			t.Fatalf("spec %d diverges\n daemon: %s\n inproc: %s", i, got.Results[i], wantJSON)
		}
	}
}

// TestServeDifferentialJoinRepair extends the gate to the dynamic
// endpoints: daemon join and repair responses must match the in-process
// Join/Repair on the same base result.
func TestServeDifferentialJoinRepair(t *testing.T) {
	ctx := context.Background()
	_, ts := testDaemon(t, Config{})

	seed := int64(17)
	g := workload.UniformSeeded(seed, 26)
	pts := make([]sinrconn.Point, len(g))
	wire := make([][2]float64, len(g))
	for i, p := range g {
		pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
		wire[i] = [2]float64{p.X, p.Y}
	}
	joinPts := [][2]float64{{50, 50}, {51.5, 50.5}}
	joinPoints := []sinrconn.Point{{X: 50, Y: 50}, {X: 51.5, Y: 50.5}}

	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	base, err := nw.Run(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	joined, err := nw.Join(ctx, base, joinPoints, sinrconn.WithSeed(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := joined.Network().Repair(ctx, joined, []int{2}, sinrconn.WithSeed(seed+2))
	if err != nil {
		t.Fatal(err)
	}

	sess := openSession(t, ts.URL, OpenRequest{Points: wire, Options: OptionsJSON{Seed: seed}})
	sbase := ts.URL + "/v1/sessions/" + sess.SessionID
	var run RunResponse
	code, body := postJSON(t, sbase+"/run", RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: seed}}, &run)
	if code != http.StatusOK {
		t.Fatalf("run: %d: %s", code, body)
	}

	check := func(name string, gotRaw []byte, want *sinrconn.Result) {
		t.Helper()
		var got struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(gotRaw, &got); err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(EncodeResult(want, true))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(got.Result), wantJSON) {
			t.Fatalf("%s diverges\n daemon: %s\n inproc: %s", name, got.Result, wantJSON)
		}
	}

	var dJoin RunResponse
	code, body = postJSON(t, sbase+"/join", JoinRequest{
		ResultID: run.ResultID, Points: joinPts,
		Options: OptionsJSON{Seed: seed + 1}, IncludeTree: true,
	}, &dJoin)
	if code != http.StatusOK {
		t.Fatalf("join: %d: %s", code, body)
	}
	check("join", body, joined)

	_, body = postJSON(t, sbase+"/repair", RepairRequest{
		ResultID: dJoin.ResultID, Failed: []int{2},
		Options: OptionsJSON{Seed: seed + 2}, IncludeTree: true,
	}, nil)
	check("repair", body, repaired)
}

// TestServeDifferentialChurn pins the churn endpoint against the
// in-process Network.Churn on the same deterministic trace.
func TestServeDifferentialChurn(t *testing.T) {
	ctx := context.Background()
	_, ts := testDaemon(t, Config{})

	seed := int64(29)
	g := workload.UniformSeeded(seed, 24)
	pts := make([]sinrconn.Point, len(g))
	wire := make([][2]float64, len(g))
	for i, p := range g {
		pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
		wire[i] = [2]float64{p.X, p.Y}
	}
	spec := sinrconn.TraceSpec{Seed: 7, Events: 5, JoinRate: 1, FailRate: 1}

	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	want, err := nw.Churn(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	sess := openSession(t, ts.URL, OpenRequest{Points: wire, Options: OptionsJSON{Seed: seed}})
	var got ChurnResponse
	code, body := postJSON(t, ts.URL+"/v1/sessions/"+sess.SessionID+"/churn", ChurnRequest{
		Seed: 7, Events: 5, JoinRate: 1, FailRate: 1, IncludeTree: true,
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("churn: %d: %s", code, body)
	}
	if got.Stats != want.Stats {
		t.Fatalf("churn stats diverge\n daemon: %+v\n inproc: %+v", got.Stats, want.Stats)
	}
	wantJSON, _ := json.Marshal(EncodeResult(want.Final, true))
	gotJSON, _ := json.Marshal(got.Result)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("churn final diverges\n daemon: %s\n inproc: %s", gotJSON, wantJSON)
	}
}
