package sim

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

// fixedProto transmits every slot (transmitters) or listens (everyone else)
// without allocating, so engine-side allocations are directly observable.
type fixedProto struct {
	id       int
	transmit bool
	power    float64
}

func (p *fixedProto) Step(slot int, inbox []Delivery) Action {
	if p.transmit {
		return Transmit(p.power, Message{Kind: KindBroadcast, From: p.id, To: NoAddressee})
	}
	return Listen()
}

func allocTestEngine(t *testing.T, n, workers int, drop float64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: float64(i%16)*2 + rng.Float64(),
			Y: float64(i/16)*2 + rng.Float64(),
		}
	}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	power := in.Params().SafePower(4)
	procs := make([]Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &fixedProto{id: i, transmit: i%4 == 0, power: power}
	}
	e, err := NewEngine(in, procs, Config{Workers: workers, DropProb: drop, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSlotLoopZeroAlloc asserts the steady-state slot loop performs zero
// allocations per Step, in both the serial path and the worker-pool path
// (and with drop injection active, which exercises dropCoin).
func TestSlotLoopZeroAlloc(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		drop    float64
	}{
		{"serial", 1, 0},
		{"pool", 4, 0},
		{"serial_drop", 1, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := allocTestEngine(t, 128, tc.workers, tc.drop)
			defer e.Close()
			// Warm to steady state: inbox buffers reach capacity, the pool
			// (if any) finishes spinning up.
			e.Run(8)
			allocs := testing.AllocsPerRun(50, func() { e.Step() })
			if allocs != 0 {
				t.Fatalf("steady-state Step allocates %.1f times/op, want 0", allocs)
			}
		})
	}
}

// TestPoolMatchesSerial asserts worker-pool execution is bit-identical to
// serial execution — the determinism-for-a-fixed-Seed contract.
func TestPoolMatchesSerial(t *testing.T) {
	run := func(workers int) Stats {
		e := allocTestEngine(t, 128, workers, 0.15)
		defer e.Close()
		e.Run(40)
		return e.Stats()
	}
	serial, pooled := run(1), run(4)
	if serial != pooled {
		t.Fatalf("worker count changed results: serial %+v pooled %+v", serial, pooled)
	}
}
