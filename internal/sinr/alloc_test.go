package sinr_test

import (
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

// allocFixture builds a well-spread grid instance and a small concurrent
// link set for the steady-state allocation gates below.
func allocFixture(t *testing.T) (*sinr.Instance, []sinr.Link, []float64) {
	t.Helper()
	pts := make([]geom.Point, 0, 64)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			pts = append(pts, geom.Point{X: float64(i) * 16, Y: float64(j) * 16})
		}
	}
	p := sinr.DefaultParams()
	in, err := sinr.NewInstance(pts, p)
	if err != nil {
		t.Fatal(err)
	}
	links := []sinr.Link{{From: 0, To: 1}, {From: 26, To: 27}, {From: 52, To: 53}}
	powers := make([]float64, len(links))
	for i, l := range links {
		powers[i] = p.SafePower(in.Dist(l.From, l.To)) * 4
	}
	return in, links, powers
}

// TestSINRFeasibleBufZeroAlloc pins the //sinr:hotpath contract of
// Instance.SINRFeasibleBuf: with a caller scratch of sufficient capacity,
// the steady state allocates nothing. The warm-up call absorbs the lazy
// gain-table build and any first-use scratch growth.
func TestSINRFeasibleBufZeroAlloc(t *testing.T) {
	in, links, powers := allocFixture(t)
	scratch := make([]sinr.Tx, len(links))
	var callErr error
	if _, callErr = in.SINRFeasibleBuf(links, powers, scratch); callErr != nil {
		t.Fatal(callErr)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, callErr = in.SINRFeasibleBuf(links, powers, scratch)
	})
	if callErr != nil {
		t.Fatal(callErr)
	}
	if allocs != 0 {
		t.Fatalf("SINRFeasibleBuf allocates %.1f times/op with warm scratch, want 0", allocs)
	}
}

// TestSINRFeasibleFarBufZeroAlloc pins the //sinr:hotpath contract of the
// far-field feasibility path — Instance.SINRFeasibleFarBuf and, through it,
// Accumulate and LinkSINR of both resolver kinds: flat grid (FarScratch)
// and quadtree (QuadScratch).
func TestSINRFeasibleFarBufZeroAlloc(t *testing.T) {
	in, links, powers := allocFixture(t)
	f, err := in.FarField(0.05)
	if err != nil {
		t.Fatal(err)
	}
	q, err := in.QuadTree(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    sinr.Far
		sc   sinr.FarResolver
	}{
		{"grid", f, f.NewScratch()},
		{"quadtree", q, q.NewResolver()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scratch := make([]sinr.Tx, len(links))
			var callErr error
			if _, callErr = in.SINRFeasibleFarBuf(links, powers, tc.f, scratch, tc.sc); callErr != nil {
				t.Fatal(callErr)
			}
			allocs := testing.AllocsPerRun(100, func() {
				_, callErr = in.SINRFeasibleFarBuf(links, powers, tc.f, scratch, tc.sc)
			})
			if callErr != nil {
				t.Fatal(callErr)
			}
			if allocs != 0 {
				t.Fatalf("SINRFeasibleFarBuf/%s allocates %.1f times/op with warm scratch, want 0", tc.name, allocs)
			}
		})
	}
}
