package serve

// Admission control (DESIGN.md §13.4): a bounded concurrency limiter
// with deadline-aware queueing. At most MaxConcurrent operation
// requests execute at once; excess requests queue up to MaxQueue deep.
// A request is shed with 503 + Retry-After — before consuming any
// compute — when the queue is full or when its projected wait (queue
// position × EWMA service time / capacity) already exceeds its
// deadline, because admitting it would burn a worker on an answer the
// client will never read.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Shed-related headers. TimeoutHeader is how a client declares its
// deadline to the admission layer (the body's timeout_ms is not yet
// parsed when admission runs); RetryAfterMsHeader mirrors Retry-After
// with millisecond precision; ShedHeader carries the shed reason
// ("queue_full", "deadline", or "breaker").
const (
	TimeoutHeader      = "X-Sinrconn-Timeout-Ms"
	RetryAfterMsHeader = "X-Sinrconn-Retry-After-Ms"
	ShedHeader         = "X-Sinrconn-Shed"
)

// limiter is the admission-control state. All counters are cumulative.
type limiter struct {
	capacity int
	queueCap int
	sem      chan struct{}

	running atomic.Int64
	queued  atomic.Int64

	admitted      atomic.Uint64
	shedQueueFull atomic.Uint64
	shedDeadline  atomic.Uint64
	waitCanceled  atomic.Uint64

	mu     sync.Mutex
	ewmaNs float64 // EWMA of observed service time, ns
}

// limiterEWMAAlpha weights the newest service-time sample; ~1/alpha
// recent requests dominate the estimate.
const limiterEWMAAlpha = 0.2

// limiterDefaultServiceTime seeds the wait projection before any
// request has completed.
const limiterDefaultServiceTime = 25 * time.Millisecond

func newLimiter(capacity, queueCap int) *limiter {
	l := &limiter{capacity: capacity, queueCap: queueCap, sem: make(chan struct{}, capacity)}
	for i := 0; i < capacity; i++ {
		l.sem <- struct{}{}
	}
	return l
}

// serviceTime returns the current mean service-time estimate.
func (l *limiter) serviceTime() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ewmaNs == 0 {
		return limiterDefaultServiceTime
	}
	return time.Duration(l.ewmaNs)
}

// observe folds one completed request's service time into the EWMA.
func (l *limiter) observe(d time.Duration) {
	l.mu.Lock()
	if l.ewmaNs == 0 {
		l.ewmaNs = float64(d)
	} else {
		l.ewmaNs = (1-limiterEWMAAlpha)*l.ewmaNs + limiterEWMAAlpha*float64(d)
	}
	l.mu.Unlock()
}

// projectedWait estimates how long a request entering the queue behind
// q waiters will wait for a slot: every `capacity` departures admit
// one queue layer, each layer taking one mean service time.
func (l *limiter) projectedWait(q int64) time.Duration {
	layers := math.Ceil(float64(q+1) / float64(l.capacity))
	return time.Duration(layers * float64(l.serviceTime()))
}

// shedError is the 503 the limiter returns; writeShed renders it with
// Retry-After.
type shedError struct {
	reason     string // "queue_full" | "deadline"
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("overloaded (%s), retry in %v", e.reason, e.retryAfter)
}

// acquire admits the request or sheds it. deadline ≤ 0 means the
// client declared none (only the queue bound applies). The returned
// release frees the slot and must be called exactly once after the
// request finishes. done is the request's cancellation channel; a
// cancel while queued abandons the wait.
func (l *limiter) acquire(done <-chan struct{}, deadline time.Duration) (release func(), err error) {
	start := time.Now()
	admit := func() func() {
		l.running.Add(1)
		l.admitted.Add(1)
		return func() {
			l.observe(time.Since(start))
			l.running.Add(-1)
			l.sem <- struct{}{}
		}
	}
	// Fast path: a slot is free.
	select {
	case <-l.sem:
		return admit(), nil
	default:
	}
	q := l.queued.Load()
	if l.queueCap > 0 && q >= int64(l.queueCap) {
		l.shedQueueFull.Add(1)
		return nil, &shedError{reason: "queue_full", retryAfter: l.projectedWait(q)}
	}
	if wait := l.projectedWait(q); deadline > 0 && wait > deadline {
		l.shedDeadline.Add(1)
		return nil, &shedError{reason: "deadline", retryAfter: wait}
	}
	l.queued.Add(1)
	defer l.queued.Add(-1)
	select {
	case <-l.sem:
		return admit(), nil
	case <-done:
		l.waitCanceled.Add(1)
		return nil, &shedError{reason: "wait_canceled", retryAfter: l.projectedWait(l.queued.Load())}
	}
}

// admit wraps an operation handler with admission control. With no
// limiter configured it is the identity. The declared deadline comes
// from the TimeoutHeader when present, clamped exactly like the body's
// timeout_ms; absent, the server defaults apply.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		var ms int64
		fmt.Sscanf(r.Header.Get(TimeoutHeader), "%d", &ms)
		deadline := timeout(ms, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
		release, err := s.limiter.acquire(r.Context().Done(), deadline)
		if err != nil {
			s.writeShed(w, err.(*shedError))
			return
		}
		defer release()
		h(w, r)
	}
}

// writeShed renders a limiter rejection: 503, Retry-After in whole
// seconds (rounded up, minimum 1 — the header has no sub-second form),
// the millisecond-precision mirror, and the shed reason.
func (s *Server) writeShed(w http.ResponseWriter, e *shedError) {
	retry := e.retryAfter
	secs := int64(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	w.Header().Set(RetryAfterMsHeader, fmt.Sprintf("%d", retry.Milliseconds()))
	w.Header().Set(ShedHeader, e.reason)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(ErrorJSON{Error: e.Error()})
}
