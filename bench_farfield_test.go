package sinrconn

// BenchmarkFarField measures one simulator slot under the tile-based
// far-field approximation against the exact kernel at production scales —
// the regime past the gain table's 256 MiB bound (n ≈ 5792), where exact
// resolution recomputes O(n²) path losses per slot. Half the nodes transmit
// each slot (the densest decode load: listeners × senders is maximized), so
// a slot at n = 65536 resolves ~10⁹ exact pair interactions; the far-field
// plan collapses the distant ones to per-tile centroid lookups within the
// configured error bound.
//
// Headline numbers are recorded in BENCH_farfield.json. The companion
// TestFarFieldMeasuredError pins the *measured* approximation error of this
// very scenario against the certified bound, oracle-verified.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/oracle"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// farBenchSpacing reproduces the 0.15 points-per-unit-area density the
// physics benchmarks use (1/2.6² ≈ 0.148), on the O(n) jittered grid so
// instance generation stays negligible at n = 65536.
const farBenchSpacing = 2.6

func farBenchInstance(n int) *sinr.Instance {
	rng := rand.New(rand.NewSource(int64(n)))
	pts := workload.JitteredGrid(rng, n, farBenchSpacing, 0.8)
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

func farBenchEngine(b *testing.B, in *sinr.Instance, eps float64) *sim.Engine {
	b.Helper()
	n := in.Len()
	power := in.Params().SafePower(4)
	procs := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		procs[i] = &physProto{id: i, transmit: i%2 == 0, power: power}
	}
	cfg := sim.Config{}
	if eps > 0 {
		f, err := in.FarField(eps)
		if err != nil {
			b.Fatal(err)
		}
		cfg.FarField = f
	}
	eng, err := sim.NewEngine(in, procs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// TestFarFieldMeasuredError measures the actual approximation error of the
// exact benchmark scenario, oracle-verified: at sampled listeners, the
// far-field channel resolution (winner SINR, Resolve path — exactly what
// BenchmarkFarField times) is compared against the naive exact physics.
// The measured maximum must stay within the certified bound; the observed
// values (orders of magnitude below it — worst-case geometry assumes every
// far sender at its tile's nearest corner) are recorded in
// BENCH_farfield.json.
func TestFarFieldMeasuredError(t *testing.T) {
	n := 4096
	if testing.Short() {
		n = 1024
	}
	in := farBenchInstance(n)
	pts := in.Points()
	p := in.Params()
	power := p.SafePower(4)
	txs := make([]sinr.Tx, 0, n/2)
	for i := 0; i < n; i += 2 {
		txs = append(txs, sinr.Tx{Sender: i, Power: power})
	}
	rng := rand.New(rand.NewSource(9))
	for _, eps := range []float64{0.5, 1.0, 2.5} {
		f, err := in.FarField(eps)
		if err != nil {
			t.Fatal(err)
		}
		sc := f.NewScratch()
		f.Accumulate(txs, sc)
		maxErr := 0.0
		for probe := 0; probe < 60; probe++ {
			v := rng.Intn(n)/2*2 + 1 // listeners are the odd indices
			if v >= n {
				continue
			}
			best, bestRP, total, sat := f.Resolve(v, txs, sc)
			if sat || best < 0 {
				continue
			}
			exactTotal, exactBestRP := 0.0, 0.0
			for _, tx := range txs {
				rp := tx.Power / oracle.PathLoss(oracle.Dist(pts, tx.Sender, v), p.Alpha)
				exactTotal += rp
				if rp > exactBestRP {
					exactBestRP = rp
				}
			}
			far := bestRP / (p.Noise + (total - bestRP))
			exact := exactBestRP / (p.Noise + (exactTotal - exactBestRP))
			// The certificate normalizes by the approximate value: exact
			// lies in [far·(1−ε), far·(1+ε)] (DESIGN.md §7). Gate on that;
			// report the conventional |far−exact|/exact, which coincides at
			// these magnitudes.
			if e := math.Abs(exact-far) / far; e > maxErr {
				maxErr = e
			}
		}
		if ce := f.CertifiedMaxRelError(); maxErr > ce {
			t.Fatalf("eps %v: measured max SINR error %v exceeds certified bound %v", eps, maxErr, ce)
		}
		t.Logf("n=%d eps=%v (k=%d, certified %.3f): measured max relative SINR error %.2e",
			n, eps, f.K(), f.CertifiedMaxRelError(), maxErr)
	}
}

// BenchmarkFarField sweeps n × ε (ε = 0 is the exact baseline). The
// speedup acceptance lives at n = 16384: far-field Step must beat exact by
// ≥ 5× at the recorded ε.
func BenchmarkFarField(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536} {
		in := farBenchInstance(n)
		for _, eps := range []float64{0, 0.5, 1.0, 2.5} {
			name := fmt.Sprintf("n=%d/exact", n)
			if eps > 0 {
				name = fmt.Sprintf("n=%d/eps=%v", n, eps)
			}
			b.Run(name, func(b *testing.B) {
				eng := farBenchEngine(b, in, eps)
				defer eng.Close()
				eng.Run(2)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Step()
				}
				if eng.Stats().Deliveries < 0 {
					b.Fatal("impossible")
				}
			})
		}
	}
}
