package experiments

import "testing"

func TestA1BroadcastProb(t *testing.T) {
	runAndCheck(t, A1BroadcastProb(t.Context(), Quick()), 4)
}

func TestA2SlotPairsPerRound(t *testing.T) {
	runAndCheck(t, A2SlotPairsPerRound(t.Context(), Quick()), 4)
}

func TestA3DistrCapTau(t *testing.T) {
	runAndCheck(t, A3DistrCapTau(t.Context(), Quick()), 4)
}

func TestA4DegreeCap(t *testing.T) {
	runAndCheck(t, A4DegreeCap(t.Context(), Quick()), 4)
}

func TestA5DropRobustness(t *testing.T) {
	runAndCheck(t, A5DropRobustness(t.Context(), Quick()), 4)
}

func TestAblationsSuite(t *testing.T) {
	reps := Ablations(t.Context(), Quick())
	if len(reps) != 5 {
		t.Fatalf("suite size = %d", len(reps))
	}
	for _, rep := range reps {
		if rep.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", rep.ID)
		}
	}
}
