package phys

import (
	"errors"
	"fmt"
)

// Params holds the physical-layer constants of the SINR model.
//
//	Reception (Eqn 1):  P_u/d(u,v)^α  ≥  β·(N + Σ_w P_w/d(w,v)^α)
type Params struct {
	// Alpha is the path-loss exponent α ≥ 2. The paper's asymptotic bounds
	// assume α > 2, but the physics of Eqn 1 is well-defined on finite
	// instances at the free-space boundary α = 2, which the scenario matrix
	// exercises.
	Alpha float64
	// Beta is the required SINR threshold β. Values ≥ 1 guarantee that at
	// most one sender is decodable at any receiver in any slot.
	Beta float64
	// Noise is the ambient noise N > 0.
	Noise float64
	// Epsilon is the affectance cap constant ε of Section 5 ("some
	// arbitrary fixed constant, say 0.1").
	Epsilon float64
}

// DefaultParams returns the physical constants used throughout the
// experiments: α = 3 (typical outdoor path loss), β = 1.5, N = 1, ε = 0.1.
func DefaultParams() Params {
	return Params{Alpha: 3, Beta: 1.5, Noise: 1, Epsilon: 0.1}
}

// Validate reports whether the parameters define a sane SINR model.
func (p Params) Validate() error {
	switch {
	case !(p.Alpha >= 2):
		return fmt.Errorf("sinr: alpha must be ≥ 2, got %v", p.Alpha)
	case !(p.Beta > 0):
		return fmt.Errorf("sinr: beta must be > 0, got %v", p.Beta)
	case !(p.Noise > 0):
		return fmt.Errorf("sinr: noise must be > 0, got %v", p.Noise)
	case !(p.Epsilon > 0):
		return fmt.Errorf("sinr: epsilon must be > 0, got %v", p.Epsilon)
	}
	return nil
}

// MinPower returns the minimum transmission power that lets a link of the
// given length meet SINR β against noise alone (with zero slack).
func (p Params) MinPower(length float64) float64 {
	return p.Beta * p.Noise * PowAlpha(length, p.Alpha)
}

// SafePower returns the power 2βN·ℓ^α that guarantees c(u,v) ≤ 2β for a link
// of length ℓ (Section 5's requirement that links comfortably overcome
// noise). The Init protocol uses SafePower(2^r) in round r.
func (p Params) SafePower(length float64) float64 {
	return 2 * p.MinPower(length)
}

// ErrMismatchedLengths reports a links/powers length mismatch in a bulk API.
var ErrMismatchedLengths = errors.New("sinr: links and powers have different lengths")

// ErrDuplicateSender reports a link set with two links sharing a sender in
// a far-field bulk API, which the tiled aggregation cannot express (the
// exact APIs sum duplicates fine).
var ErrDuplicateSender = errors.New("sinr: far-field link set has two links with the same sender")

// Link is a directed communication request from node From (the sender) to
// node To (the receiver), identified by point indices into an Instance.
type Link struct {
	From, To int
}

// Dual returns the link in the opposite direction, following the
// terminology of Kesselheim & Vöcking (DISC 2010) adopted by the paper.
func (l Link) Dual() Link { return Link{From: l.To, To: l.From} }

// String renders the link as "u->v".
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Tx is one concurrent transmission: node Sender transmitting with the given
// power. Slices of Tx describe the sender set S of Eqn 1.
type Tx struct {
	Sender int
	Power  float64
}
