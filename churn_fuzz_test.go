package sinrconn

// FuzzChurn: random traces against the rebuild oracle. The fuzzer mutates
// the trace's seed, length, rate mix, and mobility model; every run
// executes with the per-event invariant audit ON, and every successful
// run must admit a clean from-scratch rebuild over its final survivors.
// Errors are only acceptable when they are the engine's own typed,
// deliberate refusals — an audit failure (invariant violation) or an
// untyped error is a finding.

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func sanitizeRate(r float64) float64 {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return math.Min(math.Abs(r), 8)
}

func FuzzChurn(f *testing.F) {
	f.Add(int64(7), 20, 1.0, 1.2, 0.25, 0.5, 1.0, uint8(1))
	f.Add(int64(42), 30, 0.0, 2.0, 0.5, 0.0, 0.0, uint8(0))
	f.Add(int64(3), 15, 2.0, 0.3, 0.0, 0.3, 2.0, uint8(2))
	f.Add(int64(99), 25, 1.5, 1.5, 1.0, 1.0, 0.5, uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, events int, joinR, failR, burstR, showerR, moveR float64, mobility uint8) {
		if events < 1 || events > 40 {
			t.Skip("event count out of fuzz range")
		}
		trace := TraceSpec{
			Seed:       seed,
			Events:     events,
			JoinRate:   sanitizeRate(joinR),
			FailRate:   sanitizeRate(failR),
			BurstRate:  sanitizeRate(burstR),
			ShowerRate: sanitizeRate(showerR),
			MoveRate:   sanitizeRate(moveR),
			Mobility:   MobilityModel(mobility % 3),
		}
		if err := trace.Validate(); err != nil {
			t.Skip("unusable trace")
		}
		nw, err := Open(uniformPoints(81, 32))
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		rep, err := nw.Churn(context.Background(), trace, WithChurnAudit(true))
		if err != nil {
			// The generator may legitimately refuse a trace whose only
			// enabled kinds become impossible (e.g. fail-only traces once
			// one node is left); the ladder may legitimately exhaust its
			// typed retries. Anything else — in particular an audit
			// failure — is a real finding.
			if strings.Contains(err.Error(), "churn audit") {
				t.Fatalf("invariant violated: %v", err)
			}
			if errors.Is(err, ErrRetryExhausted) || strings.Contains(err.Error(), "churn trace") {
				t.Skip("typed refusal")
			}
			t.Fatalf("untyped churn failure: %v", err)
		}
		checkChurnReport(t, trace, rep)
		if rep.Final.Tree.NumNodes > 1 {
			churnRebuildOracle(t, rep)
		}
	})
}
