package sim

import (
	"math"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

// scripted replays a fixed slot-indexed action sequence and records every
// inbox it sees.
type scripted struct {
	actions []Action
	seen    [][]Delivery
}

func (s *scripted) Step(slot int, inbox []Delivery) Action {
	cp := make([]Delivery, len(inbox))
	copy(cp, inbox)
	s.seen = append(s.seen, cp)
	if slot < len(s.actions) {
		return s.actions[slot]
	}
	return Idle()
}

func lineInstance(t testing.TB, xs ...float64) *sinr.Instance {
	t.Helper()
	pts := make([]geom.Point, len(xs))
	for i, x := range xs {
		pts[i] = geom.Point{X: x}
	}
	return sinr.MustInstance(pts, sinr.DefaultParams())
}

func mustEngine(t testing.TB, in *sinr.Instance, procs []Protocol, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(in, procs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSingleTransmitterDelivered(t *testing.T) {
	in := lineInstance(t, 0, 3, 6)
	p := in.Params()
	msg := Message{Kind: KindBroadcast, From: 0, To: NoAddressee}
	sender := &scripted{actions: []Action{Transmit(p.SafePower(8), msg)}}
	l1 := &scripted{actions: []Action{Listen()}}
	l2 := &scripted{actions: []Action{Listen()}}
	e := mustEngine(t, in, []Protocol{sender, l1, l2}, Config{Workers: 1})
	e.Run(2) // slot 0 transmits; slot 1 exposes the inbox

	for i, l := range []*scripted{l1, l2} {
		if len(l.seen) != 2 || len(l.seen[1]) != 1 {
			t.Fatalf("listener %d inbox history %v, want delivery at slot 1", i+1, l.seen)
		}
		d := l.seen[1][0]
		if d.Msg != msg {
			t.Errorf("listener %d got %+v", i+1, d.Msg)
		}
		wantDist := in.Dist(0, i+1)
		if math.Abs(d.Dist-wantDist) > 1e-9 {
			t.Errorf("listener %d Dist = %v, want %v", i+1, d.Dist, wantDist)
		}
		if d.SINR < p.Beta {
			t.Errorf("listener %d SINR = %v below beta", i+1, d.SINR)
		}
		if d.Slot != 0 {
			t.Errorf("listener %d Slot = %d, want 0", i+1, d.Slot)
		}
	}
	st := e.Stats()
	if st.Transmissions != 1 || st.Deliveries != 2 || st.Slots != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCollisionBetweenEqualSenders(t *testing.T) {
	// Two equal-power senders equidistant from a central listener: SINR ≈ 1
	// < β = 1.5, so nothing is decodable.
	in := lineInstance(t, 0, 5, 10)
	p := in.Params()
	pw := p.SafePower(8)
	msg := Message{Kind: KindBroadcast}
	s1 := &scripted{actions: []Action{Transmit(pw, msg)}}
	mid := &scripted{actions: []Action{Listen()}}
	s2 := &scripted{actions: []Action{Transmit(pw, msg)}}
	e := mustEngine(t, in, []Protocol{s1, mid, s2}, Config{Workers: 1})
	e.Run(2)

	if len(mid.seen[1]) != 0 {
		t.Fatalf("middle listener decoded despite collision: %+v", mid.seen[1])
	}
	if st := e.Stats(); st.Collisions != 1 {
		t.Errorf("collisions = %d, want 1", st.Collisions)
	}
}

func TestCaptureEffect(t *testing.T) {
	// A much closer sender is decoded despite a far interferer.
	in := lineInstance(t, 0, 1, 100)
	p := in.Params()
	near := &scripted{actions: []Action{Transmit(p.SafePower(2), Message{From: 0})}}
	listener := &scripted{actions: []Action{Listen()}}
	far := &scripted{actions: []Action{Transmit(p.SafePower(2), Message{From: 2})}}
	e := mustEngine(t, in, []Protocol{near, listener, far}, Config{Workers: 1})
	e.Run(2)

	if len(listener.seen[1]) != 1 || listener.seen[1][0].Msg.From != 0 {
		t.Fatalf("capture failed: inbox %+v", listener.seen[1])
	}
}

func TestHalfDuplex(t *testing.T) {
	// Two mutual transmitters: neither receives the other's message.
	in := lineInstance(t, 0, 2)
	p := in.Params()
	a := &scripted{actions: []Action{Transmit(p.SafePower(2), Message{From: 0})}}
	b := &scripted{actions: []Action{Transmit(p.SafePower(2), Message{From: 1})}}
	e := mustEngine(t, in, []Protocol{a, b}, Config{Workers: 1})
	e.Run(2)
	if len(a.seen[1]) != 0 || len(b.seen[1]) != 0 {
		t.Fatal("transmitting node received a message (half-duplex violated)")
	}
}

func TestIdleNodesReceiveNothing(t *testing.T) {
	in := lineInstance(t, 0, 2)
	p := in.Params()
	a := &scripted{actions: []Action{Transmit(p.SafePower(2), Message{From: 0})}}
	b := &scripted{actions: []Action{Idle()}}
	e := mustEngine(t, in, []Protocol{a, b}, Config{Workers: 1})
	e.Run(2)
	if len(b.seen[1]) != 0 {
		t.Fatal("idle node received a message")
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	// The same scripted schedule must produce identical stats for 1 and 8
	// workers.
	run := func(workers int) Stats {
		in := lineInstance(t, 0, 2, 4, 6, 8, 10, 12, 14, 16, 18)
		p := in.Params()
		procs := make([]Protocol, in.Len())
		for i := range procs {
			var acts []Action
			for s := 0; s < 10; s++ {
				if (s+i)%3 == 0 {
					acts = append(acts, Transmit(p.SafePower(3), Message{From: i}))
				} else {
					acts = append(acts, Listen())
				}
			}
			procs[i] = &scripted{actions: acts}
		}
		e := mustEngine(t, in, procs, Config{Workers: workers, DropProb: 0.2, Seed: 99})
		defer e.Close()
		e.Run(10)
		return e.Stats()
	}
	a, b := run(1), run(8)
	if a != b {
		t.Fatalf("stats differ across worker counts: %+v vs %+v", a, b)
	}
}

func TestDropInjection(t *testing.T) {
	// With DropProb ≈ 1 - tiny, most deliveries are dropped; with 0, none.
	count := func(drop float64) (delivered, dropped int) {
		in := lineInstance(t, 0, 3)
		p := in.Params()
		var sActs, lActs []Action
		for s := 0; s < 200; s++ {
			sActs = append(sActs, Transmit(p.SafePower(4), Message{From: 0}))
			lActs = append(lActs, Listen())
		}
		s := &scripted{actions: sActs}
		l := &scripted{actions: lActs}
		e := mustEngine(t, in, []Protocol{s, l}, Config{Workers: 1, DropProb: drop, Seed: 7})
		e.Run(200)
		st := e.Stats()
		return st.Deliveries, st.Dropped
	}
	d0, drop0 := count(0)
	if d0 != 200 || drop0 != 0 {
		t.Fatalf("no-drop run: delivered %d dropped %d", d0, drop0)
	}
	dHalf, dropHalf := count(0.5)
	if dHalf+dropHalf != 200 {
		t.Fatalf("accounting broken: %d + %d != 200", dHalf, dropHalf)
	}
	if dropHalf < 60 || dropHalf > 140 {
		t.Fatalf("drop count %d far from expectation 100", dropHalf)
	}
}

func TestRunUntil(t *testing.T) {
	in := lineInstance(t, 0, 2)
	a := &scripted{}
	b := &scripted{}
	e := mustEngine(t, in, []Protocol{a, b}, Config{Workers: 1})
	ran := e.RunUntil(100, func() bool { return e.Slot() >= 5 })
	if ran != 5 || e.Slot() != 5 {
		t.Errorf("ran %d slots, engine at %d", ran, e.Slot())
	}
	ran = e.RunUntil(3, func() bool { return false })
	if ran != 3 {
		t.Errorf("capped run executed %d slots", ran)
	}
}

func TestNewEngineValidation(t *testing.T) {
	in := lineInstance(t, 0, 2)
	if _, err := NewEngine(in, []Protocol{&scripted{}}, Config{}); err == nil {
		t.Error("mismatched protocol count accepted")
	}
	if _, err := NewEngine(in, []Protocol{&scripted{}, &scripted{}}, Config{DropProb: 1.5}); err == nil {
		t.Error("invalid drop probability accepted")
	}
	if _, err := NewEngine(in, []Protocol{&scripted{}, &scripted{}}, Config{DropProb: -0.1}); err == nil {
		t.Error("negative drop probability accepted")
	}
}

func TestAddressedAckSemantics(t *testing.T) {
	// Receivers see the To field and can filter acknowledgments addressed
	// to someone else; the engine itself delivers to every listener.
	in := lineInstance(t, 0, 2, 4)
	p := in.Params()
	ack := Message{Kind: KindAck, From: 0, To: 2}
	s := &scripted{actions: []Action{Transmit(p.SafePower(5), ack)}}
	other := &scripted{actions: []Action{Listen()}}
	target := &scripted{actions: []Action{Listen()}}
	e := mustEngine(t, in, []Protocol{s, other, target}, Config{Workers: 1})
	e.Run(2)
	if len(target.seen[1]) != 1 || target.seen[1][0].Msg.To != 2 {
		t.Fatal("target did not receive addressed ack")
	}
	if len(other.seen[1]) != 1 || other.seen[1][0].Msg.To != 2 {
		t.Fatal("bystander should overhear the ack (and ignore it by To)")
	}
}

func BenchmarkEngineSlot(b *testing.B) {
	n := 256
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i%16) * 2, Y: float64(i/16) * 2}
	}
	in := sinr.MustInstance(pts, sinr.DefaultParams())
	p := in.Params()
	procs := make([]Protocol, n)
	for i := range procs {
		var acts []Action
		for s := 0; s < 1; s++ {
			if i%4 == 0 {
				acts = append(acts, Transmit(p.SafePower(4), Message{From: i}))
			} else {
				acts = append(acts, Listen())
			}
		}
		procs[i] = &repeat{act: acts[0]}
	}
	e, err := NewEngine(in, procs, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

type repeat struct{ act Action }

func (r *repeat) Step(int, []Delivery) Action { return r.act }
