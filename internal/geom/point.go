package geom

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// String renders the point with limited precision for logs and traces.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y)
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root on paths that only compare distances.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by q taken as a vector.
func (p Point) Add(q Point) Point {
	return Point{X: p.X + q.X, Y: p.Y + q.Y}
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point {
	return Point{X: p.X - q.X, Y: p.Y - q.Y}
}

// Scale returns p scaled by factor s about the origin.
func (p Point) Scale(s float64) Point {
	return Point{X: p.X * s, Y: p.Y * s}
}

// Ball is a closed disc in the plane.
type Ball struct {
	Center Point
	Radius float64
}

// Contains reports whether point q lies in the closed ball.
func (b Ball) Contains(q Point) bool {
	return b.Center.DistSq(q) <= b.Radius*b.Radius+1e-12
}

// MinDist returns the smallest pairwise distance among pts. It returns 0 for
// fewer than two points. The computation uses a grid bucketed at the current
// best estimate, falling back to an exact quadratic scan for small inputs.
func MinDist(pts []Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := pts[i].DistSq(pts[j]); d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// MaxDist returns the largest pairwise distance among pts (the paper's Δ when
// the minimum distance is normalized to 1). It returns 0 for fewer than two
// points.
func MaxDist(pts []Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	best := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := pts[i].DistSq(pts[j]); d > best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// Delta returns the ratio of the maximum to the minimum pairwise distance,
// the paper's Δ (after normalizing the minimum distance to 1). It returns 1
// for degenerate inputs.
func Delta(pts []Point) float64 {
	mn := MinDist(pts)
	if mn <= 0 {
		return 1
	}
	return MaxDist(pts) / mn
}

// NumLengthClasses returns ⌈log₂ Δ⌉ clamped to at least 1: the number of
// doubling length classes the Init protocol iterates over for an instance
// with normalized distance ratio delta.
func NumLengthClasses(delta float64) int {
	if delta <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(delta) - 1e-9))
}

// LengthClass returns the doubling class of a distance d ≥ 1: the unique
// r ≥ 1 with d ∈ [2^(r-1), 2^r). Distances below 1 map to class 1, matching
// the paper's normalization (minimum distance 1).
func LengthClass(d float64) int {
	if d < 1 {
		return 1
	}
	r := int(math.Floor(math.Log2(d))) + 1
	// Guard against floating error at exact powers of two: class r covers
	// [2^(r-1), 2^r).
	for d >= math.Exp2(float64(r)) {
		r++
	}
	for r > 1 && d < math.Exp2(float64(r-1)) {
		r--
	}
	return r
}

// ClassRange returns the half-open distance interval [lo, hi) covered by
// length class r ≥ 1.
func ClassRange(r int) (lo, hi float64) {
	if r < 1 {
		r = 1
	}
	return math.Exp2(float64(r - 1)), math.Exp2(float64(r))
}

// BoundingBox returns the axis-aligned bounding box of pts as (min, max)
// corners. It returns zero points for empty input.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	return min, max
}

// Normalize translates and scales pts so that the minimum pairwise distance
// is exactly 1, returning the new slice and the scale factor applied. Inputs
// with fewer than two points are copied unchanged with scale 1.
func Normalize(pts []Point) ([]Point, float64) {
	out := make([]Point, len(pts))
	copy(out, pts)
	mn := MinDist(pts)
	if mn <= 0 {
		return out, 1
	}
	s := 1 / mn
	for i := range out {
		out[i] = out[i].Scale(s)
	}
	return out, s
}
