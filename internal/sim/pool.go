package sim

import (
	"runtime"
	"time"

	"sinrconn/internal/faults"
)

// stage identifies the work a dispatched worker round performs.
type stage uint8

const (
	stageStep stage = iota + 1
	stageDecode
	// stageFarAccum folds the slot's pyramid shards: worker k takes shards
	// k, k+w, k+2w, … — every shard runs exactly once, on some worker, and
	// shard writes are disjoint, so any assignment yields the same pyramid.
	stageFarAccum
	// stageDecodeFarBatch decodes the slot's listeners (farVs, in batch
	// order) through shared frontiers, chunked contiguously per worker.
	stageDecodeFarBatch
)

// job is one unit of pool work: run a stage of engine e over this worker's
// static shard. The two-word struct travels by value on the command
// channels, so dispatching allocates nothing.
type job struct {
	e  *Engine
	st stage
}

// Pool is a persistent set of worker goroutines that execute engine stages.
// Unlike the per-engine pool it replaced, a Pool is not tied to any one
// Engine: each job carries the engine it belongs to, and completion is
// signaled on that engine's private WaitGroup — so a session-scoped Pool
// (one per sinrconn.Network) can be shared by every engine the session
// creates, including engines running concurrently from a batch sweep.
// Workers live until Close.
type Pool struct {
	cmd []chan job
}

// NewPool spawns a pool of the given number of workers (0 means
// runtime.NumCPU()).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{cmd: make([]chan job, workers)}
	for k := range p.cmd {
		p.cmd[k] = make(chan job, 1)
		go p.work(k)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.cmd) }

// work is one worker's loop: receive a job, process this worker's static
// shard of the job engine's node range, signal that engine's WaitGroup.
// Terminates when the command channel closes.
func (p *Pool) work(k int) {
	w := len(p.cmd)
	for j := range p.cmd[k] {
		e := j.e
		// Fault site pool.worker.stall: delay this worker's share of the
		// stage. The stage barrier (stageWG) still waits for every shard,
		// so a stall reorders nothing — it only stretches the slot.
		if e.cfg.Injector != nil {
			if act, ok := e.cfg.Injector.Fire(faults.PoolWorkerStall); ok {
				time.Sleep(act.Delay)
			}
		}
		switch j.st {
		case stageStep:
			lo, hi := chunkRange(len(e.procs), w, k)
			e.stepRange(lo, hi)
		case stageDecode:
			lo, hi := chunkRange(len(e.procs), w, k)
			e.decodeRange(lo, hi, &e.shards[k])
		case stageFarAccum:
			nsh := e.farShard.AccumShards()
			for s := k; s < nsh; s += w {
				e.farShard.AccumShard(s, e.txs)
			}
		case stageDecodeFarBatch:
			lo, hi := chunkRange(len(e.farVs), w, k)
			e.decodeFarBatchRange(lo, hi, k)
		}
		e.stageWG.Done()
	}
}

// chunkRange is worker k's static contiguous share of n items split across
// w workers.
func chunkRange(n, w, k int) (lo, hi int) {
	chunk := (n + w - 1) / w
	lo = k * chunk
	hi = lo + chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// dispatch runs one stage of engine e across all workers and waits for
// completion. Safe for concurrent use by different engines: each engine
// waits only on its own WaitGroup, and jobs from concurrent dispatches
// interleave freely on the command channels.
func (p *Pool) dispatch(e *Engine, st stage) {
	e.stageWG.Add(len(p.cmd))
	for _, c := range p.cmd {
		c <- job{e: e, st: st}
	}
	e.stageWG.Wait()
}

// Close releases the pool's goroutines. Engines using the pool must not be
// stepped afterwards. Close is not idempotent; callers own the lifecycle
// (sinrconn.Network guards it with its own once).
func (p *Pool) Close() {
	for _, c := range p.cmd {
		close(c)
	}
}
