// Powercompare: one instance, all four pipelines. The table shows the
// paper's central trade-off — construction effort versus final schedule
// quality — across uniform-power construction (Section 6), mean-power
// rescheduling (Section 7), and the two TreeViaCapacity variants
// (Section 8). Run on a high-Δ exponential chain, the regime where power
// choice matters most.
//
//	go run ./examples/powercompare
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"sinrconn"
)

func main() {
	if err := run(os.Stdout, 40, 1.35, 13); err != nil {
		log.Fatal(err)
	}
}

// run compares all four pipelines on an n-point exponential chain with the
// given growth factor.
func run(out io.Writer, n int, base float64, seed int64) error {
	pts := expChain(n, base)

	opt := sinrconn.Options{Seed: seed}
	type row struct {
		name    string
		builder func([]sinrconn.Point, sinrconn.Options) (*sinrconn.Result, error)
	}
	rows := []row{
		{"Init, uniform power (Sec 6)", sinrconn.BuildInitialBiTree},
		{"reschedule, mean power (Sec 7)", sinrconn.RescheduleMeanPower},
		{"TreeViaCapacity, mean (Sec 8.1)", sinrconn.BuildBiTreeMeanPower},
		{"TreeViaCapacity, arbitrary (Sec 8.2)", sinrconn.BuildBiTreeArbitraryPower},
	}

	var delta, upsilon float64
	fmt.Fprintf(out, "%-38s %10s %14s\n", "pipeline", "schedule", "build slots")
	for _, r := range rows {
		res, err := r.builder(pts, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		delta, upsilon = res.Metrics.Delta, res.Metrics.Upsilon
		fmt.Fprintf(out, "%-38s %10d %14d\n", r.name, res.Metrics.ScheduleLength, res.Metrics.SlotsUsed)
	}
	fmt.Fprintf(out, "\ninstance: n=%d exponential chain, Δ=%.0f (log₂Δ=%.1f), Υ=%.1f, log₂n=%.1f\n",
		n, delta, math.Log2(delta), upsilon, math.Log2(float64(n)))
	fmt.Fprintln(out, "\nreading the table:")
	fmt.Fprintln(out, " - Section 6 stamps carry the log Δ·log n construction cost into the schedule;")
	fmt.Fprintln(out, " - Section 7 keeps the same tree but re-schedules it with mean power;")
	fmt.Fprintln(out, " - Section 8 rebuilds the tree so the final schedule matches centralized bounds.")
	return nil
}

// expChain builds an n-point exponential chain with growth factor base.
func expChain(n int, base float64) []sinrconn.Point {
	pts := make([]sinrconn.Point, n)
	x, gap := 0.0, 1.0
	for i := range pts {
		pts[i] = sinrconn.Point{X: x}
		x += gap
		gap *= base
	}
	return pts
}
