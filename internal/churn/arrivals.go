package churn

import (
	"fmt"
	"math/rand"
	"time"
)

// ArrivalMix selects the shape of a request-arrival trace.
type ArrivalMix int

const (
	// MixPoisson draws memoryless exponential inter-arrival gaps.
	MixPoisson ArrivalMix = iota
	// MixBursty alternates geometric-length bursts of closely spaced
	// arrivals with longer idle gaps, preserving the overall mean rate.
	MixBursty
)

// String names the mix for reports.
func (m ArrivalMix) String() string {
	switch m {
	case MixPoisson:
		return "poisson"
	case MixBursty:
		return "bursty"
	default:
		return fmt.Sprintf("ArrivalMix(%d)", int(m))
	}
}

// ArrivalSpec configures a deterministic arrival-time source. It reuses
// the churn generator's trace discipline — one seeded rand.Rand, every
// gap an explicit draw — so a (Seed, Rate, Mix) triple names the same
// trace on every run.
type ArrivalSpec struct {
	// Seed derives the whole trace.
	Seed int64
	// Rate is the long-run mean arrival rate in events per second.
	Rate float64
	// Mix selects Poisson or bursty arrivals (default Poisson).
	Mix ArrivalMix
	// BurstLen is the mean burst size for MixBursty (default 8).
	BurstLen float64
	// BurstFactor multiplies the rate inside a burst for MixBursty
	// (default 20): gaps within a burst are BurstFactor× shorter than the
	// Poisson mean.
	BurstFactor float64
}

// Arrivals emits deterministic inter-arrival gaps.
type Arrivals struct {
	spec ArrivalSpec
	rng  *rand.Rand
	// left counts arrivals remaining in the current burst (MixBursty).
	left int
}

// NewArrivals validates the spec and builds the source.
func NewArrivals(spec ArrivalSpec) (*Arrivals, error) {
	if spec.Rate <= 0 {
		return nil, fmt.Errorf("churn: arrival rate must be positive, got %g", spec.Rate)
	}
	if spec.BurstLen <= 1 {
		spec.BurstLen = 8
	}
	if spec.BurstFactor <= 1 {
		spec.BurstFactor = 20
	}
	return &Arrivals{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}, nil
}

// Next returns the gap before the next arrival.
func (a *Arrivals) Next() time.Duration {
	switch a.spec.Mix {
	case MixBursty:
		return a.nextBursty()
	default:
		return expDur(a.rng.ExpFloat64() / a.spec.Rate)
	}
}

// nextBursty alternates bursts and idles. Burst sizes are geometric with
// mean BurstLen; within-burst gaps run at BurstFactor× the base rate;
// the idle gap preceding each burst is sized so the long-run mean rate
// stays Rate:
//
//	E[time per burst] = idle + (L-1)/(Rate·F)  must equal  L/Rate
func (a *Arrivals) nextBursty() time.Duration {
	L := a.spec.BurstLen
	F := a.spec.BurstFactor
	if a.left > 0 {
		a.left--
		return expDur(a.rng.ExpFloat64() / (a.spec.Rate * F))
	}
	// Geometric burst size with mean L (support ≥ 1).
	size := 1
	for float64(size) < 64*L && a.rng.Float64() >= 1/L {
		size++
	}
	a.left = size - 1
	idleMean := L/a.spec.Rate - (L-1)/(a.spec.Rate*F)
	if idleMean <= 0 {
		idleMean = 1 / a.spec.Rate
	}
	return expDur(a.rng.ExpFloat64() * idleMean)
}

// expDur converts seconds to a duration, clamping pathological draws.
func expDur(sec float64) time.Duration {
	if sec < 0 {
		sec = 0
	}
	const maxGap = 60
	if sec > maxGap {
		sec = maxGap
	}
	return time.Duration(sec * float64(time.Second))
}
