// Package cache is the serving layer's result cache: a size- and
// TTL-bounded LRU with singleflight request coalescing and hit/miss/
// eviction/latency counters.
//
// It generalizes the fixed 128-entry result memo the session API started
// with (sinrconn's maxCachedResults): entries are evicted
// least-recently-used once the capacity is reached and expire after an
// optional TTL, concurrent lookups of the same missing key share ONE
// compute (the others block and receive the leader's committed value), and
// every outcome is counted so a serving daemon can export hit rate — which,
// at a ~5×10⁴ hit/rebuild cost ratio (BENCH_api.json), is its capacity.
//
// Commit discipline: a computed value is inserted only when its compute
// function returns without error. A canceled or failed compute inserts
// nothing and wakes any coalesced waiters to retry (one of them becomes the
// new leader); a waiter whose own context dies stops waiting with its own
// context error. Concurrent identical queries therefore never observe a
// half-populated entry, and a canceled leader never poisons followers that
// are still live.
package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Stats is a snapshot of the cache's counters. All counts are cumulative
// since New.
type Stats struct {
	// Hits counts lookups served from a live entry.
	Hits uint64
	// Misses counts lookups that found no live entry (each miss leads a
	// compute or joins one).
	Misses uint64
	// Coalesced counts misses that joined another caller's in-flight
	// compute instead of starting their own.
	Coalesced uint64
	// Evictions counts entries dropped by the LRU capacity bound.
	Evictions uint64
	// Expirations counts entries dropped because their TTL passed.
	Expirations uint64
	// Computes counts compute functions actually run (successful or not);
	// ComputeNanos is their cumulative wall time, so
	// ComputeNanos/Computes is the mean miss-path latency.
	Computes     uint64
	ComputeNanos uint64
	// Errors counts computes that returned an error (nothing committed).
	Errors uint64
	// Panics counts computes that panicked. The panic is re-raised in the
	// leader after coalesced waiters are released with a leaderPanicError
	// (nothing committed), so a panicking compute can never wedge its
	// followers.
	Panics uint64
	// Size and Capacity describe the entry table at snapshot time.
	Size     int
	Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached value on the intrusive LRU list (head = most
// recently used).
type entry[K comparable, V any] struct {
	key        K
	val        V
	expires    time.Time // zero = never
	prev, next *entry[K, V]
}

// flight is one in-progress compute that concurrent identical queries
// coalesce onto.
type flight[V any] struct {
	done chan struct{} // closed when the compute finishes
	val  V
	err  error
}

// PanicError is the error coalesced waiters receive when their leader's
// compute function panicked. The panic value itself is re-raised only in
// the leader's goroutine (after the waiters are released); waiters get
// this error instead of a retry because a panic — unlike a compute error
// such as a canceled context or a non-converged run — signals a bug or an
// injected crash, and silently re-running the same function from every
// waiter would turn one crash into a herd of them.
type PanicError struct {
	// Value is the value the compute function panicked with.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("cache: compute panicked: %v", e.Value)
}

// Cache is a size- and TTL-bounded LRU with singleflight coalescing.
// The zero value is not usable; call New. All methods are safe for
// concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	now      func() time.Time
	entries  map[K]*entry[K, V]
	head     *entry[K, V] // most recently used
	tail     *entry[K, V] // least recently used
	flights  map[K]*flight[V]
	stats    Stats
}

// New builds a cache holding at most capacity entries (capacity ≤ 0 means
// 1), each expiring ttl after insertion (ttl ≤ 0 means never).
func New[K comparable, V any](capacity int, ttl time.Duration) *Cache[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	if ttl < 0 {
		ttl = 0
	}
	return &Cache[K, V]{
		capacity: capacity,
		ttl:      ttl,
		now:      time.Now,
		entries:  make(map[K]*entry[K, V]),
		flights:  make(map[K]*flight[V]),
	}
}

// SetClock replaces the cache's time source (tests pin TTL behavior with a
// fake clock). Not safe to call concurrently with lookups.
func (c *Cache[K, V]) SetClock(now func() time.Time) { c.now = now }

// Stats returns a snapshot of the counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.entries)
	s.Capacity = c.capacity
	return s
}

// Len returns the number of live entries (expired ones still resident are
// not counted out — they are dropped lazily on access).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the live entry for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookup(key)
}

// lookup is Get under c.mu: it counts the outcome and drops an expired
// entry on contact.
func (c *Cache[K, V]) lookup(key K) (V, bool) {
	if e, ok := c.entries[key]; ok {
		if e.expires.IsZero() || c.now().Before(e.expires) {
			c.moveToFront(e)
			c.stats.Hits++
			return e.val, true
		}
		c.remove(e)
		c.stats.Expirations++
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Add commits a value for key unconditionally (the non-coalescing path:
// callers that computed outside the cache, e.g. observed runs that must
// not share slot-event streams). It never errors and evicts as needed.
func (c *Cache[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commit(key, val)
}

// Do returns the cached value for key, computing and committing it on a
// miss. Concurrent Do calls for the same key share one compute: the first
// caller runs fn, the rest wait. hit reports whether the value was served
// without running fn in this call (a cache hit or a coalesced wait).
//
// fn's error (a canceled run, a failed construction) commits nothing; any
// coalesced waiters retry, so one live caller always makes progress. ctx
// bounds only this caller's WAIT on someone else's compute — fn itself is
// responsible for honoring whatever context it closed over.
func (c *Cache[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (val V, hit bool, err error) {
	for {
		c.mu.Lock()
		if v, ok := c.lookup(key); ok {
			c.mu.Unlock()
			return v, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.stats.Coalesced++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
			if f.err == nil {
				return f.val, true, nil
			}
			// The leader panicked: the panic value was re-raised in the
			// leader's goroutine and waiters receive it as a PanicError —
			// returned, not retried (see PanicError).
			var pe *PanicError
			if errors.As(f.err, &pe) {
				var zero V
				return zero, false, f.err
			}
			// The leader failed (canceled, non-converged, …): nothing was
			// committed. Loop to retry — this caller may become the new
			// leader. Its own ctx bounds the loop.
			if err := ctx.Err(); err != nil {
				var zero V
				return zero, false, err
			}
			continue
		}
		f := &flight[V]{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		start := c.now()
		var panicVal any
		panicked := false
		func() {
			// A panicking fn must not wedge the flight: without this
			// recover, the flight entry would stay in c.flights with done
			// never closed, blocking every coalesced waiter forever and
			// poisoning the key for all future callers.
			defer func() {
				if r := recover(); r != nil {
					panicked, panicVal = true, r
					f.err = &PanicError{Value: r}
				}
			}()
			f.val, f.err = fn()
		}()
		elapsed := c.now().Sub(start)

		c.mu.Lock()
		c.stats.Computes++
		c.stats.ComputeNanos += uint64(elapsed)
		switch {
		case panicked:
			c.stats.Panics++
			c.stats.Errors++
		case f.err == nil:
			c.commit(key, f.val)
		default:
			c.stats.Errors++
		}
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		if panicked {
			// Waiters are released; the leader's own stack still owns the
			// crash. Re-raise so the bug (or injected fault) surfaces where
			// it happened — the daemon's recovery middleware turns it into
			// a 500 instead of a dead process.
			panic(panicVal)
		}
		return f.val, false, f.err
	}
}

// commit inserts (or refreshes) key under c.mu, evicting LRU entries past
// capacity.
func (c *Cache[K, V]) commit(key K, val V) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if e, ok := c.entries[key]; ok {
		e.val = val
		e.expires = expires
		c.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: key, val: val, expires: expires}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.capacity {
		lru := c.tail
		c.remove(lru)
		c.stats.Evictions++
	}
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[K, V]) remove(e *entry[K, V]) {
	c.unlink(e)
	delete(c.entries, e.key)
}
