package core

import (
	"context"
	"math/rand"
	"testing"

	"sinrconn/internal/sim"
	"sinrconn/internal/tree"
)

func TestRunAggregationOnInitTree(t *testing.T) {
	in := uniformInstance(t, 80, 48)
	res, err := Init(context.Background(), in, InitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, in.Len())
	var wantSum int64
	rng := rand.New(rand.NewSource(7))
	for i := range values {
		values[i] = int64(rng.Intn(1000))
		wantSum += values[i]
	}
	out, err := RunAggregation(context.Background(), in, res.Tree, values, SumAgg, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != wantSum {
		t.Fatalf("sum aggregate = %d, want %d", out.Value, wantSum)
	}
	if out.SlotsUsed != res.Tree.NumSlots()+1 {
		t.Errorf("slots = %d, schedule = %d", out.SlotsUsed, res.Tree.NumSlots())
	}
	if out.Energy <= 0 || out.Deliveries < len(res.Tree.Up) {
		t.Errorf("outcome: %+v", out)
	}
}

func TestRunAggregationMaxOnTVCTree(t *testing.T) {
	in := uniformInstance(t, 81, 40)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, in.Len())
	for i := range values {
		values[i] = int64(i * 13 % 97)
	}
	out, err := RunAggregation(context.Background(), in, res.Tree, values, MaxAgg, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range values {
		if v > want {
			want = v
		}
	}
	if out.Value != want {
		t.Fatalf("max aggregate = %d, want %d", out.Value, want)
	}
}

func TestRunAggregationMeanVariant(t *testing.T) {
	in := uniformInstance(t, 82, 32)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantMean, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, in.Len())
	for i := range values {
		values[i] = 1
	}
	out, err := RunAggregation(context.Background(), in, res.Tree, values, SumAgg, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Count aggregate: root must have counted every node.
	if out.Value != int64(in.Len()) {
		t.Fatalf("count = %d, want %d", out.Value, in.Len())
	}
}

func TestRunAggregationDetectsBadSchedule(t *testing.T) {
	// Sabotage: give two conflicting links the same slot with weak powers —
	// the physical run must detect the loss.
	in := uniformInstance(t, 83, 24)
	res, err := Init(context.Background(), in, InitConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	bt := res.Tree
	// Force the whole tree into a single slot: concurrent transmissions
	// will collide somewhere for n = 24 links.
	bad := &tree.BiTree{Root: bt.Root, Nodes: bt.Nodes, Up: append([]tree.TimedLink(nil), bt.Up...)}
	for i := range bad.Up {
		bad.Up[i].Slot = 1
	}
	values := make([]int64, in.Len())
	for i := range values {
		values[i] = 1
	}
	if _, err := RunAggregation(context.Background(), in, bad, values, SumAgg, sim.Config{}); err == nil {
		t.Fatal("single-slot sabotage not detected by the physical run")
	}
}

func TestRunAggregationValidation(t *testing.T) {
	in := uniformInstance(t, 84, 8)
	res, err := Init(context.Background(), in, InitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAggregation(context.Background(), in, res.Tree, nil, SumAgg, sim.Config{}); err == nil {
		t.Error("short values accepted")
	}
	vals := make([]int64, in.Len())
	if _, err := RunAggregation(context.Background(), in, res.Tree, vals, nil, sim.Config{}); err == nil {
		t.Error("nil fold accepted")
	}
}

func TestRunAggregationAfterRepair(t *testing.T) {
	// The repaired (restamped) schedule must also execute correctly on the
	// physics.
	in, res, _ := splitInstance(t, 85, 40, 0)
	bt := res.Tree
	children := bt.Children()
	victim := -1
	for v, ch := range children {
		if v != bt.Root && len(ch) > 0 {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("no interior node")
	}
	rres, err := Repair(context.Background(), in, bt, []int{victim}, InitConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, in.Len())
	var want int64
	for _, v := range rres.Tree.Nodes {
		values[v] = int64(v)
		want += int64(v)
	}
	out, err := RunAggregation(context.Background(), in, rres.Tree, values, SumAgg, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value != want {
		t.Fatalf("post-repair aggregate = %d, want %d", out.Value, want)
	}
}

func TestRunPairMessage(t *testing.T) {
	in := uniformInstance(t, 91, 40)
	res, err := TreeViaCapacity(context.Background(), in, TVCConfig{Variant: VariantArbitrary, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Several random pairs, including degenerate ones.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		src, dst := rng.Intn(40), rng.Intn(40)
		out, err := RunPairMessage(context.Background(), in, res.Tree, src, dst, int64(100+trial), sim.Config{})
		if err != nil {
			t.Fatalf("pair %d→%d: %v", src, dst, err)
		}
		if !out.Delivered {
			t.Fatalf("pair %d→%d not delivered", src, dst)
		}
		// 2×(schedule+1) drain slots total.
		if max := 2 * (res.Tree.NumSlots() + 1); out.SlotsUsed > max {
			t.Errorf("pair latency %d exceeds %d", out.SlotsUsed, max)
		}
	}
}

func TestRunPairMessageValidation(t *testing.T) {
	in := uniformInstance(t, 92, 12)
	res, err := Init(context.Background(), in, InitConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPairMessage(context.Background(), in, res.Tree, 0, 999, 1, sim.Config{}); err == nil {
		t.Error("bad dst accepted")
	}
}
