package sinrconn

// The session-oriented API: a Network is a long-lived handle over one point
// set. Open validates and normalizes the geometry once, owns the physics
// instances (the O(n²) gain table is built once per physical parameterization
// and shared by every run) and a persistent simulator worker pool, and every
// construction — the four theorem pipelines, joins, repairs, and physical
// aggregate/broadcast epochs — runs against that shared state. Constructions
// are deterministic for fixed settings, so a Network also memoizes Run
// results: a repeated query is a map lookup, which is what lets one handle
// serve the same deployment to many callers cheaply.
//
// The free functions of sinrconn.go (BuildInitialBiTree & co.) remain as
// deprecated wrappers over one-shot Networks, bit-identical by test.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"sinrconn/internal/core"
	"sinrconn/internal/faults"
	"sinrconn/internal/geom"
	"sinrconn/internal/schedule"
	"sinrconn/internal/serve/cache"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// Pipeline identifies one of the paper's construction pipelines.
type Pipeline uint8

// The four pipelines, mirroring the paper's theorems.
const (
	// PipelineInit is the Section 6 construction (Theorem 2): a bi-tree in
	// O(log Δ · log n) slots using per-round uniform power.
	PipelineInit Pipeline = iota + 1
	// PipelineRescheduleMean is Section 7 (Theorem 3): the Init tree
	// re-scheduled under mean power, removing the log Δ factor. The
	// resulting schedule may violate the bi-tree ordering property (the
	// paper's caveat), so aggregation/broadcast latencies are not filled.
	PipelineRescheduleMean
	// PipelineTVCMean is TreeViaCapacity with Υ-sampled mean-power
	// selection (Theorem 4, second half: O(Υ·log n) slots).
	PipelineTVCMean
	// PipelineTVCArbitrary is TreeViaCapacity with Distr-Cap selection and
	// computed per-link powers (Theorem 4, first half: O(log n) slots).
	PipelineTVCArbitrary
)

// Pipelines returns all four pipelines in declaration order — handy for
// sweep construction.
func Pipelines() []Pipeline {
	return []Pipeline{PipelineInit, PipelineRescheduleMean, PipelineTVCMean, PipelineTVCArbitrary}
}

// String implements fmt.Stringer.
func (p Pipeline) String() string {
	switch p {
	case PipelineInit:
		return "init-uniform"
	case PipelineRescheduleMean:
		return "reschedule-mean"
	case PipelineTVCMean:
		return "tvc-mean"
	case PipelineTVCArbitrary:
		return "tvc-arbitrary"
	}
	return fmt.Sprintf("pipeline(%d)", uint8(p))
}

// Ordered reports whether the pipeline guarantees the bi-tree aggregation
// ordering property (PipelineRescheduleMean does not, per the paper).
func (p Pipeline) Ordered() bool { return p != PipelineRescheduleMean }

// FarMode selects the far-field engine WithMaxRelError drives (it is
// meaningless at ε = 0, which is always the exact path).
type FarMode uint8

const (
	// FarAuto — the default — resolves approximate slots through the
	// hierarchical quadtree with adaptive per-slot mode selection: each
	// slot picks exact or quadtree resolution from its live sender count
	// (sparse slots are cheaper exact; see sim.Config.Adaptive).
	FarAuto FarMode = iota
	// FarQuadtree forces the hierarchical quadtree on every non-empty slot.
	FarQuadtree
	// FarFlat forces the flat tile grid of DESIGN.md §7 on every non-empty
	// slot — retained for oracle lockstep and regression comparison. When
	// the requested ε makes the flat plan near-dominated (its global near
	// ring covers most of the grid, the tight-ε regime where it does
	// strictly more work than exact resolution), the session falls back to
	// the exact path instead.
	FarFlat
)

// String implements fmt.Stringer.
func (m FarMode) String() string {
	switch m {
	case FarAuto:
		return "far-auto"
	case FarQuadtree:
		return "far-quadtree"
	case FarFlat:
		return "far-flat"
	}
	return fmt.Sprintf("farmode(%d)", uint8(m))
}

// FarPrecision selects the aggregate precision of the quadtree far-field
// walks (it is meaningless at ε = 0, and the flat grid keeps no float32
// mirror).
type FarPrecision uint8

const (
	// Far64 — the default — walks float64 aggregates.
	Far64 FarPrecision = iota
	// Far32 walks a float32 mirror of the aggregates (accumulated in
	// float64, rounded once per node): half the aggregate bytes through the
	// cache on million-node pyramids, under a certificate widened by
	// O(2⁻²⁴) — negligible against every supported ε (DESIGN.md §12).
	// Winners and their received powers stay exact.
	Far32
)

// String implements fmt.Stringer.
func (p FarPrecision) String() string {
	switch p {
	case Far64:
		return "far-f64"
	case Far32:
		return "far-f32"
	}
	return fmt.Sprintf("farprec(%d)", uint8(p))
}

// settings is the resolved configuration of a Network or a single run.
// Functional options edit it; the zero-ambiguity of the old Options struct
// (0 meaning "default") is gone because every With* records the value it
// was explicitly handed.
type settings struct {
	phys          sinr.Params
	seed          int64
	workers       int
	drop          float64
	autoNormalize bool
	broadcastProb float64
	rho           int
	maxRelErr     float64
	farMode       FarMode
	farPrec       FarPrecision
	cacheSize     int
	cacheTTL      time.Duration
	observer      sim.Observer
	injector      faults.Injector

	physSet    bool  // WithPhys applied in the current scope
	relErrSet  bool  // WithMaxRelError applied in the current scope
	farModeSet bool  // WithFarMode applied in the current scope
	farPrecSet bool  // WithFarPrecision applied in the current scope
	runScope   bool  // applying options to a single run, not to Open
	err        error // first option error, reported by Open/Run
}

func defaultSettings() settings {
	return settings{phys: sinr.DefaultParams(), cacheSize: maxCachedResults}
}

func (s *settings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Option configures a Network at Open time. The same values double as
// RunOption where per-run overrides make sense; options that shape the
// session itself (WithWorkers, WithAutoNormalize) are rejected by Run.
type Option func(*settings)

// RunOption adjusts a single Run (or one RunSpec of a RunMatrix sweep) on
// an open Network. Every RunOption is an Option; the reverse holds except
// for the Open-scoped options called out above.
type RunOption = Option

// WithPhys sets the SINR physical constants. Zero fields of p inherit the
// value currently in effect: the package defaults (α = 3, β = 1.5, N = 1)
// at Open, or the session's Open-time parameters at run scope — so a
// per-run α override keeps a session-customized β. As a RunOption it
// selects (building and caching on first use) the instance for that
// parameterization, so one Network serves sweeps across α/β/N without
// re-validating geometry. Joins, repairs, and physical epochs operate on
// an existing result's physics and reject this option.
func WithPhys(p PhysParams) Option {
	return func(s *settings) {
		if p.Alpha != 0 {
			s.phys.Alpha = p.Alpha
		}
		if p.Beta != 0 {
			s.phys.Beta = p.Beta
		}
		if p.Noise != 0 {
			s.phys.Noise = p.Noise
		}
		s.physSet = true
		if err := s.phys.Validate(); err != nil {
			s.fail(err)
		}
	}
}

// WithSeed sets the seed deriving all protocol randomness. Zero is a legal
// explicit seed (it is also the default).
func WithSeed(seed int64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithWorkers bounds the simulator worker pool (0 = NumCPU, the default).
// Open-scoped: the pool is sized once per Network.
func WithWorkers(n int) Option {
	return func(s *settings) {
		if s.runScope {
			s.fail(errors.New("sinrconn: WithWorkers is an Open option, not a run option"))
			return
		}
		if n < 0 {
			s.fail(fmt.Errorf("sinrconn: negative worker count %d", n))
			return
		}
		s.workers = n
	}
}

// WithDropProb injects reception failures (fading) with the given
// probability in [0, 1). Zero is a legal explicit value (no injection).
func WithDropProb(p float64) Option {
	return func(s *settings) {
		if p < 0 || p >= 1 {
			s.fail(fmt.Errorf("sinrconn: drop probability %v outside [0,1)", p))
			return
		}
		s.drop = p
	}
}

// WithAutoNormalize rescales the input so the minimum pairwise distance is
// 1 instead of rejecting un-normalized input. Open-scoped: the geometry is
// fixed when the Network opens.
func WithAutoNormalize(on bool) Option {
	return func(s *settings) {
		if s.runScope {
			s.fail(errors.New("sinrconn: WithAutoNormalize is an Open option, not a run option"))
			return
		}
		s.autoNormalize = on
	}
}

// WithBroadcastProb overrides the Section 6 broadcast probability p,
// which must lie in (0, 0.5].
func WithBroadcastProb(p float64) Option {
	return func(s *settings) {
		if p <= 0 || p > 0.5 {
			s.fail(fmt.Errorf("sinrconn: broadcast probability %v outside (0, 0.5]", p))
			return
		}
		s.broadcastProb = p
	}
}

// WithRho overrides the low-degree cap ρ for the TreeViaCapacity pipelines
// (must be ≥ 1).
func WithRho(rho int) Option {
	return func(s *settings) {
		if rho < 1 {
			s.fail(fmt.Errorf("sinrconn: rho %d must be ≥ 1", rho))
			return
		}
		s.rho = rho
	}
}

// WithMaxRelError enables the tile-based far-field interference
// approximation with the given worst-case relative error bound on per-slot
// interference sums (and hence a (1±ε) band on SINR values at the β cut).
// Distant senders are aggregated per spatial tile, making channel
// resolution sub-quadratic — the mode that carries instances past the
// exact kernel's O(n²) wall. ε = 0 (the default) selects the exact path,
// bit-identical to a Network without the option; ε > 0 selects the near
// ring radius k(ε, α) per DESIGN.md §7, and the certified bound — usually
// tighter than ε because k is integral — is honored by every engine slot
// and by Result.Tree.Verify, which validates schedules under the matching
// guard band. Legal at Open and at run scope; results for distinct ε are
// memoized separately. Operations on an existing result (Join, Repair,
// physical epochs) inherit the mode the result's tree was built under
// unless the operation passes this option explicitly.
func WithMaxRelError(eps float64) Option {
	return func(s *settings) {
		if eps < 0 || math.IsInf(eps, 1) || math.IsNaN(eps) {
			s.fail(fmt.Errorf("sinrconn: max relative error %v must be ≥ 0 and finite", eps))
			return
		}
		s.maxRelErr = eps
		s.relErrSet = true
	}
}

// WithFarMode selects the far-field engine behind WithMaxRelError: the
// hierarchical quadtree with adaptive per-slot selection (FarAuto, the
// default), the quadtree on every slot (FarQuadtree), or the flat tile
// grid (FarFlat — the pre-quadtree engine, retained for oracle lockstep).
// It has no effect at ε = 0. Legal at Open and at run scope; results for
// distinct modes are memoized separately, and operations on an existing
// result inherit the mode its tree was built under unless overridden.
func WithFarMode(m FarMode) Option {
	return func(s *settings) {
		if m > FarFlat {
			s.fail(fmt.Errorf("sinrconn: unknown far mode %v", m))
			return
		}
		s.farMode = m
		s.farModeSet = true
	}
}

// WithFarPrecision selects the aggregate precision of the quadtree
// far-field walks behind WithMaxRelError: float64 (Far64, the default) or
// the float32 mirror (Far32). It has no effect at ε = 0, and combining
// Far32 with FarFlat is an error (the flat grid keeps no float32 mirror).
// Legal at Open and at run scope; results for distinct precisions are
// memoized separately, and operations on an existing result inherit the
// precision its tree was built under unless overridden.
func WithFarPrecision(p FarPrecision) Option {
	return func(s *settings) {
		if p > Far32 {
			s.fail(fmt.Errorf("sinrconn: unknown far precision %v", p))
			return
		}
		s.farPrec = p
		s.farPrecSet = true
	}
}

// SlotEvent summarizes one simulator slot for an observing caller: the
// slot index within the current engine run, the number of concurrent
// transmitters, the number of successful decodes, and whether the slot was
// resolved through the far-field approximation (see WithMaxRelError).
type SlotEvent struct {
	Slot       int
	Senders    int
	Deliveries int
	Far        bool
}

// SlotObserver receives a SlotEvent after every simulator slot of a run.
// Observers are invoked synchronously on the engine's goroutine, so they
// must be fast and must not call back into the Network.
type SlotObserver func(SlotEvent)

// WithObserver streams per-slot channel activity to fn during a run — the
// hook the serving daemon uses for chunked result streaming. Observers are
// diagnostic: they never influence the constructed result, so they are
// excluded from the memo key. An observed run that hits the memo replays
// NO events (the construction did not execute); an observed run that
// misses computes privately — it never coalesces onto another caller's
// in-flight construction, whose slot events it could not see — and still
// commits its (deterministic) result for everyone else. fn = nil removes
// an Open-scoped observer for this run.
func WithObserver(fn SlotObserver) Option {
	return func(s *settings) {
		if fn == nil {
			s.observer = nil
			return
		}
		s.observer = func(e sim.SlotEvent) {
			fn(SlotEvent{Slot: e.Slot, Senders: e.Senders, Deliveries: e.Deliveries, Far: e.Far})
		}
	}
}

// WithFaultInjector installs a fault-injection hook (normally a
// *faults.Plan; see internal/faults) consulted at the handle's
// registered injection sites: cache.leader.panic before each uncached
// pipeline compute, churn.repair.fail before each churn repair
// attempt, and the engine sites (sim.slot.slow, pool.worker.stall) on
// every engine the session creates. Injected faults stall or fail
// operations but never alter computed results, so a fault-free replay
// of the same seed stays bit-identical. Open-scoped: the serving
// daemon installs one plan per server (`served -chaos`); production
// handles omit the option and pay a nil check per site. inj = nil is
// the default (no injection).
func WithFaultInjector(inj faults.Injector) Option {
	return func(s *settings) {
		if s.runScope {
			s.fail(errors.New("sinrconn: WithFaultInjector is an Open option, not a run option"))
			return
		}
		s.injector = inj
	}
}

// WithResultCache bounds the Network's result memo: at most size entries
// (LRU-evicted beyond that), each expiring ttl after insertion (ttl = 0
// means never — results are deterministic, so staleness is a memory
// concern, not a correctness one). size = 0 selects the default
// (maxCachedResults). Open-scoped: the memo is shared by every run on the
// handle, so it is sized once. Serving deployments size it from traffic;
// see internal/serve.
func WithResultCache(size int, ttl time.Duration) Option {
	return func(s *settings) {
		if s.runScope {
			s.fail(errors.New("sinrconn: WithResultCache is an Open option, not a run option"))
			return
		}
		if size < 0 || ttl < 0 {
			s.fail(fmt.Errorf("sinrconn: result cache size %d / ttl %v must be ≥ 0", size, ttl))
			return
		}
		if size == 0 {
			size = maxCachedResults
		}
		s.cacheSize = size
		s.cacheTTL = ttl
	}
}

// runKey identifies a deterministic run for memoization: everything that
// influences a pipeline's output. Worker counts are deliberately absent —
// results are reproducible regardless of parallelism (pinned by the sim
// package's pool-versus-serial tests).
type runKey struct {
	pipeline Pipeline
	phys     sinr.Params
	seed     int64
	drop     float64
	bprob    float64
	rho      int
	relErr   float64
	farMode  FarMode
	farPrec  FarPrecision
}

// maxCachedResults is the default capacity of the per-Network result
// memo, now a size- and TTL-bounded LRU (internal/serve/cache) with
// singleflight coalescing: beyond the capacity the least recently used
// result is evicted (still valid for callers holding it — eviction only
// drops the cache's reference), and concurrent identical queries share one
// construction. WithResultCache resizes it at Open.
const maxCachedResults = 128

// maxCachedInstances bounds the per-Network instance cache: each retained
// instance can hold an O(n²) gain table (up to 256 MiB at the sinr memory
// budget), so an unbounded phys sweep must not pin them all. Beyond the
// cap, runs get a fresh un-retained instance — correct, just un-amortized.
const maxCachedInstances = 16

// ErrNetworkClosed reports a Run on a closed Network.
var ErrNetworkClosed = errors.New("sinrconn: network is closed")

// Network is a long-lived session handle over one validated point set. It
// owns the physics instances (gain tables built once per parameterization)
// and a persistent simulator worker pool; every run, join, repair, and
// physical epoch on the handle reuses them. Methods are safe for
// concurrent use — the instance is read-only after build and the pool is
// engine-agnostic — which is what RunMatrix exploits.
//
// Close releases the worker pool. Results remain valid after Close; only
// new runs are refused.
type Network struct {
	pts  []geom.Point
	base settings

	// parent is set on Networks derived by Join: they share the parent's
	// pool (resolved dynamically, so a parent Close degrades derived
	// networks to per-run pools instead of crashing them).
	parent *Network

	mu     sync.Mutex
	pool   *sim.Pool
	closed bool
	insts  map[sinr.Params]*sinr.Instance
	memo   *cache.Cache[runKey, *Result]

	// running counts in-flight operations (beginOp) and pool borrows
	// (acquirePool). Close waits for it before returning, so "new work is
	// refused" is a barrier: once Close returns, no admitted operation is
	// still executing and no engine can dispatch on closed worker channels.
	running sync.WaitGroup
}

// Open validates pts (non-empty, minimum pairwise distance ≥ 1 unless
// WithAutoNormalize), builds the instance for the configured physical
// parameters — paying the O(n²) gain table exactly once for the session —
// and spawns the persistent worker pool. Callers own the handle: Close it
// to release the pool's goroutines.
func Open(pts []Point, opts ...Option) (*Network, error) {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	if s.err != nil {
		return nil, s.err
	}
	nw, err := newNetwork(pts, s)
	if err != nil {
		return nil, err
	}
	nw.pool = sim.NewPool(s.workers)
	return nw, nil
}

// newNetwork builds the handle minus the pool (the deprecated wrappers use
// pool-less "standalone" networks whose engines spawn and release their own
// workers per run, reproducing the legacy behavior exactly).
func newNetwork(pts []Point, s settings) (*Network, error) {
	if len(pts) == 0 {
		return nil, errors.New("sinrconn: no points")
	}
	g := make([]geom.Point, len(pts))
	for i, p := range pts {
		g[i] = geom.Point{X: p.X, Y: p.Y}
	}
	if len(g) > 1 {
		if md := geom.MinDist(g); md < 1-1e-9 {
			if !s.autoNormalize {
				return nil, fmt.Errorf("%w: min distance %v", ErrNotNormalized, md)
			}
			if md <= 0 {
				return nil, errors.New("sinrconn: duplicate points")
			}
			g, _ = geom.Normalize(g)
		}
	}
	nw := &Network{
		pts:   g,
		base:  s,
		insts: make(map[sinr.Params]*sinr.Instance),
		memo:  cache.New[runKey, *Result](s.cacheSize, s.cacheTTL),
	}
	if _, err := nw.instanceFor(s.phys); err != nil {
		return nil, err
	}
	return nw, nil
}

// Close releases the Network's worker pool, waiting first for in-flight
// operations to finish so their engines never touch closed worker
// channels. Networks derived by Join share their parent's pool and never
// close it. Close is idempotent; existing Results stay usable, new runs
// return ErrNetworkClosed.
func (nw *Network) Close() error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil
	}
	nw.closed = true
	p := nw.pool
	nw.pool = nil
	nw.mu.Unlock()
	nw.running.Wait()
	if p != nil {
		p.Close()
	}
	return nil
}

// Len returns the number of nodes the Network spans.
func (nw *Network) Len() int { return len(nw.pts) }

// acquirePool borrows the session worker pool (the Network's own, or the
// parent's for Join-derived handles) for one operation, registering it so
// Close blocks until the operation releases. A nil pool (standalone
// wrapper networks, or after Close) means engines manage their own
// workers; the returned release func must be called in every case.
func (nw *Network) acquirePool() (*sim.Pool, func()) {
	owner := nw
	if nw.parent != nil {
		owner = nw.parent
	}
	owner.mu.Lock()
	defer owner.mu.Unlock()
	if owner.closed || owner.pool == nil {
		return nil, func() {}
	}
	owner.running.Add(1)
	return owner.pool, func() { owner.running.Done() }
}

// beginOp admits one operation on the handle: refused with
// ErrNetworkClosed once Close has started, registered in running
// otherwise — so Close blocks until every admitted operation calls the
// returned release (no run can still be executing after Close returns).
func (nw *Network) beginOp() (func(), error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.closed {
		return nil, ErrNetworkClosed
	}
	nw.running.Add(1)
	return func() { nw.running.Done() }, nil
}

// instanceFor returns the session instance for the given physical
// parameters, building and caching it on first use. Instances are
// read-only after build and shared freely across concurrent runs.
func (nw *Network) instanceFor(p sinr.Params) (*sinr.Instance, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if in, ok := nw.insts[p]; ok {
		return in, nil
	}
	in, err := sinr.NewInstance(nw.pts, p)
	if err != nil {
		return nil, err
	}
	if len(nw.insts) < maxCachedInstances {
		nw.insts[p] = in
	}
	return in, nil
}

// runSettings resolves per-run options against the Network's base
// configuration.
func (nw *Network) runSettings(opts []RunOption) (settings, error) {
	s := nw.base
	s.err = nil
	s.runScope = true
	s.physSet = false
	s.relErrSet = false
	s.farModeSet = false
	s.farPrecSet = false
	for _, o := range opts {
		o(&s)
	}
	return s, s.err
}

func (s *settings) key(p Pipeline) runKey {
	mode := s.farMode
	prec := s.farPrec
	if s.maxRelErr == 0 {
		// ε = 0 is the exact path whatever the mode or precision —
		// normalize so the memo never splits identical exact results.
		mode = FarAuto
		prec = Far64
	}
	return runKey{
		pipeline: p,
		phys:     s.phys,
		seed:     s.seed,
		drop:     s.drop,
		bprob:    s.broadcastProb,
		rho:      s.rho,
		relErr:   s.maxRelErr,
		farMode:  mode,
		farPrec:  prec,
	}
}

// CacheStats snapshots the handle's result-memo counters (hits, misses,
// coalesced computes, evictions, expirations, compute latency). The
// serving daemon aggregates these across sessions onto /metrics.
func (nw *Network) CacheStats() cache.Stats { return nw.memo.Stats() }

// initConfig derives the core construction config for a run on the
// acquired pool.
func initConfig(s settings, pool *sim.Pool, ff sinr.Far, adaptive bool) core.InitConfig {
	return core.InitConfig{
		BroadcastProb: s.broadcastProb,
		Seed:          s.seed,
		Workers:       s.workers,
		DropProb:      s.drop,
		Pool:          pool,
		FarField:      ff,
		Adaptive:      adaptive,
		Observer:      s.observer,
		Injector:      s.injector,
	}
}

// farFieldFor resolves the far-field engine a settings' (ε, mode) selects
// over in — nil plan for the exact path — plus whether engines should pick
// exact/far per slot adaptively. ε = 0 is always exact; FarAuto (the
// default) is the quadtree with adaptive selection; FarFlat is the flat
// grid, demoted to exact when its one-global-near-ring geometry is
// near-dominated (the tight-ε regime where the flat plan does strictly
// more work than exact resolution — see sinr.FarField.NearDominated).
func farFieldFor(in *sinr.Instance, s settings) (ff sinr.Far, adaptive bool, err error) {
	if s.maxRelErr == 0 {
		return nil, false, nil
	}
	switch s.farMode {
	case FarFlat:
		if s.farPrec == Far32 {
			return nil, false, errors.New("sinrconn: WithFarPrecision(Far32) requires the quadtree engine (FarFlat keeps no float32 mirror)")
		}
		f, err := in.FarField(s.maxRelErr)
		if err != nil {
			return nil, false, err
		}
		if f.NearDominated() {
			return nil, false, nil
		}
		return f, false, nil
	case FarQuadtree:
		q, err := in.QuadTree(s.maxRelErr)
		if err != nil {
			return nil, false, err
		}
		if s.farPrec == Far32 {
			return q.Prec32(), false, nil
		}
		return q, false, nil
	default: // FarAuto
		q, err := in.QuadTree(s.maxRelErr)
		if err != nil {
			return nil, false, err
		}
		if q.NearDominated() {
			// The leaf-level opening horizon covers most of the instance
			// (tight ε on a small box): most listeners would open most of
			// the pyramid, an exact scan with overhead. Auto mode serves
			// the ε contract with the exact path — zero error trivially
			// satisfies the bound, faster. A forced FarQuadtree keeps the
			// plan.
			return nil, false, nil
		}
		if s.farPrec == Far32 {
			return q.Prec32(), true, nil
		}
		return q, true, nil
	}
}

// opFarField resolves the channel mode for an operation on an existing
// result (join, repair, physical epoch). An explicit WithMaxRelError on
// the operation wins outright; an explicit WithFarMode or WithFarPrecision
// alone switches the engine (inheriting whichever of mode/precision was
// not overridden) but keeps the ε the result's tree was built under (a
// mode is not an error bound — discarding the tree's ε would silently flip
// the operation to exact physics); with none of the three, the operation
// inherits engine, ε, precision, and adaptivity from the tree — so growing
// or re-driving an ε-built tree never silently switches it to exact
// physics (and vice versa). in is the operation's instance — the tree's
// own for repairs and epochs, the extended one for joins.
func opFarField(r *Result, in *sinr.Instance, s settings) (sinr.Far, bool, error) {
	if s.relErrSet {
		return farFieldFor(in, s)
	}
	if s.farModeSet || s.farPrecSet {
		if r.Tree.ff == nil {
			return nil, false, nil // exact-built tree stays exact
		}
		f32, wasF32 := r.Tree.ff.(*sinr.QuadTreeF32)
		if !s.farPrecSet && wasF32 {
			s.farPrec = Far32
		}
		if !s.farModeSet {
			// WithFarPrecision alone keeps the engine and adaptivity the
			// tree was built under.
			if _, flat := r.Tree.ff.(*sinr.FarField); flat {
				s.farMode = FarFlat
			} else if r.Tree.ffAdaptive {
				s.farMode = FarAuto
			} else {
				s.farMode = FarQuadtree
			}
		}
		if wasF32 {
			s.maxRelErr = f32.Base().MaxRelError()
		} else {
			s.maxRelErr = r.Tree.ff.MaxRelError()
		}
		return farFieldFor(in, s)
	}
	switch f := r.Tree.ff.(type) {
	case nil:
		return nil, false, nil
	case *sinr.FarField:
		nf, err := in.FarField(f.MaxRelError())
		return nf, r.Tree.ffAdaptive, err
	case *sinr.QuadTree:
		nq, err := in.QuadTree(f.MaxRelError())
		return nq, r.Tree.ffAdaptive, err
	case *sinr.QuadTreeF32:
		nq, err := in.QuadTree(f.Base().MaxRelError())
		if err != nil {
			return nil, false, err
		}
		return nq.Prec32(), r.Tree.ffAdaptive, nil
	}
	return farFieldFor(in, s)
}

// Run executes one pipeline on the open handle, reusing the session's
// instance (no geometry re-validation, no gain-table rebuild) and worker
// pool. ctx is honored between simulator slots in every pipeline: on
// cancellation or deadline Run returns an error wrapping ctx.Err() and the
// handle remains fully usable.
//
// Runs are deterministic for fixed settings, and the handle memoizes them:
// repeating a (pipeline, phys, seed, …) query returns the same *Result
// without re-running the construction, and concurrent identical queries
// coalesce onto ONE construction (the rest wait and share the committed
// result). A result enters the memo only when its construction finishes
// without error — a run canceled between slots commits nothing, and any
// coalesced waiters retry with their own contexts. Results are shared and
// must be treated as read-only, which every method on them honors.
func (nw *Network) Run(ctx context.Context, p Pipeline, opts ...RunOption) (*Result, error) {
	r, _, err := nw.RunCached(ctx, p, opts...)
	return r, err
}

// RunCached is Run plus a report of whether the result was served from the
// memo (a direct hit, or a wait on another caller's identical in-flight
// construction) rather than computed by this call. The serving daemon uses
// it to label responses; the result is identical to Run's either way.
func (nw *Network) RunCached(ctx context.Context, p Pipeline, opts ...RunOption) (*Result, bool, error) {
	done, err := nw.beginOp()
	if err != nil {
		return nil, false, err
	}
	defer done()
	s, err := nw.runSettings(opts)
	if err != nil {
		return nil, false, err
	}
	switch p {
	case PipelineInit, PipelineRescheduleMean, PipelineTVCMean, PipelineTVCArbitrary:
	default:
		return nil, false, fmt.Errorf("sinrconn: unknown pipeline %v", p)
	}
	key := s.key(p)
	if s.observer != nil {
		// Observed runs never coalesce: a waiter sees none of the leader's
		// slot events, which would silently violate the streaming contract.
		// The memo still serves hits (no events — nothing executed) and the
		// private compute still commits for everyone else.
		if r, ok := nw.memo.Get(key); ok {
			return r, true, nil
		}
		res, err := nw.compute(ctx, p, s)
		if err != nil {
			return nil, false, err
		}
		nw.memo.Add(key, res)
		return res, false, nil
	}
	return nw.memo.Do(ctx, key, func() (*Result, error) {
		return nw.compute(ctx, p, s)
	})
}

// compute executes one pipeline uncached, on the session instance and
// pool. It is the memo's compute function: an error return (including
// cancellation between slots) must leave nothing observable behind, which
// holds because every pipeline builds its result privately and returns it
// only on success.
func (nw *Network) compute(ctx context.Context, p Pipeline, s settings) (*Result, error) {
	// Fault site cache.leader.panic: compute runs as the result memo's
	// singleflight leader (or as a private observed run), so a panic here
	// exercises the cache's leader-failure path — followers must be
	// released with an error, never wedged (TestLeaderPanicReleasesFollowers),
	// and the serving daemon's recovery middleware must turn it into a 500.
	if s.injector != nil {
		if act, ok := s.injector.Fire(faults.CacheLeaderPanic); ok {
			panic(fmt.Sprintf("sinrconn: injected fault %s #%d", act.Site, act.Seq))
		}
	}
	in, err := nw.instanceFor(s.phys)
	if err != nil {
		return nil, err
	}
	ff, adaptive, err := farFieldFor(in, s)
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()
	switch p {
	case PipelineInit:
		return nw.runInit(ctx, in, s, pool, ff, adaptive)
	case PipelineRescheduleMean:
		return nw.runRescheduleMean(ctx, in, s, pool, ff, adaptive)
	case PipelineTVCMean:
		return nw.runTVC(ctx, in, s, pool, ff, adaptive, core.VariantMean)
	case PipelineTVCArbitrary:
		return nw.runTVC(ctx, in, s, pool, ff, adaptive, core.VariantArbitrary)
	}
	return nil, fmt.Errorf("sinrconn: unknown pipeline %v", p)
}

// newResult binds a constructed tree and its metrics to this handle. ff
// (nil in exact mode) records the far-field plan the construction ran
// under — flat grid or quadtree — so Verify applies the matching guard
// band, and adaptive whether its engines picked modes per slot, so
// operations on the result inherit the full channel mode.
func (nw *Network) newResult(in *sinr.Instance, bt *tree.BiTree, m Metrics, ff sinr.Far, adaptive bool) *Result {
	return &Result{Tree: publicTree(in, bt, ff, adaptive), Metrics: m, nw: nw}
}

// runInit is the Section 6 pipeline body (Theorem 2).
func (nw *Network) runInit(ctx context.Context, in *sinr.Instance, s settings, pool *sim.Pool, ff sinr.Far, adaptive bool) (*Result, error) {
	res, err := core.Init(ctx, in, initConfig(s, pool, ff, adaptive))
	if err != nil {
		return nil, err
	}
	bt := res.Tree
	bt.Compact()
	m := Metrics{
		SlotsUsed:      res.SlotsUsed,
		ScheduleLength: bt.NumSlots(),
		Rounds:         res.Rounds,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         res.Stats.Energy,
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return nw.newResult(in, bt, m, ff, adaptive), nil
}

// runRescheduleMean is the Section 7 pipeline body (Theorem 3).
func (nw *Network) runRescheduleMean(ctx context.Context, in *sinr.Instance, s settings, pool *sim.Pool, ff sinr.Far, adaptive bool) (*Result, error) {
	ires, err := core.Init(ctx, in, initConfig(s, pool, ff, adaptive))
	if err != nil {
		return nil, err
	}
	pa := sinr.NoiseSafeMean(in.Params(), math.Max(1, in.Delta()))
	rres, err := core.Reschedule(ctx, in, ires.Tree, pa, schedule.DistConfig{
		Seed:     s.seed + 1,
		Workers:  s.workers,
		Pool:     pool,
		FarField: ff,
		Adaptive: adaptive,
		Observer: s.observer,
		Injector: s.injector,
	})
	if err != nil {
		return nil, err
	}
	m := Metrics{
		SlotsUsed:      ires.SlotsUsed + 2*rres.SlotPairs,
		ScheduleLength: rres.NumSlots,
		Rounds:         ires.Rounds,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         ires.Stats.Energy + rres.Stats.Energy,
	}
	return nw.newResult(in, rres.Tree, m, ff, adaptive), nil
}

// runTVC is the Section 8 pipeline body (Theorem 4, both halves).
func (nw *Network) runTVC(ctx context.Context, in *sinr.Instance, s settings, pool *sim.Pool, ff sinr.Far, adaptive bool, v core.Variant) (*Result, error) {
	icfg := initConfig(s, pool, ff, adaptive)
	icfg.Seed = 0 // TreeViaCapacity derives per-iteration seeds from its own
	res, err := core.TreeViaCapacity(ctx, in, core.TVCConfig{
		Variant: v,
		Seed:    s.seed,
		Rho:     s.rho,
		Init:    icfg,
	})
	if err != nil {
		return nil, err
	}
	bt := res.Tree
	m := Metrics{
		SlotsUsed:      res.ConstructionSlots,
		ScheduleLength: bt.NumSlots(),
		Iterations:     res.Iterations,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         res.Energy,
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return nw.newResult(in, bt, m, ff, adaptive), nil
}
