package sinr

import (
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
)

// TestExtendMatchesFreshInstance pins the join fast path: an extended
// instance's gain table must be bit-identical to one built from scratch on
// the union point set, for every entry (copied block and new rows alike).
func TestExtendMatchesFreshInstance(t *testing.T) {
	for _, alpha := range []float64{2, 2.5, 3, 4} {
		rng := rand.New(rand.NewSource(7))
		base := make([]geom.Point, 40)
		for i := range base {
			base[i] = geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		extra := make([]geom.Point, 9)
		for i := range extra {
			extra[i] = geom.Point{X: 200 + rng.Float64()*20, Y: rng.Float64() * 20}
		}
		p := DefaultParams()
		p.Alpha = alpha
		parent := MustInstance(base, p)
		got, err := parent.Extend(extra)
		if err != nil {
			t.Fatal(err)
		}
		union := append(append([]geom.Point(nil), base...), extra...)
		want := MustInstance(union, p)
		if got.Len() != want.Len() {
			t.Fatalf("alpha %v: extended has %d nodes, want %d", alpha, got.Len(), want.Len())
		}
		gt, wt := got.GainTable(), want.GainTable()
		if len(gt) != len(wt) {
			t.Fatalf("alpha %v: table sizes %d vs %d", alpha, len(gt), len(wt))
		}
		for i := range gt {
			if gt[i] != wt[i] {
				t.Fatalf("alpha %v: gain entry %d differs: %v vs %v", alpha, i, gt[i], wt[i])
			}
		}
	}
}

// TestExtendEmpty covers the degenerate no-new-points call.
func TestExtendEmpty(t *testing.T) {
	parent := MustInstance([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}}, DefaultParams())
	got, err := parent.Extend(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("extended len %d, want 2", got.Len())
	}
}
