package sinr_test

// Black-box lockstep of the table-driven Morton codec against the
// oracle's naive per-bit interleave: the kernel and the oracle must agree
// on the layout itself before any aggregate comparison means anything.
// (The white-box round-trip test in package sinr pins the codec against a
// local per-bit reference; this one crosses package boundaries and the
// two independent implementations.)

import (
	"testing"

	"sinrconn/internal/oracle"
	"sinrconn/internal/sinr"
)

func TestMortonOracleLockstep(t *testing.T) {
	// Exhaustive over the deepest plan's coordinate range (9 levels →
	// coordinates < 2^9) in both directions.
	const dim = 1 << 9
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			want := oracle.Morton(x, y)
			if got := int(sinr.MortonEncode(int32(x), int32(y))); got != want {
				t.Fatalf("MortonEncode(%d,%d) = %d, oracle %d", x, y, got, want)
			}
		}
	}
	for id := 0; id < dim*dim; id++ {
		wx, wy := oracle.MortonXY(id)
		gx, gy := sinr.MortonDecode(int32(id))
		if int(gx) != wx || int(gy) != wy {
			t.Fatalf("MortonDecode(%d) = (%d,%d), oracle (%d,%d)", id, gx, gy, wx, wy)
		}
	}
}
