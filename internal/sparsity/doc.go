// Package sparsity implements Definition 8 of the paper: a link set L is
// ψ-sparse if every closed ball B contains at most ψ endpoints of links of
// length ≥ 8·rad(B). Sparsity is the geometric property connecting the Init
// tree to efficient scheduling (Thm 9/11/13): O(log n)-sparsity of the full
// tree and O(1)-sparsity of its low-degree core are what make the capacity
// arguments work. The package also provides the C-independence partition of
// Appendix A (Lemma 23).
package sparsity
