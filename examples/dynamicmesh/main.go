// Dynamicmesh: the lifecycle the paper's conclusion asks for — nodes wake
// up asynchronously after the network is formed, and nodes fail and must
// be routed around. Build a bi-tree, attach a batch of late joiners
// distributedly, then kill an interior node (and later the root) and
// repair. Every intermediate structure is re-verified.
//
//	go run ./examples/dynamicmesh
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sinrconn"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	pts := scatter(rng, 48, 18)

	res, err := sinrconn.BuildInitialBiTree(pts, sinrconn.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report("initial network", res)

	// A remote cluster of three nodes powers on.
	late := []sinrconn.Point{{X: 60, Y: 5}, {X: 62.5, Y: 3}, {X: 64, Y: 6}}
	res, err = res.JoinPoints(late, sinrconn.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	report("after 3 late joiners", res)

	// An interior node dies; its subtrees must re-attach.
	par := res.Tree.Parent()
	counts := map[int]int{}
	for _, p := range par {
		counts[p]++
	}
	victim := -1
	for v, c := range counts {
		if v != res.Tree.Root && c >= 2 {
			victim = v
			break
		}
	}
	if victim < 0 {
		log.Fatal("no interior node with 2+ children")
	}
	res, err = res.RepairFailures([]int{victim}, sinrconn.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("after interior node %d failed", victim), res)

	// The root itself dies; a new root is promoted.
	old := res.Tree.Root
	res, err = res.RepairFailures([]int{old}, sinrconn.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("after root %d failed (new root %d)", old, res.Tree.Root), res)

	// A link is blocked by an obstacle (both endpoints alive); the orphaned
	// subtree must re-attach without re-forming that link.
	blocked := res.Tree.Up[0].Link
	res, err = res.RepairLinkFailures([]sinrconn.Link{blocked}, sinrconn.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range res.Tree.Up {
		if l.Link == blocked {
			log.Fatal("blocked link re-formed")
		}
	}
	report(fmt.Sprintf("after link %d->%d was blocked", blocked.From, blocked.To), res)
}

func report(stage string, res *sinrconn.Result) {
	if err := res.Tree.Verify(); err != nil {
		log.Fatalf("%s: verification failed: %v", stage, err)
	}
	m := res.Metrics
	fmt.Printf("%-36s nodes=%-3d schedule=%-3d channel slots=%-5d agg latency=%d\n",
		stage, res.Tree.NumNodes, m.ScheduleLength, m.SlotsUsed, m.AggregationLatency)
}

func scatter(rng *rand.Rand, n int, span float64) []sinrconn.Point {
	var pts []sinrconn.Point
	for len(pts) < n {
		cand := sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}
