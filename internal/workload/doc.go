// Package workload generates the point-set instances the experiments run
// on. Every generator guarantees the paper's normalization: minimum
// pairwise distance ≥ 1. The exponential chain drives Δ (the max/min
// distance ratio) independently of n, which is what separates the
// log Δ-dependent algorithms from the log n-dependent ones in the
// experiment tables.
package workload
