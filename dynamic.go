package sinrconn

// Dynamic-membership operations: the extensions the paper's conclusion
// calls for ("asynchronous node wakeup, node and link failures"). Both
// operate on an existing Result and return a fresh one; the original is
// never mutated.

import (
	"errors"
	"fmt"

	"sinrconn/internal/core"
	"sinrconn/internal/geom"
	"sinrconn/internal/sinr"
)

// JoinPoints attaches newly awakened nodes at newPts to the existing
// bi-tree, distributedly (members acknowledge, joiners ladder through
// distance classes — see core.Join). The new nodes receive indices
// starting at the current node count, in input order. The combined point
// set must keep minimum pairwise distance ≥ 1; joins never renormalize,
// since that would silently move the existing nodes.
func (r *Result) JoinPoints(newPts []Point, opt Options) (*Result, error) {
	if len(newPts) == 0 {
		return nil, errors.New("sinrconn: no points to join")
	}
	oldTree := r.Tree.inner
	oldInst := r.Tree.inst

	pts := append([]geom.Point(nil), oldInst.Points()...)
	joiners := make([]int, 0, len(newPts))
	for _, p := range newPts {
		joiners = append(joiners, len(pts))
		pts = append(pts, geom.Point{X: p.X, Y: p.Y})
	}
	if md := geom.MinDist(pts); md < 1-1e-9 {
		return nil, fmt.Errorf("%w: min distance %v after join", ErrNotNormalized, md)
	}
	in, err := sinr.NewInstance(pts, oldInst.Params())
	if err != nil {
		return nil, err
	}
	jres, err := core.Join(in, oldTree, joiners, core.InitConfig{
		BroadcastProb: opt.BroadcastProb,
		Seed:          opt.Seed,
		Workers:       opt.Workers,
		DropProb:      opt.DropProb,
	})
	if err != nil {
		return nil, err
	}
	bt := jres.Tree
	m := Metrics{
		SlotsUsed:      jres.SlotsUsed,
		ScheduleLength: bt.NumSlots(),
		Rounds:         jres.Rounds,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         jres.Stats.Energy,
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return &Result{Tree: publicTree(in, bt), Metrics: m}, nil
}

// RepairFailures removes the given (failed) node indices from the tree and
// reconnects the surviving nodes: orphaned subtrees re-attach as units via
// the join protocol and the schedule is recomputed (see core.Repair). If
// the root failed, the largest orphan subtree is promoted.
func (r *Result) RepairFailures(failed []int, opt Options) (*Result, error) {
	if len(failed) == 0 {
		return nil, errors.New("sinrconn: no failed nodes given")
	}
	in := r.Tree.inst
	rres, err := core.Repair(in, r.Tree.inner, failed, core.InitConfig{
		BroadcastProb: opt.BroadcastProb,
		Seed:          opt.Seed,
		Workers:       opt.Workers,
		DropProb:      opt.DropProb,
	})
	if err != nil {
		return nil, err
	}
	bt := rres.Tree
	m := Metrics{
		SlotsUsed:      rres.SlotsUsed,
		ScheduleLength: rres.ScheduleLength,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return &Result{Tree: publicTree(in, bt), Metrics: m}, nil
}

// RepairLinkFailures handles permanent link failures: the given tree links
// have become unusable (an obstacle the path-loss model cannot see) while
// both endpoints remain alive. The orphaned subtrees re-attach via the
// join protocol — explicitly forbidden from re-forming the failed links —
// and the schedule is recomputed.
func (r *Result) RepairLinkFailures(links []Link, opt Options) (*Result, error) {
	if len(links) == 0 {
		return nil, errors.New("sinrconn: no failed links given")
	}
	in := r.Tree.inst
	failed := make([]sinr.Link, len(links))
	for i, l := range links {
		failed[i] = sinr.Link{From: l.From, To: l.To}
	}
	rres, err := core.RepairLinks(in, r.Tree.inner, failed, core.InitConfig{
		BroadcastProb: opt.BroadcastProb,
		Seed:          opt.Seed,
		Workers:       opt.Workers,
		DropProb:      opt.DropProb,
	})
	if err != nil {
		return nil, err
	}
	bt := rres.Tree
	m := Metrics{
		SlotsUsed:      rres.SlotsUsed,
		ScheduleLength: rres.ScheduleLength,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return &Result{Tree: publicTree(in, bt), Metrics: m}, nil
}
