// Package serve is the serving daemon behind cmd/served: a long-running
// HTTP/JSON surface (stdlib net/http only) over the session API —
// Open/Run/RunMatrix/Join/Repair/RepairLinks/Churn on per-session handles —
// built for heavy traffic from many concurrent clients.
//
// The daemon is a TRANSPORT, never a semantics change: every response body
// is produced by encoding the exact *sinrconn.Result an in-process call
// returns, which the differential gate (diff_test.go) pins bit-identical
// across the full scenario matrix.
//
// Architecture (DESIGN.md §10):
//
//   - Sessions & deployment dedup. POST /v1/sessions opens a session; the
//     server content-addresses the (points, open-options) pair, so a
//     thousand sessions over the same deployment share ONE *sinrconn.Network
//     — one physics instance, one worker pool, one result cache. A session
//     is a refcount plus a namespace of result handles; DELETE drops it and
//     the last drop closes the Network.
//
//   - The result cache. Each Network's memo is the size/TTL-bounded LRU of
//     internal/serve/cache with singleflight coalescing: concurrent
//     identical queries run ONE construction. A memo hit is ~5×10⁴× cheaper
//     than a rebuild (BENCH_api.json), so the exported hit rate — on
//     /metrics and /healthz — is the daemon's capacity gauge.
//
//   - Streaming. A run request with "stream": true answers with chunked
//     newline-delimited JSON: one event per simulator slot (via
//     sinrconn.WithObserver) followed by a terminal result or error line.
//
//   - Deadlines & drain. Every request context is the HTTP request context
//     (client disconnect cancels the run between slots) bounded by the
//     request's timeout_ms and the server's MaxTimeout. On SIGTERM,
//     cmd/served marks the server draining (new sessions are refused with
//     503, /healthz reports "draining"), lets http.Server.Shutdown wait for
//     in-flight requests, then closes every deployment.
package serve
