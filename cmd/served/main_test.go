package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuf is an io.Writer safe to read while run() writes from its own
// goroutine.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// waitListen polls the output for the bound address.
func waitListen(t *testing.T, out *lockedBuf) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never reported its address; output:\n%s", out.String())
	return ""
}

// TestServedSIGTERMDrain boots the daemon, verifies it serves, then sends
// a real SIGTERM and requires a clean drain: run() returns nil and reports
// draining + stopped.
func TestServedSIGTERMDrain(t *testing.T) {
	var out lockedBuf
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, &out)
	}()
	addr := waitListen(t, &out)

	// The daemon is live: open a session over HTTP.
	resp, err := http.Post("http://"+addr+"/v1/sessions", "application/json",
		strings.NewReader(`{"points":[[0,0],[1.5,0],[0,1.5],[3,3]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var open struct {
		SessionID string `json:"session_id"`
	}
	json.NewDecoder(resp.Body).Decode(&open)
	resp.Body.Close()
	if open.SessionID == "" {
		t.Fatal("open returned no session id")
	}

	// Real signal, real drain path (signal.NotifyContext intercepts it).
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; output:\n%s", out.String())
	}
	text := out.String()
	for _, want := range []string{"served: draining", "served: stopped"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestServedJournalRecover is the kill-restart smoke: daemon one
// journals two session opens and dies on SIGTERM without closing them
// (a drain writes no close records — exactly like a crash for journal
// purposes); daemon two boots with -recover on the same journal and
// must serve runs on the ORIGINAL session ids.
func TestServedJournalRecover(t *testing.T) {
	journal := t.TempDir() + "/sessions.journal"
	boot := func(args ...string) (*lockedBuf, chan error, string) {
		var out lockedBuf
		done := make(chan error, 1)
		go func() {
			done <- run(append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s", "-journal", journal}, args...), &out)
		}()
		return &out, done, waitListen(t, &out)
	}
	stop := func(t *testing.T, done chan error) {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after SIGTERM, want nil", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain after SIGTERM")
		}
	}
	openSession := func(t *testing.T, addr, points string) string {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/sessions", "application/json",
			strings.NewReader(`{"points":`+points+`}`))
		if err != nil {
			t.Fatal(err)
		}
		var open struct {
			SessionID string `json:"session_id"`
		}
		json.NewDecoder(resp.Body).Decode(&open)
		resp.Body.Close()
		if open.SessionID == "" {
			t.Fatal("open returned no session id")
		}
		return open.SessionID
	}

	_, done1, addr1 := boot()
	id1 := openSession(t, addr1, `[[0,0],[1.5,0],[0,1.5],[3,3]]`)
	id2 := openSession(t, addr1, `[[0,0],[2,0],[0,2]]`)
	stop(t, done1)

	out2, done2, addr2 := boot("-recover")
	if !strings.Contains(out2.String(), "recovered 2 sessions") {
		t.Fatalf("restart did not report recovery:\n%s", out2.String())
	}
	for _, id := range []string{id1, id2} {
		resp, err := http.Post("http://"+addr2+"/v1/sessions/"+id+"/run", "application/json",
			strings.NewReader(`{"pipeline":"init-uniform","options":{"seed":1}}`))
		if err != nil {
			t.Fatal(err)
		}
		var run struct {
			ResultID string `json:"result_id"`
		}
		json.NewDecoder(resp.Body).Decode(&run)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || run.ResultID == "" {
			t.Fatalf("run on recovered session %s: status %d, result %q", id, resp.StatusCode, run.ResultID)
		}
	}
	stop(t, done2)
}

// TestServedLoadgenSelfDrive exercises the -loadgen smoke mode end to end:
// boot, self-drive a short load over real HTTP, print a report with a
// non-zero hit rate, drain, exit clean.
func TestServedLoadgenSelfDrive(t *testing.T) {
	var out lockedBuf
	err := run([]string{
		"-addr", "127.0.0.1:0",
		"-loadgen", "2s",
		"-loadgen-clients", "4",
		"-loadgen-n", "32",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	start := strings.Index(text, "{")
	end := strings.LastIndex(text, "}")
	if start < 0 || end < start {
		t.Fatalf("no JSON report in output:\n%s", text)
	}
	var report struct {
		Requests int     `json:"requests"`
		Errors   int     `json:"errors"`
		HitRate  float64 `json:"hit_rate"`
		P50Ms    float64 `json:"p50_ms"`
		P99Ms    float64 `json:"p99_ms"`
	}
	if err := json.Unmarshal([]byte(text[start:end+1]), &report); err != nil {
		t.Fatalf("bad report JSON: %v\n%s", err, text)
	}
	if report.Requests < 10 {
		t.Fatalf("smoke issued only %d requests", report.Requests)
	}
	if report.Errors > 0 {
		t.Fatalf("smoke saw %d request errors", report.Errors)
	}
	if report.HitRate <= 0 {
		t.Fatalf("smoke hit rate %v, want > 0 (repeat-heavy trace must hit the cache)", report.HitRate)
	}
	if !strings.Contains(text, "served: stopped") {
		t.Fatalf("daemon did not report clean stop:\n%s", text)
	}
}
