package serve

// Crash recovery (DESIGN.md §13.6): an append-only, fsync'd session
// journal. Every session open is recorded with its full OpenRequest
// and the content-address (deployKey) of the deployment it resolved
// to; every close is recorded by id. `served -recover` replays the
// journal on boot (Server.Restore): surviving sessions — opens without
// a matching close — are re-opened through the normal open path with
// their original ids, and the recomputed deployment key is checked
// against the journaled one, so a corrupted or mismatched journal is
// detected instead of silently serving wrong geometry. Results are NOT
// journaled: deployments are content-addressed and every pipeline is
// deterministic, so a recovered daemon answers bit-identically to one
// that never crashed (TestJournalRecoverDifferential) — the only loss
// is warm cache state, which refills on first touch.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Journal record operations.
const (
	journalOpOpen  = "open"
	journalOpClose = "close"
)

// JournalRecord is one line of the session journal.
type JournalRecord struct {
	// Op is "open" or "close".
	Op string `json:"op"`
	// ID is the session id the record concerns.
	ID string `json:"id"`
	// Key is the deployment content-address (deployKey, 16 hex digits)
	// the open resolved to; Restore verifies the replay reproduces it.
	Key string `json:"key,omitempty"`
	// Open is the original open request (open records only).
	Open *OpenRequest `json:"open,omitempty"`
}

// Journal is an append-only session journal: one JSON record per line,
// fsync'd per append so a crash loses at most the record being
// written (whose torn tail ReadJournal tolerates).
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	records atomic.Uint64
	errs    atomic.Uint64
}

// OpenJournal opens (creating if absent) the journal at path for
// appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// appendRecord writes one record and fsyncs. An error counts toward
// Errors and is returned (the open path fails the request on it; the
// close path tolerates it).
func (j *Journal) appendRecord(rec JournalRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		j.errs.Add(1)
		return fmt.Errorf("serve: journal marshal: %w", err)
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		j.errs.Add(1)
		return fmt.Errorf("serve: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.errs.Add(1)
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	j.records.Add(1)
	return nil
}

// Records returns the number of records appended through this handle.
func (j *Journal) Records() uint64 { return j.records.Load() }

// Errors returns the number of failed appends.
func (j *Journal) Errors() uint64 { return j.errs.Load() }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReadJournal parses the journal at path. A malformed or unterminated
// FINAL line is a torn tail from a crash mid-append and is dropped;
// malformed interior lines mean real corruption and error out. A
// missing file is an empty journal (first boot with -recover).
func ReadJournal(path string) ([]JournalRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	defer f.Close()

	var out []JournalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	lineNo := 0
	var torn *int // line number of a parse failure, tolerated only at EOF
	for sc.Scan() {
		lineNo++
		if torn != nil {
			return nil, fmt.Errorf("serve: journal corrupt at line %d (non-final malformed record)", *torn)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.ID == "" ||
			(rec.Op != journalOpOpen && rec.Op != journalOpClose) ||
			(rec.Op == journalOpOpen && rec.Open == nil) {
			n := lineNo
			torn = &n
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: read journal: %w", err)
	}
	return out, nil
}

// Restore replays journal records into a fresh Server: every open
// without a matching close is re-opened through the normal open path
// (content-addressed deployment dedup included) under its original
// session id. Replayed opens are NOT re-journaled — their records are
// already in the journal backing cfg.Journal. Returns the number of
// sessions restored. Call before serving traffic.
func (s *Server) Restore(recs []JournalRecord) (int, error) {
	live := make(map[string]JournalRecord)
	for _, rec := range recs {
		switch rec.Op {
		case journalOpOpen:
			live[rec.ID] = rec
		case journalOpClose:
			delete(live, rec.ID)
		}
	}
	// Deterministic replay order: numeric session order (also keeps
	// nextSession monotone without a second pass).
	ids := make([]string, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return sessionOrdinal(ids[i]) < sessionOrdinal(ids[j]) })

	restored := 0
	for _, id := range ids {
		rec := live[id]
		sess, _, err := s.openSession(*rec.Open, id, false)
		if err != nil {
			return restored, fmt.Errorf("serve: restore session %s: %w", id, err)
		}
		if rec.Key != "" {
			if got := fmt.Sprintf("%016x", sess.dep.key); got != rec.Key {
				s.dropSession(id)
				return restored, fmt.Errorf("serve: restore session %s: deployment key %s != journaled %s (journal/geometry mismatch)", id, got, rec.Key)
			}
		}
		restored++
	}
	s.mu.Lock()
	s.recovered = restored
	s.mu.Unlock()
	return restored, nil
}

// recoveredCount returns the number of sessions rebuilt by Restore.
func (s *Server) recoveredCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// sessionOrdinal extracts the numeric part of a session id ("s12" →
// 12); non-conforming ids sort last in lexical order via a large bias.
func sessionOrdinal(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "s"), 10, 63)
	if err != nil {
		return 1 << 62
	}
	return n
}
