package sinrconn

// Integration tests for the fault-injection seams threaded through the
// public API (WithFaultInjector): injected faults may stall or fail an
// operation, but must NEVER change what a successful operation
// computes — the invariant the serving layer's bit-identical crash
// recovery and fault-free replay rest on.

import (
	"context"
	"errors"
	"testing"
	"time"

	"sinrconn/internal/faults"
)

// TestFaultInjectorResultsUnchanged runs the same construction with and
// without delay-class faults (slow slots, stalled workers) lit at high
// rates and requires identical trees: injection sites on the compute
// path are observational only.
func TestFaultInjectorResultsUnchanged(t *testing.T) {
	pts := uniformPoints(61, 40)
	run := func(inj faults.Injector) *Result {
		t.Helper()
		opts := []Option{}
		if inj != nil {
			opts = append(opts, WithFaultInjector(inj))
		}
		nw, err := Open(pts, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		res, err := nw.Run(context.Background(), PipelineInit, WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plan := faults.MustPlan(faults.Spec{
		Seed:  11,
		Delay: 100 * time.Microsecond,
		Rates: map[faults.Site]float64{
			faults.SimSlotSlow:     0.3,
			faults.PoolWorkerStall: 0.3,
		},
	})
	clean, faulted := run(nil), run(plan)
	if clean.Tree.Root != faulted.Tree.Root || len(clean.Tree.Up) != len(faulted.Tree.Up) {
		t.Fatalf("tree shape diverged under delay faults: root %d/%d, %d/%d links",
			clean.Tree.Root, faulted.Tree.Root, len(clean.Tree.Up), len(faulted.Tree.Up))
	}
	for i := range clean.Tree.Up {
		if clean.Tree.Up[i] != faulted.Tree.Up[i] {
			t.Fatalf("link %d diverged under delay faults", i)
		}
	}
	counts := map[faults.Site]uint64{}
	for _, c := range plan.Counts() {
		counts[c.Site] = c.Fired
	}
	if counts[faults.SimSlotSlow] == 0 && counts[faults.PoolWorkerStall] == 0 {
		t.Fatal("neither delay site fired — the run tested nothing")
	}
}

// TestFaultInjectorChurnRepairFail drives the churn engine's repair
// failure site at rate 1: every repair attempt — the whole degradation
// ladder, then the rebuild — fails as non-convergence, so the driver
// must surface ErrRetryExhausted rather than loop or lie.
func TestFaultInjectorChurnRepairFail(t *testing.T) {
	plan := faults.MustPlan(faults.Spec{Seed: 5, Rates: map[faults.Site]float64{
		faults.ChurnRepairFail: 1,
	}})
	nw, err := Open(uniformPoints(62, 32), WithFaultInjector(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	_, err = nw.Churn(context.Background(), TraceSpec{Seed: 2, Events: 4, JoinRate: 1, FailRate: 1})
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("churn under total repair failure: %v, want ErrRetryExhausted", err)
	}

	// At rate 0 the same trace completes: the site is inert when closed.
	nw2, err := Open(uniformPoints(62, 32), WithFaultInjector(faults.MustPlan(faults.Spec{Seed: 5})))
	if err != nil {
		t.Fatal(err)
	}
	defer nw2.Close()
	if _, err := nw2.Churn(context.Background(), TraceSpec{Seed: 2, Events: 4, JoinRate: 1, FailRate: 1}); err != nil {
		t.Fatalf("churn with inert injector: %v", err)
	}
}

// TestFaultInjectorPartialRepairFail lets half the repair attempts fail:
// the degradation ladder must absorb the misses (counting retries) and
// still deliver a correct trace.
func TestFaultInjectorPartialRepairFail(t *testing.T) {
	plan := faults.MustPlan(faults.Spec{Seed: 17, Rates: map[faults.Site]float64{
		faults.ChurnRepairFail: 0.5,
	}})
	nw, err := Open(uniformPoints(63, 36), WithFaultInjector(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	rep, err := nw.Churn(context.Background(), TraceSpec{Seed: 4, Events: 12, JoinRate: 1, FailRate: 1}, WithChurnAudit(true))
	if err != nil {
		t.Fatalf("churn under half repair failure: %v", err)
	}
	if rep.Stats.Retries == 0 {
		t.Fatal("rate-½ repair failures produced zero retries — the site is not wired into the ladder")
	}
}

// TestWithFaultInjectorIsOpenOption pins the option's scope: injection
// is a property of the Network (it must be identical for every run to
// keep replay deterministic), not of a single run.
func TestWithFaultInjectorIsOpenOption(t *testing.T) {
	nw, err := Open(uniformPoints(64, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	_, err = nw.Run(context.Background(), PipelineInit, WithFaultInjector(faults.Disabled))
	if err == nil {
		t.Fatal("WithFaultInjector accepted as a run option")
	}
}
