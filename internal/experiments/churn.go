package experiments

// E18 measures availability under continuous churn: a mixed trace (joins,
// failures, correlated bursts, link showers) streamed through
// sinrconn.Network.Churn with the failure-side rates scaled by increasing
// multipliers against a fixed join rate. The
// engine's contract is that the live tree spans every survivor after EVERY
// event, so "availability" decomposes into how the engine paid for it: the
// fraction of events absorbed by incremental schedule splicing versus the
// full rebuilds and reseeded retries the degradation ladder had to spend.
// At low churn virtually everything splices; as the rate multiplier grows,
// bursts overlap and the rebuild/retry share climbs — the measured price
// of robustness, not a loss of availability (runs with a shrunk-but-valid
// final tree still pass).

import (
	"context"
	"fmt"

	"sinrconn"

	"sinrconn/internal/stats"
)

// E18Churn sweeps churn intensity and reports repair-path shares.
func E18Churn(ctx context.Context, cfg Config) Report {
	cfg.defaults()
	r := Report{
		ID:    "E18",
		Title: "Availability under continuous churn",
		Claim: "robustness: the churned tree spans all survivors after every event; incremental splicing absorbs the bulk of the repair work, degrading gracefully to rebuilds as churn intensifies",
		Table: stats.NewTable("rate×", "events", "final n", "incremental", "rebuilds", "restamps", "retries", "damped", "verify"),
	}
	r.Pass = true
	n := cfg.Sizes[len(cfg.Sizes)-1]
	events := 8 * cfg.Seeds // per seed: enough churn to shrink and recover
	for _, mult := range []float64{0.5, 1, 2, 4} {
		var incr, rebuilds, restamps, retries, damped, finalN int
		verified := true
		for s := 0; s < cfg.Seeds; s++ {
			pts := facadeUniform(int64(n)+int64(s), n)
			nw, err := sinrconn.Open(pts, sinrconn.WithWorkers(cfg.Workers))
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("rate×%.1f seed %d: open: %v", mult, s, err))
				r.Pass = false
				continue
			}
			// Scale the failure side against a fixed join rate: the
			// generator picks kinds by relative weight, so a uniform
			// multiplier would replay the identical event sequence.
			trace := sinrconn.TraceSpec{
				Seed:       int64(s + 1),
				Events:     events,
				JoinRate:   1,
				FailRate:   1.2 * mult,
				BurstRate:  0.25 * mult,
				ShowerRate: 0.5 * mult,
			}
			rep, err := nw.Churn(ctx, trace, sinrconn.WithChurnAudit(true))
			if err != nil {
				r.Notes = append(r.Notes, fmt.Sprintf("rate×%.1f seed %d: churn: %v", mult, s, err))
				r.Pass = false
				nw.Close()
				continue
			}
			incr += rep.Stats.IncrementalRepairs
			rebuilds += rep.Stats.Rebuilds
			restamps += rep.Stats.Restamps
			retries += rep.Stats.Retries
			damped += rep.Stats.DampedJoins
			finalN += rep.Final.Tree.NumNodes
			if rep.Final.Tree.NumNodes > 1 {
				if err := rep.Final.Tree.Verify(); err != nil {
					r.Notes = append(r.Notes, fmt.Sprintf("rate×%.1f seed %d: final verify: %v", mult, s, err))
					verified = false
					r.Pass = false
				}
			}
			nw.Close()
		}
		k := float64(cfg.Seeds)
		verdict := "OK"
		if !verified {
			verdict = "FAIL"
		}
		r.Table.AddRow(mult, events,
			fmt.Sprintf("%.1f", float64(finalN)/k),
			fmt.Sprintf("%.1f", float64(incr)/k),
			fmt.Sprintf("%.1f", float64(rebuilds)/k),
			fmt.Sprintf("%.1f", float64(restamps)/k),
			fmt.Sprintf("%.1f", float64(retries)/k),
			fmt.Sprintf("%.1f", float64(damped)/k),
			verdict)
	}
	r.Notes = append(r.Notes,
		"audit mode: the full invariant battery (tree, connectivity, ordering, per-slot SINR feasibility) ran after every single event of every run",
		fmt.Sprintf("n=%d, %d seeds per rate; the multiplier scales the failure side (fail=1.2, burst=0.25, shower=0.5) against a fixed join=1, shifting the kind mix toward correlated loss", n, cfg.Seeds))
	return r
}

// facadeUniform builds facade points for the churn deployment.
func facadeUniform(seed int64, n int) []sinrconn.Point {
	in := uniformInst(seed, n)
	pts := make([]sinrconn.Point, in.Len())
	for i := range pts {
		p := in.Point(i)
		pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
	}
	return pts
}
