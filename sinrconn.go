// Package sinrconn is a Go implementation of "Distributed Connectivity of
// Wireless Networks" (Halldórsson & Mitra, PODC 2012): distributed
// algorithms that, starting from identical wireless nodes with no
// infrastructure, build a strongly connected communication structure (a
// bi-tree: converge-cast plus dissemination tree) and schedule it
// efficiently under the SINR physical interference model.
//
// Three pipelines are exposed, mirroring the paper's three main theorems:
//
//   - BuildInitialBiTree — the Section 6 construction (Theorem 2): a
//     bi-tree in O(log Δ · log n) channel slots using per-round uniform
//     power.
//   - RescheduleMeanPower — Section 7 (Theorem 3): the same tree
//     re-scheduled under mean power with distributed contention
//     resolution, removing the log Δ factor from the schedule.
//   - BuildBiTreeMeanPower / BuildBiTreeArbitraryPower — Section 8
//     (Theorem 4): the interleaved TreeViaCapacity constructions whose
//     final schedules match the best centralized bounds — O(Υ·log n) slots
//     with oblivious mean power and O(log n) slots with computed powers.
//
// All pipelines run on an exact slotted SINR channel simulator; results are
// deterministic for a fixed Seed. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the reproduction of the paper's claims.
package sinrconn

import (
	"errors"
	"fmt"
	"math"

	"sinrconn/internal/core"
	"sinrconn/internal/geom"
	"sinrconn/internal/schedule"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// Point is a node location in the plane. The paper's normalization (minimum
// pairwise distance 1) is required; Validate in Options enforces it unless
// AutoNormalize is set.
type Point struct {
	X, Y float64
}

// Link is a directed transmission request between node indices.
type Link struct {
	From, To int
}

// ScheduledLink is a link with its schedule slot and transmission power.
type ScheduledLink struct {
	Link
	// Slot is the 1-based schedule slot.
	Slot int
	// Power is the sender's transmission power in that slot.
	Power float64
}

// PhysParams are the SINR physical constants.
type PhysParams struct {
	// Alpha is the path-loss exponent (≥ 2).
	Alpha float64
	// Beta is the SINR decoding threshold.
	Beta float64
	// Noise is the ambient noise floor.
	Noise float64
}

// DefaultPhysParams returns α = 3, β = 1.5, N = 1.
func DefaultPhysParams() PhysParams {
	p := sinr.DefaultParams()
	return PhysParams{Alpha: p.Alpha, Beta: p.Beta, Noise: p.Noise}
}

// Options configures a pipeline run.
type Options struct {
	// Params are the physical constants; zero value means defaults.
	Params PhysParams
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds simulator parallelism (0 = NumCPU).
	Workers int
	// DropProb injects reception failures (fading) in [0, 1).
	DropProb float64
	// AutoNormalize rescales the input so the minimum pairwise distance is
	// 1 instead of rejecting un-normalized input.
	AutoNormalize bool
	// BroadcastProb overrides the Section 6 broadcast probability p.
	BroadcastProb float64
	// Rho overrides the low-degree cap for TreeViaCapacity.
	Rho int
}

func (o Options) params() sinr.Params {
	p := sinr.DefaultParams()
	if o.Params.Alpha != 0 {
		p.Alpha = o.Params.Alpha
	}
	if o.Params.Beta != 0 {
		p.Beta = o.Params.Beta
	}
	if o.Params.Noise != 0 {
		p.Noise = o.Params.Noise
	}
	return p
}

// Metrics reports the cost of a pipeline run.
type Metrics struct {
	// SlotsUsed is the total channel time (simulator slots) the distributed
	// construction consumed.
	SlotsUsed int
	// ScheduleLength is the number of slots in the final link schedule.
	ScheduleLength int
	// Rounds is Init's round count (initial construction only).
	Rounds int
	// Iterations is TreeViaCapacity's iteration count (Section 8 only).
	Iterations int
	// Upsilon is the instance's Υ = log log Δ + log n.
	Upsilon float64
	// Delta is the instance's max/min distance ratio.
	Delta float64
	// AggregationLatency and BroadcastLatency are replay-verified slot
	// counts for converge-cast and broadcast on the bi-tree.
	AggregationLatency int
	BroadcastLatency   int
	// Energy is the total transmission energy (sum of powers over all
	// transmissions) the construction spent on the channel.
	Energy float64
}

// BiTree is the public view of a constructed bi-tree.
type BiTree struct {
	// Root is the converge-cast destination.
	Root int
	// Up lists the aggregation links (node → parent), scheduled leaf-first.
	Up []ScheduledLink
	// NumNodes is the number of nodes spanned.
	NumNodes int

	inner *tree.BiTree
	inst  *sinr.Instance
}

// Parent returns each non-root node's parent.
func (b *BiTree) Parent() map[int]int { return b.inner.Parent() }

// MaxDegree returns the maximum node degree in the tree.
func (b *BiTree) MaxDegree() int { return b.inner.MaxDegree() }

// Depth returns the maximum hop distance to the root.
func (b *BiTree) Depth() int { return b.inner.Depth() }

// PairLatency replays a node-to-node message (up the aggregation schedule,
// down the dissemination schedule) and returns the slots consumed.
func (b *BiTree) PairLatency(src, dst int) (int, error) {
	return b.inner.PairLatency(src, dst)
}

// Verify re-checks every structural property: spanning tree shape, strong
// connectivity, aggregation ordering, and per-slot SINR feasibility of the
// schedule. It is cheap insurance for downstream users.
func (b *BiTree) Verify() error {
	if err := b.inner.Validate(); err != nil {
		return err
	}
	if !b.inner.StronglyConnected() {
		return errors.New("sinrconn: tree not strongly connected")
	}
	if err := b.inner.ValidateOrdering(); err != nil {
		return err
	}
	return b.inner.ValidatePerSlotFeasible(b.inst)
}

// Result bundles a constructed tree with its metrics.
type Result struct {
	Tree    *BiTree
	Metrics Metrics
}

// ErrNotNormalized reports input whose minimum pairwise distance is below 1
// when AutoNormalize is off.
var ErrNotNormalized = errors.New("sinrconn: minimum pairwise distance below 1 (set AutoNormalize)")

func buildInstance(pts []Point, opt Options) (*sinr.Instance, error) {
	if len(pts) == 0 {
		return nil, errors.New("sinrconn: no points")
	}
	g := make([]geom.Point, len(pts))
	for i, p := range pts {
		g[i] = geom.Point{X: p.X, Y: p.Y}
	}
	if len(g) > 1 {
		if md := geom.MinDist(g); md < 1-1e-9 {
			if !opt.AutoNormalize {
				return nil, fmt.Errorf("%w: min distance %v", ErrNotNormalized, md)
			}
			if md <= 0 {
				return nil, errors.New("sinrconn: duplicate points")
			}
			g, _ = geom.Normalize(g)
		}
	}
	return sinr.NewInstance(g, opt.params())
}

func publicTree(in *sinr.Instance, bt *tree.BiTree) *BiTree {
	out := &BiTree{
		Root:     bt.Root,
		NumNodes: len(bt.Nodes),
		inner:    bt,
		inst:     in,
	}
	for _, tl := range bt.Up {
		out.Up = append(out.Up, ScheduledLink{
			Link:  Link{From: tl.L.From, To: tl.L.To},
			Slot:  tl.Slot,
			Power: tl.Power,
		})
	}
	return out
}

func fillLatencies(m *Metrics, bt *tree.BiTree) error {
	agg, err := bt.AggregationLatency()
	if err != nil {
		return err
	}
	bc, err := bt.BroadcastLatency()
	if err != nil {
		return err
	}
	m.AggregationLatency = agg
	m.BroadcastLatency = bc
	return nil
}

// BuildInitialBiTree runs the Section 6 construction (Theorem 2).
func BuildInitialBiTree(pts []Point, opt Options) (*Result, error) {
	in, err := buildInstance(pts, opt)
	if err != nil {
		return nil, err
	}
	res, err := core.Init(in, core.InitConfig{
		BroadcastProb: opt.BroadcastProb,
		Seed:          opt.Seed,
		Workers:       opt.Workers,
		DropProb:      opt.DropProb,
	})
	if err != nil {
		return nil, err
	}
	bt := res.Tree
	bt.Compact()
	m := Metrics{
		SlotsUsed:      res.SlotsUsed,
		ScheduleLength: bt.NumSlots(),
		Rounds:         res.Rounds,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         res.Stats.Energy,
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return &Result{Tree: publicTree(in, bt), Metrics: m}, nil
}

// RescheduleMeanPower runs Section 6 then re-schedules the tree under mean
// power with the distributed scheduler (Theorem 3). The returned schedule
// does not necessarily satisfy the bi-tree ordering property, matching the
// paper's caveat; aggregation/broadcast latencies are therefore not filled.
func RescheduleMeanPower(pts []Point, opt Options) (*Result, error) {
	in, err := buildInstance(pts, opt)
	if err != nil {
		return nil, err
	}
	ires, err := core.Init(in, core.InitConfig{
		BroadcastProb: opt.BroadcastProb,
		Seed:          opt.Seed,
		Workers:       opt.Workers,
		DropProb:      opt.DropProb,
	})
	if err != nil {
		return nil, err
	}
	pa := sinr.NoiseSafeMean(in.Params(), math.Max(1, in.Delta()))
	rres, err := core.Reschedule(in, ires.Tree, pa, schedule.DistConfig{
		Seed:    opt.Seed + 1,
		Workers: opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	m := Metrics{
		SlotsUsed:      ires.SlotsUsed + 2*rres.SlotPairs,
		ScheduleLength: rres.NumSlots,
		Rounds:         ires.Rounds,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
	}
	return &Result{Tree: publicTree(in, rres.Tree), Metrics: m}, nil
}

// BuildBiTreeMeanPower runs TreeViaCapacity with Υ-sampled mean-power
// selection (Theorem 4, second half: O(Υ·log n) schedule slots).
func BuildBiTreeMeanPower(pts []Point, opt Options) (*Result, error) {
	return buildTVC(pts, opt, core.VariantMean)
}

// BuildBiTreeArbitraryPower runs TreeViaCapacity with Distr-Cap selection
// and computed per-link powers (Theorem 4, first half: O(log n) schedule
// slots).
func BuildBiTreeArbitraryPower(pts []Point, opt Options) (*Result, error) {
	return buildTVC(pts, opt, core.VariantArbitrary)
}

func buildTVC(pts []Point, opt Options, v core.Variant) (*Result, error) {
	in, err := buildInstance(pts, opt)
	if err != nil {
		return nil, err
	}
	res, err := core.TreeViaCapacity(in, core.TVCConfig{
		Variant: v,
		Seed:    opt.Seed,
		Rho:     opt.Rho,
		Init: core.InitConfig{
			BroadcastProb: opt.BroadcastProb,
			Workers:       opt.Workers,
			DropProb:      opt.DropProb,
		},
	})
	if err != nil {
		return nil, err
	}
	bt := res.Tree
	m := Metrics{
		SlotsUsed:      res.ConstructionSlots,
		ScheduleLength: bt.NumSlots(),
		Iterations:     res.Iterations,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return &Result{Tree: publicTree(in, bt), Metrics: m}, nil
}
