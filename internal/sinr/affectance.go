package sinr

import "math"

// C returns the paper's c(u,v) = β/(1 − βN·d(u,v)^α/P_u), the noise-derating
// constant of a link of the given length whose sender uses power pu. It
// returns +Inf when the link cannot meet SINR β even without interference
// (P_u ≤ βN·d^α). Section 5 requires protocols to pick powers keeping
// c(u,v) ≤ 2β; SafePower does exactly that.
func (in *Instance) C(length, pu float64) float64 {
	return in.cFromLenAlpha(PowAlpha(length, in.params.Alpha), pu)
}

// cFromLenAlpha is C with the link's path loss ℓ^α already computed — the
// memoized form the kernel hands around so c(u,v) costs one divide inside
// affectance loops.
func (in *Instance) cFromLenAlpha(lenAlpha, pu float64) float64 {
	p := in.params
	denom := 1 - p.Beta*p.Noise*lenAlpha/pu
	if denom <= 0 {
		return math.Inf(1)
	}
	return p.Beta / denom
}

// affectanceTerm returns one interferer's thresholded affectance on a link
// whose per-link constants are hoisted: v is the link's receiver, pu the
// link sender's power, lenAlpha = d(u,v)^α, c = c(u,v), and cap_ = 1+ε.
// The caller has already excluded the link's own sender and handled the
// c = +Inf case (a link that cannot overcome noise receives the cap from
// every interferer), so c is finite here — the branch stays out of the
// per-(sender, link) hot loops.
func (in *Instance) affectanceTerm(w int, pw float64, v int, pu, lenAlpha, c, cap_ float64) float64 {
	gwv := in.Gain(w, v) // d(w,v)^{-α}
	if math.IsInf(gwv, 1) {
		// Interferer co-located with the receiver.
		return cap_
	}
	a := c * (pw / pu) * lenAlpha * gwv
	if a > cap_ {
		return cap_
	}
	return a
}

// Affectance returns the thresholded affectance a_w(ℓ) of a sender w
// transmitting with power pw on link l whose sender uses power pu
// (Section 5):
//
//	a_w(ℓ) = min{ 1+ε,  c(u,v) · (P_w/P_u) · (d(u,v)/d(w,v))^α }
//
// Conventions: the link's own sender contributes 0; a sender co-located with
// the receiver contributes the cap 1+ε; a link that cannot overcome noise
// at all (c = +Inf) receives the cap from every interferer.
func (in *Instance) Affectance(w int, pw float64, l Link, pu float64) float64 {
	if w == l.From {
		return 0
	}
	lenAlpha := in.LengthAlpha(l)
	c := in.cFromLenAlpha(lenAlpha, pu)
	if math.IsInf(c, 1) {
		return 1 + in.params.Epsilon
	}
	return in.affectanceTerm(w, pw, l.To, pu, lenAlpha, c, 1+in.params.Epsilon)
}

// SetAffectance returns a_S(ℓ) = Σ_{w∈S} a_w(ℓ) for the sender set txs. The
// link constants c(u,v) and d(u,v)^α are computed once for the whole sum.
func (in *Instance) SetAffectance(txs []Tx, l Link, pu float64) float64 {
	cap_ := 1 + in.params.Epsilon
	lenAlpha := in.LengthAlpha(l)
	c := in.cFromLenAlpha(lenAlpha, pu)
	sum := 0.0
	if math.IsInf(c, 1) {
		// Every interferer contributes the cap; summed term by term so the
		// result is bit-identical to the per-term formulation.
		for _, t := range txs {
			if t.Sender != l.From {
				sum += cap_
			}
		}
		return sum
	}
	for _, t := range txs {
		if t.Sender == l.From {
			continue
		}
		sum += in.affectanceTerm(t.Sender, t.Power, l.To, pu, lenAlpha, c, cap_)
	}
	return sum
}

// LinkAffectance returns a_ℓ'(ℓ): the affectance of link other's sender
// (under assignment pa) on link l (under the same assignment).
func (in *Instance) LinkAffectance(other, l Link, pa Assignment) float64 {
	return in.Affectance(other.From, pa.Power(in, other), l, pa.Power(in, l))
}

// SetLinkAffectance returns a_L(ℓ) = Σ_{ℓ'∈L} a_ℓ'(ℓ) under assignment pa,
// with link l's constants hoisted out of the loop.
func (in *Instance) SetLinkAffectance(set []Link, l Link, pa Assignment) float64 {
	pu := pa.Power(in, l)
	cap_ := 1 + in.params.Epsilon
	lenAlpha := in.LengthAlpha(l)
	c := in.cFromLenAlpha(lenAlpha, pu)
	sum := 0.0
	if math.IsInf(c, 1) {
		for _, o := range set {
			if o.From != l.From {
				sum += cap_
			}
		}
		return sum
	}
	for _, o := range set {
		if o.From == l.From {
			continue
		}
		sum += in.affectanceTerm(o.From, pa.Power(in, o), l.To, pu, lenAlpha, c, cap_)
	}
	return sum
}

// OutAffectance returns a_ℓ(L) = Σ_{ℓ'∈L} a_ℓ(ℓ') — the total affectance
// link l's sender exerts on the links in set, under assignment pa.
func (in *Instance) OutAffectance(l Link, set []Link, pa Assignment) float64 {
	pl := pa.Power(in, l)
	sum := 0.0
	for _, o := range set {
		sum += in.Affectance(l.From, pl, o, pa.Power(in, o))
	}
	return sum
}

// SINR returns the signal-to-interference-and-noise ratio observed at the
// receiver of link l when the senders in txs transmit concurrently. The
// link's own sender must appear in txs with its power; other entries are
// interference. It returns 0 if the sender is absent.
func (in *Instance) SINR(txs []Tx, l Link) float64 {
	p := in.params
	row := in.GainRow(l.To)
	signal := 0.0
	interference := 0.0
	for _, t := range txs {
		var g float64
		if row != nil {
			g = row[t.Sender]
		} else {
			g = in.Gain(t.Sender, l.To)
		}
		rp := t.Power * g
		if t.Sender == l.From {
			signal += rp
		} else {
			interference += rp
		}
	}
	if signal == 0 {
		return 0
	}
	return signal / (p.Noise + interference)
}

// MeasuredAffectance returns the affectance a receiver can actually measure
// during a reception: c(u,v) · I/S, where S is the received signal power
// and I the total interference power at the receiver. This is the
// *uncapped* aggregate (individual terms cannot be separated at a radio),
// the quantity Distr-Cap's selection rule thresholds against τ/4
// (Section 8.2 assumes receivers can measure the SINR of a reception;
// measured affectance is a deterministic function of it). Returns +Inf when
// the link cannot overcome noise.
func (in *Instance) MeasuredAffectance(txs []Tx, l Link, pu float64) float64 {
	lenAlpha := in.LengthAlpha(l)
	c := in.cFromLenAlpha(lenAlpha, pu)
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	signal := pu / lenAlpha
	row := in.GainRow(l.To)
	interference := 0.0
	for _, t := range txs {
		if t.Sender == l.From {
			continue
		}
		var g float64
		if row != nil {
			g = row[t.Sender]
		} else {
			g = in.Gain(t.Sender, l.To)
		}
		if math.IsInf(g, 1) {
			// Zero distance to the receiver.
			return math.Inf(1)
		}
		interference += t.Power * g
	}
	return c * interference / signal
}

// SINRFeasible reports whether every link in links, transmitting
// concurrently with the given per-link powers, meets the SINR threshold β
// (Eqn 1). Links and powers must have equal length.
func (in *Instance) SINRFeasible(links []Link, powers []float64) (bool, error) {
	return in.SINRFeasibleBuf(links, powers, nil)
}

// SINRFeasibleBuf is SINRFeasible with a caller-provided Tx scratch buffer,
// reused when its capacity suffices, so hot validators allocate nothing.
//sinr:hotpath
func (in *Instance) SINRFeasibleBuf(links []Link, powers []float64, scratch []Tx) (bool, error) {
	if len(links) != len(powers) {
		return false, ErrMismatchedLengths
	}
	txs := scratch[:0]
	if cap(txs) < len(links) {
		//lint:ignore hotpathalloc cold capacity-miss fallback only; a right-sized caller scratch never reaches this make
		txs = make([]Tx, 0, len(links))
	}
	for i, l := range links {
		//lint:ignore hotpathalloc cannot grow: capacity reserved by the check above; steady state pinned by TestSINRFeasibleBufZeroAlloc
		txs = append(txs, Tx{Sender: l.From, Power: powers[i]})
	}
	for _, l := range links {
		if in.SINR(txs, l) < in.params.Beta-1e-9 {
			return false, nil
		}
	}
	return true, nil
}

// Feasible reports whether the link set is feasible under assignment pa in
// the affectance formulation a_L(ℓ) ≤ 1 for every ℓ ∈ L, which Section 5
// adopts as equivalent to Eqn 1. Each link must additionally overcome
// ambient noise on its own (finite c(u,v)); the affectance sum alone cannot
// express that for interference-free links. A small tolerance absorbs
// floating error.
func (in *Instance) Feasible(links []Link, pa Assignment) bool {
	for _, l := range links {
		if math.IsInf(in.cFromLenAlpha(in.LengthAlpha(l), pa.Power(in, l)), 1) {
			return false
		}
		if in.SetLinkAffectance(links, l, pa) > 1+1e-9 {
			return false
		}
	}
	return true
}

// AvgAffectance returns the average in-affectance of the set:
// (1/|L|)·Σ_{ℓ∈L} a_L(ℓ). Lemma 14 bounds this by O(Υ) for the low-degree
// tree subset under mean power.
func (in *Instance) AvgAffectance(links []Link, pa Assignment) float64 {
	if len(links) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range links {
		sum += in.SetLinkAffectance(links, l, pa)
	}
	return sum / float64(len(links))
}

// AmenabilityF returns the paper's f_ℓ(ℓ′) functional (Section 8.2.2):
//
//	f_ℓ(ℓ′) = a^U_{ℓ′}(ℓ) + a^L_ℓ(ℓ′)   if len(ℓ) ≤ len(ℓ′),  else 0
//
// where U is uniform power and L is linear power. Feasible sets R satisfy
// f_ℓ(R) = O(1) for every link ℓ (Thm 1 of Kesselheim, SODA 2011), which is
// the engine behind the largeness proof of Distr-Cap.
func (in *Instance) AmenabilityF(l, other Link, uni Uniform, lin Linear) float64 {
	if in.Length(l) > in.Length(other) {
		return 0
	}
	aU := in.Affectance(other.From, uni.Power(in, other), l, uni.Power(in, l))
	aL := in.Affectance(l.From, lin.Power(in, l), other, lin.Power(in, other))
	return aU + aL
}

// AmenabilityFSet returns f_X(ℓ′) = Σ_{ℓ∈X} f_ℓ(ℓ′).
func (in *Instance) AmenabilityFSet(set []Link, other Link, uni Uniform, lin Linear) float64 {
	sum := 0.0
	for _, l := range set {
		sum += in.AmenabilityF(l, other, uni, lin)
	}
	return sum
}
