# Developer entry points. CI runs the same commands — see
# .github/workflows/ci.yml — so a green `make check` locally is a green
# lint+test lane remotely.

GO ?= go

.PHONY: build vet lint test race check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The repo's own invariant suite (DESIGN.md §11): oracle purity, hot-path
# allocation sources, replay determinism, context/error discipline.
# Offline and cached; a clean tree finishes in seconds.
lint:
	$(GO) run ./cmd/sinrlint ./...
	$(GO) test -count=1 ./internal/lint/...

test:
	$(GO) test -short ./...

race:
	GORACE=halt_on_error=1 $(GO) test -race -short ./...

check: build vet lint test
