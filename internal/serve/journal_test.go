package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalAppendRead(t *testing.T) {
	settleGoroutines(t)
	path := filepath.Join(t.TempDir(), "sessions.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []JournalRecord{
		{Op: journalOpOpen, ID: "s1", Key: "00000000000000aa", Open: &OpenRequest{Points: [][2]float64{{0, 0}, {2, 0}}}},
		{Op: journalOpOpen, ID: "s2", Key: "00000000000000bb", Open: &OpenRequest{Points: [][2]float64{{0, 0}, {3, 0}}}},
		{Op: journalOpClose, ID: "s1"},
	}
	for _, rec := range recs {
		if err := j.appendRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != 3 || j.Errors() != 0 {
		t.Fatalf("journal counters = %d/%d, want 3/0", j.Records(), j.Errors())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(recs)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip mismatch:\n%s\n%s", a, b)
	}

	// A torn final line — the crash landed mid-append — is dropped.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"open","id":"s3","ke`)
	f.Close()
	got, err = ReadJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("torn-tail read returned %d records, want 3", len(got))
	}

	// Mid-file corruption is NOT tolerated: a malformed line with valid
	// records after it means the journal is damaged, not torn.
	bad := filepath.Join(t.TempDir(), "bad.journal")
	os.WriteFile(bad, []byte(`{"op":"open","id":"s1","open":{"points":[[0,0]]}}
garbage not json
{"op":"close","id":"s1"}
`), 0o644)
	if _, err := ReadJournal(bad); err == nil {
		t.Fatal("mid-file corruption went undetected")
	}

	// Missing file = empty journal (first boot with -recover).
	if recs, err := ReadJournal(filepath.Join(t.TempDir(), "absent")); err != nil || recs != nil {
		t.Fatalf("missing journal: %v, %v", recs, err)
	}
}

// TestJournalRecoverDifferential is the crash-recovery gate: a daemon
// that crashed (journal intact, process state gone) and was restarted
// with -recover must answer exactly like one that never crashed —
// same live sessions, same session ids, bit-identical run payloads,
// and a monotone session allocator.
func TestJournalRecoverDifferential(t *testing.T) {
	settleGoroutines(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "sessions.journal")

	// A reference daemon with no journal and no crash.
	_, refTS := testDaemon(t, Config{})

	// Daemon A journals three opens and one close, serves a run, then
	// "crashes": we abandon it without closing sessions.
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	srvA := New(Config{Journal: j1})
	tsA := httptestServer(t, srvA)

	ptsKeep := testPoints(31, 24)
	ptsDrop := testPoints(32, 24)
	ptsAlso := testPoints(33, 20)
	s1 := openSession(t, tsA, OpenRequest{Points: ptsKeep})
	s2 := openSession(t, tsA, OpenRequest{Points: ptsDrop})
	s3 := openSession(t, tsA, OpenRequest{Points: ptsAlso, Options: OptionsJSON{Seed: 5}})
	req, _ := http.NewRequest(http.MethodDelete, tsA+"/v1/sessions/"+s2.SessionID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	runReq := RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 9}, IncludeTree: true}
	var runA RunResponse
	code, body := postJSON(t, tsA+"/v1/sessions/"+s1.SessionID+"/run", runReq, &runA)
	if code != http.StatusOK {
		t.Fatalf("pre-crash run: %d: %s", code, body)
	}
	// Crash: journal handle closed (fsync'd anyway), server abandoned.
	j1.Close()

	// Daemon B boots with -recover semantics.
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j2.Close() })
	srvB := New(Config{Journal: j2})
	tsB := httptestServer(t, srvB)
	n, err := srvB.Restore(recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d sessions, want 2 (s2 was closed)", n)
	}

	var h Health
	resp, err := http.Get(tsB + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Sessions != 2 || h.Recovered != 2 || h.Deployments != 2 {
		t.Fatalf("recovered health = %+v, want 2 sessions / 2 recovered / 2 deployments", h)
	}

	// The closed session stayed closed.
	code, _ = postJSON(t, tsB+"/v1/sessions/"+s2.SessionID+"/run", runReq, nil)
	if code != http.StatusNotFound {
		t.Fatalf("run on crashed-closed session: %d, want 404", code)
	}

	// The surviving session answers under its ORIGINAL id, bit-identical
	// to the never-crashed reference (and to daemon A's pre-crash run,
	// modulo the cached flag — B recomputes).
	var runB RunResponse
	code, body = postJSON(t, tsB+"/v1/sessions/"+s1.SessionID+"/run", runReq, &runB)
	if code != http.StatusOK {
		t.Fatalf("post-recovery run: %d: %s", code, body)
	}
	refSess := openSession(t, refTS.URL, OpenRequest{Points: ptsKeep})
	var runRef RunResponse
	code, body = postJSON(t, refTS.URL+"/v1/sessions/"+refSess.SessionID+"/run", runReq, &runRef)
	if code != http.StatusOK {
		t.Fatalf("reference run: %d: %s", code, body)
	}
	wA, _ := json.Marshal(runA.Result)
	wB, _ := json.Marshal(runB.Result)
	wR, _ := json.Marshal(runRef.Result)
	if !bytes.Equal(wB, wR) {
		t.Fatalf("recovered daemon diverges from never-crashed reference:\n%s\n%s", wB, wR)
	}
	if !bytes.Equal(wB, wA) {
		t.Fatalf("recovered daemon diverges from its own pre-crash answer:\n%s\n%s", wB, wA)
	}

	// The allocator resumes past the journaled ids: a fresh open gets a
	// new id, not a collision with s3.
	s4 := openSession(t, tsB, OpenRequest{Points: testPoints(34, 16)})
	if s4.SessionID == s1.SessionID || s4.SessionID == s2.SessionID || s4.SessionID == s3.SessionID {
		t.Fatalf("post-recovery open reused id %s", s4.SessionID)
	}

	// Post-recovery closes and opens keep journaling: a second crash
	// and recovery sees the latest state.
	req2, _ := http.NewRequest(http.MethodDelete, tsB+"/v1/sessions/"+s3.SessionID, nil)
	if resp, err := http.DefaultClient.Do(req2); err == nil {
		resp.Body.Close()
	}
	recs2, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	for _, rec := range recs2 {
		if rec.Op == journalOpOpen {
			live[rec.ID] = true
		} else {
			delete(live, rec.ID)
		}
	}
	if !live[s1.SessionID] || live[s2.SessionID] || live[s3.SessionID] || !live[s4.SessionID] {
		t.Fatalf("journal live set after second round = %v", live)
	}
}

// TestJournalRestoreRejectsMismatch pins the replay safety check: a
// journaled deployment key that the replayed geometry does not
// reproduce fails recovery loudly instead of serving wrong answers.
func TestJournalRestoreRejectsMismatch(t *testing.T) {
	settleGoroutines(t)
	srv := New(Config{})
	defer srv.Close()
	_, err := srv.Restore([]JournalRecord{{
		Op:   journalOpOpen,
		ID:   "s1",
		Key:  "deadbeefdeadbeef",
		Open: &OpenRequest{Points: testPoints(35, 12)},
	}})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("key-mismatched restore: %v, want mismatch error", err)
	}
	if got := srv.recoveredCount(); got != 0 {
		t.Fatalf("recoveredCount = %d after failed restore, want 0", got)
	}
}

// httpTestServer variant that hands back just the base URL (the journal
// tests juggle several daemons at once).
func httptestServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.URL
}
