package core

import (
	"context"
	"fmt"
	"sort"

	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// RepairLinks handles permanent *link* failures (the other half of the
// paper's "node and link failures"): the given tree links have become
// unusable (obstacle, persistent fade) while both endpoints are alive.
// Each failed link orphans exactly the subtree of its sender; the orphan
// roots re-attach via the join protocol against the main component and the
// schedule is restamped.
func RepairLinks(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, failedLinks []sinr.Link, cfg InitConfig) (*RepairResult, error) {
	failedSet := make(map[sinr.Link]bool, len(failedLinks))
	present := make(map[sinr.Link]bool, len(bt.Up))
	for _, tl := range bt.Up {
		present[tl.L] = true
	}
	for _, l := range failedLinks {
		if !present[l] {
			return nil, fmt.Errorf("core: link %v not in tree", l)
		}
		// Duplicates are tolerated: churn traces compose link showers, and
		// the same link is routinely reported down twice.
		failedSet[l] = true
	}

	var keep []tree.TimedLink
	var orphans []int
	for _, tl := range bt.Up {
		if failedSet[tl.L] {
			orphans = append(orphans, tl.L.From)
		} else {
			keep = append(keep, tl)
		}
	}
	sort.Ints(orphans)
	res := &RepairResult{NewRoot: bt.Root, OrphanRoots: len(orphans)}
	repaired := &tree.BiTree{Root: bt.Root, Nodes: append([]int(nil), bt.Nodes...), Up: keep}
	if len(orphans) > 0 {
		// Main component = everything still reaching the root.
		children := make(map[int][]int)
		for _, tl := range keep {
			children[tl.L.To] = append(children[tl.L.To], tl.L.From)
		}
		var mainNodes []int
		stack := []int{bt.Root}
		seen := map[int]bool{}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			mainNodes = append(mainNodes, v)
			stack = append(stack, children[v]...)
		}
		joinBase := &tree.BiTree{Root: bt.Root, Nodes: mainNodes}
		jcfg := cfg
		jcfg.Forbidden = append(append([]sinr.Link(nil), cfg.Forbidden...), failedLinks...)
		jres, err := Join(ctx, in, joinBase, orphans, jcfg)
		if err != nil {
			return res, fmt.Errorf("core: link-repair re-attachment: %w", err)
		}
		res.SlotsUsed = jres.SlotsUsed
		res.Stats = jres.Stats
		newOut := make(map[int]tree.TimedLink, len(orphans))
		for _, tl := range jres.Tree.Up {
			newOut[tl.L.From] = tl
		}
		for _, o := range orphans {
			tl, ok := newOut[o]
			if !ok {
				return res, fmt.Errorf("core: orphan %d did not re-attach", o)
			}
			// A replacement along the failed link itself is useless; the
			// join physics can still pick the same parent via a different
			// channel opportunity, which is fine — the link object is the
			// same but its new slot/power come from the join run.
			repaired.Up = append(repaired.Up, tl)
		}
	}
	k, err := repaired.Restamp(in)
	if err != nil {
		return res, fmt.Errorf("core: restamp: %w", err)
	}
	res.ScheduleLength = k
	res.Tree = repaired
	return res, nil
}

// RepairResult is the outcome of a failure-recovery run.
type RepairResult struct {
	// Tree is the repaired bi-tree over the surviving nodes, with a fresh
	// ordered, per-slot-feasible schedule (Restamp).
	Tree *tree.BiTree
	// NewRoot reports the root of the repaired tree (it changes only when
	// the old root failed).
	NewRoot int
	// OrphanRoots is the number of detached subtree roots that had to
	// re-attach.
	OrphanRoots int
	// SlotsUsed is the channel time the re-attachment protocol consumed.
	SlotsUsed int
	// ScheduleLength is the restamped schedule length.
	ScheduleLength int
	// Stats carries the engine counters of the re-attachment run (zero when
	// no orphans had to re-attach).
	Stats sim.Stats
	// Incremental reports whether the schedule was spliced (RepairIncremental
	// and friends) rather than rebuilt with Restamp.
	Incremental bool
	// SplicedLinks counts surviving links whose stamps were carried through
	// verbatim (up to order-preserving shifts); PlacedLinks counts links
	// that needed fresh slots — new attachments plus cascade bumps. Both are
	// zero on the full-restamp path.
	SplicedLinks int
	PlacedLinks  int
}

// Repair implements the paper's "node failures" extension (Conclusions,
// Section 9): given a bi-tree and a set of failed nodes, reconnect the
// surviving nodes distributedly.
//
// Failure surgery is local: removing a failed node orphans the subtrees
// rooted at its children. Each orphan subtree keeps its internal links and
// re-attaches as a unit — only its root runs the join protocol (the
// subtree's traffic is unaffected while it does). If the tree root itself
// failed, the largest orphan subtree is promoted and the rest attach to
// it. Because re-attachment stamps cannot in general be interleaved with
// the surviving stamps without breaking the aggregation ordering, the
// repaired tree's schedule is recomputed with Restamp, which restores
// ordering and per-slot feasibility in one pass.
func Repair(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, failed []int, cfg InitConfig) (*RepairResult, error) {
	part, err := partitionFailed(bt, failed)
	if err != nil {
		return nil, err
	}
	res := &RepairResult{NewRoot: part.mainRoot, OrphanRoots: len(part.orphans)}
	repaired := &tree.BiTree{Root: part.mainRoot, Nodes: part.survivors, Up: part.keep}
	if len(part.orphans) > 0 {
		// The join tree during re-attachment is the main component only;
		// orphan roots join it (and each other, transitively).
		joinBase := &tree.BiTree{Root: part.mainRoot, Nodes: part.mainNodes}
		jres, err := Join(ctx, in, joinBase, part.orphans, cfg)
		if err != nil {
			return res, fmt.Errorf("core: re-attachment: %w", err)
		}
		res.SlotsUsed = jres.SlotsUsed
		res.Stats = jres.Stats
		// Adopt the new out-links of the orphan roots.
		newOut := make(map[int]tree.TimedLink, len(part.orphans))
		for _, tl := range jres.Tree.Up {
			newOut[tl.L.From] = tl
		}
		for _, o := range part.orphans {
			tl, ok := newOut[o]
			if !ok {
				return res, fmt.Errorf("core: orphan %d did not re-attach", o)
			}
			repaired.Up = append(repaired.Up, tl)
		}
	}

	// The merged stamps are stale; rebuild an ordered feasible schedule.
	k, err := repaired.Restamp(in)
	if err != nil {
		return res, fmt.Errorf("core: restamp: %w", err)
	}
	res.ScheduleLength = k
	res.Tree = repaired
	return res, nil
}

// partition is the surgery plan a failure set induces on a bi-tree:
// the survivors, the links both of whose endpoints survived, the main
// component (the one the repaired tree keeps as root), and the orphan
// subtree roots that must re-attach.
type partition struct {
	failedSet map[int]bool
	survivors []int
	keep      []tree.TimedLink
	mainRoot  int
	mainNodes []int
	orphans   []int
}

// partitionFailed computes the surgery plan. Duplicate entries in failed
// are tolerated (churn traces compose bursts with single failures, and the
// same node is routinely reported dead twice); nodes outside the tree are
// still errors — the caller owns membership bookkeeping.
func partitionFailed(bt *tree.BiTree, failed []int) (*partition, error) {
	failedSet := make(map[int]bool, len(failed))
	inTree := make(map[int]bool, len(bt.Nodes))
	for _, v := range bt.Nodes {
		inTree[v] = true
	}
	for _, f := range failed {
		if !inTree[f] {
			return nil, fmt.Errorf("core: failed node %d not in tree", f)
		}
		failedSet[f] = true
	}
	if len(failedSet) == 0 {
		return nil, fmt.Errorf("core: no failed nodes given")
	}
	survivors := make([]int, 0, len(bt.Nodes)-len(failedSet))
	for _, v := range bt.Nodes {
		if !failedSet[v] {
			survivors = append(survivors, v)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("core: all nodes failed")
	}

	// Surviving links: both endpoints alive.
	var keep []tree.TimedLink
	for _, tl := range bt.Up {
		if !failedSet[tl.L.From] && !failedSet[tl.L.To] {
			keep = append(keep, tl)
		}
	}
	// Component roots: survivors with no surviving out-link.
	hasOut := make(map[int]bool, len(keep))
	for _, tl := range keep {
		hasOut[tl.L.From] = true
	}
	var roots []int
	for _, v := range survivors {
		if !hasOut[v] {
			roots = append(roots, v)
		}
	}
	// Component membership by following surviving links.
	children := make(map[int][]int)
	for _, tl := range keep {
		children[tl.L.To] = append(children[tl.L.To], tl.L.From)
	}
	compSize := func(root int) int {
		size := 0
		stack := []int{root}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			stack = append(stack, children[v]...)
		}
		return size
	}

	// Main component: the old root's if it survived, else the largest
	// (ties: smallest root index, for determinism).
	mainRoot := -1
	if !failedSet[bt.Root] {
		mainRoot = bt.Root
	} else {
		sort.Ints(roots)
		best := -1
		for _, r := range roots {
			if s := compSize(r); s > best {
				best = s
				mainRoot = r
			}
		}
	}
	var orphans []int
	for _, r := range roots {
		if r != mainRoot {
			orphans = append(orphans, r)
		}
	}
	var mainNodes []int
	seen := map[int]bool{}
	stack := []int{mainRoot}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		mainNodes = append(mainNodes, v)
		stack = append(stack, children[v]...)
	}
	return &partition{
		failedSet: failedSet,
		survivors: survivors,
		keep:      keep,
		mainRoot:  mainRoot,
		mainNodes: mainNodes,
		orphans:   orphans,
	}, nil
}
