package core

// Incremental schedule repair: the streaming-churn counterpart of Repair.
//
// Repair recomputes the whole schedule with Restamp after surgery — correct,
// but O(links) SINR feasibility scans even when one leaf died. The
// incremental path instead splices: it keeps every surviving slot group
// verbatim and only finds slots for the handful of links the event created.
// Two observations make that sound without a single SINR evaluation:
//
//  1. Removing links from a feasible slot group keeps it feasible —
//     interference only decreases — so failure surgery never invalidates a
//     surviving group's feasibility, only (possibly) the ordering around
//     the orphans' new attachment points.
//
//  2. The join protocol's winners of one slot-pair were decoded TOGETHER on
//     the channel under full interference, so any subset of them is a
//     feasible group at the stamped powers. New links that attached in the
//     same pair can therefore share one fresh slot, and a new link alone in
//     a slot is trivially feasible.
//
// What remains is ordering: a re-attached orphan root's new out-link must be
// scheduled after its subtree (whose stamps are untouched) and before its
// new ancestors. The splicer gap-inserts the new link just above its
// children's slots — shifting all later stamps up by one, which preserves
// every existing relation — and then cascades bumps up the new ancestor
// chain until the ordering invariant holds again. All of it is integer
// surgery on stamps; the only channel time spent is the re-attachment
// protocol itself.
//
// The price is schedule fragmentation: each event may add a few
// single-link slots that a full Restamp would have packed. The churn driver
// watches that drift and falls back to a full restamp (or rebuild) when the
// schedule exceeds its budget — the degradation ladder of DESIGN.md §9.

import (
	"context"
	"fmt"
	"sort"

	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
)

// RepairIncremental removes the failed nodes from bt and re-attaches the
// orphaned subtrees, splicing the surviving schedule through verbatim and
// placing only the new links (plus any ordering-violated ancestors) into
// fresh or shifted slots. Semantics match Repair — same surgery, same
// re-attachment protocol, same validity guarantees — with ScheduleLength
// possibly longer (fragmentation) and repair cost independent of tree size
// away from the failure.
func RepairIncremental(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, failed []int, cfg InitConfig) (*RepairResult, error) {
	part, err := partitionFailed(bt, failed)
	if err != nil {
		return nil, err
	}
	return incrementalAttach(ctx, in, part, nil, cfg)
}

// MoveIncremental handles a mobility step: the nodes in moved have changed
// position (in is the instance over the NEW positions). Each moved node
// leaves the tree — orphaning its children's subtrees exactly like a
// failure — and rejoins as a fresh leaf at its new position in the same
// re-attachment run, so one protocol invocation repairs the whole step.
func MoveIncremental(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, moved []int, cfg InitConfig) (*RepairResult, error) {
	part, err := partitionFailed(bt, moved)
	if err != nil {
		return nil, err
	}
	rejoin := make([]int, 0, len(part.failedSet))
	for v := range part.failedSet {
		rejoin = append(rejoin, v)
	}
	sort.Ints(rejoin)
	return incrementalAttach(ctx, in, part, rejoin, cfg)
}

// RepairLinksIncremental is the incremental counterpart of RepairLinks:
// the failed links' senders orphan and re-attach (forbidden from re-forming
// the dead links), with the surviving schedule spliced through verbatim.
func RepairLinksIncremental(ctx context.Context, in *sinr.Instance, bt *tree.BiTree, failedLinks []sinr.Link, cfg InitConfig) (*RepairResult, error) {
	failedSet := make(map[sinr.Link]bool, len(failedLinks))
	present := make(map[sinr.Link]bool, len(bt.Up))
	for _, tl := range bt.Up {
		present[tl.L] = true
	}
	for _, l := range failedLinks {
		if !present[l] {
			return nil, fmt.Errorf("core: link %v not in tree", l)
		}
		failedSet[l] = true
	}
	var keep []tree.TimedLink
	var orphans []int
	for _, tl := range bt.Up {
		if failedSet[tl.L] {
			orphans = append(orphans, tl.L.From)
		} else {
			keep = append(keep, tl)
		}
	}
	sort.Ints(orphans)
	children := make(map[int][]int)
	for _, tl := range keep {
		children[tl.L.To] = append(children[tl.L.To], tl.L.From)
	}
	var mainNodes []int
	seen := map[int]bool{}
	stack := []int{bt.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		mainNodes = append(mainNodes, v)
		stack = append(stack, children[v]...)
	}
	part := &partition{
		survivors: append([]int(nil), bt.Nodes...),
		keep:      keep,
		mainRoot:  bt.Root,
		mainNodes: mainNodes,
		orphans:   orphans,
	}
	jcfg := cfg
	jcfg.Forbidden = append(append([]sinr.Link(nil), cfg.Forbidden...), failedLinks...)
	return incrementalAttach(ctx, in, part, nil, jcfg)
}

// incrementalAttach runs the re-attachment protocol for part.orphans (plus
// rejoin, nodes re-entering as fresh leaves — the mobility case) and splices
// the resulting links into part's kept schedule.
func incrementalAttach(ctx context.Context, in *sinr.Instance, part *partition, rejoin []int, cfg InitConfig) (*RepairResult, error) {
	res := &RepairResult{
		NewRoot:     part.mainRoot,
		OrphanRoots: len(part.orphans),
		Incremental: true,
	}
	nodes := part.survivors
	if len(rejoin) > 0 {
		nodes = append(append([]int(nil), part.survivors...), rejoin...)
		sort.Ints(nodes)
	}
	repaired := &tree.BiTree{Root: part.mainRoot, Nodes: nodes, Up: part.keep}
	res.SplicedLinks = len(part.keep)

	joiners := append(append([]int(nil), part.orphans...), rejoin...)
	sort.Ints(joiners)
	if len(joiners) == 0 {
		res.ScheduleLength = repaired.Compact()
		res.Tree = repaired
		return res, nil
	}

	joinBase := &tree.BiTree{Root: part.mainRoot, Nodes: part.mainNodes}
	jres, err := Join(ctx, in, joinBase, joiners, cfg)
	if err != nil {
		return res, fmt.Errorf("core: incremental re-attachment: %w", err)
	}
	res.SlotsUsed = jres.SlotsUsed
	res.Stats = jres.Stats

	// The join ran over an empty base, so jres.Tree.Up holds exactly the
	// new links, compacted to stamps 1..k with stamp ASCENDING in reverse
	// attach order: equal stamps = same slot-pair (mutually feasible — see
	// the package comment), and smaller stamps attached LATER, i.e. deeper
	// under other joiners. Processing stamps ascending therefore places
	// children before their (new) parents, so each placement's floor
	// already covers its previously placed new children.
	newByStamp := make(map[int][]tree.TimedLink)
	stamps := make([]int, 0, 8)
	attached := make(map[int]bool, len(joiners))
	for _, tl := range jres.Tree.Up {
		if _, ok := newByStamp[tl.Slot]; !ok {
			stamps = append(stamps, tl.Slot)
		}
		newByStamp[tl.Slot] = append(newByStamp[tl.Slot], tl)
		attached[tl.L.From] = true
	}
	for _, j := range joiners {
		if !attached[j] {
			return res, fmt.Errorf("core: joiner %d did not re-attach", j)
		}
	}
	sort.Ints(stamps)

	sp := newSplicer(repaired)
	for _, s := range stamps {
		group := newByStamp[s]
		sort.Slice(group, func(a, b int) bool { return group[a].L.From < group[b].L.From })
		sp.place(group)
		res.PlacedLinks += len(group)
	}
	res.PlacedLinks += sp.bumped

	res.ScheduleLength = repaired.Compact()
	res.Tree = repaired
	return res, nil
}

// splicer performs the stamp surgery of incremental repair: gap insertion
// (shift every stamp above x up by one — order-preserving, so feasibility
// and ordering of untouched links survive) plus the ancestor bump cascade.
type splicer struct {
	t        *tree.BiTree
	outIdx   map[int]int   // sender → index into t.Up
	children map[int][]int // current child lists (updated as links land)
	bumped   int
}

func newSplicer(t *tree.BiTree) *splicer {
	sp := &splicer{
		t:        t,
		outIdx:   make(map[int]int, len(t.Up)),
		children: make(map[int][]int, len(t.Up)),
	}
	for i, tl := range t.Up {
		sp.outIdx[tl.L.From] = i
		sp.children[tl.L.To] = append(sp.children[tl.L.To], tl.L.From)
	}
	return sp
}

// shiftAbove opens a gap at x+1: every stamp strictly above x moves up one.
func (sp *splicer) shiftAbove(x int) {
	up := sp.t.Up
	for i := range up {
		if up[i].Slot > x {
			up[i].Slot++
		}
	}
}

// maxChildSlot returns the largest out-link stamp among v's current
// children (0 when all children are leaves of the surgery — slots are
// ≥ 1 on compacted trees, so 0 is a safe floor).
func (sp *splicer) maxChildSlot(v int) int {
	m := 0
	for _, c := range sp.children[v] {
		if i, ok := sp.outIdx[c]; ok && sp.t.Up[i].Slot > m {
			m = sp.t.Up[i].Slot
		}
	}
	return m
}

// place lands one same-pair group of new links in a single fresh slot just
// above the group's ordering floor, then repairs the ordering upward from
// each attachment point.
func (sp *splicer) place(group []tree.TimedLink) {
	floor := 0
	for _, tl := range group {
		if f := sp.maxChildSlot(tl.L.From); f > floor {
			floor = f
		}
	}
	sp.shiftAbove(floor)
	slot := floor + 1
	for _, tl := range group {
		tl.Slot = slot
		sp.t.Up = append(sp.t.Up, tl)
		sp.outIdx[tl.L.From] = len(sp.t.Up) - 1
		sp.children[tl.L.To] = append(sp.children[tl.L.To], tl.L.From)
	}
	for _, tl := range group {
		sp.cascade(tl.L.To)
	}
}

// cascade walks up from v bumping every ancestor whose out-link is no
// longer strictly after its children. Each bump is its own gap insertion,
// so the bumped link rides alone in a fresh feasible slot; the walk stops
// at the first ancestor already in order (or the root), which bounds the
// cascade by the attachment point's depth.
func (sp *splicer) cascade(v int) {
	for {
		i, ok := sp.outIdx[v]
		if !ok {
			return // root (or an orphan root not yet placed — its own
			// placement will re-run the cascade from its parent)
		}
		f := sp.maxChildSlot(v)
		if sp.t.Up[i].Slot > f {
			return
		}
		sp.shiftAbove(f)
		sp.t.Up[i].Slot = f + 1
		sp.bumped++
		v = sp.t.Up[i].L.To
	}
}
