package sim_test

// Differential test of the engine's channel resolution against
// internal/oracle: every slot of a randomized traffic pattern, every
// listener's decode decision (which sender, if any, and at what SINR) must
// match the naive O(n²) physics. This pins the whole decode fast path —
// gain-table rows, single-pass strongest-sender scan, shard counters —
// to the model definition. Type 1: one mismatch = bug.

import (
	"math"
	"math/rand"
	"testing"

	"sinrconn/internal/geom"
	"sinrconn/internal/oracle"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/workload"
)

// chaos is a deterministic random protocol: each node transmits with
// probability pTx (power drawn from its per-node rng) or listens, and
// records every delivery it sees.
type chaos struct {
	rng  *rand.Rand
	pTx  float64
	pMax float64
	got  [][]sim.Delivery
}

func (c *chaos) Step(slot int, inbox []sim.Delivery) sim.Action {
	cp := make([]sim.Delivery, len(inbox))
	copy(cp, inbox)
	c.got = append(c.got, cp)
	if c.rng.Float64() < c.pTx {
		return sim.Transmit(c.pMax*(0.1+0.9*c.rng.Float64()), sim.Message{Kind: sim.KindBroadcast})
	}
	return sim.Listen()
}

func TestEngineMatchesOracleResolution(t *testing.T) {
	for _, seed := range []int64{42, 123, 456} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		pts := workload.GaussianClusters(rng, 40, 4, 3, 50)
		p := sinr.DefaultParams()
		in := sinr.MustInstance(pts, p)
		pMax := p.SafePower(10)

		// Two identical protocol sets: one stepped by the engine, one
		// replayed by hand against the oracle. Per-node rngs make the
		// traffic identical on both sides.
		mk := func() []sim.Protocol {
			procs := make([]sim.Protocol, len(pts))
			for i := range procs {
				procs[i] = &chaos{rng: rand.New(rand.NewSource(seed*1000 + int64(i))), pTx: 0.3, pMax: pMax}
			}
			return procs
		}
		procs := mk()
		shadow := mk()

		// Workers pinned above the CPU count so the pooled decode path runs
		// even on single-core CI machines.
		e, err := sim.NewEngine(in, procs, sim.Config{Seed: seed, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()

		const slots = 40
		// Shadow replay: drive the shadow protocols with the deliveries the
		// oracle predicts, slot by slot, and require the engine's stats and
		// inboxes to match exactly.
		shadowInbox := make([][]sim.Delivery, len(pts))
		wantDeliveries := 0
		for slot := 0; slot < slots; slot++ {
			e.Step()

			acts := make([]sim.Action, len(shadow))
			for i, pr := range shadow {
				acts[i] = pr.Step(slot, shadowInbox[i])
				shadowInbox[i] = nil
			}
			var txs []sinr.Tx
			senders := map[int]sim.Message{}
			for i, a := range acts {
				if a.Kind == sim.ActionTransmit {
					txs = append(txs, sinr.Tx{Sender: i, Power: a.Power})
					senders[i] = a.Msg
				}
			}
			for i, a := range acts {
				if a.Kind != sim.ActionListen {
					continue
				}
				k, s := oracle.ResolveSlot(pts, p, txs, i)
				if k < 0 {
					continue
				}
				tx := txs[k]
				shadowInbox[i] = append(shadowInbox[i], sim.Delivery{
					Msg:  senders[tx.Sender],
					Dist: oracle.Dist(pts, tx.Sender, i),
					SINR: s,
					Slot: slot,
				})
				wantDeliveries++
			}
		}
		// Deliveries counted so far cover exactly slots 0..slots-1 — the
		// range the shadow predicted.
		if got := e.Stats().Deliveries; got != wantDeliveries {
			t.Fatalf("seed %d: engine delivered %d, oracle predicts %d", seed, got, wantDeliveries)
		}
		// One more step on both sides flushes the final slot's deliveries
		// into the recorded inboxes.
		e.Step()
		for i, pr := range shadow {
			pr.Step(slots, shadowInbox[i])
			shadowInbox[i] = nil
		}
		for i := range procs {
			got := procs[i].(*chaos).got
			want := shadow[i].(*chaos).got
			for slot := 0; slot < slots; slot++ {
				g := got[slot+1] // engine inboxes trail transmissions by one slot
				w := want[slot+1]
				if len(g) != len(w) {
					t.Fatalf("seed %d node %d slot %d: %d deliveries, oracle predicts %d", seed, i, slot, len(g), len(w))
				}
				for k := range g {
					if g[k].Msg != w[k].Msg || g[k].Slot != w[k].Slot {
						t.Fatalf("seed %d node %d slot %d: delivery %+v, oracle predicts %+v", seed, i, slot, g[k], w[k])
					}
					if math.Abs(g[k].SINR-w[k].SINR) > 1e-9*w[k].SINR {
						t.Fatalf("seed %d node %d slot %d: SINR %v, oracle predicts %v", seed, i, slot, g[k].SINR, w[k].SINR)
					}
					if math.Abs(g[k].Dist-w[k].Dist) > 1e-9*w[k].Dist {
						t.Fatalf("seed %d node %d slot %d: Dist %v, oracle predicts %v", seed, i, slot, g[k].Dist, w[k].Dist)
					}
				}
			}
		}
	}
}

// TestEngineOracleDisagreementDetectable guards the differential itself: a
// deliberately corrupted replay (wrong β in the oracle) must disagree, so
// a silent pass cannot come from comparing nothing.
func TestEngineOracleDisagreementDetectable(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 1}, {X: 2}, {X: 40}}
	p := sinr.DefaultParams()
	// Sender 0 below MinPower: undecodable at β = 1.5, decodable at 0.01.
	txs := []sinr.Tx{{Sender: 0, Power: 0.9 * p.MinPower(1)}, {Sender: 3, Power: p.SafePower(1)}}
	k, _ := oracle.ResolveSlot(pts, p, txs, 1)
	loose := p
	loose.Beta = 0.01
	k2, _ := oracle.ResolveSlot(pts, loose, txs, 1)
	if k == k2 {
		t.Fatalf("β change did not alter resolution (%d vs %d)", k, k2)
	}
}
