package main

import (
	"strings"
	"testing"
)

func TestRunPipelines(t *testing.T) {
	for _, pipeline := range []string{"init", "reschedule", "mean", "arbitrary"} {
		t.Run(pipeline, func(t *testing.T) {
			var b strings.Builder
			err := run([]string{"-n", "24", "-pipeline", pipeline, "-seed", "2"}, &b)
			if err != nil {
				t.Fatal(err)
			}
			out := b.String()
			if !strings.Contains(out, "schedule=") || !strings.Contains(out, "root=") {
				t.Errorf("missing summary in output:\n%s", out)
			}
			if pipeline != "reschedule" && !strings.Contains(out, "verification") {
				t.Errorf("missing verification line:\n%s", out)
			}
		})
	}
}

func TestRunWorkloads(t *testing.T) {
	for _, wl := range []string{"uniform", "clusters", "grid", "chain", "gaussians", "annulus", "powerlaw", "city"} {
		t.Run(wl, func(t *testing.T) {
			var b strings.Builder
			if err := run([]string{"-n", "20", "-workload", wl, "-pipeline", "init"}, &b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunVerbose(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "16", "-pipeline", "init", "-v"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "slot ") {
		t.Errorf("verbose output missing link lines:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-pipeline", "bogus"}, &b); err == nil {
		t.Error("bogus pipeline accepted")
	}
	if err := run([]string{"-workload", "bogus"}, &b); err == nil {
		t.Error("bogus workload accepted")
	}
	if err := run([]string{"-badflag"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, wl := range []string{"uniform", "clusters", "grid", "chain", "gaussians", "annulus", "powerlaw", "city"} {
		pts, err := generate(wl, 25, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 25 {
			t.Errorf("%s: %d points", wl, len(pts))
		}
	}
	if _, err := generate("bogus", 10, 1); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestRunChurn(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "32", "-seed", "3",
		"-churn", "events=20,join=1,fail=1.2,burst=0.3,shower=0.4"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"churn:", "incremental=", "final:"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunChurnMobility(t *testing.T) {
	for _, model := range []string{"waypoint", "citygrid"} {
		t.Run(model, func(t *testing.T) {
			var b strings.Builder
			err := run([]string{"-n", "28", "-seed", "4",
				"-churn", "events=15,fail=0.8,move=1.5", "-mobility", model}, &b)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), "moves=") {
				t.Errorf("mobility churn summary missing moves:\n%s", b.String())
			}
		})
	}
}

func TestRunChurnErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-churn", "events=10"}, &b); err == nil {
		t.Error("all-zero rate churn spec accepted")
	}
	if err := run([]string{"-churn", "events=10,fail=1", "-sweep", "2"}, &b); err == nil {
		t.Error("-churn with -sweep accepted")
	}
	if err := run([]string{"-churn", "events=10,fail=1", "-pipeline", "init"}, &b); err == nil {
		t.Error("-churn with explicit -pipeline accepted")
	}
	if err := run([]string{"-churn", "events=10,bogus=1"}, &b); err == nil {
		t.Error("unknown churn spec key accepted")
	}
	if err := run([]string{"-churn", "nonsense"}, &b); err == nil {
		t.Error("malformed churn spec accepted")
	}
	if err := run([]string{"-churn", "events=10,move=1"}, &b); err == nil {
		t.Error("move rate without -mobility accepted")
	}
	if err := run([]string{"-churn", "events=10,fail=1", "-mobility", "bogus"}, &b); err == nil {
		t.Error("bogus mobility model accepted")
	}
	if err := run([]string{"-mobility", "waypoint"}, &b); err == nil {
		t.Error("-mobility without -churn accepted")
	}
}
