package sinrconn

// The continuous-churn engine: Network.Churn streams a deterministic trace
// of joins, failures, correlated bursts, link showers, and mobility steps
// through a live schedule, repairing incrementally after every event.
//
// The engine is a degradation ladder (DESIGN.md §9):
//
//   1. Incremental repair — splice the surviving schedule verbatim, place
//      only the event's new links (core.RepairIncremental & friends); pure
//      integer surgery away from the failure.
//   2. Full restamp — when the Las Vegas re-attachment refuses to converge
//      after bounded retries, or when splice fragmentation exceeds the
//      drift budget, rebuild the schedule (greedy first-fit) while keeping
//      the tree.
//   3. Full rebuild — reconstruct the tree from scratch over the target
//      membership (core.Init with Participants).
//
// Every retry is reseeded deterministically and backs off in protocol
// rounds (more ExtraRounds per attempt), so a transiently unlucky run gets
// strictly more channel time rather than a different algorithm. Retries are
// spent only on ErrNotConverged — the Las Vegas failure mode — never on
// validator or geometry errors, which are deterministic and would fail
// identically again.
//
// Flap damping keeps a permanently failing region from consuming the
// engine: after K failures inside one spatial cell within the sliding
// window, the region is quarantined for a cooldown. Members there are muted
// (they keep relaying but never acknowledge, so no re-attachment lands on
// them — core.InitConfig.Mute) and joins into the region are refused with
// ErrDamped (recorded in the report; the trace continues).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"sinrconn/internal/churn"
	"sinrconn/internal/core"
	"sinrconn/internal/faults"
	"sinrconn/internal/geom"
	"sinrconn/internal/sim"
	"sinrconn/internal/sinr"
	"sinrconn/internal/tree"
	"sinrconn/internal/workload"
)

// MobilityModel selects the movement pattern of a churn trace's mobility
// events.
type MobilityModel uint8

const (
	// MobilityNone disables movement (move events are rejected at Validate).
	MobilityNone MobilityModel = iota
	// MobilityWaypoint is the random-waypoint model: nodes travel to uniform
	// destinations at random speeds, pausing between legs.
	MobilityWaypoint
	// MobilityCityGrid is Manhattan mobility: nodes travel along a street
	// grid, turning at intersections.
	MobilityCityGrid
)

// String implements fmt.Stringer.
func (m MobilityModel) String() string {
	switch m {
	case MobilityNone:
		return "none"
	case MobilityWaypoint:
		return "waypoint"
	case MobilityCityGrid:
		return "citygrid"
	}
	return fmt.Sprintf("mobility(%d)", uint8(m))
}

// TraceSpec configures a deterministic churn trace: a (Seed, spec) pair
// always produces the same event stream against the same deployment.
// Event kinds arrive as a superposition of Poisson processes; a zero rate
// disables the kind, and at least one rate must be positive.
type TraceSpec struct {
	// Seed derives the trace's randomness AND the per-event protocol seeds.
	Seed int64
	// Events is the number of churn events to stream (must be ≥ 1).
	Events int

	// JoinRate / FailRate / BurstRate / ShowerRate / MoveRate are Poisson
	// arrival rates per time unit for the five event kinds: single-node
	// joins, single-node failures, correlated spatial failure bursts (a
	// disc dies together), link-failure showers, and mobility steps.
	JoinRate   float64
	FailRate   float64
	BurstRate  float64
	ShowerRate float64
	MoveRate   float64

	// BurstRadius is the kill-disc radius of correlated failures
	// (default 4).
	BurstRadius float64
	// ShowerMax bounds the links failed per shower (default 3).
	ShowerMax int

	// Mobility selects the movement model behind move events; required
	// (non-None) when MoveRate > 0.
	Mobility MobilityModel
	// MobilitySpeed scales node speed in distance per time unit
	// (default 1.5).
	MobilitySpeed float64
}

// Validate rejects unusable specs.
func (t TraceSpec) Validate() error {
	if t.Events < 1 {
		return fmt.Errorf("sinrconn: trace needs at least 1 event, got %d", t.Events)
	}
	if t.MoveRate > 0 && t.Mobility == MobilityNone {
		return errors.New("sinrconn: MoveRate > 0 requires a mobility model")
	}
	return t.rates().Validate()
}

func (t TraceSpec) rates() churn.Rates {
	return churn.Rates{
		Join:   t.JoinRate,
		Fail:   t.FailRate,
		Burst:  t.BurstRate,
		Shower: t.ShowerRate,
		Move:   t.MoveRate,
	}
}

// ChurnOption tunes a Churn run.
type ChurnOption func(*churnSettings)

type churnSettings struct {
	audit        bool
	driftBudget  float64
	retries      int
	dampK        int
	dampWindow   float64
	dampCooldown float64
	dampRadius   float64
	err          error
}

func defaultChurnSettings() churnSettings {
	return churnSettings{
		driftBudget:  1.6,
		retries:      3,
		dampK:        3,
		dampWindow:   12,
		dampCooldown: 40,
		dampRadius:   0, // 0 = the trace's burst radius
	}
}

// WithChurnAudit validates the full invariant battery — tree shape, strong
// connectivity, aggregation ordering, per-slot SINR feasibility under the
// session's channel mode — after EVERY event instead of only at the end.
// This is the metamorphic gate ("churn-then-repair is as good as
// rebuild-on-survivors"); it is O(links·n) per event, so leave it off for
// throughput runs.
func WithChurnAudit(on bool) ChurnOption {
	return func(s *churnSettings) { s.audit = on }
}

// WithDriftBudget bounds splice fragmentation: when the live schedule grows
// past budget × (its length at the last full stamp), the engine restamps in
// full. Must be > 1; default 1.6.
func WithDriftBudget(budget float64) ChurnOption {
	return func(s *churnSettings) {
		if budget <= 1 {
			if s.err == nil {
				s.err = fmt.Errorf("sinrconn: drift budget %v must be > 1", budget)
			}
			return
		}
		s.driftBudget = budget
	}
}

// WithChurnRetries sets how many reseeded attempts each rung of the
// degradation ladder gets before the engine falls to the next rung
// (default 3, minimum 1). Backoff is in protocol rounds: attempt i runs
// with proportionally more safety rounds.
func WithChurnRetries(k int) ChurnOption {
	return func(s *churnSettings) {
		if k < 1 {
			if s.err == nil {
				s.err = fmt.Errorf("sinrconn: churn retries %d must be ≥ 1", k)
			}
			return
		}
		s.retries = k
	}
}

// WithFlapDamping configures the spatial quarantine: a radius-sized region
// accumulating k failures within window time units is damped for cooldown
// time units — its members stop acknowledging re-attachments and joins into
// it are refused with ErrDamped. k = 0 disables damping. radius = 0 uses
// the trace's burst radius.
func WithFlapDamping(k int, window, cooldown, radius float64) ChurnOption {
	return func(s *churnSettings) {
		if k < 0 || window < 0 || cooldown < 0 || radius < 0 {
			if s.err == nil {
				s.err = errors.New("sinrconn: flap-damping parameters must be ≥ 0")
			}
			return
		}
		s.dampK = k
		s.dampWindow = window
		s.dampCooldown = cooldown
		s.dampRadius = radius
	}
}

// ChurnStats aggregates what a churn run did.
type ChurnStats struct {
	// Events is the number of trace events processed.
	Events int
	// Joins/Fails/Bursts/Showers/Moves count applied events by kind.
	Joins, Fails, Bursts, Showers, Moves int
	// NodesFailed and NodesMoved count individual nodes across events.
	NodesFailed, NodesMoved int
	// IncrementalRepairs counts events resolved by schedule splicing;
	// Restamps counts full schedule recomputations (drift budget or ladder
	// rung 2); Rebuilds counts from-scratch tree reconstructions (rung 3).
	IncrementalRepairs, Restamps, Rebuilds int
	// Retries counts reseeded protocol re-runs after ErrNotConverged.
	Retries int
	// DampedJoins counts joins refused because they landed in a quarantined
	// region; MutedPeak is the largest member set muted during any single
	// repair.
	DampedJoins int
	MutedPeak   int
	// Compactions counts instance shrinks (dead fraction exceeded 1/2).
	Compactions int
	// SlotsUsed is the total channel time all repair protocols consumed.
	SlotsUsed int
	// PeakScheduleLength is the longest live schedule observed between
	// events (fragmentation high-water mark).
	PeakScheduleLength int
}

// ChurnReport is the outcome of a churn run.
type ChurnReport struct {
	// Final is the live result after the last event, bound to a derived
	// Network over the final deployment (shares the parent's pool).
	Final *Result
	// Stats aggregates the run.
	Stats ChurnStats
	// Soft lists the non-fatal typed errors the engine absorbed while the
	// trace continued: ErrDamped for refused joins, ErrNotConverged for
	// attempts that a later retry or ladder rung recovered. Test with
	// errors.Is.
	Soft []error
}

// Churn streams trace through the live deployment: it builds the initial
// bi-tree (Section 6 construction) over this Network's points and then
// applies trace.Events churn events — joins, failures, bursts, link
// showers, mobility steps — repairing the schedule incrementally after each
// (splicing untouched slots verbatim; see core.RepairIncremental), with
// bounded reseeded retries, flap damping of repeatedly failing regions, and
// graceful degradation to full restamp and full rebuild. The run is
// deterministic for a fixed (deployment, trace, options).
//
// A fatal error — the degradation ladder exhausted (ErrRetryExhausted,
// which wraps ErrNotConverged), context cancellation, or an invariant
// violation under WithChurnAudit — aborts the run. Everything else is
// absorbed into Report.Soft and the trace continues.
func (nw *Network) Churn(ctx context.Context, trace TraceSpec, opts ...ChurnOption) (*ChurnReport, error) {
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	cs := defaultChurnSettings()
	for _, o := range opts {
		o(&cs)
	}
	if cs.err != nil {
		return nil, cs.err
	}
	done, err := nw.beginOp()
	if err != nil {
		return nil, err
	}
	defer done()

	s := nw.base
	s.seed = trace.Seed
	in, err := nw.instanceFor(s.phys)
	if err != nil {
		return nil, err
	}
	ff, adaptive, err := farFieldFor(in, s)
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()

	burstRadius := trace.BurstRadius
	if burstRadius <= 0 {
		burstRadius = 4
	}
	dampRadius := cs.dampRadius
	if dampRadius == 0 {
		dampRadius = burstRadius
	}
	gen, err := churn.NewGenerator(trace.Seed^0x5DEECE66D, trace.rates(), burstRadius, trace.ShowerMax)
	if err != nil {
		return nil, err
	}

	d := &churnDriver{
		nw:       nw,
		s:        s,
		cs:       cs,
		pool:     pool,
		in:       in,
		ff:       ff,
		adaptive: adaptive,
		gen:      gen,
		damper:   churn.NewDamper(cs.dampK, cs.dampWindow, cs.dampCooldown, dampRadius),
	}

	// The mobility stepper is built BEFORE the initial tree: the city-grid
	// model snaps nodes onto its street lattice, and syncing that snap into
	// the instance first means the tree is constructed over the positions
	// the nodes will actually move from (stepper and instance never
	// disagree about where anything is).
	if trace.Mobility != MobilityNone {
		speed := trace.MobilitySpeed
		if speed <= 0 {
			speed = 1.5
		}
		d.mobSpeed = speed
		d.mobModel = trace.Mobility
		d.mobOrigin, _ = geom.BoundingBox(in.Points())
		d.rebuildStepper(trace.Seed ^ 0x2545F491)
		if err := d.syncStepper(); err != nil {
			return nil, fmt.Errorf("sinrconn: mobility snap: %w", err)
		}
	}

	// Initial construction (rung-3 machinery doubles as the bootstrap).
	ires, err := core.Init(ctx, d.in, d.cfg(0))
	if err != nil {
		return nil, fmt.Errorf("sinrconn: churn bootstrap: %w", err)
	}
	d.bt = ires.Tree
	d.bt.Compact()
	d.stats.SlotsUsed += ires.SlotsUsed
	d.baseline = d.bt.NumSlots()
	d.stats.PeakScheduleLength = d.baseline
	if d.stepper != nil {
		// Nodes the construction left out (none, normally) stay parked.
		alive := make(map[int]bool, len(d.bt.Nodes))
		for _, v := range d.bt.Nodes {
			alive[v] = true
		}
		for v := 0; v < d.in.Len(); v++ {
			if !alive[v] {
				d.stepper.Park(v)
			}
		}
	}

	for i := 0; i < trace.Events; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sinrconn: churn canceled at event %d: %w", i, err)
		}
		ev, err := d.gen.Next(churn.State{
			Points: d.in.Points(),
			Alive:  d.bt.Nodes,
			Links:  d.links(),
		})
		if err != nil {
			return nil, fmt.Errorf("sinrconn: churn trace: %w", err)
		}
		if err := d.apply(ctx, ev); err != nil {
			return nil, fmt.Errorf("sinrconn: churn event %d (%v): %w", i, ev.Kind, err)
		}
		d.stats.Events++
		if k := d.bt.NumSlots(); k > d.stats.PeakScheduleLength {
			d.stats.PeakScheduleLength = k
		}
		if err := d.maintain(); err != nil {
			return nil, fmt.Errorf("sinrconn: churn event %d: %w", i, err)
		}
		if cs.audit {
			if err := d.audit(); err != nil {
				return nil, fmt.Errorf("sinrconn: churn audit after event %d (%v): %w", i, ev.Kind, err)
			}
		}
	}

	m := Metrics{
		SlotsUsed:      d.stats.SlotsUsed,
		ScheduleLength: d.bt.NumSlots(),
		Upsilon:        d.in.Upsilon(),
		Delta:          d.in.Delta(),
	}
	if err := fillLatencies(&m, d.bt); err != nil {
		return nil, err
	}
	grown := nw.derive(d.in)
	return &ChurnReport{
		Final: grown.newResult(d.in, d.bt, m, d.ff, d.adaptive),
		Stats: d.stats,
		Soft:  d.soft,
	}, nil
}

// churnDriver is the engine's mutable state across one trace.
type churnDriver struct {
	nw       *Network
	s        settings
	cs       churnSettings
	pool     *sim.Pool
	in       *sinr.Instance
	bt       *tree.BiTree
	ff       sinr.Far
	adaptive bool
	gen      *churn.Generator
	damper   *churn.Damper

	forbidden []sinr.Link
	stepper   workload.Stepper
	mobModel  MobilityModel
	mobSpeed  float64
	mobSeed   int64
	mobOrigin geom.Point // city-grid street anchor, fixed for the whole run
	baseline  int
	seedCtr   int64
	stats     ChurnStats
	soft      []error
}

func (d *churnDriver) links() []sinr.Link {
	out := make([]sinr.Link, len(d.bt.Up))
	for i, tl := range d.bt.Up {
		out[i] = tl.L
	}
	return out
}

// cfg derives the protocol config for one attempt; extraRounds > 0 is the
// retry backoff (added safety rounds at the top length class).
func (d *churnDriver) cfg(extraRounds int) core.InitConfig {
	c := initConfig(d.s, d.pool, d.ff, d.adaptive)
	d.seedCtr++
	c.Seed = d.s.seed + d.seedCtr*0x9E3779B9
	if extraRounds > 0 {
		c.ExtraRounds = 64 + extraRounds
	}
	c.Forbidden = d.forbidden
	c.Mute = d.muted()
	if n := len(c.Mute); n > d.stats.MutedPeak {
		d.stats.MutedPeak = n
	}
	return c
}

// injectRepairFail consults the handle's fault injector at the
// churn.repair.fail site. A firing returns a synthetic non-convergence
// (wrapping core.ErrNotConverged) so the degradation ladder treats it
// exactly like a real Las Vegas failure: it consumes a retry rung,
// lands in the soft-error log, and — at rate 1.0 — drives the ladder
// through rebuild into ErrRetryExhausted.
func (d *churnDriver) injectRepairFail() error {
	if d.s.injector == nil {
		return nil
	}
	act, ok := d.s.injector.Fire(faults.ChurnRepairFail)
	if !ok {
		return nil
	}
	return fmt.Errorf("sinrconn: injected fault %s #%d: %w", act.Site, act.Seq, core.ErrNotConverged)
}

// muted lists the alive members currently inside quarantined regions.
func (d *churnDriver) muted() []int {
	if d.cs.dampK <= 0 || d.bt == nil {
		return nil
	}
	now := d.gen.Now()
	var out []int
	for _, v := range d.bt.Nodes {
		if d.damper.Damped(d.in.Point(v), now) {
			out = append(out, v)
		}
	}
	return out
}

// ladder runs one repair operation through bounded reseeded retries,
// falling through the degradation rungs: op (incremental), then restamp
// (when restampable), then rebuild-from-scratch over the target membership.
// Only ErrNotConverged consumes retries; any other error aborts
// immediately.
func (d *churnDriver) ladder(ctx context.Context, op func(cfg core.InitConfig) (*tree.BiTree, int, error), target []int) error {
	var lastErr error
	for attempt := 0; attempt < d.cs.retries; attempt++ {
		var (
			bt    *tree.BiTree
			slots int
			err   error
		)
		// Fault site churn.repair.fail: an injected attempt fails as a
		// non-convergence before the repair runs, consuming one retry rung
		// exactly like a real Las Vegas failure.
		if err = d.injectRepairFail(); err == nil {
			bt, slots, err = op(d.cfg(attempt * 64))
		}
		if err == nil {
			d.bt = bt
			d.stats.SlotsUsed += slots
			return nil
		}
		if !errors.Is(err, core.ErrNotConverged) {
			return err
		}
		d.stats.Retries++
		d.soft = append(d.soft, err)
		lastErr = err
	}
	// Rung 3: full rebuild over the target membership. (Rung 2, the full
	// restamp, only applies to drift — a non-converged re-attachment has no
	// merged tree to restamp, so the ladder falls straight through.)
	return d.rebuild(ctx, target, lastErr)
}

// rebuild is the ladder's last rung: reconstruct the tree from scratch
// over the target membership, with the same bounded reseeded retries.
func (d *churnDriver) rebuild(ctx context.Context, target []int, lastErr error) error {
	for attempt := 0; attempt < d.cs.retries; attempt++ {
		if err := d.injectRepairFail(); err != nil {
			d.stats.Retries++
			d.soft = append(d.soft, err)
			lastErr = err
			continue
		}
		cfg := d.cfg(attempt * 64)
		cfg.Participants = target
		cfg.Mute = nil // a rebuild must be able to use every survivor
		ires, err := core.Init(ctx, d.in, cfg)
		if err == nil {
			d.bt = ires.Tree
			d.bt.Compact()
			d.stats.SlotsUsed += ires.SlotsUsed
			d.stats.Rebuilds++
			d.baseline = d.bt.NumSlots()
			return nil
		}
		if !errors.Is(err, core.ErrNotConverged) {
			return err
		}
		d.stats.Retries++
		d.soft = append(d.soft, err)
		lastErr = err
	}
	return fmt.Errorf("%w (last: %v)", ErrRetryExhausted, lastErr)
}

// apply executes one trace event through the ladder.
func (d *churnDriver) apply(ctx context.Context, ev churn.Event) error {
	switch ev.Kind {
	case churn.KindJoin:
		return d.applyJoin(ctx, ev)
	case churn.KindFail, churn.KindBurst:
		return d.applyFailure(ctx, ev)
	case churn.KindShower:
		return d.applyShower(ctx, ev)
	case churn.KindMove:
		return d.applyMove(ctx, ev)
	}
	return fmt.Errorf("sinrconn: unknown churn event kind %v", ev.Kind)
}

func (d *churnDriver) applyJoin(ctx context.Context, ev churn.Event) error {
	if d.damper.Damped(ev.Point, ev.Time) {
		d.stats.DampedJoins++
		d.soft = append(d.soft, fmt.Errorf("%w: join at (%.1f, %.1f) refused at t=%.2f",
			ErrDamped, ev.Point.X, ev.Point.Y, ev.Time))
		return nil
	}
	in2, err := d.in.Extend([]geom.Point{ev.Point})
	if err != nil {
		return err
	}
	if err := d.swapInstance(in2); err != nil {
		return err
	}
	joiner := in2.Len() - 1
	err = d.ladder(ctx, func(cfg core.InitConfig) (*tree.BiTree, int, error) {
		jres, err := core.Join(ctx, d.in, d.bt, []int{joiner}, cfg)
		if err != nil {
			return nil, 0, err
		}
		return jres.Tree, jres.SlotsUsed, nil
	}, append(append([]int(nil), d.bt.Nodes...), joiner))
	if err != nil {
		return err
	}
	d.stats.Joins++
	d.stats.IncrementalRepairs++ // joins are always splices (stamped before the schedule)
	if d.stepper != nil {
		d.stepper.AddObstacle(ev.Point)
	}
	return nil
}

func (d *churnDriver) applyFailure(ctx context.Context, ev churn.Event) error {
	now := ev.Time
	for _, v := range ev.Nodes {
		d.damper.Record(d.in.Point(v), now)
	}
	survivors := make([]int, 0, len(d.bt.Nodes)-len(ev.Nodes))
	failed := make(map[int]bool, len(ev.Nodes))
	for _, v := range ev.Nodes {
		failed[v] = true
	}
	for _, v := range d.bt.Nodes {
		if !failed[v] {
			survivors = append(survivors, v)
		}
	}
	err := d.ladder(ctx, func(cfg core.InitConfig) (*tree.BiTree, int, error) {
		rres, err := core.RepairIncremental(ctx, d.in, d.bt, ev.Nodes, cfg)
		if err != nil {
			return nil, 0, err
		}
		return rres.Tree, rres.SlotsUsed, nil
	}, survivors)
	if err != nil {
		return err
	}
	if ev.Kind == churn.KindBurst {
		d.stats.Bursts++
	} else {
		d.stats.Fails++
	}
	d.stats.NodesFailed += len(ev.Nodes)
	d.stats.IncrementalRepairs++
	if d.stepper != nil {
		for _, v := range ev.Nodes {
			d.stepper.Park(v)
		}
	}
	return nil
}

func (d *churnDriver) applyShower(ctx context.Context, ev churn.Event) error {
	now := ev.Time
	for _, l := range ev.Links {
		d.damper.Record(d.in.Point(l.From), now)
	}
	// Link failures are permanent: forbid re-formation for the rest of the
	// trace (and in every rebuild).
	d.forbidden = append(d.forbidden, ev.Links...)
	err := d.ladder(ctx, func(cfg core.InitConfig) (*tree.BiTree, int, error) {
		rres, err := core.RepairLinksIncremental(ctx, d.in, d.bt, ev.Links, cfg)
		if err != nil {
			return nil, 0, err
		}
		return rres.Tree, rres.SlotsUsed, nil
	}, append([]int(nil), d.bt.Nodes...))
	if err != nil {
		return err
	}
	d.stats.Showers++
	d.stats.IncrementalRepairs++
	return nil
}

func (d *churnDriver) applyMove(ctx context.Context, ev churn.Event) error {
	if d.stepper == nil {
		return errors.New("sinrconn: move event without a mobility model")
	}
	moved := d.stepper.Step(ev.Dt)
	if len(moved) == 0 {
		d.stats.Moves++
		return nil
	}
	pos := d.stepper.Positions()
	to := make([]geom.Point, len(moved))
	for i, v := range moved {
		to[i] = pos[v]
	}
	in2, err := d.in.MoveTo(moved, to)
	if err != nil {
		return err
	}
	inTree := make(map[int]bool, len(d.bt.Nodes))
	for _, v := range d.bt.Nodes {
		inTree[v] = true
	}
	var movers []int
	for _, v := range moved {
		if inTree[v] {
			movers = append(movers, v)
		}
	}
	if err := d.swapInstance(in2); err != nil {
		return err
	}
	if len(movers) == 0 {
		d.stats.Moves++
		return nil
	}
	if len(movers) >= len(d.bt.Nodes) {
		// Everyone moved at once: there is no intact remainder to splice
		// into, so incremental repair is undefined — go straight to the
		// rebuild rung over the (moved) membership.
		if err := d.rebuild(ctx, append([]int(nil), d.bt.Nodes...), nil); err != nil {
			return err
		}
		d.stats.Moves++
		d.stats.NodesMoved += len(movers)
		return nil
	}
	err = d.ladder(ctx, func(cfg core.InitConfig) (*tree.BiTree, int, error) {
		rres, err := core.MoveIncremental(ctx, d.in, d.bt, movers, cfg)
		if err != nil {
			return nil, 0, err
		}
		return rres.Tree, rres.SlotsUsed, nil
	}, append([]int(nil), d.bt.Nodes...))
	if err != nil {
		return err
	}
	d.stats.Moves++
	d.stats.NodesMoved += len(movers)
	d.stats.IncrementalRepairs++
	return nil
}

// swapInstance installs a derived instance (extended, moved, or shrunk) and
// re-resolves the channel mode over it. Far-field plans ride along on
// Extend; MoveTo and Shrink rebuild them lazily on first engine use.
func (d *churnDriver) swapInstance(in *sinr.Instance) error {
	ff, adaptive, err := farFieldFor(in, d.s)
	if err != nil {
		return err
	}
	d.in = in
	d.ff = ff
	d.adaptive = adaptive
	return nil
}

// maintain enforces the drift budget (full restamp when splice
// fragmentation exceeds it) and compacts the instance when more than half
// its points are dead weight.
func (d *churnDriver) maintain() error {
	if k := d.bt.NumSlots(); float64(k) > d.cs.driftBudget*float64(max(1, d.baseline)) {
		if _, err := d.bt.Restamp(d.in); err != nil {
			return fmt.Errorf("drift restamp: %w", err)
		}
		d.stats.Restamps++
		d.baseline = d.bt.NumSlots()
	}
	if n := d.in.Len(); n >= 64 && len(d.bt.Nodes)*2 < n {
		if err := d.compact(); err != nil {
			return fmt.Errorf("compaction: %w", err)
		}
	}
	return nil
}

// compact shrinks the instance to the live membership, remapping the tree
// and the forbidden-link set through the survivor index map and rebuilding
// the mobility stepper over the compacted world.
func (d *churnDriver) compact() error {
	alive := make(map[int]bool, len(d.bt.Nodes))
	for _, v := range d.bt.Nodes {
		alive[v] = true
	}
	var removed []int
	for v := 0; v < d.in.Len(); v++ {
		if !alive[v] {
			removed = append(removed, v)
		}
	}
	in2, oldToNew, err := d.in.Shrink(removed)
	if err != nil {
		return err
	}
	nt := &tree.BiTree{Root: oldToNew[d.bt.Root]}
	for _, v := range d.bt.Nodes {
		nt.Nodes = append(nt.Nodes, oldToNew[v])
	}
	for _, tl := range d.bt.Up {
		tl.L.From = oldToNew[tl.L.From]
		tl.L.To = oldToNew[tl.L.To]
		nt.Up = append(nt.Up, tl)
	}
	var nf []sinr.Link
	for _, l := range d.forbidden {
		if oldToNew[l.From] >= 0 && oldToNew[l.To] >= 0 {
			nf = append(nf, sinr.Link{From: oldToNew[l.From], To: oldToNew[l.To]})
		}
	}
	d.forbidden = nf
	d.bt = nt
	if err := d.swapInstance(in2); err != nil {
		return err
	}
	d.stats.Compactions++
	if d.stepper != nil {
		d.rebuildStepper(d.mobSeed + int64(d.stats.Compactions))
	}
	return nil
}

// rebuildStepper (re)creates the mobility stepper over the CURRENT instance
// points: alive nodes move, dead ones are parked in place, and there are no
// out-of-population obstacles (every instance point is in the population).
// The city-grid street anchor is fixed at bootstrap, so a rebuild over
// already-snapped points is the identity — no re-snap drift.
func (d *churnDriver) rebuildStepper(seed int64) {
	d.mobSeed = seed
	rng := rand.New(rand.NewSource(seed))
	pts := d.in.Points()
	switch d.mobModel {
	case MobilityWaypoint:
		d.stepper = workload.NewRandomWaypoint(rng, pts, d.mobSpeed/3, d.mobSpeed, 1)
	case MobilityCityGrid:
		d.stepper = workload.NewCityGrid(rng, pts, d.mobOrigin, 8, d.mobSpeed, 0.4)
	default:
		d.stepper = nil
		return
	}
	if d.bt == nil {
		return // bootstrap: everyone is (about to be) alive
	}
	alive := make(map[int]bool, len(d.bt.Nodes))
	for _, v := range d.bt.Nodes {
		alive[v] = true
	}
	for v := 0; v < len(pts); v++ {
		if !alive[v] {
			d.stepper.Park(v)
		}
	}
}

// syncStepper folds any position changes the stepper made at construction
// (the city-grid street snap) back into the instance, so instance and
// stepper agree before the first event.
func (d *churnDriver) syncStepper() error {
	pos := d.stepper.Positions()
	pts := d.in.Points()
	var moved []int
	var to []geom.Point
	for v := range pts {
		if pos[v] != pts[v] {
			moved = append(moved, v)
			to = append(to, pos[v])
		}
	}
	if len(moved) == 0 {
		return nil
	}
	in2, err := d.in.MoveTo(moved, to)
	if err != nil {
		return err
	}
	return d.swapInstance(in2)
}

// audit runs the full invariant battery on the live tree — the same bar a
// fresh construction has to pass.
func (d *churnDriver) audit() error {
	if err := d.bt.Validate(); err != nil {
		return err
	}
	if !d.bt.StronglyConnected() {
		return errors.New("tree not strongly connected")
	}
	if err := d.bt.ValidateOrdering(); err != nil {
		return err
	}
	return d.bt.ValidatePerSlotFeasibleFar(d.in, d.ff)
}
