package sinrconn

// Dynamic-membership operations: the extensions the paper's conclusion
// calls for ("asynchronous node wakeup, node and link failures"). All of
// them live on the Network handle, operate on an existing Result, and
// return a fresh one; the original is never mutated, so memoized Results
// stay safe to share.

import (
	"context"
	"errors"
	"fmt"

	"sinrconn/internal/core"
	"sinrconn/internal/geom"
	"sinrconn/internal/serve/cache"
	"sinrconn/internal/sinr"
)

// checkBound rejects a Result that is not bound to the receiver Network
// (or to any Network at all).
func (nw *Network) checkBound(r *Result) error {
	if r == nil || r.nw == nil {
		return errors.New("sinrconn: result is not bound to a network")
	}
	if r.nw != nw {
		return errors.New("sinrconn: result belongs to a different network (use r.Network())")
	}
	return nil
}

// opSettings resolves options for an operation on an existing result
// (join, repair, physical epoch). WithPhys is rejected because the result
// fixes the physics. The caller has already been admitted via beginOp —
// Close's contract refuses new work uniformly, not just Run.
func (nw *Network) opSettings(opts []RunOption) (settings, error) {
	s, err := nw.runSettings(opts)
	if err != nil {
		return s, err
	}
	if s.physSet {
		return s, errors.New("sinrconn: WithPhys does not apply to joins, repairs, or physical epochs (the result fixes the physics)")
	}
	return s, nil
}

// Join attaches newly awakened nodes at newPts to r's bi-tree,
// distributedly (members acknowledge, joiners ladder through distance
// classes — see core.Join). The new nodes receive indices starting at the
// current node count, in input order. The combined point set must keep
// minimum pairwise distance ≥ 1, reported as ErrNotNormalized otherwise;
// joins never renormalize, since that would silently move existing nodes.
//
// The grown deployment reuses this session's state: the enlarged physics
// instance is derived from the run's instance by extending its gain table
// (only the new rows/columns are computed) and the join protocol runs on
// this Network's worker pool. The returned Result is bound to a derived
// Network over the enlarged point set — reachable via Result.Network() —
// which shares this handle's pool and needs no separate Close.
func (nw *Network) Join(ctx context.Context, r *Result, newPts []Point, opts ...RunOption) (*Result, error) {
	if err := nw.checkBound(r); err != nil {
		return nil, err
	}
	done, err := nw.beginOp()
	if err != nil {
		return nil, err
	}
	defer done()
	s, err := nw.opSettings(opts)
	if err != nil {
		return nil, err
	}
	return nw.join(ctx, r, newPts, s)
}

// join is the shared body of Join and the deprecated JoinPoints wrapper.
// The physical parameters always come from r's instance (never from s):
// a join extends an existing deployment, it does not re-parameterize it.
func (nw *Network) join(ctx context.Context, r *Result, newPts []Point, s settings) (*Result, error) {
	if len(newPts) == 0 {
		return nil, errors.New("sinrconn: no points to join")
	}
	oldTree := r.Tree.inner
	oldInst := r.Tree.inst

	extra := make([]geom.Point, len(newPts))
	joiners := make([]int, len(newPts))
	for i, p := range newPts {
		extra[i] = geom.Point{X: p.X, Y: p.Y}
		joiners[i] = oldInst.Len() + i
	}
	merged := make([]geom.Point, 0, oldInst.Len()+len(extra))
	merged = append(append(merged, oldInst.Points()...), extra...)
	if md := geom.MinDist(merged); md < 1-1e-9 {
		return nil, fmt.Errorf("%w: min distance %v after join", ErrNotNormalized, md)
	}
	in, err := oldInst.Extend(extra)
	if err != nil {
		return nil, err
	}
	ff, adaptive, err := opFarField(r, in, s)
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()
	jres, err := core.Join(ctx, in, oldTree, joiners, core.InitConfig{
		BroadcastProb: s.broadcastProb,
		Seed:          s.seed,
		Workers:       s.workers,
		DropProb:      s.drop,
		Pool:          pool,
		FarField:      ff,
		Adaptive:      adaptive,
		Observer:      s.observer,
	})
	if err != nil {
		return nil, err
	}
	bt := jres.Tree
	m := Metrics{
		SlotsUsed:      jres.SlotsUsed,
		ScheduleLength: bt.NumSlots(),
		Rounds:         jres.Rounds,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         jres.Stats.Energy,
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	grown := nw.derive(in)
	return grown.newResult(in, bt, m, ff, adaptive), nil
}

// derive builds the Network bound to a join-grown instance: same settings,
// the parent's pool by reference, and the grown instance pre-cached.
func (nw *Network) derive(in *sinr.Instance) *Network {
	root := nw
	if nw.parent != nil {
		root = nw.parent
	}
	return &Network{
		pts:    in.Points(),
		base:   nw.base,
		parent: root,
		insts:  map[sinr.Params]*sinr.Instance{in.Params(): in},
		memo:   cache.New[runKey, *Result](nw.base.cacheSize, nw.base.cacheTTL),
	}
}

// Repair removes the given (failed) node indices from r's tree and
// reconnects the survivors: orphaned subtrees re-attach as units via the
// join protocol and the schedule is recomputed (see core.Repair). If the
// root failed, the largest orphan subtree is promoted. The repaired Result
// stays bound to this Network (the point set is unchanged; failed nodes
// simply no longer appear in the tree).
func (nw *Network) Repair(ctx context.Context, r *Result, failed []int, opts ...RunOption) (*Result, error) {
	if err := nw.checkBound(r); err != nil {
		return nil, err
	}
	done, err := nw.beginOp()
	if err != nil {
		return nil, err
	}
	defer done()
	s, err := nw.opSettings(opts)
	if err != nil {
		return nil, err
	}
	return nw.repair(ctx, r, failed, s)
}

func (nw *Network) repair(ctx context.Context, r *Result, failed []int, s settings) (*Result, error) {
	if len(failed) == 0 {
		return nil, errors.New("sinrconn: no failed nodes given")
	}
	in := r.Tree.inst
	ff, adaptive, err := opFarField(r, in, s)
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()
	rres, err := core.Repair(ctx, in, r.Tree.inner, failed, core.InitConfig{
		BroadcastProb: s.broadcastProb,
		Seed:          s.seed,
		Workers:       s.workers,
		DropProb:      s.drop,
		Pool:          pool,
		FarField:      ff,
		Adaptive:      adaptive,
		Observer:      s.observer,
	})
	if err != nil {
		return nil, err
	}
	bt := rres.Tree
	m := Metrics{
		SlotsUsed:      rres.SlotsUsed,
		ScheduleLength: rres.ScheduleLength,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         rres.Stats.Energy,
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return nw.newResult(in, bt, m, ff, adaptive), nil
}

// RepairLinks handles permanent link failures: the given tree links have
// become unusable (an obstacle the path-loss model cannot see) while both
// endpoints remain alive. The orphaned subtrees re-attach via the join
// protocol — explicitly forbidden from re-forming the failed links — and
// the schedule is recomputed.
func (nw *Network) RepairLinks(ctx context.Context, r *Result, links []Link, opts ...RunOption) (*Result, error) {
	if err := nw.checkBound(r); err != nil {
		return nil, err
	}
	done, err := nw.beginOp()
	if err != nil {
		return nil, err
	}
	defer done()
	s, err := nw.opSettings(opts)
	if err != nil {
		return nil, err
	}
	return nw.repairLinks(ctx, r, links, s)
}

func (nw *Network) repairLinks(ctx context.Context, r *Result, links []Link, s settings) (*Result, error) {
	if len(links) == 0 {
		return nil, errors.New("sinrconn: no failed links given")
	}
	in := r.Tree.inst
	failed := make([]sinr.Link, len(links))
	for i, l := range links {
		failed[i] = sinr.Link{From: l.From, To: l.To}
	}
	ff, adaptive, err := opFarField(r, in, s)
	if err != nil {
		return nil, err
	}
	pool, release := nw.acquirePool()
	defer release()
	rres, err := core.RepairLinks(ctx, in, r.Tree.inner, failed, core.InitConfig{
		BroadcastProb: s.broadcastProb,
		Seed:          s.seed,
		Workers:       s.workers,
		DropProb:      s.drop,
		Pool:          pool,
		FarField:      ff,
		Adaptive:      adaptive,
		Observer:      s.observer,
	})
	if err != nil {
		return nil, err
	}
	bt := rres.Tree
	m := Metrics{
		SlotsUsed:      rres.SlotsUsed,
		ScheduleLength: rres.ScheduleLength,
		Upsilon:        in.Upsilon(),
		Delta:          in.Delta(),
		Energy:         rres.Stats.Energy,
	}
	if err := fillLatencies(&m, bt); err != nil {
		return nil, err
	}
	return nw.newResult(in, bt, m, ff, adaptive), nil
}

// JoinPoints attaches newly awakened nodes to the existing bi-tree.
//
// Deprecated: use (*Network).Join, which takes a context and reports the
// grown handle via Result.Network().
func (r *Result) JoinPoints(newPts []Point, opt Options) (*Result, error) {
	if r.nw == nil {
		return nil, errors.New("sinrconn: result is not bound to a network")
	}
	//lint:ignore ctxdiscipline deprecated pre-context wrapper; signature frozen, pinned by TestWrapperEquivalenceDynamic
	return r.nw.join(context.Background(), r, newPts, opt.settings())
}

// RepairFailures removes failed nodes and reconnects the survivors.
//
// Deprecated: use (*Network).Repair.
func (r *Result) RepairFailures(failed []int, opt Options) (*Result, error) {
	if r.nw == nil {
		return nil, errors.New("sinrconn: result is not bound to a network")
	}
	//lint:ignore ctxdiscipline deprecated pre-context wrapper; signature frozen, pinned by TestWrapperEquivalenceDynamic
	return r.nw.repair(context.Background(), r, failed, opt.settings())
}

// RepairLinkFailures handles permanent link failures.
//
// Deprecated: use (*Network).RepairLinks.
func (r *Result) RepairLinkFailures(links []Link, opt Options) (*Result, error) {
	if r.nw == nil {
		return nil, errors.New("sinrconn: result is not bound to a network")
	}
	//lint:ignore ctxdiscipline deprecated pre-context wrapper; signature frozen, pinned by TestWrapperEquivalenceDynamic
	return r.nw.repairLinks(context.Background(), r, links, opt.settings())
}
