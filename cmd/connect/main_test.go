package main

import (
	"strings"
	"testing"
)

func TestRunPipelines(t *testing.T) {
	for _, pipeline := range []string{"init", "reschedule", "mean", "arbitrary"} {
		t.Run(pipeline, func(t *testing.T) {
			var b strings.Builder
			err := run([]string{"-n", "24", "-pipeline", pipeline, "-seed", "2"}, &b)
			if err != nil {
				t.Fatal(err)
			}
			out := b.String()
			if !strings.Contains(out, "schedule=") || !strings.Contains(out, "root=") {
				t.Errorf("missing summary in output:\n%s", out)
			}
			if pipeline != "reschedule" && !strings.Contains(out, "verification") {
				t.Errorf("missing verification line:\n%s", out)
			}
		})
	}
}

func TestRunWorkloads(t *testing.T) {
	for _, wl := range []string{"uniform", "clusters", "grid", "chain", "gaussians", "annulus", "powerlaw", "city"} {
		t.Run(wl, func(t *testing.T) {
			var b strings.Builder
			if err := run([]string{"-n", "20", "-workload", wl, "-pipeline", "init"}, &b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunVerbose(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "16", "-pipeline", "init", "-v"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "slot ") {
		t.Errorf("verbose output missing link lines:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-pipeline", "bogus"}, &b); err == nil {
		t.Error("bogus pipeline accepted")
	}
	if err := run([]string{"-workload", "bogus"}, &b); err == nil {
		t.Error("bogus workload accepted")
	}
	if err := run([]string{"-badflag"}, &b); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, wl := range []string{"uniform", "clusters", "grid", "chain", "gaussians", "annulus", "powerlaw", "city"} {
		pts, err := generate(wl, 25, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 25 {
			t.Errorf("%s: %d points", wl, len(pts))
		}
	}
	if _, err := generate("bogus", 10, 1); err == nil {
		t.Error("bogus workload accepted")
	}
}
