// Package schedule partitions link sets into SINR-feasible slots. It
// provides the two schedulers the paper leans on:
//
//   - Distributed: the contention-resolution scheduler in the style of
//     Kesselheim & Vöcking (DISC 2010) that the paper invokes for Theorem 3,
//     with explicit acknowledgments on dual links (Appendix C) and adaptive
//     transmission probabilities. It runs on the sim engine, so its success
//     notion is the exact SINR physics.
//
//   - FirstFit: the classic centralized greedy that assigns each link to
//     the first slot that stays feasible — the comparator used to calibrate
//     the distributed scheduler's approximation factor.
package schedule
