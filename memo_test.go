package sinrconn_test

// Result-memo behavior gates (PR 7 satellites): LRU eviction order,
// re-compute-on-miss, eviction safety under concurrent readers, and the
// commit-only-on-success discipline for canceled runs. The cache
// mechanism itself is unit-tested in internal/serve/cache; these tests
// pin its integration behind Network.Run through the public API only.

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"sinrconn"

	"sinrconn/internal/workload"
)

func memoPoints(seed int64, n int) []sinrconn.Point {
	g := workload.UniformSeeded(seed, n)
	pts := make([]sinrconn.Point, len(g))
	for i, p := range g {
		pts[i] = sinrconn.Point{X: p.X, Y: p.Y}
	}
	return pts
}

// TestResultMemoEvictionOrder pins the memo's LRU discipline end to end:
// least-recently-used specs fall out first, touched specs survive, and a
// miss after eviction re-computes (identical bytes, fresh entry).
func TestResultMemoEvictionOrder(t *testing.T) {
	ctx := context.Background()
	pts := memoPoints(1, 22)

	run := func(nw *sinrconn.Network, seed int64) (*sinrconn.Result, bool) {
		t.Helper()
		r, cached, err := nw.RunCached(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return r, cached
	}

	for _, tc := range []struct {
		name string
		size int
		// ops is the access sequence by seed; hit[i] is the expected
		// cache outcome of ops[i].
		ops []int64
		hit []bool
	}{
		{
			name: "capacity-2-evicts-oldest",
			size: 2,
			//                 1:miss 2:miss 3:miss(evict 1) 1:miss(evict 2) 3:hit
			ops: []int64{1, 2, 3, 1, 3},
			hit: []bool{false, false, false, false, true},
		},
		{
			name: "touch-refreshes-recency",
			size: 2,
			//                 1:miss 2:miss 1:hit 3:miss(evicts 2, NOT 1) 1:hit 2:miss
			ops: []int64{1, 2, 1, 3, 1, 2},
			hit: []bool{false, false, true, false, true, false},
		},
		{
			name: "capacity-1-thrashes",
			size: 1,
			ops:  []int64{1, 2, 1, 1},
			hit:  []bool{false, false, false, true},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := sinrconn.Open(pts, sinrconn.WithSeed(1), sinrconn.WithResultCache(tc.size, 0))
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			bySeed := map[int64][]byte{}
			for i, seed := range tc.ops {
				r, cached := run(nw, seed)
				if cached != tc.hit[i] {
					t.Fatalf("op %d (seed %d): cached = %v, want %v", i, seed, cached, tc.hit[i])
				}
				// Re-computation after eviction must reproduce the exact
				// result (constructions are deterministic).
				raw, err := json.Marshal(r.Metrics)
				if err != nil {
					t.Fatal(err)
				}
				if prev, ok := bySeed[seed]; ok && string(prev) != string(raw) {
					t.Fatalf("op %d (seed %d): recomputed result diverges\n was: %s\n now: %s", i, seed, prev, raw)
				}
				bySeed[seed] = raw
			}
			st := nw.CacheStats()
			wantMiss, wantHit := uint64(0), uint64(0)
			for _, h := range tc.hit {
				if h {
					wantHit++
				} else {
					wantMiss++
				}
			}
			if st.Hits != wantHit || st.Misses != wantMiss {
				t.Fatalf("stats = %+v, want %d hits / %d misses", st, wantHit, wantMiss)
			}
			if st.Size > tc.size {
				t.Fatalf("cache holds %d entries past capacity %d", st.Size, tc.size)
			}
			if wantEvict := wantMiss - uint64(min(int(wantMiss), tc.size)); st.Evictions != wantEvict {
				t.Fatalf("evictions = %d, want %d", st.Evictions, wantEvict)
			}
		})
	}
}

// TestResultMemoEvictionConcurrentReaders holds a *Result while its memo
// entry is evicted and overwritten under churn from concurrent runners:
// the held result must stay bit-stable (eviction drops the reference, it
// never mutates or recycles the object). Run with -race.
func TestResultMemoEvictionConcurrentReaders(t *testing.T) {
	ctx := context.Background()
	pts := memoPoints(2, 22)
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(1), sinrconn.WithResultCache(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	held, _, err := nw.RunCached(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(100))
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := json.Marshal(held)
	if err != nil {
		t.Fatal(err)
	}

	// Churn the capacity-1 memo from several goroutines (every new seed
	// evicts the previous entry) while re-reading the held result.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				seed := int64(200 + 10*g + i)
				if _, _, err := nw.RunCached(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(seed)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 64; i++ {
			raw, err := json.Marshal(held)
			if err != nil {
				t.Error(err)
				return
			}
			if string(raw) != string(snapshot) {
				t.Errorf("held result mutated during eviction churn\n was: %s\n now: %s", snapshot, raw)
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone

	if st := nw.CacheStats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v: churn produced no evictions, test exercised nothing", st)
	}
	// The held result still verifies after its entry died.
	if raw, _ := json.Marshal(held); string(raw) != string(snapshot) {
		t.Fatal("held result differs after churn")
	}
}

// TestRunCanceledCommitsNothing pins the satellite-4 fix: a Run canceled
// between slots must leave NO memo entry — a later identical query
// re-computes from scratch rather than observing a half-populated result,
// and a concurrent identical query gets a complete, valid result.
func TestRunCanceledCommitsNothing(t *testing.T) {
	ctx := context.Background()
	pts := memoPoints(3, 26)
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	// Cancel from inside the run, after the first simulator slot: the
	// engine observes the dead context at the next slot boundary.
	cctx, cancel := context.WithCancel(ctx)
	_, _, err = nw.RunCached(cctx, sinrconn.PipelineInit,
		sinrconn.WithSeed(7),
		sinrconn.WithObserver(func(sinrconn.SlotEvent) { cancel() }))
	if err == nil {
		t.Fatal("run canceled mid-flight returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	st := nw.CacheStats()
	if st.Size != 0 {
		t.Fatalf("canceled run committed a memo entry: %+v", st)
	}

	// The identical query now computes cleanly and reports a miss — it
	// never sees the canceled run's partial state.
	res, cached, err := nw.RunCached(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("query after canceled run was served from cache")
	}
	if res.Metrics.SlotsUsed <= 0 || res.Tree.NumNodes != len(pts) {
		t.Fatalf("recomputed result malformed: %+v", res.Metrics)
	}

	// Concurrent shape: one runner self-cancels mid-run while another
	// issues the identical query with a live context. Whatever the
	// interleaving, the live query must produce the full, correct result.
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		nw2, err := sinrconn.Open(pts, sinrconn.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		c2, cancel2 := context.WithCancel(ctx)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			nw2.RunCached(c2, sinrconn.PipelineInit,
				sinrconn.WithSeed(7),
				sinrconn.WithObserver(func(sinrconn.SlotEvent) { cancel2() }))
		}()
		live, _, err := nw2.RunCached(ctx, sinrconn.PipelineInit, sinrconn.WithSeed(7))
		wg.Wait()
		cancel2()
		if err != nil {
			t.Fatalf("round %d: live query failed: %v", round, err)
		}
		got, _ := json.Marshal(live)
		if string(got) != string(want) {
			t.Fatalf("round %d: live query diverges from reference\n got: %s\nwant: %s", round, got, want)
		}
		nw2.Close()
	}
}
