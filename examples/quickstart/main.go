// Quickstart: open a session over 64 wireless nodes, build a strongly
// connected, efficiently scheduled structure from scratch, and print what
// you got — then reuse the same session for a second pipeline for free.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"

	"sinrconn"
)

func main() {
	if err := run(os.Stdout, 64, 21, 7); err != nil {
		log.Fatal(err)
	}
}

// run builds and verifies the structure for n nodes scattered on a
// span×span square, writing the report to out. seed drives the protocol
// randomness only; the topology seed is fixed so the example's instance
// (and narrative output) stays stable across seeds.
func run(out io.Writer, n int, span float64, seed int64) error {
	// Scatter nodes on a square with minimum pairwise distance 1 (the
	// SINR model's normalization).
	rng := rand.New(rand.NewSource(42))
	pts := scatter(rng, n, span)

	// Open the session once: geometry validated, the O(n²) physics gain
	// table built, and the simulator worker pool spawned — all shared by
	// every run on the handle.
	nw, err := sinrconn.Open(pts, sinrconn.WithSeed(seed))
	if err != nil {
		return err
	}
	defer nw.Close()

	// Build the Section-8 bi-tree: O(log n) schedule slots with computed
	// per-link powers. All protocol work happens over a simulated SINR
	// channel — the nodes have no other way to talk. The context bounds
	// the construction; pass a deadline to cap long builds.
	ctx := context.Background()
	res, err := nw.Run(ctx, sinrconn.PipelineTVCArbitrary)
	if err != nil {
		return err
	}

	m := res.Metrics
	fmt.Fprintf(out, "instance: n=%d  Δ=%.1f  Υ=%.1f\n", len(pts), m.Delta, m.Upsilon)
	fmt.Fprintf(out, "bi-tree:  root=%d  depth=%d  max degree=%d\n",
		res.Tree.Root, res.Tree.Depth(), res.Tree.MaxDegree())
	fmt.Fprintf(out, "schedule: %d slots (log₂ n = %.1f)\n",
		m.ScheduleLength, math.Log2(float64(len(pts))))
	fmt.Fprintf(out, "latency:  converge-cast %d slots, broadcast %d slots\n",
		m.AggregationLatency, m.BroadcastLatency)
	fmt.Fprintf(out, "cost:     %d channel slots to build, distributedly\n", m.SlotsUsed)

	// Re-verify everything the theorems promise: spanning bi-tree, strong
	// connectivity, aggregation ordering, per-slot SINR feasibility.
	if err := res.Tree.Verify(); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Fprintln(out, "verify:   tree, ordering, and schedule feasibility all OK")

	// The session amortizes: a second pipeline on the same handle skips
	// geometry validation and the gain-table build entirely.
	res2, err := nw.Run(ctx, sinrconn.PipelineInit)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "reuse:    Theorem 2 tree on the same session: %d schedule slots\n",
		res2.Metrics.ScheduleLength)
	return nil
}

func scatter(rng *rand.Rand, n int, span float64) []sinrconn.Point {
	var pts []sinrconn.Point
	for len(pts) < n {
		cand := sinrconn.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		ok := true
		for _, p := range pts {
			if math.Hypot(p.X-cand.X, p.Y-cand.Y) < 1 {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}
