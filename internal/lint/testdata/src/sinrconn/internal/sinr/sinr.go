// Package sinr is a fixture stub of the real kernel package: importing it
// from the oracle fixture is exactly the violation oraclepurity exists to
// catch.
package sinr

// PowAlpha mirrors the fast-path kernel the oracle must never call.
func PowAlpha(d, alpha float64) float64 { return d * alpha }
