package oracle

// The brute-force reference for the hierarchical (quadtree) far-field
// engine (internal/sinr/quadtree.go): the same pyramid *specification* —
// depth L(n, span), leaf side, binning, bottom-up power-weighted aggregates,
// per-level opening radii, fixed-order walk — computed with the package's
// naive physics (math.Hypot distances, math.Pow path loss) and naive
// bookkeeping (per-level maps, recursion, no scratch reuse, no refinement).
//
// Two kinds of expression live here, deliberately distinguished:
//
//   - Decision expressions — the opening comparison d² ≥ openRad²[level],
//     the centroid folds it reads, and the traversal order — PARTITION the
//     computation between "aggregate" and "descend". These are transcribed
//     from the kernel expression for expression (same floats in, same
//     floats compared), because a flipped decision swaps an exact branch
//     for an ε-approximate one and no numeric tolerance covers that.
//   - Physics inside each branch — gains, distances — is naive
//     (math.Hypot + math.Pow), differing from the kernel by a few ulps,
//     which is exactly what the 1e-12 differential suite measures.
//
// TestQuadPlanLockstep asserts the two derivations produce identical plans,
// TestDifferentialQuadtreeVsOracle pins the walked SINR to 1e-12 relative,
// and TestQuadtreeErrorBound pins both within the certified ε of the exact
// physics. When an optimization breaks the quadtree kernel, the
// disagreement with this file is the proof.

import (
	"math"

	"sinrconn/internal/geom"
	"sinrconn/internal/phys"
)

// maxQuadLevels mirrors the kernel's depth cap (4^9 leaves = farMaxTiles).
const maxQuadLevels = 9

// Morton is the naive per-bit transcription of the kernel's Z-order node
// index (sinr.MortonEncode does it with byte tables): bit i of x lands at
// bit 2i, bit i of y at bit 2i+1. The lockstep suite cross-checks the two
// implementations exhaustively.
func Morton(x, y int) int {
	id := 0
	for i := 0; i < 16; i++ {
		id |= (x >> i & 1) << (2 * i)
		id |= (y >> i & 1) << (2*i + 1)
	}
	return id
}

// MortonXY inverts Morton, naively per bit.
func MortonXY(id int) (x, y int) {
	for i := 0; i < 16; i++ {
		x |= (id >> (2 * i) & 1) << i
		y |= (id >> (2*i + 1) & 1) << i
	}
	return x, y
}

// QuadLevels is the naive transcription of sinr.QuadLevels: ≈ log₄(n/4),
// lowered until the leaf side span/2^L is at least 1 and capped at
// maxQuadLevels.
func QuadLevels(n int, span float64) int {
	l := int(math.Ceil(math.Log2(math.Max(2, float64(n)))/2)) - 1
	if l > maxQuadLevels {
		l = maxQuadLevels
	}
	for l > 0 && span/float64(int32(1)<<l) < 1 {
		l--
	}
	if l < 0 {
		l = 0
	}
	return l
}

// QuadTheta is the naive transcription of sinr.QuadTheta: the opening
// threshold (1+ε)^{1/α} − 1 clamped to √2/farMinRing.
func QuadTheta(alpha, maxRelErr float64) float64 {
	t := math.Pow(1+maxRelErr, 1/alpha) - 1
	if max := math.Sqrt2 / farMinRing; t > max {
		t = max
	}
	return t
}

// QuadCertifiedErr is the naive transcription of the certified bound:
// (1+θ)^α − 1, repaired to ε when the float round-trip lands an ulp above
// (the analytic bound is exactly ε when the θ clamp is slack).
func QuadCertifiedErr(theta, alpha, maxRelErr float64) float64 {
	e := math.Pow(1+theta, alpha) - 1
	if e > maxRelErr {
		e = maxRelErr
	}
	return e
}

// QuadPlan is the naive transcription of the hierarchical plan geometry.
type QuadPlan struct {
	Levels   int
	Cell     float64
	OX, OY   float64
	Theta    float64
	OpenRad2 []float64 // per level: squared opening radius
}

// QuadPlanFor derives the pyramid for pts at the given exponent and error
// bound, expression for expression as the kernel does.
func QuadPlanFor(pts []geom.Point, alpha, maxRelErr float64) QuadPlan {
	lo, hi := pts[0], pts[0]
	for _, p := range pts[1:] {
		if p.X < lo.X {
			lo.X = p.X
		}
		if p.Y < lo.Y {
			lo.Y = p.Y
		}
		if p.X > hi.X {
			hi.X = p.X
		}
		if p.Y > hi.Y {
			hi.Y = p.Y
		}
	}
	span := hi.X - lo.X
	if h := hi.Y - lo.Y; h > span {
		span = h
	}
	if !(span > 0) {
		span = 1
	}
	l := QuadLevels(len(pts), span)
	theta := QuadTheta(alpha, maxRelErr)
	qp := QuadPlan{
		Levels:   l,
		Cell:     span / float64(int32(1)<<l),
		OX:       lo.X,
		OY:       lo.Y,
		Theta:    theta,
		OpenRad2: make([]float64, l+1),
	}
	for lvl := 0; lvl <= l; lvl++ {
		side := qp.Cell * float64(int32(1)<<(l-lvl))
		or := side * math.Sqrt2 / theta
		qp.OpenRad2[lvl] = or * or
	}
	return qp
}

// Leaf returns p's leaf coordinates at the deepest level, clamped into the
// grid.
func (qp QuadPlan) Leaf(p geom.Point) (x, y int) {
	dim := 1 << qp.Levels
	x = int(math.Floor((p.X - qp.OX) / qp.Cell))
	y = int(math.Floor((p.Y - qp.OY) / qp.Cell))
	if x < 0 {
		x = 0
	} else if x >= dim {
		x = dim - 1
	}
	if y < 0 {
		y = 0
	} else if y >= dim {
		y = dim - 1
	}
	return x, y
}

// quadAgg is one pyramid node's sender aggregate. cx/cy hold raw Σ P·coord
// sums during accumulation and the normalized centroid afterwards, exactly
// like the kernel scratch.
type quadAgg struct {
	mass, cx, cy, pmax float64
}

// quadAccumulate folds txs into per-node aggregates: leaves in tx order,
// then each level into its parents in first-touch order, then one centroid
// normalization sweep — the kernel's fold orders, transcribed, so every sum
// is bit-identical to the scratch's. Nodes are keyed by Morton index,
// mirroring the kernel's Z-order layout: a node's parent is id>>2.
func quadAccumulate(qp QuadPlan, pts []geom.Point, txs []phys.Tx) []map[int]*quadAgg {
	l := qp.Levels
	levels := make([]map[int]*quadAgg, l+1)
	orders := make([][]int, l+1)
	for lvl := 0; lvl <= l; lvl++ {
		levels[lvl] = make(map[int]*quadAgg)
	}
	for _, t := range txs {
		x, y := qp.Leaf(pts[t.Sender])
		id := Morton(x, y)
		a := levels[l][id]
		if a == nil {
			a = &quadAgg{}
			levels[l][id] = a
			orders[l] = append(orders[l], id)
		}
		a.mass += t.Power
		a.cx += t.Power * pts[t.Sender].X
		a.cy += t.Power * pts[t.Sender].Y
		if t.Power > a.pmax {
			a.pmax = t.Power
		}
	}
	for lvl := l; lvl > 0; lvl-- {
		for _, id := range orders[lvl] {
			pid := id >> 2
			pa := levels[lvl-1][pid]
			if pa == nil {
				pa = &quadAgg{}
				levels[lvl-1][pid] = pa
				orders[lvl-1] = append(orders[lvl-1], pid)
			}
			a := levels[lvl][id]
			pa.mass += a.mass
			pa.cx += a.cx
			pa.cy += a.cy
			if a.pmax > pa.pmax {
				pa.pmax = a.pmax
			}
		}
	}
	for lvl := 0; lvl <= l; lvl++ {
		for _, id := range orders[lvl] {
			a := levels[lvl][id]
			if a.mass > 0 {
				a.cx /= a.mass
				a.cy /= a.mass
			}
		}
	}
	return levels
}

// QuadLinkSINR returns the hierarchical far-field approximate SINR of link
// l with sender power pu among txs, the naive way: exact signal, recursive
// fixed-order walk opening nodes by the transcribed criterion, leaf-exact
// interference inside the opening horizon (per sender, math.Pow physics),
// aggregated centroid-mass terms beyond it. The link's own sender is
// excluded exactly in opened leaves and by mass subtraction in the
// aggregated ancestor that absorbs it. txs must contain at most one entry
// per sender — the same contract as the kernel's LinkSINR.
func QuadLinkSINR(pts []geom.Point, p phys.Params, maxRelErr float64, txs []phys.Tx, l phys.Link, pu float64) float64 {
	qp := QuadPlanFor(pts, p.Alpha, maxRelErr)
	levels := quadAccumulate(qp, pts, txs)

	signal := pu * Gain(pts, p.Alpha, l.From, l.To)
	if signal == 0 {
		return 0
	}
	ux, uy := qp.Leaf(pts[l.From])
	pv := pts[l.To]
	lq := qp.Levels
	interference := 0.0
	var walk func(lvl, x, y int)
	walk = func(lvl, x, y int) {
		a := levels[lvl][Morton(x, y)]
		if a == nil || a.mass == 0 {
			return
		}
		dx := pv.X - a.cx
		dy := pv.Y - a.cy
		d2 := dx*dx + dy*dy // decision expression: transcribed, not Hypot
		if d2 >= qp.OpenRad2[lvl] {
			m := a.mass
			shift := uint(lq - lvl)
			if x == ux>>shift && y == uy>>shift {
				m -= pu
			}
			if m <= 0 {
				return
			}
			interference += m / PathLoss(math.Hypot(dx, dy), p.Alpha)
			return
		}
		if lvl == lq {
			for _, t := range txs {
				if t.Sender == l.From {
					continue
				}
				tx, ty := qp.Leaf(pts[t.Sender])
				if tx == x && ty == y {
					interference += t.Power / PathLoss(Dist(pts, t.Sender, l.To), p.Alpha)
				}
			}
			return
		}
		// The kernel's DFS pops children in index order.
		walk(lvl+1, 2*x, 2*y)
		walk(lvl+1, 2*x+1, 2*y)
		walk(lvl+1, 2*x, 2*y+1)
		walk(lvl+1, 2*x+1, 2*y+1)
	}
	walk(0, 0, 0)
	return signal / (p.Noise + interference)
}

// QuadLinkSINR32 is the naive transcription of the kernel's float32
// aggregate walk (sinr.QuadTreeF32): the same pyramid accumulated in
// float64, each node's mass/centroid rounded once through float32, and the
// walk's decision expressions reading float64(float32(agg)) — so kernel
// and oracle take identical open/accept decisions. Leaf scans stay exact
// float64, like the kernel's.
func QuadLinkSINR32(pts []geom.Point, p phys.Params, maxRelErr float64, txs []phys.Tx, l phys.Link, pu float64) float64 {
	qp := QuadPlanFor(pts, p.Alpha, maxRelErr)
	levels := quadAccumulate(qp, pts, txs)

	signal := pu * Gain(pts, p.Alpha, l.From, l.To)
	if signal == 0 {
		return 0
	}
	ux, uy := qp.Leaf(pts[l.From])
	pv := pts[l.To]
	lq := qp.Levels
	interference := 0.0
	var walk func(lvl, x, y int)
	walk = func(lvl, x, y int) {
		a := levels[lvl][Morton(x, y)]
		if a == nil || a.mass == 0 {
			return
		}
		dx := pv.X - float64(float32(a.cx))
		dy := pv.Y - float64(float32(a.cy))
		d2 := dx*dx + dy*dy // decision expression: transcribed, f32-rounded centroid
		if d2 >= qp.OpenRad2[lvl] {
			m := float64(float32(a.mass))
			shift := uint(lq - lvl)
			if x == ux>>shift && y == uy>>shift {
				m -= pu
			}
			if m <= 0 {
				return
			}
			interference += m / PathLoss(math.Hypot(dx, dy), p.Alpha)
			return
		}
		if lvl == lq {
			for _, t := range txs {
				if t.Sender == l.From {
					continue
				}
				tx, ty := qp.Leaf(pts[t.Sender])
				if tx == x && ty == y {
					interference += t.Power / PathLoss(Dist(pts, t.Sender, l.To), p.Alpha)
				}
			}
			return
		}
		walk(lvl+1, 2*x, 2*y)
		walk(lvl+1, 2*x+1, 2*y)
		walk(lvl+1, 2*x, 2*y+1)
		walk(lvl+1, 2*x+1, 2*y+1)
	}
	walk(0, 0, 0)
	return signal / (p.Noise + interference)
}

// QuadSINRFeasible is the naive transcription of the hierarchical
// feasibility check with its (1±ε) guard band at the β cut: a link passes
// when its approximate SINR times (1 + ε_certified) clears
// β − FeasibilitySlack.
func QuadSINRFeasible(pts []geom.Point, p phys.Params, maxRelErr float64, links []phys.Link, powers []float64) (bool, error) {
	if len(links) != len(powers) {
		return false, phys.ErrMismatchedLengths
	}
	txs := make([]phys.Tx, len(links))
	for i, l := range links {
		txs[i] = phys.Tx{Sender: l.From, Power: powers[i]}
	}
	theta := QuadTheta(p.Alpha, maxRelErr)
	band := 1 + QuadCertifiedErr(theta, p.Alpha, maxRelErr)
	cut := p.Beta - FeasibilitySlack
	for i, l := range links {
		if QuadLinkSINR(pts, p, maxRelErr, txs, l, powers[i])*band < cut {
			return false, nil
		}
	}
	return true, nil
}
