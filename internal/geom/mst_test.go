package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMSTSmallKnown(t *testing.T) {
	// Three collinear points: MST must use the two short edges.
	pts := []Point{{0, 0}, {1, 0}, {3, 0}}
	edges := MST(pts)
	if len(edges) != 2 {
		t.Fatalf("edge count = %d, want 2", len(edges))
	}
	if got := TotalLength(edges); math.Abs(got-3) > 1e-12 {
		t.Errorf("total length = %v, want 3", got)
	}
}

func TestMSTDegenerate(t *testing.T) {
	if got := MST(nil); got != nil {
		t.Errorf("MST(nil) = %v", got)
	}
	if got := MST([]Point{{1, 1}}); got != nil {
		t.Errorf("MST(single) = %v", got)
	}
}

func TestMSTSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randomPoints(rng, 80, 100)
	edges := MST(pts)
	if len(edges) != len(pts)-1 {
		t.Fatalf("edge count = %d, want %d", len(edges), len(pts)-1)
	}
	// Union-find connectivity check.
	parent := make([]int, len(pts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			t.Fatalf("MST contains a cycle through edge %v", e)
		}
		parent[ru] = rv
	}
	root := find(0)
	for i := range pts {
		if find(i) != root {
			t.Fatalf("MST does not span: node %d disconnected", i)
		}
	}
}

func TestMSTOptimalVsBruteForce(t *testing.T) {
	// For tiny n, compare against brute-force minimum over all spanning
	// trees via Kruskal on the complete graph (which is exact).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(rng, 8, 10)
		got := TotalLength(MST(pts))
		want := kruskalTotal(pts)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Prim total %v != Kruskal total %v", trial, got, want)
		}
	}
}

func kruskalTotal(pts []Point) float64 {
	n := len(pts)
	type edge struct {
		u, v int
		d    float64
	}
	var all []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, edge{i, j, pts[i].Dist(pts[j])})
		}
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[i].d {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total := 0.0
	for _, e := range all {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			total += e.d
		}
	}
	return total
}

func TestMSTEdgeLengthsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 40, 60)
	for _, e := range MST(pts) {
		if e.Len <= 0 {
			t.Fatalf("non-positive edge length %v", e)
		}
		if math.Abs(e.Len-pts[e.U].Dist(pts[e.V])) > 1e-9 {
			t.Fatalf("edge length mismatch: %v", e)
		}
	}
}

func BenchmarkMST(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 500, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MST(pts)
	}
}

func BenchmarkGridWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 2000, 200)
	g := NewGrid(pts, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountWithin(Point{100, 100}, 25)
	}
}
