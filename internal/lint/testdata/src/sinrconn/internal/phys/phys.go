// Package phys is a fixture stub of the real leaf data package: just
// enough surface for the oracle fixture to typecheck.
package phys

// Params mirrors the real physical-model parameters.
type Params struct {
	Alpha, Beta, Noise float64
}
