package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"sinrconn/internal/faults"
)

// chaosSpec is the chaos suite's fault schedule: every injection site
// lit up at once — handler stalls, connection resets, singleflight-
// leader panics, worker stalls, slow slots — from one seed, so a rerun
// replays the identical fault pattern. The loadgen-driven soak
// (internal/serve/loadgen's TestServeChaosSoak) uses the same spec.
func chaosSpec() faults.Spec {
	return faults.Spec{
		Seed:  1973,
		Delay: time.Millisecond,
		Rates: map[faults.Site]float64{
			faults.ServeHandlerDelay: 0.05,
			faults.ServeConnReset:    0.04,
			faults.CacheLeaderPanic:  0.40,
			faults.PoolWorkerStall:   0.05,
			faults.SimSlotSlow:       0.02,
		},
	}
}

// TestServeChaosFaultFreeReplay pins the injection framework's core
// invariant end to end: faults stall or kill requests but NEVER change
// computed results, so a chaotic daemon's (eventually successful)
// answer is bit-identical to a clean daemon's.
func TestServeChaosFaultFreeReplay(t *testing.T) {
	settleGoroutines(t)
	chaotic, chaoticTS := testDaemon(t, Config{Injector: faults.MustPlan(chaosSpec())})
	_, cleanTS := testDaemon(t, Config{})
	_ = chaotic

	pts := testPoints(51, 32)
	runReq := RunRequest{Pipeline: "init-uniform", Options: OptionsJSON{Seed: 4}, IncludeTree: true}

	// The chaotic fetch retries through injected resets and panics; over
	// a real socket an injected abort surfaces as a client-side EOF,
	// which tryPost reports as code 0.
	fetchChaotic := func() []byte {
		hc := http.DefaultClient
		var sessID string
		for attempt := 0; attempt < 50; attempt++ {
			if sessID == "" {
				var open OpenResponse
				if code := tryPost(t, hc, chaoticTS.URL+"/v1/sessions", OpenRequest{Points: pts}, &open); code != http.StatusOK {
					continue
				}
				sessID = open.SessionID
			}
			var run RunResponse
			if code := tryPost(t, hc, chaoticTS.URL+"/v1/sessions/"+sessID+"/run", runReq, &run); code == http.StatusOK {
				w, _ := json.Marshal(run.Result)
				return w
			}
		}
		t.Fatal("chaotic daemon never produced a successful run in 50 attempts")
		return nil
	}
	chaoticBytes := fetchChaotic()

	clean := openSession(t, cleanTS.URL, OpenRequest{Points: pts})
	var runClean RunResponse
	if code, body := postJSON(t, cleanTS.URL+"/v1/sessions/"+clean.SessionID+"/run", runReq, &runClean); code != http.StatusOK {
		t.Fatalf("clean run: %d: %s", code, body)
	}
	cleanBytes, _ := json.Marshal(runClean.Result)
	if !bytes.Equal(chaoticBytes, cleanBytes) {
		t.Fatalf("fault-injected result diverges from fault-free replay:\n%s\n%s", chaoticBytes, cleanBytes)
	}
}

// tryPost posts JSON and decodes on 200; transport errors (injected
// resets) report code 0.
func tryPost(t *testing.T, hc *http.Client, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("malformed 200 body from %s: %v", url, err)
		}
	}
	return resp.StatusCode
}
