package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 10})
	if s.Median != 2.5 {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	if got := Summarize([]float64{1, 3}).String(); !strings.Contains(got, "±") {
		t.Errorf("String = %q", got)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	f := LinearFit(x, y)
	if math.Abs(f.A-1) > 1e-9 || math.Abs(f.B-2) > 1e-9 || math.Abs(f.R2-1) > 1e-9 {
		t.Errorf("Fit = %+v", f)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{2}); f.B != 0 {
		t.Errorf("single-point fit = %+v", f)
	}
	// Vertical data: identical x.
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.B != 0 || math.Abs(f.A-2) > 1e-9 {
		t.Errorf("vertical fit = %+v", f)
	}
	if f := LinearFit([]float64{1, 2}, []float64{1}); f != (Fit{}) {
		t.Errorf("mismatched input fit = %+v", f)
	}
}

func TestLinearFitShiftInvariance(t *testing.T) {
	f := func(shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			return true
		}
		shift = math.Mod(shift, 1e3)
		x := []float64{1, 2, 3, 4, 5}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = 2*x[i] + shift
		}
		fit := LinearFit(x, y)
		return math.Abs(fit.B-2) < 1e-6 && math.Abs(fit.A-shift) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitAgainstLog(t *testing.T) {
	// y = 3·log₂x exactly.
	x := []float64{2, 4, 8, 16, 32}
	y := []float64{3, 6, 9, 12, 15}
	f := FitAgainstLog(x, y)
	if math.Abs(f.B-3) > 1e-9 || math.Abs(f.A) > 1e-9 {
		t.Errorf("log fit = %+v", f)
	}
}

func TestGrowthExponent(t *testing.T) {
	// Quadratic data has exponent 2.
	x := []float64{1, 2, 4, 8}
	y := []float64{1, 4, 16, 64}
	if got := GrowthExponent(x, y); math.Abs(got-2) > 1e-9 {
		t.Errorf("exponent = %v", got)
	}
	// Logarithmic data has exponent well below 1.
	x = []float64{4, 16, 64, 256, 1024}
	y = make([]float64, len(x))
	for i := range x {
		y[i] = math.Log2(x[i])
	}
	if got := GrowthExponent(x, y); got > 0.6 {
		t.Errorf("log data exponent = %v, want < 0.6", got)
	}
	// Zero/negative entries are skipped, not fatal.
	if got := GrowthExponent([]float64{0, 2, 4}, []float64{1, 2, 4}); math.IsNaN(got) {
		t.Error("NaN exponent")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("n", "slots", "ratio")
	tb.AddRow(32, 100, 1.5)
	tb.AddRow(1024, 2000, 2.25)
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	out := tb.Render()
	for _, want := range []string{"n", "slots", "ratio", "1024", "2.25", "|---"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Errorf("line count = %d", len(lines))
	}
	// Columns align: all lines equal length.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("misaligned line %q", l)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Errorf("Render = %q", out)
	}
}
