package sinrconn

// Tests for the session-oriented API: context cancellation inside the slot
// loop, concurrent batch execution on one handle, memoization, option
// validation, and the wrapper-equivalence suite pinning every deprecated
// free function bit-identical to its Network counterpart.

import (
	"context"
	"errors"
	"testing"
	"time"

	"sinrconn/internal/workload"
)

// runCtx is shorthand for the tests below.
var bg = context.Background()

// TestNetworkRunCancellation: a canceled context aborts every pipeline
// mid-construction with an error wrapping ctx.Err(), and the handle (and
// its shared worker pool) remains fully usable afterwards.
func TestNetworkRunCancellation(t *testing.T) {
	pts := uniformPoints(11, 40)
	nw, err := Open(pts, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	canceled, cancel := context.WithCancel(bg)
	cancel()
	for _, p := range Pipelines() {
		if _, err := nw.Run(canceled, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v does not wrap context.Canceled", p, err)
		}
	}
	// The engine/pool must be left reusable: the same handle completes a
	// real run after the aborted ones.
	res, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	if res.Tree.NumNodes != len(pts) {
		t.Fatalf("post-cancel tree spans %d of %d", res.Tree.NumNodes, len(pts))
	}
	if err := res.Tree.Verify(); err != nil {
		t.Fatalf("post-cancel verify: %v", err)
	}
}

// TestNetworkRunDeadlineMidConstruction arms a deadline far shorter than
// the construction and requires the run to stop inside the slot loop with
// a wrapped DeadlineExceeded — then reuses the handle.
func TestNetworkRunDeadlineMidConstruction(t *testing.T) {
	pts := uniformPoints(5, 220)
	nw, err := Open(pts, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	ctx, cancel := context.WithTimeout(bg, 2*time.Millisecond)
	defer cancel()
	if _, err := nw.Run(ctx, PipelineTVCArbitrary); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if _, err := nw.Run(bg, PipelineInit); err != nil {
		t.Fatalf("run after deadline abort: %v", err)
	}
}

// TestRunMatrixConcurrent fans ≥8 specs (pipelines × seeds × phys) out over
// one Network — under -race this pins the concurrency safety of the shared
// instance, pool, memo, and lazy per-phys instance cache — and checks the
// batch results are identical to serial Run calls on a fresh handle.
func TestRunMatrixConcurrent(t *testing.T) {
	pts := uniformPoints(21, 36)
	nw, err := Open(pts, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var specs []RunSpec
	for _, p := range []Pipeline{PipelineInit, PipelineTVCArbitrary} {
		for _, seed := range []int64{1, 2, 3} {
			specs = append(specs, RunSpec{Pipeline: p, Opts: []RunOption{WithSeed(seed)}})
		}
	}
	// Two specs on a different physical parameterization: the per-phys
	// instance is built lazily under concurrency.
	for _, seed := range []int64{1, 2} {
		specs = append(specs, RunSpec{Pipeline: PipelineInit, Opts: []RunOption{
			WithSeed(seed), WithPhys(PhysParams{Alpha: 2.5}),
		}})
	}
	if len(specs) < 8 {
		t.Fatalf("want ≥8 specs, have %d", len(specs))
	}
	results, err := nw.RunMatrix(bg, specs)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := Open(pts, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	for i, sp := range specs {
		if results[i] == nil {
			t.Fatalf("spec %d: nil result without error", i)
		}
		want, err := serial.Run(bg, sp.Pipeline, sp.Opts...)
		if err != nil {
			t.Fatalf("spec %d serial: %v", i, err)
		}
		assertResultsIdentical(t, results[i], want)
	}
}

// TestRunMemoization: identical specs are served from the memo (same
// pointer, no re-construction); distinct specs are not.
func TestRunMemoization(t *testing.T) {
	nw, err := Open(uniformPoints(31, 24))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	a, err := nw.Run(bg, PipelineInit, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Run(bg, PipelineInit, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeated spec was re-constructed instead of memoized")
	}
	c, err := nw.Run(bg, PipelineInit, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct seed returned the memoized result")
	}
}

// TestNetworkClosed: Close refuses new runs, leaves existing results
// usable, and degrades Join-derived handles gracefully (they fall back to
// per-run worker pools instead of touching the closed shared pool).
func TestNetworkClosed(t *testing.T) {
	nw, err := Open(uniformPoints(41, 20))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := nw.Join(bg, res, []Point{{X: 500, Y: 0}, {X: 503, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nw.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := nw.Run(bg, PipelineInit); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("run on closed network: %v", err)
	}
	// Close refuses new work uniformly: ops on existing results too.
	if _, err := nw.Repair(bg, res, []int{1}); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("repair on closed network: %v", err)
	}
	if _, err := nw.Aggregate(bg, res, make([]int64, nw.Len()), SumAgg); !errors.Is(err, ErrNetworkClosed) {
		t.Fatalf("aggregate on closed network: %v", err)
	}
	// Existing results and derived handles keep working.
	if err := res.Tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := grown.Network().Repair(bg, grown, []int{grown.Tree.NumNodes - 1}); err != nil {
		t.Fatalf("repair on derived handle after parent close: %v", err)
	}
}

// TestCloseWaitsForInFlight: Close during a live batch must wait for
// in-flight runs to release the pool (no send-on-closed-channel panic);
// specs that had not started yet fail cleanly with ErrNetworkClosed.
func TestCloseWaitsForInFlight(t *testing.T) {
	nw, err := Open(uniformPoints(81, 48), WithSeed(81))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]RunSpec, 12)
	for i := range specs {
		specs[i] = RunSpec{Pipeline: PipelineInit, Opts: []RunOption{WithSeed(int64(i))}}
	}
	done := make(chan struct{})
	var results []*Result
	var merr error
	go func() {
		defer close(done)
		results, merr = nw.RunMatrix(bg, specs)
	}()
	time.Sleep(2 * time.Millisecond)
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	completed := 0
	for _, r := range results {
		if r != nil {
			completed++
		}
	}
	if completed == len(specs) && merr != nil {
		t.Fatalf("all specs completed but error reported: %v", merr)
	}
	if completed < len(specs) && !errors.Is(merr, ErrNetworkClosed) {
		t.Fatalf("incomplete batch without ErrNetworkClosed: %v", merr)
	}
}

// TestEpochDropInjection: WithDropProb on a physical epoch actually
// injects fading (a near-certain lost transfer surfaces as the epoch's
// verification error), and an explicit zero injects nothing.
func TestEpochDropInjection(t *testing.T) {
	nw, err := Open(uniformPoints(91, 24), WithSeed(91))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, nw.Len())
	for i := range values {
		values[i] = int64(i)
	}
	if _, err := nw.Aggregate(bg, res, values, SumAgg, WithDropProb(0)); err != nil {
		t.Fatalf("drop-free epoch: %v", err)
	}
	if _, err := nw.Aggregate(bg, res, values, SumAgg, WithDropProb(0.9), WithSeed(1)); err == nil {
		t.Fatal("0.9 drop probability lost no transfer — injection not wired into the epoch")
	}
}

// TestOptionValidation pins the functional-option contract: zero is a legal
// explicit value where it is physically meaningful, invalid knobs fail at
// Open/Run (not silently), and Open-scoped options are rejected at run
// scope.
func TestOptionValidation(t *testing.T) {
	pts := uniformPoints(51, 12)
	// Explicit zeros are legal.
	nw, err := Open(pts, WithSeed(0), WithDropProb(0), WithWorkers(0))
	if err != nil {
		t.Fatalf("explicit zero options: %v", err)
	}
	defer nw.Close()
	cases := []struct {
		name string
		opts []Option
	}{
		{"drop out of range", []Option{WithDropProb(1)}},
		{"negative drop", []Option{WithDropProb(-0.1)}},
		{"broadcast zero", []Option{WithBroadcastProb(0)}},
		{"broadcast too high", []Option{WithBroadcastProb(0.9)}},
		{"rho zero", []Option{WithRho(0)}},
		{"negative workers", []Option{WithWorkers(-1)}},
		{"bad phys", []Option{WithPhys(PhysParams{Alpha: 1.5})}},
	}
	for _, tc := range cases {
		if _, err := Open(pts, tc.opts...); err == nil {
			t.Errorf("%s: Open accepted invalid option", tc.name)
		}
	}
	// Open-scoped options are rejected per run.
	if _, err := nw.Run(bg, PipelineInit, WithWorkers(2)); err == nil {
		t.Error("Run accepted WithWorkers")
	}
	if _, err := nw.Run(bg, PipelineInit, WithAutoNormalize(true)); err == nil {
		t.Error("Run accepted WithAutoNormalize")
	}
	// Run-scoped options work, including a per-run phys override.
	if _, err := nw.Run(bg, PipelineInit, WithSeed(0), WithPhys(PhysParams{Alpha: 4})); err != nil {
		t.Errorf("per-run phys override: %v", err)
	}
}

// TestWithPhysMergesSessionBase: a run-scoped WithPhys overriding one
// field keeps the session's Open-time customization of the others.
func TestWithPhysMergesSessionBase(t *testing.T) {
	nw, err := Open(uniformPoints(52, 14), WithSeed(52), WithPhys(PhysParams{Beta: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(bg, PipelineInit, WithPhys(PhysParams{Alpha: 4}))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Tree.inst.Params()
	if p.Alpha != 4 || p.Beta != 2 {
		t.Fatalf("run phys = α %v β %v, want α 4 with the session's β 2", p.Alpha, p.Beta)
	}
}

// TestOpScopedPhysRejected: joins, repairs, and physical epochs operate on
// the result's fixed physics and must refuse WithPhys instead of silently
// ignoring it.
func TestOpScopedPhysRejected(t *testing.T) {
	nw, err := Open(uniformPoints(53, 16), WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	phys := WithPhys(PhysParams{Alpha: 4})
	if _, err := nw.Join(bg, res, []Point{{X: 700, Y: 0}}, phys); err == nil {
		t.Error("Join accepted WithPhys")
	}
	if _, err := nw.Repair(bg, res, []int{1}, phys); err == nil {
		t.Error("Repair accepted WithPhys")
	}
	if _, err := nw.Aggregate(bg, res, make([]int64, nw.Len()), SumAgg, phys); err == nil {
		t.Error("Aggregate accepted WithPhys")
	}
}

// TestJoinNotNormalized: a join whose merged point set violates the
// normalization reports ErrNotNormalized (testable with errors.Is).
func TestJoinNotNormalized(t *testing.T) {
	nw, err := Open([]Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	res, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	_, err = nw.Join(bg, res, []Point{{X: 0.3, Y: 0}})
	if !errors.Is(err, ErrNotNormalized) {
		t.Fatalf("join error %v does not wrap ErrNotNormalized", err)
	}
	// The deprecated wrapper reports the same typed error.
	_, err = res.JoinPoints([]Point{{X: 0.3, Y: 0}}, Options{})
	if !errors.Is(err, ErrNotNormalized) {
		t.Fatalf("wrapper join error %v does not wrap ErrNotNormalized", err)
	}
}

// TestMetricsEnergyFilled: every pipeline reports the construction energy
// it spent on the channel (PR 3 satellite — Reschedule and TreeViaCapacity
// silently reported zero before).
func TestMetricsEnergyFilled(t *testing.T) {
	nw, err := Open(uniformPoints(61, 26), WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for _, p := range Pipelines() {
		res, err := nw.Run(bg, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Metrics.Energy <= 0 {
			t.Errorf("%s: Metrics.Energy = %v, want > 0", p, res.Metrics.Energy)
		}
	}
}

// assertResultsIdentical requires two results to be bit-identical: same
// tree (root, node count, every scheduled link with exact slot and power
// bits) and exactly equal metrics.
func assertResultsIdentical(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Tree.Root != want.Tree.Root {
		t.Fatalf("root %d vs %d", got.Tree.Root, want.Tree.Root)
	}
	if got.Tree.NumNodes != want.Tree.NumNodes {
		t.Fatalf("nodes %d vs %d", got.Tree.NumNodes, want.Tree.NumNodes)
	}
	if len(got.Tree.Up) != len(want.Tree.Up) {
		t.Fatalf("links %d vs %d", len(got.Tree.Up), len(want.Tree.Up))
	}
	for i := range got.Tree.Up {
		if got.Tree.Up[i] != want.Tree.Up[i] {
			t.Fatalf("link %d: %+v vs %+v", i, got.Tree.Up[i], want.Tree.Up[i])
		}
	}
	if got.Metrics != want.Metrics {
		t.Fatalf("metrics differ:\n got %+v\nwant %+v", got.Metrics, want.Metrics)
	}
}

// TestWrapperEquivalence pins every deprecated free function bit-identical
// to its Network counterpart across the workload matrix — the CI drift
// gate for the compatibility layer (tier: `go test -run
// TestWrapperEquivalence`). Under -short the sweep drops to two
// generators; the full matrix runs otherwise.
func TestWrapperEquivalence(t *testing.T) {
	type wrapperSpec struct {
		pipeline Pipeline
		build    func([]Point, Options) (*Result, error)
	}
	wrappers := []wrapperSpec{
		{PipelineInit, BuildInitialBiTree},
		{PipelineRescheduleMean, RescheduleMeanPower},
		{PipelineTVCMean, BuildBiTreeMeanPower},
		{PipelineTVCArbitrary, BuildBiTreeArbitraryPower},
	}
	gens := workload.Matrix()
	if testing.Short() {
		gens = gens[:2]
	}
	n := 24
	for gi, gen := range gens {
		for wi, w := range wrappers {
			gen, w := gen, w
			seed := int64(3001 + 100*gi + 10*wi)
			t.Run(gen.Name+"/"+w.pipeline.String(), func(t *testing.T) {
				pts := facadePoints(gen, seed, n)
				opt := Options{Seed: seed, Params: PhysParams{Alpha: 3}}
				legacy, lerr := w.build(pts, opt)
				nw, err := Open(pts, WithSeed(seed), WithPhys(PhysParams{Alpha: 3}))
				if err != nil {
					t.Fatal(err)
				}
				defer nw.Close()
				session, serr := nw.Run(bg, w.pipeline)
				if (lerr == nil) != (serr == nil) {
					t.Fatalf("error divergence: wrapper %v vs network %v", lerr, serr)
				}
				if lerr != nil {
					// Both failed identically (rare non-convergence); the
					// contract is only that the paths agree.
					return
				}
				assertResultsIdentical(t, legacy, session)
			})
		}
	}
}

// TestWrapperEquivalenceDynamic extends the drift gate to the dynamic
// operations: JoinPoints / RepairFailures / RepairLinkFailures versus the
// Network methods, on the same grown deployment.
func TestWrapperEquivalenceDynamic(t *testing.T) {
	pts := uniformPoints(71, 24)
	extra := []Point{{X: 900, Y: 0}, {X: 903, Y: 2}, {X: 906, Y: 0}}
	opt := Options{Seed: 71}

	legacyBase, err := BuildInitialBiTree(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Open(pts, WithSeed(71))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	sessionBase, err := nw.Run(bg, PipelineInit)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, legacyBase, sessionBase)

	legacyGrown, err := legacyBase.JoinPoints(extra, Options{Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	sessionGrown, err := nw.Join(bg, sessionBase, extra, WithSeed(72))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, legacyGrown, sessionGrown)

	victim := 1
	if victim == legacyGrown.Tree.Root {
		victim = 2
	}
	legacyRepaired, err := legacyGrown.RepairFailures([]int{victim}, Options{Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	sessionRepaired, err := sessionGrown.Network().Repair(bg, sessionGrown, []int{victim}, WithSeed(73))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, legacyRepaired, sessionRepaired)

	link := legacyRepaired.Tree.Up[0].Link
	legacyLinks, err := legacyRepaired.RepairLinkFailures([]Link{link}, Options{Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	sessionLinks, err := sessionRepaired.Network().RepairLinks(bg, sessionRepaired, []Link{link}, WithSeed(74))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, legacyLinks, sessionLinks)
}
